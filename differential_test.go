// Differential oracle for the fast-path access pipeline: every
// configuration drives two identically seeded molecular caches — one on
// the O(1) block index, one forced onto the original linear probe scan
// (UseReferenceProbe) — through the same randomized trace with resize
// controllers ticking, a mesh attached and (in half the configurations)
// an identical fault campaign scheduled against each. The two caches
// must agree access by access on the full engine.Result, on every
// coherence probe, and at the end on ledgers, probe histograms,
// degradation counters, telemetry snapshots, resize decision logs and
// structural captures. The fast side additionally carries the whole
// observability plane (span tracing, state collection/publication), so
// the same equalities prove that observing a run never changes it.
// Any divergence means the index lost lock on the model the goldens pin.
package molcache_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"molcache"

	"molcache/internal/faults"
	"molcache/internal/invariant"
	"molcache/internal/molecular"
	"molcache/internal/noc"
	"molcache/internal/obs"
	"molcache/internal/resize"
	"molcache/internal/rng"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// diffAccesses is the trace length per configuration (the acceptance
// floor is 10k; a little headroom costs nothing).
const diffAccesses = 12_000

// diffFaultCampaign schedules hard failures, corruptions and three NoC
// windows — the middle one past the Ulmo retry budget, so abandoned
// sweeps and the unreachable-tile bypass are exercised too.
func diffFaultCampaign() faults.Campaign {
	return faults.Campaign{
		Seed: 7,
		RandomMoleculeFailures: &faults.RandomSpec{
			Count: 6, Start: 2_000, End: 11_000,
		},
		RandomLineCorruptions: &faults.RandomSpec{
			Count: 80, Start: 500, End: 11_500,
		},
		NoCDelays: []faults.NoCDelay{
			{At: 3_000, Duration: 400, ExtraCycles: 3, DropAttempts: 2},
			{At: 6_000, Duration: 300, ExtraCycles: 5, DropAttempts: 6},
			{At: 9_000, Duration: 200, ExtraCycles: 2, DropAttempts: 3},
		},
	}
}

// diffCache builds one side of the pair: cache, shared region, mesh,
// resize controller (with the post-pass invariant audit on, which also
// verifies the block index after every grow/shrink/rebalance), registry
// and, when asked, a fault injector expanded from the shared campaign.
func diffCache(t *testing.T, cfg molecular.Config, withFaults bool) (*molecular.Cache, *resize.Controller, *telemetry.Registry) {
	t.Helper()
	c, err := molecular.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRegion(molecular.SharedASID, molecular.RegionOptions{
		HomeCluster: 0, HomeTile: 0, InitialMolecules: 2,
	}); err != nil {
		t.Fatal(err)
	}
	mesh, err := noc.ForTiles(cfg.Clusters * cfg.TilesPerCluster)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachInterconnect(mesh); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.AttachTelemetry(nil, reg)
	if withFaults {
		inj, err := faults.NewInjector(diffFaultCampaign())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachFaults(inj); err != nil {
			t.Fatal(err)
		}
	}
	ctrl, err := resize.New(c, resize.Config{
		Period:        400,
		MinPeriod:     200,
		MaxPeriod:     5_000,
		MaxAllocation: 4,
		DefaultGoal:   0.2,
		DebugCheck:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, ctrl, reg
}

// diffTrace generates the randomized reference stream: three private
// applications with distinct hot sets and long tails, a trickle of
// shared-region traffic (which also exercises the shared-region
// self-lookup), and a 30% write mix.
func diffTrace(seed uint64) []trace.Ref {
	src := rng.New(seed)
	refs := make([]trace.Ref, 0, diffAccesses)
	for i := 0; i < diffAccesses; i++ {
		var asid uint16
		switch {
		case src.Intn(32) == 0:
			asid = molecular.SharedASID
		default:
			asid = uint16(1 + src.Intn(3))
		}
		var block uint64
		if src.Intn(4) > 0 {
			block = uint64(src.Intn(512)) // hot set: mostly hits
		} else {
			block = uint64(src.Intn(8192)) // tail: misses and evictions
		}
		kind := trace.Read
		if src.Intn(10) < 3 {
			kind = trace.Write
		}
		refs = append(refs, trace.Ref{
			Addr: uint64(asid)<<32 | block*64,
			ASID: asid,
			Kind: kind,
		})
	}
	return refs
}

// stripIndexMetrics removes the molcache_index_* instruments — the only
// telemetry allowed to differ between the two paths (the oracle never
// consults the index, so its lookup/hit counters stay zero).
func stripIndexMetrics(s telemetry.Snapshot) telemetry.Snapshot {
	for name := range s.Counters {
		if strings.HasPrefix(name, "molcache_index_") {
			delete(s.Counters, name)
		}
	}
	for name := range s.Gauges {
		if strings.HasPrefix(name, "molcache_index_") {
			delete(s.Gauges, name)
		}
	}
	return s
}

// TestDifferentialFastPathVsReferenceProbe is the oracle lock: every
// replacement policy × line factor × fault toggle, 12k accesses each,
// zero tolerated divergence anywhere the model is observable.
func TestDifferentialFastPathVsReferenceProbe(t *testing.T) {
	policies := []molecular.ReplacementKind{
		molecular.RandomReplacement, molecular.RandyReplacement, molecular.LRUDirect,
	}
	for _, policy := range policies {
		for _, lineFactor := range []int{1, 2, 4} {
			for _, withFaults := range []bool{false, true} {
				name := fmt.Sprintf("%s/lf%d/faults=%v", policy, lineFactor, withFaults)
				policy, lineFactor, withFaults := policy, lineFactor, withFaults
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := molecular.Config{
						TotalSize:       512 << 10,
						MoleculeSize:    8 << 10,
						TilesPerCluster: 4,
						Clusters:        2,
						Policy:          policy,
						LineFactor:      lineFactor,
						Seed:            2006,
					}
					fast, fastCtrl, fastReg := diffCache(t, cfg, withFaults)
					ref, refCtrl, refReg := diffCache(t, cfg, withFaults)
					ref.UseReferenceProbe(true)

					// The observability plane rides the fast side only:
					// span tracing on the access pipeline and resize
					// ticks, plus periodic state collection/publication.
					// The reference side stays uninstrumented, so every
					// equality below doubles as proof that observing the
					// simulation never changes it.
					spans := telemetry.NewSpanTracer(7, 0)
					fast.AttachSpans(spans)
					fastCtrl.AttachSpans(spans)
					pub := obs.NewPublisher()

					refs := diffTrace(42 + uint64(lineFactor))
					probe := rng.New(99)
					for i, r := range refs {
						fr := fast.Access(r)
						rr := ref.Access(r)
						if fr != rr {
							t.Fatalf("access %d (%v): fast %+v != reference %+v", i, r, fr, rr)
						}
						fastCtrl.Tick()
						refCtrl.Tick()
						// Interleave coherence traffic: the probes must
						// agree, and the invalidations must mutate both
						// caches identically.
						if i%29 == 0 {
							a := uint64(1+probe.Intn(3))<<32 | uint64(probe.Intn(1024))*64
							if fc, rc := fast.Contains(a), ref.Contains(a); fc != rc {
								t.Fatalf("access %d: Contains(%#x) fast %v != reference %v", i, a, fc, rc)
							}
						}
						if i%113 == 0 {
							a := refs[probe.Intn(i+1)].Addr
							fp, fd := fast.Invalidate(a)
							rp, rd := ref.Invalidate(a)
							if fp != rp || fd != rd {
								t.Fatalf("access %d: Invalidate(%#x) fast (%v,%v) != reference (%v,%v)",
									i, a, fp, fd, rp, rd)
							}
						}
						if i > 0 && i%4_000 == 0 {
							tile := (i / 4_000) % cfg.TilesPerCluster
							if err := fast.Rehome(1, tile); err != nil {
								t.Fatal(err)
							}
							if err := ref.Rehome(1, tile); err != nil {
								t.Fatal(err)
							}
						}
						if i%1_000 == 0 {
							pub.Publish(obs.Collect(fast, fastCtrl, fastReg))
						}
					}

					if !reflect.DeepEqual(*fast.Ledger(), *ref.Ledger()) {
						t.Errorf("ledgers diverged: fast %+v, reference %+v", *fast.Ledger(), *ref.Ledger())
					}
					for _, asid := range []uint16{1, 2, 3, molecular.SharedASID} {
						if f, r := fast.Ledger().App(asid), ref.Ledger().App(asid); f != r {
							t.Errorf("asid %d ledger diverged: fast %+v, reference %+v", asid, f, r)
						}
					}
					if !reflect.DeepEqual(fast.ProbeHistogram(), ref.ProbeHistogram()) {
						t.Error("probe histograms diverged")
					}
					if f, r := fast.RemoteCycles(), ref.RemoteCycles(); f != r {
						t.Errorf("remote cycles diverged: fast %d, reference %d", f, r)
					}
					if f, r := fast.Degradation(), ref.Degradation(); f != r {
						t.Errorf("degradation stats diverged: fast %+v, reference %+v", f, r)
					}
					fs := stripIndexMetrics(fastReg.Snapshot())
					rs := stripIndexMetrics(refReg.Snapshot())
					if !reflect.DeepEqual(fs.Counters, rs.Counters) {
						t.Errorf("telemetry counters diverged:\nfast: %v\nreference: %v", fs.Counters, rs.Counters)
					}
					if !reflect.DeepEqual(fs.Gauges, rs.Gauges) {
						t.Errorf("telemetry gauges diverged:\nfast: %v\nreference: %v", fs.Gauges, rs.Gauges)
					}
					if !reflect.DeepEqual(fs.Histograms, rs.Histograms) {
						t.Errorf("telemetry histograms diverged:\nfast: %v\nreference: %v", fs.Histograms, rs.Histograms)
					}

					// Both controllers saw identical miss-rate windows, so
					// their reasoned decision logs must match entry for
					// entry — and the instrumented side must actually have
					// traced something, without dropping any of it.
					if !reflect.DeepEqual(fastCtrl.Decisions(), refCtrl.Decisions()) {
						t.Errorf("decision logs diverged:\nfast: %+v\nreference: %+v",
							fastCtrl.Decisions(), refCtrl.Decisions())
					}
					if spans.Len() == 0 || spans.SampledAccesses() == 0 {
						t.Errorf("span tracer recorded nothing (%d spans, %d sampled accesses)",
							spans.Len(), spans.SampledAccesses())
					}
					if spans.Drops() != 0 {
						t.Errorf("span tracer dropped %d spans", spans.Drops())
					}
					if st := pub.Latest(); st == nil || st.Accesses == 0 || len(st.Regions) == 0 {
						t.Errorf("publisher never captured a usable state: %+v", st)
					}

					// Structural captures must match exactly — including the
					// block index, which the reference cache maintains too —
					// and audit clean under every rule.
					fc, rc := invariant.CaptureCache(fast), invariant.CaptureCache(ref)
					if !reflect.DeepEqual(fc, rc) {
						t.Error("invariant captures diverged")
					}
					if vs := invariant.Check(fc); len(vs) != 0 {
						t.Errorf("fast capture has violations: %v", vs)
					}
				})
			}
		}
	}
}

// TestDifferentialCheckpointRestore is the checkpoint/restore leg of the
// oracle: a run checkpointed at mid-trace through the MOLC1 container
// and restored into a fresh simulator must be a byte-identical
// continuation of an uninterrupted run — access by access on the full
// engine.Result, on coherence probes/invalidations, and at the end on
// ledgers, probe histograms, degradation and fault counters, telemetry
// snapshots, resize decision logs and structural captures.
func TestDifferentialCheckpointRestore(t *testing.T) {
	policies := []molecular.ReplacementKind{
		molecular.RandomReplacement, molecular.RandyReplacement, molecular.LRUDirect,
	}
	for _, policy := range policies {
		for _, withFaults := range []bool{false, true} {
			name := fmt.Sprintf("%s/faults=%v", policy, withFaults)
			policy, withFaults := policy, withFaults
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := molecular.Config{
					TotalSize:       512 << 10,
					MoleculeSize:    8 << 10,
					TilesPerCluster: 4,
					Clusters:        2,
					Policy:          policy,
					LineFactor:      2,
					Seed:            2006,
				}
				// Side A runs uninterrupted; side B is checkpointed at
				// mid-trace and abandoned; side C resumes from B's
				// snapshot bytes with a fresh registry.
				aCache, aCtrl, aReg := diffCache(t, cfg, withFaults)
				bCache, bCtrl, bReg := diffCache(t, cfg, withFaults)
				a := &molcache.Simulator{Cache: aCache, Controller: aCtrl}
				b := &molcache.Simulator{Cache: bCache, Controller: bCtrl}
				// The facade restore attaches controller telemetry too, so
				// the live sides must carry the resize instruments as well
				// or the final registry comparison sees extra names.
				aCtrl.AttachTelemetry(nil, aReg)
				bCtrl.AttachTelemetry(nil, bReg)

				refs := diffTrace(1234)
				cut := len(refs) / 2
				for i := 0; i < cut; i++ {
					ra := a.Access(refs[i])
					rb := b.Access(refs[i])
					if ra != rb {
						t.Fatalf("pre-cut access %d: %+v != %+v (seeding broken)", i, ra, rb)
					}
				}
				data, err := b.EncodeCheckpoint()
				if err != nil {
					t.Fatalf("EncodeCheckpoint: %v", err)
				}
				cReg := telemetry.NewRegistry()
				c, err := molcache.RestoreSimulatorBytes(data, nil, cReg)
				if err != nil {
					t.Fatalf("RestoreSimulatorBytes: %v", err)
				}
				// The restored structure must equal the checkpointed one
				// before either serves another access.
				if bc, cc := invariant.CaptureCache(b.Cache), invariant.CaptureCache(c.Cache); !reflect.DeepEqual(bc, cc) {
					t.Fatal("restored capture differs from checkpointed capture")
				}

				probe := rng.New(4242)
				for i := cut; i < len(refs); i++ {
					ra := a.Access(refs[i])
					rc := c.Access(refs[i])
					if ra != rc {
						t.Fatalf("post-restore access %d (%v): uninterrupted %+v != restored %+v",
							i, refs[i], ra, rc)
					}
					if i%31 == 0 {
						addr := uint64(1+probe.Intn(3))<<32 | uint64(probe.Intn(1024))*64
						if fa, fc := a.Cache.Contains(addr), c.Cache.Contains(addr); fa != fc {
							t.Fatalf("access %d: Contains(%#x) uninterrupted %v != restored %v", i, addr, fa, fc)
						}
					}
					if i%97 == 0 {
						addr := refs[probe.Intn(i+1)].Addr
						ap, ad := a.Cache.Invalidate(addr)
						cp, cd := c.Cache.Invalidate(addr)
						if ap != cp || ad != cd {
							t.Fatalf("access %d: Invalidate(%#x) uninterrupted (%v,%v) != restored (%v,%v)",
								i, addr, ap, ad, cp, cd)
						}
					}
					if i == cut+2_000 {
						if err := a.Cache.Rehome(2, 1); err != nil {
							t.Fatal(err)
						}
						if err := c.Cache.Rehome(2, 1); err != nil {
							t.Fatal(err)
						}
					}
				}

				if !reflect.DeepEqual(*a.Cache.Ledger(), *c.Cache.Ledger()) {
					t.Errorf("ledgers diverged: uninterrupted %+v, restored %+v",
						*a.Cache.Ledger(), *c.Cache.Ledger())
				}
				if !reflect.DeepEqual(a.Cache.ProbeHistogram(), c.Cache.ProbeHistogram()) {
					t.Error("probe histograms diverged")
				}
				if fa, fc := a.Cache.RemoteCycles(), c.Cache.RemoteCycles(); fa != fc {
					t.Errorf("remote cycles diverged: uninterrupted %d, restored %d", fa, fc)
				}
				if fa, fc := a.Degradation(), c.Degradation(); fa != fc {
					t.Errorf("degradation stats diverged: uninterrupted %+v, restored %+v", fa, fc)
				}
				if withFaults {
					if fa, fc := a.FaultStats(), c.FaultStats(); fa != fc {
						t.Errorf("fault stats diverged: uninterrupted %+v, restored %+v", fa, fc)
					}
				}
				as, cs := aReg.Snapshot(), cReg.Snapshot()
				if !reflect.DeepEqual(as.Counters, cs.Counters) {
					t.Errorf("telemetry counters diverged:\nuninterrupted: %v\nrestored: %v", as.Counters, cs.Counters)
				}
				if !reflect.DeepEqual(as.Gauges, cs.Gauges) {
					t.Errorf("telemetry gauges diverged:\nuninterrupted: %v\nrestored: %v", as.Gauges, cs.Gauges)
				}
				if !reflect.DeepEqual(as.Histograms, cs.Histograms) {
					t.Errorf("telemetry histograms diverged:\nuninterrupted: %v\nrestored: %v", as.Histograms, cs.Histograms)
				}
				if !reflect.DeepEqual(a.Controller.Decisions(), c.Controller.Decisions()) {
					t.Errorf("decision logs diverged:\nuninterrupted: %+v\nrestored: %+v",
						a.Controller.Decisions(), c.Controller.Decisions())
				}
				if fa, fc := a.Controller.DecisionCount(), c.Controller.DecisionCount(); fa != fc {
					t.Errorf("decision counts diverged: uninterrupted %d, restored %d", fa, fc)
				}
				ac, cc := invariant.CaptureCache(a.Cache), invariant.CaptureCache(c.Cache)
				if !reflect.DeepEqual(ac, cc) {
					t.Error("final invariant captures diverged")
				}
				if vs := invariant.Check(cc); len(vs) != 0 {
					t.Errorf("restored capture has violations: %v", vs)
				}
			})
		}
	}
}
