package workload

import (
	"testing"

	"molcache/internal/stackdist"
)

// curveOf profiles a benchmark's raw reference stream and returns its
// LRU miss-ratio curve — the ground truth each model was designed
// against (working-set knees, streaming floors).
func curveOf(t *testing.T, name string, refs int) *stackdist.Curve {
	t.Helper()
	g := MustNew(name, 0, 2006)
	p := stackdist.New(64)
	for i := 0; i < refs; i++ {
		p.Record(1, g.Next().Addr)
	}
	c, err := p.Curve(1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// lines converts bytes to 64B cache lines for curve lookups.
func lines(bytes int) int { return bytes / 64 }

// Each model's miss-ratio curve must have its knee where the benchmark
// was designed to have it. These assertions pin the calibration that the
// whole evaluation depends on, so an accidental regeneration of the
// models cannot silently drift.
func TestMissRatioCurveKnees(t *testing.T) {
	// Note the raw streams are word-granular: sequential components hit
	// 15 of every 16 words within a line no matter how small the cache,
	// so even a thrashing benchmark's raw miss rate is bounded by its
	// line-crossing fraction (~1/16 for pure loops). The before/after
	// contrast is therefore asserted in that compressed space.
	cases := []struct {
		name string
		refs int
		// atKnee: allocation where the benchmark must already run well.
		atKnee int
		// wantBelow: required miss rate at the knee.
		wantBelow float64
		// before: a much smaller allocation that must still miss
		// noticeably harder.
		before    int
		wantAbove float64
	}{
		// ammp's hot set is ~112KB of loop+zipf head.
		{"ammp", 600_000, lines(384 << 10), 0.02, lines(16 << 10), 0.05},
		// crafty is small and hot.
		{"crafty", 600_000, lines(192 << 10), 0.03, lines(8 << 10), 0.05},
		// art's loop is 640KB: below it, every sweep line misses (the
		// raw ceiling ~1/16).
		{"art", 2_000_000, lines(900 << 10), 0.05, lines(256 << 10), 0.055},
		// decode's reference frame is 256KB; the bitstream floor stays.
		{"decode", 600_000, lines(512 << 10), 0.03, lines(32 << 10), 0.055},
		// gap: ~420KB combined hot set.
		{"gap", 600_000, lines(640 << 10), 0.03, lines(32 << 10), 0.055},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			curve := curveOf(t, c.name, c.refs)
			if got := curve.MissRateAt(c.atKnee); got > c.wantBelow {
				t.Errorf("miss at %d lines = %.3f, want <= %.3f (knee drifted)",
					c.atKnee, got, c.wantBelow)
			}
			if got := curve.MissRateAt(c.before); got < c.wantAbove {
				t.Errorf("miss at %d lines = %.3f, want >= %.3f (hot set shrank)",
					c.before, got, c.wantAbove)
			}
		})
	}
}

// CRC must be flat: no allocation helps a pure stream.
func TestCRCFlatCurve(t *testing.T) {
	curve := curveOf(t, "CRC", 400_000)
	small := curve.MissRateAt(lines(64 << 10))
	big := curve.MissRateAt(lines(8 << 20))
	if big < small-0.01 {
		t.Errorf("CRC curve not flat: %.4f at 64KB vs %.4f at 8MB", small, big)
	}
	// Raw word-stream misses once per 16 words.
	if small < 0.05 || small > 0.08 {
		t.Errorf("CRC raw miss floor = %.4f, want ~1/16", small)
	}
}

// mcf must remain miss-heavy even at allocations that satisfy every
// other benchmark.
func TestMcfStaysHostile(t *testing.T) {
	curve := curveOf(t, "mcf", 2_000_000)
	if got := curve.MissRateAt(lines(1 << 20)); got < 0.03 {
		t.Errorf("mcf miss at 1MB = %.4f, want it still hostile", got)
	}
	large := curve.MissRateAt(lines(4 << 20))
	small := curve.MissRateAt(lines(256 << 10))
	if large >= small {
		t.Errorf("mcf curve not decreasing: %.4f at 256KB vs %.4f at 4MB", small, large)
	}
}
