// Package workload generates deterministic synthetic memory-reference
// streams that stand in for the paper's SPEC CPU2000, NetBench and
// MediaBench workloads.
//
// The substitution rationale (see DESIGN.md §2): the molecular cache only
// observes the L1-miss reference stream, so what matters is each
// benchmark's working-set size, reuse structure and spatial locality, not
// its instructions. Each model composes a small set of access-pattern
// primitives — sequential streams, strided walks, working-set loops,
// pointer chases and Zipf-popularity references — with parameters
// calibrated so the standalone and co-scheduled L2 miss-rate relationships
// reproduce the shape of the paper's Table 1.
package workload

import (
	"molcache/internal/rng"
)

// Access is one generated reference before the harness stamps ASID/CPU.
type Access struct {
	Addr  uint64
	Write bool
}

// Generator produces an infinite deterministic reference stream.
type Generator interface {
	// Name identifies the pattern or benchmark.
	Name() string
	// Next returns the next reference.
	Next() Access
}

// wordSize is the granularity of generated accesses. Four-byte accesses
// give the L1 realistic spatial-locality filtering over 64-byte lines.
const wordSize = 4

// Stream walks a region sequentially word by word, wrapping at the end.
// It models data streaming with perfect spatial and zero temporal reuse
// (packet payloads, file compression input).
type Stream struct {
	name string
	base uint64
	size uint64
	pos  uint64
	wrFr float64 // fraction of writes
	src  *rng.Source
}

// NewStream returns a streaming generator over [base, base+size).
func NewStream(name string, base, size uint64, writeFraction float64, src *rng.Source) *Stream {
	if size == 0 {
		panic("workload: NewStream with zero size")
	}
	return &Stream{name: name, base: base, size: size, wrFr: writeFraction, src: src}
}

// Name implements Generator.
func (s *Stream) Name() string { return s.name }

// Next implements Generator.
func (s *Stream) Next() Access {
	a := Access{Addr: s.base + s.pos, Write: s.src.Float64() < s.wrFr}
	s.pos += wordSize
	if s.pos >= s.size {
		s.pos = 0
	}
	return a
}

// Stride walks a region with a fixed byte stride, wrapping. Strides wider
// than a cache line defeat spatial locality (column-major matrix walks,
// image pyramids).
type Stride struct {
	name   string
	base   uint64
	size   uint64
	stride uint64
	pos    uint64
	wrFr   float64
	src    *rng.Source
}

// NewStride returns a strided generator over [base, base+size).
func NewStride(name string, base, size, stride uint64, writeFraction float64, src *rng.Source) *Stride {
	if size == 0 || stride == 0 {
		panic("workload: NewStride with zero size or stride")
	}
	return &Stride{name: name, base: base, size: size, stride: stride, wrFr: writeFraction, src: src}
}

// Name implements Generator.
func (s *Stride) Name() string { return s.name }

// Next implements Generator.
func (s *Stride) Next() Access {
	a := Access{Addr: s.base + s.pos, Write: s.src.Float64() < s.wrFr}
	s.pos += s.stride
	if s.pos >= s.size {
		// Restart shifted by one word so successive sweeps touch
		// different words of the same lines, like a blocked kernel.
		s.pos = (s.pos + wordSize) % s.stride
	}
	return a
}

// Loop repeatedly walks a fixed working set sequentially. High temporal
// and spatial reuse; the canonical cache-friendly (when it fits) or
// cache-thrashing (when it does not) pattern, which is exactly the
// behaviour the paper's art benchmark shows in Table 1.
type Loop struct {
	name string
	base uint64
	size uint64
	pos  uint64
	wrFr float64
	src  *rng.Source
}

// NewLoop returns a looping generator over a working set of size bytes.
func NewLoop(name string, base, size uint64, writeFraction float64, src *rng.Source) *Loop {
	if size == 0 {
		panic("workload: NewLoop with zero size")
	}
	return &Loop{name: name, base: base, size: size, wrFr: writeFraction, src: src}
}

// Name implements Generator.
func (l *Loop) Name() string { return l.name }

// Next implements Generator.
func (l *Loop) Next() Access {
	a := Access{Addr: l.base + l.pos, Write: l.src.Float64() < l.wrFr}
	l.pos += wordSize
	if l.pos >= l.size {
		l.pos = 0
	}
	return a
}

// PointerChase jumps through a pseudo-random permutation cycle over the
// lines of a region: every access lands on a different line with no
// spatial locality and a reuse distance equal to the full working set.
// This is the mcf model.
type PointerChase struct {
	name     string
	base     uint64
	lineSpan uint64
	next     []uint32 // successor line index
	cur      uint32
	wrFr     float64
	src      *rng.Source
}

// NewPointerChase builds a chase over size/lineSpan nodes. lineSpan is
// the byte distance between nodes (>= 64 defeats spatial locality).
func NewPointerChase(name string, base, size, lineSpan uint64, writeFraction float64, src *rng.Source) *PointerChase {
	n := int(size / lineSpan)
	if n < 2 {
		panic("workload: NewPointerChase needs at least 2 nodes")
	}
	perm := src.Perm(n)
	// Build a single cycle: perm[i] -> perm[i+1] -> ... -> perm[0].
	next := make([]uint32, n)
	for i := 0; i < n; i++ {
		next[perm[i]] = uint32(perm[(i+1)%n])
	}
	return &PointerChase{
		name: name, base: base, lineSpan: lineSpan,
		next: next, wrFr: writeFraction, src: src,
	}
}

// Name implements Generator.
func (p *PointerChase) Name() string { return p.name }

// Next implements Generator.
func (p *PointerChase) Next() Access {
	a := Access{
		Addr:  p.base + uint64(p.cur)*p.lineSpan,
		Write: p.src.Float64() < p.wrFr,
	}
	p.cur = p.next[p.cur]
	return a
}

// Zipf draws line-granular addresses from a Zipf popularity distribution
// over a region: a hot head plus a long cold tail (hash tables, parser
// dictionaries, NAT flow tables). Each sampled entry is read as a run of
// consecutive words (an "object"), which lets the L1 filter the run's
// tail the way real record accesses do.
type Zipf struct {
	name     string
	base     uint64
	lineSpan uint64
	z        *rng.Zipf
	perm     []uint32 // popularity rank -> line index, to avoid rank==layout correlation
	run      int
	runLeft  int
	runAddr  uint64
	wrFr     float64
	src      *rng.Source
}

// NewZipf returns a Zipf generator over size/lineSpan lines with skew
// theta, emitting run consecutive words per sampled entry (run <= words
// per line; 1 = one random word per sample).
func NewZipf(name string, base, size, lineSpan uint64, theta float64, run int, writeFraction float64, src *rng.Source) *Zipf {
	n := int(size / lineSpan)
	if n < 1 {
		panic("workload: NewZipf with empty region")
	}
	if run < 1 || uint64(run) > lineSpan/wordSize {
		panic("workload: NewZipf run must be in [1, words per entry]")
	}
	perm := make([]uint32, n)
	for i, v := range src.Perm(n) {
		perm[i] = uint32(v)
	}
	return &Zipf{
		name: name, base: base, lineSpan: lineSpan,
		z: rng.NewZipf(src, n, theta), perm: perm, run: run,
		wrFr: writeFraction, src: src,
	}
}

// Name implements Generator.
func (z *Zipf) Name() string { return z.name }

// Next implements Generator.
func (z *Zipf) Next() Access {
	if z.runLeft > 0 {
		z.runLeft--
		a := Access{Addr: z.runAddr, Write: z.src.Float64() < z.wrFr}
		z.runAddr += wordSize
		return a
	}
	rank := z.z.Next()
	line := uint64(z.perm[rank])
	start := z.base + line*z.lineSpan
	if z.run == 1 {
		// Single-word mode touches a varying word within the entry.
		word := uint64(z.src.Intn(int(z.lineSpan / wordSize)))
		return Access{Addr: start + word*wordSize, Write: z.src.Float64() < z.wrFr}
	}
	z.runAddr = start + wordSize
	z.runLeft = z.run - 1
	return Access{Addr: start, Write: z.src.Float64() < z.wrFr}
}

// Mix selects among component generators with fixed probabilities each
// step, modelling a program whose inner loops interleave several data
// structures.
type Mix struct {
	name string
	gens []Generator
	cdf  []float64
	src  *rng.Source
}

// NewMix builds a probabilistic mixture; weights need not sum to 1.
func NewMix(name string, src *rng.Source, gens []Generator, weights []float64) *Mix {
	if len(gens) == 0 || len(gens) != len(weights) {
		panic("workload: NewMix needs matching non-empty gens and weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("workload: NewMix with negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("workload: NewMix with all-zero weights")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Mix{name: name, gens: gens, cdf: cdf, src: src}
}

// Name implements Generator.
func (m *Mix) Name() string { return m.name }

// Next implements Generator.
func (m *Mix) Next() Access {
	u := m.src.Float64()
	for i, c := range m.cdf {
		if u <= c {
			return m.gens[i].Next()
		}
	}
	return m.gens[len(m.gens)-1].Next()
}

// Phased cycles through (generator, duration) phases, modelling program
// phase behaviour — the reason the paper argues for *periodic* resizing.
type Phased struct {
	name   string
	phases []Phase
	idx    int
	left   uint64
}

// Phase is one program phase.
type Phase struct {
	Gen Generator
	Len uint64 // number of references in the phase
}

// NewPhased returns a phase-cycling generator.
func NewPhased(name string, phases []Phase) *Phased {
	if len(phases) == 0 {
		panic("workload: NewPhased with no phases")
	}
	for _, p := range phases {
		if p.Len == 0 {
			panic("workload: NewPhased with zero-length phase")
		}
	}
	return &Phased{name: name, phases: phases, left: phases[0].Len}
}

// Name implements Generator.
func (p *Phased) Name() string { return p.name }

// Next implements Generator.
func (p *Phased) Next() Access {
	if p.left == 0 {
		p.idx = (p.idx + 1) % len(p.phases)
		p.left = p.phases[p.idx].Len
	}
	p.left--
	return p.phases[p.idx].Gen.Next()
}

// Take materializes the next n accesses from g.
func Take(g Generator, n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
