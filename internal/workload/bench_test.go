package workload

import (
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	for _, n := range append(append([]string{}, SPECNames...), MixedNames...) {
		if _, err := New(n, 0, 1); err != nil {
			t.Errorf("New(%q) = %v", n, err)
		}
	}
	if len(Names()) != 15 {
		t.Errorf("Names() has %d entries, want 15: %v", len(Names()), Names())
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("nosuch", 0, 1); err == nil {
		t.Error("New(nosuch) succeeded, want error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(nosuch) did not panic")
		}
	}()
	MustNew("nosuch", 0, 1)
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, n := range Names() {
		a := MustNew(n, 1<<36, 42)
		b := MustNew(n, 1<<36, 42)
		for i := 0; i < 500; i++ {
			x, y := a.Next(), b.Next()
			if x != y {
				t.Errorf("%s: diverged at step %d: %+v vs %+v", n, i, x, y)
				break
			}
		}
	}
}

func TestBenchmarksSeedSensitive(t *testing.T) {
	for _, n := range Names() {
		a := MustNew(n, 1<<36, 1)
		b := MustNew(n, 1<<36, 2)
		same := 0
		const steps = 200
		for i := 0; i < steps; i++ {
			if a.Next() == b.Next() {
				same++
			}
		}
		// Deterministic phase structure (DRR) may align, but fully
		// identical streams would mean the seed is ignored.
		if same == steps && n != "DRR" {
			t.Errorf("%s: identical streams under different seeds", n)
		}
	}
}

func TestBenchmarksRespectBase(t *testing.T) {
	const base = uint64(3) << 36
	for _, n := range Names() {
		g := MustNew(n, base, 7)
		for i := 0; i < 2000; i++ {
			a := g.Next().Addr
			if a < base || a >= base+(1<<36) {
				t.Errorf("%s: address %#x escapes the app region", n, a)
				break
			}
		}
	}
}

// Distinct-lines footprints must reflect the intended working-set
// ordering: ammp and crafty small, mcf and CRC huge.
func TestFootprintOrdering(t *testing.T) {
	footprint := func(name string) int {
		g := MustNew(name, 0, 9)
		lines := map[uint64]bool{}
		for i := 0; i < 120000; i++ {
			lines[g.Next().Addr/64] = true
		}
		return len(lines)
	}
	ammp := footprint("ammp")
	crafty := footprint("crafty")
	parser := footprint("parser")
	mcf := footprint("mcf")
	crc := footprint("CRC")
	if !(crafty < parser && parser < mcf) {
		t.Errorf("footprints: crafty=%d parser=%d mcf=%d; want crafty < parser < mcf",
			crafty, parser, mcf)
	}
	if !(ammp < mcf/2) {
		t.Errorf("footprints: ammp=%d mcf=%d; want ammp well below mcf", ammp, mcf)
	}
	if crc < 7000 { // 120000 streaming word refs cover 120000/16 = 7500 lines
		t.Errorf("CRC footprint = %d lines, want streaming coverage >= 7000", crc)
	}
}

func TestArtLoopDominates(t *testing.T) {
	// art's working set must be just under 1 MB: most references land in
	// the 896 KB loop.
	g := MustNew("art", 0, 5)
	inLoop := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Addr < 896*kb {
			inLoop++
		}
	}
	if frac := float64(inLoop) / n; frac < 0.90 {
		t.Errorf("art loop fraction = %v, want >= 0.90", frac)
	}
}

func TestWritesPresent(t *testing.T) {
	for _, n := range Names() {
		g := MustNew(n, 0, 3)
		writes := 0
		for i := 0; i < 5000; i++ {
			if g.Next().Write {
				writes++
			}
		}
		if writes == 0 {
			t.Errorf("%s: no writes in 5000 references", n)
		}
	}
}
