package workload

import (
	"testing"

	"molcache/internal/rng"
)

func TestStreamSequentialAndWraps(t *testing.T) {
	s := NewStream("s", 0x1000, 16, 0, rng.New(1))
	want := []uint64{0x1000, 0x1004, 0x1008, 0x100c, 0x1000}
	for i, w := range want {
		if got := s.Next().Addr; got != w {
			t.Errorf("step %d: addr %#x, want %#x", i, got, w)
		}
	}
}

func TestStreamWriteFraction(t *testing.T) {
	s := NewStream("s", 0, 1<<20, 0.5, rng.New(2))
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("write fraction = %v, want ~0.5", frac)
	}
}

func TestStreamZeroWriteFraction(t *testing.T) {
	s := NewStream("s", 0, 1024, 0, rng.New(3))
	for i := 0; i < 100; i++ {
		if s.Next().Write {
			t.Fatal("writeFraction 0 produced a write")
		}
	}
}

func TestStrideStaysInRegion(t *testing.T) {
	s := NewStride("s", 0x10000, 4096, 512, 0, rng.New(4))
	for i := 0; i < 1000; i++ {
		a := s.Next().Addr
		if a < 0x10000 || a >= 0x10000+4096 {
			t.Fatalf("stride escaped region: %#x", a)
		}
	}
}

func TestLoopRevisitsWorkingSet(t *testing.T) {
	l := NewLoop("l", 0, 256, 0, rng.New(5))
	seen := map[uint64]int{}
	for i := 0; i < 128; i++ { // two full sweeps of 64 words
		seen[l.Next().Addr]++
	}
	if len(seen) != 64 {
		t.Errorf("distinct addresses = %d, want 64", len(seen))
	}
	for a, c := range seen {
		if c != 2 {
			t.Errorf("addr %#x visited %d times, want 2", a, c)
		}
	}
}

func TestPointerChaseIsFullCycle(t *testing.T) {
	const size, span = 64 * 64, 64
	p := NewPointerChase("p", 0, size, span, 0, rng.New(6))
	seen := map[uint64]bool{}
	for i := 0; i < size/span; i++ {
		a := p.Next().Addr
		if a%span != 0 || a >= size {
			t.Fatalf("bad chase address %#x", a)
		}
		if seen[a] {
			t.Fatalf("address %#x revisited before cycle completed", a)
		}
		seen[a] = true
	}
	// The next access must restart the cycle.
	if a := p.Next().Addr; !seen[a] {
		t.Errorf("cycle did not close: %#x", a)
	}
}

func TestZipfSkewedTowardsHotLines(t *testing.T) {
	z := NewZipf("z", 0, 64*64, 64, 1.0, 1, 0, rng.New(7))
	counts := map[uint64]int{}
	for i := 0; i < 30000; i++ {
		a := z.Next().Addr
		if a >= 64*64 {
			t.Fatalf("zipf escaped region: %#x", a)
		}
		counts[a/64]++
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	// With theta=1 over 64 lines, the hottest line draws ~21% of refs;
	// a uniform distribution would give ~1.6%.
	if frac := float64(max) / float64(total); frac < 0.10 {
		t.Errorf("hottest line fraction %v, want >= 0.10 (skewed)", frac)
	}
}

func TestMixRespectsWeights(t *testing.T) {
	src := rng.New(8)
	a := NewStream("a", 0, 1024, 0, src)
	b := NewStream("b", 1<<30, 1024, 0, src)
	m := NewMix("m", src, []Generator{a, b}, []float64{0.8, 0.2})
	fromA := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Next().Addr < 1<<30 {
			fromA++
		}
	}
	frac := float64(fromA) / n
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("component A fraction = %v, want ~0.8", frac)
	}
}

func TestPhasedCycles(t *testing.T) {
	src := rng.New(9)
	p := NewPhased("p", []Phase{
		{Gen: NewStream("x", 0, 1024, 0, src), Len: 3},
		{Gen: NewStream("y", 1<<30, 1024, 0, src), Len: 2},
	})
	var got []bool // true = phase y
	for i := 0; i < 10; i++ {
		got = append(got, p.Next().Addr >= 1<<30)
	}
	want := []bool{false, false, false, true, true, false, false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phase sequence mismatch at %d: got %v want %v", i, got, want)
		}
	}
}

func TestTake(t *testing.T) {
	s := NewStream("s", 0, 1024, 0, rng.New(10))
	a := Take(s, 5)
	if len(a) != 5 || a[4].Addr != 16 {
		t.Errorf("Take = %v", a)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"stream-zero", func() { NewStream("s", 0, 0, 0, rng.New(1)) }},
		{"stride-zero", func() { NewStride("s", 0, 0, 64, 0, rng.New(1)) }},
		{"stride-zero-stride", func() { NewStride("s", 0, 1024, 0, 0, rng.New(1)) }},
		{"loop-zero", func() { NewLoop("l", 0, 0, 0, rng.New(1)) }},
		{"chase-tiny", func() { NewPointerChase("p", 0, 64, 64, 0, rng.New(1)) }},
		{"zipf-empty", func() { NewZipf("z", 0, 32, 64, 1, 1, 0, rng.New(1)) }},
		{"mix-empty", func() { NewMix("m", rng.New(1), nil, nil) }},
		{"mix-mismatch", func() {
			NewMix("m", rng.New(1),
				[]Generator{NewLoop("l", 0, 64, 0, rng.New(1))}, []float64{1, 2})
		}},
		{"mix-zero-weights", func() {
			NewMix("m", rng.New(1),
				[]Generator{NewLoop("l", 0, 64, 0, rng.New(1))}, []float64{0})
		}},
		{"phased-empty", func() { NewPhased("p", nil) }},
		{"phased-zero-len", func() {
			NewPhased("p", []Phase{{Gen: NewLoop("l", 0, 64, 0, rng.New(1)), Len: 0}})
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: constructor did not panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

func TestZipfRunEmitsConsecutiveWords(t *testing.T) {
	z := NewZipf("z", 0, 64*64, 64, 1.0, 8, 0, rng.New(21))
	first := z.Next().Addr
	for i := 1; i < 8; i++ {
		got := z.Next().Addr
		if got != first+uint64(i)*4 {
			t.Fatalf("run word %d at %#x, want %#x", i, got, first+uint64(i)*4)
		}
	}
	// The next access starts a fresh run at a line boundary.
	if a := z.Next().Addr; a%64 != 0 {
		t.Errorf("new run started mid-line at %#x", a)
	}
}

func TestZipfRejectsBadRun(t *testing.T) {
	for _, run := range []int{0, 17} { // 64B line = 16 words max
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("run=%d accepted", run)
				}
			}()
			NewZipf("z", 0, 64*64, 64, 1.0, run, 0, rng.New(1))
		}()
	}
}

func TestStaggerIsLineAlignedAndBounded(t *testing.T) {
	src := rng.New(33)
	for i := 0; i < 1000; i++ {
		off := stagger(src)
		if off%64 != 0 {
			t.Fatalf("stagger %#x not line aligned", off)
		}
		if off >= 768*kb {
			t.Fatalf("stagger %#x exceeds 768KB", off)
		}
	}
}
