package workload

import (
	"fmt"
	"sort"

	"molcache/internal/addr"
	"molcache/internal/rng"
)

// Benchmarks in this file model the paper's workloads. Each model is a
// composition of the pattern primitives with parameters chosen for the
// benchmark's published memory behaviour:
//
//   - SPEC CPU2000: art (cache-sensitive blocked loop that just fits a
//     1 MB L2 alone), mcf (huge pointer-chasing working set), ammp (small
//     hot working set), parser (dictionary with Zipf popularity), crafty
//     (small hash tables), gcc (mixed medium), gzip (streaming input +
//     sliding window), twolf (flat medium working set), gap (medium loop).
//   - NetBench: CRC (pure packet streaming), DRR (round-robin queue
//     buffers), NAT (large flow-table lookups + packet stream).
//   - MediaBench: CJPEG (blocked image sweep), decode (bitstream +
//     reference frame), epic (strided image-pyramid walk).
//
// Every model is deterministic given (base, seed).

// SPECNames are the four benchmarks of the paper's Table 1 / Figure 5
// study, in the paper's order.
var SPECNames = []string{"art", "ammp", "mcf", "parser"}

// MixedNames are the twelve benchmarks of the paper's mixed
// SPEC+NetBench+MediaBench study (Table 2 / Figure 6), in the paper's
// Figure 6 x-axis order.
var MixedNames = []string{
	"crafty", "CRC", "DRR", "epic", "decode", "gap",
	"gcc", "gzip", "CJPEG", "NAT", "parser", "twolf",
}

// builder constructs a benchmark generator rooted at base with the given
// deterministic seed.
type builder func(base, seed uint64) Generator

var registry = map[string]builder{
	"art":    buildArt,
	"mcf":    buildMcf,
	"ammp":   buildAmmp,
	"parser": buildParser,
	"crafty": buildCrafty,
	"gcc":    buildGcc,
	"gzip":   buildGzip,
	"twolf":  buildTwolf,
	"gap":    buildGap,
	"CRC":    buildCRC,
	"DRR":    buildDRR,
	"NAT":    buildNAT,
	"CJPEG":  buildCJPEG,
	"decode": buildDecode,
	"epic":   buildEpic,
}

// Names returns every registered benchmark name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New builds the named benchmark model rooted at base. The base should be
// unique per running application instance (the harness uses
// asid << 36) so that address spaces never collide.
func New(name string, base, seed uint64) (Generator, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return b(base, seed), nil
}

// MustNew is New for static benchmark names; it panics on unknown names.
func MustNew(name string, base, seed uint64) Generator {
	g, err := New(name, base, seed)
	if err != nil {
		panic(err)
	}
	return g
}

const (
	kb = addr.KB
	mb = addr.MB
)

// stagger returns a deterministic sub-megabyte offset so that a
// component's region does not start exactly at cache set 0. Real
// program segments are not megabyte-aligned; without this, every
// component of every application would collide in the same low sets of
// any set-indexed cache, grossly exaggerating conflict misses.
func stagger(src *rng.Source) uint64 {
	return uint64(src.Intn(12288)) * 64 // 0 .. 768KB, line aligned
}

// art: a blocked numeric loop whose working set (~896 KB) just fits a
// 1 MB L2 when run alone but thrashes as soon as it has to share,
// reproducing Table 1's 0.064 -> 0.73 collapse. A thin uniform-random
// tail over a large region supplies the standalone misses.
func buildArt(base, seed uint64) Generator {
	src := rng.New(seed ^ 0xa27)
	loop := NewLoop("art.loop", base+stagger(src), 640*kb, 0.30, src)
	scan := NewStream("art.scan", base+1*mb+stagger(src), 4*mb, 0.10, src)
	return NewMix("art", src, []Generator{loop, scan}, []float64{0.98, 0.02})
}

// mcf: pointer chasing over a 12 MB arc network — reuse distance far
// beyond any evaluated cache — plus a moderately hot node subset.
func buildMcf(base, seed uint64) Generator {
	src := rng.New(seed ^ 0x3cf)
	chase := NewPointerChase("mcf.chase", base+stagger(src), 2560*kb, 64, 0.15, src)
	hot := NewZipf("mcf.hot", base+16*mb+stagger(src), 1536*kb, 64, 1.1, 1, 0.15, src)
	return NewMix("mcf", src, []Generator{chase, hot}, []float64{0.32, 0.68})
}

// ammp: molecular dynamics with a small resident set; almost everything
// that escapes the L1 hits the L2 at every evaluated size.
func buildAmmp(base, seed uint64) Generator {
	src := rng.New(seed ^ 0xa99)
	loop := NewLoop("ammp.loop", base+stagger(src), 48*kb, 0.35, src)
	hot := NewZipf("ammp.hot", base+1*mb+stagger(src), 256*kb, 64, 1.2, 1, 0.25, src)
	return NewMix("ammp", src, []Generator{loop, hot}, []float64{0.55, 0.45})
}

// parser: dictionary lookups with Zipf popularity over ~1.5 MB plus a
// small parse-state loop; sensitive to its share of a shared cache.
func buildParser(base, seed uint64) Generator {
	src := rng.New(seed ^ 0x9a5)
	dict := NewZipf("parser.dict", base+stagger(src), 1024*kb, 64, 1.0, 16, 0.10, src)
	state := NewLoop("parser.state", base+4*mb+stagger(src), 96*kb, 0.30, src)
	input := NewStream("parser.input", base+8*mb+stagger(src), 8*mb, 0.0, src)
	return NewMix("parser", src, []Generator{dict, state, input},
		[]float64{0.58, 0.38, 0.04})
}

// crafty: chess hash/attack tables, small and hot.
func buildCrafty(base, seed uint64) Generator {
	src := rng.New(seed ^ 0xc4a)
	tables := NewZipf("crafty.tables", base+stagger(src), 96*kb, 64, 1.1, 8, 0.20, src)
	board := NewLoop("crafty.board", base+1*mb+stagger(src), 32*kb, 0.40, src)
	return NewMix("crafty", src, []Generator{tables, board}, []float64{0.55, 0.45})
}

// gcc: mixed medium working set (IR traversal, symbol tables, text sweep).
func buildGcc(base, seed uint64) Generator {
	src := rng.New(seed ^ 0x6cc)
	ir := NewZipf("gcc.ir", base+stagger(src), 192*kb, 64, 0.8, 8, 0.25, src)
	sweep := NewStream("gcc.sweep", base+4*mb+stagger(src), 4*mb, 0.10, src)
	hot := NewLoop("gcc.hot", base+16*mb+stagger(src), 64*kb, 0.30, src)
	return NewMix("gcc", src, []Generator{ir, sweep, hot}, []float64{0.55, 0.15, 0.30})
}

// gzip: streaming input with a 256 KB sliding-window dictionary.
func buildGzip(base, seed uint64) Generator {
	src := rng.New(seed ^ 0x621)
	input := NewStream("gzip.input", base+stagger(src), 16*mb, 0.05, src)
	window := NewZipf("gzip.window", base+32*mb+stagger(src), 128*kb, 64, 0.7, 4, 0.45, src)
	return NewMix("gzip", src, []Generator{input, window}, []float64{0.30, 0.70})
}

// twolf: place-and-route with a flat (low-skew) medium working set and
// some pointer chasing through netlists.
func buildTwolf(base, seed uint64) Generator {
	src := rng.New(seed ^ 0x201f)
	cells := NewZipf("twolf.cells", base+stagger(src), 160*kb, 64, 0.55, 4, 0.30, src)
	nets := NewPointerChase("twolf.nets", base+2*mb+stagger(src), 128*kb, 64, 0.15, src)
	return NewMix("twolf", src, []Generator{cells, nets}, []float64{0.70, 0.30})
}

// gap: group-theory interpreter, medium loop plus bag-of-objects heap.
func buildGap(base, seed uint64) Generator {
	src := rng.New(seed ^ 0x6a9)
	work := NewLoop("gap.work", base+stagger(src), 160*kb, 0.30, src)
	heap := NewZipf("gap.heap", base+2*mb+stagger(src), 256*kb, 64, 0.9, 8, 0.25, src)
	return NewMix("gap", src, []Generator{work, heap}, []float64{0.55, 0.45})
}

// CRC: checksum over packet payloads — pure streaming, no reuse; no
// cache of any size can satisfy a miss-rate goal for it.
func buildCRC(base, seed uint64) Generator {
	src := rng.New(seed ^ 0xc2c)
	return NewStream("CRC", base+stagger(src), 64*mb, 0.02, src)
}

// DRR: deficit round robin — the scheduler cycles through per-flow queue
// buffers, each walked sequentially.
func buildDRR(base, seed uint64) Generator {
	src := rng.New(seed ^ 0xd22)
	const queues = 8
	phases := make([]Phase, queues)
	for q := 0; q < queues; q++ {
		qbase := base + uint64(q)*(1*mb) + stagger(src)
		phases[q] = Phase{
			Gen: NewStream(fmt.Sprintf("DRR.q%d", q), qbase, 32*kb, 0.50, src),
			Len: 4000,
		}
	}
	return NewPhased("DRR", phases)
}

// NAT: network address translation — Zipf flow-table lookups over a large
// table plus packet-header streaming.
func buildNAT(base, seed uint64) Generator {
	src := rng.New(seed ^ 0x9a7)
	table := NewZipf("NAT.table", base+stagger(src), 1*mb, 64, 1.05, 8, 0.30, src)
	pkts := NewStream("NAT.pkts", base+16*mb+stagger(src), 16*mb, 0.10, src)
	return NewMix("NAT", src, []Generator{table, pkts}, []float64{0.75, 0.25})
}

// CJPEG: JPEG compression — 8x8 blocked sweep over the image (strided
// row access within macroblocks) plus hot quantization tables.
func buildCJPEG(base, seed uint64) Generator {
	src := rng.New(seed ^ 0xc19)
	image := NewStride("CJPEG.image", base+stagger(src), 256*kb, 512, 0.20, src)
	tables := NewLoop("CJPEG.tables", base+8*mb+stagger(src), 48*kb, 0.10, src)
	return NewMix("CJPEG", src, []Generator{image, tables}, []float64{0.55, 0.45})
}

// decode: video decode — sequential bitstream plus reference-frame reuse.
func buildDecode(base, seed uint64) Generator {
	src := rng.New(seed ^ 0xdec)
	bits := NewStream("decode.bits", base+stagger(src), 12*mb, 0.02, src)
	ref := NewLoop("decode.ref", base+16*mb+stagger(src), 256*kb, 0.40, src)
	return NewMix("decode", src, []Generator{bits, ref}, []float64{0.25, 0.75})
}

// epic: image-pyramid wavelet coder — large-stride walks that defeat
// spatial locality at every pyramid level, plus a small filter kernel.
func buildEpic(base, seed uint64) Generator {
	src := rng.New(seed ^ 0xe91)
	pyramid := NewStride("epic.pyramid", base+stagger(src), 512*kb, 2*kb, 0.25, src)
	kernel := NewLoop("epic.kernel", base+8*mb+stagger(src), 96*kb, 0.30, src)
	return NewMix("epic", src, []Generator{pyramid, kernel}, []float64{0.45, 0.55})
}
