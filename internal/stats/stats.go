// Package stats provides the counters and aggregations every cache model
// in the repository reports through: hit/miss ledgers (global and
// per-ASID), sliding miss-rate windows for the resize controller, simple
// histograms, and summary statistics for the experiment tables.
package stats

import (
	"fmt"
	"sort"
)

// HitMiss is a basic hit/miss counter pair.
type HitMiss struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns the total number of recorded accesses.
func (h HitMiss) Accesses() uint64 { return h.Hits + h.Misses }

// MissRate returns misses/accesses, or 0 when nothing was recorded.
func (h HitMiss) MissRate() float64 {
	n := h.Accesses()
	if n == 0 {
		return 0
	}
	return float64(h.Misses) / float64(n)
}

// HitRate returns hits/accesses, or 0 when nothing was recorded.
func (h HitMiss) HitRate() float64 {
	n := h.Accesses()
	if n == 0 {
		return 0
	}
	return float64(h.Hits) / float64(n)
}

// Add accumulates other into h.
func (h *HitMiss) Add(other HitMiss) {
	h.Hits += other.Hits
	h.Misses += other.Misses
}

// Record adds one access with the given outcome.
func (h *HitMiss) Record(hit bool) {
	if hit {
		h.Hits++
	} else {
		h.Misses++
	}
}

func (h HitMiss) String() string {
	return fmt.Sprintf("hits=%d misses=%d missRate=%.4f", h.Hits, h.Misses, h.MissRate())
}

// Ledger tracks hit/miss counts globally and per ASID. The zero value is
// ready to use.
type Ledger struct {
	Total  HitMiss
	perApp map[uint16]*HitMiss
}

// Record adds one access for the given ASID.
func (l *Ledger) Record(asid uint16, hit bool) {
	l.Total.Record(hit)
	l.AppRef(asid).Record(hit)
}

// AppRef returns the stable counter cell for one ASID, creating it if
// needed. The pointer stays valid until Reset; hot paths cache it so a
// per-access Record needs no map lookup (the caller must still bump
// Total itself).
func (l *Ledger) AppRef(asid uint16) *HitMiss {
	if l.perApp == nil {
		l.perApp = make(map[uint16]*HitMiss)
	}
	hm := l.perApp[asid]
	if hm == nil {
		hm = &HitMiss{}
		l.perApp[asid] = hm
	}
	return hm
}

// App returns the counters for one ASID (zero value if never seen).
func (l *Ledger) App(asid uint16) HitMiss {
	if hm := l.perApp[asid]; hm != nil {
		return *hm
	}
	return HitMiss{}
}

// ASIDs returns the sorted list of ASIDs with recorded accesses.
func (l *Ledger) ASIDs() []uint16 {
	ids := make([]uint16, 0, len(l.perApp))
	for id := range l.perApp {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Reset clears all counters.
func (l *Ledger) Reset() {
	l.Total = HitMiss{}
	l.perApp = nil
}

// SetApp overwrites the counters for one ASID, creating the cell if
// needed. Restore paths use it to rebuild a ledger from a checkpoint;
// the returned pointer is the same stable cell AppRef would hand out.
func (l *Ledger) SetApp(asid uint16, hm HitMiss) *HitMiss {
	cell := l.AppRef(asid)
	*cell = hm
	return cell
}

// Window is a resettable hit/miss counter used for periodic miss-rate
// sampling (the resize controller reads and resets one per partition and
// one global window every resize period).
type Window struct {
	cur HitMiss
}

// Record adds one access to the current window.
func (w *Window) Record(hit bool) { w.cur.Record(hit) }

// Snapshot returns the counters accumulated since the last Roll.
func (w *Window) Snapshot() HitMiss { return w.cur }

// Roll returns the accumulated counters and starts a fresh window.
func (w *Window) Roll() HitMiss {
	out := w.cur
	w.cur = HitMiss{}
	return out
}

// Restore overwrites the current window with previously captured
// counters (checkpoint restore).
func (w *Window) Restore(hm HitMiss) { w.cur = hm }

// Add accumulates externally counted hits and misses into the current
// window (epoch merges fold shard-lane deltas in with this).
func (w *Window) Add(hm HitMiss) { w.cur.Add(hm) }

// Histogram is a fixed-bucket counter for small non-negative integers
// (e.g. probes per access). Values beyond the last bucket land in it.
type Histogram struct {
	Buckets []uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// NewHistogram returns a histogram with n buckets for values 0..n-1;
// values >= n-1 are clamped into the final bucket.
func NewHistogram(n int) *Histogram {
	return &Histogram{Buckets: make([]uint64, n)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := v
	if i >= uint64(len(h.Buckets)) {
		i = uint64(len(h.Buckets) - 1)
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge accumulates another histogram with the same bucket geometry.
// Counts and sums are commutative, so merging per-shard histograms in
// any order reproduces the serial observation stream exactly. Merging
// histograms with different bucket counts is a programming error and
// panics.
func (h *Histogram) Merge(o *Histogram) {
	if len(o.Buckets) != len(h.Buckets) {
		panic(fmt.Sprintf("stats: merging histogram with %d buckets into %d",
			len(o.Buckets), len(h.Buckets)))
	}
	for i, v := range o.Buckets {
		h.Buckets[i] += v
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Reset zeroes the histogram in place, keeping the bucket geometry.
func (h *Histogram) Reset() {
	for i := range h.Buckets {
		h.Buckets[i] = 0
	}
	h.Count = 0
	h.Sum = 0
	h.Max = 0
}

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Summary holds descriptive statistics of a float64 sample.
type Summary struct {
	N        int
	Mean     float64
	Min, Max float64
	StdDev   float64
	P50, P90 float64
}

// Summarize computes descriptive statistics; it returns the zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.StdDev = sqrt(varSum / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	return s
}

// quantile returns the q-quantile of a sorted sample using nearest-rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// sqrt computes the square root via Newton iterations; good to ~1e-12
// relative for the magnitudes used here.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Sqrt exposes the local square root for packages that need one without
// importing math (kept consistent with Summarize's internals).
func Sqrt(x float64) float64 { return sqrt(x) }
