package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHitMissBasics(t *testing.T) {
	var h HitMiss
	if h.MissRate() != 0 || h.HitRate() != 0 {
		t.Error("empty HitMiss should report zero rates")
	}
	h.Record(true)
	h.Record(true)
	h.Record(false)
	if h.Accesses() != 3 {
		t.Errorf("Accesses = %d, want 3", h.Accesses())
	}
	if got := h.MissRate(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("MissRate = %v, want 1/3", got)
	}
	if got := h.HitRate(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("HitRate = %v, want 2/3", got)
	}
}

func TestHitMissAdd(t *testing.T) {
	a := HitMiss{Hits: 3, Misses: 1}
	b := HitMiss{Hits: 2, Misses: 5}
	a.Add(b)
	if a.Hits != 5 || a.Misses != 6 {
		t.Errorf("Add = %+v, want hits=5 misses=6", a)
	}
}

func TestLedgerPerApp(t *testing.T) {
	var l Ledger
	l.Record(1, true)
	l.Record(1, false)
	l.Record(2, false)
	if got := l.App(1); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("App(1) = %+v", got)
	}
	if got := l.App(2); got.Misses != 1 {
		t.Errorf("App(2) = %+v", got)
	}
	if got := l.App(3); got.Accesses() != 0 {
		t.Errorf("App(3) = %+v, want zero", got)
	}
	if l.Total.Accesses() != 3 {
		t.Errorf("Total = %+v, want 3 accesses", l.Total)
	}
	ids := l.ASIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("ASIDs = %v, want [1 2]", ids)
	}
	l.Reset()
	if l.Total.Accesses() != 0 || len(l.ASIDs()) != 0 {
		t.Error("Reset did not clear the ledger")
	}
}

// Property: ledger total always equals the sum over apps.
func TestLedgerConsistencyProperty(t *testing.T) {
	f := func(events []uint16) bool {
		var l Ledger
		for i, e := range events {
			l.Record(e%4, i%3 == 0)
		}
		var sum HitMiss
		for _, id := range l.ASIDs() {
			sum.Add(l.App(id))
		}
		return sum == l.Total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowRoll(t *testing.T) {
	var w Window
	w.Record(true)
	w.Record(false)
	got := w.Roll()
	if got.Hits != 1 || got.Misses != 1 {
		t.Errorf("Roll = %+v", got)
	}
	if w.Snapshot().Accesses() != 0 {
		t.Error("window not cleared after Roll")
	}
	w.Record(false)
	if w.Snapshot().Misses != 1 {
		t.Error("window did not accumulate after Roll")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []uint64{0, 1, 1, 2, 9} {
		h.Observe(v)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 || h.Buckets[2] != 1 || h.Buckets[3] != 1 {
		t.Errorf("Buckets = %v", h.Buckets)
	}
	if h.Count != 5 || h.Sum != 13 || h.Max != 9 {
		t.Errorf("Count/Sum/Max = %d/%d/%d", h.Count, h.Sum, h.Max)
	}
	if got := h.Mean(); math.Abs(got-13.0/5) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("StdDev = %v, want sqrt(2)", s.StdDev)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
	if s.P90 != 4 { // nearest-rank on index int(0.9*4)=3
		t.Errorf("P90 = %v, want 4", s.P90)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSqrtMatchesMath(t *testing.T) {
	f := func(v uint32) bool {
		x := float64(v) / 1000
		got := Sqrt(x)
		want := math.Sqrt(x)
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Sqrt(-1) != 0 || Sqrt(0) != 0 {
		t.Error("Sqrt of non-positive should be 0")
	}
}
