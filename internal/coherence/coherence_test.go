package coherence

import (
	"testing"
	"testing/quick"
)

func TestFirstReadIsExclusive(t *testing.T) {
	d := NewDirectory()
	act, _ := d.Read(1, 0)
	if act.NewState != Exclusive || act.InvalidateMask != 0 || act.WritebackFrom != -1 {
		t.Errorf("first read = %+v", act)
	}
	if d.StateOf(1, 0) != Exclusive {
		t.Errorf("state = %v, want E", d.StateOf(1, 0))
	}
}

func TestSecondReaderSharesAndDowngrades(t *testing.T) {
	d := NewDirectory()
	d.Read(1, 0) // E
	act, _ := d.Read(1, 1)
	if act.NewState != Shared {
		t.Errorf("second reader state = %v", act.NewState)
	}
	if act.DowngradeMask != 1<<0 {
		t.Errorf("downgrade mask = %b, want owner bit", act.DowngradeMask)
	}
	if act.WritebackFrom != -1 {
		t.Error("clean E copy should not write back")
	}
	if d.StateOf(1, 0) != Shared || d.StateOf(1, 1) != Shared {
		t.Errorf("states = %v, %v, want S, S", d.StateOf(1, 0), d.StateOf(1, 1))
	}
}

func TestReadFromModifiedWritesBack(t *testing.T) {
	d := NewDirectory()
	d.Write(1, 0) // M
	act, _ := d.Read(1, 1)
	if act.WritebackFrom != 0 {
		t.Errorf("WritebackFrom = %d, want 0", act.WritebackFrom)
	}
	if act.DowngradeMask != 1<<0 {
		t.Errorf("DowngradeMask = %b", act.DowngradeMask)
	}
	if d.StateOf(1, 0) != Shared {
		t.Errorf("former owner state = %v, want S", d.StateOf(1, 0))
	}
	if d.Stats().Writebacks != 1 || d.Stats().Downgrades != 1 {
		t.Errorf("stats = %+v", d.Stats())
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	d := NewDirectory()
	d.Read(1, 0) // E
	act, _ := d.Write(1, 0)
	if act.NewState != Modified || act.InvalidateMask != 0 {
		t.Errorf("E->M upgrade = %+v", act)
	}
	if d.Stats().SilentUpgrades != 1 {
		t.Errorf("silent upgrades = %d", d.Stats().SilentUpgrades)
	}
	if d.StateOf(1, 0) != Modified {
		t.Errorf("state = %v, want M", d.StateOf(1, 0))
	}
}

func TestSToMInvalidatesSharers(t *testing.T) {
	d := NewDirectory()
	d.Read(1, 0)
	d.Read(1, 1)
	d.Read(1, 2) // S in 0,1,2
	act, _ := d.Write(1, 1)
	if act.InvalidateMask != (1<<0 | 1<<2) {
		t.Errorf("invalidate mask = %b, want caches 0 and 2", act.InvalidateMask)
	}
	if d.Stats().OwnershipUpgrades != 1 || d.Stats().Invalidations != 2 {
		t.Errorf("stats = %+v", d.Stats())
	}
	if d.StateOf(1, 0) != Invalid || d.StateOf(1, 2) != Invalid || d.StateOf(1, 1) != Modified {
		t.Error("post-upgrade states wrong")
	}
}

func TestWriteMissFromModifiedOwner(t *testing.T) {
	d := NewDirectory()
	d.Write(1, 0) // M in 0
	act, _ := d.Write(1, 1)
	if act.InvalidateMask != 1<<0 || act.WritebackFrom != 0 {
		t.Errorf("write-miss action = %+v", act)
	}
	if d.StateOf(1, 0) != Invalid || d.StateOf(1, 1) != Modified {
		t.Error("ownership did not transfer")
	}
}

func TestEvictForgetsSharer(t *testing.T) {
	d := NewDirectory()
	d.Write(1, 0)
	d.Evict(1, 0)
	if d.StateOf(1, 0) != Invalid {
		t.Error("evicted copy still tracked")
	}
	if d.Lines() != 0 {
		t.Error("empty entry not reclaimed")
	}
	// A later read is a fresh Exclusive.
	if act, _ := d.Read(1, 2); act.NewState != Exclusive {
		t.Errorf("post-evict read = %+v", act)
	}
	// Evicting an untracked line is a no-op.
	d.Evict(99, 3)
}

func TestRepeatedAccessIsQuiet(t *testing.T) {
	d := NewDirectory()
	d.Write(1, 0)
	for i := 0; i < 5; i++ {
		act, _ := d.Read(1, 0)
		if act.InvalidateMask != 0 || act.DowngradeMask != 0 || act.WritebackFrom != -1 {
			t.Errorf("self read produced traffic: %+v", act)
		}
		if act.NewState != Modified {
			t.Errorf("self read state = %v, want M retained", act.NewState)
		}
	}
}

func TestCacheIDBounds(t *testing.T) {
	d := NewDirectory()
	for _, id := range []int{-1, MaxCaches, MaxCaches + 7} {
		if _, err := d.Read(1, id); err == nil {
			t.Errorf("Read with cache id %d accepted", id)
		}
		if _, err := d.Write(1, id); err == nil {
			t.Errorf("Write with cache id %d accepted", id)
		}
		if err := d.Evict(1, id); err == nil {
			t.Errorf("Evict with cache id %d accepted", id)
		}
	}
	// Rejected requests must not perturb state or counters.
	if d.Lines() != 0 {
		t.Errorf("rejected requests created %d directory entries", d.Lines())
	}
	if s := d.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Errorf("rejected requests counted: %+v", s)
	}
	// The boundary IDs themselves work.
	if _, err := d.Read(1, 0); err != nil {
		t.Errorf("Read from cache 0: %v", err)
	}
	if _, err := d.Write(2, MaxCaches-1); err != nil {
		t.Errorf("Write from cache %d: %v", MaxCaches-1, err)
	}
}

// Protocol invariants under random operation sequences:
//  1. at most one cache in M or E per line;
//  2. if any cache is in S, no cache is in M or E;
//  3. the directory's answer to StateOf is consistent with a shadow
//     model applying the returned actions.
func TestMESIInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDirectory()
		shadow := map[uint64]map[int]State{} // line -> cache -> state
		apply := func(line uint64, act Action, requestor int) {
			m := shadow[line]
			if m == nil {
				m = map[int]State{}
				shadow[line] = m
			}
			for c := 0; c < 4; c++ {
				if act.InvalidateMask&(1<<uint(c)) != 0 {
					m[c] = Invalid
				}
				if act.DowngradeMask&(1<<uint(c)) != 0 {
					m[c] = Shared
				}
			}
			m[requestor] = act.NewState
		}
		for _, op := range ops {
			line := uint64(op % 8)
			c := int(op>>3) % 4
			var act Action
			switch (op >> 6) % 3 {
			case 0:
				act, _ = d.Read(line, c)
			case 1:
				act, _ = d.Write(line, c)
			case 2:
				d.Evict(line, c)
				if m := shadow[line]; m != nil {
					m[c] = Invalid
				}
				continue
			}
			apply(line, act, c)
			// Invariants over the shadow state.
			owners, sharers := 0, 0
			for cc, st := range shadow[line] {
				switch st {
				case Modified, Exclusive:
					owners++
				case Shared:
					sharers++
				}
				if d.StateOf(line, cc) != st {
					return false
				}
			}
			if owners > 1 || (owners > 0 && sharers > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" ||
		Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("state names wrong")
	}
}
