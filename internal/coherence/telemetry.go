package coherence

import "molcache/internal/telemetry"

// dirInstruments caches the registry handles for the protocol paths.
// Nil (the default) means metrics are off and each request pays one
// pointer check.
type dirInstruments struct {
	invalidations *telemetry.Counter
	downgrades    *telemetry.Counter
	writebacks    *telemetry.Counter
}

// AttachTelemetry routes protocol events through a tracer (one event
// per invalidation or downgrade burst, carrying the victim count) and a
// registry (invalidation/downgrade/writeback counters). Either may be
// nil.
func (d *Directory) AttachTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	d.tracer = tr
	if reg == nil {
		d.ins = nil
		return
	}
	d.ins = &dirInstruments{
		invalidations: reg.Counter("molcache_coherence_invalidations_total"),
		downgrades:    reg.Counter("molcache_coherence_downgrades_total"),
		writebacks:    reg.Counter("molcache_coherence_writebacks_total"),
	}
	reg.RegisterGaugeFunc("molcache_coherence_tracked_lines",
		func() float64 { return float64(d.Lines()) })
}

// observeInvalidations records one write's invalidation burst.
func (d *Directory) observeInvalidations(line uint64, n int) {
	if n == 0 {
		return
	}
	if d.ins != nil {
		d.ins.invalidations.Add(uint64(n))
	}
	if d.tracer != nil {
		d.tracer.Coherence(telemetry.KindInvalidate, line, n)
	}
}

// observeWriteback records one protocol-forced dirty flush.
func (d *Directory) observeWriteback() {
	if d.ins != nil {
		d.ins.writebacks.Inc()
	}
}

// observeDowngrade records one read-triggered M/E -> S demotion.
func (d *Directory) observeDowngrade(line uint64) {
	if d.ins != nil {
		d.ins.downgrades.Inc()
	}
	if d.tracer != nil {
		d.tracer.Coherence(telemetry.KindDowngrade, line, 1)
	}
}
