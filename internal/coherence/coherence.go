// Package coherence implements a directory-based MESI protocol for the
// private L1 caches of the CMP substrate (the role the paper assigns to
// the Ulmos' "Cache Coherency Unit"). The directory tracks every line's
// global state and sharer set and, for each processor read or write,
// returns the actions the caches must apply (invalidations, downgrades,
// writebacks) together with the requestor's resulting state.
//
// The package is pure protocol: it never touches cache arrays itself, so
// it can be tested exhaustively as a state machine and reused by any
// cache model.
package coherence

import (
	"fmt"

	"molcache/internal/telemetry"
)

// State is a MESI line state.
type State uint8

// The MESI states.
const (
	// Invalid: the cache holds no copy.
	Invalid State = iota
	// Shared: a clean copy, possibly held by several caches.
	Shared
	// Exclusive: the only copy, clean.
	Exclusive
	// Modified: the only copy, dirty.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// MaxCaches bounds the sharer bitmask.
const MaxCaches = 16

// Action tells the caches what to do for one request.
type Action struct {
	// NewState is the requestor's resulting state.
	NewState State
	// InvalidateMask marks caches (bit i = cache i) that must drop the
	// line.
	InvalidateMask uint16
	// DowngradeMask marks caches that must demote the line to Shared
	// (clearing the dirty bit after the writeback below).
	DowngradeMask uint16
	// WritebackFrom is the cache that must write its dirty copy back
	// (-1 when none). On a read it accompanies a downgrade; on a write,
	// an invalidation.
	WritebackFrom int8
}

// Stats counts protocol events.
type Stats struct {
	Reads, Writes     uint64
	Invalidations     uint64 // copies killed by remote writes
	Downgrades        uint64 // M/E copies demoted to S by remote reads
	Writebacks        uint64 // dirty copies flushed by the protocol
	SilentUpgrades    uint64 // E -> M on a local write, no traffic
	OwnershipUpgrades uint64 // S -> M (invalidating other sharers)
}

// entry is one line's directory record.
type entry struct {
	sharers uint16
	// owner holds the single E/M holder (-1 when the line is Shared
	// among several caches or uncached).
	owner int8
	dirty bool
}

// Directory is the protocol engine.
type Directory struct {
	lines map[uint64]*entry
	stats Stats

	// tracer and ins are the telemetry attachments (nil by default:
	// each request pays one pointer check when telemetry is off).
	tracer *telemetry.Tracer
	ins    *dirInstruments
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{lines: make(map[uint64]*entry)}
}

// Stats returns accumulated protocol counters.
func (d *Directory) Stats() Stats { return d.stats }

// StateOf reports cache's state for a line (a testing/inspection aid).
func (d *Directory) StateOf(line uint64, cacheID int) State {
	e := d.lines[line]
	if e == nil || e.sharers&(1<<uint(cacheID)) == 0 {
		return Invalid
	}
	if e.owner == int8(cacheID) {
		if e.dirty {
			return Modified
		}
		return Exclusive
	}
	return Shared
}

// Read processes a processor read from cacheID and returns the actions.
// A cache ID outside [0, MaxCaches) is rejected with an error and does
// not perturb directory state.
func (d *Directory) Read(line uint64, cacheID int) (Action, error) {
	if err := checkCacheID(cacheID); err != nil {
		return Action{WritebackFrom: -1}, err
	}
	d.stats.Reads++
	e := d.lines[line]
	bit := uint16(1) << uint(cacheID)
	if e == nil {
		// First touch: Exclusive.
		d.lines[line] = &entry{sharers: bit, owner: int8(cacheID)}
		return Action{NewState: Exclusive, WritebackFrom: -1}, nil
	}
	if e.sharers&bit != 0 {
		// Already holding: state unchanged.
		return Action{NewState: d.StateOf(line, cacheID), WritebackFrom: -1}, nil
	}
	act := Action{NewState: Shared, WritebackFrom: -1}
	if e.owner >= 0 {
		// The E/M holder is demoted to Shared; a dirty copy is first
		// written back.
		act.DowngradeMask = 1 << uint(e.owner)
		d.stats.Downgrades++
		d.observeDowngrade(line)
		if e.dirty {
			act.WritebackFrom = e.owner
			d.stats.Writebacks++
			d.observeWriteback()
			e.dirty = false
		}
		e.owner = -1
	}
	e.sharers |= bit
	return act, nil
}

// Write processes a processor write from cacheID and returns the
// actions. A cache ID outside [0, MaxCaches) is rejected with an error
// and does not perturb directory state.
func (d *Directory) Write(line uint64, cacheID int) (Action, error) {
	if err := checkCacheID(cacheID); err != nil {
		return Action{WritebackFrom: -1}, err
	}
	d.stats.Writes++
	bit := uint16(1) << uint(cacheID)
	e := d.lines[line]
	if e == nil {
		d.lines[line] = &entry{sharers: bit, owner: int8(cacheID), dirty: true}
		return Action{NewState: Modified, WritebackFrom: -1}, nil
	}
	act := Action{NewState: Modified, WritebackFrom: -1}
	switch {
	case e.owner == int8(cacheID):
		if !e.dirty {
			// E -> M: silent upgrade.
			d.stats.SilentUpgrades++
		}
	case e.sharers&bit != 0:
		// S -> M: invalidate the other sharers.
		d.stats.OwnershipUpgrades++
		act.InvalidateMask = e.sharers &^ bit
		d.observeInvalidations(line, d.countInvalidations(act.InvalidateMask))
	default:
		// Write miss: invalidate everyone; a dirty owner writes back.
		act.InvalidateMask = e.sharers
		d.observeInvalidations(line, d.countInvalidations(act.InvalidateMask))
		if e.owner >= 0 && e.dirty {
			act.WritebackFrom = e.owner
			d.stats.Writebacks++
			d.observeWriteback()
		}
	}
	e.sharers = bit
	e.owner = int8(cacheID)
	e.dirty = true
	return act, nil
}

// Evict records that cacheID silently dropped the line (a replacement).
// dirty copies are written back by the evicting cache itself; the
// directory only forgets the sharer. An out-of-range cache ID is
// rejected with an error.
func (d *Directory) Evict(line uint64, cacheID int) error {
	if err := checkCacheID(cacheID); err != nil {
		return err
	}
	e := d.lines[line]
	if e == nil {
		return nil
	}
	bit := uint16(1) << uint(cacheID)
	e.sharers &^= bit
	if e.owner == int8(cacheID) {
		e.owner = -1
		e.dirty = false
	}
	if e.sharers == 0 {
		delete(d.lines, line)
	}
	return nil
}

// Lines returns the number of tracked lines (test aid).
func (d *Directory) Lines() int { return len(d.lines) }

// countInvalidations adds one invalidation per set bit, returning the
// number of copies killed.
func (d *Directory) countInvalidations(mask uint16) int {
	n := 0
	for ; mask != 0; mask &= mask - 1 {
		d.stats.Invalidations++
		n++
	}
	return n
}

// checkCacheID validates a requestor against the sharer-bitmask bound.
func checkCacheID(cacheID int) error {
	if cacheID < 0 || cacheID >= MaxCaches {
		return fmt.Errorf("coherence: cache id %d outside [0,%d)", cacheID, MaxCaches)
	}
	return nil
}

// LineInfo describes one directory entry for inspection (the invariant
// checker's view of the protocol state).
type LineInfo struct {
	// Line is the tracked line address.
	Line uint64
	// Sharers is the bitmask of caches holding a copy.
	Sharers uint16
	// Owner is the single E/M holder, -1 when none.
	Owner int
	// Dirty reports whether the owner's copy is modified.
	Dirty bool
}

// EachLine calls fn for every tracked line. Read-only; iteration order
// is unspecified.
func (d *Directory) EachLine(fn func(LineInfo)) {
	for line, e := range d.lines {
		fn(LineInfo{Line: line, Sharers: e.sharers, Owner: int(e.owner), Dirty: e.dirty})
	}
}
