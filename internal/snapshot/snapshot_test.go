package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() []Section {
	return []Section{
		{Name: "config", Payload: []byte(`{"total_size":524288}`)},
		{Name: "cache", Payload: bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 333)},
		{Name: "empty", Payload: nil},
		{Name: "telemetry", Payload: []byte("counters")},
	}
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	data, err := Encode(want)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d sections, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Errorf("section %d name %q, want %q", i, got[i].Name, want[i].Name)
		}
		if !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("section %q payload mismatch", want[i].Name)
		}
	}
	if _, err := Find(got, "cache"); err != nil {
		t.Errorf("Find(cache): %v", err)
	}
	if _, err := Find(got, "absent"); err == nil {
		t.Errorf("Find(absent) succeeded")
	}
}

func TestEncodeRejectsBadSections(t *testing.T) {
	cases := [][]Section{
		{{Name: ""}},
		{{Name: strings.Repeat("x", 17)}},
		{{Name: "a\x00b"}},
		{{Name: "dup"}, {Name: "dup"}},
	}
	for i, sections := range cases {
		if _, err := Encode(sections); err == nil {
			t.Errorf("case %d: Encode accepted bad sections", i)
		}
	}
}

// TestDecodeCorruption drives the decoder through every corruption
// class the restore path must survive: truncation at each boundary,
// magic/version skew, table damage, offset lies and payload bit flips.
// Every case must produce a typed *Error naming a sensible section.
func TestDecodeCorruption(t *testing.T) {
	valid, err := Encode(sample())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := []struct {
		name    string
		data    []byte
		section string
	}{
		{"empty", nil, "header"},
		{"short-header", valid[:7], "header"},
		{"bad-magic", mut(func(b []byte) []byte { b[0] = 'X'; return b }), "header"},
		{"version-skew", mut(func(b []byte) []byte { b[5] = 99; return b }), "header"},
		{"truncated-table", valid[:headerLen+10], "section-table"},
		{"count-overflow", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:], 0xFFFF)
			return b
		}), "section-table"},
		{"table-bit-flip", mut(func(b []byte) []byte { b[headerLen+3] ^= 0x40; return b }), "section-table"},
		{"header-crc-flip", mut(func(b []byte) []byte { b[8] ^= 0x01; return b }), "section-table"},
		{"truncated-payload", valid[:len(valid)-1], ""},
		{"payload-bit-flip", mut(func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatalf("Decode accepted corrupted input")
			}
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *snapshot.Error", err)
			}
			if tc.section != "" && se.Section != tc.section {
				t.Errorf("error names section %q, want %q (%v)", se.Section, tc.section, err)
			}
		})
	}
}

// TestDecodeOffsetLies rewrites table entries to point outside the file
// or into the table, recomputing the table CRC so only the offset check
// can reject them.
func TestDecodeOffsetLies(t *testing.T) {
	valid, err := Encode(sample())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	count := int(binary.LittleEndian.Uint16(valid[6:]))
	tableEnd := headerLen + count*entryLen
	fixup := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], crc32.ChecksumIEEE(b[headerLen:tableEnd]))
		return b
	}
	cases := []struct {
		name string
		edit func(entry []byte)
	}{
		{"offset-into-table", func(e []byte) { binary.LittleEndian.PutUint64(e[nameLen:], 0) }},
		{"offset-past-eof", func(e []byte) {
			binary.LittleEndian.PutUint64(e[nameLen:], uint64(len(valid)+100))
		}},
		{"length-overflow", func(e []byte) {
			binary.LittleEndian.PutUint64(e[nameLen+8:], ^uint64(0)-8)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), valid...)
			tc.edit(b[headerLen:])
			fixup(b)
			_, err := Decode(b)
			if err == nil {
				t.Fatalf("Decode accepted a lying table entry")
			}
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *snapshot.Error", err)
			}
		})
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.molc1")
	want := sample()
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("read back %d sections, want %d", len(got), len(want))
	}
	// Overwrite must go through the same atomic path.
	if err := WriteFile(path, want[:1]); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile after overwrite: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("read back %d sections after overwrite, want 1", len(got))
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after writes, want just the snapshot", len(entries))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.molc1")); err == nil {
		t.Fatalf("ReadFile on a missing file succeeded")
	}
}
