// Package snapshot implements the MOLC1 checkpoint container: a
// versioned binary envelope holding named sections, each protected by
// its own CRC32, behind a fixed-size section table that is itself
// checksummed. The envelope knows nothing about what the sections
// contain — the facade packs simulation state (cache, resize
// controller, telemetry, fault cursors) into it and unpacks on restore.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       5     magic "MOLC1"
//	5       1     version (currently 1)
//	6       2     section count (uint16)
//	8       4     CRC32 (IEEE) of the section table bytes
//	12      40*n  section table: per entry
//	              [16]byte name (NUL-padded)
//	              uint64   payload offset (from file start)
//	              uint64   payload length
//	              uint32   CRC32 (IEEE) of the payload
//	              uint32   reserved (zero)
//	...           payloads, in table order, no gaps
//
// Decode treats its input as hostile: truncation, torn writes, bit
// flips, version skew and table corruption are all detected and
// reported as *snapshot.Error values naming the failing section; no
// input can make it panic or over-allocate. Writes are crash-safe:
// WriteFile lands the bytes in a temp file, fsyncs, renames into place
// and fsyncs the directory, so a crash leaves either the old snapshot
// or the new one — never a torn file.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Magic identifies a MOLC1 snapshot file.
const Magic = "MOLC1"

// Version is the current container version.
const Version = 1

const (
	headerLen = 12
	entryLen  = 40
	nameLen   = 16
)

// Section is one named payload of the container.
type Section struct {
	Name    string
	Payload []byte
}

// Error is the typed decode error: Section names what failed — a
// payload section's name, or "header" / "section-table" for envelope-
// level corruption — and Reason describes the corruption.
type Error struct {
	Section string
	Reason  string
}

func (e *Error) Error() string { return fmt.Sprintf("snapshot: %s: %s", e.Section, e.Reason) }

func errf(section, format string, args ...any) *Error {
	return &Error{Section: section, Reason: fmt.Sprintf(format, args...)}
}

// Encode serializes sections into a MOLC1 container. Section names must
// be non-empty, unique, NUL-free and at most 16 bytes.
func Encode(sections []Section) ([]byte, error) {
	if len(sections) > 0xFFFF {
		return nil, fmt.Errorf("snapshot: %d sections exceed the uint16 count field", len(sections))
	}
	seen := make(map[string]bool, len(sections))
	for _, s := range sections {
		if s.Name == "" || len(s.Name) > nameLen {
			return nil, fmt.Errorf("snapshot: section name %q must be 1-%d bytes", s.Name, nameLen)
		}
		for i := 0; i < len(s.Name); i++ {
			if s.Name[i] == 0 {
				return nil, fmt.Errorf("snapshot: section name %q contains NUL", s.Name)
			}
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("snapshot: duplicate section %q", s.Name)
		}
		seen[s.Name] = true
	}
	tableLen := entryLen * len(sections)
	total := headerLen + tableLen
	for _, s := range sections {
		total += len(s.Payload)
	}
	out := make([]byte, total)
	copy(out, Magic)
	out[5] = Version
	binary.LittleEndian.PutUint16(out[6:], uint16(len(sections)))

	off := uint64(headerLen + tableLen)
	for i, s := range sections {
		e := out[headerLen+i*entryLen:]
		copy(e[:nameLen], s.Name)
		binary.LittleEndian.PutUint64(e[nameLen:], off)
		binary.LittleEndian.PutUint64(e[nameLen+8:], uint64(len(s.Payload)))
		binary.LittleEndian.PutUint32(e[nameLen+16:], crc32.ChecksumIEEE(s.Payload))
		copy(out[off:], s.Payload)
		off += uint64(len(s.Payload))
	}
	binary.LittleEndian.PutUint32(out[8:], crc32.ChecksumIEEE(out[headerLen:headerLen+tableLen]))
	return out, nil
}

// Decode parses a MOLC1 container, verifying the header, the table
// checksum and every section's CRC. All errors are *Error values; no
// input panics.
func Decode(data []byte) ([]Section, error) {
	if len(data) < headerLen {
		return nil, errf("header", "file of %d bytes is shorter than the %d-byte header", len(data), headerLen)
	}
	if string(data[:5]) != Magic {
		return nil, errf("header", "bad magic %q (want %q)", data[:5], Magic)
	}
	if v := data[5]; v != Version {
		return nil, errf("header", "unsupported version %d (this build reads version %d)", v, Version)
	}
	count := int(binary.LittleEndian.Uint16(data[6:]))
	tableEnd := headerLen + count*entryLen
	if tableEnd > len(data) {
		return nil, errf("section-table", "table of %d entries needs %d bytes, file has %d",
			count, tableEnd, len(data))
	}
	wantCRC := binary.LittleEndian.Uint32(data[8:])
	if got := crc32.ChecksumIEEE(data[headerLen:tableEnd]); got != wantCRC {
		return nil, errf("section-table", "table CRC %#08x does not match header's %#08x", got, wantCRC)
	}
	sections := make([]Section, 0, count)
	seen := make(map[string]bool, count)
	for i := 0; i < count; i++ {
		e := data[headerLen+i*entryLen:]
		name := trimName(e[:nameLen])
		if name == "" {
			return nil, errf("section-table", "entry %d has an empty name", i)
		}
		if seen[name] {
			return nil, errf(name, "section appears twice in the table")
		}
		seen[name] = true
		off := binary.LittleEndian.Uint64(e[nameLen:])
		length := binary.LittleEndian.Uint64(e[nameLen+8:])
		crc := binary.LittleEndian.Uint32(e[nameLen+16:])
		if off < uint64(tableEnd) {
			return nil, errf(name, "payload offset %d overlaps the section table (ends at %d)", off, tableEnd)
		}
		end := off + length
		if end < off || end > uint64(len(data)) {
			return nil, errf(name, "payload [%d,%d) exceeds the %d-byte file (truncated?)", off, end, len(data))
		}
		payload := data[off:end]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, errf(name, "payload CRC %#08x does not match table's %#08x", got, crc)
		}
		sections = append(sections, Section{Name: name, Payload: append([]byte(nil), payload...)})
	}
	return sections, nil
}

// Find returns the named section's payload, or a typed error when the
// container lacks it.
func Find(sections []Section, name string) ([]byte, error) {
	for _, s := range sections {
		if s.Name == name {
			return s.Payload, nil
		}
	}
	return nil, errf(name, "section missing from snapshot")
}

// trimName strips the NUL padding from a table entry's name field; a
// name with interior NULs decodes as its first run (and will then fail
// whatever lookup expected the full name, which is the right outcome
// for a corrupted entry).
func trimName(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
