package snapshot

import (
	"encoding/binary"
	"io"
)

// MaxFrameLen bounds one streamed frame. Frames hold bounded request
// batches or admin records, not whole-cache state, so anything past
// this is corruption, not data.
const MaxFrameLen = 64 << 20

// FrameWriter appends length-prefixed MOLC1 containers to a stream —
// the layout of molcached's access journal. Each frame is a uint32
// little-endian payload length followed by one Encode()d container, so
// every frame carries the container's own section and payload CRCs and
// a torn tail is detectable as a short read.
type FrameWriter struct {
	w io.Writer
}

// NewFrameWriter wraps w. The caller owns buffering and sync.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteFrame encodes sections as one container and appends it.
func (fw *FrameWriter) WriteFrame(sections []Section) error {
	data, err := Encode(sections)
	if err != nil {
		return err
	}
	if len(data) > MaxFrameLen {
		return errf("frame", "frame length %d exceeds cap %d", len(data), MaxFrameLen)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = fw.w.Write(data)
	return err
}

// FrameReader iterates the frames of a journal stream.
type FrameReader struct {
	r io.Reader
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// ReadFrame returns the next frame's sections. A clean end of stream is
// io.EOF; a partial length prefix, truncated payload, oversized length
// or corrupt container is a typed *Error.
func (fr *FrameReader) ReadFrame() ([]Section, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errf("frame", "truncated length prefix: %v", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameLen {
		return nil, errf("frame", "frame length %d exceeds cap %d", n, MaxFrameLen)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(fr.r, data); err != nil {
		return nil, errf("frame", "truncated frame body: %v", err)
	}
	return Decode(data)
}
