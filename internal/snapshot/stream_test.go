package snapshot

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	frames := [][]Section{
		{{Name: "config", Payload: []byte(`{"a":1}`)}},
		{{Name: "batch", Payload: []byte("refs")}, {Name: "extra", Payload: nil}},
		{{Name: "tenant", Payload: bytes.Repeat([]byte{0xAB}, 1000)}},
	}
	for _, f := range frames {
		if err := fw.WriteFrame(f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	for i, want := range frames {
		got, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d sections, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].Name != want[j].Name || !bytes.Equal(got[j].Payload, want[j].Payload) {
				t.Errorf("frame %d section %d mismatch", i, j)
			}
		}
	}
	if _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame([]Section{{Name: "batch", Payload: []byte("payload-bytes")}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 3, 4, 5, len(full) - 1} {
		fr := NewFrameReader(bytes.NewReader(full[:cut]))
		_, err := fr.ReadFrame()
		var se *Error
		if !errors.As(err, &se) {
			t.Errorf("cut at %d: got %v, want typed *Error", cut, err)
		}
	}
}

func TestFrameOversizedLength(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	fr := NewFrameReader(bytes.NewReader(raw))
	_, err := fr.ReadFrame()
	var se *Error
	if !errors.As(err, &se) || se.Section != "frame" {
		t.Fatalf("oversized length: got %v, want frame *Error", err)
	}
}

func TestFrameCorruptContainer(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame([]Section{{Name: "batch", Payload: []byte("payload")}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // flip a payload byte under the section CRC
	fr := NewFrameReader(bytes.NewReader(raw))
	_, err := fr.ReadFrame()
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("corrupt container: got %v, want typed *Error", err)
	}
}
