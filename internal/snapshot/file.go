package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile encodes sections and lands them at path crash-safely: the
// bytes go to a temp file in the same directory, are fsynced, renamed
// over path, and the directory is fsynced so the rename itself is
// durable. A crash at any point leaves either the previous snapshot or
// the complete new one — never a torn file.
func WriteFile(path string, sections []Section) error {
	data, err := Encode(sections)
	if err != nil {
		return err
	}
	return WriteRaw(path, data)
}

// WriteRaw lands pre-encoded container bytes at path with the same
// temp-file + fsync + atomic-rename discipline as WriteFile.
func WriteRaw(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("snapshot: rename into place: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is advisory on some filesystems; a failure
		// here does not un-write the snapshot.
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// ReadFile reads and decodes a snapshot file. Decode errors (including
// truncation and corruption) come back as *Error values; I/O errors are
// wrapped os errors.
func ReadFile(path string) ([]Section, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	return Decode(data)
}
