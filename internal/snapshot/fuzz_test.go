package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode throws arbitrary bytes — seeded with valid MOLC1
// containers and targeted mutations of them — at the decoder. The
// properties under test: Decode never panics, never over-allocates on a
// hostile count field, and anything it accepts survives a re-encode /
// re-decode round trip unchanged.
func FuzzSnapshotDecode(f *testing.F) {
	seedSets := [][]Section{
		nil,
		{{Name: "a", Payload: nil}},
		{{Name: "config", Payload: []byte(`{"seed":7}`)},
			{Name: "cache", Payload: bytes.Repeat([]byte{0x5A}, 200)}},
		{{Name: "0123456789abcdef", Payload: []byte{0}}},
	}
	for _, sections := range seedSets {
		data, err := Encode(sections)
		if err != nil {
			f.Fatalf("Encode seed: %v", err)
		}
		f.Add(data)
		// Targeted mutations: header, table and payload corruption.
		for _, idx := range []int{0, 5, 6, 8} {
			if idx < len(data) {
				m := append([]byte(nil), data...)
				m[idx] ^= 0xFF
				f.Add(m)
			}
		}
		if len(data) > headerLen {
			f.Add(data[:headerLen])
			f.Add(data[:len(data)-1])
			m := append([]byte(nil), data...)
			m[len(m)-1] ^= 0x01
			f.Add(m)
		}
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sections, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode to something that decodes to the
		// same sections (the container is canonical modulo padding and
		// payload placement, which Decode normalizes away).
		re, err := Encode(sections)
		if err != nil {
			t.Fatalf("accepted sections failed to re-encode: %v", err)
		}
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded container failed to decode: %v", err)
		}
		if len(again) != len(sections) {
			t.Fatalf("round trip changed section count: %d -> %d", len(sections), len(again))
		}
		for i := range sections {
			if again[i].Name != sections[i].Name || !bytes.Equal(again[i].Payload, sections[i].Payload) {
				t.Fatalf("round trip changed section %d (%q)", i, sections[i].Name)
			}
		}
	})
}
