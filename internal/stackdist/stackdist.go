// Package stackdist computes LRU stack-distance profiles (Mattson et
// al.'s classic one-pass algorithm, with Olken's Fenwick-tree
// optimization) and the per-application miss-ratio curves they induce.
//
// A miss-ratio curve says, for every possible cache allocation, what an
// application's miss rate under full-LRU would be — the information an
// *oracle* partitioner needs. The package uses it two ways:
//
//   - to validate the synthetic workload models (their curves must show
//     the working-set knees the benchmarks were designed around), and
//   - to compute oracle static partitions, the strongest static baseline
//     the dynamic molecular controller can be compared against
//     (Suh et al.'s marginal-gain allocator with perfect information).
package stackdist

import (
	"fmt"
	"sort"
)

// Profiler accumulates per-ASID stack-distance histograms over a
// line-granular reference stream.
type Profiler struct {
	lineSize uint64
	apps     map[uint16]*appProfile
}

// appProfile is one application's accumulation state.
type appProfile struct {
	// t is the application-local logical time (distinct accesses).
	t int
	// lastTime maps a line to its last access time.
	lastTime map[uint64]int
	// bit is a Fenwick tree over times; bit[p] == 1 while the line last
	// accessed at p has not been touched again.
	bit *fenwick
	// hist[d] counts accesses with stack distance d (capped); cold
	// counts first touches.
	hist map[int]uint64
	cold uint64
	refs uint64
}

// New returns a profiler for the given line size (power of two assumed
// by the caller; typically 64).
func New(lineSize uint64) *Profiler {
	return &Profiler{
		lineSize: lineSize,
		apps:     make(map[uint16]*appProfile),
	}
}

// Record registers one reference.
func (p *Profiler) Record(asid uint16, addr uint64) {
	ap := p.apps[asid]
	if ap == nil {
		ap = &appProfile{
			lastTime: make(map[uint64]int),
			bit:      newFenwick(1024),
			hist:     make(map[int]uint64),
		}
		p.apps[asid] = ap
	}
	line := addr / p.lineSize
	ap.refs++
	if prev, seen := ap.lastTime[line]; seen {
		// Distance = number of distinct lines touched since prev.
		d := ap.bit.sumRange(prev+1, ap.t)
		ap.hist[d]++
		ap.bit.add(prev, -1)
	} else {
		ap.cold++
	}
	ap.t++
	ap.bit.ensure(ap.t + 1)
	ap.bit.add(ap.t-1, 1)
	ap.lastTime[line] = ap.t - 1
}

// ASIDs lists profiled applications in order.
func (p *Profiler) ASIDs() []uint16 {
	out := make([]uint16, 0, len(p.apps))
	for a := range p.apps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Curve builds the application's miss-ratio curve. Returns an error for
// an unprofiled ASID.
func (p *Profiler) Curve(asid uint16) (*Curve, error) {
	ap := p.apps[asid]
	if ap == nil {
		return nil, fmt.Errorf("stackdist: no profile for ASID %d", asid)
	}
	ds := make([]int, 0, len(ap.hist))
	for d := range ap.hist {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	c := &Curve{
		Refs:      ap.refs,
		Cold:      ap.cold,
		Footprint: len(ap.lastTime),
	}
	// cum[i] = accesses with distance <= ds[i] (these hit in a cache of
	// ds[i]+1 lines or more).
	var cum uint64
	for _, d := range ds {
		cum += ap.hist[d]
		c.points = append(c.points, curvePoint{dist: d, cumHits: cum})
	}
	return c, nil
}

// Curve is a miss-ratio curve: miss rate under full-LRU as a function of
// allocated lines.
type Curve struct {
	// Refs is the total profiled references.
	Refs uint64
	// Cold is the number of first touches (compulsory misses).
	Cold uint64
	// Footprint is the number of distinct lines touched.
	Footprint int
	points    []curvePoint
}

type curvePoint struct {
	dist    int
	cumHits uint64
}

// MissRateAt returns the LRU miss rate with an allocation of `lines`
// cache lines.
func (c *Curve) MissRateAt(lines int) float64 {
	if c.Refs == 0 {
		return 0
	}
	// Hits = accesses with stack distance < lines.
	i := sort.Search(len(c.points), func(i int) bool {
		return c.points[i].dist >= lines
	})
	var hits uint64
	if i > 0 {
		hits = c.points[i-1].cumHits
	}
	return 1 - float64(hits)/float64(c.Refs)
}

// LinesForMissRate returns the smallest allocation achieving the target
// miss rate, or (footprint, false) if no allocation can.
func (c *Curve) LinesForMissRate(target float64) (int, bool) {
	lo, hi := 0, c.Footprint+1
	if c.MissRateAt(hi) > target {
		return c.Footprint, false
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if c.MissRateAt(mid) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// fenwick is a grow-on-demand Fenwick (binary indexed) tree over ints.
// Point values are kept alongside the tree so growth is a simple rebuild
// (amortized O(log n) per operation across doublings).
type fenwick struct {
	tree []int
	vals []int
}

func newFenwick(n int) *fenwick {
	n = nextPow2(n + 1)
	return &fenwick{tree: make([]int, n+1), vals: make([]int, n)}
}

// ensure grows the tree to cover index n-1.
func (f *fenwick) ensure(n int) {
	if n < len(f.vals) {
		return
	}
	size := nextPow2(n + 1)
	oldVals := f.vals
	f.vals = make([]int, size)
	copy(f.vals, oldVals)
	f.tree = make([]int, size+1)
	for i, v := range oldVals {
		if v != 0 {
			f.addTree(i, v)
		}
	}
}

// add adds delta at index i (0-based).
func (f *fenwick) add(i, delta int) {
	f.vals[i] += delta
	f.addTree(i, delta)
}

func (f *fenwick) addTree(i, delta int) {
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j] += delta
	}
}

// sum returns the prefix sum over [0, i] (0-based, inclusive).
func (f *fenwick) sum(i int) int {
	s := 0
	for j := i + 1; j > 0; j -= j & -j {
		s += f.tree[j]
	}
	return s
}

// sumRange returns the sum over [lo, hi] (0-based, inclusive); empty
// ranges yield 0.
func (f *fenwick) sumRange(lo, hi int) int {
	if hi < lo {
		return 0
	}
	if hi >= len(f.tree)-1 {
		hi = len(f.tree) - 2
	}
	s := f.sum(hi)
	if lo > 0 {
		s -= f.sum(lo - 1)
	}
	return s
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
