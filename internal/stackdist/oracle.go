package stackdist

import (
	"fmt"
	"sort"
)

// Allocation is an oracle static partition: lines assigned per ASID.
type Allocation struct {
	// Lines maps ASIDs to their allocated cache lines.
	Lines map[uint16]int
	// PredictedMiss maps ASIDs to the LRU miss rate the curve predicts
	// at that allocation.
	PredictedMiss map[uint16]float64
	// PredictedDeviation is the mean excess over the goal that this
	// allocation achieves under the curves.
	PredictedDeviation float64
}

// OraclePartition computes a static partition of totalLines across the
// profiled applications that greedily minimizes the average deviation
// from per-ASID miss-rate goals (Suh's marginal-gain allocation with
// perfect miss-ratio-curve information). Applications without a goal
// receive a minimal allocation (they are unmanaged).
//
// chunk is the allocation granularity in lines (e.g. one molecule's
// worth, 128); it must be positive.
func OraclePartition(curves map[uint16]*Curve, goals map[uint16]float64,
	totalLines, chunk int) (*Allocation, error) {
	if chunk <= 0 {
		return nil, fmt.Errorf("stackdist: chunk must be positive, got %d", chunk)
	}
	if len(curves) == 0 {
		return nil, fmt.Errorf("stackdist: no curves to partition")
	}
	asids := make([]uint16, 0, len(curves))
	for a := range curves {
		asids = append(asids, a)
	}
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })

	alloc := map[uint16]int{}
	remaining := totalLines
	// Everyone starts with one chunk (a partition is never empty).
	for _, a := range asids {
		if remaining < chunk {
			return nil, fmt.Errorf("stackdist: %d lines cannot seed %d applications (chunk %d)",
				totalLines, len(curves), chunk)
		}
		alloc[a] = chunk
		remaining -= chunk
	}
	// excess returns the goal violation for an ASID at `lines`.
	excess := func(a uint16, lines int) float64 {
		goal, managed := goals[a]
		if !managed {
			return 0
		}
		m := curves[a].MissRateAt(lines)
		if m > goal {
			return m - goal
		}
		return 0
	}
	// Greedy by gain-per-line. Cyclic working sets make miss-ratio
	// curves non-convex (one more chunk buys nothing until the whole
	// loop fits), so each application offers two candidate moves: one
	// chunk, and a jump straight to its goal-satisfying allocation.
	// The move with the best deviation improvement per line wins;
	// when no move improves anything, the oracle stops spending.
	roundUp := func(n int) int { return (n + chunk - 1) / chunk * chunk }
	for remaining >= chunk {
		bestASID := uint16(0)
		bestAdd := 0
		bestRate := 0.0
		for _, a := range asids {
			cur := alloc[a]
			e0 := excess(a, cur)
			if e0 == 0 {
				continue
			}
			// Candidate 1: one chunk.
			if g := e0 - excess(a, cur+chunk); g > 0 {
				if rate := g / float64(chunk); rate > bestRate {
					bestASID, bestAdd, bestRate = a, chunk, rate
				}
			}
			// Candidate 2: jump to the goal.
			if goal, ok := goals[a]; ok {
				if lines, feasible := curves[a].LinesForMissRate(goal); feasible && lines > cur {
					add := roundUp(lines - cur)
					if add <= remaining {
						g := e0 - excess(a, cur+add)
						if rate := g / float64(add); rate > bestRate {
							bestASID, bestAdd, bestRate = a, add, rate
						}
					}
				}
			}
		}
		if bestAdd == 0 {
			break
		}
		alloc[bestASID] += bestAdd
		remaining -= bestAdd
	}

	out := &Allocation{
		Lines:         alloc,
		PredictedMiss: map[uint16]float64{},
	}
	sum := 0.0
	managed := 0
	for _, a := range asids {
		out.PredictedMiss[a] = curves[a].MissRateAt(alloc[a])
		if _, ok := goals[a]; ok {
			sum += excess(a, alloc[a])
			managed++
		}
	}
	if managed > 0 {
		out.PredictedDeviation = sum / float64(managed)
	}
	return out, nil
}
