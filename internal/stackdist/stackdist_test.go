package stackdist

import (
	"math"
	"testing"
	"testing/quick"

	"molcache/internal/cache"
	"molcache/internal/trace"
)

func TestFenwickBasics(t *testing.T) {
	f := newFenwick(8)
	f.ensure(16)
	f.add(3, 1)
	f.add(7, 1)
	f.add(12, 1)
	if got := f.sumRange(0, 15); got != 3 {
		t.Errorf("full sum = %d, want 3", got)
	}
	if got := f.sumRange(4, 11); got != 1 {
		t.Errorf("sumRange(4,11) = %d, want 1", got)
	}
	f.add(7, -1)
	if got := f.sumRange(4, 11); got != 0 {
		t.Errorf("after removal = %d, want 0", got)
	}
	if got := f.sumRange(5, 2); got != 0 {
		t.Errorf("empty range = %d, want 0", got)
	}
}

// Property: the Fenwick tree agrees with a naive array under random
// operations and growth.
func TestFenwickMatchesNaive(t *testing.T) {
	f := func(ops []uint16) bool {
		fw := newFenwick(4)
		naive := make([]int, 1<<16)
		for _, op := range ops {
			i := int(op % 2000)
			fw.ensure(i + 1)
			if op%3 == 0 {
				fw.add(i, 1)
				naive[i]++
			}
			lo, hi := int(op%500), int(op%1500)
			want := 0
			for j := lo; j <= hi && j < len(naive); j++ {
				want += naive[j]
			}
			if fw.sumRange(lo, hi) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// A cyclic sweep over N lines has stack distance N-1 for every revisit.
func TestProfilerCyclicSweep(t *testing.T) {
	p := New(64)
	const n = 100
	for sweep := 0; sweep < 5; sweep++ {
		for i := uint64(0); i < n; i++ {
			p.Record(1, i*64)
		}
	}
	c, err := p.Curve(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cold != n || c.Footprint != n {
		t.Errorf("cold=%d footprint=%d, want %d", c.Cold, c.Footprint, n)
	}
	// Capacity n: everything hits after warmup; capacity n-1: LRU
	// thrashes the cyclic sweep completely.
	if got := c.MissRateAt(n); math.Abs(got-float64(n)/float64(5*n)) > 1e-9 {
		t.Errorf("MissRateAt(%d) = %v, want cold-only %v", n, got, 0.2)
	}
	if got := c.MissRateAt(n - 1); got != 1 {
		t.Errorf("MissRateAt(%d) = %v, want 1 (LRU cyclic thrash)", n-1, got)
	}
}

// Repeated touches of one line have distance 0: any capacity hits.
func TestProfilerSingleLine(t *testing.T) {
	p := New(64)
	for i := 0; i < 10; i++ {
		p.Record(1, 0x40)
	}
	c, _ := p.Curve(1)
	if got := c.MissRateAt(1); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("MissRateAt(1) = %v, want 0.1 (one cold miss)", got)
	}
}

func TestProfilerPerASIDIsolation(t *testing.T) {
	p := New(64)
	p.Record(1, 0)
	p.Record(2, 0)
	p.Record(1, 0)
	c1, _ := p.Curve(1)
	if c1.Refs != 2 || c1.Cold != 1 {
		t.Errorf("app 1 curve: %+v", c1)
	}
	if _, err := p.Curve(9); err == nil {
		t.Error("Curve for unknown ASID succeeded")
	}
	if got := p.ASIDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("ASIDs = %v", got)
	}
}

// The curve must agree with an actual fully-associative LRU simulation.
func TestCurveMatchesLRUSimulation(t *testing.T) {
	// A reproducible mixed pattern: interleaved loop and strides.
	var refs []uint64
	for i := 0; i < 4000; i++ {
		refs = append(refs, uint64(i%97)*64)
		refs = append(refs, uint64(i%31)*64+1<<20)
		if i%7 == 0 {
			refs = append(refs, uint64(i)*128+1<<30)
		}
	}
	p := New(64)
	for _, a := range refs {
		p.Record(1, a)
	}
	c, _ := p.Curve(1)
	for _, lines := range []int{16, 64, 128, 256} {
		// Fully associative LRU of `lines` lines = 1 set x lines ways.
		sim := cache.MustNew(cache.Config{
			Size: uint64(lines) * 64, Ways: lines, LineSize: 64, Policy: cache.LRU,
		})
		misses := 0
		for _, a := range refs {
			if !sim.Access(trace.Ref{Addr: a, ASID: 1}).Hit {
				misses++
			}
		}
		want := float64(misses) / float64(len(refs))
		if got := c.MissRateAt(lines); math.Abs(got-want) > 1e-9 {
			t.Errorf("MissRateAt(%d) = %v, LRU simulation = %v", lines, got, want)
		}
	}
}

func TestLinesForMissRate(t *testing.T) {
	p := New(64)
	for sweep := 0; sweep < 10; sweep++ {
		for i := uint64(0); i < 50; i++ {
			p.Record(1, i*64)
		}
	}
	c, _ := p.Curve(1)
	lines, ok := c.LinesForMissRate(0.15)
	if !ok {
		t.Fatal("feasible target reported infeasible")
	}
	if lines != 50 {
		t.Errorf("LinesForMissRate(0.15) = %d, want 50 (the working set)", lines)
	}
	if _, ok := c.LinesForMissRate(0.01); ok {
		t.Error("infeasible target (cold misses alone exceed it) reported feasible")
	}
}

func TestOraclePartition(t *testing.T) {
	p := New(64)
	// App 1: 100-line working set; app 2: 300-line; app 3: streaming.
	for sweep := 0; sweep < 20; sweep++ {
		for i := uint64(0); i < 100; i++ {
			p.Record(1, i*64)
		}
		for i := uint64(0); i < 300; i++ {
			p.Record(2, i*64)
		}
	}
	for i := uint64(0); i < 6000; i++ {
		p.Record(3, i*64)
	}
	curves := map[uint16]*Curve{}
	for _, a := range p.ASIDs() {
		c, err := p.Curve(a)
		if err != nil {
			t.Fatal(err)
		}
		curves[a] = c
	}
	goals := map[uint16]float64{1: 0.10, 2: 0.10, 3: 0.10}
	alloc, err := OraclePartition(curves, goals, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Apps 1 and 2 must receive at least their working sets; app 3 is
	// hopeless and must not hoard beyond its seed.
	if alloc.Lines[1] < 100 {
		t.Errorf("app 1 got %d lines, needs 100", alloc.Lines[1])
	}
	if alloc.Lines[2] < 300 {
		t.Errorf("app 2 got %d lines, needs 300", alloc.Lines[2])
	}
	if alloc.Lines[3] > 32 {
		t.Errorf("streaming app hoarded %d lines", alloc.Lines[3])
	}
	if alloc.PredictedMiss[1] > 0.10 || alloc.PredictedMiss[2] > 0.10 {
		t.Errorf("oracle missed feasible goals: %+v", alloc.PredictedMiss)
	}
	if alloc.PredictedDeviation <= 0 {
		t.Error("deviation should be positive (the streaming app cannot meet its goal)")
	}
}

func TestOraclePartitionErrors(t *testing.T) {
	if _, err := OraclePartition(nil, nil, 100, 16); err == nil {
		t.Error("empty curves accepted")
	}
	curves := map[uint16]*Curve{1: {}}
	if _, err := OraclePartition(curves, nil, 100, 0); err == nil {
		t.Error("zero chunk accepted")
	}
	if _, err := OraclePartition(curves, nil, 8, 16); err == nil {
		t.Error("insufficient seed capacity accepted")
	}
}
