package experiments

// Golden-file regression tests for the exact text cmd/experiments and
// cmd/sweep emit. Any change to a simulation model, a seed, or a renderer
// shows up as a diff against testdata/*.golden. Regenerate with:
//
//	go test ./internal/experiments -run Golden -update
//
// The goldens use small reference counts (the point is byte-stability,
// not paper-scale numbers) and Jobs: 1; TestSweepJobsByteIdentical and
// friends in parallel_test.go pin the parallel paths to these same bytes.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"molcache/internal/addr"
	"molcache/internal/molecular"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// goldenOpts keeps the golden runs quick while exercising every renderer.
var goldenOpts = Options{ProcessorRefs: 400_000, Seed: 2006, Jobs: 1}

// checkGolden diffs got against testdata/<name>.golden (rewriting it
// under -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	rows, err := Table1(goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	checkGolden(t, "table1", buf.Bytes())
}

func TestGoldenFigure5(t *testing.T) {
	points, err := Figure5(goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFigure5(&buf, points)
	checkGolden(t, "figure5", buf.Bytes())
}

func TestGoldenRelatedWork(t *testing.T) {
	rows, err := RelatedWork(goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderRelatedWork(&buf, rows)
	checkGolden(t, "related", buf.Bytes())
}

// TestGoldenTable2Chain pins the whole downstream pipeline (Table 2,
// Figure 6, Tables 4-5, headline), which shares one Table 2 computation
// exactly like cmd/experiments -run all.
func TestGoldenTable2Chain(t *testing.T) {
	t2, err := Table2(goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, t2)
	checkGolden(t, "table2", buf.Bytes())

	buf.Reset()
	RenderFigure6(&buf, Figure6(t2))
	checkGolden(t, "figure6", buf.Bytes())

	t4, err := Table4(goldenOpts, t2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderTable4(&buf, t4)
	checkGolden(t, "table4", buf.Bytes())

	t5, err := Table5(goldenOpts, t2, t4)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderTable5(&buf, t5)
	checkGolden(t, "table5", buf.Bytes())

	h, err := ComputeHeadline(t2, t4)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderHeadline(&buf, h)
	checkGolden(t, "headline", buf.Bytes())
}

// goldenSweepOpts is a small grid that includes an infeasible geometry
// (512KB molecules never fit the 256KB/512KB tiles of these sizes), so
// the skip path is pinned too.
func goldenSweepOpts() SweepOptions {
	return SweepOptions{
		ProcessorRefs: 400_000,
		Seed:          2006,
		Sizes:         []uint64{1 * addr.MB, 2 * addr.MB},
		MoleculeSizes: []uint64{8 * addr.KB, 512 * addr.KB},
		Policies: []molecular.ReplacementKind{
			molecular.RandomReplacement, molecular.RandyReplacement,
		},
		Jobs: 1,
	}
}

func TestGoldenSweepCSV(t *testing.T) {
	rows, err := Sweep(goldenSweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	var skips, feasible int
	for _, r := range rows {
		if r.Skip != nil {
			skips++
			if r.MoleculeSize != 512*addr.KB {
				t.Errorf("unexpected skip at %s: %v", r.Point(), r.Skip)
			}
		} else {
			feasible++
		}
	}
	if skips != 4 || feasible != 4 {
		t.Fatalf("got %d skips / %d feasible rows, want 4 / 4", skips, feasible)
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep", buf.Bytes())
}
