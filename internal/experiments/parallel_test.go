package experiments

// Determinism tests for the parallel runner integration: every experiment
// must produce byte-identical output at any worker count, because jobs
// share only immutable captured traces and results are collected in
// submission order.

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"
	"time"

	"molcache/internal/addr"
	"molcache/internal/molecular"
	"molcache/internal/runner"
	"molcache/internal/telemetry"
)

// smallSweep is an 8-point grid small enough to run at several worker
// counts in one test.
func smallSweep(jobs int) SweepOptions {
	return SweepOptions{
		ProcessorRefs: 200_000,
		Seed:          2006,
		Sizes:         []uint64{1 * addr.MB, 2 * addr.MB},
		MoleculeSizes: []uint64{8 * addr.KB, 16 * addr.KB},
		Policies: []molecular.ReplacementKind{
			molecular.RandomReplacement, molecular.RandyReplacement,
		},
		Jobs: jobs,
	}
}

// TestSweepJobsByteIdentical: the satellite determinism guarantee — the
// same sweep at -jobs 1 and -jobs 8 emits byte-identical CSV.
func TestSweepJobsByteIdentical(t *testing.T) {
	render := func(jobs int) []byte {
		rows, err := Sweep(smallSweep(jobs))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSweepCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	for _, jobs := range []int{2, 8} {
		if parallel := render(jobs); !bytes.Equal(serial, parallel) {
			t.Errorf("-jobs %d CSV differs from serial:\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s",
				jobs, serial, jobs, parallel)
		}
	}
}

// TestTable1JobsIdentical and TestFigure5JobsIdentical pin the paper
// experiments to the same property at the typed-result level.
func TestTable1JobsIdentical(t *testing.T) {
	opt := Options{ProcessorRefs: 200_000, Seed: 2006}
	opt.Jobs = 1
	serial, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Jobs = 8
	parallel, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Table1 rows differ across worker counts:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

func TestFigure5JobsIdentical(t *testing.T) {
	opt := Options{ProcessorRefs: 200_000, Seed: 2006}
	opt.Jobs = 1
	serial, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Jobs = 8
	parallel, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("Figure5 points differ across worker counts")
	}
}

// TestSweepProgressAndMetrics: the runner's observability hooks fire from
// the experiment layer — every grid point reports progress and the
// runner_* counters account for the whole batch.
func TestSweepProgressAndMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	opt := smallSweep(2)
	opt.Registry = reg
	var calls int
	var last runner.Progress
	opt.OnProgress = func(p runner.Progress) { calls++; last = p } // serialized by the pool
	rows, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(rows) || last.Done != len(rows) {
		t.Errorf("progress: %d calls, last Done=%d, want %d", calls, last.Done, len(rows))
	}
	if got := reg.Counter("runner_jobs_completed_total").Value(); got != uint64(len(rows)) {
		t.Errorf("runner_jobs_completed_total = %d, want %d", got, len(rows))
	}
}

// TestSweepParallelSpeedup checks the wall-clock win on multi-core hosts.
// It is skipped below 4 cores (the 1-CPU CI container can only validate
// determinism, not scaling); on 4+ cores the embarrassingly parallel
// replay phase must clear 2x, and comfortably reaches the 2.5x+ the
// EXPERIMENTS.md timings record.
func TestSweepParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is not a -short test")
	}
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("need >= 4 cores to measure scaling, have %d", cores)
	}
	// A wide grid keeps the parallel replay phase dominant over the
	// serial trace capture (Amdahl's law caps the whole-sweep speedup at
	// the replay fraction, so the threshold here is 1.8x; the pure replay
	// phase itself scales near-linearly and clears 2.5x).
	opt := smallSweep(1)
	opt.ProcessorRefs = 400_000
	opt.Sizes = []uint64{1 * addr.MB, 2 * addr.MB, 4 * addr.MB}
	opt.Policies = []molecular.ReplacementKind{
		molecular.RandomReplacement, molecular.RandyReplacement, molecular.LRUDirect,
	}
	timeRun := func(jobs int) time.Duration {
		opt.Jobs = jobs
		start := time.Now()
		if _, err := Sweep(opt); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	timeRun(1) // warm the page cache and allocator before timing
	serial := timeRun(1)
	parallel := timeRun(cores)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel(%d) %v: speedup %.2fx", serial, cores, parallel, speedup)
	if speedup < 1.8 {
		t.Errorf("speedup %.2fx below 1.8x on %d cores", speedup, cores)
	}
}
