// Package experiments reproduces every table and figure of the paper's
// evaluation section. Each experiment is a pure function from Options to
// typed result rows; cmd/experiments renders them and bench_test.go wraps
// each as a benchmark.
//
// Methodology (mirroring the paper's): the CMP substrate (internal/cmp,
// standing in for SESC) runs the workload models and captures the L1-miss
// reference stream; that stream is replayed into each cache under study
// (internal/cache / internal/molecular, standing in for the modified
// Dinero); CACTI-style power numbers come from internal/power.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"molcache/internal/cache"
	"molcache/internal/cmp"
	"molcache/internal/engine"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/runner"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

// Options scales the experiments. The zero value gets defaults sized for
// the full reproduction; tests and quick runs shrink ProcessorRefs.
type Options struct {
	// ProcessorRefs is the number of per-experiment processor-side
	// references driven through the CMP (the L2 sees roughly 10-20% of
	// them after L1 filtering; the paper's L2 traces hold 3.9M refs).
	ProcessorRefs int
	// Seed makes every stochastic choice reproducible.
	Seed uint64
	// Jobs is the worker count for the independent simulation points of
	// each experiment (0 = GOMAXPROCS, 1 = serial). Every experiment's
	// result is identical at any worker count: jobs share only immutable
	// captured traces and results are collected in submission order.
	Jobs int
	// Tracer and Registry, when set, receive the scheduler's job events
	// and runner_* progress metrics.
	Tracer   *telemetry.Tracer
	Registry *telemetry.Registry
	// OnProgress, when set, observes every job completion.
	OnProgress func(runner.Progress)
}

func (o Options) withDefaults() Options {
	if o.ProcessorRefs == 0 {
		o.ProcessorRefs = 48_000_000
	}
	if o.Seed == 0 {
		o.Seed = 2006 // the paper's publication year; any constant works
	}
	return o
}

// pool builds the job scheduler for one experiment's fan-out.
func (o Options) pool(label string) runner.Pool {
	return runner.Pool{
		Workers:    o.Jobs,
		Label:      label,
		Tracer:     o.Tracer,
		Registry:   o.Registry,
		OnProgress: o.OnProgress,
	}
}

// appBase separates application address spaces: app i lives at i<<36.
func appBase(asid uint16) uint64 { return uint64(asid) << 36 }

// mixSpec names the applications of one concurrent mix, in core order;
// ASIDs are assigned 1..n.
type mixSpec []string

// buildCMP assembles a CMP running the mix over the given shared L2.
func buildCMP(l2 engine.Cache, mix mixSpec, seed uint64, capture bool) (*cmp.System, error) {
	sys, err := cmp.New(l2, cmp.Config{CaptureL1Misses: capture})
	if err != nil {
		return nil, err
	}
	for i, name := range mix {
		asid := uint16(i + 1)
		gen, err := workload.New(name, appBase(asid), seed+uint64(asid)*1000)
		if err != nil {
			return nil, err
		}
		if err := sys.AddCore(asid, gen); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// captureTrace runs the mix over a reference L2 and returns the L1-miss
// stream. Which lines miss the L1 does not depend on the L2, but the
// *interleaving* does (cores stall on L2 misses), so the capture uses the
// paper's 1 MB 4-way shared L2 as the reference timing substrate.
func captureTrace(mix mixSpec, processorRefs int, seed uint64) ([]trace.Ref, error) {
	l2 := cache.MustNew(cache.Config{Size: 1 << 20, Ways: 4, LineSize: 64})
	sys, err := buildCMP(l2, mix, seed, true)
	if err != nil {
		return nil, err
	}
	sys.Run(processorRefs)
	return sys.Captured(), nil
}

// replayTraditional replays refs into a fresh traditional cache and
// returns it for inspection. Replay stops early if ctx is cancelled
// (another job of the batch failed).
func replayTraditional(ctx context.Context, cfg cache.Config, refs []trace.Ref) (*cache.Cache, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, _, err := engine.RunContext(ctx, c, refs); err != nil {
		return nil, err
	}
	return c, nil
}

// molecularRun couples a molecular cache with its resize controller.
type molecularRun struct {
	Cache *molecular.Cache
	Ctrl  *resize.Controller
}

// placement pins an application's partition to a home cluster and tile.
type placement struct{ Cluster, Tile int }

// replayMolecular replays refs into a fresh molecular cache driven by a
// resize controller with the given goals. Applications are admitted on
// first touch unless placements pre-assigns their homes. Replay checks
// ctx every few thousand references so a failed batch cancels promptly.
func replayMolecular(ctx context.Context, mcfg molecular.Config, rcfg resize.Config,
	placements map[uint16]placement, refs []trace.Ref) (*molecularRun, error) {
	mc, err := molecular.New(mcfg)
	if err != nil {
		return nil, err
	}
	// Create regions in ASID order: CreateRegion assigns home tiles and
	// molecule placements as it goes, so map-order iteration would give
	// each run a different layout.
	asids := make([]uint16, 0, len(placements))
	for asid := range placements {
		asids = append(asids, asid)
	}
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })
	for _, asid := range asids {
		p := placements[asid]
		if _, err := mc.CreateRegion(asid, molecular.RegionOptions{
			HomeCluster: p.Cluster,
			HomeTile:    p.Tile,
		}); err != nil {
			return nil, fmt.Errorf("experiments: placing ASID %d: %w", asid, err)
		}
	}
	ctrl, err := resize.New(mc, rcfg)
	if err != nil {
		return nil, err
	}
	for i, r := range refs {
		if i&0x3fff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		mc.Access(r)
		ctrl.Tick()
	}
	return &molecularRun{Cache: mc, Ctrl: ctrl}, nil
}

// fourTileMolecular is Figure 5's molecular configuration: 4 tiles in one
// cluster, tile size = total/4, 8 KB molecules.
func fourTileMolecular(totalSize uint64, policy molecular.ReplacementKind, seed uint64) molecular.Config {
	return molecular.Config{
		TotalSize:       totalSize,
		MoleculeSize:    8 << 10,
		LineSize:        64,
		TilesPerCluster: 4,
		Clusters:        1,
		Policy:          policy,
		Seed:            seed,
	}
}
