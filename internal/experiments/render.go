package experiments

// The renderers print each experiment's result in the paper's layout.
// They live here (not in cmd/experiments) so the golden-file regression
// tests can diff the exact text a CLI run produces; cmd/experiments is a
// thin flag-parsing shell over Render*.

import (
	"fmt"
	"io"
	"strings"

	"molcache/internal/addr"
	"molcache/internal/tabletext"
)

// RenderTable1 prints the interference study.
func RenderTable1(w io.Writer, rows []Table1Row) {
	t := tabletext.New(
		"Table 1: miss rate depends on the co-scheduled benchmarks (shared 1MB 4-way L2)",
		"workload", "miss rate of app1", "miss rate of app2",
	)
	for _, r := range rows {
		cells := []string{strings.Join(r.Apps, " + ")}
		for i, app := range r.Apps {
			if i >= 2 {
				break
			}
			cells = append(cells, fmt.Sprintf("%s=%.3f", app, r.MissRate[app]))
		}
		if len(r.Apps) > 2 {
			// The all-four row: list every rate in column 2.
			var parts []string
			for _, app := range r.Apps {
				parts = append(parts, fmt.Sprintf("%s=%.3f", app, r.MissRate[app]))
			}
			cells = []string{strings.Join(r.Apps, "+"), strings.Join(parts, " "), ""}
		}
		t.AddRow(cells...)
	}
	fmt.Fprintln(w, t)
}

// RenderFigure5 prints both deviation-vs-size graphs.
func RenderFigure5(w io.Writer, points []Figure5Point) {
	var sizes []string
	for _, s := range Figure5Sizes {
		sizes = append(sizes, addr.Bytes(s))
	}
	graphA := tabletext.NewSeries(
		"Figure 5 Graph A: average deviation from 10% miss-rate goal (all four benchmarks)",
		"size", sizes...)
	graphB := tabletext.NewSeries(
		"Figure 5 Graph B: average deviation from 10% miss-rate goal (art, ammp, parser)",
		"size", sizes...)
	idx := map[uint64]int{}
	for i, s := range Figure5Sizes {
		idx[s] = i
	}
	for _, p := range points {
		graphA.Set(p.Config, idx[p.Size], p.DeviationA)
		graphB.Set(p.Config, idx[p.Size], p.DeviationB)
	}
	fmt.Fprintln(w, graphA)
	fmt.Fprintln(w, graphB)
}

// RenderRelatedWork prints the related-work comparison.
func RenderRelatedWork(w io.Writer, rows []RelatedWorkRow) {
	t := tabletext.New(
		"Related-work comparison (2MB, 10% goal on art/ammp/parser; schemes from the paper's section 2)",
		"scheme", "avg deviation", "art", "mcf", "ammp", "parser",
	)
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.4f", r.Deviation),
			fmt.Sprintf("%.3f", r.PerAppMiss["art"]),
			fmt.Sprintf("%.3f", r.PerAppMiss["mcf"]),
			fmt.Sprintf("%.3f", r.PerAppMiss["ammp"]),
			fmt.Sprintf("%.3f", r.PerAppMiss["parser"]))
	}
	fmt.Fprintln(w, t)
}

// RenderTable2 prints the mixed-workload deviation table.
func RenderTable2(w io.Writer, t2 *Table2Result) {
	t := tabletext.New(
		"Table 2: average deviation from the 25% miss-rate goal (12-benchmark mix)",
		"cache type", "average deviation",
	)
	for _, r := range t2.Rows {
		t.AddRowf(r.Name, r.Deviation)
	}
	fmt.Fprintln(w, t)
}

// RenderFigure6 prints the per-molecule hit-rate comparison.
func RenderFigure6(w io.Writer, f6 *Figure6Result) {
	randy := tabletext.NewBarChart(
		"Figure 6: hit rate contribution per molecule (log scale) - Randy", true, 46)
	random := tabletext.NewBarChart(
		"Figure 6: hit rate contribution per molecule (log scale) - Random", true, 46)
	for _, r := range f6.Rows {
		randy.Add(r.Benchmark, r.RandyHPM)
		random.Add(r.Benchmark, r.RandomHPM)
	}
	fmt.Fprintln(w, randy)
	fmt.Fprintln(w, random)
	fmt.Fprintf(w, "aggregate: %s\n\n", f6)
}

// RenderTable4 prints the power study.
func RenderTable4(w io.Writer, t4 *Table4Result) {
	fmt.Fprintln(w, "Table 3 configuration: 8MB molecular, 8KB molecules, 512KB tiles,")
	fmt.Fprintln(w, "4 tile-clusters x 4 tiles, 1 port per cluster; traditional: 8MB, 4 ports.")
	fmt.Fprintf(w, "Measured mixed-workload average probes/access: %.1f molecules\n\n", t4.AvgProbes)
	t := tabletext.New(
		"Table 4: power at 70nm (molecular compared at each traditional frequency)",
		"cache type", "freq (MHz)", "power (W)", "mol. worst case (W)", "mol. average (W)",
	)
	for _, r := range t4.Rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.0f", r.FreqMHz),
			fmt.Sprintf("%.2f", r.PowerW),
			fmt.Sprintf("%.2f", r.MolWorstW),
			fmt.Sprintf("%.2f", r.MolAvgW))
	}
	fmt.Fprintln(w, t)
}

// RenderTable5 prints the power-deviation products.
func RenderTable5(w io.Writer, rows []Table5Row) {
	t := tabletext.New(
		"Table 5: power-deviation product (vs 6MB Molecular Randy)",
		"cache type", "power-deviation product", "molecular power-deviation product",
	)
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.3f", r.TradPD), fmt.Sprintf("%.3f", r.MolPD))
	}
	fmt.Fprintln(w, t)
}

// RenderHeadline prints the paper's abstract claim.
func RenderHeadline(w io.Writer, h *Headline) {
	fmt.Fprintf(w, "Headline: vs the equivalently performing traditional cache (%s,\n", h.Baseline)
	fmt.Fprintf(w, "deviation %.3f vs molecular %.3f), the molecular cache draws %.2f W\n",
		h.BaselineDev, h.MolecularDev, h.MolecularW)
	fmt.Fprintf(w, "against %.2f W at the same frequency: a %.1f%% power advantage\n",
		h.BaselineW, h.AdvantagePct)
	fmt.Fprintf(w, "(the paper reports 29%%).\n")
}
