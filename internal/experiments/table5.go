package experiments

import (
	"context"
	"fmt"

	"molcache/internal/addr"
	"molcache/internal/metrics"
	"molcache/internal/power"
	"molcache/internal/runner"
)

// Table5Row compares the power-deviation product of one traditional
// cache against the 6 MB molecular cache (Randy) evaluated at the same
// frequency, per the paper's Table 5.
type Table5Row struct {
	Name string
	// TradPD is the traditional cache's power x deviation.
	TradPD float64
	// MolPD is the molecular cache's power (average mixed-workload
	// energy at the traditional cache's frequency) x deviation.
	MolPD float64
}

// Table5 derives the power-deviation products from the Table 2
// deviations and the Table 4 power model. The two organization searches
// are independent jobs (rows stay in associativity order).
func Table5(opt Options, t2 *Table2Result, t4 *Table4Result) ([]Table5Row, error) {
	opt = opt.withDefaults()
	dev := map[string]float64{}
	for _, r := range t2.Rows {
		dev[r.Name] = r.Deviation
	}
	molDev, ok := dev["6MB Molecular (Randy)"]
	if !ok {
		return nil, fmt.Errorf("experiments: Table2 result lacks the 6MB Randy row")
	}
	molE := t4.MolEstimate.AccessEnergy(int(t4.AvgProbes + 0.5))
	return runner.Map(context.Background(), opt.pool("table5"), []int{4, 8},
		func(ctx context.Context, _ int, ways int) (Table5Row, error) {
			est, err := power.Model(power.Geometry{
				SizeBytes: 8 * addr.MB, Assoc: ways, LineBytes: 64, Ports: 4,
			}, power.Tech70)
			if err != nil {
				return Table5Row{}, err
			}
			name := est.Geometry.Name()
			d, ok := dev[name]
			if !ok {
				return Table5Row{}, fmt.Errorf("experiments: Table2 result lacks %q", name)
			}
			f := est.FrequencyMHz()
			return Table5Row{
				Name:   name,
				TradPD: metrics.PowerDeviation(est.PowerWatts(f), d),
				MolPD:  metrics.PowerDeviation(power.PowerWatts(molE, f), molDev),
			}, nil
		})
}

// Headline is the paper's abstract claim: the molecular cache's power
// advantage over an equivalently performing traditional cache.
type Headline struct {
	// Baseline is the smallest/cheapest traditional configuration whose
	// deviation is no better than the molecular cache's.
	Baseline string
	// BaselineW and MolecularW compare dynamic power at the baseline's
	// frequency (molecular worst case, as the paper reports).
	BaselineW, MolecularW float64
	// AdvantagePct is the relative saving (the paper reports 29%).
	AdvantagePct float64
	// BaselineDev and MolecularDev are the matched deviations.
	BaselineDev, MolecularDev float64
}

// ComputeHeadline finds the equivalently performing traditional cache
// (the one whose average deviation is closest to, and at least, the
// molecular cache's) and compares power at its frequency.
func ComputeHeadline(t2 *Table2Result, t4 *Table4Result) (*Headline, error) {
	dev := map[string]float64{}
	for _, r := range t2.Rows {
		dev[r.Name] = r.Deviation
	}
	molDev, ok := dev["6MB Molecular (Randy)"]
	if !ok {
		return nil, fmt.Errorf("experiments: missing molecular deviation")
	}
	// The equivalently performing baseline: the traditional config with
	// the smallest deviation (the paper's 8MB 8-way is its best
	// traditional result, still above the 6MB molecular).
	best := ""
	bestDev := 0.0
	for _, r := range t2.Rows {
		if r.Name == "6MB Molecular (Randy)" || r.Name == "6MB Molecular (Random)" {
			continue
		}
		if best == "" || r.Deviation < bestDev {
			best, bestDev = r.Name, r.Deviation
		}
	}
	var geo power.Geometry
	switch best {
	case "4MB 4-way":
		geo = power.Geometry{SizeBytes: 4 * addr.MB, Assoc: 4, LineBytes: 64, Ports: 4}
	case "4MB 8-way":
		geo = power.Geometry{SizeBytes: 4 * addr.MB, Assoc: 8, LineBytes: 64, Ports: 4}
	case "8MB 4-way":
		geo = power.Geometry{SizeBytes: 8 * addr.MB, Assoc: 4, LineBytes: 64, Ports: 4}
	case "8MB 8-way":
		geo = power.Geometry{SizeBytes: 8 * addr.MB, Assoc: 8, LineBytes: 64, Ports: 4}
	default:
		return nil, fmt.Errorf("experiments: unexpected baseline %q", best)
	}
	est, err := power.Model(geo, power.Tech70)
	if err != nil {
		return nil, err
	}
	f := est.FrequencyMHz()
	baseW := est.PowerWatts(f)
	molW := power.PowerWatts(t4.MolEstimate.WorstCaseEnergy(), f)
	return &Headline{
		Baseline:     best,
		BaselineW:    baseW,
		MolecularW:   molW,
		AdvantagePct: 100 * (baseW - molW) / baseW,
		BaselineDev:  bestDev,
		MolecularDev: molDev,
	}, nil
}
