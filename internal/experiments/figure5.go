package experiments

import (
	"context"
	"sort"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/metrics"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/runner"
	"molcache/internal/stats"
	"molcache/internal/trace"
)

// Figure5Mix is the four-benchmark SPEC mix of the Figure 5 study, in
// core/ASID order (ASIDs 1..4).
var Figure5Mix = mixSpec{"art", "mcf", "ammp", "parser"}

// Figure5Sizes are the evaluated total cache sizes.
var Figure5Sizes = []uint64{1 * addr.MB, 2 * addr.MB, 4 * addr.MB, 8 * addr.MB}

// Figure5Configs names the evaluated configurations in plot order.
var Figure5Configs = []string{
	"DM", "2-way", "4-way", "8-way", "Molecular (Random)", "Molecular (Randy)",
}

// Figure5Point is one (configuration, size) cell of Figure 5: the average
// deviation from the 10% miss-rate goal, for Graph A (goal on all four
// benchmarks) and Graph B (goal on art, ammp and parser only).
type Figure5Point struct {
	Config     string
	Size       uint64
	DeviationA float64
	DeviationB float64
	// PerAppMiss records the per-benchmark miss rates behind the
	// deviations (Graph A run for molecular configs).
	PerAppMiss map[string]float64
}

// figure5Goal is the paper's miss-rate goal for this study.
const figure5Goal = 0.10

// figure5GoalsA covers all four benchmarks, figure5GoalsB exempts mcf.
func figure5GoalsA() metrics.Goals { return metrics.UniformGoals(figure5Goal, 1, 2, 3, 4) }
func figure5GoalsB() metrics.Goals { return metrics.UniformGoals(figure5Goal, 1, 3, 4) }

// resizeGoals converts a metrics goal set into resize-controller goals.
func resizeGoals(g metrics.Goals) map[uint16]float64 {
	out := make(map[uint16]float64, len(g))
	for asid, goal := range g {
		out[asid] = goal
	}
	return out
}

// figure5Cell is one (configuration, size) simulation point of the study.
type figure5Cell struct {
	name   string
	size   uint64
	ways   int                       // traditional cells
	policy molecular.ReplacementKind // molecular cells ("" = traditional)
}

// figure5Cells enumerates the grid in deterministic order.
func figure5Cells() []figure5Cell {
	var cells []figure5Cell
	for _, size := range Figure5Sizes {
		for _, tc := range []struct {
			ways int
			name string
		}{{1, "DM"}, {2, "2-way"}, {4, "4-way"}, {8, "8-way"}} {
			cells = append(cells, figure5Cell{name: tc.name, size: size, ways: tc.ways})
		}
		for _, policy := range []molecular.ReplacementKind{
			molecular.RandomReplacement, molecular.RandyReplacement,
		} {
			cells = append(cells, figure5Cell{
				name:   "Molecular (" + string(policy) + ")",
				size:   size,
				policy: policy,
			})
		}
	}
	return cells
}

// Figure5 runs the study: one captured L1-miss trace of the concurrent
// four-benchmark mix, replayed into every (configuration, size) cell.
// The 24 cells are independent replays of the shared immutable trace, so
// they fan out across opt.Jobs workers. Traditional caches are
// goal-blind, so one replay serves both graphs; molecular caches resize
// toward their goals, so Graph A and Graph B get separate runs and the
// reported deviation comes from each run's own goal set.
func Figure5(opt Options) ([]Figure5Point, error) {
	opt = opt.withDefaults()
	refs, err := captureTrace(Figure5Mix, opt.ProcessorRefs, opt.Seed)
	if err != nil {
		return nil, err
	}
	points, err := runner.Map(context.Background(), opt.pool("figure5"), figure5Cells(),
		func(ctx context.Context, _ int, cell figure5Cell) (Figure5Point, error) {
			if cell.policy == "" {
				c, err := replayTraditional(ctx, cache.Config{
					Size: cell.size, Ways: cell.ways, LineSize: 64, Policy: cache.LRU,
				}, refs)
				if err != nil {
					return Figure5Point{}, err
				}
				return Figure5Point{
					Config:     cell.name,
					Size:       cell.size,
					DeviationA: metrics.AverageDeviation(c.Ledger(), figure5GoalsA()),
					DeviationB: metrics.AverageDeviation(c.Ledger(), figure5GoalsB()),
					PerAppMiss: perAppMiss(c.Ledger(), Figure5Mix),
				}, nil
			}
			p := Figure5Point{Config: cell.name, Size: cell.size}
			runA, err := figure5Molecular(ctx, cell.size, cell.policy, figure5GoalsA(), refs, opt.Seed)
			if err != nil {
				return Figure5Point{}, err
			}
			p.DeviationA = metrics.AverageDeviation(runA.Cache.Ledger(), figure5GoalsA())
			p.PerAppMiss = perAppMiss(runA.Cache.Ledger(), Figure5Mix)
			runB, err := figure5Molecular(ctx, cell.size, cell.policy, figure5GoalsB(), refs, opt.Seed)
			if err != nil {
				return Figure5Point{}, err
			}
			p.DeviationB = metrics.AverageDeviation(runB.Cache.Ledger(), figure5GoalsB())
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	sortFigure5(points)
	return points, nil
}

// figure5Molecular replays into the 4-tile molecular configuration with
// app i pinned to tile i-1 (the paper's static processor-tile binding).
func figure5Molecular(ctx context.Context, size uint64, policy molecular.ReplacementKind,
	goals metrics.Goals, refs []trace.Ref, seed uint64) (*molecularRun, error) {
	placements := map[uint16]placement{}
	for asid := uint16(1); asid <= 4; asid++ {
		placements[asid] = placement{Cluster: 0, Tile: int(asid - 1)}
	}
	return replayMolecular(ctx,
		fourTileMolecular(size, policy, seed),
		resize.Config{Trigger: resize.AdaptiveGlobal, Goals: resizeGoals(goals)},
		placements, refs)
}

// perAppMiss extracts miss rates keyed by benchmark name.
func perAppMiss(l *stats.Ledger, mix mixSpec) map[string]float64 {
	out := make(map[string]float64, len(mix))
	for i, name := range mix {
		out[name] = l.App(uint16(i + 1)).MissRate()
	}
	return out
}

// sortFigure5 orders points by size then configuration plot order.
func sortFigure5(points []Figure5Point) {
	rank := map[string]int{}
	for i, n := range Figure5Configs {
		rank[n] = i
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Size != points[j].Size {
			return points[i].Size < points[j].Size
		}
		return rank[points[i].Config] < rank[points[j].Config]
	})
}
