package experiments

import (
	"sort"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/metrics"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/stats"
	"molcache/internal/trace"
)

// Figure5Mix is the four-benchmark SPEC mix of the Figure 5 study, in
// core/ASID order (ASIDs 1..4).
var Figure5Mix = mixSpec{"art", "mcf", "ammp", "parser"}

// Figure5Sizes are the evaluated total cache sizes.
var Figure5Sizes = []uint64{1 * addr.MB, 2 * addr.MB, 4 * addr.MB, 8 * addr.MB}

// Figure5Configs names the evaluated configurations in plot order.
var Figure5Configs = []string{
	"DM", "2-way", "4-way", "8-way", "Molecular (Random)", "Molecular (Randy)",
}

// Figure5Point is one (configuration, size) cell of Figure 5: the average
// deviation from the 10% miss-rate goal, for Graph A (goal on all four
// benchmarks) and Graph B (goal on art, ammp and parser only).
type Figure5Point struct {
	Config     string
	Size       uint64
	DeviationA float64
	DeviationB float64
	// PerAppMiss records the per-benchmark miss rates behind the
	// deviations (Graph A run for molecular configs).
	PerAppMiss map[string]float64
}

// figure5Goal is the paper's miss-rate goal for this study.
const figure5Goal = 0.10

// figure5GoalsA covers all four benchmarks, figure5GoalsB exempts mcf.
func figure5GoalsA() metrics.Goals { return metrics.UniformGoals(figure5Goal, 1, 2, 3, 4) }
func figure5GoalsB() metrics.Goals { return metrics.UniformGoals(figure5Goal, 1, 3, 4) }

// resizeGoals converts a metrics goal set into resize-controller goals.
func resizeGoals(g metrics.Goals) map[uint16]float64 {
	out := make(map[uint16]float64, len(g))
	for asid, goal := range g {
		out[asid] = goal
	}
	return out
}

// Figure5 runs the study: one captured L1-miss trace of the concurrent
// four-benchmark mix, replayed into every (configuration, size) cell.
// Traditional caches are goal-blind, so one replay serves both graphs;
// molecular caches resize toward their goals, so Graph A and Graph B get
// separate runs and the reported deviation comes from each run's own
// goal set.
func Figure5(opt Options) ([]Figure5Point, error) {
	opt = opt.withDefaults()
	refs, err := captureTrace(Figure5Mix, opt.ProcessorRefs, opt.Seed)
	if err != nil {
		return nil, err
	}
	var points []Figure5Point
	for _, size := range Figure5Sizes {
		// Traditional baselines.
		for ways, name := range map[int]string{1: "DM", 2: "2-way", 4: "4-way", 8: "8-way"} {
			c, err := replayTraditional(cache.Config{
				Size: size, Ways: ways, LineSize: 64, Policy: cache.LRU,
			}, refs)
			if err != nil {
				return nil, err
			}
			points = append(points, Figure5Point{
				Config:     name,
				Size:       size,
				DeviationA: metrics.AverageDeviation(c.Ledger(), figure5GoalsA()),
				DeviationB: metrics.AverageDeviation(c.Ledger(), figure5GoalsB()),
				PerAppMiss: perAppMiss(c.Ledger(), Figure5Mix),
			})
		}
		// Molecular configurations: Random and Randy, each run twice
		// (Graph A and Graph B goal sets drive different resizing).
		for _, policy := range []molecular.ReplacementKind{
			molecular.RandomReplacement, molecular.RandyReplacement,
		} {
			p := Figure5Point{
				Config: "Molecular (" + string(policy) + ")",
				Size:   size,
			}
			runA, err := figure5Molecular(size, policy, figure5GoalsA(), refs, opt.Seed)
			if err != nil {
				return nil, err
			}
			p.DeviationA = metrics.AverageDeviation(runA.Cache.Ledger(), figure5GoalsA())
			p.PerAppMiss = perAppMiss(runA.Cache.Ledger(), Figure5Mix)
			runB, err := figure5Molecular(size, policy, figure5GoalsB(), refs, opt.Seed)
			if err != nil {
				return nil, err
			}
			p.DeviationB = metrics.AverageDeviation(runB.Cache.Ledger(), figure5GoalsB())
			points = append(points, p)
		}
	}
	sortFigure5(points)
	return points, nil
}

// figure5Molecular replays into the 4-tile molecular configuration with
// app i pinned to tile i-1 (the paper's static processor-tile binding).
func figure5Molecular(size uint64, policy molecular.ReplacementKind,
	goals metrics.Goals, refs []trace.Ref, seed uint64) (*molecularRun, error) {
	placements := map[uint16]placement{}
	for asid := uint16(1); asid <= 4; asid++ {
		placements[asid] = placement{Cluster: 0, Tile: int(asid - 1)}
	}
	return replayMolecular(
		fourTileMolecular(size, policy, seed),
		resize.Config{Trigger: resize.AdaptiveGlobal, Goals: resizeGoals(goals)},
		placements, refs)
}

// perAppMiss extracts miss rates keyed by benchmark name.
func perAppMiss(l *stats.Ledger, mix mixSpec) map[string]float64 {
	out := make(map[string]float64, len(mix))
	for i, name := range mix {
		out[name] = l.App(uint16(i + 1)).MissRate()
	}
	return out
}

// sortFigure5 orders points by size then configuration plot order.
func sortFigure5(points []Figure5Point) {
	rank := map[string]int{}
	for i, n := range Figure5Configs {
		rank[n] = i
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Size != points[j].Size {
			return points[i].Size < points[j].Size
		}
		return rank[points[i].Config] < rank[points[j].Config]
	})
}
