package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"molcache/internal/addr"
	"molcache/internal/metrics"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/runner"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// SweepOptions configures the parameter-sensitivity sweep (cmd/sweep).
// The zero value gets the CLI's defaults.
type SweepOptions struct {
	// ProcessorRefs is the trace-capture length (default 16M).
	ProcessorRefs int
	// Seed drives every stochastic choice (default 2006).
	Seed uint64
	// Goal is the per-application miss-rate goal (default 0.10).
	Goal float64
	// Sizes, MoleculeSizes, Policies and LineFactors span the grid; each
	// defaults to the CLI's sweep set when empty.
	Sizes         []uint64
	MoleculeSizes []uint64
	Policies      []molecular.ReplacementKind
	LineFactors   []int
	// Jobs is the worker count (0 = GOMAXPROCS, 1 = serial). The rows are
	// identical at any worker count: every point replays the same
	// immutable captured trace and rows come back in grid order.
	Jobs int
	// Tracer and Registry, when set, observe the scheduler and accumulate
	// the simulation counters across every swept combination (the gauges
	// reflect whichever point registered last).
	Tracer   *telemetry.Tracer
	Registry *telemetry.Registry
	// OnProgress, when set, observes every point's completion.
	OnProgress func(runner.Progress)
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.ProcessorRefs == 0 {
		o.ProcessorRefs = 16_000_000
	}
	if o.Seed == 0 {
		o.Seed = 2006
	}
	if o.Goal == 0 {
		o.Goal = 0.10
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []uint64{1 * addr.MB, 2 * addr.MB, 4 * addr.MB, 8 * addr.MB}
	}
	if len(o.MoleculeSizes) == 0 {
		o.MoleculeSizes = []uint64{8 * addr.KB, 16 * addr.KB, 32 * addr.KB}
	}
	if len(o.Policies) == 0 {
		o.Policies = []molecular.ReplacementKind{
			molecular.RandomReplacement, molecular.RandyReplacement, molecular.LRUDirect,
		}
	}
	if len(o.LineFactors) == 0 {
		o.LineFactors = []int{1}
	}
	return o
}

// SweepRow is one grid point's outcome. Infeasible geometries (e.g. a
// molecule larger than its tile) carry the reason in Skip and no Cells;
// they do not fail the batch.
type SweepRow struct {
	Size, MoleculeSize uint64
	Policy             molecular.ReplacementKind
	LineFactor         int
	// Cells is the CSV record (nil when Skip is set).
	Cells []string
	Skip  error
}

// Point renders the grid coordinates ("1MB/8KB/Randy/x1") for messages.
func (r SweepRow) Point() string {
	return fmt.Sprintf("%s/%s/%s/x%d",
		addr.Bytes(r.Size), addr.Bytes(r.MoleculeSize), r.Policy, r.LineFactor)
}

// SweepHeader is the CSV header row.
var SweepHeader = []string{
	"total_size", "molecule_size", "policy", "line_factor",
	"avg_deviation", "overall_miss_rate", "avg_probes", "free_molecules",
}

// Sweep captures the four-benchmark SPEC mix's L1-miss stream once and
// replays it into every (size, molecule, policy, line factor) combination,
// fanned across opt.Jobs workers. Rows come back in grid order (sizes
// outermost, line factors innermost), exactly the serial CLI's order.
func Sweep(opt SweepOptions) ([]SweepRow, error) {
	opt = opt.withDefaults()
	refs, err := captureTrace(Figure5Mix, opt.ProcessorRefs, opt.Seed)
	if err != nil {
		return nil, err
	}
	goals := map[uint16]float64{}
	mg := metrics.Goals{}
	for asid := uint16(1); asid <= 4; asid++ {
		goals[asid] = opt.Goal
		mg[asid] = opt.Goal
	}
	var points []SweepRow
	for _, size := range opt.Sizes {
		for _, mol := range opt.MoleculeSizes {
			for _, pol := range opt.Policies {
				for _, lf := range opt.LineFactors {
					points = append(points, SweepRow{
						Size: size, MoleculeSize: mol, Policy: pol, LineFactor: lf,
					})
				}
			}
		}
	}
	pool := runner.Pool{
		Workers:    opt.Jobs,
		Label:      "sweep",
		Tracer:     opt.Tracer,
		Registry:   opt.Registry,
		OnProgress: opt.OnProgress,
	}
	return runner.Map(context.Background(), pool, points,
		func(ctx context.Context, _ int, pt SweepRow) (SweepRow, error) {
			cells, err := sweepOne(ctx, pt, goals, mg, refs, opt)
			if err != nil {
				if ctx.Err() != nil {
					// Cancellation, not an infeasible geometry.
					return SweepRow{}, err
				}
				pt.Skip = err
				return pt, nil
			}
			pt.Cells = cells
			return pt, nil
		})
}

// sweepOne replays the trace into one configuration and formats the CSV
// record, mirroring the serial CLI byte for byte.
func sweepOne(ctx context.Context, pt SweepRow, goals map[uint16]float64,
	mg metrics.Goals, refs []trace.Ref, opt SweepOptions) ([]string, error) {
	mc, err := molecular.New(molecular.Config{
		TotalSize:    pt.Size,
		MoleculeSize: pt.MoleculeSize,
		Policy:       pt.Policy,
		LineFactor:   pt.LineFactor,
		Seed:         opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	for asid := uint16(1); asid <= 4; asid++ {
		if _, err := mc.CreateRegion(asid, molecular.RegionOptions{
			HomeCluster: 0, HomeTile: int(asid - 1),
		}); err != nil {
			return nil, err
		}
	}
	ctrl, err := resize.New(mc, resize.Config{Goals: goals})
	if err != nil {
		return nil, err
	}
	if opt.Registry != nil {
		mc.AttachTelemetry(nil, opt.Registry)
		ctrl.AttachTelemetry(nil, opt.Registry)
	}
	for i, r := range refs {
		if i&0x3fff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		mc.Access(r)
		ctrl.Tick()
	}
	return []string{
		addr.Bytes(pt.Size),
		addr.Bytes(pt.MoleculeSize),
		string(pt.Policy),
		strconv.Itoa(pt.LineFactor),
		fmt.Sprintf("%.4f", metrics.AverageDeviation(mc.Ledger(), mg)),
		fmt.Sprintf("%.4f", mc.Ledger().Total.MissRate()),
		fmt.Sprintf("%.1f", mc.AverageProbes()),
		strconv.Itoa(mc.FreeMolecules()),
	}, nil
}

// WriteSweepCSV writes the header and every non-skipped row.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(SweepHeader); err != nil {
		return err
	}
	for _, r := range rows {
		if r.Skip != nil {
			continue
		}
		if err := cw.Write(r.Cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseSizes parses a comma-separated byte-size list ("1MB,512KB").
func ParseSizes(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		u := strings.ToUpper(strings.TrimSpace(part))
		mul := uint64(1)
		switch {
		case strings.HasSuffix(u, "MB"):
			mul, u = addr.MB, strings.TrimSuffix(u, "MB")
		case strings.HasSuffix(u, "KB"):
			mul, u = addr.KB, strings.TrimSuffix(u, "KB")
		}
		n, err := strconv.ParseUint(u, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n*mul)
	}
	return out, nil
}

// ParsePolicies parses a comma-separated replacement-policy list.
func ParsePolicies(s string) ([]molecular.ReplacementKind, error) {
	var out []molecular.ReplacementKind
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "random":
			out = append(out, molecular.RandomReplacement)
		case "randy":
			out = append(out, molecular.RandyReplacement)
		case "lru-direct", "lrudirect":
			out = append(out, molecular.LRUDirect)
		default:
			return nil, fmt.Errorf("unknown policy %q", part)
		}
	}
	return out, nil
}

// ParseInts parses a comma-separated integer list.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
