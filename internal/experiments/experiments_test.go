package experiments

import (
	"testing"

	"molcache/internal/addr"
)

// testOpts keeps the experiment tests fast while preserving the shapes
// the assertions check. Full-scale numbers come from cmd/experiments.
var testOpts = Options{ProcessorRefs: 2_000_000, Seed: 2006}

func TestTable1InterferenceShape(t *testing.T) {
	rows, err := Table1(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11 (4 singles + 6 pairs + 1 quad)", len(rows))
	}
	mcfAlone, ok := Standalone(rows, "mcf")
	if !ok {
		t.Fatal("no standalone mcf row")
	}
	artAlone, _ := Standalone(rows, "art")
	ammpAlone, _ := Standalone(rows, "ammp")
	parserAlone, _ := Standalone(rows, "parser")
	// Standalone ordering: mcf >> parser > art > ammp (paper Table 1).
	if !(mcfAlone > parserAlone && parserAlone > ammpAlone && artAlone > ammpAlone) {
		t.Errorf("standalone ordering wrong: mcf=%.3f parser=%.3f art=%.3f ammp=%.3f",
			mcfAlone, parserAlone, artAlone, ammpAlone)
	}
	if mcfAlone < 0.4 {
		t.Errorf("mcf standalone = %.3f, want cache-hostile (> 0.4)", mcfAlone)
	}
	if artAlone > 0.2 {
		t.Errorf("art standalone = %.3f, want cache-friendly (< 0.2)", artAlone)
	}
	// The motivating interference result: art collapses under the
	// four-way mix; ammp stays near its standalone rate everywhere.
	quad := rows[len(rows)-1]
	if len(quad.Apps) != 4 {
		t.Fatalf("last row is not the all-four mix: %v", quad.Apps)
	}
	if quad.MissRate["art"] < 3*artAlone {
		t.Errorf("art under full contention = %.3f, want >> standalone %.3f",
			quad.MissRate["art"], artAlone)
	}
	if quad.MissRate["ammp"] > 5*ammpAlone+0.05 {
		t.Errorf("ammp under full contention = %.3f, want near standalone %.3f",
			quad.MissRate["ammp"], ammpAlone)
	}
}

func TestTable1Deterministic(t *testing.T) {
	small := Options{ProcessorRefs: 200_000, Seed: 7}
	a, err := Table1(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(small)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for app, m := range a[i].MissRate {
			if b[i].MissRate[app] != m {
				t.Fatalf("run differs at row %d app %s: %v vs %v",
					i, app, m, b[i].MissRate[app])
			}
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	points, err := Figure5(Options{ProcessorRefs: 6_000_000, Seed: 2006})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Figure5Sizes)*len(Figure5Configs) {
		t.Fatalf("got %d points, want %d", len(points), len(Figure5Sizes)*len(Figure5Configs))
	}
	at := func(cfg string, size uint64) Figure5Point {
		for _, p := range points {
			if p.Config == cfg && p.Size == size {
				return p
			}
		}
		t.Fatalf("missing point %s/%s", cfg, addr.Bytes(size))
		return Figure5Point{}
	}
	// Traditional caches: deviation falls with size and with
	// associativity at the largest size.
	for _, cfg := range []string{"DM", "4-way", "8-way"} {
		if at(cfg, 1*addr.MB).DeviationA <= at(cfg, 8*addr.MB).DeviationA {
			t.Errorf("%s: deviation A did not fall from 1MB to 8MB", cfg)
		}
	}
	if at("DM", 8*addr.MB).DeviationA <= at("8-way", 8*addr.MB).DeviationA {
		t.Error("8MB: DM not worse than 8-way")
	}
	// Molecular threshold behaviour: a sharp drop into the larger sizes
	// for both policies, on both graphs.
	for _, cfg := range []string{"Molecular (Random)", "Molecular (Randy)"} {
		small, large := at(cfg, 1*addr.MB), at(cfg, 8*addr.MB)
		if small.DeviationA < 2*large.DeviationA {
			t.Errorf("%s: graph A no threshold drop (1MB %.3f vs 8MB %.3f)",
				cfg, small.DeviationA, large.DeviationA)
		}
		if small.DeviationB < 3*large.DeviationB {
			t.Errorf("%s: graph B no threshold drop (1MB %.3f vs 8MB %.3f)",
				cfg, small.DeviationB, large.DeviationB)
		}
	}
	// Graph B (goal only on the three feasible apps) must sit at or
	// below graph A everywhere for molecular configs.
	for _, p := range points {
		if p.DeviationB > p.DeviationA+1e-9 {
			t.Errorf("%s/%s: B=%.4f above A=%.4f", p.Config, addr.Bytes(p.Size),
				p.DeviationB, p.DeviationA)
		}
	}
}

func TestTable2AndDownstream(t *testing.T) {
	t2, err := Table2(Options{ProcessorRefs: 20_000_000, Seed: 2006})
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(t2.Rows))
	}
	dev := map[string]float64{}
	for _, r := range t2.Rows {
		if r.Deviation < 0 || r.Deviation > 1 {
			t.Errorf("%s: deviation %v out of range", r.Name, r.Deviation)
		}
		dev[r.Name] = r.Deviation
	}
	// Larger traditional caches do better; molecular beats the smallest
	// traditional configuration despite being 2MB smaller than 8MB ones.
	if dev["8MB 8-way"] >= dev["4MB 4-way"] {
		t.Error("8MB 8-way not better than 4MB 4-way")
	}
	if dev["6MB Molecular (Randy)"] >= dev["4MB 4-way"] {
		t.Errorf("molecular (%.3f) not better than 4MB 4-way (%.3f)",
			dev["6MB Molecular (Randy)"], dev["4MB 4-way"])
	}

	// Figure 6: HPM defined for every benchmark, CRC pinned at ~0 (no
	// reuse at all), and the paper's aggregate claim that Randy achieves
	// a lower overall miss rate than Random.
	f6 := Figure6(t2)
	if len(f6.Rows) != 12 {
		t.Fatalf("Figure6 rows = %d", len(f6.Rows))
	}
	for _, r := range f6.Rows {
		if r.Benchmark == "CRC" {
			if r.RandyHPM > 1e-4 {
				t.Errorf("CRC HPM = %v, want ~0 (pure streaming)", r.RandyHPM)
			}
			continue
		}
		if r.RandyHPM <= 0 || r.RandomHPM <= 0 {
			t.Errorf("%s: non-positive HPM (%v, %v)", r.Benchmark, r.RandyHPM, r.RandomHPM)
		}
	}
	// At full scale Randy's overall miss rate beats Random's (recorded
	// in EXPERIMENTS.md, matching the paper's 9% claim); Randy's
	// row-targeted placement converges much more slowly, so at this
	// shortened run only sanity-check both policies.
	if f6.RandyMissRate > 0.5 || f6.RandomMissRate > 0.5 {
		t.Errorf("policy miss rates out of range: Randy %.4f, Random %.4f",
			f6.RandyMissRate, f6.RandomMissRate)
	}

	// Table 4: traditional power grows DM -> 4-way; the 8-way frequency
	// cliff makes its power drop; molecular average <= worst case, and
	// molecular beats the traditional cache at the 8-way row.
	t4, err := Table4(testOpts, t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 4 {
		t.Fatalf("Table4 rows = %d", len(t4.Rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range t4.Rows {
		byName[r.Name] = r
		if r.MolAvgW > r.MolWorstW*1.35 {
			t.Errorf("%s: molecular average %.2f far above worst case %.2f",
				r.Name, r.MolAvgW, r.MolWorstW)
		}
	}
	if !(byName["8MB DM"].PowerW < byName["8MB 4-way"].PowerW) {
		t.Error("traditional power not growing DM -> 4-way")
	}
	if !(byName["8MB 8-way"].PowerW < byName["8MB 4-way"].PowerW) {
		t.Error("8-way frequency cliff did not lower its power")
	}
	if !(byName["8MB 8-way"].MolWorstW < byName["8MB 8-way"].PowerW) {
		t.Error("molecular worst case not below traditional 8-way power")
	}
	if t4.AvgProbes <= 0 {
		t.Error("no measured probes")
	}

	// Table 5: the power-deviation product must favour the molecular
	// cache on the 8-way row (the paper's strongest comparison point).
	t5, err := Table5(testOpts, t2, t4)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5) != 2 {
		t.Fatalf("Table5 rows = %d", len(t5))
	}
	for _, r := range t5 {
		if r.TradPD <= 0 || r.MolPD <= 0 {
			t.Errorf("%s: non-positive power-deviation product", r.Name)
		}
	}

	// Headline: a positive power advantage against the equivalently
	// performing traditional cache.
	h, err := ComputeHeadline(t2, t4)
	if err != nil {
		t.Fatal(err)
	}
	if h.AdvantagePct <= 0 {
		t.Errorf("headline advantage = %.1f%%, want positive", h.AdvantagePct)
	}
	if h.MolecularW >= h.BaselineW {
		t.Errorf("molecular %.2fW not below baseline %s %.2fW",
			h.MolecularW, h.Baseline, h.BaselineW)
	}
}

func TestCaptureTraceComposition(t *testing.T) {
	refs, err := captureTrace(mixSpec{"ammp", "parser"}, 300_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("empty capture")
	}
	seen := map[uint16]int{}
	for _, r := range refs {
		seen[r.ASID]++
	}
	if seen[1] == 0 || seen[2] == 0 {
		t.Errorf("capture missing an app: %v", seen)
	}
}

func TestRelatedWorkComparison(t *testing.T) {
	rows, err := RelatedWork(Options{ProcessorRefs: 16_000_000, Seed: 2006})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	dev := map[string]float64{}
	for _, r := range rows {
		if r.Deviation < 0 || r.Deviation > 1 {
			t.Errorf("%s: deviation %v out of range", r.Name, r.Deviation)
		}
		if len(r.PerAppMiss) != 4 {
			t.Errorf("%s: per-app misses incomplete: %v", r.Name, r.PerAppMiss)
		}
		dev[r.Name] = r.Deviation
	}
	// Every partitioning scheme must shield ammp (the small hot working
	// set) from the thrashing co-runners better than nothing at all:
	// its miss rate stays under 20% everywhere.
	for _, r := range rows {
		if r.PerAppMiss["ammp"] > 0.20 {
			t.Errorf("%s: ammp miss %.3f, want protected (< 0.20)",
				r.Name, r.PerAppMiss["ammp"])
		}
	}
	// The goal-driven molecular cache must beat the static equal splits
	// (column caching and home banks give every app 1/4 regardless of
	// need; the molecular controller moves capacity to where the goal
	// is missed).
	mol := dev["2MB Molecular (Random)"]
	for _, static := range []string{"2MB 8-way ColumnCache", "2MB HomeBank(4x512KB)"} {
		if mol >= dev[static] {
			t.Errorf("molecular (%.3f) not better than %s (%.3f)",
				mol, static, dev[static])
		}
	}
}
