package experiments

import (
	"context"
	"sort"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/engine"
	"molcache/internal/metrics"
	"molcache/internal/molecular"
	"molcache/internal/partition"
	"molcache/internal/resize"
	"molcache/internal/runner"
	"molcache/internal/stackdist"
	"molcache/internal/stats"
	"molcache/internal/trace"
)

// RelatedWorkRow compares one partitioning scheme from the paper's
// related-work section against the molecular cache on the four-benchmark
// SPEC mix (2 MB total, 10% miss-rate goal on the three feasible
// applications — Figure 5's Graph B criterion, evaluated at its 2 MB
// crossover size).
type RelatedWorkRow struct {
	Name      string
	Deviation float64
	// PerAppMiss records each benchmark's miss rate.
	PerAppMiss map[string]float64
}

// relatedSize is the study's total capacity: 2 MB is where Figure 5's
// Graph B shows the schemes separating.
const relatedSize = 2 * addr.MB

// RelatedWork runs the comparison: unmanaged shared LRU, Suh's
// ModifiedLRU (equal block quotas and oracle quotas), column caching
// (equal way split), a POCA-style home-bank cache, and the molecular
// cache (both policies, resized toward the goal). One captured trace
// serves every scheme; the seven schemes are independent replays of it,
// fanned across opt.Jobs workers with rows kept in scheme order.
func RelatedWork(opt Options) ([]RelatedWorkRow, error) {
	opt = opt.withDefaults()
	refs, err := captureTrace(Figure5Mix, opt.ProcessorRefs, opt.Seed)
	if err != nil {
		return nil, err
	}
	goals := figure5GoalsB()

	// row builds the standard result row from any scheme's ledger.
	row := func(c engine.Cache, ledger ledgerer) RelatedWorkRow {
		return RelatedWorkRow{
			Name:       c.Name(),
			Deviation:  metrics.AverageDeviation(ledger.Ledger(), goals),
			PerAppMiss: perAppMiss(ledger.Ledger(), Figure5Mix),
		}
	}
	// replay drives refs through a scheme with periodic ctx checks.
	replay := func(ctx context.Context, c engine.Cache) error {
		_, _, err := engine.RunContext(ctx, c, refs)
		return err
	}

	jobs := []runner.Job[RelatedWorkRow]{
		{Name: "shared-lru", Run: func(ctx context.Context) (RelatedWorkRow, error) {
			shared, err := replayTraditional(ctx, cache.Config{
				Size: relatedSize, Ways: 8, LineSize: 64, Policy: cache.LRU,
			}, refs)
			if err != nil {
				return RelatedWorkRow{}, err
			}
			return row(shared, shared), nil
		}},
		{Name: "modified-lru", Run: func(ctx context.Context) (RelatedWorkRow, error) {
			// Suh's ModifiedLRU with equal block quotas.
			mlru, err := partition.NewModifiedLRU(relatedSize, 8, 64, relatedSize/64/4)
			if err != nil {
				return RelatedWorkRow{}, err
			}
			if err := replay(ctx, mlru); err != nil {
				return RelatedWorkRow{}, err
			}
			return row(mlru, mlru), nil
		}},
		{Name: "modified-lru-oracle", Run: func(ctx context.Context) (RelatedWorkRow, error) {
			// A stack-distance profile of the same trace feeds Suh's
			// marginal-gain allocator with perfect information — the
			// strongest static baseline.
			omlru, err := oracleModifiedLRU(refs, goals)
			if err != nil {
				return RelatedWorkRow{}, err
			}
			if err := replay(ctx, omlru); err != nil {
				return RelatedWorkRow{}, err
			}
			return RelatedWorkRow{
				Name:       "2MB 8-way ModifiedLRU (oracle quotas)",
				Deviation:  metrics.AverageDeviation(omlru.Ledger(), goals),
				PerAppMiss: perAppMiss(omlru.Ledger(), Figure5Mix),
			}, nil
		}},
		{Name: "column-cache", Run: func(ctx context.Context) (RelatedWorkRow, error) {
			col, err := partition.NewColumnCache(relatedSize, 8, 64)
			if err != nil {
				return RelatedWorkRow{}, err
			}
			if err := col.AssignEqualColumns(1, 2, 3, 4); err != nil {
				return RelatedWorkRow{}, err
			}
			if err := replay(ctx, col); err != nil {
				return RelatedWorkRow{}, err
			}
			return row(col, col), nil
		}},
		{Name: "home-bank", Run: func(ctx context.Context) (RelatedWorkRow, error) {
			// POCA-style home banks: one 512 KB bank per application.
			hb, err := partition.NewHomeBank(4, relatedSize/4, 4, 64)
			if err != nil {
				return RelatedWorkRow{}, err
			}
			for asid := uint16(1); asid <= 4; asid++ {
				if err := hb.SetHome(asid, int(asid-1)); err != nil {
					return RelatedWorkRow{}, err
				}
			}
			if err := replay(ctx, hb); err != nil {
				return RelatedWorkRow{}, err
			}
			return row(hb, hb), nil
		}},
	}
	// The molecular cache with goal-driven resizing, both policies.
	for _, policy := range []molecular.ReplacementKind{
		molecular.RandomReplacement, molecular.RandyReplacement,
	} {
		policy := policy
		jobs = append(jobs, runner.Job[RelatedWorkRow]{
			Name: "molecular-" + string(policy),
			Run: func(ctx context.Context) (RelatedWorkRow, error) {
				placements := map[uint16]placement{}
				for asid := uint16(1); asid <= 4; asid++ {
					placements[asid] = placement{Cluster: 0, Tile: int(asid - 1)}
				}
				run, err := replayMolecular(ctx,
					fourTileMolecular(relatedSize, policy, opt.Seed),
					resize.Config{Trigger: resize.AdaptiveGlobal, Goals: resizeGoals(goals)},
					placements, refs)
				if err != nil {
					return RelatedWorkRow{}, err
				}
				return row(run.Cache, run.Cache), nil
			},
		})
	}
	return runner.Run(context.Background(), opt.pool("related"), jobs)
}

// oracleModifiedLRU profiles refs and builds a ModifiedLRU with the
// stack-distance oracle's per-application quotas.
func oracleModifiedLRU(refs []trace.Ref, goals metrics.Goals) (*partition.ModifiedLRU, error) {
	prof := stackdist.New(64)
	for _, r := range refs {
		prof.Record(r.ASID, r.Addr)
	}
	curves := map[uint16]*stackdist.Curve{}
	for _, a := range prof.ASIDs() {
		c, err := prof.Curve(a)
		if err != nil {
			return nil, err
		}
		curves[a] = c
	}
	oracleGoals := map[uint16]float64{}
	for asid, g := range goals {
		oracleGoals[asid] = g
	}
	alloc, err := stackdist.OraclePartition(curves, oracleGoals,
		int(relatedSize/64), 128 /* one 8KB molecule of lines */)
	if err != nil {
		return nil, err
	}
	omlru, err := partition.NewModifiedLRU(relatedSize, 8, 64, 1)
	if err != nil {
		return nil, err
	}
	// Quotas land in ASID order; SetQuota reshuffles way ownership as it
	// runs, so map-order iteration would vary the initial layout.
	asids := make([]uint16, 0, len(alloc.Lines))
	for asid := range alloc.Lines {
		asids = append(asids, asid)
	}
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })
	for _, asid := range asids {
		omlru.SetQuota(asid, uint64(alloc.Lines[asid]))
	}
	return omlru, nil
}

// ledgerer is the per-ASID accounting every scheme here exposes.
type ledgerer interface {
	Ledger() *stats.Ledger
}
