package experiments

import (
	"context"

	"molcache/internal/addr"
	"molcache/internal/molecular"
	"molcache/internal/power"
	"molcache/internal/resize"
	"molcache/internal/runner"
)

// Table3Config is the molecular configuration of the power study
// (the paper's Table 3): 8 MB, 8 KB molecules, 512 KB tiles, 4 clusters
// of 4 tiles, one port per cluster.
func Table3Config() power.MolecularGeometry {
	return power.MolecularGeometry{
		TotalBytes:      8 * addr.MB,
		MoleculeBytes:   8 * addr.KB,
		LineBytes:       64,
		TileMolecules:   64,
		PortsPerCluster: 1,
	}
}

// Table4Row is one traditional cache with the molecular comparison at
// that cache's operating frequency (the paper's Table 4 layout).
type Table4Row struct {
	// Name is the traditional configuration ("8MB DM", ...).
	Name string
	// FreqMHz is the traditional cache's frequency from the model.
	FreqMHz float64
	// PowerW is the traditional cache's dynamic power at FreqMHz.
	PowerW float64
	// MolWorstW is the molecular cache's worst-case power (all tile
	// molecules enabled) at FreqMHz.
	MolWorstW float64
	// MolAvgW is the molecular power using the measured mixed-workload
	// average probe count at FreqMHz.
	MolAvgW float64
}

// Table4Result carries the rows plus the measured probe statistics.
type Table4Result struct {
	Rows []Table4Row
	// AvgProbes is the measured mean molecules probed per access in
	// the 8 MB mixed-workload molecular run.
	AvgProbes float64
	// MolEstimate is the power model's view of the molecule.
	MolEstimate power.MolecularEstimate
}

// Table4 builds the power comparison. The mixed-workload average case
// needs measured probe counts, so the captured Table 2 trace is replayed
// into the paper's 8 MB / 4-cluster molecular configuration.
func Table4(opt Options, t2 *Table2Result) (*Table4Result, error) {
	opt = opt.withDefaults()
	me, err := power.ModelMolecular(Table3Config(), power.Tech70)
	if err != nil {
		return nil, err
	}
	// Measure average probes on the 8 MB configuration: 12 apps in 4
	// clusters of 3 (tile j of each cluster hosts at most one app plus
	// spillover).
	placements := make(map[uint16]placement, 12)
	for i := 0; i < 12; i++ {
		placements[uint16(i+1)] = placement{Cluster: i / 3, Tile: i % 3}
	}
	run, err := replayMolecular(context.Background(), molecular.Config{
		TotalSize:       8 * addr.MB,
		MoleculeSize:    8 * addr.KB,
		LineSize:        64,
		TilesPerCluster: 4,
		Clusters:        4,
		Policy:          molecular.RandyReplacement,
		Seed:            opt.Seed,
	}, resize.Config{
		Trigger: resize.AdaptiveGlobal,
		Goals:   resizeGoals(table2Goals()),
	}, placements, t2.Trace)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{
		AvgProbes:   run.Cache.AverageProbes(),
		MolEstimate: me,
	}
	// The four traditional organization searches are independent; fan
	// them out (rows stay in associativity order).
	rows, err := runner.Map(context.Background(), opt.pool("table4"), []int{1, 2, 4, 8},
		func(ctx context.Context, _ int, ways int) (Table4Row, error) {
			est, err := power.Model(power.Geometry{
				SizeBytes: 8 * addr.MB, Assoc: ways, LineBytes: 64, Ports: 4,
			}, power.Tech70)
			if err != nil {
				return Table4Row{}, err
			}
			f := est.FrequencyMHz()
			return Table4Row{
				Name:      est.Geometry.Name(),
				FreqMHz:   f,
				PowerW:    est.PowerWatts(f),
				MolWorstW: power.PowerWatts(me.WorstCaseEnergy(), f),
				MolAvgW:   power.PowerWatts(me.AccessEnergy(int(res.AvgProbes+0.5)), f),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}
