package experiments

import (
	"context"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/runner"
)

// Table1Row is one row of the interference study: the L2 miss rate each
// application sees when run in the given company on a shared 1 MB 4-way
// L2 (the paper's Table 1).
type Table1Row struct {
	// Apps lists the concurrently running benchmarks.
	Apps []string
	// MissRate maps each benchmark in Apps to its L2 miss rate.
	MissRate map[string]float64
}

// Table1Combos are the paper's combinations: each benchmark alone, all
// six pairs, and all four together.
func Table1Combos() []mixSpec {
	singles := []mixSpec{{"art"}, {"mcf"}, {"ammp"}, {"parser"}}
	pairs := []mixSpec{
		{"art", "mcf"}, {"art", "ammp"}, {"art", "parser"},
		{"mcf", "ammp"}, {"mcf", "parser"}, {"ammp", "parser"},
	}
	all := []mixSpec{{"art", "mcf", "ammp", "parser"}}
	out := append(append(singles, pairs...), all...)
	return out
}

// Table1 runs the interference experiment. Every combination runs for
// opt.ProcessorRefs references split round-robin across its cores; the
// eleven combinations are independent CMP simulations, so they fan out
// across opt.Jobs workers with rows kept in combination order.
func Table1(opt Options) ([]Table1Row, error) {
	opt = opt.withDefaults()
	return runner.Map(context.Background(), opt.pool("table1"), Table1Combos(),
		func(ctx context.Context, _ int, mix mixSpec) (Table1Row, error) {
			if err := ctx.Err(); err != nil {
				return Table1Row{}, err
			}
			l2 := cache.MustNew(cache.Config{
				Size: 1 * addr.MB, Ways: 4, LineSize: 64, Policy: cache.LRU,
			})
			sys, err := buildCMP(l2, mix, opt.Seed, false)
			if err != nil {
				return Table1Row{}, err
			}
			sys.Run(opt.ProcessorRefs)
			row := Table1Row{Apps: mix, MissRate: make(map[string]float64, len(mix))}
			for i, name := range mix {
				row.MissRate[name] = l2.Ledger().App(uint16(i + 1)).MissRate()
			}
			return row, nil
		})
}

// Standalone returns the miss rate a benchmark sees alone from a Table1
// result set (helper for interference analysis).
func Standalone(rows []Table1Row, app string) (float64, bool) {
	for _, r := range rows {
		if len(r.Apps) == 1 && r.Apps[0] == app {
			return r.MissRate[app], true
		}
	}
	return 0, false
}
