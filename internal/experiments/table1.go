package experiments

import (
	"molcache/internal/addr"
	"molcache/internal/cache"
)

// Table1Row is one row of the interference study: the L2 miss rate each
// application sees when run in the given company on a shared 1 MB 4-way
// L2 (the paper's Table 1).
type Table1Row struct {
	// Apps lists the concurrently running benchmarks.
	Apps []string
	// MissRate maps each benchmark in Apps to its L2 miss rate.
	MissRate map[string]float64
}

// Table1Combos are the paper's combinations: each benchmark alone, all
// six pairs, and all four together.
func Table1Combos() []mixSpec {
	singles := []mixSpec{{"art"}, {"mcf"}, {"ammp"}, {"parser"}}
	pairs := []mixSpec{
		{"art", "mcf"}, {"art", "ammp"}, {"art", "parser"},
		{"mcf", "ammp"}, {"mcf", "parser"}, {"ammp", "parser"},
	}
	all := []mixSpec{{"art", "mcf", "ammp", "parser"}}
	out := append(append(singles, pairs...), all...)
	return out
}

// Table1 runs the interference experiment. Every combination runs for
// opt.ProcessorRefs references split round-robin across its cores.
func Table1(opt Options) ([]Table1Row, error) {
	opt = opt.withDefaults()
	var rows []Table1Row
	for _, mix := range Table1Combos() {
		l2 := cache.MustNew(cache.Config{
			Size: 1 * addr.MB, Ways: 4, LineSize: 64, Policy: cache.LRU,
		})
		sys, err := buildCMP(l2, mix, opt.Seed, false)
		if err != nil {
			return nil, err
		}
		sys.Run(opt.ProcessorRefs)
		row := Table1Row{Apps: mix, MissRate: make(map[string]float64, len(mix))}
		for i, name := range mix {
			row.MissRate[name] = l2.Ledger().App(uint16(i + 1)).MissRate()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Standalone returns the miss rate a benchmark sees alone from a Table1
// result set (helper for interference analysis).
func Standalone(rows []Table1Row, app string) (float64, bool) {
	for _, r := range rows {
		if len(r.Apps) == 1 && r.Apps[0] == app {
			return r.MissRate[app], true
		}
	}
	return 0, false
}
