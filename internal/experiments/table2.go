package experiments

import (
	"context"
	"fmt"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/metrics"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/runner"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

// Table2Mix is the twelve-benchmark SPEC+NetBench+MediaBench mix
// (ASIDs 1..12 in this order).
var Table2Mix = mixSpec(workload.MixedNames)

// table2Goal is the paper's miss-rate goal for the mixed study.
const table2Goal = 0.25

// Table2Row is one cache's average deviation from the 25% goal.
type Table2Row struct {
	Name      string
	Deviation float64
}

// Table2Result carries the deviation table plus the molecular-run
// details that Figure 6, Table 4 and Table 5 reuse.
type Table2Result struct {
	Rows []Table2Row
	// Randy and Random are the 6 MB molecular runs.
	Randy, Random *molecularRun
	// Trace is the captured L1-miss stream (reused by Table 4's 8 MB
	// molecular probe measurement).
	Trace []trace.Ref
}

// table2Goals puts the uniform goal on every mixed-workload application.
func table2Goals() metrics.Goals {
	asids := make([]uint16, len(Table2Mix))
	for i := range Table2Mix {
		asids[i] = uint16(i + 1)
	}
	return metrics.UniformGoals(table2Goal, asids...)
}

// sixMBMolecular is the paper's 6 MB configuration: 3 tile clusters of
// 4 tiles, 512 KB per tile, 8 KB molecules.
func sixMBMolecular(policy molecular.ReplacementKind, seed uint64) molecular.Config {
	return molecular.Config{
		TotalSize:       6 * addr.MB,
		MoleculeSize:    8 * addr.KB,
		LineSize:        64,
		TilesPerCluster: 4,
		Clusters:        3,
		Policy:          policy,
		Seed:            seed,
	}
}

// table2Placements groups the twelve applications into three groups of
// four, one tile cluster per group, "without giving consideration to the
// nature of the mix" (ASID order), app j of a group on tile j.
func table2Placements() map[uint16]placement {
	out := make(map[uint16]placement, 12)
	for i := 0; i < 12; i++ {
		out[uint16(i+1)] = placement{Cluster: i / 4, Tile: i % 4}
	}
	return out
}

// table2Point is one simulation of the study: a traditional geometry
// (Molecular == "") or a 6 MB molecular policy.
type table2Point struct {
	size      uint64
	ways      int
	Molecular molecular.ReplacementKind
}

// table2Outcome carries a point's deviation row plus, for molecular
// points, the run the downstream experiments (Figure 6, Tables 4-5) mine.
type table2Outcome struct {
	row Table2Row
	run *molecularRun
}

// Table2 runs the mixed-workload study: capture once, then fan the four
// traditional configurations and the two 6 MB molecular caches out as
// independent replays of the shared trace. Row order is fixed by the
// point list, not by completion order.
func Table2(opt Options) (*Table2Result, error) {
	opt = opt.withDefaults()
	refs, err := captureTrace(Table2Mix, opt.ProcessorRefs, opt.Seed)
	if err != nil {
		return nil, err
	}
	goals := table2Goals()
	points := []table2Point{
		{size: 4 * addr.MB, ways: 4}, {size: 4 * addr.MB, ways: 8},
		{size: 8 * addr.MB, ways: 4}, {size: 8 * addr.MB, ways: 8},
		{Molecular: molecular.RandyReplacement},
		{Molecular: molecular.RandomReplacement},
	}
	outcomes, err := runner.Map(context.Background(), opt.pool("table2"), points,
		func(ctx context.Context, _ int, pt table2Point) (table2Outcome, error) {
			if pt.Molecular == "" {
				c, err := replayTraditional(ctx, cache.Config{
					Size: pt.size, Ways: pt.ways, LineSize: 64, Policy: cache.LRU,
				}, refs)
				if err != nil {
					return table2Outcome{}, err
				}
				return table2Outcome{row: Table2Row{
					Name:      c.Name(),
					Deviation: metrics.AverageDeviation(c.Ledger(), goals),
				}}, nil
			}
			rcfg := resize.Config{Trigger: resize.AdaptiveGlobal, Goals: resizeGoals(goals)}
			run, err := replayMolecular(ctx,
				sixMBMolecular(pt.Molecular, opt.Seed), rcfg, table2Placements(), refs)
			if err != nil {
				return table2Outcome{}, err
			}
			return table2Outcome{
				row: Table2Row{
					Name:      run.Cache.Name(),
					Deviation: metrics.AverageDeviation(run.Cache.Ledger(), goals),
				},
				run: run,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Trace: refs}
	for i, out := range outcomes {
		res.Rows = append(res.Rows, out.row)
		switch points[i].Molecular {
		case molecular.RandyReplacement:
			res.Randy = out.run
		case molecular.RandomReplacement:
			res.Random = out.run
		}
	}
	return res, nil
}

// Figure6Row is one benchmark's hit-rate-per-molecule under each policy.
type Figure6Row struct {
	Benchmark string
	RandyHPM  float64
	RandomHPM float64
}

// Figure6Result carries the per-benchmark HPM plus the aggregate claims
// the paper makes alongside the figure (overall miss rates and molecule
// usage of the two policies).
type Figure6Result struct {
	Rows []Figure6Row
	// RandyMissRate and RandomMissRate are overall miss rates (the
	// paper reports Randy ~9% lower).
	RandyMissRate, RandomMissRate float64
	// RandyMolecules and RandomMolecules are total time-weighted
	// average molecules in use (the paper reports Randy ~5% higher).
	RandyMolecules, RandomMolecules float64
}

// Figure6 derives the HPM comparison from a Table2 result.
func Figure6(t2 *Table2Result) *Figure6Result {
	out := &Figure6Result{
		RandyMissRate:  t2.Randy.Cache.Ledger().Total.MissRate(),
		RandomMissRate: t2.Random.Cache.Ledger().Total.MissRate(),
	}
	for i, name := range Table2Mix {
		asid := uint16(i + 1)
		row := Figure6Row{Benchmark: name}
		if r := t2.Randy.Cache.Region(asid); r != nil {
			row.RandyHPM = metrics.ComputeHPM(asid, name, r.Ledger(), r.AverageMolecules()).Value
			out.RandyMolecules += r.AverageMolecules()
		}
		if r := t2.Random.Cache.Region(asid); r != nil {
			row.RandomHPM = metrics.ComputeHPM(asid, name, r.Ledger(), r.AverageMolecules()).Value
			out.RandomMolecules += r.AverageMolecules()
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// String summarises the aggregate comparison.
func (f *Figure6Result) String() string {
	return fmt.Sprintf("Randy miss %.4f vs Random %.4f; Randy molecules %.1f vs Random %.1f",
		f.RandyMissRate, f.RandomMissRate, f.RandyMolecules, f.RandomMolecules)
}
