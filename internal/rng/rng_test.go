package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 7, 16, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// Intn over a small modulus should be close to uniform; this is the
// property the Random replacement policy depends on.
func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: count %d deviates more than 5%% from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(11)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be the most frequent, and frequencies must broadly decay.
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Errorf("Zipf counts not decreasing: c0=%d c10=%d c90=%d",
			counts[0], counts[10], counts[90])
	}
	// With theta=1, p(0)/p(1) = 2; check ratio within 15%.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("Zipf rank0/rank1 ratio = %v, want ~2", ratio)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(New(1), 10, 0.8)
	for i := 0; i < 5000; i++ {
		v := z.Next()
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
	}
}

func TestLnExpAccuracy(t *testing.T) {
	cases := []float64{0.1, 0.5, 1, 2, 2.718281828, 10, 12345}
	for _, x := range cases {
		if got, want := ln(x), math.Log(x); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("ln(%v) = %v, want %v", x, got, want)
		}
	}
	for _, x := range []float64{-5, -1, -0.1, 0, 0.1, 1, 5, 20} {
		if got, want := exp(x), math.Exp(x); math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("exp(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPowMatchesMath(t *testing.T) {
	f := func(xi, yi uint8) bool {
		x := 0.5 + float64(xi)/16 // [0.5, 16.4]
		y := 0.1 + float64(yi)/64 // [0.1, 4.1]
		got := pow(x, y)
		want := math.Pow(x, y)
		return math.Abs(got-want) <= 1e-8*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeriveSeedMatchesSplitMixWalk(t *testing.T) {
	// DeriveSeed(base, i) is defined as the (i+1)-th output of a
	// SplitMix64 walk starting at base — the same expansion New uses, so
	// derived generators inherit its independence guarantees.
	walk := NewSplitMix64(2006)
	for i := uint64(0); i < 100; i++ {
		if got, want := DeriveSeed(2006, i), walk.Next(); got != want {
			t.Fatalf("DeriveSeed(2006, %d) = %#x, want walk output %#x", i, got, want)
		}
	}
}

func TestDeriveSeedStreamsIndependent(t *testing.T) {
	// Distinct streams must yield distinct seeds and generators whose
	// outputs never coincide over a long prefix (a shared or correlated
	// state would show up as collisions immediately).
	const streams, draws = 16, 1000
	seen := map[uint64]int{}
	srcs := make([]*Source, streams)
	for i := 0; i < streams; i++ {
		s := DeriveSeed(2006, uint64(i))
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d share seed %#x", prev, i, s)
		}
		seen[s] = i
		srcs[i] = New(s)
	}
	values := map[uint64]bool{}
	for _, src := range srcs {
		for d := 0; d < draws; d++ {
			values[src.Uint64()] = true
		}
	}
	if len(values) != streams*draws {
		t.Errorf("cross-stream collisions: %d unique of %d draws",
			len(values), streams*draws)
	}
}

// TestDeriveSeedNoInterleaving is the scheduler-safety property the
// parallel runner depends on: a job's stream is a pure function of
// (base, job index), so the values a job draws cannot depend on how many
// draws other jobs made first — unlike jobs sharing one Source, where the
// completion order would reshuffle every sequence.
func TestDeriveSeedNoInterleaving(t *testing.T) {
	const jobs, draws = 8, 64
	drawAll := func(order []int) [jobs][draws]uint64 {
		var out [jobs][draws]uint64
		for _, j := range order {
			src := New(DeriveSeed(2006, uint64(j)))
			for d := 0; d < draws; d++ {
				out[j][d] = src.Uint64()
			}
		}
		return out
	}
	forward := make([]int, jobs)
	reverse := make([]int, jobs)
	for i := 0; i < jobs; i++ {
		forward[i] = i
		reverse[i] = jobs - 1 - i
	}
	if drawAll(forward) != drawAll(reverse) {
		t.Fatal("per-job streams depend on execution order")
	}

	// The counterexample: interleaving draws from one shared Source gives
	// each job a schedule-dependent sequence. This is why the runner
	// derives a seed per job instead of sharing a generator.
	shared := func(order []int) [jobs][draws]uint64 {
		var out [jobs][draws]uint64
		src := New(2006)
		for _, j := range order {
			for d := 0; d < draws; d++ {
				out[j][d] = src.Uint64()
			}
		}
		return out
	}
	if shared(forward) == shared(reverse) {
		t.Fatal("shared-source draws unexpectedly order-independent")
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the public-domain splitmix64.c.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("splitmix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}
