// Package rng provides the deterministic pseudo-random number generators
// used across the simulator.
//
// The paper notes that the Random and Randy replacement policies depend on
// "the entropy of the random number generator implemented in hardware".
// We model that hardware RNG with xoshiro256**, seeded via splitmix64,
// which has excellent uniformity for victim selection while keeping every
// experiment bit-for-bit reproducible. The package deliberately does not
// use math/rand so that streams are stable across Go releases.
package rng

import "fmt"

// SplitMix64 is the seeding generator recommended by the xoshiro authors.
// It is also useful on its own as a cheap hash-like sequence.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed returns the stream-th seed derived from base. Distinct
// streams yield statistically independent xoshiro256** generators (each
// derived seed is one SplitMix64 output, the same mechanism New uses to
// expand a seed into a state), so concurrent jobs can each run their own
// Source without interleaving draws from a shared stream. The mapping is
// pure: DeriveSeed(base, i) is stable across runs and platforms.
func DeriveSeed(base, stream uint64) uint64 {
	// The stream-th state of a SplitMix64 walk starting at base.
	sm := SplitMix64{state: base + stream*0x9e3779b97f4a7c15}
	return sm.Next()
}

// Source is a xoshiro256** generator. The zero value is invalid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, per the xoshiro
// reference implementation's seeding guidance.
func New(seed uint64) *Source {
	sm := NewSplitMix64(seed)
	var src Source
	for i := range src.s {
		src.s[i] = sm.Next()
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// State returns the generator's internal 256-bit state, for
// checkpointing. Feeding it back through SetState yields a Source that
// continues the exact draw sequence.
func (r *Source) State() [4]uint64 { return r.s }

// SetState overwrites the generator state with a previously captured
// State. It rejects the all-zero state (xoshiro's single invalid fixed
// point) so a corrupted checkpoint cannot wedge the stream.
func (r *Source) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return fmt.Errorf("rng: all-zero xoshiro256** state is invalid")
	}
	r.s = s
	return nil
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples from a Zipf distribution over {0, ..., n-1} with exponent
// theta (theta > 0, typically around 0.8-1.2 for cache workloads). It uses
// the classic inverse-CDF method over a precomputed table, which is exact
// and fast for the table sizes cache workloads need.
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent theta.
// It panics if n <= 0 or theta <= 0.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if theta <= 0 {
		panic("rng: NewZipf with non-positive theta")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// Next returns the next sample; rank 0 is the most popular item.
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow computes x**y for y > 0 without importing math, using exp/log-free
// exponentiation by squaring on the integer part and a small series for
// the fractional part. Accuracy (~1e-9 relative) far exceeds what a
// workload skew parameter needs.
func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	// x^y = exp(y * ln x); implement ln and exp with enough precision.
	return exp(y * ln(x))
}

func ln(x float64) float64 {
	// Range-reduce x into [1, 2) by factoring out powers of two.
	k := 0
	for x >= 2 {
		x /= 2
		k++
	}
	for x < 1 {
		x *= 2
		k--
	}
	// atanh series: ln(x) = 2*atanh((x-1)/(x+1)).
	t := (x - 1) / (x + 1)
	t2 := t * t
	sum := 0.0
	term := t
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= t2
	}
	const ln2 = 0.6931471805599453
	return 2*sum + float64(k)*ln2
}

func exp(x float64) float64 {
	// Range-reduce: x = k*ln2 + r with |r| <= ln2/2.
	const ln2 = 0.6931471805599453
	k := int(x/ln2 + sign(x)*0.5)
	r := x - float64(k)*ln2
	// Taylor series for e^r on the small remainder.
	sum := 1.0
	term := 1.0
	for i := 1; i < 20; i++ {
		term *= r / float64(i)
		sum += term
	}
	// Scale by 2^k.
	for ; k > 0; k-- {
		sum *= 2
	}
	for ; k < 0; k++ {
		sum /= 2
	}
	return sum
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
