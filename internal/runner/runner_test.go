package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"molcache/internal/rng"
	"molcache/internal/telemetry"
)

// TestMapOrdering: results land at their submission index at every worker
// count, even when later jobs finish first.
func TestMapOrdering(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 100} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			out, err := Map(context.Background(), Pool{Workers: workers}, items,
				func(_ context.Context, i int, item int) (int, error) {
					if i%7 == 0 {
						time.Sleep(time.Millisecond) // let later jobs overtake
					}
					return item * item, nil
				})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

// TestMapSerialInline: Workers==1 runs every job on the calling goroutine
// in submission order — the drop-in replacement for a plain loop.
func TestMapSerialInline(t *testing.T) {
	var order []int
	_, err := Map(context.Background(), Pool{Workers: 1}, []int{0, 1, 2, 3},
		func(_ context.Context, i int, _ int) (int, error) {
			order = append(order, i) // safe: serial mode is single-goroutine
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial execution order %v, want ascending", order)
		}
	}
}

// TestMapFirstErrorWins: the reported error is the lowest-index real
// failure, not a cancellation it induced elsewhere.
func TestMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, err := Map(context.Background(), Pool{Workers: workers},
				[]int{0, 1, 2, 3, 4, 5, 6, 7},
				func(ctx context.Context, i int, _ int) (int, error) {
					if i == 3 {
						return 0, boom
					}
					if i > 3 {
						// Late jobs observe the cancellation.
						select {
						case <-ctx.Done():
							return 0, ctx.Err()
						case <-time.After(50 * time.Millisecond):
							return 0, nil
						}
					}
					return 0, nil
				})
			if !errors.Is(err, boom) {
				t.Fatalf("got %v, want %v", err, boom)
			}
		})
	}
}

// TestMapCancellationOnly: when every failure is a cancellation (caller
// cancelled the context), Map reports the cancellation.
func TestMapCancellationOnly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, Pool{Workers: 2}, []int{0, 1, 2},
		func(ctx context.Context, _ int, _ int) (int, error) {
			return 0, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestMapPanicCapture: a panicking job becomes a *PanicError for that job;
// the rest of the batch completes.
func TestMapPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var completed atomic.Int32
			_, err := Map(context.Background(), Pool{Workers: workers, Label: "sim"},
				[]int{0, 1, 2, 3},
				func(_ context.Context, i int, _ int) (int, error) {
					if i == 2 {
						panic("kaboom")
					}
					completed.Add(1)
					return 0, nil
				})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("got %T %v, want *PanicError", err, err)
			}
			if pe.Job != "sim[2]" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
				t.Fatalf("bad PanicError: job=%q value=%v stack=%d bytes",
					pe.Job, pe.Value, len(pe.Stack))
			}
		})
	}
}

// TestRunNamedJobs: Run keeps submission order and names panic reports
// after the job, not the index.
func TestRunNamedJobs(t *testing.T) {
	jobs := []Job[string]{
		{Name: "alpha", Run: func(context.Context) (string, error) { return "a", nil }},
		{Name: "beta", Run: func(context.Context) (string, error) { return "b", nil }},
	}
	out, err := Run(context.Background(), Pool{Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "a" || out[1] != "b" {
		t.Fatalf("out = %v", out)
	}

	jobs = append(jobs, Job[string]{Name: "gamma",
		Run: func(context.Context) (string, error) { panic("g") }})
	_, err = Run(context.Background(), Pool{Workers: 1}, jobs)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Job != "gamma" {
		t.Fatalf("got %v, want PanicError for gamma", err)
	}
}

// TestMapTelemetry: the runner_* instruments and job events reflect the
// batch exactly.
func TestMapTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(64)
	boom := errors.New("boom")
	var progressCalls atomic.Int32
	var lastDone atomic.Int32
	_, err := Map(context.Background(), Pool{
		Workers:  1,
		Registry: reg,
		Tracer:   tr,
		Label:    "batch",
		OnProgress: func(p Progress) {
			progressCalls.Add(1)
			lastDone.Store(int32(p.Done))
			if p.Total != 4 {
				t.Errorf("Progress.Total = %d, want 4", p.Total)
			}
		},
	}, []int{0, 1, 2, 3},
		func(_ context.Context, i int, _ int) (int, error) {
			switch i {
			case 1:
				return 0, boom
			case 3:
				panic("p")
			}
			return 0, nil
		})
	if err == nil {
		t.Fatal("want an error")
	}
	get := func(name string) uint64 { return reg.Counter(name).Value() }
	if got := get("runner_jobs_submitted_total"); got != 4 {
		t.Errorf("submitted = %d", got)
	}
	if got := get("runner_jobs_completed_total"); got != 4 {
		t.Errorf("completed = %d, want 4 (serial mode still invokes every job)", got)
	}
	if got := get("runner_job_panics_total"); got != 1 {
		t.Errorf("panics = %d", got)
	}
	if failed := get("runner_jobs_failed_total"); failed < 2 {
		t.Errorf("failed = %d, want >= 2 (boom + panic)", failed)
	}
	if h := reg.Histogram("runner_job_seconds", nil); h.Count() != 4 {
		t.Errorf("job_seconds count = %d, want 4", h.Count())
	}
	if progressCalls.Load() != 4 || lastDone.Load() != 4 {
		t.Errorf("progress calls=%d lastDone=%d, want 4/4",
			progressCalls.Load(), lastDone.Load())
	}
	var starts, dones int
	for _, e := range tr.Events() {
		switch e.Kind {
		case telemetry.KindJobStart:
			starts++
		case telemetry.KindJobDone:
			dones++
		}
	}
	if starts != 4 || dones != 4 {
		t.Errorf("events: %d starts, %d dones, want 4/4", starts, dones)
	}
}

// TestMapEmpty: an empty batch is a no-op success.
func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), Pool{}, nil,
		func(_ context.Context, _ int, _ struct{}) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

// TestSeedMatchesDerive: the runner's per-job seed helper is exactly
// rng.DeriveSeed, and distinct jobs get distinct seeds.
func TestSeedMatchesDerive(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := Seed(2006, i)
		if s != rng.DeriveSeed(2006, uint64(i)) {
			t.Fatalf("Seed(2006, %d) diverges from rng.DeriveSeed", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between jobs %d and %d", prev, i)
		}
		seen[s] = i
	}
}

// TestProgressThroughput: JobsPerSecond is finite and sane.
func TestProgressThroughput(t *testing.T) {
	p := Progress{Done: 10, Total: 10, Elapsed: 2 * time.Second}
	if got := p.JobsPerSecond(); got != 5 {
		t.Fatalf("JobsPerSecond = %v, want 5", got)
	}
	if got := (Progress{}).JobsPerSecond(); got != 0 {
		t.Fatalf("zero Progress throughput = %v, want 0", got)
	}
}

// TestManualClockDeterministicDurations: with an injected ManualClock
// every duration-derived metric is exact — the histogram sums precisely
// the advanced time and the final Progress snapshot is reproducible
// bit-for-bit, which wall-clock timestamps can never be.
func TestManualClockDeterministicDurations(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := NewManualClock(time.Unix(1000, 0))
	var last Progress
	_, err := Map(context.Background(), Pool{
		Workers:    1,
		Registry:   reg,
		Clock:      clk,
		OnProgress: func(p Progress) { last = p },
	}, []int{0, 1, 2, 3},
		func(_ context.Context, i int, _ int) (int, error) {
			clk.Advance(10 * time.Millisecond) // each job "takes" exactly 10ms
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("runner_job_seconds", nil)
	if h.Count() != 4 {
		t.Fatalf("job_seconds count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 0.04 {
		t.Errorf("job_seconds sum = %v, want exactly 0.04", got)
	}
	if last.Elapsed != 40*time.Millisecond {
		t.Errorf("final Elapsed = %v, want exactly 40ms", last.Elapsed)
	}
	if got := last.JobsPerSecond(); got != 100 {
		t.Errorf("JobsPerSecond = %v, want exactly 100", got)
	}
}

// TestManualClock: the clock itself only moves on Advance.
func TestManualClock(t *testing.T) {
	start := time.Unix(42, 0)
	clk := NewManualClock(start)
	if !clk.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", clk.Now(), start)
	}
	if d := clk.Since(start); d != 0 {
		t.Fatalf("Since(start) = %v, want 0", d)
	}
	clk.Advance(3 * time.Second)
	if d := clk.Since(start); d != 3*time.Second {
		t.Fatalf("after Advance, Since(start) = %v, want 3s", d)
	}
}
