package runner

import (
	"sync"
	"time"
)

// Clock abstracts the wall-clock reads the pool makes for telemetry —
// job durations, batch throughput, Progress.Elapsed. Simulation time
// everywhere else in the repository is access-count-driven and never
// touches a clock; the scheduler's observability is the one place wall
// time appears, and injecting it here keeps even that deterministic
// under test. Production code leaves Pool.Clock nil and gets the real
// clock; tests inject a ManualClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
}

// realClock is the production Clock: the process wall clock. Its two
// methods are the only sanctioned wall-clock reads in the simulation
// packages, which is exactly what the ignore directives record.
type realClock struct{}

// Now implements Clock.
//
//molvet:ignore determinism realClock is the injected production clock; all other code goes through Pool.Clock
func (realClock) Now() time.Time { return time.Now() }

// Since implements Clock.
//
//molvet:ignore determinism realClock is the injected production clock; all other code goes through Pool.Clock
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }

// ManualClock is a deterministic Clock for tests: it reads a fixed
// instant that moves only when Advance is called, so duration metrics
// and Progress snapshots come out identical on every run.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a ManualClock whose Now is start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the clock's current instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the manual time elapsed since t.
func (c *ManualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Advance moves the clock forward by d. Safe to call from job
// goroutines.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
