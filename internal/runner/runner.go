// Package runner is the parallel experiment scheduler: it fans
// independent simulation jobs (sweep points, paper tables and figures,
// fault campaigns) across a fixed pool of workers while keeping every
// result deterministic.
//
// The paper's evaluation is embarrassingly parallel — Tables 1-5 and
// Figures 5-6 replay the same captured traces through dozens of cache
// configurations that never share state — so the scaling axis is job-level
// fan-out, not intra-simulation threading. The invariants the package
// guarantees make that fan-out safe to diff against a serial run:
//
//   - Results are collected in submission order, regardless of completion
//     order: Map(ctx, p, items, fn)[i] is always fn's result for items[i].
//   - A pool with Workers == 1 runs every job inline on the calling
//     goroutine, in submission order — byte-identical behaviour to the
//     nested loops it replaced.
//   - Jobs must not share mutable state. Each builds its own caches and
//     controllers and may share immutable inputs (captured trace slices).
//     Per-job RNG streams come from rng.DeriveSeed via Pool-independent
//     seeding, so draws never interleave across jobs.
//   - A panic inside a job is captured and surfaced as a *PanicError for
//     that job, not a crash of the whole sweep.
//   - The first job error cancels the context handed to every other job;
//     Map returns the error of the lowest submission index so the
//     reported failure is deterministic too.
//
// Progress and throughput flow through internal/telemetry: the pool
// maintains runner_* counters/gauges when a Registry is attached, emits
// job-start/job-done events when a Tracer is attached, and calls an
// optional OnProgress callback after every completion.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"molcache/internal/rng"
	"molcache/internal/telemetry"
)

// Pool describes a worker pool. The zero value is valid: GOMAXPROCS
// workers, no telemetry, no progress callback.
type Pool struct {
	// Workers is the number of concurrent jobs (0 means GOMAXPROCS;
	// 1 means serial, inline execution in submission order).
	Workers int
	// Tracer, when set, receives a job-start and job-done event per job.
	Tracer *telemetry.Tracer
	// Registry, when set, maintains the runner_* metrics: jobs submitted,
	// completed, failed, panics, worker count, job seconds and throughput.
	Registry *telemetry.Registry
	// OnProgress, when set, is called after every job completion with a
	// consistent snapshot. Calls are serialized by the pool.
	OnProgress func(Progress)
	// Label names the batch in telemetry events (default "job").
	Label string
	// Clock supplies the timestamps behind job-duration metrics and
	// Progress.Elapsed (nil means the real wall clock). Tests inject a
	// ManualClock so duration metrics are deterministic.
	Clock Clock
}

// Progress is a consistent snapshot of a running batch.
type Progress struct {
	// Done is the number of finished jobs (including failures); Total is
	// the batch size; Failed counts jobs that returned an error or
	// panicked.
	Done, Total, Failed int
	// Elapsed is the wall-clock time since the batch started.
	Elapsed time.Duration
}

// JobsPerSecond returns the batch's completion throughput so far.
func (p Progress) JobsPerSecond() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Done) / p.Elapsed.Seconds()
}

// PanicError wraps a panic captured inside a job.
type PanicError struct {
	// Job is the panicking job's telemetry label and submission index.
	Job string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v", e.Job, e.Value)
}

// workers resolves the configured worker count.
func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// label resolves the batch label.
func (p Pool) label() string {
	if p.Label != "" {
		return p.Label
	}
	return "job"
}

// clock resolves the configured Clock.
func (p Pool) clock() Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return realClock{}
}

// Seed derives the i-th job's RNG seed from base. It is a thin alias for
// rng.DeriveSeed so experiment code that already imports runner does not
// need a second import for the common case.
func Seed(base uint64, i int) uint64 { return rng.DeriveSeed(base, uint64(i)) }

// jobSecondsBounds buckets job wall times from sub-millisecond unit-test
// jobs up to multi-minute full-scale replays.
var jobSecondsBounds = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300}

// instruments holds the pool's registry attachments for one batch.
type instruments struct {
	submitted, completed, failed, panics *telemetry.Counter
	workers, throughput                  *telemetry.Gauge
	seconds                              *telemetry.Histogram
}

func (p Pool) instruments() *instruments {
	if p.Registry == nil {
		return &instruments{} // nil fields: every method is a no-op
	}
	return &instruments{
		submitted:  p.Registry.Counter("runner_jobs_submitted_total"),
		completed:  p.Registry.Counter("runner_jobs_completed_total"),
		failed:     p.Registry.Counter("runner_jobs_failed_total"),
		panics:     p.Registry.Counter("runner_job_panics_total"),
		workers:    p.Registry.Gauge("runner_workers"),
		throughput: p.Registry.Gauge("runner_jobs_per_second"),
		seconds:    p.Registry.Histogram("runner_job_seconds", jobSecondsBounds),
	}
}

// Map runs fn over every item on the pool and returns the results in
// submission order: out[i] is fn(ctx, i, items[i]). On the first job
// error the context passed to the remaining jobs is cancelled; jobs
// already running finish (or observe the cancellation), queued jobs are
// still invoked with the cancelled context and may return immediately.
// The returned error is the lowest-index job error, preferring real
// failures over the context-cancellation errors they induced.
func Map[T, R any](ctx context.Context, p Pool, items []T,
	fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	ins := p.instruments()
	ins.submitted.Add(uint64(len(items)))
	nw := p.workers()
	if nw > len(items) {
		nw = len(items)
	}
	ins.workers.Set(float64(nw))

	errs := make([]error, len(items))
	clk := p.clock()
	start := clk.Now()
	var mu sync.Mutex // guards progress + OnProgress serialization
	prog := Progress{Total: len(items)}

	runJob := func(ctx context.Context, i int) {
		label := fmt.Sprintf("%s[%d]", p.label(), i)
		p.Tracer.Emit(telemetry.Event{
			Kind: telemetry.KindJobStart, Detail: label, Value: int64(i),
		})
		t0 := clk.Now()
		func() {
			defer func() {
				if v := recover(); v != nil {
					errs[i] = &PanicError{Job: label, Value: v, Stack: debug.Stack()}
				}
			}()
			out[i], errs[i] = fn(ctx, i, items[i])
		}()
		var pe *PanicError
		if errors.As(errs[i], &pe) {
			ins.panics.Inc()
		}
		dt := clk.Since(t0)
		ins.seconds.Observe(dt.Seconds())
		ins.completed.Inc()
		if errs[i] != nil {
			ins.failed.Inc()
		}
		p.Tracer.Emit(telemetry.Event{
			Kind: telemetry.KindJobDone, Detail: label, Value: int64(i),
			Aux: dt.Microseconds(), Hit: errs[i] == nil,
		})
		mu.Lock()
		prog.Done++
		if errs[i] != nil {
			prog.Failed++
		}
		prog.Elapsed = clk.Since(start)
		snap := prog
		ins.throughput.Set(snap.JobsPerSecond())
		if p.OnProgress != nil {
			p.OnProgress(snap)
		}
		mu.Unlock()
	}

	if nw == 1 {
		// Serial mode: inline, in submission order, on the caller's
		// goroutine — the byte-identical replacement for a nested loop.
		// The first error still stops the batch early via cancellation.
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		for i := range items {
			runJob(ctx, i)
			if errs[i] != nil {
				cancel()
			}
		}
		return out, firstError(errs)
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				runJob(jctx, i)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, firstError(errs)
}

// Job couples a label with a closure, for batches whose points are not
// naturally a slice of one item type.
type Job[R any] struct {
	// Name labels the job in telemetry and panic reports.
	Name string
	// Run produces the job's result. It must not share mutable state
	// with other jobs.
	Run func(ctx context.Context) (R, error)
}

// Run executes the jobs on the pool, results in submission order. A
// panicking job surfaces as a *PanicError carrying its Name.
func Run[R any](ctx context.Context, p Pool, jobs []Job[R]) ([]R, error) {
	return Map(ctx, p, jobs, func(ctx context.Context, _ int, j Job[R]) (out R, err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Job: j.Name, Value: v, Stack: debug.Stack()}
			}
		}()
		return j.Run(ctx)
	})
}

// firstError returns the error of the lowest-index failed job, preferring
// a non-cancellation error: when job 7 fails and cancels jobs 2 and 5
// mid-flight, the reported failure is still job 7's, deterministically.
func firstError(errs []error) error {
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return err
	}
	return cancelled
}
