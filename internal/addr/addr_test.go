package addr

import (
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := []struct {
		v    uint64
		want bool
	}{
		{0, false}, {1, true}, {2, true}, {3, false}, {4, true},
		{63, false}, {64, true}, {1 << 20, true}, {(1 << 20) + 1, false},
		{1 << 63, true}, {^uint64(0), false},
	}
	for _, c := range cases {
		if got := IsPow2(c.v); got != c.want {
			t.Errorf("IsPow2(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := []struct {
		v    uint64
		want uint
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {64, 6}, {1 << 20, 20}, {1 << 63, 63},
	}
	for _, c := range cases {
		if got := Log2(c.v); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLog2PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestCheckPow2(t *testing.T) {
	if err := CheckPow2("size", 4096); err != nil {
		t.Errorf("CheckPow2(4096) = %v, want nil", err)
	}
	if err := CheckPow2("size", 4095); err == nil {
		t.Error("CheckPow2(4095) = nil, want error")
	}
}

func TestLineAlign(t *testing.T) {
	if got := LineAlign(0x12345, 64); got != 0x12340 {
		t.Errorf("LineAlign = %#x, want 0x12340", got)
	}
	if got := LineAlign(0x40, 64); got != 0x40 {
		t.Errorf("LineAlign aligned input = %#x, want 0x40", got)
	}
}

func TestBlockIndex(t *testing.T) {
	if got := BlockIndex(0x1000, 64); got != 0x40 {
		t.Errorf("BlockIndex = %d, want 64", got)
	}
}

func TestAlignUpDown(t *testing.T) {
	if got := AlignUp(100, 64); got != 128 {
		t.Errorf("AlignUp(100,64) = %d, want 128", got)
	}
	if got := AlignUp(128, 64); got != 128 {
		t.Errorf("AlignUp(128,64) = %d, want 128", got)
	}
	if got := AlignDown(100, 64); got != 64 {
		t.Errorf("AlignDown(100,64) = %d, want 64", got)
	}
}

func TestMask(t *testing.T) {
	if got := Mask(0); got != 0 {
		t.Errorf("Mask(0) = %#x, want 0", got)
	}
	if got := Mask(6); got != 63 {
		t.Errorf("Mask(6) = %#x, want 63", got)
	}
	if got := Mask(64); got != ^uint64(0) {
		t.Errorf("Mask(64) = %#x, want all ones", got)
	}
	if got := Mask(80); got != ^uint64(0) {
		t.Errorf("Mask(80) = %#x, want all ones", got)
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		v    uint64
		want string
	}{
		{64, "64B"}, {8 * KB, "8KB"}, {512 * KB, "512KB"},
		{MB, "1MB"}, {8 * MB, "8MB"}, {1000, "1000B"},
	}
	for _, c := range cases {
		if got := Bytes(c.v); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

// Property: for any v>0, 1<<Log2(v) <= v < 1<<(Log2(v)+1).
func TestLog2Property(t *testing.T) {
	f := func(v uint64) bool {
		if v == 0 {
			return true
		}
		n := Log2(v)
		lo := uint64(1) << n
		if v < lo {
			return false
		}
		if n < 63 && v>>(n+1) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LineAlign result is aligned and within one line below the input.
func TestLineAlignProperty(t *testing.T) {
	f := func(a uint64) bool {
		const line = 64
		g := LineAlign(a, line)
		return g%line == 0 && g <= a && a-g < line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
