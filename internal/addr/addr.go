// Package addr provides address arithmetic helpers shared by every cache
// model in the repository. All caches in this codebase use power-of-two
// geometries, so index/tag extraction reduces to shifts and masks.
package addr

import "fmt"

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v uint64) bool {
	return v != 0 && v&(v-1) == 0
}

// Log2 returns floor(log2(v)). It panics if v == 0.
func Log2(v uint64) uint {
	if v == 0 {
		panic("addr: Log2 of zero")
	}
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// CheckPow2 returns an error naming the parameter if v is not a positive
// power of two. It is the standard geometry validation used by cache
// constructors.
func CheckPow2(name string, v uint64) error {
	if !IsPow2(v) {
		return fmt.Errorf("addr: %s must be a power of two, got %d", name, v)
	}
	return nil
}

// LineAlign clears the low bits of a so that it is aligned to lineSize.
// lineSize must be a power of two.
func LineAlign(a, lineSize uint64) uint64 {
	return a &^ (lineSize - 1)
}

// BlockIndex returns the line-granular block number of address a,
// i.e. a / lineSize for power-of-two lineSize.
func BlockIndex(a, lineSize uint64) uint64 {
	return a >> Log2(lineSize)
}

// Mask returns a mask with the low n bits set.
func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// AlignDown rounds v down to a multiple of align (power of two).
func AlignDown(v, align uint64) uint64 {
	return v &^ (align - 1)
}

// AlignUp rounds v up to a multiple of align (power of two).
func AlignUp(v, align uint64) uint64 {
	return (v + align - 1) &^ (align - 1)
}

// Bytes formats a byte count using binary units (KB/MB) the way the paper
// writes cache sizes, e.g. 8192 -> "8KB", 2097152 -> "2MB".
func Bytes(v uint64) string {
	switch {
	case v >= 1<<20 && v%(1<<20) == 0:
		return fmt.Sprintf("%dMB", v>>20)
	case v >= 1<<10 && v%(1<<10) == 0:
		return fmt.Sprintf("%dKB", v>>10)
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// KB and MB are convenience multipliers for cache geometry literals.
const (
	KB uint64 = 1 << 10
	MB uint64 = 1 << 20
)
