package molecular

import (
	"fmt"
	"math/bits"
	"sort"

	"molcache/internal/addr"
	"molcache/internal/engine"
	"molcache/internal/faults"
	"molcache/internal/noc"
	"molcache/internal/rng"
	"molcache/internal/stats"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// Config describes a molecular cache.
type Config struct {
	// TotalSize is the aggregate capacity in bytes.
	TotalSize uint64
	// MoleculeSize is one molecule's capacity (8-32 KB per the paper;
	// default 8 KB).
	MoleculeSize uint64
	// LineSize is the base line size (default 64 B).
	LineSize uint64
	// TilesPerCluster groups tiles under one Ulmo (default 4).
	TilesPerCluster int
	// Clusters is the number of tile clusters (default 1).
	Clusters int
	// Policy selects molecule replacement (default Randy).
	Policy ReplacementKind
	// LineFactor is the number of base lines fetched per miss for new
	// regions (default 1; a power of two). Regions may override it at
	// creation.
	LineFactor int
	// InitialMolecules is a new region's starting allocation (default
	// half the home tile, per the paper's chosen scheme).
	InitialMolecules int
	// Seed drives the replacement randomness.
	Seed uint64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MoleculeSize == 0 {
		c.MoleculeSize = 8 * addr.KB
	}
	if c.LineSize == 0 {
		c.LineSize = 64
	}
	if c.TilesPerCluster == 0 {
		c.TilesPerCluster = 4
	}
	if c.Clusters == 0 {
		c.Clusters = 1
	}
	if c.Policy == "" {
		c.Policy = RandyReplacement
	}
	if c.LineFactor == 0 {
		c.LineFactor = 1
	}
	return c
}

// Validate checks the configuration (after defaulting).
func (c Config) Validate() error {
	// The total size need not be a power of two (the paper's mixed-
	// workload cache is 6 MB = 3 clusters x 2 MB); only the molecule
	// and line geometry index with masks.
	if c.TotalSize == 0 {
		return fmt.Errorf("molecular: total size must be positive")
	}
	if err := addr.CheckPow2("molecule size", c.MoleculeSize); err != nil {
		return err
	}
	if err := addr.CheckPow2("line size", c.LineSize); err != nil {
		return err
	}
	if c.LineFactor < 1 || !addr.IsPow2(uint64(c.LineFactor)) {
		return fmt.Errorf("molecular: line factor must be a power of two, got %d", c.LineFactor)
	}
	linesPerMol := c.MoleculeSize / c.LineSize
	if linesPerMol < uint64(c.LineFactor) || linesPerMol == 0 {
		return fmt.Errorf("molecular: molecule of %d lines cannot host line factor %d",
			linesPerMol, c.LineFactor)
	}
	total := c.TotalSize / c.MoleculeSize
	tiles := uint64(c.Clusters * c.TilesPerCluster)
	if tiles == 0 || total == 0 || total%tiles != 0 {
		return fmt.Errorf("molecular: %d molecules do not divide into %d tiles", total, tiles)
	}
	perTile := total / tiles
	if perTile < 2 {
		return fmt.Errorf("molecular: only %d molecules per tile; need >= 2", perTile)
	}
	if c.InitialMolecules < 0 || uint64(c.InitialMolecules) > perTile {
		return fmt.Errorf("molecular: initial allocation %d exceeds tile capacity %d",
			c.InitialMolecules, perTile)
	}
	switch c.Policy {
	case RandomReplacement, RandyReplacement, LRUDirect:
	default:
		return fmt.Errorf("molecular: unknown replacement policy %q", c.Policy)
	}
	return nil
}

// TileSize returns the per-tile capacity in bytes.
func (c Config) TileSize() uint64 {
	return c.TotalSize / uint64(c.Clusters*c.TilesPerCluster)
}

// MoleculesPerTile returns the tile's molecule count.
func (c Config) MoleculesPerTile() int {
	return int(c.TileSize() / c.MoleculeSize)
}

// Name renders the configuration the way the paper's tables do.
func (c Config) Name() string {
	return fmt.Sprintf("%s Molecular (%s)", addr.Bytes(c.TotalSize), c.Policy)
}

// Cache is a molecular cache: clusters of tiles of molecules, serving
// per-application regions. It implements engine.Cache.
type Cache struct {
	cfg      Config
	clusters []*Cluster
	//molvet:transient lookup index rebuilt from the restored regionList by RestoreCache
	regions map[uint16]*Region
	// regionList mirrors regions sorted by ASID, so the coherence paths
	// (Contains/Invalidate) and the index gauges iterate deterministically
	// without rebuilding a slice per call.
	regionList []*Region
	// sharedRegion caches the SharedASID region (nil until created);
	// the lookup paths consult it on every access and every tile probe.
	//molvet:transient memo re-derived from the restored region set
	sharedRegion *Region
	// molsByID indexes every molecule by its global ID (fault targeting
	// and invariant capture).
	molsByID []*Molecule

	// refProbe routes lookups through the original linear probe scan
	// instead of the block index — the differential oracle the fast path
	// is locked against (UseReferenceProbe).
	//molvet:transient debug routing flag, not run state; set by UseReferenceProbe
	refProbe bool

	//molvet:transient derived from Config geometry at construction
	linesPerMol uint64
	// lineShift is log2(LineSize) — the config validator guarantees a
	// power of two, so the access path shifts instead of dividing.
	//molvet:transient derived from Config.LineSize at construction
	lineShift uint
	clock     uint64 // logical time for LRU-Direct
	nextHome  int    // round-robin auto-placement cursor

	ledger    stats.Ledger
	global    stats.Window
	probes    *stats.Histogram
	addresses uint64 // total references serviced (resize trigger input)

	// mesh, when attached, accounts hop latency/energy for every Ulmo
	// sweep of a remote tile (and the response on a remote hit).
	//molvet:transient live attachment re-wired on restore; its counters checkpoint via noc.Stats
	mesh         *noc.Mesh
	remoteCycles uint64

	// tracer, reg and ins are the telemetry attachments (all nil by
	// default: the access path pays two pointer checks when disabled).
	//molvet:transient telemetry attachment re-established after restore
	tracer *telemetry.Tracer
	//molvet:transient telemetry attachment; registry state checkpoints via telemetry.Snapshot
	reg *telemetry.Registry
	//molvet:transient derived metric cells re-created when the registry is re-attached
	ins *instruments

	// spans, when attached, traces a deterministic 1-in-N sample of the
	// access pipeline (AttachSpans).
	//molvet:transient telemetry attachment re-established after restore
	spans *telemetry.SpanTracer

	// lane is the serial execution stream: its destination pointers alias
	// the cache's own accumulators, so the pipeline body (which only ever
	// talks to a lane) writes serial accesses straight through. Shard
	// lanes (lane.go) point the same fields at lane-local deltas instead.
	//molvet:transient alias block rebuilt by initSerialLane from the restored accumulators
	lane accessLane

	// faults, when attached, schedules hard failures, corruptions and
	// NoC delays against the access count; deg counts what was absorbed.
	//molvet:transient live attachment re-wired on restore; its cursors checkpoint via faults.CursorState
	faults *faults.Injector
	deg    DegradationStats

	src *rng.Source
}

var _ engine.Cache = (*Cache)(nil)

// New builds a molecular cache.
func New(cfg Config) (*Cache, error) {
	cfg = cfg.withDefaults()
	if cfg.InitialMolecules == 0 {
		cfg.InitialMolecules = cfg.MoleculesPerTile() / 2
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:         cfg,
		regions:     make(map[uint16]*Region),
		linesPerMol: cfg.MoleculeSize / cfg.LineSize,
		lineShift:   uint(bits.TrailingZeros64(cfg.LineSize)),
		probes:      stats.NewHistogram(cfg.MoleculesPerTile()*cfg.TilesPerCluster + 1),
		src:         rng.New(cfg.Seed ^ 0x5eed),
	}
	c.initSerialLane()
	molID := 0
	for ci := 0; ci < cfg.Clusters; ci++ {
		cl := &Cluster{id: ci}
		for ti := 0; ti < cfg.TilesPerCluster; ti++ {
			t := &Tile{id: ci*cfg.TilesPerCluster + ti, cluster: cl}
			for mi := 0; mi < cfg.MoleculesPerTile(); mi++ {
				m := &Molecule{
					id:    molID,
					tile:  t,
					lines: make([]molLine, c.linesPerMol),
					row:   -1,
				}
				molID++
				t.molecules = append(t.molecules, m)
				t.free = append(t.free, m)
				c.molsByID = append(c.molsByID, m)
			}
			cl.tiles = append(cl.tiles, t)
		}
		c.clusters = append(c.clusters, cl)
	}
	return c, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements engine.Cache.
func (c *Cache) Name() string { return c.cfg.Name() }

// Config returns the (defaulted) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Clusters returns the cache's tile clusters.
func (c *Cache) Clusters() []*Cluster { return c.clusters }

// Ledger exposes per-ASID hit/miss counts.
func (c *Cache) Ledger() *stats.Ledger { return &c.ledger }

// GlobalWindow exposes the cache-wide resize window.
func (c *Cache) GlobalWindow() *stats.Window { return &c.global }

// ProbeHistogram exposes the per-access molecule-probe distribution, the
// input to the average-power calculation (Table 4's mixed-workload
// column).
func (c *Cache) ProbeHistogram() *stats.Histogram { return c.probes }

// Addresses returns the total references serviced (the resize-period
// trigger counts in these units).
func (c *Cache) Addresses() uint64 { return c.addresses }

// RegionOptions customizes CreateRegion.
type RegionOptions struct {
	// HomeCluster and HomeTile select placement; -1 means round-robin.
	HomeCluster, HomeTile int
	// InitialMolecules overrides the config default when > 0.
	InitialMolecules int
	// LineFactor overrides the config default when > 0. Fixed for the
	// region's lifetime, per the paper.
	LineFactor int
}

// CreateRegion creates and sizes the partition for asid. The paper's
// "Ground Zero": the initial allocation (default: half the home tile) is
// drawn from the home tile's free pool, falling back to cluster siblings.
func (c *Cache) CreateRegion(asid uint16, opts RegionOptions) (*Region, error) {
	if _, ok := c.regions[asid]; ok {
		return nil, fmt.Errorf("molecular: region for ASID %d already exists", asid)
	}
	ci := opts.HomeCluster
	ti := opts.HomeTile
	if ci < 0 || ti < 0 {
		ci = c.nextHome % len(c.clusters)
		ti = (c.nextHome / len(c.clusters)) % c.cfg.TilesPerCluster
		c.nextHome++
	}
	if ci >= len(c.clusters) || ti >= c.cfg.TilesPerCluster {
		return nil, fmt.Errorf("molecular: placement (cluster %d, tile %d) out of range", ci, ti)
	}
	initial := c.cfg.InitialMolecules
	if opts.InitialMolecules > 0 {
		initial = opts.InitialMolecules
	}
	lf := c.cfg.LineFactor
	if opts.LineFactor > 0 {
		lf = opts.LineFactor
	}
	if !addr.IsPow2(uint64(lf)) || uint64(lf) > c.linesPerMol {
		return nil, fmt.Errorf("molecular: bad line factor %d", lf)
	}
	home := c.clusters[ci].tiles[ti]
	r := &Region{
		asid:       asid,
		home:       home,
		policy:     c.cfg.Policy,
		lineSize:   c.cfg.LineSize,
		lineFactor: lf,
		molSize:    c.cfg.MoleculeSize,
		rows:       make([][]*Molecule, 0, maxRows),
		rowMiss:    make([]uint64, 0, maxRows),
		byTile:     make([][]*Molecule, c.cfg.Clusters*c.cfg.TilesPerCluster),
		src:        rng.New(c.cfg.Seed ^ uint64(asid)<<20 ^ 0xbeef),
	}
	r.appCell = c.ledger.AppRef(asid)
	c.regions[asid] = r
	if asid == SharedASID {
		c.sharedRegion = r
	}
	c.regionList = append(c.regionList, r)
	sort.Slice(c.regionList, func(i, j int) bool {
		return c.regionList[i].asid < c.regionList[j].asid
	})
	c.growSpread(r, initial)
	if c.ins != nil {
		c.ins.regionMakes.Inc()
	}
	c.registerRegionGauges(r)
	if c.tracer != nil {
		c.tracer.Region(telemetry.KindRegionCreate, c.addresses, asid, r.count, r.count)
	}
	return r, nil
}

// growSpread performs the initial allocation, spreading molecules
// round-robin over up to four rows so a Randy region starts with a
// non-trivial replacement view (Random regions stay single-row).
func (c *Cache) growSpread(r *Region, n int) {
	rows := 1
	if r.policy != RandomReplacement {
		rows = 4
		if n < rows {
			rows = n
		}
		if rows == 0 {
			rows = 1
		}
	}
	cl := r.home.cluster
	for i := 0; i < n; i++ {
		m := cl.takeFreePreferring(r.home)
		if m == nil {
			return
		}
		rowIdx := i % rows
		if rowIdx > len(r.rows) {
			rowIdx = len(r.rows)
		}
		r.attach(m, rowIdx)
	}
}

// Region returns the partition for asid, or nil.
func (c *Cache) Region(asid uint16) *Region { return c.regions[asid] }

// Regions returns all partitions sorted by ASID.
func (c *Cache) Regions() []*Region {
	out := make([]*Region, len(c.regionList))
	copy(out, c.regionList)
	return out
}

// UseReferenceProbe switches lookups between the O(1) block index (the
// default) and the original linear probe scan. Both produce identical
// results, ledgers and telemetry — the linear model is kept as the
// differential oracle the fast path is tested against, and as the
// baseline the access benchmarks compare with.
func (c *Cache) UseReferenceProbe(on bool) { c.refProbe = on }

// ReferenceProbe reports whether the linear oracle path is active.
func (c *Cache) ReferenceProbe() bool { return c.refProbe }

// Grow allocates up to n molecules to region r from its home cluster,
// placing each per the policy's growth rule. It returns how many were
// actually obtained (the cluster may be exhausted — in that phase no
// resizing takes place, as the paper notes).
func (c *Cache) Grow(r *Region, n int) (got int, err error) {
	if n < 0 {
		return 0, fmt.Errorf("molecular: Grow with negative count %d", n)
	}
	got = c.growMolecules(r, n)
	if got > 0 {
		if c.ins != nil {
			c.ins.grows.Add(uint64(got))
		}
		if c.tracer != nil {
			c.tracer.Region(telemetry.KindRegionGrow, c.addresses, r.asid, got, r.count)
		}
	}
	return got, nil
}

// growMolecules is Grow's allocation loop without the telemetry: the
// mid-access re-grow path (a region whose every molecule was retired)
// shares it but must route its grow event through the lane so shard
// lanes buffer it for the epoch merge.
func (c *Cache) growMolecules(r *Region, n int) (got int) {
	cl := r.home.cluster
	for i := 0; i < n; i++ {
		m := cl.takeFreePreferring(r.home)
		if m == nil {
			break
		}
		// A freshly opened row must be seeded to a useful width before
		// anything else grows: a thin row owns a full 1/rowMax slice of
		// the address space and thrashes until it is widened.
		row := r.growthRow()
		if last := len(r.rows) - 1; last >= 1 {
			avg := r.count / len(r.rows)
			if len(r.rows[last]) < avg/2 {
				row = last
			}
		}
		r.attach(m, row)
		got++
	}
	return got
}

// Shrink withdraws up to n molecules (never below one), flushing each and
// returning it to its tile's free pool. It reports the number withdrawn
// and the dirty-line writebacks incurred.
func (c *Cache) Shrink(r *Region, n int) (withdrawn, writebacks int) {
	for i := 0; i < n; i++ {
		m := r.withdrawCandidate()
		if m == nil {
			break
		}
		writebacks += r.detach(m)
		m.tile.release(m)
		withdrawn++
	}
	if withdrawn > 0 {
		if c.ins != nil {
			c.ins.shrinks.Add(uint64(withdrawn))
			c.ins.writebacks.Add(uint64(writebacks))
		}
		if c.tracer != nil {
			c.tracer.Region(telemetry.KindRegionShrink, c.addresses, r.asid, -withdrawn, r.count)
		}
	}
	return withdrawn, writebacks
}

// Rebalance moves one molecule from the region's coldest row to its
// hottest row (by per-molecule replacement pressure) when the imbalance
// exceeds 4x and the cold row can spare a molecule. It lets a Randy
// region adapt its per-row associativity even when the cluster's free
// pool is exhausted and Grow cannot deliver. Returns whether a molecule
// moved; the moved molecule is flushed (writebacks counted by the move).
func (c *Cache) Rebalance(r *Region) bool {
	if r.policy == RandomReplacement || len(r.rows) < 2 {
		return false
	}
	hot, cold := -1, -1
	var hotScore, coldScore float64
	for i, row := range r.rows {
		score := float64(r.rowMiss[i]) / float64(len(row))
		if hot < 0 || score > hotScore {
			hot, hotScore = i, score
		}
		if len(row) > 2 && (cold < 0 || score < coldScore) {
			cold, coldScore = i, score
		}
	}
	// Demand a decisive imbalance: each move flushes a full molecule,
	// so marginal moves cost more refetches than they save.
	if hot < 0 || cold < 0 || hot == cold || hotScore < 4*coldScore+2 {
		return false
	}
	// Coldest molecule of the cold row moves to the hot row.
	row := r.rows[cold]
	m := row[0]
	for _, x := range row {
		if x.missCount < m.missCount {
			m = x
		}
	}
	// The cold row keeps >= 2 molecules, so no row empties and row
	// indices stay stable across the detach. The released molecule is
	// the tile free list's top, so it is re-acquired immediately.
	r.detach(m)
	m.tile.release(m)
	m2 := r.home.cluster.takeFreePreferring(r.home)
	if m2 == nil {
		return false
	}
	r.attach(m2, hot)
	if c.ins != nil {
		c.ins.rebalances.Inc()
	}
	if c.tracer != nil {
		c.tracer.Region(telemetry.KindRegionRebalance, c.addresses, r.asid, 0, r.count)
	}
	return true
}

// Access implements engine.Cache. Lookup is hierarchical: the molecules
// of the requestor's region on its home tile are probed first; on a tile
// miss the cluster's Ulmo probes the sibling tiles that contribute
// molecules to the region. A region is created on first touch
// (round-robin placement) if the application was never admitted
// explicitly.
//
// The default lookup consults the per-region block index (O(1) in the
// partition size) and computes the modelled TagProbes count from tile
// geometry; UseReferenceProbe(true) switches to the original linear
// molecule scan. Both paths produce identical results.
func (c *Cache) Access(ref trace.Ref) engine.Result {
	// Span sampling is decided purely by the access count, so a traced
	// run takes exactly the same decisions as an untraced one; the
	// unsampled path costs one nil check (plus one modulo when a tracer
	// is attached) and allocates nothing.
	if st := c.spans; st != nil && st.StartAccess(c.addresses+1, ref.ASID) {
		st.Begin("molcache_access")
		res := c.access(ref)
		st.EndValue(int64(res.TagProbes))
		st.FinishAccess()
		return res
	}
	return c.access(ref)
}

// AttachSpans binds a span tracer to the access pipeline (access ->
// region lookup -> tag probe -> NoC transit -> fill). Nil detaches.
func (c *Cache) AttachSpans(st *telemetry.SpanTracer) {
	c.spans = st
	c.lane.spans = st
}

// Spans returns the attached span tracer (nil when span tracing is off).
func (c *Cache) Spans() *telemetry.SpanTracer { return c.spans }

// access is the span-instrumented serial body behind Access: it
// advances the cache's logical clocks, delivers scheduled faults, and
// runs the shared pipeline on the serial lane.
func (c *Cache) access(ref trace.Ref) engine.Result {
	c.clock++
	c.addresses++
	ln := &c.lane
	ln.seq = c.addresses
	ln.clock = c.clock
	ln.remote = 0
	if c.faults != nil {
		c.applyScheduledFaults()
	}
	return c.pipeline(ln, ref)
}

// pipeline is the access pipeline body shared by the serial and sharded
// engines: region lookup, tag probing, and the fill on a miss. All
// mutable per-stream state goes through the lane — the serial lane
// writes straight into the cache's accumulators; shard lanes buffer
// deltas for the epoch merge (lane.go). Region auto-admission is a
// coordinator-only mutation, so a shard lane handed an unadmitted ASID
// panics: that is an epoch-planner bug, never a data condition.
func (c *Cache) pipeline(ln *accessLane, ref trace.Ref) engine.Result {
	ln.spans.Begin("molcache_access_region_lookup")
	r := ln.lastRegion
	if r == nil || r.asid != ref.ASID {
		r = c.regions[ref.ASID]
		if r == nil {
			if ln.shard {
				// The epoch planner ends an epoch before any first-touch
				// access so auto-admit runs serially at the coordinator;
				// reaching this branch on a shard lane is a planner bug.
				panic(fmt.Sprintf("molecular: shard lane saw unadmitted ASID %d", ref.ASID))
			}
			var err error
			r, err = c.CreateRegion(ref.ASID, RegionOptions{HomeCluster: -1, HomeTile: -1})
			if err != nil {
				// Auto-admit can fail once degradation has exhausted the
				// placement space; serve the access uncached instead of dying.
				ln.spans.End()
				return c.bypassMiss(ln, nil, ref, engine.Result{})
			}
		}
		ln.lastRegion = r
	}
	ln.spans.End()
	block := ref.Addr >> c.lineShift
	write := kindIsWrite(ref.Kind)

	var res engine.Result
	var unreachable bool
	if c.refProbe {
		unreachable = c.referenceLookup(ln, r, block, write, &res)
	} else {
		unreachable = c.fastLookup(ln, r, block, write, &res)
	}
	if res.Hit {
		c.finish(ln, r, ref, &res)
		return res
	}

	// Miss: fetch lineFactor lines into the policy's victim molecule.
	if r.count == 0 {
		// Every molecule was retired out from under the region; try to
		// re-grow from healthy spares now rather than waiting for the
		// next resize epoch, and serve uncached if none exist.
		if got := c.growMolecules(r, 1); got == 0 {
			return c.bypassMiss(ln, r, ref, res)
		} else {
			if c.ins != nil {
				c.ins.grows.Add(uint64(got))
			}
			c.emitLane(ln, telemetry.Event{
				At: ln.seq, Kind: telemetry.KindRegionGrow, ASID: r.asid,
				Value: int64(got), Aux: int64(r.count),
			})
		}
	}
	if unreachable {
		// A contributing tile never answered, so the line may still be
		// resident there; filling now could duplicate it. Serve uncached.
		return c.bypassMiss(ln, r, ref, res)
	}
	ln.spans.Begin("molcache_access_fill")
	victim := r.victim(ref.Addr, block)
	if r.lineFactor > 1 {
		c.invalidateCompanions(r, victim, block)
	}
	evicted, wb := r.fillVictim(victim, block, write, ln.clock)
	r.rowMiss[victim.row]++
	res.LinesFetched = r.lineFactor
	res.LinesEvicted = evicted
	res.Writebacks = wb
	ln.spans.EndValue(int64(wb))
	c.finish(ln, r, ref, &res)
	return res
}

// fastLookup is the block-index access path: one (or two, with a shared
// region present) map lookups decide hit/miss and locate the holding
// molecule, while TagProbes — the modelled count of molecules a real
// Molecular cache would enable in parallel — is computed from the
// region's per-tile population, tile by tile, exactly as the linear
// probe model accumulates it. The Ulmo sweep over contributing sibling
// tiles still happens per tile (mesh latency, NoC fault windows and
// retry accounting are per-traversal effects), but no molecule is
// scanned.
func (c *Cache) fastLookup(ln *accessLane, r *Region, block uint64, write bool, res *engine.Result) (unreachable bool) {
	shared := c.sharedRegion
	sharedHere := shared != nil && shared.home.cluster == r.home.cluster
	hitM := r.index.get(block)
	if hitM == nil && sharedHere && shared != r {
		hitM = shared.index.get(block)
	}
	if c.ins != nil {
		c.ins.indexLookups.Inc()
	}

	// Stage 1: home tile (plus any shared molecules resident there).
	ln.spans.Begin("molcache_access_tag_probe")
	res.TagProbes = c.tileProbes(r, shared, r.home)
	ln.spans.EndValue(int64(res.TagProbes))
	if hitM != nil && hitM.tile == r.home {
		hitM.recordHit(block, write, ln.clock)
		res.Hit = true
		res.DataReads = 1
		if c.ins != nil {
			c.ins.indexHits.Inc()
		}
		return false
	}

	// Stage 2: Ulmo sweep of the contributing sibling tiles, in tile
	// order, stopping at the holder's tile.
	for _, t := range r.home.cluster.tiles {
		if t == r.home {
			continue
		}
		if len(r.byTile[t.id]) == 0 && (shared == nil || len(shared.byTile[t.id]) == 0) {
			continue
		}
		if !c.ulmoTraverse(ln, r.home.id, t.id) {
			// The delay fault outlasted the Ulmo's retry budget: this
			// tile's molecules are unreachable for the current access —
			// even when the index knows the line is resident there.
			unreachable = true
			continue
		}
		ln.spans.Begin("molcache_access_tag_probe")
		p := c.tileProbes(r, shared, t)
		ln.spans.EndValue(int64(p))
		res.TagProbes += p
		if hitM != nil && hitM.tile == t {
			hitM.recordHit(block, write, ln.clock)
			res.Hit = true
			res.RemoteTileHit = true
			res.DataReads = 1
			// The data line rides the mesh back to the home tile.
			c.laneTraverse(ln, t.id, r.home.id)
			if c.ins != nil {
				c.ins.indexHits.Inc()
			}
			return false
		}
	}
	return unreachable
}

// referenceLookup is the original linear probe model, kept as the
// differential oracle: every eligible molecule on each searched tile is
// scanned until the line is found. Results, ledgers and molecule state
// are identical to fastLookup's; only the discovery mechanics differ.
func (c *Cache) referenceLookup(ln *accessLane, r *Region, block uint64, write bool, res *engine.Result) (unreachable bool) {
	// Stage 1: home tile (plus any shared molecules resident there).
	ln.spans.Begin("molcache_access_tag_probe")
	if hit, probes := c.probeTile(ln, r, r.home, block, write); hit {
		ln.spans.EndValue(int64(probes))
		res.Hit = true
		res.TagProbes = probes
		res.DataReads = 1
		return false
	} else {
		ln.spans.EndValue(int64(probes))
		res.TagProbes += probes
	}

	// Stage 2: Ulmo searches only the sibling tiles whose molecules
	// contribute to the application's region (or hold shared-bit
	// molecules, which serve every ASID).
	shared := c.sharedRegion
	for _, t := range r.home.cluster.tiles {
		if t == r.home {
			continue
		}
		if len(r.byTile[t.id]) == 0 && (shared == nil || len(shared.byTile[t.id]) == 0) {
			continue
		}
		if !c.ulmoTraverse(ln, r.home.id, t.id) {
			unreachable = true
			continue
		}
		ln.spans.Begin("molcache_access_tag_probe")
		if hit, probes := c.probeTile(ln, r, t, block, write); hit {
			ln.spans.EndValue(int64(probes))
			res.Hit = true
			res.RemoteTileHit = true
			res.TagProbes += probes
			res.DataReads = 1
			c.laneTraverse(ln, t.id, r.home.id)
			return false
		} else {
			ln.spans.EndValue(int64(probes))
			res.TagProbes += probes
		}
	}
	return unreachable
}

// tileProbes returns the modelled probe count for one tile: every
// molecule the region owns there plus every shared-bit molecule
// answering on that tile. All of them are enabled in parallel by the
// ASID comparison stage, so the energy-relevant count is the full
// eligible population of every tile searched, independent of where (or
// whether) the hit lands.
func (c *Cache) tileProbes(r, shared *Region, t *Tile) int {
	n := len(r.byTile[t.id])
	if shared != nil && shared.home.cluster == t.cluster {
		n += len(shared.byTile[t.id])
	}
	return n
}

// probeTile is the reference path's per-tile scan: the region's
// molecules on tile t (and t's shared-bit molecules) are searched
// linearly, returning hit status and the number of molecules activated.
func (c *Cache) probeTile(ln *accessLane, r *Region, t *Tile, block uint64, write bool) (bool, int) {
	own := r.byTile[t.id]
	probes := len(own)
	hit := false
	for _, m := range own {
		if m.contains(block) {
			m.recordHit(block, write, ln.clock)
			hit = true
			break
		}
	}
	// Shared molecules respond to all ASIDs on the tile.
	if shared := c.sharedRegion; shared != nil && shared.home.cluster == t.cluster {
		sh := shared.byTile[t.id]
		probes += len(sh)
		if !hit {
			for _, m := range sh {
				if m.contains(block) {
					m.recordHit(block, write, ln.clock)
					hit = true
					break
				}
			}
		}
	}
	return hit, probes
}

// invalidateCompanions drops the victim's group companions from any
// sibling molecule of the region before a lineFactor > 1 fill:
// duplicates would go silently stale. The dropped copies' dirty state
// is not charged to the access — the fill's own writeback count is the
// modelled quantity (matching the original accounting the goldens pin).
func (c *Cache) invalidateCompanions(r *Region, victim *Molecule, block uint64) {
	group := block &^ uint64(r.lineFactor-1)
	for i := 0; i < r.lineFactor; i++ {
		b := group + uint64(i)
		if b == block {
			continue
		}
		if c.refProbe {
			// Oracle path: discover holders by the original row-major
			// linear scan.
			for _, row := range r.rows {
				for _, m := range row {
					if m == victim {
						continue
					}
					if present, _ := m.invalidate(b); present {
						r.indexRemove(b, m)
					}
				}
			}
			continue
		}
		if m := r.index.get(b); m != nil && m != victim {
			m.invalidate(b)
			r.indexRemove(b, m)
		}
	}
}

// Modelled service-time components, aligned with the cmp substrate's
// default latencies (cmp.Latency: L2 hit = 12 cycles, memory = 200).
const (
	serviceHitCycles  = 12
	serviceMissCycles = 200
)

// finish records ledgers, windows and probe accounting for one access,
// and — when telemetry is attached — the counters and the access event.
// r may be nil for an access bypassed before any region existed (the
// auto-admit failure path); cache-wide accounting still happens.
func (c *Cache) finish(ln *accessLane, r *Region, ref trace.Ref, res *engine.Result) {
	ln.global.Record(res.Hit)
	if r != nil {
		// r.appCell is r's cell in c.ledger, cached at region creation —
		// this is c.ledger.Record(ref.ASID, …) without the map lookup.
		// The cache-wide total goes through the lane so shard lanes
		// accumulate a delta instead of racing on c.ledger.Total.
		ln.ledgerTotal.Record(res.Hit)
		r.appCell.Record(res.Hit)
		r.window.Record(res.Hit)
		r.ledger.Record(res.Hit)
		r.occupancySum += uint64(r.count)
	} else {
		// Auto-admit failure: serial-only (shard lanes never run an
		// access whose region is missing), so the plain ledger path —
		// which bumps the same Total the serial lane aliases — is safe.
		//molvet:ignore lane-confinement auto-admit failures are boundary-serial; the epoch planner cuts before any access whose region is missing
		c.ledger.Record(ref.ASID, res.Hit)
	}
	ln.probes.Observe(uint64(res.TagProbes))
	if c.ins != nil {
		// Modelled service time: the cmp substrate's default L2-hit
		// latency as the base, the miss's memory latency when the line
		// was fetched, plus whatever NoC transit this access incurred.
		svc := float64(serviceHitCycles + ln.remote)
		if !res.Hit {
			svc += serviceMissCycles
		}
		c.ins.serviceHist.Observe(svc)
		c.ins.probeHist.Observe(float64(res.TagProbes))
		if r != nil {
			r.svcHist.Observe(svc)
		}
		if res.Hit {
			c.ins.hits.Inc()
		} else {
			c.ins.misses.Inc()
		}
		if res.RemoteTileHit {
			c.ins.remoteHits.Inc()
		}
		c.ins.tagProbes.Add(uint64(res.TagProbes))
		c.ins.writebacks.Add(uint64(res.Writebacks))
		c.ins.linesFetched.Add(uint64(res.LinesFetched))
	}
	// Fold this access's NoC transit into the lane's destination (the
	// cache's RemoteCycles for the serial lane, an epoch delta for shard
	// lanes) now that the service-time calculation has consumed it.
	*ln.sinkRemote += ln.remote
	c.emitLane(ln, telemetry.Event{
		At: ln.seq, Kind: telemetry.KindAccess, ASID: ref.ASID, Addr: ref.Addr,
		Hit: res.Hit, Remote: res.RemoteTileHit,
		Value: int64(res.TagProbes), Aux: int64(res.Writebacks),
	})
}

// Contains reports whether the line holding a is resident in any molecule
// (coherence/test probe; no state change). The fast path consults each
// region's block index; the reference path repeats the original
// exhaustive molecule scan.
func (c *Cache) Contains(a uint64) bool {
	block := a / c.cfg.LineSize
	if c.refProbe {
		for _, cl := range c.clusters {
			for _, t := range cl.tiles {
				for _, m := range t.molecules {
					if m.owned || m.shared {
						if m.contains(block) {
							return true
						}
					}
				}
			}
		}
		return false
	}
	for _, r := range c.regionList {
		if r.index.get(block) != nil {
			return true
		}
	}
	return false
}

// Invalidate drops the line holding a wherever it is resident
// (inter-cluster coherence back-invalidation via the Ulmos). Within one
// region the holder is unique, so the fast path drops at most one line
// per region via the block index; the reference path sweeps every
// molecule, keeping the index in step.
func (c *Cache) Invalidate(a uint64) (present, dirty bool) {
	block := a / c.cfg.LineSize
	if c.refProbe {
		for _, cl := range c.clusters {
			for _, t := range cl.tiles {
				for _, m := range t.molecules {
					if !m.owned && !m.shared {
						continue
					}
					p, d := m.invalidate(block)
					if p {
						if r := c.regions[m.asid]; r != nil {
							r.indexRemove(block, m)
						}
					}
					present = present || p
					dirty = dirty || d
				}
			}
		}
		return present, dirty
	}
	for _, r := range c.regionList {
		if m := r.index.get(block); m != nil {
			p, d := m.invalidate(block)
			if p {
				r.indexRemove(block, m)
			}
			present = present || p
			dirty = dirty || d
		}
	}
	return present, dirty
}

// FreeInCluster returns the number of unassigned molecules in the
// region's home cluster — the pool its grows and shrinks trade against.
func (c *Cache) FreeInCluster(r *Region) int {
	return r.home.cluster.FreeCount()
}

// Rehome moves a region's home tile within its cluster — the paper's
// non-static processor-to-tile assignment on a context switch. The
// region's molecules stay where they are (hierarchical lookup keeps them
// reachable); only the first-searched tile and the preferred allocation
// source change.
func (c *Cache) Rehome(asid uint16, tile int) error {
	r := c.regions[asid]
	if r == nil {
		return fmt.Errorf("molecular: no region for ASID %d", asid)
	}
	cl := r.home.cluster
	if tile < 0 || tile >= len(cl.tiles) {
		return fmt.Errorf("molecular: tile %d outside cluster %d (has %d tiles)",
			tile, cl.id, len(cl.tiles))
	}
	r.home = cl.tiles[tile]
	if c.tracer != nil {
		c.tracer.Region(telemetry.KindRegionRehome, c.addresses, asid, tile, r.count)
	}
	return nil
}

// AttachInterconnect routes Ulmo tile sweeps over the given mesh; the
// mesh must have a node for every tile. Remote-tile searches then
// accumulate hop latency (RemoteCycles) and wire energy (the mesh's own
// counters).
func (c *Cache) AttachInterconnect(m *noc.Mesh) error {
	tiles := c.cfg.Clusters * c.cfg.TilesPerCluster
	if m.Nodes() < tiles {
		return fmt.Errorf("molecular: mesh of %d nodes cannot host %d tiles", m.Nodes(), tiles)
	}
	c.mesh = m
	// A registry attached earlier covers the mesh too (and vice versa in
	// AttachTelemetry): both orders leave the mesh exporting.
	if c.reg != nil {
		m.AttachTelemetry(c.reg)
	}
	return nil
}

// Interconnect returns the attached mesh (nil when none).
func (c *Cache) Interconnect() *noc.Mesh { return c.mesh }

// RemoteCycles returns the accumulated Ulmo hop latency.
func (c *Cache) RemoteCycles() uint64 { return c.remoteCycles }

// FreeMolecules returns the number of unassigned molecules cache-wide.
func (c *Cache) FreeMolecules() int {
	n := 0
	for _, cl := range c.clusters {
		n += cl.FreeCount()
	}
	return n
}

// TotalMolecules returns the cache's molecule count.
func (c *Cache) TotalMolecules() int {
	return int(c.cfg.TotalSize / c.cfg.MoleculeSize)
}

// AverageProbes returns the mean molecules probed per access, the
// selective-enablement quantity the power model consumes.
func (c *Cache) AverageProbes() float64 { return c.probes.Mean() }

// CheckInvariants verifies the structural invariants (every molecule is
// free xor owned by exactly one region; row indices consistent; counts
// add up). Tests and the resize controller's debug mode call it.
func (c *Cache) CheckInvariants() error {
	owned := make(map[int]uint16)
	free := make(map[int]bool)
	failed := 0
	for _, cl := range c.clusters {
		for _, t := range cl.tiles {
			for _, m := range t.free {
				if m.owned {
					return fmt.Errorf("molecule %d on free list but owned", m.id)
				}
				if m.failed {
					return fmt.Errorf("molecule %d on free list but retired", m.id)
				}
				free[m.id] = true
			}
			for _, m := range t.molecules {
				if !m.failed {
					continue
				}
				failed++
				if m.owned {
					return fmt.Errorf("molecule %d retired but still owned", m.id)
				}
				if n := m.validLines(); n != 0 {
					return fmt.Errorf("molecule %d retired but holds %d lines", m.id, n)
				}
			}
		}
	}
	total := 0
	// Regions() iterates in ASID order, so when several regions are
	// corrupt the checker reports the same one every run.
	for _, r := range c.Regions() {
		asid := r.asid
		if r.count != len(r.molecules()) {
			return fmt.Errorf("region %d count %d != molecules %d", asid, r.count, len(r.molecules()))
		}
		for i, row := range r.rows {
			if len(row) == 0 {
				return fmt.Errorf("region %d row %d empty", asid, i)
			}
			for _, m := range row {
				if m.row != i {
					return fmt.Errorf("molecule %d row field %d != actual row %d", m.id, m.row, i)
				}
				if !m.owned || m.asid != asid {
					return fmt.Errorf("molecule %d in region %d but owned=%v asid=%d",
						m.id, asid, m.owned, m.asid)
				}
				if free[m.id] {
					return fmt.Errorf("molecule %d both free and owned", m.id)
				}
				if prev, dup := owned[m.id]; dup {
					return fmt.Errorf("molecule %d owned by both %d and %d", m.id, prev, asid)
				}
				owned[m.id] = asid
			}
		}
		if err := r.checkIndex(); err != nil {
			return err
		}
		total += r.count
	}
	if total+len(free)+failed != c.TotalMolecules() {
		return fmt.Errorf("owned %d + free %d + retired %d != total %d",
			total, len(free), failed, c.TotalMolecules())
	}
	return nil
}

// Molecule returns the molecule with the given global ID, or nil.
func (c *Cache) Molecule(id int) *Molecule {
	if id < 0 || id >= len(c.molsByID) {
		return nil
	}
	return c.molsByID[id]
}
