package molecular

// Property-based tests of the fast-path block index (index.go). The
// differential oracle at the repo root locks whole-simulation behaviour
// to the linear probe model; these properties pin the index's
// maintenance contract directly, for ANY operation interleaving:
//
//   - Exactly-once: every resident line of every owned molecule is
//     indexed to exactly that molecule, and the index holds nothing
//     else — after arbitrary access/grow/shrink/rebalance/retire/
//     corrupt/invalidate/rehome sequences, in either lookup mode.
//   - No stale entries: a molecule leaving its region (withdrawal,
//     retirement, rebalance) takes every one of its index entries
//     with it.
//   - Mode agreement: Contains answers identically through the index
//     and through the exhaustive scan.

import (
	"testing"
	"testing/quick"

	"molcache/internal/addr"
	"molcache/internal/rng"
	"molcache/internal/trace"
)

// verifyIndexBijection rebuilds each region's residency by scanning the
// replacement view and demands the index be exactly that mapping.
func verifyIndexBijection(t *testing.T, c *Cache) bool {
	t.Helper()
	for _, r := range c.Regions() {
		resident := make(map[uint64]*Molecule)
		for _, row := range r.rows {
			for _, m := range row {
				for i := range m.lines {
					if !m.lines[i].valid {
						continue
					}
					if prev, dup := resident[m.lines[i].tag]; dup {
						t.Logf("region %d: block %#x resident in molecules %d and %d",
							r.asid, m.lines[i].tag, prev.id, m.id)
						return false
					}
					resident[m.lines[i].tag] = m
				}
			}
		}
		if len(resident) != r.index.size() {
			t.Logf("region %d: %d lines resident, index holds %d", r.asid, len(resident), r.index.size())
			return false
		}
		for b, m := range resident {
			if got := r.index.get(b); got != m {
				t.Logf("region %d: block %#x resident in %d, index names %v", r.asid, b, m.id, got)
				return false
			}
		}
	}
	return true
}

// TestPropertyIndexExactlyOnce: after any randomized operation sequence
// — including mid-run lookup-mode flips, so both paths' maintenance is
// exercised — the index is exactly the residency relation.
func TestPropertyIndexExactlyOnce(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		c := propCache(t, RandyReplacement, seed)
		src := rng.New(seed ^ 0x1d8)
		for _, op := range ops {
			r := c.Region(uint16(1 + int(op)%2))
			switch (op >> 1) % 8 {
			case 0, 1: // access bursts dominate, as in any real run
				for i := 0; i < 24; i++ {
					c.Access(trace.Ref{
						Addr: uint64(r.asid)<<36 | uint64(src.Intn(1<<18)),
						ASID: r.asid,
						Kind: trace.Kind(src.Intn(2)),
					})
				}
			case 2:
				if _, err := c.Grow(r, 1+int(op>>4)%3); err != nil {
					return false
				}
			case 3:
				c.Shrink(r, 1+int(op>>4)%3)
			case 4:
				c.Rebalance(r)
			case 5:
				// Retire an arbitrary not-yet-failed molecule.
				id := src.Intn(c.TotalMolecules())
				if m := c.Molecule(id); m != nil && !m.Failed() {
					if _, err := c.RetireMolecule(id); err != nil {
						t.Log(err)
						return false
					}
				}
			case 6:
				if _, _, err := c.CorruptLine(src.Intn(c.TotalMolecules()), src.Intn(int(c.linesPerMol))); err != nil {
					t.Log(err)
					return false
				}
			case 7:
				c.Invalidate(uint64(r.asid)<<36 | uint64(src.Intn(1<<18)))
				c.UseReferenceProbe(!c.ReferenceProbe())
			}
			if !verifyIndexBijection(t, c) {
				return false
			}
			if err := c.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIndexScanAgreement: Contains answers identically through
// the block index and through the exhaustive molecule scan, for any
// address against a warmed cache.
func TestPropertyIndexScanAgreement(t *testing.T) {
	c := propCache(t, LRUDirect, 2006)
	f := func(a uint64) bool {
		c.UseReferenceProbe(false)
		viaIndex := c.Contains(a)
		c.UseReferenceProbe(true)
		viaScan := c.Contains(a)
		c.UseReferenceProbe(false)
		return viaIndex == viaScan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestIndexDropsRetiredMolecule: retiring an owned molecule removes all
// of its entries; the survivors' entries are untouched.
func TestIndexDropsRetiredMolecule(t *testing.T) {
	c := propCache(t, RandyReplacement, 11)
	r := c.Region(1)
	var victim *Molecule
	for _, m := range r.molecules() {
		if m.validLines() > 0 {
			victim = m
			break
		}
	}
	if victim == nil {
		t.Fatal("warmup left region 1 with no resident lines")
	}
	blocks := victim.ValidBlocks()
	if _, err := c.RetireMolecule(victim.ID()); err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if r.index.get(b) == victim {
			t.Errorf("block %#x still indexed to retired molecule %d", b, victim.ID())
		}
	}
	r.index.each(func(b uint64, m *Molecule) {
		if m == victim {
			t.Errorf("retired molecule %d still indexed under block %#x", victim.ID(), b)
		}
	})
	if !verifyIndexBijection(t, c) {
		t.Error("index diverged from residency after retirement")
	}
}

// TestIndexDropsWithdrawnMolecules: a shrink's withdrawn molecules leave
// no entries behind, and the index still mirrors residency exactly.
func TestIndexDropsWithdrawnMolecules(t *testing.T) {
	c := propCache(t, RandyReplacement, 12)
	r := c.Region(2)
	before := r.MoleculeCount()
	n, _ := c.Shrink(r, 2)
	if n == 0 {
		t.Fatalf("shrink withdrew nothing from a %d-molecule region", before)
	}
	r.index.each(func(b uint64, m *Molecule) {
		if !m.owned || m.asid != r.asid {
			t.Errorf("block %#x indexed to molecule %d which left the region", b, m.id)
		}
	})
	if !verifyIndexBijection(t, c) {
		t.Error("index diverged from residency after shrink")
	}
}

// TestIndexSurvivesRebalance: a row rebalance (which flushes and
// re-rows a molecule) leaves the index exact.
func TestIndexSurvivesRebalance(t *testing.T) {
	c := MustNew(Config{
		TotalSize:    256 * addr.KB,
		MoleculeSize: 8 * addr.KB,
		Policy:       RandyReplacement,
		Seed:         13,
	})
	if _, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0}); err != nil {
		t.Fatal(err)
	}
	src := rng.New(77)
	r := c.Region(1)
	for i := 0; i < 4096; i++ {
		c.Access(trace.Ref{Addr: 1<<36 | uint64(src.Intn(1<<18)), ASID: 1, Kind: trace.Read})
	}
	if !c.Rebalance(r) {
		t.Skip("replacement view too even to rebalance")
	}
	if !verifyIndexBijection(t, c) {
		t.Error("index diverged from residency after rebalance")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
