package molecular

// Shard lanes: the molecular cache's concurrent execution streams.
//
// The paper's organization is tile-local — a region's molecules all live
// in its home cluster, Ulmo sweeps never leave the cluster, and the
// shared region only answers probes from its own cluster — so accesses
// whose regions are homed in different clusters touch disjoint mutable
// state. A ShardLane exploits that: it runs the ordinary access pipeline
// (cache.go) against a fixed subset of clusters, writing every
// cache-wide accumulator into lane-local deltas instead. At an epoch
// boundary MergeLanes folds the deltas back — sums for the commutative
// counters, an At-ordered merge for telemetry events and span batches —
// reproducing byte for byte the state a serial run of the same accesses
// would have left.
//
// This package stays goroutine-free (the molvet concurrency rule
// confines go statements and channels to internal/shard, which owns the
// workers and epoch planning); lanes are passive state machines that a
// caller may drive from any single goroutine at a time.

import (
	"molcache/internal/engine"
	"molcache/internal/noc"
	"molcache/internal/stats"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// accessLane carries the per-stream mutable state the access pipeline
// threads through itself. The serial lane's destination pointers alias
// the cache's own accumulators (initSerialLane), so serial accesses
// write straight through with no extra bookkeeping; shard lanes point
// the same fields at ShardLane-owned deltas.
type accessLane struct {
	// shard marks a concurrent lane: events buffer instead of emitting,
	// fault windows are looked up without injector mutation, and an
	// unadmitted ASID is a planner bug rather than an auto-admit.
	shard bool
	// seq is the cache-wide access count of the access in flight and
	// clock the logical replacement clock (they advance in lockstep;
	// clock keeps a constant skew from seq across checkpoint restores).
	seq   uint64
	clock uint64

	// lastRegion memoizes the region of the lane's most recent access:
	// traces are bursty per application and regions are never deleted,
	// so a single ASID comparison replaces the map lookup on nearly
	// every access.
	lastRegion *Region

	// remote accumulates the NoC cycles charged by the access in flight;
	// finish folds it into sinkRemote (the cache's RemoteCycles for the
	// serial lane, an epoch delta for shard lanes).
	remote     uint64
	sinkRemote *uint64

	// Destination accumulators (cache-owned for the serial lane,
	// ShardLane-owned deltas otherwise).
	ledgerTotal *stats.HitMiss
	global      *stats.Window
	probes      *stats.Histogram
	deg         *DegradationStats

	// nocStats, when non-nil, receives mesh traffic counters instead of
	// the mesh itself (TraverseInto); delayed counts NoC delay-window
	// lookups a shard lane observed.
	nocStats *noc.Stats
	delayed  uint64

	// events buffers telemetry events on shard lanes (emitLane).
	events []telemetry.Event

	// spans is the lane's span tracer: the master tracer for the serial
	// lane, a lane-local batch recorder for shard lanes.
	spans *telemetry.SpanTracer
}

// initSerialLane points the serial lane's destinations at the cache's
// own accumulators. Field addresses are stable for the cache's lifetime
// (snapshot restore mutates them in place), so this runs once in New.
func (c *Cache) initSerialLane() {
	c.lane = accessLane{
		sinkRemote:  &c.remoteCycles,
		ledgerTotal: &c.ledger.Total,
		global:      &c.global,
		probes:      c.probes,
		deg:         &c.deg,
	}
}

// emitLane routes one telemetry event: straight to the tracer on the
// serial lane (Emit stamps the sequence number), into the lane buffer on
// shard lanes so MergeLanes can re-emit all lanes' events in At order —
// the exact order the serial tracer would have stamped them.
func (c *Cache) emitLane(ln *accessLane, ev telemetry.Event) {
	if c.tracer == nil {
		return
	}
	if ln.shard {
		ln.events = append(ln.events, ev)
		return
	}
	c.tracer.Emit(ev)
}

// laneTraverse accounts one mesh traversal on the lane and returns the
// base latency charged (0 with no mesh attached).
func (c *Cache) laneTraverse(ln *accessLane, from, to int) uint64 {
	if c.mesh == nil {
		return 0
	}
	var lat uint64
	var err error
	if ln.nocStats != nil {
		lat, err = c.mesh.TraverseInto(ln.nocStats, from, to)
	} else {
		// Shard lanes always carry a nocStats delta, so this branch is
		// serial-only by construction (NewShardLane sets nocStats).
		//molvet:ignore lane-confinement shard lanes always take the TraverseInto branch; nocStats is nil only on the serial lane
		lat, err = c.mesh.Traverse(from, to)
	}
	if err != nil {
		return 0
	}
	ln.remote += lat
	return lat
}

// AccessBatch implements engine.Batcher as the serial fold over Access —
// the semantics sharded execution must reproduce, and the baseline the
// shard benchmarks compare against. The sharded counterpart lives in
// internal/shard, which owns goroutines this package is not allowed.
func (c *Cache) AccessBatch(refs []trace.Ref) []engine.Result {
	out := make([]engine.Result, len(refs))
	for i, ref := range refs {
		out[i] = c.Access(ref)
	}
	return out
}

var _ engine.Batcher = (*Cache)(nil)

// ShardLane is one concurrent execution stream over the cache. The
// caller (internal/shard) must guarantee that, within an epoch, every
// access it feeds a lane has its region homed in a cluster owned by
// that lane and that no two lanes share a cluster; under that contract
// lanes only read shared cache state and all their writes are either
// cluster-confined, atomic registry cells, or lane-local deltas.
type ShardLane struct {
	c    *Cache
	lane accessLane
	skew uint64 // clock - addresses at lane creation

	// Lane-owned delta accumulators the lane's destination pointers
	// target; MergeLanes folds and resets them.
	remoteTotal uint64
	ledgerTotal stats.HitMiss
	global      stats.Window
	probesDelta *stats.Histogram
	deg         DegradationStats
	noc         noc.Stats
}

// NewShardLane builds a lane whose accumulators are all lane-local.
func (c *Cache) NewShardLane() *ShardLane {
	sl := &ShardLane{c: c, skew: c.clock - c.addresses}
	sl.probesDelta = stats.NewHistogram(len(c.probes.Buckets))
	sl.lane = accessLane{
		shard:       true,
		sinkRemote:  &sl.remoteTotal,
		ledgerTotal: &sl.ledgerTotal,
		global:      &sl.global,
		probes:      sl.probesDelta,
		deg:         &sl.deg,
		nocStats:    &sl.noc,
	}
	return sl
}

// Access runs one access on the lane. seq is the access's cache-wide
// access count, assigned by the epoch planner; within a lane, calls
// must arrive in increasing seq order (the order the serial engine
// would have run them).
func (sl *ShardLane) Access(seq uint64, ref trace.Ref) engine.Result {
	c := sl.c
	ln := &sl.lane
	ln.seq = seq
	ln.clock = seq + sl.skew
	ln.remote = 0
	if st := c.spans; st != nil {
		if ln.spans == nil {
			ln.spans = telemetry.NewSpanBatchRecorder(st.Every())
		}
		if ln.spans.StartAccess(seq, ref.ASID) {
			ln.spans.Begin("molcache_access")
			res := c.pipeline(ln, ref)
			ln.spans.EndValue(int64(res.TagProbes))
			ln.spans.FinishAccess()
			return res
		}
	}
	return c.pipeline(ln, ref)
}

// MergeLanes folds every lane's epoch deltas back into the cache and
// advances the logical clocks to endSeq (the last access count of the
// epoch). Counter deltas are commutative sums; telemetry events and
// span batches are merged across lanes in At order — access counts are
// unique per access, and each lane's buffer is already At-sorted, so
// the merged stream is exactly the serial emission order. Must be
// called from the coordinating goroutine, after every lane's worker
// has finished the epoch.
func (c *Cache) MergeLanes(endSeq uint64, lanes []*ShardLane) {
	for _, sl := range lanes {
		c.ledger.Total.Add(sl.ledgerTotal)
		sl.ledgerTotal = stats.HitMiss{}
		c.global.Add(sl.global.Roll())
		c.probes.Merge(sl.probesDelta)
		sl.probesDelta.Reset()
		c.remoteCycles += sl.remoteTotal
		sl.remoteTotal = 0
		c.deg.add(sl.deg)
		sl.deg = DegradationStats{}
		if c.mesh != nil {
			c.mesh.Add(sl.noc)
		}
		sl.noc = noc.Stats{}
		if c.faults != nil {
			c.faults.AddDelayedLookups(sl.lane.delayed)
		}
		sl.lane.delayed = 0
	}
	c.mergeLaneEvents(lanes)
	c.mergeLaneSpans(lanes)
	c.clock = endSeq + (c.clock - c.addresses)
	c.addresses = endSeq
}

// mergeLaneEvents re-emits all lanes' buffered telemetry events through
// the master tracer in At order, so Emit stamps the same sequence
// numbers a serial run would have.
func (c *Cache) mergeLaneEvents(lanes []*ShardLane) {
	for {
		best := -1
		var bestAt uint64
		for i, sl := range lanes {
			evs := sl.lane.events
			if len(evs) == 0 {
				continue
			}
			if at := evs[0].At; best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			break
		}
		ln := &lanes[best].lane
		c.tracer.Emit(ln.events[0])
		ln.events = ln.events[1:]
	}
	for _, sl := range lanes {
		sl.lane.events = sl.lane.events[:0]
	}
}

// mergeLaneSpans drains every lane's span batches and appends them to
// the master tracer in At order, rebasing lane-local logical time onto
// the master clock (telemetry.SpanTracer.AppendBatch).
func (c *Cache) mergeLaneSpans(lanes []*ShardLane) {
	if c.spans == nil {
		return
	}
	var all [][]telemetry.SpanBatch
	for _, sl := range lanes {
		if bs := sl.lane.spans.DrainBatches(); len(bs) > 0 {
			all = append(all, bs)
		}
	}
	heads := make([]int, len(all))
	for {
		best := -1
		var bestAt uint64
		for i, bs := range all {
			if heads[i] >= len(bs) {
				continue
			}
			if at := bs[heads[i]].At; best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			break
		}
		c.spans.AppendBatch(all[best][heads[best]])
		heads[best]++
	}
}

// add folds another DegradationStats in (epoch merge).
func (d *DegradationStats) add(o DegradationStats) {
	d.RetiredMolecules += o.RetiredMolecules
	d.RetirementWritebacks += o.RetirementWritebacks
	d.RetirementLinesLost += o.RetirementLinesLost
	d.LineCorruptions += o.LineCorruptions
	d.DirtyCorruptions += o.DirtyCorruptions
	d.NoCRetries += o.NoCRetries
	d.NoCAbandonedLookups += o.NoCAbandonedLookups
	d.UncachedBypasses += o.UncachedBypasses
}
