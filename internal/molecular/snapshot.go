package molecular

import (
	"fmt"
	"sort"

	"molcache/internal/rng"
	"molcache/internal/stats"
)

// This file is the checkpoint layer for the cache core: CaptureState
// walks every structure whose contents influence future accesses into a
// pure-data CacheState, and RestoreCache rebuilds a byte-identical
// continuation from one. The split between what is serialized in order
// and what is rebuilt follows from what the access path can observe:
//
//   - Tile free lists are LIFO and takeFree pops the top, so free-list
//     ORDER is observable — it is serialized as stored.
//   - Replacement rows are indexed by src.Intn(len(row)), so row order
//     and row membership order are observable — rows are serialized as
//     ordered molecule-ID lists.
//   - byTile order is NOT observable (the holder of a block is unique
//     within a region and probe counts use len), so the per-tile slices
//     are rebuilt row-major.
//   - The block index is derived state; it is rebuilt from the restored
//     lines via indexMolecule.
//
// RestoreCache treats its input as untrusted (it may come from a
// corrupted checkpoint file): every cross-reference is validated and
// violations surface as errors, never panics. It deliberately bypasses
// attach()/CreateRegion — both panic on inconsistency by design — and
// finishes with a full CheckInvariants pass so deep corruption that
// slips past field validation is still caught before the engine resumes.

// LineState is one resident line of a molecule (invalid slots are
// omitted; Slot identifies the direct-mapped entry).
type LineState struct {
	Slot  int    `json:"slot"`
	Tag   uint64 `json:"tag"`
	Dirty bool   `json:"dirty,omitempty"`
	Touch uint64 `json:"touch,omitempty"`
}

// MolState is one molecule's complete serialized state.
type MolState struct {
	ID        int         `json:"id"`
	ASID      uint16      `json:"asid,omitempty"`
	Shared    bool        `json:"shared,omitempty"`
	Owned     bool        `json:"owned,omitempty"`
	Failed    bool        `json:"failed,omitempty"`
	Row       int         `json:"row"`
	MissCount uint64      `json:"miss_count,omitempty"`
	Hits      uint64      `json:"hits,omitempty"`
	Accesses  uint64      `json:"accesses,omitempty"`
	Lines     []LineState `json:"lines,omitempty"`
}

// RegionSnap is one region's serialized state. Policy, line size and
// molecule size are config-derived and not repeated here; LineFactor is
// kept because CreateRegion can override the config default per region.
type RegionSnap struct {
	ASID         uint16        `json:"asid"`
	HomeTile     int           `json:"home_tile"`
	LineFactor   int           `json:"line_factor"`
	Rows         [][]int       `json:"rows"`
	RowMiss      []uint64      `json:"row_miss"`
	Window       stats.HitMiss `json:"window"`
	Ledger       stats.HitMiss `json:"ledger"`
	OccupancySum uint64        `json:"occupancy_sum"`
	RNG          [4]uint64     `json:"rng"`
}

// AppLedger is one ASID's cell of the cache-wide ledger.
type AppLedger struct {
	ASID uint16        `json:"asid"`
	HM   stats.HitMiss `json:"hm"`
}

// CacheState is the complete serialized simulation state of a Cache.
// Geometry (clusters, tiles, molecule/line sizes) is carried by the
// Config, which travels alongside in the checkpoint.
type CacheState struct {
	Clock        uint64           `json:"clock"`
	Addresses    uint64           `json:"addresses"`
	NextHome     int              `json:"next_home"`
	RemoteCycles uint64           `json:"remote_cycles"`
	RNG          [4]uint64        `json:"rng"`
	Probes       stats.Histogram  `json:"probes"`
	Global       stats.HitMiss    `json:"global"`
	LedgerTotal  stats.HitMiss    `json:"ledger_total"`
	LedgerApps   []AppLedger      `json:"ledger_apps"`
	Degradation  DegradationStats `json:"degradation"`
	// FreeLists holds each tile's free pool as molecule IDs in stored
	// (bottom-to-top) order; index = global tile ID.
	FreeLists [][]int      `json:"free_lists"`
	Molecules []MolState   `json:"molecules"`
	Regions   []RegionSnap `json:"regions"`
}

// CaptureState serializes the cache's complete simulation state. The
// walk is read-only and deterministic (regions in ASID order, molecules
// in ID order, ledger apps in ASID order).
func (c *Cache) CaptureState() CacheState {
	st := CacheState{
		Clock:        c.clock,
		Addresses:    c.addresses,
		NextHome:     c.nextHome,
		RemoteCycles: c.remoteCycles,
		RNG:          c.src.State(),
		Probes: stats.Histogram{
			Buckets: append([]uint64(nil), c.probes.Buckets...),
			Count:   c.probes.Count,
			Sum:     c.probes.Sum,
			Max:     c.probes.Max,
		},
		Global:      c.global.Snapshot(),
		LedgerTotal: c.ledger.Total,
		Degradation: c.deg,
	}
	for _, asid := range c.ledger.ASIDs() {
		st.LedgerApps = append(st.LedgerApps, AppLedger{ASID: asid, HM: c.ledger.App(asid)})
	}
	st.FreeLists = make([][]int, c.cfg.Clusters*c.cfg.TilesPerCluster)
	for _, cl := range c.clusters {
		for _, t := range cl.tiles {
			ids := make([]int, len(t.free))
			for i, m := range t.free {
				ids[i] = m.id
			}
			st.FreeLists[t.id] = ids
		}
	}
	st.Molecules = make([]MolState, len(c.molsByID))
	for i, m := range c.molsByID {
		ms := MolState{
			ID: m.id, ASID: m.asid, Shared: m.shared, Owned: m.owned,
			Failed: m.failed, Row: m.row,
			MissCount: m.missCount, Hits: m.hits, Accesses: m.accesses,
		}
		for slot := range m.lines {
			ln := &m.lines[slot]
			if ln.valid {
				ms.Lines = append(ms.Lines, LineState{
					Slot: slot, Tag: ln.tag, Dirty: ln.dirty, Touch: ln.touch,
				})
			}
		}
		st.Molecules[i] = ms
	}
	for _, r := range c.Regions() {
		rs := RegionSnap{
			ASID:         r.asid,
			HomeTile:     r.home.id,
			LineFactor:   r.lineFactor,
			Rows:         r.RowMolecules(),
			RowMiss:      r.RowMissCounts(),
			Window:       r.window.Snapshot(),
			Ledger:       r.ledger,
			OccupancySum: r.occupancySum,
			RNG:          r.src.State(),
		}
		st.Regions = append(st.Regions, rs)
	}
	return st
}

// RestoreCache rebuilds a cache from a captured state, validating every
// cross-reference. On success the returned cache is a byte-identical
// continuation of the captured one; on any inconsistency it returns an
// error describing the violation (never panics). Telemetry, faults,
// interconnect and span attachments are NOT restored here — callers
// re-attach them and then load the telemetry snapshot.
func RestoreCache(cfg Config, st CacheState) (*Cache, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("molecular: restore: %w", err)
	}
	total := c.TotalMolecules()
	if len(st.Molecules) != total {
		return nil, fmt.Errorf("molecular: restore: state has %d molecules, geometry has %d",
			len(st.Molecules), total)
	}
	tiles := cfg.Clusters * cfg.TilesPerCluster
	if len(st.FreeLists) != tiles {
		return nil, fmt.Errorf("molecular: restore: state has %d free lists, geometry has %d tiles",
			len(st.FreeLists), tiles)
	}

	// Molecule contents first: every later structure references them.
	for i := range st.Molecules {
		ms := &st.Molecules[i]
		if ms.ID != i {
			return nil, fmt.Errorf("molecular: restore: molecule entry %d carries ID %d", i, ms.ID)
		}
		m := c.molsByID[i]
		if ms.Failed && ms.Owned {
			return nil, fmt.Errorf("molecular: restore: molecule %d both failed and owned", i)
		}
		if ms.Failed && len(ms.Lines) > 0 {
			return nil, fmt.Errorf("molecular: restore: retired molecule %d holds %d lines", i, len(ms.Lines))
		}
		if ms.Owned && (ms.Row < 0 || ms.Row >= maxRows) {
			return nil, fmt.Errorf("molecular: restore: molecule %d row %d outside [0,%d)", i, ms.Row, maxRows)
		}
		m.asid = ms.ASID
		m.shared = ms.Shared
		m.owned = ms.Owned
		m.failed = ms.Failed
		m.row = ms.Row
		if !ms.Owned {
			m.row = -1
		}
		m.missCount = ms.MissCount
		m.hits = ms.Hits
		m.accesses = ms.Accesses
		prevSlot := -1
		for _, ln := range ms.Lines {
			if ln.Slot < 0 || ln.Slot >= len(m.lines) {
				return nil, fmt.Errorf("molecular: restore: molecule %d line slot %d outside molecule of %d lines",
					i, ln.Slot, len(m.lines))
			}
			if ln.Slot <= prevSlot {
				return nil, fmt.Errorf("molecular: restore: molecule %d line slots not strictly ascending at %d",
					i, ln.Slot)
			}
			prevSlot = ln.Slot
			// A line's tag must map to the slot it sits in, or every
			// future probe of that tag would look in the wrong slot.
			if m.index(ln.Tag) != ln.Slot {
				return nil, fmt.Errorf("molecular: restore: molecule %d tag %#x maps to slot %d, stored in %d",
					i, ln.Tag, m.index(ln.Tag), ln.Slot)
			}
			m.lines[ln.Slot] = molLine{tag: ln.Tag, valid: true, dirty: ln.Dirty, touch: ln.Touch}
		}
	}

	// Free pools: cleared, then rebuilt in the captured LIFO order.
	seenFree := make(map[int]bool, total)
	for _, cl := range c.clusters {
		for _, t := range cl.tiles {
			t.free = t.free[:0]
			for _, id := range st.FreeLists[t.id] {
				if id < 0 || id >= total {
					return nil, fmt.Errorf("molecular: restore: tile %d free list names molecule %d outside [0,%d)",
						t.id, id, total)
				}
				m := c.molsByID[id]
				if m.tile != t {
					return nil, fmt.Errorf("molecular: restore: molecule %d on tile %d free list but sits on tile %d",
						id, t.id, m.tile.id)
				}
				if m.owned || m.failed {
					return nil, fmt.Errorf("molecular: restore: molecule %d on free list but owned=%v failed=%v",
						id, m.owned, m.failed)
				}
				if seenFree[id] {
					return nil, fmt.Errorf("molecular: restore: molecule %d on a free list twice", id)
				}
				seenFree[id] = true
				t.free = append(t.free, m)
			}
		}
	}

	// Regions: constructed directly (attach/CreateRegion panic on
	// inconsistency and must not see untrusted input), byTile rebuilt
	// row-major, block index rebuilt from the restored lines.
	seenOwned := make(map[int]uint16, total)
	for ri := range st.Regions {
		rs := &st.Regions[ri]
		if _, dup := c.regions[rs.ASID]; dup {
			return nil, fmt.Errorf("molecular: restore: region for ASID %d appears twice", rs.ASID)
		}
		if rs.HomeTile < 0 || rs.HomeTile >= tiles {
			return nil, fmt.Errorf("molecular: restore: region %d home tile %d outside [0,%d)",
				rs.ASID, rs.HomeTile, tiles)
		}
		if rs.LineFactor < 1 || uint64(rs.LineFactor) > c.linesPerMol ||
			rs.LineFactor&(rs.LineFactor-1) != 0 {
			return nil, fmt.Errorf("molecular: restore: region %d line factor %d invalid for %d-line molecules",
				rs.ASID, rs.LineFactor, c.linesPerMol)
		}
		if len(rs.Rows) > maxRows {
			return nil, fmt.Errorf("molecular: restore: region %d has %d rows, max is %d",
				rs.ASID, len(rs.Rows), maxRows)
		}
		if len(rs.RowMiss) != len(rs.Rows) {
			return nil, fmt.Errorf("molecular: restore: region %d has %d rows but %d row-miss counters",
				rs.ASID, len(rs.Rows), len(rs.RowMiss))
		}
		home := c.clusters[rs.HomeTile/cfg.TilesPerCluster].tiles[rs.HomeTile%cfg.TilesPerCluster]
		r := &Region{
			asid:         rs.ASID,
			home:         home,
			policy:       cfg.Policy,
			lineSize:     cfg.LineSize,
			lineFactor:   rs.LineFactor,
			molSize:      cfg.MoleculeSize,
			byTile:       make([][]*Molecule, tiles),
			rowMiss:      append([]uint64(nil), rs.RowMiss...),
			window:       stats.Window{},
			ledger:       rs.Ledger,
			occupancySum: rs.OccupancySum,
			src:          rng.New(cfg.Seed ^ uint64(rs.ASID)<<20 ^ 0xbeef),
		}
		r.window.Restore(rs.Window)
		if err := r.src.SetState(rs.RNG); err != nil {
			return nil, fmt.Errorf("molecular: restore: region %d: %w", rs.ASID, err)
		}
		for rowIdx, rowIDs := range rs.Rows {
			if len(rowIDs) == 0 {
				return nil, fmt.Errorf("molecular: restore: region %d row %d empty", rs.ASID, rowIdx)
			}
			row := make([]*Molecule, 0, len(rowIDs))
			for _, id := range rowIDs {
				if id < 0 || id >= total {
					return nil, fmt.Errorf("molecular: restore: region %d names molecule %d outside [0,%d)",
						rs.ASID, id, total)
				}
				m := c.molsByID[id]
				if !m.owned || m.asid != rs.ASID {
					return nil, fmt.Errorf("molecular: restore: region %d row %d lists molecule %d with owned=%v asid=%d",
						rs.ASID, rowIdx, id, m.owned, m.asid)
				}
				if m.row != rowIdx {
					return nil, fmt.Errorf("molecular: restore: molecule %d row field %d but listed in region %d row %d",
						id, m.row, rs.ASID, rowIdx)
				}
				if prev, dup := seenOwned[id]; dup {
					return nil, fmt.Errorf("molecular: restore: molecule %d claimed by regions %d and %d",
						id, prev, rs.ASID)
				}
				seenOwned[id] = rs.ASID
				row = append(row, m)
				r.count++
			}
			r.rows = append(r.rows, row)
		}
		// byTile row-major (order unobservable), block index from lines.
		for _, row := range r.rows {
			for _, m := range row {
				r.byTile[m.tile.id] = append(r.byTile[m.tile.id], m)
				r.indexMolecule(m)
			}
		}
		r.appCell = c.ledger.AppRef(rs.ASID)
		c.regions[rs.ASID] = r
		if rs.ASID == SharedASID {
			c.sharedRegion = r
		}
		c.regionList = append(c.regionList, r)
	}
	sort.Slice(c.regionList, func(i, j int) bool {
		return c.regionList[i].asid < c.regionList[j].asid
	})

	// Every owned molecule must have been claimed by exactly one region.
	for _, m := range c.molsByID {
		if !m.owned {
			continue
		}
		if _, ok := seenOwned[m.id]; !ok {
			return nil, fmt.Errorf("molecular: restore: molecule %d owned by ASID %d but listed in no region",
				m.id, m.asid)
		}
	}

	// Cache-wide counters, ledger and RNG.
	c.clock = st.Clock
	c.addresses = st.Addresses
	c.nextHome = st.NextHome
	c.remoteCycles = st.RemoteCycles
	c.deg = st.Degradation
	if err := c.src.SetState(st.RNG); err != nil {
		return nil, fmt.Errorf("molecular: restore: cache rng: %w", err)
	}
	if len(st.Probes.Buckets) != len(c.probes.Buckets) {
		return nil, fmt.Errorf("molecular: restore: probe histogram has %d buckets, geometry wants %d",
			len(st.Probes.Buckets), len(c.probes.Buckets))
	}
	copy(c.probes.Buckets, st.Probes.Buckets)
	c.probes.Count = st.Probes.Count
	c.probes.Sum = st.Probes.Sum
	c.probes.Max = st.Probes.Max
	c.global.Restore(st.Global)
	c.ledger.Total = st.LedgerTotal
	prevASID := -1
	for _, app := range st.LedgerApps {
		if int(app.ASID) <= prevASID {
			return nil, fmt.Errorf("molecular: restore: ledger apps not in ascending ASID order at %d", app.ASID)
		}
		prevASID = int(app.ASID)
		c.ledger.SetApp(app.ASID, app.HM)
	}
	// Re-bind the per-region ledger cells now that the ledger is final
	// (SetApp reuses the cells AppRef handed out above, so this is a
	// no-op safety net rather than a correctness requirement).
	for _, r := range c.regionList {
		r.appCell = c.ledger.AppRef(r.asid)
	}

	// The deep gate: full structural invariant sweep before the cache is
	// allowed to serve a single access.
	if err := c.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("molecular: restore: invariant check failed: %w", err)
	}
	return c, nil
}
