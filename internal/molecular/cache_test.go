package molecular

import (
	"testing"
	"testing/quick"

	"molcache/internal/addr"
	"molcache/internal/trace"
)

// smallConfig is a 256KB cache: 1 cluster x 4 tiles x 8 molecules of 8KB.
func smallConfig(policy ReplacementKind) Config {
	return Config{
		TotalSize:       256 * addr.KB,
		MoleculeSize:    8 * addr.KB,
		LineSize:        64,
		TilesPerCluster: 4,
		Clusters:        1,
		Policy:          policy,
		Seed:            1,
	}
}

func ref(asid uint16, a uint64, k trace.Kind) trace.Ref {
	return trace.Ref{Addr: a, ASID: asid, Kind: k}
}

func TestConfigDefaults(t *testing.T) {
	c := MustNew(Config{TotalSize: 1 * addr.MB})
	cfg := c.Config()
	if cfg.MoleculeSize != 8*addr.KB || cfg.LineSize != 64 ||
		cfg.TilesPerCluster != 4 || cfg.Clusters != 1 ||
		cfg.Policy != RandyReplacement || cfg.LineFactor != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.InitialMolecules != cfg.MoleculesPerTile()/2 {
		t.Errorf("initial molecules = %d, want half tile (%d)",
			cfg.InitialMolecules, cfg.MoleculesPerTile()/2)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{TotalSize: 0}, // empty
		{TotalSize: 1 * addr.MB, MoleculeSize: 3000},               // molecule not pow2
		{TotalSize: 1 * addr.MB, LineFactor: 3},                    // line factor not pow2
		{TotalSize: 64 * addr.KB, TilesPerCluster: 4, Clusters: 2}, // 1 molecule/tile
		{TotalSize: 1 * addr.MB, Policy: "Bogus"},
		{TotalSize: 1 * addr.MB, InitialMolecules: 4096},
		{TotalSize: 1 * addr.MB, MoleculeSize: 8 * addr.KB, LineSize: 64, LineFactor: 256},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}

func TestNameAndGeometry(t *testing.T) {
	cfg := Config{TotalSize: 8 * addr.MB, Clusters: 4, TilesPerCluster: 4}.withDefaults()
	if got := cfg.Name(); got != "8MB Molecular (Randy)" {
		t.Errorf("Name = %q", got)
	}
	if got := cfg.TileSize(); got != 512*addr.KB {
		t.Errorf("TileSize = %d", got)
	}
	if got := cfg.MoleculesPerTile(); got != 64 {
		t.Errorf("MoleculesPerTile = %d", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	if c.Access(ref(1, 0x4000, trace.Read)).Hit {
		t.Error("cold access hit")
	}
	res := c.Access(ref(1, 0x4000, trace.Read))
	if !res.Hit {
		t.Error("second access missed")
	}
	if !c.Access(ref(1, 0x403f, trace.Read)).Hit {
		t.Error("same-line access missed")
	}
	if c.Access(ref(1, 0x4040, trace.Read)).Hit {
		t.Error("next line hit without being fetched (line factor 1)")
	}
}

// The headline isolation property: a request from one application can
// never hit data cached by another (ASID-gated decode).
func TestASIDIsolation(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	for a := uint64(0); a < 64*1024; a += 64 {
		c.Access(ref(1, a, trace.Write))
	}
	for a := uint64(0); a < 64*1024; a += 64 {
		if c.Access(ref(2, a, trace.Read)).Hit {
			t.Fatalf("ASID 2 hit ASID 1's line at %#x", a)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAutoAdmitCreatesRegions(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	c.Access(ref(7, 0, trace.Read))
	r := c.Region(7)
	if r == nil {
		t.Fatal("no region auto-created")
	}
	if r.MoleculeCount() != 4 { // half of the 8-molecule tile
		t.Errorf("initial molecules = %d, want 4", r.MoleculeCount())
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	cfg := smallConfig(RandyReplacement)
	cfg.Clusters = 2
	cfg.TotalSize = 512 * addr.KB
	c := MustNew(cfg)
	c.Access(ref(1, 0, trace.Read))
	c.Access(ref(2, 0, trace.Read))
	c.Access(ref(3, 0, trace.Read))
	if c.Region(1).HomeTile().Cluster() == c.Region(2).HomeTile().Cluster() {
		t.Error("apps 1 and 2 share a cluster; want round-robin spread")
	}
	if c.Region(1).HomeTile() == c.Region(3).HomeTile() {
		t.Error("apps 1 and 3 share a home tile")
	}
}

func TestExplicitPlacement(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, err := c.CreateRegion(9, RegionOptions{HomeCluster: 0, HomeTile: 2, InitialMolecules: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.HomeTile().ID() != 2 || r.MoleculeCount() != 3 {
		t.Errorf("region home=%d count=%d", r.HomeTile().ID(), r.MoleculeCount())
	}
	if _, err := c.CreateRegion(9, RegionOptions{}); err == nil {
		t.Error("duplicate CreateRegion succeeded")
	}
	if _, err := c.CreateRegion(10, RegionOptions{HomeCluster: 5, HomeTile: 0}); err == nil {
		t.Error("out-of-range placement succeeded")
	}
}

func TestRandyRowHashing(t *testing.T) {
	cfg := smallConfig(RandyReplacement)
	c := MustNew(cfg)
	r, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows := len(r.Rows())
	if rows != 4 {
		t.Fatalf("initial Randy rows = %d, want 4", rows)
	}
	// Fill from addresses hashing to each row; the victim must be in
	// that row, observable via RowMissCounts.
	molSize := cfg.MoleculeSize
	for want := 0; want < rows; want++ {
		r.ResetEpoch()
		a := uint64(want) * molSize // (a/molSize)%rows == want
		c.Access(ref(1, a, trace.Read))
		counts := r.RowMissCounts()
		for i, n := range counts {
			if i == want && n != 1 {
				t.Errorf("addr %#x: row %d misses = %d, want 1", a, i, n)
			}
			if i != want && n != 0 {
				t.Errorf("addr %#x: unexpected miss in row %d", a, i)
			}
		}
	}
}

func TestRandomSingleRow(t *testing.T) {
	c := MustNew(smallConfig(RandomReplacement))
	c.Access(ref(1, 0, trace.Read))
	r := c.Region(1)
	if got := len(r.Rows()); got != 1 {
		t.Errorf("Random region rows = %d, want 1", got)
	}
}

func TestVariableLineSize(t *testing.T) {
	cfg := smallConfig(RandyReplacement)
	cfg.LineFactor = 4
	c := MustNew(cfg)
	res := c.Access(ref(1, 0x10000, trace.Read))
	if res.Hit || res.LinesFetched != 4 {
		t.Fatalf("miss should fetch 4 lines, got %+v", res)
	}
	// The three group companions must now hit without further fetches.
	for off := uint64(64); off < 256; off += 64 {
		if !c.Access(ref(1, 0x10000+off, trace.Read)).Hit {
			t.Errorf("companion line at +%d missed", off)
		}
	}
	// Outside the aligned group: miss.
	if c.Access(ref(1, 0x10100, trace.Read)).Hit {
		t.Error("line outside the group hit")
	}
}

func TestVariableLineSizeWritebackUnit(t *testing.T) {
	cfg := smallConfig(RandyReplacement)
	cfg.LineFactor = 2
	cfg.InitialMolecules = 1 // force self-conflict
	c := MustNew(cfg)
	if _, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 1}); err != nil {
		t.Fatal(err)
	}
	c.Access(ref(1, 0, trace.Write)) // dirty line 0, clean companion 1
	// Conflicting group (same molecule index): one molecule = 8KB = 128
	// lines; block 128 maps to index 0 again.
	res := c.Access(ref(1, 128*64, trace.Read))
	if res.LinesEvicted != 2 {
		t.Errorf("evicted %d lines, want the whole group (2)", res.LinesEvicted)
	}
	if res.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1 (only the dirty member)", res.Writebacks)
	}
}

func TestHierarchicalLookupRemoteHit(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Home tile has 8 molecules, all taken; grow 4 more -> they must
	// come from sibling tiles.
	got, err := c.Grow(r, 4)
	if err != nil || got != 4 {
		t.Fatalf("Grow = (%d, %v)", got, err)
	}
	remote := false
	for _, m := range r.molecules() {
		if m.Tile() != r.HomeTile() {
			remote = true
		}
	}
	if !remote {
		t.Fatal("growth did not spill to sibling tiles")
	}
	// Drive accesses until some hit is satisfied remotely.
	seenRemote := false
	for a := uint64(0); a < 2*1024*1024 && !seenRemote; a += 64 {
		c.Access(ref(1, a, trace.Read))
		if res := c.Access(ref(1, a, trace.Read)); res.Hit && res.RemoteTileHit {
			seenRemote = true
		}
	}
	if !seenRemote {
		t.Error("no remote-tile hit observed despite region spanning tiles")
	}
}

func TestProbeCountsBounded(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	c.Access(ref(1, 0, trace.Read))
	r := c.Region(1)
	for a := uint64(0); a < 1024*1024; a += 4096 {
		res := c.Access(ref(1, a, trace.Read))
		if res.TagProbes > r.MoleculeCount() {
			t.Fatalf("probed %d molecules, region only has %d", res.TagProbes, r.MoleculeCount())
		}
		if res.TagProbes == 0 {
			t.Fatal("access probed zero molecules")
		}
	}
	if c.AverageProbes() <= 0 {
		t.Error("average probes not recorded")
	}
}

func TestGrowShrinkInvariants(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 4})
	if err != nil {
		t.Fatal(err)
	}
	free0 := c.FreeMolecules()
	got, err := c.Grow(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("Grow got %d, want 10 (cluster has %d free)", got, free0)
	}
	if c.FreeMolecules() != free0-10 {
		t.Errorf("free = %d, want %d", c.FreeMolecules(), free0-10)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	w, _ := c.Shrink(r, 6)
	if w != 6 || r.MoleculeCount() != 8 {
		t.Errorf("Shrink = %d, count = %d", w, r.MoleculeCount())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Never shrinks below one molecule.
	w, _ = c.Shrink(r, 100)
	if r.MoleculeCount() != 1 || w != 7 {
		t.Errorf("Shrink to floor: withdrawn=%d count=%d", w, r.MoleculeCount())
	}
}

func TestGrowExhaustsCluster(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, _ := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 8})
	got, err := c.Grow(r, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 24 { // 32 in cluster - 8 initial
		t.Errorf("Grow = %d, want 24 (cluster exhausted)", got)
	}
	if c.FreeMolecules() != 0 {
		t.Errorf("free = %d, want 0", c.FreeMolecules())
	}
	got, _ = c.Grow(r, 1)
	if got != 0 {
		t.Error("Grow found molecules in an exhausted cluster")
	}
}

func TestShrinkFlushesAndWritesBack(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, _ := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 2})
	// Dirty lots of lines across both molecules.
	for a := uint64(0); a < 16*1024; a += 64 {
		c.Access(ref(1, a, trace.Write))
	}
	_, wb := c.Shrink(r, 1)
	if wb == 0 {
		t.Error("withdrawing a dirty molecule produced no writebacks")
	}
	// The withdrawn molecule must be clean for its next owner: data from
	// app 1 must not be visible to app 2 even after reallocation.
	r2, _ := c.CreateRegion(2, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 1})
	_ = r2
	for a := uint64(0); a < 16*1024; a += 64 {
		if c.Access(ref(2, a, trace.Read)).Hit {
			t.Fatalf("app 2 hit stale data at %#x after molecule reuse", a)
		}
	}
}

func TestWithdrawPrefersColdMolecule(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, _ := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 3})
	mols := r.molecules()
	mols[0].missCount = 10
	mols[1].missCount = 2
	mols[2].missCount = 7
	cold := mols[1]
	if got := r.withdrawCandidate(); got != cold {
		t.Errorf("withdrawCandidate picked molecule with missCount %d, want 2", got.missCount)
	}
}

func TestSharedRegionVisibleToAllASIDs(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	if _, err := c.CreateRegion(SharedASID, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 2}); err != nil {
		t.Fatal(err)
	}
	// ASID 1 misses; the fill goes into app 1's own region, but a
	// shared-region line inserted under SharedASID hits for everyone.
	c.Access(ref(SharedASID, 0x8000, trace.Read))
	if !c.Access(ref(1, 0x8000, trace.Read)).Hit {
		t.Error("ASID 1 could not read the shared molecule")
	}
	if !c.Access(ref(2, 0x8000, trace.Read)).Hit {
		t.Error("ASID 2 could not read the shared molecule")
	}
}

func TestInvalidateAndContains(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	c.Access(ref(1, 0x9000, trace.Write))
	if !c.Contains(0x9000) {
		t.Fatal("line not resident after write")
	}
	present, dirty := c.Invalidate(0x9000)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Contains(0x9000) {
		t.Error("line survived Invalidate")
	}
}

func TestLRUDirectPrefersInvalidThenOldest(t *testing.T) {
	cfg := smallConfig(LRUDirect)
	c := MustNew(cfg)
	r, _ := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 2})
	// Force both molecules into one row for determinism.
	for len(r.Rows()) > 1 {
		mols := r.rows[len(r.rows)-1]
		m := mols[0]
		r.detach(m)
		m.tile.release(m)
		cl := r.home.cluster
		m2 := cl.takeFreePreferring(r.home)
		r.attach(m2, 0)
	}
	// Two conflicting blocks (same index, molecule = 128 lines).
	c.Access(ref(1, 0, trace.Read))      // goes to some molecule, other stays invalid at idx 0
	c.Access(ref(1, 128*64, trace.Read)) // must fill the *invalid* slot
	if !c.Access(ref(1, 0, trace.Read)).Hit {
		t.Error("LRU-Direct evicted a line while an invalid slot existed")
	}
	if !c.Access(ref(1, 128*64, trace.Read)).Hit {
		t.Error("second block not resident")
	}
	// Make block 0 the most recently touched, then force a third
	// conflicting fill: LRU-Direct must evict block 128*64.
	c.Access(ref(1, 0, trace.Read))
	c.Access(ref(1, 256*64, trace.Read))
	if !c.Access(ref(1, 0, trace.Read)).Hit {
		t.Error("LRU-Direct evicted the most recently used block")
	}
}

// Property: under random interleavings of accesses, grows and shrinks
// across several apps, the structural invariants always hold and
// isolation is never violated.
func TestRandomOpsInvariantProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		c := MustNew(smallConfig(RandyReplacement))
		writers := map[uint64]uint16{} // line -> last writer
		for _, op := range ops {
			asid := uint16(op%3) + 1
			a := uint64(op>>4) % (512 * 1024)
			switch op % 7 {
			case 5:
				if r := c.Region(asid); r != nil {
					c.Shrink(r, 1)
				}
			case 6:
				if r := c.Region(asid); r != nil {
					if _, err := c.Grow(r, 1); err != nil {
						return false
					}
				}
			default:
				k := trace.Read
				if op%2 == 0 {
					k = trace.Write
				}
				res := c.Access(ref(asid, a, k))
				line := a &^ 63
				if res.Hit {
					if w, ok := writers[line]; ok && w != asid {
						return false // cross-ASID visibility
					}
				}
				if k == trace.Write {
					writers[line] = asid
				}
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLedgersAndWindows(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	c.Access(ref(1, 0, trace.Read))
	c.Access(ref(1, 0, trace.Read))
	r := c.Region(1)
	if got := r.Ledger(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("region ledger = %+v", got)
	}
	if got := c.Ledger().App(1); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("cache ledger = %+v", got)
	}
	w := r.Window().Roll()
	if w.Hits != 1 || w.Misses != 1 {
		t.Errorf("window = %+v", w)
	}
	g := c.GlobalWindow().Roll()
	if g.Accesses() != 2 {
		t.Errorf("global window = %+v", g)
	}
	if c.Addresses() != 2 {
		t.Errorf("addresses = %d", c.Addresses())
	}
}

func TestAverageMolecules(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, _ := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 2})
	c.Access(ref(1, 0, trace.Read))
	c.Access(ref(1, 64, trace.Read))
	if _, err := c.Grow(r, 2); err != nil {
		t.Fatal(err)
	}
	c.Access(ref(1, 128, trace.Read))
	c.Access(ref(1, 192, trace.Read))
	// Two accesses at 2 molecules, two at 4: average 3.
	if got := r.AverageMolecules(); got != 3 {
		t.Errorf("AverageMolecules = %v, want 3", got)
	}
}

func TestResetEpoch(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	c.Access(ref(1, 0, trace.Read))
	r := c.Region(1)
	anyMiss := false
	for _, n := range r.RowMissCounts() {
		anyMiss = anyMiss || n > 0
	}
	if !anyMiss {
		t.Fatal("no row miss recorded")
	}
	r.ResetEpoch()
	for _, n := range r.RowMissCounts() {
		if n != 0 {
			t.Error("row miss counts survived ResetEpoch")
		}
	}
	for _, m := range r.molecules() {
		if m.MissCount() != 0 {
			t.Error("molecule miss count survived ResetEpoch")
		}
	}
}
