package molecular

import (
	"strconv"

	"molcache/internal/telemetry"
)

// instruments caches the registry handles the hot path increments, so
// an access never does a name lookup. A nil *instruments (the default)
// means metrics are off and finish pays a single pointer check.
type instruments struct {
	hits         *telemetry.Counter
	misses       *telemetry.Counter
	remoteHits   *telemetry.Counter
	tagProbes    *telemetry.Counter
	writebacks   *telemetry.Counter
	linesFetched *telemetry.Counter
	regionMakes  *telemetry.Counter
	grows        *telemetry.Counter
	shrinks      *telemetry.Counter
	rebalances   *telemetry.Counter

	// Fault-injection and graceful-degradation counters.
	retirements      *telemetry.Counter
	retireWritebacks *telemetry.Counter
	corruptions      *telemetry.Counter
	dirtyCorruptions *telemetry.Counter
	nocRetries       *telemetry.Counter
	nocAbandoned     *telemetry.Counter
	bypasses         *telemetry.Counter

	// Fast-path block-index counters (only ticked on the index path, so
	// a reference-probe cache reports zero for both).
	indexLookups *telemetry.Counter
	indexHits    *telemetry.Counter

	// Distribution instruments: tag probes per access and the modelled
	// access service time (hit/miss base latency plus NoC transit).
	probeHist   *telemetry.Histogram
	serviceHist *telemetry.Histogram
}

// probeCountBounds buckets the per-access tag-probe count: 1 probe for
// a direct home-tile hit up through full-cluster sweeps.
var probeCountBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// AttachTelemetry routes the cache's observations through a tracer
// (structured events) and a registry (live metrics). Either may be nil;
// a nil tracer records no events and a nil registry registers no
// metrics, leaving the access path with one pointer check each.
// Regions created before the call get their gauges registered now;
// regions created after, at creation.
func (c *Cache) AttachTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	c.tracer = tr
	c.reg = reg
	if reg == nil {
		c.ins = nil
		return
	}
	c.ins = &instruments{
		hits:         reg.Counter("molcache_molecular_hits_total"),
		misses:       reg.Counter("molcache_molecular_misses_total"),
		remoteHits:   reg.Counter("molcache_molecular_remote_tile_hits_total"),
		tagProbes:    reg.Counter("molcache_molecular_tag_probes_total"),
		writebacks:   reg.Counter("molcache_molecular_writebacks_total"),
		linesFetched: reg.Counter("molcache_molecular_lines_fetched_total"),
		regionMakes:  reg.Counter("molcache_molecular_region_creates_total"),
		grows:        reg.Counter("molcache_molecular_grow_molecules_total"),
		shrinks:      reg.Counter("molcache_molecular_shrink_molecules_total"),
		rebalances:   reg.Counter("molcache_molecular_rebalances_total"),

		retirements:      reg.Counter("molcache_fault_retired_molecules_total"),
		retireWritebacks: reg.Counter("molcache_fault_retirement_writebacks_total"),
		corruptions:      reg.Counter("molcache_fault_line_corruptions_total"),
		dirtyCorruptions: reg.Counter("molcache_fault_dirty_corruptions_total"),
		nocRetries:       reg.Counter("molcache_fault_noc_retries_total"),
		nocAbandoned:     reg.Counter("molcache_fault_noc_abandoned_lookups_total"),
		bypasses:         reg.Counter("molcache_fault_uncached_bypasses_total"),

		indexLookups: reg.Counter("molcache_index_lookups_total"),
		indexHits:    reg.Counter("molcache_index_hits_total"),

		probeHist:   reg.Histogram("molcache_molecular_probe_count", probeCountBounds),
		serviceHist: reg.Histogram("molcache_access_service_cycles", nil),
	}
	reg.RegisterGaugeFunc("molcache_index_entries",
		func() float64 {
			n := 0
			for _, r := range c.regionList {
				n += r.index.size()
			}
			return float64(n)
		})
	reg.RegisterGaugeFunc("molcache_molecular_free_molecules",
		func() float64 { return float64(c.FreeMolecules()) })
	reg.RegisterGaugeFunc("molcache_fault_retired_molecules",
		func() float64 { return float64(c.deg.RetiredMolecules) })
	reg.RegisterGaugeFunc("molcache_molecular_miss_rate",
		func() float64 { return c.ledger.Total.MissRate() })
	reg.RegisterGaugeFunc("molcache_molecular_avg_probes_per_access",
		func() float64 { return c.AverageProbes() })
	// Regions() iterates in ASID order, so gauge registration (and any
	// panic on a name collision) is deterministic.
	for _, r := range c.Regions() {
		c.registerRegionGauges(r)
	}
	// An interconnect attached earlier joins the registry now; one
	// attached later joins in AttachInterconnect.
	if c.mesh != nil {
		c.mesh.AttachTelemetry(reg)
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (c *Cache) Tracer() *telemetry.Tracer { return c.tracer }

// Registry returns the attached metrics registry (nil when metrics are
// off). Checkpointing reads it to fold the live counters into the
// snapshot alongside the cache state.
func (c *Cache) Registry() *telemetry.Registry { return c.reg }

// registerRegionGauges exports one region's miss rate, size and service-
// time distribution — the paper's per-ASID quantities that Algorithm 1
// steers by, plus the latency distribution Com-CAS-style apportioning
// wants instead of a scalar.
func (c *Cache) registerRegionGauges(r *Region) {
	if c.reg == nil {
		return
	}
	label := `{asid="` + strconv.Itoa(int(r.asid)) + `"}`
	c.reg.RegisterGaugeFunc("molcache_region_miss_rate"+label,
		func() float64 { return r.ledger.MissRate() })
	c.reg.RegisterGaugeFunc("molcache_region_molecules"+label,
		func() float64 { return float64(r.count) })
	r.svcHist = c.reg.Histogram("molcache_access_service_cycles"+label, nil)
}
