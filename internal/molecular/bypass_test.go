package molecular

// Tests that every bypassed access is accounted exactly like a cached
// one — one ledger miss, one probe-histogram observation, one miss
// counter tick — plus the bypass-specific counters, whether the bypass
// came from an exhausted region (every molecule retired, no spares) or
// from an ASID auto-admitted into a cache with nothing left to grant.
// Before bypasses were routed through finish, these paths skipped parts
// of the accounting and the ledgers drifted from the probe histogram.

import (
	"testing"

	"molcache/internal/addr"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// retireEverything retires every not-yet-failed molecule, draining the
// free pools so no region can ever grow again.
func retireEverything(t *testing.T, c *Cache) {
	t.Helper()
	for id := 0; id < c.TotalMolecules(); id++ {
		if m := c.Molecule(id); m != nil && !m.Failed() {
			if _, err := c.RetireMolecule(id); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBypassAccountingUniform(t *testing.T) {
	c := MustNew(Config{
		TotalSize:       64 * addr.KB,
		MoleculeSize:    8 * addr.KB,
		TilesPerCluster: 2,
		Seed:            9,
	})
	reg := telemetry.NewRegistry()
	c.AttachTelemetry(nil, reg)
	if _, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0}); err != nil {
		t.Fatal(err)
	}
	c.Access(trace.Ref{Addr: 0x40, ASID: 1, Kind: trace.Read})
	retireEverything(t, c)

	r := c.Region(1)
	if r.MoleculeCount() != 0 {
		t.Fatalf("region still holds %d molecules after total retirement", r.MoleculeCount())
	}

	type snapshot struct {
		misses, hits, probeCount uint64
		appMisses                uint64
		regionMisses             uint64
		bypassCounter            uint64
		bypassStat               uint64
	}
	capture := func() snapshot {
		s := reg.Snapshot()
		return snapshot{
			misses:        c.Ledger().Total.Misses,
			hits:          c.Ledger().Total.Hits,
			probeCount:    c.ProbeHistogram().Count,
			appMisses:     c.Ledger().App(1).Misses,
			regionMisses:  r.Ledger().Misses,
			bypassCounter: s.Counters["molcache_fault_uncached_bypasses_total"],
			bypassStat:    c.Degradation().UncachedBypasses,
		}
	}

	for _, reference := range []bool{false, true} {
		c.UseReferenceProbe(reference)
		before := capture()
		res := c.Access(trace.Ref{Addr: 0x1240, ASID: 1, Kind: trace.Read})
		after := capture()
		if res.Hit || res.LinesFetched != 0 {
			t.Fatalf("reference=%v: bypass produced %+v", reference, res)
		}
		if after.misses != before.misses+1 || after.hits != before.hits {
			t.Errorf("reference=%v: ledger moved %d→%d misses, %d→%d hits; want exactly one miss",
				reference, before.misses, after.misses, before.hits, after.hits)
		}
		if after.appMisses != before.appMisses+1 {
			t.Errorf("reference=%v: per-ASID ledger recorded %d misses, want 1",
				reference, after.appMisses-before.appMisses)
		}
		if after.regionMisses != before.regionMisses+1 {
			t.Errorf("reference=%v: region ledger recorded %d misses, want 1",
				reference, after.regionMisses-before.regionMisses)
		}
		if after.probeCount != before.probeCount+1 {
			t.Errorf("reference=%v: probe histogram observed %d accesses, want 1",
				reference, after.probeCount-before.probeCount)
		}
		if after.bypassCounter != before.bypassCounter+1 || after.bypassStat != before.bypassStat+1 {
			t.Errorf("reference=%v: bypass counters moved (%d,%d), want (+1,+1)",
				reference,
				after.bypassCounter-before.bypassCounter,
				after.bypassStat-before.bypassStat)
		}
	}
}

// TestBypassAccountingNewASID: an ASID first seen after the cache has
// nothing left to grant gets a zero-molecule region, and its bypassed
// accesses carry full accounting — the auto-admit path must not skip
// the ledgers the normal path writes.
func TestBypassAccountingNewASID(t *testing.T) {
	c := MustNew(Config{
		TotalSize:       64 * addr.KB,
		MoleculeSize:    8 * addr.KB,
		TilesPerCluster: 2,
		Seed:            10,
	})
	reg := telemetry.NewRegistry()
	c.AttachTelemetry(nil, reg)
	retireEverything(t, c)

	const n = 5
	for i := 0; i < n; i++ {
		res := c.Access(trace.Ref{Addr: uint64(i) * 0x40, ASID: 7, Kind: trace.Read})
		if res.Hit {
			t.Fatalf("access %d hit a fully retired cache", i)
		}
	}
	if got := c.Ledger().App(7).Misses; got != n {
		t.Errorf("per-ASID ledger recorded %d misses, want %d", got, n)
	}
	if got := c.ProbeHistogram().Count; got != n {
		t.Errorf("probe histogram observed %d accesses, want %d", got, n)
	}
	if got := c.Degradation().UncachedBypasses; got != n {
		t.Errorf("UncachedBypasses = %d, want %d", got, n)
	}
	if got := reg.Snapshot().Counters["molcache_molecular_misses_total"]; got != n {
		t.Errorf("miss counter = %d, want %d", got, n)
	}
	r := c.Region(7)
	if r == nil {
		t.Fatal("ASID 7 was never admitted")
	}
	if got := r.Ledger().Misses; got != n {
		t.Errorf("region ledger recorded %d misses, want %d", got, n)
	}
}
