// Package molecular implements the paper's contribution: a cache built as
// an aggregation of small direct-mapped caching units (molecules), grouped
// physically into tiles and tile clusters, and logically into per-
// application cache regions with an ASID-gated decode path, hierarchical
// (tile-then-Ulmo) lookup, Random/Randy replacement over a 2-D replacement
// view with per-row associativity, variable line size, and support for
// dynamic resizing (driven by internal/resize).
package molecular

import "molcache/internal/trace"

// SharedASID marks molecules with the shared bit set: they respond to
// every request on their tile regardless of the requestor's ASID
// (Figure 3's multiplexer bypass).
const SharedASID uint16 = 0xFFFF

// molLine is one 64-byte line's metadata inside a molecule.
type molLine struct {
	tag   uint64 // full block number (addr / lineSize)
	valid bool
	dirty bool
	// touch is a replacement timestamp used only by the LRU-Direct
	// extension policy.
	touch uint64
}

// Molecule is a small direct-mapped caching unit — the building block the
// whole architecture aggregates. Its decode path is gated by an ASID
// comparison (or bypassed when the shared bit is set).
type Molecule struct {
	// id is the global molecule number (stable across reassignment).
	id int
	// tile is the physical tile holding this molecule.
	tile *Tile
	// lines are the direct-mapped entries.
	lines []molLine

	// asid is the configured Application Space Identifier; only
	// requests from this application may proceed past decode.
	asid uint16
	// shared bypasses the ASID comparison when set.
	shared bool
	// owned reports whether the molecule currently belongs to a region.
	owned bool
	// failed marks a hard-failed (retired) molecule: it belongs to no
	// region, sits on no free list, and is never allocated again.
	failed bool
	// row is the molecule's row in its region's replacement view
	// (meaningful only while owned).
	row int

	// missCount counts replacements since the last resize epoch — the
	// counter Algorithm 1 reads to decide where to add and what to
	// withdraw.
	missCount uint64
	// hits and accesses accumulate for the lifetime of the assignment
	// (recorded for the molecule a hit actually lands in, whichever
	// lookup path — block index or linear probe — found it).
	hits     uint64
	accesses uint64
}

// ID returns the global molecule number.
func (m *Molecule) ID() int { return m.id }

// Tile returns the physical tile holding the molecule.
func (m *Molecule) Tile() *Tile { return m.tile }

// ASID returns the configured application identifier.
func (m *Molecule) ASID() uint16 { return m.asid }

// Shared reports whether the shared bit is set.
func (m *Molecule) Shared() bool { return m.shared }

// Owned reports whether the molecule currently belongs to a region.
func (m *Molecule) Owned() bool { return m.owned }

// Failed reports whether the molecule has been retired by a hard fault.
func (m *Molecule) Failed() bool { return m.failed }

// ValidBlocks returns the block numbers of every resident line (the
// invariant checker's and retirement path's view of the contents).
func (m *Molecule) ValidBlocks() []uint64 {
	var out []uint64
	for i := range m.lines {
		if m.lines[i].valid {
			out = append(out, m.lines[i].tag)
		}
	}
	return out
}

// Row returns the replacement-view row (only meaningful while owned).
func (m *Molecule) Row() int { return m.row }

// MissCount returns replacements since the last epoch reset.
func (m *Molecule) MissCount() uint64 { return m.missCount }

// Hits returns lifetime hits since assignment.
func (m *Molecule) Hits() uint64 { return m.hits }

// eligible reports whether the molecule's decode stage lets a request
// from asid proceed (the Figure 3 comparator-plus-shared-bit mux).
func (m *Molecule) eligible(asid uint16) bool {
	return m.shared || (m.owned && m.asid == asid)
}

// index maps a block number to the molecule's direct-mapped slot.
func (m *Molecule) index(block uint64) int {
	return int(block % uint64(len(m.lines)))
}

// recordHit applies the bookkeeping of a probe hit on block: the line's
// LRU timestamp advances, a write marks it dirty, and the molecule's
// lifetime counters tick. The caller has already established residency —
// through the region's block index on the fast path, or a linear scan on
// the reference path — so both paths leave identical molecule state.
func (m *Molecule) recordHit(block uint64, write bool, clock uint64) {
	ln := &m.lines[m.index(block)]
	if write {
		ln.dirty = true
	}
	ln.touch = clock
	m.hits++
	m.accesses++
}

// fill installs the lineFactor-aligned group of lines containing block.
// It returns the number of valid lines evicted and how many of those were
// dirty. Only the accessed line is marked dirty on a write miss
// (write-allocate); its group companions arrive clean.
func (m *Molecule) fill(block uint64, lineFactor int, write bool, clock uint64) (evicted, writebacks int) {
	group := block &^ uint64(lineFactor-1)
	for i := 0; i < lineFactor; i++ {
		b := group + uint64(i)
		ln := &m.lines[m.index(b)]
		if ln.valid {
			evicted++
			if ln.dirty {
				writebacks++
			}
		}
		*ln = molLine{tag: b, valid: true, dirty: write && b == block, touch: clock}
	}
	m.missCount++
	return evicted, writebacks
}

// flush invalidates every line, returning the number of dirty lines a
// real cache would write back. Used when a molecule is withdrawn from a
// region or reassigned.
func (m *Molecule) flush() (writebacks int) {
	for i := range m.lines {
		if m.lines[i].valid && m.lines[i].dirty {
			writebacks++
		}
		m.lines[i] = molLine{}
	}
	return writebacks
}

// resetCounters clears assignment-lifetime statistics.
func (m *Molecule) resetCounters() {
	m.missCount = 0
	m.hits = 0
	m.accesses = 0
}

// invalidate drops one line if present (coherence back-invalidation).
func (m *Molecule) invalidate(block uint64) (present, dirty bool) {
	ln := &m.lines[m.index(block)]
	if ln.valid && ln.tag == block {
		d := ln.dirty
		*ln = molLine{}
		return true, d
	}
	return false, false
}

// corrupt drops the line in slot idx (an uncorrectable-ECC transient
// fault). It reports whether a valid line was lost and whether the lost
// copy was dirty — dirty loss is silent data loss, since the writeback
// that would have preserved it never happens.
func (m *Molecule) corrupt(idx int) (wasValid, wasDirty bool) {
	ln := &m.lines[idx]
	wasValid, wasDirty = ln.valid, ln.valid && ln.dirty
	*ln = molLine{}
	return wasValid, wasDirty
}

// contains reports whether block is resident, without updating state.
func (m *Molecule) contains(block uint64) bool {
	ln := &m.lines[m.index(block)]
	return ln.valid && ln.tag == block
}

// lineTouch returns the LRU timestamp of the slot block maps to and
// whether the slot currently holds a valid line.
func (m *Molecule) lineTouch(block uint64) (uint64, bool) {
	ln := &m.lines[m.index(block)]
	return ln.touch, ln.valid
}

// validLines counts resident lines (test/debug aid).
func (m *Molecule) validLines() int {
	n := 0
	for i := range m.lines {
		if m.lines[i].valid {
			n++
		}
	}
	return n
}

// kindIsWrite converts a trace kind for the probe/fill helpers.
func kindIsWrite(k trace.Kind) bool { return k == trace.Write }
