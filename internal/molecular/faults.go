package molecular

import (
	"fmt"

	"molcache/internal/engine"
	"molcache/internal/faults"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// This file is the molecular cache's graceful-degradation layer: hard
// molecule failures retire the unit and shrink the owning region's
// replacement view (the next resize epoch re-grows it from healthy
// spares, exactly as Algorithm 1 re-grows after a withdrawal);
// transient line corruptions drop the line and refetch on next touch;
// NoC delay faults feed retry-with-backoff in the Ulmo lookup path and,
// past the retry budget, degrade the access to an uncached bypass
// instead of being fatal.

// maxNoCAttempts bounds the Ulmo's retry budget for one remote sweep.
// A fault window dropping this many attempts makes the tile unreachable
// for the access; the lookup degrades to an uncached miss.
const maxNoCAttempts = 4

// DegradationStats counts the fault events the cache absorbed.
type DegradationStats struct {
	// RetiredMolecules is the number of hard-failed molecules withdrawn
	// from service.
	RetiredMolecules uint64
	// RetirementWritebacks counts dirty lines written back while
	// flushing retired molecules.
	RetirementWritebacks uint64
	// RetirementLinesLost counts valid lines invalidated by retirement.
	RetirementLinesLost uint64
	// LineCorruptions counts transient corruptions that hit a valid line.
	LineCorruptions uint64
	// DirtyCorruptions counts corruptions that destroyed a dirty copy
	// (silent data loss a real machine would report to the OS).
	DirtyCorruptions uint64
	// NoCRetries counts Ulmo request retransmissions under delay faults.
	NoCRetries uint64
	// NoCAbandonedLookups counts remote sweeps abandoned past the retry
	// budget.
	NoCAbandonedLookups uint64
	// UncachedBypasses counts accesses served from memory without a
	// fill because degradation made caching unsafe or impossible.
	UncachedBypasses uint64
}

// AttachFaults binds a fault injector to the cache: from now on every
// access first applies the faults the campaign schedules at the current
// access count. The injector is materialized over this cache's
// geometry. Attaching nil detaches. The fault-free access path pays one
// pointer check.
func (c *Cache) AttachFaults(inj *faults.Injector) error {
	if inj == nil {
		c.faults = nil
		return nil
	}
	if err := inj.Materialize(c.TotalMolecules(), int(c.linesPerMol)); err != nil {
		return err
	}
	c.faults = inj
	return nil
}

// Faults returns the attached injector (nil when fault-free).
func (c *Cache) Faults() *faults.Injector { return c.faults }

// Degradation returns the fault-absorption counters.
func (c *Cache) Degradation() DegradationStats { return c.deg }

// RetiredMolecules returns the number of molecules withdrawn by hard
// faults.
func (c *Cache) RetiredMolecules() int { return int(c.deg.RetiredMolecules) }

// RetireReport describes one molecule retirement.
type RetireReport struct {
	// Molecule is the retired unit's global ID.
	Molecule int
	// WasOwned reports whether it belonged to a region when it failed.
	WasOwned bool
	// ASID is the owning region (meaningful when WasOwned).
	ASID uint16
	// LinesLost is the number of valid lines invalidated.
	LinesLost int
	// Writebacks is the number of dirty lines written back during the
	// flush.
	Writebacks int
	// RegionSize is the owner's molecule count after the withdrawal.
	RegionSize int
}

// RetireMolecule permanently withdraws a molecule after a hard fault:
// its lines are written back and invalidated (with coherence
// back-invalidations emitted for every resident line, so inclusive
// upper levels drop their copies), the owning region's replacement view
// shrinks around it, and the unit never re-enters any free pool. The
// next resize epoch re-grows the region from healthy spares.
func (c *Cache) RetireMolecule(id int) (RetireReport, error) {
	if id < 0 || id >= len(c.molsByID) {
		return RetireReport{}, fmt.Errorf("molecular: molecule %d outside [0,%d)", id, len(c.molsByID))
	}
	m := c.molsByID[id]
	if m.failed {
		return RetireReport{}, fmt.Errorf("molecular: molecule %d already retired", id)
	}
	rep := RetireReport{Molecule: id}
	if m.owned {
		r := c.regions[m.asid]
		rep.WasOwned = true
		rep.ASID = m.asid
		// Emit coherence back-invalidations before the flush destroys
		// the residency information.
		blocks := m.ValidBlocks()
		rep.LinesLost = len(blocks)
		if c.tracer != nil {
			for _, b := range blocks {
				c.tracer.Coherence(telemetry.KindInvalidate, b*c.cfg.LineSize, -1)
			}
		}
		if r != nil {
			rep.Writebacks = r.detach(m)
			rep.RegionSize = r.count
		} else {
			// Orphaned owner (should be impossible): flush directly.
			rep.Writebacks = m.flush()
			m.owned = false
			m.shared = false
			m.row = -1
		}
	} else {
		m.tile.removeFree(m)
		rep.LinesLost = len(m.ValidBlocks())
		rep.Writebacks = m.flush()
	}
	m.failed = true
	c.deg.RetiredMolecules++
	c.deg.RetirementWritebacks += uint64(rep.Writebacks)
	c.deg.RetirementLinesLost += uint64(rep.LinesLost)
	if c.ins != nil {
		c.ins.retirements.Inc()
		c.ins.retireWritebacks.Add(uint64(rep.Writebacks))
	}
	if c.tracer != nil {
		c.tracer.Emit(telemetry.Event{
			At: c.addresses, Kind: telemetry.KindMoleculeRetire, ASID: rep.ASID,
			Value: int64(id), Aux: int64(rep.RegionSize),
		})
	}
	return rep, nil
}

// CorruptLine applies a transient fault to one direct-mapped slot: the
// line (if valid) is dropped, to be refetched on its next touch. It
// reports whether a valid line was lost and whether the lost copy was
// dirty. Corrupting a retired molecule's slot is a no-op.
func (c *Cache) CorruptLine(moleculeID, line int) (wasValid, wasDirty bool, err error) {
	if moleculeID < 0 || moleculeID >= len(c.molsByID) {
		return false, false, fmt.Errorf("molecular: molecule %d outside [0,%d)", moleculeID, len(c.molsByID))
	}
	m := c.molsByID[moleculeID]
	if line < 0 || line >= len(m.lines) {
		return false, false, fmt.Errorf("molecular: line %d outside molecule of %d lines", line, len(m.lines))
	}
	if m.failed {
		return false, false, nil
	}
	tag := m.lines[line].tag
	wasValid, wasDirty = m.corrupt(line)
	if wasValid && m.owned {
		// The lost line must leave the owner's block index too, or the
		// fast path would report a phantom hit on the dropped tag.
		if r := c.regions[m.asid]; r != nil {
			r.indexRemove(tag, m)
		}
	}
	if wasValid {
		c.deg.LineCorruptions++
		if wasDirty {
			c.deg.DirtyCorruptions++
		}
		if c.ins != nil {
			c.ins.corruptions.Inc()
			if wasDirty {
				c.ins.dirtyCorruptions.Inc()
			}
		}
	}
	if c.tracer != nil {
		aux := int64(0)
		if wasDirty {
			aux = 1
		}
		c.tracer.Emit(telemetry.Event{
			At: c.addresses, Kind: telemetry.KindLineCorrupt, ASID: m.asid,
			Value: int64(moleculeID), Aux: aux,
		})
	}
	return wasValid, wasDirty, nil
}

// applyScheduledFaults delivers every campaign event due at the current
// access count. Individual delivery errors (a target already retired by
// an earlier event, say) are absorbed — a fault campaign must degrade
// the cache, never crash the run.
func (c *Cache) applyScheduledFaults() {
	for _, f := range c.faults.FailuresDue(c.addresses) {
		_, _ = c.RetireMolecule(f.Molecule)
	}
	for _, l := range c.faults.CorruptionsDue(c.addresses) {
		_, _, _ = c.CorruptLine(l.Molecule, l.Line)
	}
}

// ulmoTraverse accounts one Ulmo request traversal between tiles as a
// NoC-transit span whose value is the cycles charged (base hops plus
// any fault-retry penalty).
func (c *Cache) ulmoTraverse(ln *accessLane, from, to int) bool {
	ln.spans.Begin("molcache_access_noc_transit")
	start := ln.remote
	ok := c.ulmoHop(ln, from, to)
	ln.spans.EndValue(int64(ln.remote - start))
	return ok
}

// ulmoHop is ulmoTraverse's body: it applies any active NoC fault
// window — each dropped response costs a retransmission with linearly
// growing backoff, and a fault outlasting the retry budget reports the
// tile unreachable for this access.
func (c *Cache) ulmoHop(ln *accessLane, from, to int) (reachable bool) {
	base := c.laneTraverse(ln, from, to)
	if c.faults == nil {
		return true
	}
	// Delay windows are a pure function of the access count, so shard
	// lanes look them up without touching injector state; the delivered-
	// lookup counter is lane-accumulated and folded in at the merge.
	var d *faults.NoCDelay
	if ln.shard {
		if d = c.faults.DelayWindowAt(ln.seq); d != nil {
			ln.delayed++
		}
	} else {
		d = c.faults.NoCDelayAt(ln.seq)
	}
	if d == nil {
		return true
	}
	attempts := d.DropAttempts + 1
	abandoned := attempts > maxNoCAttempts
	if abandoned {
		attempts = maxNoCAttempts
	}
	// The first attempt already paid `base`; each retry re-sends the
	// request and backs off one extra-cycle step longer than the last.
	var penalty uint64
	for a := 1; a <= attempts; a++ {
		penalty += d.ExtraCycles * uint64(a)
		if a > 1 {
			penalty += base
		}
	}
	ln.remote += penalty
	retries := uint64(attempts - 1)
	ln.deg.NoCRetries += retries
	if abandoned {
		ln.deg.NoCAbandonedLookups++
	}
	if c.ins != nil {
		c.ins.nocRetries.Add(retries)
		if abandoned {
			c.ins.nocAbandoned.Inc()
		}
	}
	aux := int64(0)
	if abandoned {
		aux = 1
	}
	c.emitLane(ln, telemetry.Event{
		At: ln.seq, Kind: telemetry.KindNoCFault,
		Value: int64(retries), Aux: aux,
	})
	return !abandoned
}

// bypassMiss serves an access from memory without installing the line —
// the degradation path for a region with no molecules left, for a
// lookup whose contributing tiles never answered (filling then could
// duplicate a line still resident remotely), or — with r nil — for an
// access whose region could not even be auto-admitted. All bypasses
// flow through finish, so ledger, probe-histogram and telemetry
// accounting is uniform with cached accesses.
func (c *Cache) bypassMiss(ln *accessLane, r *Region, ref trace.Ref, res engine.Result) engine.Result {
	ln.deg.UncachedBypasses++
	if c.ins != nil {
		c.ins.bypasses.Inc()
	}
	c.finish(ln, r, ref, &res)
	return res
}
