package molecular

import "fmt"

// This file is the fast-path block index: a per-region table from block
// number to the molecule holding it, maintained at every point a line
// enters or leaves a molecule the region owns (fill, companion
// back-invalidation, coherence invalidation, line corruption, molecule
// withdrawal, retirement and rebalance). The index answers hit/miss in
// O(1) while the *modelled* probe count — the energy-relevant quantity
// the paper's selective enablement minimizes — is still computed from
// region/tile geometry, so simulated results are identical to the
// linear probe model the index replaces (Cache.UseReferenceProbe keeps
// that model alive as a differential oracle).
//
// Invariant: r.index[b] == m exactly when molecule m is owned by r and
// holds a valid line with tag b. Within one region the holder is unique
// (the lookup-domain uniqueness rule internal/invariant enforces), so a
// flat block → molecule table (blockmap.go) suffices. Shared-bit molecules are indexed by the shared
// region itself; a requestor's lookup consults its own region's index
// and then the shared region's.

// indexAdd records m as the holder of block.
func (r *Region) indexAdd(block uint64, m *Molecule) {
	r.index.set(block, m)
}

// indexRemove drops the index entry for block if (and only if) it names
// m — a stale entry for a different holder must survive its companion's
// eviction.
func (r *Region) indexRemove(block uint64, m *Molecule) {
	r.index.remove(block, m)
}

// indexMolecule registers every resident line of m. Molecules normally
// arrive at a region flushed (free-pool discipline), so this is a cheap
// sweep over invalid lines; it keeps attach correct even for a molecule
// carrying residue.
func (r *Region) indexMolecule(m *Molecule) {
	for i := range m.lines {
		if m.lines[i].valid {
			r.indexAdd(m.lines[i].tag, m)
		}
	}
}

// unindexMolecule withdraws every resident line of m from the index —
// the detach/retire/rebalance half of the maintenance contract, run
// before the flush destroys the tags.
func (r *Region) unindexMolecule(m *Molecule) {
	for i := range m.lines {
		if m.lines[i].valid {
			r.indexRemove(m.lines[i].tag, m)
		}
	}
}

// fillVictim installs the lineFactor-aligned group containing block into
// victim, keeping the index in step: tags about to be evicted leave the
// index, the installed group enters it. It returns fill's eviction and
// writeback counts.
func (r *Region) fillVictim(victim *Molecule, block uint64, write bool, clock uint64) (evicted, writebacks int) {
	group := block &^ uint64(r.lineFactor-1)
	for i := 0; i < r.lineFactor; i++ {
		b := group + uint64(i)
		if ln := &victim.lines[victim.index(b)]; ln.valid {
			r.indexRemove(ln.tag, victim)
		}
	}
	evicted, writebacks = victim.fill(block, r.lineFactor, write, clock)
	for i := 0; i < r.lineFactor; i++ {
		r.indexAdd(group+uint64(i), victim)
	}
	return evicted, writebacks
}

// IndexSize returns the number of resident lines the index tracks.
func (r *Region) IndexSize() int { return r.index.size() }

// IndexSnapshot returns the index as block → molecule ID — the invariant
// checker's (and property tests') view of the fast-path structure.
func (r *Region) IndexSnapshot() map[uint64]int {
	out := make(map[uint64]int, r.index.size())
	r.index.each(func(b uint64, m *Molecule) {
		out[b] = m.id
	})
	return out
}

// checkIndex verifies the index against the replacement view: every
// resident line of every owned molecule is indexed to that molecule,
// and the index holds nothing else. The per-tile slices are audited
// too (every listed molecule on the right tile, widths summing to the
// region count).
func (r *Region) checkIndex() error {
	resident := 0
	for _, row := range r.rows {
		for _, m := range row {
			for i := range m.lines {
				if !m.lines[i].valid {
					continue
				}
				resident++
				tag := m.lines[i].tag
				if holder := r.index.get(tag); holder != m {
					hid := -1
					if holder != nil {
						hid = holder.id
					}
					return fmt.Errorf("region %d: block %#x resident in molecule %d but indexed to %d",
						r.asid, tag, m.id, hid)
				}
			}
		}
	}
	if resident != r.index.size() {
		return fmt.Errorf("region %d: index holds %d entries, %d lines resident",
			r.asid, r.index.size(), resident)
	}
	byTile := 0
	for tid, ms := range r.byTile {
		for _, m := range ms {
			if m.tile.id != tid {
				return fmt.Errorf("region %d: molecule %d listed under tile %d but sits on tile %d",
					r.asid, m.id, tid, m.tile.id)
			}
			if !m.owned || m.asid != r.asid {
				return fmt.Errorf("region %d: tile index lists molecule %d owned=%v asid=%d",
					r.asid, m.id, m.owned, m.asid)
			}
			byTile++
		}
	}
	if byTile != r.count {
		return fmt.Errorf("region %d: tile index lists %d molecules, count is %d",
			r.asid, byTile, r.count)
	}
	return nil
}
