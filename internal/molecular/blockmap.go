package molecular

import "math/bits"

// blockMap is the fast-path index's hash table: block number → holding
// molecule, open-addressed with linear probing over a power-of-two
// entry array and Fibonacci (multiplicative) hashing. The Go runtime
// map it replaces was the single largest cost of a steady-state hit —
// the generic hashing and bucket machinery cost more than the rest of
// the lookup combined. This table does one multiply and, at the load
// factors it maintains, usually one probe; lookups never allocate, and
// growth happens only on insert, which is the miss path.
//
// Deletion marks a tombstone (a dead slot that keeps probe chains
// intact); a rebuild amortizes tombstones away whenever live+dead
// entries would pass 3/4 of capacity. Key 0 is a legal block number,
// so slot state lives in the value pointer: nil = never used,
// tombstoneMolecule = deleted.

// tombstoneMolecule marks a deleted slot; it is never handed out.
var tombstoneMolecule = &Molecule{id: -1}

// blockMapMinSize is the smallest (and initial) table capacity.
const blockMapMinSize = 64

// blockHashMul is 2^64 / φ, the usual Fibonacci-hashing multiplier; the
// high bits of the product avalanche well even for the dense small
// integers block numbers are.
const blockHashMul = 0x9e3779b97f4a7c15

type blockEntry struct {
	key uint64
	val *Molecule
}

type blockMap struct {
	entries []blockEntry
	// shift is 64 - log2(len(entries)): the hash's high bits become the
	// starting slot, so no masking is needed on the first probe.
	shift uint
	live  int
	dead  int
}

// get returns the molecule holding block b, or nil.
func (t *blockMap) get(b uint64) *Molecule {
	if len(t.entries) == 0 {
		return nil
	}
	mask := uint64(len(t.entries) - 1)
	i := (b * blockHashMul) >> t.shift
	for {
		e := &t.entries[i]
		if e.val == nil {
			return nil
		}
		if e.key == b && e.val != tombstoneMolecule {
			return e.val
		}
		i = (i + 1) & mask
	}
}

// set binds block b to molecule m, updating in place if b is present.
func (t *blockMap) set(b uint64, m *Molecule) {
	if len(t.entries) == 0 || (t.live+t.dead+1)*4 > len(t.entries)*3 {
		t.rebuild()
	}
	mask := uint64(len(t.entries) - 1)
	i := (b * blockHashMul) >> t.shift
	free := -1
	for {
		e := &t.entries[i]
		if e.val == nil {
			// End of the probe chain: b is absent. Reuse the first
			// tombstone passed on the way, if any.
			if free >= 0 {
				e = &t.entries[free]
				t.dead--
			}
			e.key, e.val = b, m
			t.live++
			return
		}
		if e.val == tombstoneMolecule {
			if free < 0 {
				free = int(i)
			}
		} else if e.key == b {
			e.val = m
			return
		}
		i = (i + 1) & mask
	}
}

// remove drops the entry for b if (and only if) it names m, reporting
// whether it did — the conditional the index maintenance contract needs
// (a companion's eviction must not take a different holder's entry).
func (t *blockMap) remove(b uint64, m *Molecule) bool {
	if len(t.entries) == 0 {
		return false
	}
	mask := uint64(len(t.entries) - 1)
	i := (b * blockHashMul) >> t.shift
	for {
		e := &t.entries[i]
		if e.val == nil {
			return false
		}
		if e.key == b && e.val != tombstoneMolecule {
			if e.val != m {
				return false
			}
			e.val = tombstoneMolecule
			t.live--
			t.dead++
			return true
		}
		i = (i + 1) & mask
	}
}

// size returns the number of live entries.
func (t *blockMap) size() int { return t.live }

// each calls f for every live entry. The order is a deterministic
// function of the insertion history, but callers must not depend on it;
// it exists to build snapshots and run audits.
func (t *blockMap) each(f func(b uint64, m *Molecule)) {
	for i := range t.entries {
		if v := t.entries[i].val; v != nil && v != tombstoneMolecule {
			f(t.entries[i].key, v)
		}
	}
}

// rebuild re-tables every live entry into a capacity sized for the
// current population (dropping all tombstones), growing as needed to
// keep the post-insert load under 3/4.
func (t *blockMap) rebuild() {
	size := blockMapMinSize
	for (t.live+1)*4 > size*3 {
		size <<= 1
	}
	old := t.entries
	t.entries = make([]blockEntry, size)
	t.shift = uint(64 - bits.TrailingZeros(uint(size)))
	t.live, t.dead = 0, 0
	mask := uint64(size - 1)
	for _, e := range old {
		if e.val == nil || e.val == tombstoneMolecule {
			continue
		}
		i := (e.key * blockHashMul) >> t.shift
		for t.entries[i].val != nil {
			i = (i + 1) & mask
		}
		t.entries[i] = e
		t.live++
	}
}
