package molecular

// Property-based tests of the replacement view (the paper's 2-D sparse
// matrix of rows). The deterministic unit tests in cache_test.go pin
// specific behaviours; these drive randomized address streams and
// grow/shrink/rebalance sequences through testing/quick and assert the
// structural properties that must hold for ANY input:
//
//   - Randy's victim always comes from the hashed row of the address
//     (row = (addr / moleculeSize) mod rows), never another row.
//   - A victim always belongs to the requesting region: replacement can
//     never evict from another application's partition (the isolation
//     property the paper's regions exist to provide).
//   - Row widths always sum to the region's molecule count and no row is
//     ever empty ("every row of the matrix must contain at least one
//     molecule").
//   - The cache-wide structural invariants (CheckInvariants) survive any
//     interleaving of accesses, grows, shrinks and rebalances.

import (
	"testing"
	"testing/quick"

	"molcache/internal/addr"
	"molcache/internal/rng"
	"molcache/internal/trace"
)

// propCache builds a small two-region cache (4 tiles x 8 molecules of
// 8KB) and warms both regions with a deterministic access stream so the
// replacement views have non-trivial shape.
func propCache(t *testing.T, policy ReplacementKind, seed uint64) *Cache {
	t.Helper()
	c := MustNew(Config{
		TotalSize:    256 * addr.KB,
		MoleculeSize: 8 * addr.KB,
		Policy:       policy,
		Seed:         seed,
	})
	for asid := uint16(1); asid <= 2; asid++ {
		if _, err := c.CreateRegion(asid, RegionOptions{
			HomeCluster: 0, HomeTile: int(asid - 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	src := rng.New(seed ^ 0xfeed)
	for i := 0; i < 4096; i++ {
		asid := uint16(1 + i%2)
		c.Access(trace.Ref{
			Addr: uint64(asid)<<36 | uint64(src.Intn(1<<18)),
			ASID: asid,
			Kind: trace.Read,
		})
	}
	return c
}

// TestPropertyRandyVictimFromHashedRow: for arbitrary addresses, Randy's
// victim is drawn from exactly the row the paper's hash names.
func TestPropertyRandyVictimFromHashedRow(t *testing.T) {
	c := propCache(t, RandyReplacement, 2006)
	r := c.Region(1)
	if len(r.rows) < 2 {
		t.Fatalf("warmup left only %d rows; property would be vacuous", len(r.rows))
	}
	f := func(a uint64) bool {
		want := r.rowFor(a)
		v := r.victim(a, a/r.lineSize)
		return v != nil && v.row == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVictimStaysInRegion: no policy ever selects a victim from
// another region's molecules (or a free molecule) — replacement respects
// partition isolation.
func TestPropertyVictimStaysInRegion(t *testing.T) {
	for _, policy := range []ReplacementKind{
		RandomReplacement, RandyReplacement, LRUDirect,
	} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			c := propCache(t, policy, 2006)
			f := func(a uint64, pick bool) bool {
				asid := uint16(1)
				if pick {
					asid = 2
				}
				r := c.Region(asid)
				v := r.victim(a, a/r.lineSize)
				return v != nil && v.owned && v.asid == asid
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPropertyRowForInRange: the row hash lands inside the view for any
// address, at any row count the region passes through.
func TestPropertyRowForInRange(t *testing.T) {
	c := propCache(t, RandyReplacement, 7)
	r := c.Region(1)
	f := func(a uint64) bool {
		row := r.rowFor(a)
		return row >= 0 && row < len(r.rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRowWidths: after any randomized operation sequence, every
// row is non-empty, the widths sum to the molecule count, and the
// cache-wide invariants hold.
func TestPropertyRowWidths(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		c := propCache(t, RandyReplacement, seed)
		src := rng.New(seed ^ 0x0b5)
		for _, op := range ops {
			r := c.Region(uint16(1 + int(op)%2))
			switch (op >> 1) % 4 {
			case 0: // a burst of accesses
				for i := 0; i < 32; i++ {
					c.Access(trace.Ref{
						Addr: uint64(r.asid)<<36 | uint64(src.Intn(1<<18)),
						ASID: r.asid,
						Kind: trace.Read,
					})
				}
			case 1:
				if _, err := c.Grow(r, 1+int(op>>3)%3); err != nil {
					return false
				}
			case 2:
				c.Shrink(r, 1+int(op>>3)%3)
			case 3:
				c.Rebalance(r)
			}
			for _, reg := range c.Regions() {
				total := 0
				for _, w := range reg.Rows() {
					if w == 0 {
						t.Logf("region %d has an empty row", reg.ASID())
						return false
					}
					total += w
				}
				if total != reg.MoleculeCount() {
					t.Logf("region %d row widths sum %d != count %d",
						reg.ASID(), total, reg.MoleculeCount())
					return false
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRandomSingleRow: the Random policy keeps its "one logical
// row" shape through growth, so its victim draw stays uniform over the
// whole partition.
func TestPropertyRandomSingleRow(t *testing.T) {
	f := func(seed uint64, grows uint8) bool {
		c := propCache(t, RandomReplacement, seed)
		r := c.Region(1)
		if _, err := c.Grow(r, int(grows)%8); err != nil {
			return false
		}
		return len(r.Rows()) == 1 && r.Rows()[0] == r.MoleculeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
