package molecular

// Direct tests of the open-addressed block → molecule table. The
// differential oracle and the index property tests exercise it through
// the cache; these pin the table's own contract — including the states
// a full simulation may take long to reach (tombstone churn at a fixed
// population, key 0, conditional removal against the wrong holder).

import (
	"testing"

	"molcache/internal/rng"
)

func TestBlockMapBasics(t *testing.T) {
	var bm blockMap
	a, b := &Molecule{id: 1}, &Molecule{id: 2}

	if got := bm.get(0); got != nil {
		t.Fatalf("empty table returned %v for key 0", got)
	}
	bm.set(0, a) // key 0 is a legal block number
	bm.set(7, b)
	if bm.get(0) != a || bm.get(7) != b {
		t.Fatal("lookups after insert disagree")
	}
	if bm.size() != 2 {
		t.Fatalf("size = %d, want 2", bm.size())
	}
	bm.set(0, b) // in-place update
	if bm.get(0) != b || bm.size() != 2 {
		t.Fatal("update changed size or missed")
	}
	if bm.remove(7, a) {
		t.Fatal("conditional remove succeeded against the wrong holder")
	}
	if bm.get(7) != b {
		t.Fatal("failed conditional remove disturbed the entry")
	}
	if !bm.remove(7, b) || bm.get(7) != nil || bm.size() != 1 {
		t.Fatal("remove of the right holder did not take")
	}
}

// TestBlockMapTombstoneChurn holds the population fixed while cycling
// keys through insert/delete far past the table capacity: rebuilds must
// reclaim tombstones instead of growing without bound.
func TestBlockMapTombstoneChurn(t *testing.T) {
	var bm blockMap
	m := &Molecule{id: 3}
	const population = 100
	for k := uint64(0); k < population; k++ {
		bm.set(k, m)
	}
	for k := uint64(0); k < 100_000; k++ {
		if !bm.remove(k, m) {
			t.Fatalf("key %d missing before its deletion", k)
		}
		bm.set(k+population, m)
		if bm.size() != population {
			t.Fatalf("size drifted to %d", bm.size())
		}
	}
	if cap := len(bm.entries); cap > 1024 {
		t.Errorf("table grew to %d slots for a population of %d; tombstones leak", cap, population)
	}
	seen := 0
	bm.each(func(k uint64, got *Molecule) {
		if got != m {
			t.Errorf("key %d bound to %v", k, got)
		}
		seen++
	})
	if seen != population {
		t.Errorf("each visited %d entries, want %d", seen, population)
	}
}

// TestBlockMapMirrorsMap drives a randomized op mix against the table
// and a plain Go map and demands they never disagree.
func TestBlockMapMirrorsMap(t *testing.T) {
	var bm blockMap
	oracle := make(map[uint64]*Molecule)
	mols := []*Molecule{{id: 0}, {id: 1}, {id: 2}}
	src := rng.New(0xb10c)
	for i := 0; i < 200_000; i++ {
		k := uint64(src.Intn(4096))
		switch src.Intn(3) {
		case 0:
			m := mols[src.Intn(len(mols))]
			bm.set(k, m)
			oracle[k] = m
		case 1:
			m := mols[src.Intn(len(mols))]
			if bm.remove(k, m) != (oracle[k] == m) {
				t.Fatalf("op %d: conditional remove of %d disagreed", i, k)
			}
			if oracle[k] == m {
				delete(oracle, k)
			}
		case 2:
			if bm.get(k) != oracle[k] {
				t.Fatalf("op %d: get(%d) = %v, oracle %v", i, k, bm.get(k), oracle[k])
			}
		}
		if bm.size() != len(oracle) {
			t.Fatalf("op %d: size %d, oracle %d", i, bm.size(), len(oracle))
		}
	}
	bm.each(func(k uint64, m *Molecule) {
		if oracle[k] != m {
			t.Errorf("each yielded %d → %v, oracle %v", k, m, oracle[k])
		}
	})
}
