package molecular

import "fmt"

// Tile is a physical group of molecules sharing one read/write port.
// Every processor (and thus every application) has a home tile that is
// searched first on every access.
type Tile struct {
	id        int
	cluster   *Cluster
	molecules []*Molecule
	free      []*Molecule // unassigned molecules, LIFO
}

// ID returns the tile number (global across the cache).
func (t *Tile) ID() int { return t.id }

// Cluster returns the owning tile cluster.
func (t *Tile) Cluster() *Cluster { return t.cluster }

// Molecules returns the tile's molecules (assigned and free).
func (t *Tile) Molecules() []*Molecule { return t.molecules }

// FreeCount returns the number of unassigned molecules.
func (t *Tile) FreeCount() int { return len(t.free) }

// FreeList returns a copy of the tile's free pool (the invariant
// checker's view of free-list membership).
func (t *Tile) FreeList() []*Molecule {
	return append([]*Molecule(nil), t.free...)
}

// takeFree removes and returns one free molecule, or nil when empty.
func (t *Tile) takeFree() *Molecule {
	if len(t.free) == 0 {
		return nil
	}
	m := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	return m
}

// release returns a withdrawn molecule to the tile's free pool. The
// caller must already have flushed and disowned it. A failed molecule
// is never pooled again: releasing one is a silent no-op, so every
// withdrawal path degrades gracefully around retired hardware.
// Panics on a cross-tile or still-owned release — both mean the
// free-pool bookkeeping is corrupt.
func (t *Tile) release(m *Molecule) {
	if m.tile != t {
		panic(fmt.Sprintf("molecular: molecule %d released to foreign tile %d", m.id, t.id))
	}
	if m.owned {
		panic(fmt.Sprintf("molecular: molecule %d released while still owned", m.id))
	}
	if m.failed {
		return
	}
	t.free = append(t.free, m)
}

// removeFree withdraws a specific molecule from the free pool (the
// retirement path for molecules that fail while unassigned). Reports
// whether it was found.
func (t *Tile) removeFree(m *Molecule) bool {
	for i, x := range t.free {
		if x == m {
			t.free = append(t.free[:i], t.free[i+1:]...)
			return true
		}
	}
	return false
}

// Cluster is a group of tiles governed by one Ulmo controller. The Ulmo
// handles tile misses — searching the sibling tiles that contribute
// molecules to the requesting application's region — and inter-cluster
// coherence traffic.
type Cluster struct {
	id    int
	tiles []*Tile
}

// ID returns the cluster number.
func (c *Cluster) ID() int { return c.id }

// Tiles returns the cluster's tiles.
func (c *Cluster) Tiles() []*Tile { return c.tiles }

// FreeCount returns the number of unassigned molecules in the cluster.
func (c *Cluster) FreeCount() int {
	n := 0
	for _, t := range c.tiles {
		n += len(t.free)
	}
	return n
}

// takeFreePreferring removes a free molecule, preferring the given home
// tile and falling back to the Ulmo's sibling tiles in index order.
// Returns nil when the whole cluster is exhausted — the "no free
// molecules, no resizing" phase the paper observes for cache-intensive
// mixes below the threshold size.
func (c *Cluster) takeFreePreferring(home *Tile) *Molecule {
	if m := home.takeFree(); m != nil {
		return m
	}
	for _, t := range c.tiles {
		if t == home {
			continue
		}
		if m := t.takeFree(); m != nil {
			return m
		}
	}
	return nil
}
