package molecular

import (
	"fmt"

	"molcache/internal/rng"
	"molcache/internal/stats"
	"molcache/internal/telemetry"
)

// ReplacementKind selects the molecule-selection policy for a region.
type ReplacementKind string

// The molecule-selection policies: the paper's two (Random over the whole
// region, Randy over the row-hashed replacement view) and LRU-Direct, the
// extension named in the paper's future-work section (approximate LRU
// across the molecules of the candidate row).
const (
	RandomReplacement ReplacementKind = "Random"
	RandyReplacement  ReplacementKind = "Randy"
	LRUDirect         ReplacementKind = "LRU-Direct"
)

// maxRows caps the replacement view's row count (the configured way size,
// rowMax). Rows are added dynamically as the region grows.
const maxRows = 16

// Region is an application-specific cache partition: a set of molecules
// bound to one ASID, organized for replacement as a 2-D sparse matrix of
// rows with independent widths (heterogeneous per-row associativity).
type Region struct {
	asid       uint16
	home       *Tile
	policy     ReplacementKind
	lineSize   uint64 // base line size (bytes)
	lineFactor int    // lines fetched per miss (fixed at creation)
	molSize    uint64

	// rows is the replacement view. Every molecule in the region
	// appears in exactly one row; rows[i][j].row == i.
	rows [][]*Molecule
	// byTile indexes the region's molecules by global tile ID for the
	// hierarchical lookup (home tile first, then Ulmo sweep). It is
	// preallocated to the cache's tile count so the access path never
	// allocates or hashes.
	byTile [][]*Molecule
	// index is the fast-path block index: block number → the molecule
	// holding it (see index.go for the maintenance contract).
	index blockMap
	count int

	// rowMiss counts replacements per row since the last epoch
	// (Randy's placement signal).
	rowMiss []uint64

	// window feeds the resize controller's periodic miss-rate reads.
	window stats.Window
	// lifetime counts for reporting.
	ledger stats.HitMiss
	// appCell is this ASID's cell in the cache-wide ledger
	// (stats.Ledger.AppRef), cached at creation so the access path
	// records per-application counts without a map lookup.
	appCell *stats.HitMiss

	// occupancySum accumulates the molecule count at every access so
	// HPM can use the time-weighted average partition size.
	occupancySum uint64

	// svcHist is the per-ASID service-time histogram, bound when a
	// registry is attached (nil otherwise; Observe is nil-safe).
	svcHist *telemetry.Histogram

	src *rng.Source
}

// ASID returns the owning application's identifier.
func (r *Region) ASID() uint16 { return r.asid }

// HomeTile returns the region's home tile.
func (r *Region) HomeTile() *Tile { return r.home }

// Policy returns the molecule-selection policy.
func (r *Region) Policy() ReplacementKind { return r.policy }

// LineFactor returns the number of base lines fetched per miss.
func (r *Region) LineFactor() int { return r.lineFactor }

// MoleculeCount returns the current partition size in molecules.
func (r *Region) MoleculeCount() int { return r.count }

// Rows returns the widths of the replacement view's rows.
func (r *Region) Rows() []int {
	out := make([]int, len(r.rows))
	for i, row := range r.rows {
		out[i] = len(row)
	}
	return out
}

// RowMolecules returns the replacement view's members as molecule IDs,
// row-major — the invariant checker's view of the 2-D matrix.
func (r *Region) RowMolecules() [][]int {
	out := make([][]int, len(r.rows))
	for i, row := range r.rows {
		out[i] = make([]int, len(row))
		for j, m := range row {
			out[i][j] = m.id
		}
	}
	return out
}

// TileCounts returns the region's molecule count per physical tile ID
// (the byTile index the hierarchical lookup walks). Only tiles holding
// at least one molecule appear.
func (r *Region) TileCounts() map[int]int {
	out := make(map[int]int)
	for tid, ms := range r.byTile {
		if len(ms) > 0 {
			out[tid] = len(ms)
		}
	}
	return out
}

// RowMissCounts returns the per-row replacement counts for this epoch.
func (r *Region) RowMissCounts() []uint64 {
	out := make([]uint64, len(r.rowMiss))
	copy(out, r.rowMiss)
	return out
}

// Window exposes the resize controller's miss-rate window.
func (r *Region) Window() *stats.Window { return &r.window }

// Ledger returns the region's lifetime hit/miss counts.
func (r *Region) Ledger() stats.HitMiss { return r.ledger }

// AverageMolecules returns the time-weighted average partition size, the
// denominator of the HPM metric.
func (r *Region) AverageMolecules() float64 {
	n := r.ledger.Accesses()
	if n == 0 {
		return float64(r.count)
	}
	return float64(r.occupancySum) / float64(n)
}

// Hits returns total hits accumulated by the region's current and former
// molecules... note withdrawn molecules carry their hits away, so the
// region ledger is the authoritative count.
func (r *Region) Hits() uint64 { return r.ledger.Hits }

// ResetEpoch clears the per-epoch miss counters (molecules and rows)
// after a resize decision has consumed them.
func (r *Region) ResetEpoch() {
	for i := range r.rowMiss {
		r.rowMiss[i] = 0
	}
	for _, row := range r.rows {
		for _, m := range row {
			m.missCount = 0
		}
	}
}

// rowFor returns the replacement-view row for a block address per the
// paper's hash: row = (addr / moleculeSize) mod rowMax. Panics on a
// rowless region — regions are never created empty, so that is
// bookkeeping corruption, not an input error.
func (r *Region) rowFor(addrBytes uint64) int {
	if len(r.rows) == 0 {
		panic("molecular: region has no rows")
	}
	return int((addrBytes / r.molSize) % uint64(len(r.rows)))
}

// victim selects the molecule that receives the fill for addrBytes
// (whose block number is block), per the region's policy. Panics on a
// policy Config.Validate would have rejected.
func (r *Region) victim(addrBytes, block uint64) *Molecule {
	switch r.policy {
	case RandomReplacement:
		// The whole region is one logical row; draw uniformly.
		return r.nthMolecule(r.src.Intn(r.count))
	case RandyReplacement:
		row := r.rows[r.rowFor(addrBytes)]
		return row[r.src.Intn(len(row))]
	case LRUDirect:
		// Future-work extension: within the hashed row, pick the
		// molecule whose direct-mapped slot for this block is invalid
		// or least recently touched.
		row := r.rows[r.rowFor(addrBytes)]
		var best *Molecule
		var bestTouch uint64
		for _, m := range row {
			touch, valid := m.lineTouch(block)
			if !valid {
				return m
			}
			if best == nil || touch < bestTouch {
				best, bestTouch = m, touch
			}
		}
		return best
	default:
		panic("molecular: unknown replacement policy " + string(r.policy))
	}
}

// nthMolecule returns the i-th molecule in row-major order. Panics
// when i is outside [0, count) — callers draw indexes from r.count.
func (r *Region) nthMolecule(i int) *Molecule {
	for _, row := range r.rows {
		if i < len(row) {
			return row[i]
		}
		i -= len(row)
	}
	panic("molecular: molecule index out of range")
}

// molecules returns all molecules in the region (row-major).
func (r *Region) molecules() []*Molecule {
	out := make([]*Molecule, 0, r.count)
	for _, row := range r.rows {
		out = append(out, row...)
	}
	return out
}

// attach places molecule m into row rowIdx (which may equal len(rows) to
// open a new row) and binds its ASID. Panics if m is already owned or
// rowIdx is out of range; both mean the allocator and the region
// disagree about who holds what, and continuing would corrupt results.
func (r *Region) attach(m *Molecule, rowIdx int) {
	if m.owned {
		panic(fmt.Sprintf("molecular: molecule %d attached while owned", m.id))
	}
	if rowIdx < 0 || rowIdx > len(r.rows) || rowIdx >= maxRows {
		panic(fmt.Sprintf("molecular: bad row index %d (rows=%d)", rowIdx, len(r.rows)))
	}
	if rowIdx == len(r.rows) {
		r.rows = append(r.rows, nil)
		r.rowMiss = append(r.rowMiss, 0)
	}
	m.owned = true
	m.asid = r.asid
	m.shared = r.asid == SharedASID
	m.row = rowIdx
	m.resetCounters()
	r.rows[rowIdx] = append(r.rows[rowIdx], m)
	r.byTile[m.tile.id] = append(r.byTile[m.tile.id], m)
	r.indexMolecule(m)
	r.count++
}

// detach removes m from the region, flushing its contents. It returns the
// number of dirty-line writebacks. The molecule is NOT released to its
// tile's free pool; the caller does that. Panics when m is not owned by
// this region or missing from its row — ownership corruption.
func (r *Region) detach(m *Molecule) (writebacks int) {
	if !m.owned || m.asid != r.asid {
		panic(fmt.Sprintf("molecular: detach of molecule %d not owned by region %d", m.id, r.asid))
	}
	row := r.rows[m.row]
	found := false
	for i, x := range row {
		if x == m {
			r.rows[m.row] = append(row[:i], row[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("molecular: molecule %d missing from its row", m.id))
	}
	tl := r.byTile[m.tile.id]
	for i, x := range tl {
		if x == m {
			r.byTile[m.tile.id] = append(tl[:i], tl[i+1:]...)
			break
		}
	}
	r.unindexMolecule(m)
	wb := m.flush()
	m.owned = false
	m.shared = false
	m.row = -1
	r.count--
	r.compactRows()
	return wb
}

// compactRows removes empty trailing rows so rowFor never hashes into an
// empty row. Interior empty rows are removed too; the paper only requires
// that "every row of the matrix must contain at least one molecule".
// Re-hashing after structural change is safe because lookup probes every
// region molecule hierarchically regardless of row.
func (r *Region) compactRows() {
	out := r.rows[:0]
	outMiss := r.rowMiss[:0]
	for i, row := range r.rows {
		if len(row) == 0 {
			continue
		}
		out = append(out, row)
		outMiss = append(outMiss, r.rowMiss[i])
	}
	r.rows = out
	r.rowMiss = outMiss
	for i, row := range r.rows {
		for _, m := range row {
			m.row = i
		}
	}
}

// growthRow chooses the row a newly allocated molecule should join,
// implementing the paper's "add along the rows with the highest miss
// count" (Randy / LRU-Direct) and "single logical row" (Random)
// placement. It may return len(rows) to open a fresh row when the
// miss pressure is evenly spread and the view still has headroom.
func (r *Region) growthRow() int {
	if r.policy == RandomReplacement {
		return 0
	}
	if len(r.rows) == 0 {
		return 0
	}
	// Highest misses-per-molecule row wins.
	best, bestScore := 0, -1.0
	var total uint64
	for i, row := range r.rows {
		total += r.rowMiss[i]
		score := float64(r.rowMiss[i]) / float64(len(row))
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	// Widen-first: constraining victims to a row only works when rows
	// are wide enough that placement has slack, so a new row (growing
	// the configured way size, rowMax) only opens once the average row
	// width reaches rowWidenThreshold and no row's per-molecule miss
	// count stands out. Opening rows too eagerly leaves every row thin
	// and permanently conflict-bound.
	if len(r.rows) < maxRows && total > 0 && r.count >= rowWidenThreshold*len(r.rows) {
		avgPerMol := float64(total) / float64(r.count)
		if bestScore < 2*avgPerMol {
			return len(r.rows)
		}
	}
	return best
}

// withdrawCandidate picks the molecule to withdraw: the one that "holds
// the least number of addresses" (fewest valid lines), with the paper's
// per-epoch replacement counter as the tie-break. (The paper approximates
// content with the replacement counter alone; counting valid lines
// implements its stated rationale exactly and avoids withdrawing a
// stable, fully hot molecule just because nothing evicts from it — the
// "cold miss compensation" refinement the paper points at.) Rows are
// never thinned
// below two molecules while wider rows exist — a one-molecule row turns
// its whole address slice direct-mapped and thrashes. Returns nil for an
// empty or single-molecule region (a partition never shrinks to zero).
func (r *Region) withdrawCandidate() *Molecule {
	if r.count <= 1 {
		return nil
	}
	pick := func(minWidth int) *Molecule {
		var best *Molecule
		bestLines := 0
		for _, row := range r.rows {
			if len(row) < minWidth {
				continue
			}
			for _, m := range row {
				lines := m.validLines()
				if best == nil || lines < bestLines ||
					(lines == bestLines && m.missCount < best.missCount) {
					best, bestLines = m, lines
				}
			}
		}
		return best
	}
	if m := pick(3); m != nil {
		return m
	}
	return pick(0)
}

// rowWidenThreshold is the average row width required before the
// replacement view opens another row.
const rowWidenThreshold = 1 << 30
