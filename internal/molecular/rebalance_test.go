package molecular

import (
	"testing"

	"molcache/internal/addr"
	"molcache/internal/noc"
	"molcache/internal/trace"
)

func TestRebalanceMovesColdToHot(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 12})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Rows()); got != 4 {
		t.Fatalf("rows = %d, want 4", got)
	}
	// Manufacture decisive imbalance: all replacement pressure on row 0.
	r.rowMiss[0] = 1000
	before := r.Rows()
	if !c.Rebalance(r) {
		t.Fatal("Rebalance refused a decisive imbalance")
	}
	after := r.Rows()
	if after[0] != before[0]+1 {
		t.Errorf("hot row width %d -> %d, want +1", before[0], after[0])
	}
	total := 0
	for _, w := range after {
		total += w
	}
	if total != 12 {
		t.Errorf("total molecules changed: %v", after)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceRefusesMarginalImbalance(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, _ := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 8})
	// Mild, even pressure: no move is worth a molecule flush.
	for i := range r.rowMiss {
		r.rowMiss[i] = 3
	}
	if c.Rebalance(r) {
		t.Error("Rebalance moved a molecule on marginal imbalance")
	}
}

func TestRebalanceNoOpForRandom(t *testing.T) {
	c := MustNew(smallConfig(RandomReplacement))
	r, _ := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 8})
	r.rowMiss[0] = 1000
	if c.Rebalance(r) {
		t.Error("Rebalance acted on a single-row (Random) region")
	}
}

func TestRebalanceKeepsDataReachable(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, _ := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 12})
	// Fill some lines, then rebalance; lines in untouched molecules must
	// still hit (the moved molecule is flushed, the rest keep serving).
	var addrs []uint64
	for a := uint64(0); a < 32*addr.KB; a += 64 {
		c.Access(trace.Ref{Addr: a, ASID: 1, Kind: trace.Read})
		addrs = append(addrs, a)
	}
	r.rowMiss[0] += 1000
	if !c.Rebalance(r) {
		t.Fatal("Rebalance refused")
	}
	hits := 0
	for _, a := range addrs {
		if c.Access(trace.Ref{Addr: a, ASID: 1, Kind: trace.Read}).Hit {
			hits++
		}
	}
	// One molecule (128 lines max) was flushed; most lines must survive.
	if hits < len(addrs)/2 {
		t.Errorf("only %d/%d lines survived a single-molecule rebalance", hits, len(addrs))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTileReleaseForeignPanics(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	t0 := c.Clusters()[0].Tiles()[0]
	t1 := c.Clusters()[0].Tiles()[1]
	m := t1.takeFree()
	m.owned = false
	defer func() {
		if recover() == nil {
			t.Fatal("release to a foreign tile did not panic")
		}
	}()
	t0.release(m)
}

func TestFreeInCluster(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, _ := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 8})
	if got := c.FreeInCluster(r); got != 24 {
		t.Errorf("FreeInCluster = %d, want 24", got)
	}
}

func TestInterconnectAccountsRemoteTraffic(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	mesh, err := noc.ForTiles(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachInterconnect(mesh); err != nil {
		t.Fatal(err)
	}
	// A region spanning two tiles: remote probes must ride the mesh.
	r, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Grow(r, 4); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 1024*1024; a += 64 {
		c.Access(trace.Ref{Addr: a, ASID: 1, Kind: trace.Read})
	}
	if mesh.Stats().Messages == 0 {
		t.Error("no mesh traffic despite a spanning region")
	}
	if c.RemoteCycles() == 0 {
		t.Error("no remote latency accounted")
	}
	if mesh.Energy() <= 0 {
		t.Error("no wire energy accounted")
	}
}

func TestAttachInterconnectTooSmall(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	mesh, err := noc.New(1, 2, 0, 0) // 2 nodes for 4 tiles
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachInterconnect(mesh); err == nil {
		t.Error("undersized mesh accepted")
	}
}

func TestRehomeKeepsDataReachable(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	if _, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 4}); err != nil {
		t.Fatal(err)
	}
	var addrs []uint64
	for a := uint64(0); a < 16*addr.KB; a += 64 {
		c.Access(trace.Ref{Addr: a, ASID: 1, Kind: trace.Write})
		addrs = append(addrs, a)
	}
	if err := c.Rehome(1, 2); err != nil {
		t.Fatal(err)
	}
	if c.Region(1).HomeTile().ID() != 2 {
		t.Errorf("home tile = %d, want 2", c.Region(1).HomeTile().ID())
	}
	// Everything cached before the context switch must still hit —
	// now via the Ulmo's remote sweep.
	for _, a := range addrs {
		res := c.Access(trace.Ref{Addr: a, ASID: 1, Kind: trace.Read})
		if !res.Hit {
			t.Fatalf("line %#x lost after rehoming", a)
		}
		if !res.RemoteTileHit {
			t.Fatalf("line %#x served locally; molecules should be remote now", a)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRehomeValidation(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	if err := c.Rehome(9, 0); err == nil {
		t.Error("rehoming a missing region succeeded")
	}
	c.Access(trace.Ref{Addr: 0, ASID: 1, Kind: trace.Read})
	if err := c.Rehome(1, 99); err == nil {
		t.Error("out-of-cluster tile accepted")
	}
}
