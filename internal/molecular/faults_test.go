package molecular

import (
	"testing"

	"molcache/internal/faults"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// warm fills a region with traffic across n distinct lines.
func warm(c *Cache, asid uint16, n int, kind trace.Kind) {
	for i := 0; i < n; i++ {
		c.Access(ref(asid, uint64(i)*64, kind))
	}
}

func TestRetireOwnedMolecule(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, err := c.CreateRegion(7, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 4})
	if err != nil {
		t.Fatal(err)
	}
	warm(c, 7, 512, trace.Write)
	before := r.MoleculeCount()

	// Pick an owned molecule with resident lines.
	var victim *Molecule
	for _, m := range r.molecules() {
		if m.validLines() > 0 {
			victim = m
			break
		}
	}
	if victim == nil {
		t.Fatal("no owned molecule holds lines after warmup")
	}
	lines := victim.validLines()

	rep, err := c.RetireMolecule(victim.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WasOwned || rep.ASID != 7 {
		t.Errorf("report = %+v, want owned by ASID 7", rep)
	}
	if rep.LinesLost != lines {
		t.Errorf("LinesLost = %d, want %d", rep.LinesLost, lines)
	}
	if rep.Writebacks == 0 {
		t.Errorf("write-warmed molecule retired with zero writebacks")
	}
	if rep.RegionSize != before-1 || r.MoleculeCount() != before-1 {
		t.Errorf("region size = %d, want %d", r.MoleculeCount(), before-1)
	}
	if !victim.Failed() || victim.Owned() || victim.validLines() != 0 {
		t.Errorf("victim state after retire: failed=%v owned=%v lines=%d",
			victim.Failed(), victim.Owned(), victim.validLines())
	}
	for _, f := range victim.Tile().FreeList() {
		if f == victim {
			t.Error("retired molecule re-entered the free pool")
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants after retire: %v", err)
	}
	if got := c.Degradation().RetiredMolecules; got != 1 {
		t.Errorf("RetiredMolecules = %d, want 1", got)
	}

	// The cache keeps serving the region's traffic.
	warm(c, 7, 512, trace.Read)
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants after post-retire traffic: %v", err)
	}
}

func TestRetireFreeMoleculeAndErrors(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	free := c.clusters[0].tiles[0].free
	m := free[len(free)-1]
	if _, err := c.RetireMolecule(m.ID()); err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Tile().FreeList() {
		if f == m {
			t.Error("retired molecule still on free list")
		}
	}
	if _, err := c.RetireMolecule(m.ID()); err == nil {
		t.Error("double retire succeeded, want error")
	}
	if _, err := c.RetireMolecule(-1); err == nil {
		t.Error("retire of molecule -1 succeeded, want error")
	}
	if _, err := c.RetireMolecule(c.TotalMolecules()); err == nil {
		t.Error("retire past the last molecule succeeded, want error")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestRetireWholeRegionBypassesAndRegrows(t *testing.T) {
	cfg := smallConfig(RandyReplacement)
	cfg.InitialMolecules = 2
	c := MustNew(cfg)
	r, err := c.CreateRegion(3, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 2})
	if err != nil {
		t.Fatal(err)
	}
	warm(c, 3, 64, trace.Read)
	for _, m := range r.molecules() {
		if _, err := c.RetireMolecule(m.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if r.MoleculeCount() != 0 {
		t.Fatalf("region size = %d after full retirement", r.MoleculeCount())
	}
	// The next miss re-grows from healthy spares instead of dying.
	res := c.Access(ref(3, 0, trace.Read))
	if res.Hit {
		t.Error("hit against an empty region")
	}
	if r.MoleculeCount() == 0 {
		t.Error("region did not re-grow from spares")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestRetireEverythingServesUncached(t *testing.T) {
	cfg := smallConfig(RandyReplacement)
	cfg.InitialMolecules = 2
	c := MustNew(cfg)
	if _, err := c.CreateRegion(3, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 2}); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.TotalMolecules(); id++ {
		if _, err := c.RetireMolecule(id); err != nil {
			t.Fatal(err)
		}
	}
	// Every access now bypasses; none may panic or fill.
	for i := 0; i < 32; i++ {
		if res := c.Access(ref(3, uint64(i)*64, trace.Write)); res.Hit {
			t.Fatal("hit with all molecules retired")
		}
	}
	if c.Degradation().UncachedBypasses == 0 {
		t.Error("no bypasses counted with all molecules retired")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestCorruptLine(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	r, err := c.CreateRegion(5, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(ref(5, 0, trace.Write))
	var m *Molecule
	for _, x := range r.molecules() {
		if x.contains(0) {
			m = x
			break
		}
	}
	if m == nil {
		t.Fatal("block 0 not resident after write")
	}
	wasValid, wasDirty, err := c.CorruptLine(m.ID(), m.index(0))
	if err != nil || !wasValid || !wasDirty {
		t.Fatalf("CorruptLine = (%v,%v,%v), want dirty valid line lost", wasValid, wasDirty, err)
	}
	if m.contains(0) {
		t.Error("corrupted line still resident")
	}
	// The line refetches on next touch: miss, then hit.
	if res := c.Access(ref(5, 0, trace.Read)); res.Hit {
		t.Error("hit on corrupted line")
	}
	if res := c.Access(ref(5, 0, trace.Read)); !res.Hit {
		t.Error("miss after refetch")
	}
	d := c.Degradation()
	if d.LineCorruptions != 1 || d.DirtyCorruptions != 1 {
		t.Errorf("corruption counters = %+v", d)
	}
	if _, _, err := c.CorruptLine(m.ID(), int(c.linesPerMol)); err == nil {
		t.Error("out-of-range line accepted")
	}
	if _, _, err := c.CorruptLine(c.TotalMolecules(), 0); err == nil {
		t.Error("out-of-range molecule accepted")
	}
}

func TestCampaignDrivenFaults(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	if _, err := c.CreateRegion(1, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 4}); err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(256)
	c.AttachTelemetry(tr, nil)
	inj, err := faults.NewInjector(faults.Campaign{
		Seed: 42,
		MoleculeFailures: []faults.MoleculeFailure{
			{At: 10, Molecule: 0},
			{At: 10, Molecule: 1},
			{At: 20, Molecule: 2},
		},
		LineCorruptions: []faults.LineCorruption{{At: 15, Molecule: 3, Line: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachFaults(inj); err != nil {
		t.Fatal(err)
	}
	warm(c, 1, 30, trace.Read)
	if got := c.Degradation().RetiredMolecules; got != 3 {
		t.Errorf("RetiredMolecules = %d, want 3", got)
	}
	for _, id := range []int{0, 1, 2} {
		if !c.Molecule(id).Failed() {
			t.Errorf("molecule %d not retired", id)
		}
	}
	if inj.PendingFailures() != 0 {
		t.Errorf("pending failures = %d, want 0", inj.PendingFailures())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
	// The tracer saw the retirement events at the scheduled access counts.
	var retires []telemetry.Event
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindMoleculeRetire {
			retires = append(retires, e)
		}
	}
	if len(retires) != 3 || retires[0].At != 10 || retires[2].At != 20 {
		t.Errorf("retire events = %+v", retires)
	}
}

func TestNoCDelayRetriesAndAbandon(t *testing.T) {
	cfg := smallConfig(RandyReplacement)
	c := MustNew(cfg)
	r, err := c.CreateRegion(9, RegionOptions{HomeCluster: 0, HomeTile: 0, InitialMolecules: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Force capacity onto a sibling tile so stage 2 traversals happen.
	if _, err := c.Grow(r, 8); err != nil {
		t.Fatal(err)
	}
	if len(r.TileCounts()) < 2 {
		t.Fatal("region did not spill to a sibling tile")
	}

	// Recoverable delay: retries paid, lookups still complete.
	inj, err := faults.NewInjector(faults.Campaign{
		NoCDelays: []faults.NoCDelay{
			{At: 1, Duration: 50, ExtraCycles: 7, DropAttempts: 2},
			{At: 200, Duration: 50, ExtraCycles: 3, DropAttempts: 99},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachFaults(inj); err != nil {
		t.Fatal(err)
	}
	warm(c, 9, 300, trace.Read)
	d := c.Degradation()
	if d.NoCRetries == 0 {
		t.Error("no NoC retries under a delay window")
	}
	if d.NoCAbandonedLookups == 0 {
		t.Error("no abandoned lookups under a drop-forever window")
	}
	if d.UncachedBypasses == 0 {
		t.Error("no uncached bypasses under a drop-forever window")
	}
	// Bypassing misses under unreachable tiles must never duplicate a
	// line: the structural invariants hold throughout and after.
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestFaultFreePathUnchanged(t *testing.T) {
	run := func(attach bool) (uint64, uint64) {
		c := MustNew(smallConfig(RandyReplacement))
		if attach {
			inj, err := faults.NewInjector(faults.Campaign{})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.AttachFaults(inj); err != nil {
				t.Fatal(err)
			}
		}
		warm(c, 2, 4096, trace.Read)
		warm(c, 2, 4096, trace.Write)
		hm := c.Ledger().Total
		return hm.Hits, hm.Misses
	}
	h0, m0 := run(false)
	h1, m1 := run(true)
	if h0 != h1 || m0 != m1 {
		t.Errorf("empty campaign perturbed results: (%d,%d) vs (%d,%d)", h0, m0, h1, m1)
	}
}

func TestDetachFaultsRestoresNormalPath(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	inj, err := faults.NewInjector(faults.Campaign{
		MoleculeFailures: []faults.MoleculeFailure{{At: 1000, Molecule: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachFaults(inj); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachFaults(nil); err != nil {
		t.Fatal(err)
	}
	warm(c, 1, 2000, trace.Read)
	if got := c.Degradation().RetiredMolecules; got != 0 {
		t.Errorf("detached injector still fired: %d retirements", got)
	}
}

// TestBadGeometryCampaign checks that a campaign whose explicit targets
// exceed the cache geometry attaches cleanly (targets dropped, counted).
func TestBadGeometryCampaign(t *testing.T) {
	c := MustNew(smallConfig(RandyReplacement))
	inj, err := faults.NewInjector(faults.Campaign{
		MoleculeFailures: []faults.MoleculeFailure{{At: 1, Molecule: 10_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachFaults(inj); err != nil {
		t.Fatal(err)
	}
	warm(c, 1, 10, trace.Read)
	if got := c.Degradation().RetiredMolecules; got != 0 {
		t.Errorf("out-of-range target retired %d molecules", got)
	}
	if inj.Stats().SkippedOutOfRange != 1 {
		t.Errorf("SkippedOutOfRange = %d, want 1", inj.Stats().SkippedOutOfRange)
	}
}
