package invariant

import (
	"molcache/internal/cmp"
	"molcache/internal/coherence"
	"molcache/internal/molecular"
)

// CaptureCache snapshots a molecular cache's structural state: every
// molecule with its assignment bits and resident blocks, every region's
// replacement view and tile index. Read-only.
func CaptureCache(c *molecular.Cache) Snapshot {
	s := Snapshot{
		TotalMolecules:  c.TotalMolecules(),
		TilesPerCluster: c.Config().TilesPerCluster,
	}
	for _, cl := range c.Clusters() {
		for _, t := range cl.Tiles() {
			free := make(map[int]bool, t.FreeCount())
			for _, m := range t.FreeList() {
				free[m.ID()] = true
			}
			for _, m := range t.Molecules() {
				s.Molecules = append(s.Molecules, MoleculeState{
					ID:     m.ID(),
					Tile:   t.ID(),
					ASID:   m.ASID(),
					Owned:  m.Owned(),
					Shared: m.Shared(),
					Failed: m.Failed(),
					Free:   free[m.ID()],
					Row:    m.Row(),
					Blocks: m.ValidBlocks(),
				})
			}
		}
	}
	for _, r := range c.Regions() {
		s.Regions = append(s.Regions, RegionState{
			ASID:       r.ASID(),
			Count:      r.MoleculeCount(),
			HomeTile:   r.HomeTile().ID(),
			Rows:       r.RowMolecules(),
			TileCounts: r.TileCounts(),
			Index:      r.IndexSnapshot(),
		})
	}
	return s
}

// CaptureSystem snapshots a CMP: the shared L2's structure (when it is
// a molecular cache) plus the MESI directory and every private L1's
// resident lines for the coherence-legality rules. Read-only.
func CaptureSystem(sys *cmp.System) Snapshot {
	var s Snapshot
	if mc, ok := sys.L2().(*molecular.Cache); ok {
		s = CaptureCache(mc)
	}
	sys.Directory().EachLine(func(l coherence.LineInfo) {
		s.DirectoryLines = append(s.DirectoryLines, DirectoryLine{
			Line: l.Line, Sharers: l.Sharers, Owner: l.Owner, Dirty: l.Dirty,
		})
	})
	sys.EachL1Line(func(coreID int, a uint64, dirty bool) {
		s.L1Lines = append(s.L1Lines, L1Line{Cache: coreID, Line: a, Dirty: dirty})
	})
	return s
}

// CacheSource adapts a molecular cache into a Checker Source.
func CacheSource(c *molecular.Cache) Source {
	return func() Snapshot { return CaptureCache(c) }
}

// SystemSource adapts a CMP system into a Checker Source.
func SystemSource(sys *cmp.System) Source {
	return func() Snapshot { return CaptureSystem(sys) }
}
