package invariant

import (
	"strings"
	"testing"

	"molcache/internal/addr"
	"molcache/internal/cmp"
	"molcache/internal/molecular"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

// healthy builds a small, consistent snapshot: two regions of two
// molecules each on tiles 0 and 1, two free molecules, one retired.
func healthy() Snapshot {
	return Snapshot{
		TotalMolecules:  7,
		TilesPerCluster: 4,
		Molecules: []MoleculeState{
			{ID: 0, Tile: 0, ASID: 1, Owned: true, Row: 0, Blocks: []uint64{0x10, 0x20}},
			{ID: 1, Tile: 0, ASID: 1, Owned: true, Row: 0, Blocks: []uint64{0x31}},
			{ID: 2, Tile: 1, ASID: 2, Owned: true, Row: 0, Blocks: []uint64{0x10}},
			{ID: 3, Tile: 1, ASID: 2, Owned: true, Row: 1, Blocks: nil},
			{ID: 4, Tile: 0, Free: true},
			{ID: 5, Tile: 1, Free: true},
			{ID: 6, Tile: 0, Failed: true, Row: -1},
		},
		Regions: []RegionState{
			{ASID: 1, Count: 2, HomeTile: 0, Rows: [][]int{{0, 1}},
				TileCounts: map[int]int{0: 2}},
			{ASID: 2, Count: 2, HomeTile: 1, Rows: [][]int{{2}, {3}},
				TileCounts: map[int]int{1: 2}},
		},
	}
}

func rules(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.Rule)
		b.WriteString(";")
	}
	return b.String()
}

func wantRule(t *testing.T, vs []Violation, rule string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			return
		}
	}
	t.Errorf("no %q violation; got [%s]", rule, rules(vs))
}

func TestHealthySnapshotIsClean(t *testing.T) {
	if vs := Check(healthy()); len(vs) != 0 {
		t.Errorf("clean snapshot flagged: %v", vs)
	}
}

func TestCrossRegionResidencyIsLegal(t *testing.T) {
	// Molecules 0 (region 1) and 2 (region 2) both hold block 0x10 in
	// the healthy snapshot — legitimate cross-ASID residency.
	vs := Check(healthy())
	for _, v := range vs {
		if v.Rule == "duplicate-line" {
			t.Errorf("cross-region residency flagged: %v", v)
		}
	}
}

func TestDuplicateLineInOneRegion(t *testing.T) {
	s := healthy()
	// Molecule 1 now also holds 0x20, duplicating molecule 0's line
	// inside region 1's lookup domain.
	s.Molecules[1].Blocks = append(s.Molecules[1].Blocks, 0x20)
	wantRule(t, Check(s), "duplicate-line")
}

func TestSharedMoleculeDuplicateInDomain(t *testing.T) {
	s := healthy()
	// A shared molecule on the same cluster holding region 1's 0x10.
	s.TotalMolecules = 8
	s.Molecules = append(s.Molecules, MoleculeState{
		ID: 7, Tile: 2, ASID: SharedASID, Owned: true, Shared: true, Row: 0,
		Blocks: []uint64{0x10},
	})
	s.Regions = append(s.Regions, RegionState{
		ASID: SharedASID, Count: 1, HomeTile: 2, Rows: [][]int{{7}},
		TileCounts: map[int]int{2: 1},
	})
	wantRule(t, Check(s), "duplicate-line")
}

func TestDoubleOwnedMolecule(t *testing.T) {
	s := healthy()
	// Region 2 claims molecule 0, which region 1 already owns.
	s.Regions[1].Rows = [][]int{{2}, {3, 0}}
	s.Regions[1].Count = 3
	s.Regions[1].TileCounts = map[int]int{1: 2, 0: 1}
	vs := Check(s)
	wantRule(t, vs, "molecule-accounting")
	wantRule(t, vs, "asid-isolation") // molecule 0 carries ASID 1 inside region 2
}

func TestOrphanedOwnedMolecule(t *testing.T) {
	s := healthy()
	// Molecule 4 claims to be owned but sits in no region's rows.
	s.Molecules[4] = MoleculeState{ID: 4, Tile: 0, ASID: 9, Owned: true, Row: 0}
	wantRule(t, Check(s), "molecule-accounting")
}

func TestASIDLeak(t *testing.T) {
	s := healthy()
	// Molecule 2 flips to ASID 1 while still in region 2's view — its
	// decode stage would now serve the wrong application.
	s.Molecules[2].ASID = 1
	wantRule(t, Check(s), "asid-isolation")
}

func TestFreeAndOwnedSimultaneously(t *testing.T) {
	s := healthy()
	s.Molecules[0].Free = true
	wantRule(t, Check(s), "molecule-accounting")
}

func TestRetiredMoleculeHoldsLines(t *testing.T) {
	s := healthy()
	s.Molecules[6].Blocks = []uint64{0x99}
	wantRule(t, Check(s), "retired-state")
}

func TestAccountingSumBroken(t *testing.T) {
	s := healthy()
	s.TotalMolecules = 9 // two molecules unaccounted for
	wantRule(t, Check(s), "molecule-accounting")
}

func TestEmptyRowAndBadTileIndex(t *testing.T) {
	s := healthy()
	s.Regions[1].Rows = [][]int{{2, 3}, {}}
	vs := Check(s)
	wantRule(t, vs, "region-accounting")

	s = healthy()
	s.Regions[0].TileCounts = map[int]int{0: 1, 3: 1}
	wantRule(t, Check(s), "region-accounting")
}

func TestRowFieldMismatch(t *testing.T) {
	s := healthy()
	s.Molecules[3].Row = 5
	wantRule(t, Check(s), "region-accounting")
}

func TestIllegalCoherencePairs(t *testing.T) {
	cases := []struct {
		name string
		dir  []DirectoryLine
		l1   []L1Line
	}{
		{"owner outside sharers", []DirectoryLine{{Line: 0x40, Sharers: 0b10, Owner: 0}}, nil},
		{"dirty without owner", []DirectoryLine{{Line: 0x40, Sharers: 0b11, Owner: -1, Dirty: true}}, nil},
		{"owner beside sharers", []DirectoryLine{{Line: 0x40, Sharers: 0b11, Owner: 0}}, nil},
		{"entry with no sharers", []DirectoryLine{{Line: 0x40, Sharers: 0, Owner: -1}}, nil},
		{"untracked L1 line", nil, []L1Line{{Cache: 0, Line: 0x40}}},
		{"L1 holder outside sharers",
			[]DirectoryLine{{Line: 0x40, Sharers: 0b01, Owner: 0}},
			[]L1Line{{Cache: 1, Line: 0x40}}},
		{"L1 dirty but directory clean",
			[]DirectoryLine{{Line: 0x40, Sharers: 0b01, Owner: 0, Dirty: false}},
			[]L1Line{{Cache: 0, Line: 0x40, Dirty: true}}},
		{"L1 dirty but foreign owner",
			[]DirectoryLine{{Line: 0x40, Sharers: 0b11, Owner: -1, Dirty: false}},
			[]L1Line{{Cache: 1, Line: 0x40, Dirty: true}}},
	}
	for _, tc := range cases {
		vs := Check(Snapshot{DirectoryLines: tc.dir, L1Lines: tc.l1})
		found := false
		for _, v := range vs {
			if v.Rule == "coherence-legality" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: not flagged (got [%s])", tc.name, rules(vs))
		}
	}
	// And the legal states stay quiet.
	clean := Snapshot{
		DirectoryLines: []DirectoryLine{
			{Line: 0x40, Sharers: 0b01, Owner: 0, Dirty: true},  // M
			{Line: 0x80, Sharers: 0b01, Owner: 0, Dirty: false}, // E
			{Line: 0xc0, Sharers: 0b11, Owner: -1},              // S,S
		},
		L1Lines: []L1Line{
			{Cache: 0, Line: 0x40, Dirty: true},
			{Cache: 0, Line: 0x80},
			{Cache: 0, Line: 0xc0},
			{Cache: 1, Line: 0xc0},
		},
	}
	if vs := Check(clean); len(vs) != 0 {
		t.Errorf("legal MESI states flagged: %v", vs)
	}
}

func TestCaptureCacheCleanAndCorrupted(t *testing.T) {
	cfg := molecular.Config{
		TotalSize:       256 * addr.KB,
		MoleculeSize:    8 * addr.KB,
		TilesPerCluster: 4,
		Seed:            7,
	}
	c := molecular.MustNew(cfg)
	for i := 0; i < 4096; i++ {
		c.Access(trace.Ref{Addr: uint64(i%1024) * 64, ASID: uint16(i % 3), Kind: trace.Read})
	}
	if vs := Check(CaptureCache(c)); len(vs) != 0 {
		t.Fatalf("live cache flagged: %v", vs)
	}
	// Retire a molecule mid-flight and keep going: still clean.
	if _, err := c.RetireMolecule(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		c.Access(trace.Ref{Addr: uint64(i%1024) * 64, ASID: uint16(i % 3), Kind: trace.Write})
	}
	if vs := Check(CaptureCache(c)); len(vs) != 0 {
		t.Fatalf("cache flagged after retirement: %v", vs)
	}
}

func TestCaptureSystemClean(t *testing.T) {
	l2 := molecular.MustNew(molecular.Config{
		TotalSize:       256 * addr.KB,
		MoleculeSize:    8 * addr.KB,
		TilesPerCluster: 4,
		Seed:            7,
	})
	sys := cmp.MustNew(l2, cmp.Config{})
	for i, name := range []string{"art", "mcf", "parser"} {
		g, err := workload.New(name, uint64(i)<<36, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AddCore(uint16(i), g); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run(20000)
	if vs := Check(CaptureSystem(sys)); len(vs) != 0 {
		t.Fatalf("live CMP flagged: %v", vs)
	}
}

func TestCheckerCadence(t *testing.T) {
	calls := 0
	src := func() Snapshot { calls++; return healthy() }
	ck := NewChecker(src, 10)
	for i := 0; i < 35; i++ {
		if vs := ck.Tick(); vs != nil {
			t.Fatalf("clean source produced violations: %v", vs)
		}
	}
	if calls != 3 || ck.Runs() != 3 {
		t.Errorf("audits = %d (runs %d), want 3", calls, ck.Runs())
	}
	bad := healthy()
	bad.Molecules[0].Free = true
	ck2 := NewChecker(func() Snapshot { return bad }, 0)
	if vs := ck2.Tick(); vs != nil {
		t.Error("Tick fired with cadence 0")
	}
	if vs := ck2.Run(); len(vs) == 0 {
		t.Error("on-demand Run missed the corruption")
	}
	if !strings.Contains(ck2.Summary(), "molecule-accounting") {
		t.Errorf("summary %q missing rule breakdown", ck2.Summary())
	}
}
