package invariant

// Tests of rule 7 (index-consistency): the fast-path block index a
// RegionState carries must be exactly the residency relation of the
// region's molecules. Hand-built snapshots pin each failure shape; the
// live-capture test confirms a real cache's index audits clean and that
// capture actually populates the Index field (a nil Index would skip
// the rule silently and the oracle would be vacuous).

import (
	"testing"

	"molcache/internal/addr"
	"molcache/internal/molecular"
	"molcache/internal/trace"
)

// indexed returns the healthy snapshot with both regions' indexes
// populated to mirror their molecules' blocks exactly.
func indexed() Snapshot {
	s := healthy()
	s.Regions[0].Index = map[uint64]int{0x10: 0, 0x20: 0, 0x31: 1}
	s.Regions[1].Index = map[uint64]int{0x10: 2}
	return s
}

func TestIndexedHealthySnapshotIsClean(t *testing.T) {
	if vs := Check(indexed()); len(vs) != 0 {
		t.Errorf("clean indexed snapshot flagged: %v", vs)
	}
}

func TestNilIndexSkipsRule(t *testing.T) {
	// healthy() carries no Index at all; rule 7 must stay silent.
	for _, v := range Check(healthy()) {
		if v.Rule == "index-consistency" {
			t.Errorf("nil index flagged: %v", v)
		}
	}
}

func TestIndexMissingResidentBlock(t *testing.T) {
	s := indexed()
	delete(s.Regions[0].Index, 0x20)
	wantRule(t, Check(s), "index-consistency")
}

func TestIndexNamesWrongHolder(t *testing.T) {
	s := indexed()
	s.Regions[0].Index[0x20] = 1
	wantRule(t, Check(s), "index-consistency")
}

func TestIndexHoldsStaleEntry(t *testing.T) {
	// An entry for a block no molecule holds: the per-block pass cannot
	// see it, but the cardinality comparison must.
	s := indexed()
	s.Regions[1].Index[0x99] = 2
	wantRule(t, Check(s), "index-consistency")
}

func TestCaptureCachePopulatesIndex(t *testing.T) {
	c := molecular.MustNew(molecular.Config{
		TotalSize:       256 * addr.KB,
		MoleculeSize:    8 * addr.KB,
		TilesPerCluster: 4,
		Seed:            7,
	})
	for i := 0; i < 4096; i++ {
		c.Access(trace.Ref{Addr: uint64(i%1024) * 64, ASID: uint16(i % 3), Kind: trace.Read})
	}
	s := CaptureCache(c)
	for _, r := range s.Regions {
		if r.Index == nil {
			t.Fatalf("region %d captured without an index; rule 7 would be skipped", r.ASID)
		}
		if len(r.Index) == 0 {
			t.Fatalf("region %d captured an empty index after 4096 accesses", r.ASID)
		}
	}
	if vs := Check(s); len(vs) != 0 {
		t.Fatalf("live cache index flagged: %v", vs)
	}
	// Corrupt one captured entry and the rule must fire.
	for b := range s.Regions[0].Index {
		s.Regions[0].Index[b] = -1
		break
	}
	wantRule(t, Check(s), "index-consistency")
}
