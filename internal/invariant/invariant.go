// Package invariant audits simulator state for structural corruption.
// It is the repository's safety net for the fault-injection work: after
// molecules are retired, lines corrupted and lookups abandoned
// mid-flight, the cache must still satisfy the architecture's structural
// rules. The checker is split in two pure layers so both are testable:
//
//   - Snapshot is a plain-data view of the state under audit. Capture
//     adapters build one from a live molecular.Cache or cmp.System;
//     tests construct known-bad snapshots by hand.
//   - Check walks a Snapshot and returns every Violation it finds. It
//     never mutates anything and holds no references into the live
//     simulator.
//
// The rules checked:
//
//  1. Every molecule is in exactly one of three states — owned by a
//     region, on its tile's free list, or retired — and the three
//     populations sum to the cache's total.
//  2. No line is resident in two molecules of the same lookup domain
//     (a region's own molecules plus the shared region's molecules in
//     its home cluster). Duplicates would go silently stale. The same
//     physical block MAY be resident in two different regions — that is
//     legitimate cross-ASID residency, not a violation.
//  3. ASID isolation: a non-shared molecule only ever appears under the
//     region whose ASID it carries.
//  4. Region accounting: the replacement view's rows are non-empty,
//     row indices agree, the per-tile index sums to the region count.
//  5. Retired molecules hold no lines, are not owned, and sit on no
//     free list.
//  6. Coherence legality: a directory entry has at least one sharer;
//     an owner is always a sharer; a dirty line has an owner; multiple
//     sharers mean no owner (no M/E beside S). An L1 copy is always in
//     the directory's sharer set, and a dirty L1 copy means that cache
//     owns the line dirty in the directory (the directory is allowed to
//     be a conservative superset of the L1s, never the reverse).
//  7. Index consistency: a region's fast-path block index names exactly
//     the resident lines of the region's molecules — every resident
//     line indexed to its holder, nothing else indexed. Skipped for
//     snapshots captured without an index (RegionState.Index nil).
//
// A Checker wraps Capture + Check with an every-N-accesses cadence for
// in-loop auditing (cmd/molsim's -check-invariants flag).
package invariant

import (
	"fmt"
	"math/bits"
	"sort"
)

// MoleculeState is one molecule's audited view.
type MoleculeState struct {
	// ID is the global molecule number; Tile its physical tile.
	ID, Tile int
	// ASID is the owning application (meaningful while Owned).
	ASID uint16
	// Owned, Shared, Failed mirror the molecule's assignment bits.
	Owned, Shared, Failed bool
	// Free reports free-list membership.
	Free bool
	// Row is the replacement-view row (-1 when unowned).
	Row int
	// Blocks are the resident lines' block numbers.
	Blocks []uint64
}

// RegionState is one region's audited view.
type RegionState struct {
	// ASID identifies the partition.
	ASID uint16
	// Count is the region's molecule count.
	Count int
	// HomeTile is the region's home tile ID.
	HomeTile int
	// Rows is the replacement view as molecule IDs, row-major.
	Rows [][]int
	// TileCounts is the per-tile molecule count index.
	TileCounts map[int]int
	// Index is the fast-path block index as block → molecule ID (nil
	// skips the index-consistency rule).
	Index map[uint64]int
}

// DirectoryLine is one MESI directory entry's audited view.
type DirectoryLine struct {
	// Line is the tracked (line-aligned) address.
	Line uint64
	// Sharers is the holder bitmask; Owner the single E/M holder or -1.
	Sharers uint16
	Owner   int
	// Dirty marks a Modified owner copy.
	Dirty bool
}

// L1Line is one private-cache line's audited view.
type L1Line struct {
	// Cache is the holding core/cache ID.
	Cache int
	// Line is the line-aligned address; Dirty its modified bit.
	Line  uint64
	Dirty bool
}

// SharedASID mirrors molecular.SharedASID so this file — the pure
// checking layer — stays free of simulator imports; only the Capture
// adapters (capture.go) link against the live packages.
const SharedASID uint16 = 0xFFFF

// Snapshot is the full audited view. Zero-valued sections are simply
// not checked, so a molecular-only snapshot omits the coherence fields
// and vice versa.
type Snapshot struct {
	// TotalMolecules is the cache's molecule population (0 skips the
	// accounting sum).
	TotalMolecules int
	// TilesPerCluster maps tiles to clusters for the lookup-domain rule
	// (0 treats all tiles as one cluster).
	TilesPerCluster int
	Molecules       []MoleculeState
	Regions         []RegionState
	DirectoryLines  []DirectoryLine
	L1Lines         []L1Line
}

// Violation is one broken invariant.
type Violation struct {
	// Rule names the invariant ("molecule-accounting", "duplicate-line",
	// "asid-isolation", "region-accounting", "retired-state",
	// "coherence-legality", "index-consistency").
	Rule string
	// Detail says what exactly is wrong, with the IDs involved.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// violations collects with printf convenience.
type violations []Violation

func (vs *violations) add(rule, format string, args ...any) {
	*vs = append(*vs, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// Check audits a snapshot and returns every violation found (nil when
// clean). It is pure: the snapshot is not modified.
func Check(s Snapshot) []Violation {
	var vs violations
	checkMolecules(s, &vs)
	checkRegions(s, &vs)
	checkDuplicateLines(s, &vs)
	checkIndexes(s, &vs)
	checkCoherence(s, &vs)
	return vs
}

// checkMolecules enforces rules 1 and 5.
func checkMolecules(s Snapshot, vs *violations) {
	seen := make(map[int]bool, len(s.Molecules))
	owned, free, failed := 0, 0, 0
	for _, m := range s.Molecules {
		if seen[m.ID] {
			vs.add("molecule-accounting", "molecule %d appears twice in the snapshot", m.ID)
			continue
		}
		seen[m.ID] = true
		states := 0
		if m.Owned {
			states++
			owned++
		}
		if m.Free {
			states++
			free++
		}
		if m.Failed {
			states++
			failed++
		}
		if states != 1 {
			vs.add("molecule-accounting",
				"molecule %d in %d states (owned=%v free=%v failed=%v), want exactly one",
				m.ID, states, m.Owned, m.Free, m.Failed)
		}
		if m.Failed && len(m.Blocks) != 0 {
			vs.add("retired-state", "retired molecule %d holds %d lines", m.ID, len(m.Blocks))
		}
		if m.Free && len(m.Blocks) != 0 {
			vs.add("molecule-accounting", "free molecule %d holds %d lines", m.ID, len(m.Blocks))
		}
	}
	if s.TotalMolecules > 0 && owned+free+failed != s.TotalMolecules {
		vs.add("molecule-accounting", "owned %d + free %d + retired %d != total %d",
			owned, free, failed, s.TotalMolecules)
	}
}

// checkRegions enforces rules 3 and 4.
func checkRegions(s Snapshot, vs *violations) {
	mols := make(map[int]*MoleculeState, len(s.Molecules))
	for i := range s.Molecules {
		mols[s.Molecules[i].ID] = &s.Molecules[i]
	}
	owner := make(map[int]uint16)
	for _, r := range s.Regions {
		n := 0
		tileSums := make(map[int]int)
		for rowIdx, row := range r.Rows {
			if len(row) == 0 {
				vs.add("region-accounting", "region %d row %d is empty", r.ASID, rowIdx)
			}
			for _, id := range row {
				n++
				m := mols[id]
				if m == nil {
					vs.add("region-accounting", "region %d references unknown molecule %d", r.ASID, id)
					continue
				}
				tileSums[m.Tile]++
				if prev, dup := owner[id]; dup {
					vs.add("molecule-accounting", "molecule %d owned by regions %d and %d", id, prev, r.ASID)
				}
				owner[id] = r.ASID
				if !m.Owned {
					vs.add("region-accounting", "molecule %d in region %d but not owned", id, r.ASID)
				}
				if m.ASID != r.ASID {
					vs.add("asid-isolation", "molecule %d carries ASID %d inside region %d",
						id, m.ASID, r.ASID)
				}
				if r.ASID == SharedASID != m.Shared {
					vs.add("asid-isolation", "molecule %d shared bit %v under region %d",
						id, m.Shared, r.ASID)
				}
				if m.Row != rowIdx {
					vs.add("region-accounting", "molecule %d row field %d but sits in row %d of region %d",
						id, m.Row, rowIdx, r.ASID)
				}
			}
		}
		if n != r.Count {
			vs.add("region-accounting", "region %d count %d != %d molecules in rows", r.ASID, r.Count, n)
		}
		if r.TileCounts != nil {
			sum := 0
			for tile, cnt := range r.TileCounts {
				sum += cnt
				if tileSums[tile] != cnt {
					vs.add("region-accounting", "region %d tile %d index says %d molecules, rows hold %d",
						r.ASID, tile, cnt, tileSums[tile])
				}
			}
			if sum != r.Count {
				vs.add("region-accounting", "region %d tile index sums to %d, count is %d",
					r.ASID, sum, r.Count)
			}
		}
	}
	// An owned molecule must belong to some region.
	for _, m := range s.Molecules {
		if m.Owned {
			if _, ok := owner[m.ID]; !ok && len(s.Regions) > 0 {
				vs.add("molecule-accounting", "molecule %d owned (ASID %d) but in no region's rows",
					m.ID, m.ASID)
			}
		}
	}
}

// checkDuplicateLines enforces rule 2 per lookup domain.
func checkDuplicateLines(s Snapshot, vs *violations) {
	mols := make(map[int]*MoleculeState, len(s.Molecules))
	for i := range s.Molecules {
		mols[s.Molecules[i].ID] = &s.Molecules[i]
	}
	cluster := func(tile int) int {
		if s.TilesPerCluster <= 0 {
			return 0
		}
		return tile / s.TilesPerCluster
	}
	var sharedMols []*MoleculeState
	for i := range s.Molecules {
		if s.Molecules[i].Shared && !s.Molecules[i].Failed {
			sharedMols = append(sharedMols, &s.Molecules[i])
		}
	}
	for _, r := range s.Regions {
		// The region's lookup domain: its own molecules, plus the shared
		// region's molecules in its home cluster (those answer every
		// ASID's probes there).
		domain := make(map[uint64]int) // block -> first molecule holding it
		audit := func(m *MoleculeState) {
			for _, b := range m.Blocks {
				if first, dup := domain[b]; dup && first != m.ID {
					vs.add("duplicate-line",
						"block %#x resident in molecules %d and %d of region %d's lookup domain",
						b, first, m.ID, r.ASID)
					continue
				}
				domain[b] = m.ID
			}
		}
		for _, row := range r.Rows {
			for _, id := range row {
				if m := mols[id]; m != nil {
					audit(m)
				}
			}
		}
		if r.ASID != SharedASID {
			for _, m := range sharedMols {
				if cluster(m.Tile) == cluster(r.HomeTile) {
					audit(m)
				}
			}
		}
	}
}

// checkIndexes enforces rule 7: each region's block index mirrors the
// resident lines of its molecules exactly.
func checkIndexes(s Snapshot, vs *violations) {
	mols := make(map[int]*MoleculeState, len(s.Molecules))
	for i := range s.Molecules {
		mols[s.Molecules[i].ID] = &s.Molecules[i]
	}
	for _, r := range s.Regions {
		if r.Index == nil {
			continue
		}
		resident := 0
		for _, row := range r.Rows {
			for _, id := range row {
				m := mols[id]
				if m == nil {
					continue
				}
				for _, b := range m.Blocks {
					resident++
					got, ok := r.Index[b]
					if !ok {
						vs.add("index-consistency",
							"region %d: resident block %#x of molecule %d missing from the index",
							r.ASID, b, id)
					} else if got != id {
						vs.add("index-consistency",
							"region %d: block %#x resident in molecule %d but indexed to %d",
							r.ASID, b, id, got)
					}
				}
			}
		}
		if resident != len(r.Index) {
			vs.add("index-consistency", "region %d: index holds %d entries, %d lines resident",
				r.ASID, len(r.Index), resident)
		}
	}
}

// checkCoherence enforces rule 6.
func checkCoherence(s Snapshot, vs *violations) {
	dir := make(map[uint64]*DirectoryLine, len(s.DirectoryLines))
	for i := range s.DirectoryLines {
		d := &s.DirectoryLines[i]
		if _, dup := dir[d.Line]; dup {
			vs.add("coherence-legality", "line %#x tracked twice in the directory", d.Line)
			continue
		}
		dir[d.Line] = d
		if d.Sharers == 0 {
			vs.add("coherence-legality", "line %#x tracked with no sharers", d.Line)
		}
		if d.Owner >= 0 && d.Sharers&(1<<uint(d.Owner)) == 0 {
			vs.add("coherence-legality", "line %#x owner %d not in sharer mask %#x",
				d.Line, d.Owner, d.Sharers)
		}
		if d.Dirty && d.Owner < 0 {
			vs.add("coherence-legality", "line %#x dirty without an owner", d.Line)
		}
		if d.Owner >= 0 && bits.OnesCount16(d.Sharers) > 1 {
			vs.add("coherence-legality", "line %#x has owner %d beside %d sharers (M/E with S)",
				d.Line, d.Owner, bits.OnesCount16(d.Sharers))
		}
	}
	for _, l := range s.L1Lines {
		d := dir[l.Line]
		if d == nil {
			vs.add("coherence-legality", "cache %d holds line %#x the directory does not track",
				l.Cache, l.Line)
			continue
		}
		if l.Cache >= 0 && d.Sharers&(1<<uint(l.Cache)) == 0 {
			vs.add("coherence-legality", "cache %d holds line %#x but is not in sharer mask %#x",
				l.Cache, l.Line, d.Sharers)
		}
		if l.Dirty && (d.Owner != l.Cache || !d.Dirty) {
			vs.add("coherence-legality",
				"cache %d holds line %#x dirty but directory owner=%d dirty=%v",
				l.Cache, l.Line, d.Owner, d.Dirty)
		}
	}
}

// Source produces snapshots on demand — a live cache or system behind a
// Capture adapter.
type Source func() Snapshot

// Checker runs Check over a Source every N accesses (Tick) or on demand
// (Run), accumulating totals for reporting.
type Checker struct {
	src   Source
	every uint64
	ticks uint64

	runs       uint64
	violations []Violation
}

// NewChecker builds a checker over src that audits every `every` Ticks
// (0 disables Tick-driven audits; Run still works).
func NewChecker(src Source, every uint64) *Checker {
	return &Checker{src: src, every: every}
}

// Tick advances the access counter and audits when due, returning the
// new violations (nil otherwise, and nil on a clean audit).
func (c *Checker) Tick() []Violation {
	c.ticks++
	if c.every == 0 || c.ticks%c.every != 0 {
		return nil
	}
	return c.Run()
}

// Run audits immediately and returns the violations found (nil when
// clean). Found violations are also accumulated for Report.
func (c *Checker) Run() []Violation {
	c.runs++
	vs := Check(c.src())
	c.violations = append(c.violations, vs...)
	return vs
}

// Runs returns how many audits have executed.
func (c *Checker) Runs() uint64 { return c.runs }

// Violations returns every violation accumulated across audits.
func (c *Checker) Violations() []Violation { return c.violations }

// Summary renders a one-line audit summary, with the distinct broken
// rules when any.
func (c *Checker) Summary() string {
	if len(c.violations) == 0 {
		return fmt.Sprintf("%d audits, 0 violations", c.runs)
	}
	rules := make(map[string]int)
	for _, v := range c.violations {
		rules[v.Rule]++
	}
	names := make([]string, 0, len(rules))
	for r := range rules {
		names = append(names, r)
	}
	sort.Strings(names)
	out := fmt.Sprintf("%d audits, %d violations:", c.runs, len(c.violations))
	for _, n := range names {
		out += fmt.Sprintf(" %s=%d", n, rules[n])
	}
	return out
}
