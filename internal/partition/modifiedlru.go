package partition

import (
	"fmt"

	"molcache/internal/addr"
	"molcache/internal/engine"
	"molcache/internal/trace"
)

// ModifiedLRU implements Suh et al.'s partitioning scheme: every process
// carries a cache-wide block quota. On a miss, a process below its quota
// performs a *global* replacement (the set's overall LRU block, whoever
// owns it); a process at or above its quota performs a *local*
// replacement (its own LRU block in the set). Quotas are adjustable at
// run time, which is how Suh's marginal-gain controller drives it.
type ModifiedLRU struct {
	*base
	name string
	// quota is the per-ASID block budget; ASIDs absent from the map use
	// defaultQuota.
	quota        map[uint16]uint64
	defaultQuota uint64
	// held counts resident blocks per ASID.
	held map[uint16]uint64
}

var _ engine.Cache = (*ModifiedLRU)(nil)

// NewModifiedLRU builds the scheme over a size/ways/lineSize geometry.
// defaultQuota is the block budget for ASIDs without an explicit quota;
// 0 means an equal share is computed lazily per distinct ASID seen is NOT
// attempted — 0 simply means "no budget: always replace locally once any
// block is held" is too strict, so 0 defaults to the full capacity
// (i.e. unconstrained until SetQuota is called).
func NewModifiedLRU(size uint64, ways int, lineSize uint64, defaultQuota uint64) (*ModifiedLRU, error) {
	b, err := newBase(size, ways, lineSize)
	if err != nil {
		return nil, err
	}
	if defaultQuota == 0 {
		defaultQuota = size / lineSize
	}
	return &ModifiedLRU{
		base:         b,
		name:         fmt.Sprintf("%s ModifiedLRU", geomName(size, ways)),
		quota:        map[uint16]uint64{},
		defaultQuota: defaultQuota,
		held:         map[uint16]uint64{},
	}, nil
}

// SetQuota assigns an ASID's block budget (Suh's controller output).
func (m *ModifiedLRU) SetQuota(asid uint16, blocks uint64) {
	m.quota[asid] = blocks
}

// Quota returns the effective budget for an ASID.
func (m *ModifiedLRU) Quota(asid uint16) uint64 {
	if q, ok := m.quota[asid]; ok {
		return q
	}
	return m.defaultQuota
}

// Held returns the ASID's current resident block count.
func (m *ModifiedLRU) Held(asid uint16) uint64 { return m.held[asid] }

// Name implements engine.Cache.
func (m *ModifiedLRU) Name() string { return m.name }

// Access implements engine.Cache.
func (m *ModifiedLRU) Access(r trace.Ref) engine.Result {
	setBase, tag := m.locate(r.Addr)
	res := engine.Result{TagProbes: m.ways, DataReads: 1}
	if w := m.probe(setBase, tag, r); w >= 0 {
		res.Hit = true
		m.ledger.Record(r.ASID, true)
		return res
	}

	// Miss: pick the victim way per the quota rule.
	w := m.victim(setBase, r.ASID)
	old := m.lines[setBase+w]
	if old.valid {
		m.held[old.asid]--
	}
	m.install(setBase, w, tag, r, &res)
	m.held[r.ASID]++
	m.ledger.Record(r.ASID, false)
	return res
}

// victim selects the way to replace in the set for the given requestor.
func (m *ModifiedLRU) victim(setBase int, asid uint16) int {
	// Invalid ways first, regardless of quotas.
	for w := 0; w < m.ways; w++ {
		if !m.lines[setBase+w].valid {
			return w
		}
	}
	local := m.held[asid] >= m.Quota(asid)
	best, bestStamp := -1, uint64(0)
	for w := 0; w < m.ways; w++ {
		ln := &m.lines[setBase+w]
		if local && ln.asid != asid {
			continue
		}
		if best < 0 || ln.stamp < bestStamp {
			best, bestStamp = w, ln.stamp
		}
	}
	if best < 0 {
		// Local replacement demanded but the requestor holds nothing in
		// this set: Suh's scheme falls back to global LRU here.
		for w := 0; w < m.ways; w++ {
			ln := &m.lines[setBase+w]
			if best < 0 || ln.stamp < bestStamp {
				best, bestStamp = w, ln.stamp
			}
		}
	}
	return best
}

// geomName renders "1MB 4-way" style names.
func geomName(size uint64, ways int) string {
	return fmt.Sprintf("%s %d-way", addr.Bytes(size), ways)
}
