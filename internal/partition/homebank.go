package partition

import (
	"fmt"

	"molcache/internal/addr"
	"molcache/internal/engine"
	"molcache/internal/stats"
	"molcache/internal/trace"
)

// HomeBank implements a POCA-style process-ownership cache (Kim, Lee &
// Park): the cache is split into banks; each process owns a home bank
// that is searched first and receives its fills; on a home-bank miss the
// remaining banks are searched set-associatively before declaring a
// miss. Ownership is a map maintained by software (the OS in POCA).
type HomeBank struct {
	name     string
	banks    []*base
	bankSize uint64
	ways     int
	lineSize uint64
	// home maps an ASID to its bank; unmapped ASIDs hash by ASID.
	home   map[uint16]int
	ledger stats.Ledger
}

var _ engine.Cache = (*HomeBank)(nil)

// NewHomeBank builds a cache of `banks` banks of bankSize bytes each,
// each bank set-associative with the given ways.
func NewHomeBank(banks int, bankSize uint64, ways int, lineSize uint64) (*HomeBank, error) {
	if banks < 1 {
		return nil, fmt.Errorf("partition: need at least one bank")
	}
	hb := &HomeBank{
		name: fmt.Sprintf("%s HomeBank(%dx%s)",
			addr.Bytes(uint64(banks)*bankSize), banks, addr.Bytes(bankSize)),
		bankSize: bankSize,
		ways:     ways,
		lineSize: lineSize,
		home:     map[uint16]int{},
	}
	for i := 0; i < banks; i++ {
		b, err := newBase(bankSize, ways, lineSize)
		if err != nil {
			return nil, err
		}
		hb.banks = append(hb.banks, b)
	}
	return hb, nil
}

// SetHome assigns an ASID's home bank.
func (h *HomeBank) SetHome(asid uint16, bank int) error {
	if bank < 0 || bank >= len(h.banks) {
		return fmt.Errorf("partition: bank %d out of range [0,%d)", bank, len(h.banks))
	}
	h.home[asid] = bank
	return nil
}

// Home returns an ASID's home bank.
func (h *HomeBank) Home(asid uint16) int {
	if b, ok := h.home[asid]; ok {
		return b
	}
	return int(asid) % len(h.banks)
}

// Name implements engine.Cache.
func (h *HomeBank) Name() string { return h.name }

// Ledger exposes per-ASID hit/miss counts.
func (h *HomeBank) Ledger() *stats.Ledger { return &h.ledger }

// Access implements engine.Cache: home bank first, then the others.
func (h *HomeBank) Access(r trace.Ref) engine.Result {
	res := engine.Result{DataReads: 1}
	homeIdx := h.Home(r.ASID)
	order := make([]int, 0, len(h.banks))
	order = append(order, homeIdx)
	for i := range h.banks {
		if i != homeIdx {
			order = append(order, i)
		}
	}
	for pos, bi := range order {
		b := h.banks[bi]
		setBase, tag := b.locate(r.Addr)
		res.TagProbes += b.ways
		if w := b.probe(setBase, tag, r); w >= 0 {
			res.Hit = true
			res.RemoteTileHit = pos > 0
			h.ledger.Record(r.ASID, true)
			return res
		}
	}
	// Miss: fill the home bank's LRU way.
	b := h.banks[homeIdx]
	setBase, tag := b.locate(r.Addr)
	best, bestStamp := -1, uint64(0)
	for w := 0; w < b.ways; w++ {
		ln := &b.lines[setBase+w]
		if !ln.valid {
			best = w
			break
		}
		if best < 0 || ln.stamp < bestStamp {
			best, bestStamp = w, ln.stamp
		}
	}
	b.install(setBase, best, tag, r, &res)
	h.ledger.Record(r.ASID, false)
	return res
}
