package partition

import (
	"testing"
	"testing/quick"

	"molcache/internal/trace"
)

func rd(asid uint16, a uint64) trace.Ref {
	return trace.Ref{Addr: a, ASID: asid, Kind: trace.Read}
}

func wr(asid uint16, a uint64) trace.Ref {
	return trace.Ref{Addr: a, ASID: asid, Kind: trace.Write}
}

// --- base geometry ---

func TestBaseValidation(t *testing.T) {
	cases := []struct {
		size  uint64
		ways  int
		line  uint64
		valid bool
	}{
		{1 << 20, 4, 64, true},
		{1000, 4, 64, false},
		{1 << 20, 3, 64, false},
		{1 << 20, 4, 60, false},
		{128, 4, 64, false},
	}
	for _, c := range cases {
		_, err := newBase(c.size, c.ways, c.line)
		if (err == nil) != c.valid {
			t.Errorf("newBase(%d,%d,%d): err=%v, want valid=%v",
				c.size, c.ways, c.line, err, c.valid)
		}
	}
}

// --- ModifiedLRU ---

func TestModifiedLRUBasicHitMiss(t *testing.T) {
	m, err := NewModifiedLRU(512, 2, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Access(rd(1, 0)).Hit {
		t.Error("cold hit")
	}
	if !m.Access(rd(1, 0)).Hit {
		t.Error("warm miss")
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

// A process at its quota must evict its own blocks, protecting others.
func TestModifiedLRUQuotaProtectsOthers(t *testing.T) {
	// 4 sets x 4 ways of 64B = 1KB.
	m, err := NewModifiedLRU(1024, 4, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// App 1 owns 2 blocks' quota; app 2 unconstrained.
	m.SetQuota(1, 2)
	// App 2 fills two ways of set 0 (set stride 4*64=256).
	m.Access(rd(2, 0))
	m.Access(rd(2, 256))
	// App 1 fills its quota, then keeps missing in set 0.
	m.Access(rd(1, 512))
	m.Access(rd(1, 768))
	m.Access(rd(1, 1024)) // over quota: must evict app 1's own LRU (512)
	if !m.Access(rd(2, 0)).Hit || !m.Access(rd(2, 256)).Hit {
		t.Error("app 2's blocks were evicted despite app 1's quota")
	}
	if m.Access(rd(1, 512)).Hit {
		t.Error("app 1's own LRU was not the victim")
	}
	if m.Held(1) != 2 {
		t.Errorf("app 1 holds %d blocks, want 2 (its quota)", m.Held(1))
	}
}

// Below quota, replacement is global LRU (may evict other owners).
func TestModifiedLRUGlobalBelowQuota(t *testing.T) {
	m, err := NewModifiedLRU(512, 2, 64, 0) // 4 sets x 2 ways
	if err != nil {
		t.Fatal(err)
	}
	m.Access(rd(2, 0))   // app 2
	m.Access(rd(2, 256)) // app 2: set 0 full (set stride 2*64=128... )
	// set stride is sets*line = 4*64 = 256; so 0 and 256 share set 0.
	m.Access(rd(1, 512)) // app 1 below quota: global LRU (evicts app 2's 0)
	if m.Access(rd(2, 0)).Hit {
		t.Error("global replacement did not evict the overall LRU")
	}
}

func TestModifiedLRULocalFallbackWhenAbsentFromSet(t *testing.T) {
	m, err := NewModifiedLRU(512, 2, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetQuota(1, 1)
	m.Access(rd(1, 0))   // set 0: app 1 at quota
	m.Access(rd(2, 128)) // set 2 maybe; irrelevant filler
	m.Access(rd(2, 256)) // set 0 second way
	// App 1 at quota misses in set 1 where it holds nothing: the scheme
	// must fall back to global LRU there rather than deadlock.
	res := m.Access(rd(1, 64))
	if res.Hit || res.LinesFetched != 1 {
		t.Errorf("fallback install failed: %+v", res)
	}
}

func TestModifiedLRUHeldAccounting(t *testing.T) {
	f := func(ops []uint16) bool {
		m, err := NewModifiedLRU(1024, 4, 64, 3)
		if err != nil {
			return false
		}
		for i, op := range ops {
			asid := uint16(op%3) + 1
			a := uint64(op) * 64 % 4096
			if i%2 == 0 {
				m.Access(rd(asid, a))
			} else {
				m.Access(wr(asid, a))
			}
		}
		// held must equal actual occupancy for every ASID.
		occ := m.occupancy()
		for asid, n := range occ {
			if m.Held(asid) != uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- ColumnCache ---

func TestColumnCacheAssignmentValidation(t *testing.T) {
	c, err := NewColumnCache(1024, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignColumns(1, 5); err == nil {
		t.Error("out-of-range way accepted")
	}
	if err := c.AssignColumns(1); err == nil {
		t.Error("empty column set accepted")
	}
	if err := c.AssignColumns(1, 0, 1); err != nil {
		t.Error(err)
	}
	if got := c.Columns(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Columns = %v", got)
	}
	// Unassigned ASIDs may use every way.
	if got := c.Columns(9); len(got) != 4 {
		t.Errorf("default Columns = %v", got)
	}
}

func TestColumnCacheEqualSplit(t *testing.T) {
	c, err := NewColumnCache(2048, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignEqualColumns(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := map[int]bool{}
	for _, asid := range []uint16{1, 2, 3} {
		cols := c.Columns(asid)
		total += len(cols)
		for _, w := range cols {
			if seen[w] {
				t.Errorf("way %d assigned twice", w)
			}
			seen[w] = true
		}
	}
	if total != 8 {
		t.Errorf("split covers %d ways, want 8", total)
	}
	if err := c.AssignEqualColumns(); err == nil {
		t.Error("empty split accepted")
	}
}

// Column isolation: app 1's misses can never evict app 2's columns.
func TestColumnCacheIsolation(t *testing.T) {
	c, err := NewColumnCache(1024, 4, 64) // 4 sets
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignColumns(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignColumns(2, 2, 3); err != nil {
		t.Fatal(err)
	}
	// App 2 installs two lines in set 0 (stride 4*64 = 256).
	c.Access(rd(2, 0))
	c.Access(rd(2, 256))
	// App 1 storms set 0 far beyond its two columns.
	for i := uint64(0); i < 64; i++ {
		c.Access(rd(1, 4096+i*256))
	}
	if !c.Access(rd(2, 0)).Hit || !c.Access(rd(2, 256)).Hit {
		t.Error("app 2's columns were polluted by app 1")
	}
}

// Lookup is unrestricted: after columns are reassigned, previously
// installed lines remain reachable.
func TestColumnCacheLookupUnrestricted(t *testing.T) {
	c, err := NewColumnCache(1024, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignColumns(1, 0); err != nil {
		t.Fatal(err)
	}
	c.Access(rd(1, 0)) // lands in way 0
	if err := c.AssignColumns(1, 3); err != nil {
		t.Fatal(err)
	}
	if !c.Access(rd(1, 0)).Hit {
		t.Error("line unreachable after column reassignment")
	}
}

func TestColumnCacheTooManyWays(t *testing.T) {
	if _, err := NewColumnCache(1<<20, 128, 64); err == nil {
		t.Error("128 ways accepted (mask is 64-bit)")
	}
}

// --- HomeBank ---

func TestHomeBankBasics(t *testing.T) {
	h, err := NewHomeBank(4, 512, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if h.Access(rd(1, 0)).Hit {
		t.Error("cold hit")
	}
	if !h.Access(rd(1, 0)).Hit {
		t.Error("warm miss")
	}
	if h.Name() == "" {
		t.Error("empty name")
	}
	if err := h.SetHome(1, 9); err == nil {
		t.Error("out-of-range home accepted")
	}
}

func TestHomeBankFillsHomeFirst(t *testing.T) {
	h, err := NewHomeBank(2, 512, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetHome(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.SetHome(2, 1); err != nil {
		t.Fatal(err)
	}
	res := h.Access(rd(1, 0))
	if res.Hit {
		t.Fatal("cold hit")
	}
	// The line lives in bank 0; app 2 (home bank 1) can still reach it
	// via the global fallback search, flagged as a remote hit.
	res = h.Access(rd(2, 0))
	if !res.Hit || !res.RemoteTileHit {
		t.Errorf("cross-bank hit = %+v, want remote hit", res)
	}
	// App 1's own re-access is a home hit.
	res = h.Access(rd(1, 0))
	if !res.Hit || res.RemoteTileHit {
		t.Errorf("home hit = %+v", res)
	}
}

func TestHomeBankIsolationUnderConflict(t *testing.T) {
	h, err := NewHomeBank(2, 512, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetHome(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.SetHome(2, 1); err != nil {
		t.Fatal(err)
	}
	// App 2 installs a line; app 1 storms its own home bank.
	h.Access(rd(2, 64))
	for i := uint64(0); i < 64; i++ {
		h.Access(rd(1, 4096+i*512))
	}
	if !h.Access(rd(2, 64)).Hit {
		t.Error("app 1's home-bank churn evicted app 2's bank")
	}
}

func TestHomeBankDefaultHomeHash(t *testing.T) {
	h, err := NewHomeBank(4, 512, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if h.Home(6) != 2 {
		t.Errorf("Home(6) = %d, want 6 %% 4 = 2", h.Home(6))
	}
}

func TestHomeBankLedger(t *testing.T) {
	h, err := NewHomeBank(2, 512, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(rd(3, 0))
	h.Access(rd(3, 0))
	if got := h.Ledger().App(3); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("ledger = %+v", got)
	}
}

func TestHomeBankRejectsZeroBanks(t *testing.T) {
	if _, err := NewHomeBank(0, 512, 2, 64); err == nil {
		t.Error("zero banks accepted")
	}
}
