package partition

import (
	"fmt"

	"molcache/internal/engine"
	"molcache/internal/trace"
)

// ColumnCache implements Suh et al.'s column caching: the cache's ways
// ("columns") are assigned to processes, and a process's replacements may
// only land in its own columns. Lookup is unchanged — the full set is
// searched — so data remains reachable even after column reassignment.
type ColumnCache struct {
	*base
	name string
	// columns maps an ASID to the bit-set of ways it may replace into.
	columns map[uint16]uint64
	// defaultMask is used for ASIDs without an assignment (all ways).
	defaultMask uint64
}

var _ engine.Cache = (*ColumnCache)(nil)

// NewColumnCache builds a column cache.
func NewColumnCache(size uint64, ways int, lineSize uint64) (*ColumnCache, error) {
	if ways > 64 {
		return nil, fmt.Errorf("partition: column cache supports at most 64 ways, got %d", ways)
	}
	b, err := newBase(size, ways, lineSize)
	if err != nil {
		return nil, err
	}
	return &ColumnCache{
		base:        b,
		name:        fmt.Sprintf("%s ColumnCache", geomName(size, ways)),
		columns:     map[uint16]uint64{},
		defaultMask: (uint64(1) << ways) - 1,
	}, nil
}

// AssignColumns restricts an ASID's replacements to the given ways.
func (c *ColumnCache) AssignColumns(asid uint16, ways ...int) error {
	var mask uint64
	for _, w := range ways {
		if w < 0 || w >= c.ways {
			return fmt.Errorf("partition: way %d out of range [0,%d)", w, c.ways)
		}
		mask |= 1 << uint(w)
	}
	if mask == 0 {
		return fmt.Errorf("partition: an ASID needs at least one column")
	}
	c.columns[asid] = mask
	return nil
}

// AssignEqualColumns splits the ways evenly across the given ASIDs, in
// order, spreading any remainder over the first ASIDs.
func (c *ColumnCache) AssignEqualColumns(asids ...uint16) error {
	if len(asids) == 0 || len(asids) > c.ways {
		return fmt.Errorf("partition: cannot split %d ways across %d ASIDs", c.ways, len(asids))
	}
	per := c.ways / len(asids)
	extra := c.ways % len(asids)
	next := 0
	for i, asid := range asids {
		n := per
		if i < extra {
			n++
		}
		ways := make([]int, 0, n)
		for j := 0; j < n; j++ {
			ways = append(ways, next)
			next++
		}
		if err := c.AssignColumns(asid, ways...); err != nil {
			return err
		}
	}
	return nil
}

// Columns returns the ways assigned to an ASID.
func (c *ColumnCache) Columns(asid uint16) []int {
	mask, ok := c.columns[asid]
	if !ok {
		mask = c.defaultMask
	}
	var out []int
	for w := 0; w < c.ways; w++ {
		if mask&(1<<uint(w)) != 0 {
			out = append(out, w)
		}
	}
	return out
}

// Name implements engine.Cache.
func (c *ColumnCache) Name() string { return c.name }

// Access implements engine.Cache.
func (c *ColumnCache) Access(r trace.Ref) engine.Result {
	setBase, tag := c.locate(r.Addr)
	res := engine.Result{TagProbes: c.ways, DataReads: 1}
	if w := c.probe(setBase, tag, r); w >= 0 {
		res.Hit = true
		c.ledger.Record(r.ASID, true)
		return res
	}
	mask, ok := c.columns[r.ASID]
	if !ok {
		mask = c.defaultMask
	}
	// Invalid way within the allowed columns first, then the LRU of the
	// allowed columns.
	best, bestStamp := -1, uint64(0)
	for w := 0; w < c.ways; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		ln := &c.lines[setBase+w]
		if !ln.valid {
			best = w
			break
		}
		if best < 0 || ln.stamp < bestStamp {
			best, bestStamp = w, ln.stamp
		}
	}
	c.install(setBase, best, tag, r, &res)
	c.ledger.Record(r.ASID, false)
	return res
}
