// Package partition implements the cache-partitioning schemes the paper
// compares against in its related-work discussion (§2), so that the
// molecular cache can be evaluated against real alternatives rather than
// only unmanaged shared caches:
//
//   - ModifiedLRU: Suh, Rudolph & Devadas — per-process block quotas over
//     a shared set-associative cache; a process under its quota replaces
//     the set's global LRU block, one at/over it replaces its own LRU
//     block.
//   - ColumnCache: Suh et al.'s column caching — replacement for each
//     process is restricted to an assigned subset of ways ("columns");
//     lookup still searches the full set.
//   - HomeBank: Kim, Lee & Park's POCA-style process-ownership cache —
//     a multi-banked cache where each process has a home bank searched
//     (and filled) first, with a global fallback search.
//
// All three implement engine.Cache, so they drop into the same harnesses
// as the traditional and molecular models.
package partition

import (
	"fmt"

	"molcache/internal/addr"
	"molcache/internal/engine"
	"molcache/internal/stats"
	"molcache/internal/trace"
)

// line is one cache line's metadata.
type line struct {
	tag   uint64
	asid  uint16
	valid bool
	dirty bool
	stamp uint64 // LRU timestamp
}

// base carries the geometry and storage shared by the schemes here.
type base struct {
	size     uint64
	ways     int
	lineSize uint64
	sets     int
	shift    uint
	mask     uint64
	clock    uint64
	lines    []line
	ledger   stats.Ledger
}

func newBase(size uint64, ways int, lineSize uint64) (*base, error) {
	if err := addr.CheckPow2("size", size); err != nil {
		return nil, err
	}
	if err := addr.CheckPow2("line size", lineSize); err != nil {
		return nil, err
	}
	if ways < 1 || !addr.IsPow2(uint64(ways)) {
		return nil, fmt.Errorf("partition: ways must be a positive power of two, got %d", ways)
	}
	lines := size / lineSize
	if lines == 0 || lines%uint64(ways) != 0 || lines/uint64(ways) == 0 {
		return nil, fmt.Errorf("partition: size %d does not divide into %d ways of %dB lines",
			size, ways, lineSize)
	}
	sets := int(lines) / ways
	return &base{
		size:     size,
		ways:     ways,
		lineSize: lineSize,
		sets:     sets,
		shift:    addr.Log2(lineSize),
		mask:     uint64(sets - 1),
		lines:    make([]line, int(lines)),
	}, nil
}

// locate returns (set base index, tag) for an address.
func (b *base) locate(a uint64) (int, uint64) {
	block := a >> b.shift
	set := int(block & b.mask)
	tag := block >> addr.Log2(uint64(b.sets))
	return set * b.ways, tag
}

// probe searches the set for the tag; on a hit it refreshes LRU state
// and applies the write. Returns the hit way or -1.
func (b *base) probe(setBase int, tag uint64, r trace.Ref) int {
	for w := 0; w < b.ways; w++ {
		ln := &b.lines[setBase+w]
		if ln.valid && ln.tag == tag {
			b.clock++
			ln.stamp = b.clock
			if r.Kind == trace.Write {
				ln.dirty = true
			}
			return w
		}
	}
	return -1
}

// install fills way w of the set with the reference's line, reporting
// eviction effects into res.
func (b *base) install(setBase, w int, tag uint64, r trace.Ref, res *engine.Result) {
	ln := &b.lines[setBase+w]
	if ln.valid {
		res.LinesEvicted++
		if ln.dirty {
			res.Writebacks++
		}
	}
	b.clock++
	*ln = line{
		tag:   tag,
		asid:  r.ASID,
		valid: true,
		dirty: r.Kind == trace.Write,
		stamp: b.clock,
	}
	res.LinesFetched = 1
}

// Ledger exposes per-ASID hit/miss counts.
func (b *base) Ledger() *stats.Ledger { return &b.ledger }

// occupancy counts resident lines per ASID (test/metering aid).
func (b *base) occupancy() map[uint16]int {
	out := map[uint16]int{}
	for i := range b.lines {
		if b.lines[i].valid {
			out[b.lines[i].asid]++
		}
	}
	return out
}
