// Package shard runs the molecular cache's access pipeline on multiple
// goroutines while reproducing the serial engine's outputs byte for
// byte — Results, ledgers, histograms, telemetry events, span traces,
// resize decisions, and invariant captures are all identical at any
// shard count.
//
// The parallelism comes from the paper's own locality argument: a
// region's molecules all live in its home cluster, Ulmo sweeps never
// leave the cluster, and the shared region only answers probes from its
// own cluster, so accesses whose regions are homed in different
// clusters touch disjoint mutable cache state. The engine statically
// partitions clusters into shards (AssignClusters) and, within a batch,
// carves the reference stream into epochs of accesses that are
// independent of every cross-shard mechanism. Each epoch fans out to
// one goroutine per shard; each worker replays its shard's accesses in
// original trace order on a molecular.ShardLane, which accumulates
// every cache-wide side effect (ledger, global window, probe histogram,
// NoC traffic, degradation counters, telemetry events, span batches)
// into lane-local deltas. At the epoch boundary MergeLanes folds the
// deltas back in serial order on the coordinating goroutine.
//
// Anything that couples shards runs serially at the coordinator, before
// the epoch that would observe it: region auto-admission (first touch
// of a new ASID), scheduled fault delivery (molecule retirements, line
// corruptions), and resize ticks. All three are predictable on the
// logical access clock — faults.Injector.NextScheduledAt and
// resize.Controller.NextTriggerAt expose the next due point — so the
// epoch planner simply ends an epoch just before any of them fires.
// AdaptivePerApp resize triggers fire on per-application ledger counts
// the planner cannot see ahead of time; that configuration falls back
// to serial execution rather than risk a divergent replay.
//
// This is the only package in the repository (besides the approved
// driver/observability packages) sanctioned by the molvet concurrency
// rule to use go statements and channels; internal/molecular itself
// stays goroutine-free.
package shard

import (
	"fmt"
	"sync"

	"molcache/internal/engine"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/trace"
)

// AssignClusters maps each of nClusters clusters to one of shards
// shards: cluster cl belongs to shard cl*shards/nClusters. The
// assignment is a pure function of the geometry — stable across runs,
// monotone in cl, and balanced to within one cluster — so shard
// placement never depends on trace content or goroutine scheduling.
// Panics when either argument is non-positive or shards exceeds
// nClusters (callers clamp via New).
func AssignClusters(nClusters, shards int) []int {
	if nClusters <= 0 || shards <= 0 || shards > nClusters {
		panic(fmt.Sprintf("shard: cannot split %d clusters into %d shards", nClusters, shards))
	}
	assign := make([]int, nClusters)
	for cl := range assign {
		assign[cl] = cl * shards / nClusters
	}
	return assign
}

// Engine replays references through a molecular cache using sharded
// epochs. It implements engine.Cache (serial single-access path, so it
// can stand in anywhere the serial cache does) and engine.Batcher
// (the concurrent path). An Engine is not itself safe for concurrent
// use — it owns the goroutines it spawns.
type Engine struct {
	cache *molecular.Cache
	ctrl  *resize.Controller // nil when no resizing is driven
	n     int
	lanes []*molecular.ShardLane
	// assign maps cluster ID -> shard index (AssignClusters).
	assign []int
	// perShard is reusable scratch: the indices (into the current
	// epoch's ref slice) each shard will replay, in trace order.
	perShard [][]int
}

// New builds a sharded engine over c driving ctrl (which may be nil).
// The shard count is clamped to [1, clusters]: shards beyond the
// cluster count could never own a cluster, and even a single shard is
// useful because it exercises the epoch/merge machinery.
func New(c *molecular.Cache, ctrl *resize.Controller, shards int) *Engine {
	nClusters := len(c.Clusters())
	if shards < 1 {
		shards = 1
	}
	if shards > nClusters {
		shards = nClusters
	}
	e := &Engine{
		cache:    c,
		ctrl:     ctrl,
		n:        shards,
		assign:   AssignClusters(nClusters, shards),
		perShard: make([][]int, shards),
	}
	e.lanes = make([]*molecular.ShardLane, shards)
	for i := range e.lanes {
		e.lanes[i] = c.NewShardLane()
	}
	return e
}

// Shards returns the effective shard count after clamping.
func (e *Engine) Shards() int { return e.n }

// Cache returns the underlying molecular cache.
func (e *Engine) Cache() *molecular.Cache { return e.cache }

// Name identifies the configuration; it is the cache's own name, since
// sharding changes how the simulation executes, not what it models.
func (e *Engine) Name() string { return e.cache.Name() }

// Access services one reference serially (with the resize tick the
// serial driver loop would issue). Single accesses gain nothing from
// fan-out; this exists so the Engine satisfies engine.Cache.
func (e *Engine) Access(ref trace.Ref) engine.Result {
	res := e.cache.Access(ref)
	if e.ctrl != nil {
		e.ctrl.Tick()
	}
	return res
}

// serialFallback replays refs one by one through the serial path.
func (e *Engine) serialFallback(refs []trace.Ref, out []engine.Result) {
	for i, ref := range refs {
		out[i] = e.cache.Access(ref)
		if e.ctrl != nil {
			e.ctrl.Tick()
		}
	}
}

// boundary reports whether the access that would run at seq (the
// cache-wide access count it will be assigned) must execute serially at
// the coordinator: its region is not yet admitted, a scheduled fault is
// due at or before it, or a resize trigger fires at or before it.
// shardOf is only meaningful when boundary is false.
func (e *Engine) boundary(ref trace.Ref, seq uint64) (bool, int) {
	r := e.cache.Region(ref.ASID)
	if r == nil {
		return true, 0
	}
	if inj := e.cache.Faults(); inj != nil {
		if at, ok := inj.NextScheduledAt(); ok && at <= seq {
			return true, 0
		}
	}
	if e.ctrl != nil {
		if at, ok := e.ctrl.NextTriggerAt(); ok && at <= seq {
			return true, 0
		}
	}
	return false, e.assign[r.HomeTile().Cluster().ID()]
}

// AccessBatch services refs with sharded epochs and returns exactly the
// Results sequential Access calls would have produced. It implements
// engine.Batcher; drivers size batches via engine.RunBatch. Span memory
// on the lanes grows with the epoch length, so span-traced runs should
// keep batches bounded (molsim's -batch default does).
func (e *Engine) AccessBatch(refs []trace.Ref) []engine.Result {
	out := make([]engine.Result, len(refs))
	if e.ctrl != nil && e.ctrl.Trigger() == resize.AdaptivePerApp {
		// Per-app triggers fire on ledger counts only the replay itself
		// produces; no epoch end-point can be planned ahead.
		e.serialFallback(refs, out)
		return out
	}
	for i := 0; i < len(refs); {
		seqBase := e.cache.Addresses()
		if b, _ := e.boundary(refs[i], seqBase+1); b {
			out[i] = e.cache.Access(refs[i])
			if e.ctrl != nil {
				e.ctrl.Tick()
			}
			i++
			continue
		}
		// Extend the epoch up to (not including) the next boundary
		// access, partitioning as we scan. Region admission only happens
		// at boundary accesses, so the first unadmitted ASID ends the
		// scan before any admission could invalidate it.
		for s := range e.perShard {
			e.perShard[s] = e.perShard[s][:0]
		}
		end := i
		for end < len(refs) {
			b, s := e.boundary(refs[end], seqBase+uint64(end-i)+1)
			if b {
				break
			}
			//molvet:ignore hotpath-alloc per-shard plan buffers are reset and reused every epoch, so growth amortizes to zero across a batch
			e.perShard[s] = append(e.perShard[s], end)
			end++
		}
		e.runEpoch(refs, out, i, seqBase)
		endSeq := seqBase + uint64(end-i)
		e.cache.MergeLanes(endSeq, e.lanes)
		// The epoch ended strictly before the next resize trigger, so
		// the per-access ticks the serial loop would have issued inside
		// it were all no-ops; nothing to replay here.
		i = end
	}
	return out
}

// runEpoch fans the planned epoch out to one goroutine per non-empty
// shard. Worker k replays perShard[k]'s indices in trace order on lane
// k; the cluster partition guarantees the workers touch disjoint cache
// state, and the lane protocol confines every global side effect until
// MergeLanes folds it in on the caller's goroutine.
func (e *Engine) runEpoch(refs []trace.Ref, out []engine.Result, i int, seqBase uint64) {
	var wg sync.WaitGroup
	for s := 0; s < e.n; s++ {
		idxs := e.perShard[s]
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(lane *molecular.ShardLane, idxs []int) {
			defer wg.Done()
			for _, k := range idxs {
				out[k] = lane.Access(seqBase+uint64(k-i)+1, refs[k])
			}
		}(e.lanes[s], idxs)
	}
	wg.Wait()
}

var (
	_ engine.Cache   = (*Engine)(nil)
	_ engine.Batcher = (*Engine)(nil)
)
