package shard

import (
	"reflect"
	"testing"
	"testing/quick"

	"molcache/internal/engine"
	"molcache/internal/molecular"
	"molcache/internal/noc"
	"molcache/internal/resize"
	"molcache/internal/rng"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// TestAssignClustersProperties pins the static shard map's contract
// with randomized geometry: the assignment is a pure function of
// (nClusters, shards) — identical on every call — monotone in the
// cluster ID, uses every shard, and balances ownership to within one
// cluster. Together these make shard placement reproducible across
// runs and machines, which the deterministic-replay argument needs.
func TestAssignClustersProperties(t *testing.T) {
	prop := func(rawClusters, rawShards uint8) bool {
		nClusters := 1 + int(rawClusters)%64
		shards := 1 + int(rawShards)%nClusters
		a := AssignClusters(nClusters, shards)
		b := AssignClusters(nClusters, shards)
		if !reflect.DeepEqual(a, b) {
			return false
		}
		if len(a) != nClusters {
			return false
		}
		counts := make([]int, shards)
		prev := 0
		for cl, s := range a {
			if s < 0 || s >= shards || s < prev {
				return false
			}
			prev = s
			counts[s]++
			_ = cl
		}
		lo, hi := counts[0], counts[0]
		for _, n := range counts {
			if n == 0 {
				return false // every shard owns at least one cluster
			}
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		return hi-lo <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// propTrace is a small randomized trace over four applications plus
// shared-region traffic, sized for property-test iteration speed.
func propTrace(seed uint64, n int) []trace.Ref {
	src := rng.New(seed)
	refs := make([]trace.Ref, 0, n)
	for i := 0; i < n; i++ {
		var asid uint16
		if src.Intn(24) == 0 {
			asid = molecular.SharedASID
		} else {
			asid = uint16(1 + src.Intn(4))
		}
		block := uint64(src.Intn(2048))
		kind := trace.Read
		if src.Intn(4) == 0 {
			kind = trace.Write
		}
		refs = append(refs, trace.Ref{Addr: uint64(asid)<<32 | block*64, ASID: asid, Kind: kind})
	}
	return refs
}

// propCache builds an 8-cluster cache with shared region, mesh, resize
// controller and an event tracer for the replay properties.
func propCache(t *testing.T) (*molecular.Cache, *resize.Controller, *telemetry.Tracer) {
	t.Helper()
	c, err := molecular.New(molecular.Config{
		TotalSize:       1 << 20,
		MoleculeSize:    8 << 10,
		TilesPerCluster: 2,
		Clusters:        8,
		Policy:          molecular.RandyReplacement,
		LineFactor:      2,
		Seed:            2006,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRegion(molecular.SharedASID, molecular.RegionOptions{
		HomeCluster: 0, HomeTile: 0, InitialMolecules: 2,
	}); err != nil {
		t.Fatal(err)
	}
	mesh, err := noc.ForTiles(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachInterconnect(mesh); err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(1 << 14)
	c.AttachTelemetry(tr, nil)
	ctrl, err := resize.New(c, resize.Config{
		Period: 500, MinPeriod: 250, MaxPeriod: 4000,
		MaxAllocation: 4, DefaultGoal: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, ctrl, tr
}

// TestMergedEventOrderIsScheduleIndependent replays one trace through
// two independent sharded engines at the same shard count and demands
// identical ordered event streams: whatever the scheduler did to the
// epoch goroutines, the merge must put every event back in its serial
// position (sequence numbers included).
func TestMergedEventOrderIsScheduleIndependent(t *testing.T) {
	prop := func(rawSeed uint16, rawShards uint8) bool {
		seed := uint64(rawSeed)
		shards := 1 + int(rawShards)%8
		refs := propTrace(seed, 3000)
		var streams [2][]telemetry.Event
		for run := 0; run < 2; run++ {
			c, ctrl, tr := propCache(t)
			eng := New(c, ctrl, shards)
			eng.AccessBatch(refs)
			streams[run] = tr.Events()
		}
		if len(streams[0]) == 0 {
			return false
		}
		return reflect.DeepEqual(streams[0], streams[1])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestAccessBatchEqualsAccessFold is the batching property: for any
// trace, Engine.AccessBatch must return exactly the Results the same
// refs produce through sequential Access calls on a twin cache, and
// leave the twin's ledger, probe histogram and remote-cycle totals.
func TestAccessBatchEqualsAccessFold(t *testing.T) {
	prop := func(rawSeed uint16, rawShards, rawBatch uint8) bool {
		seed := uint64(rawSeed) ^ 0xb27c
		shards := 1 + int(rawShards)%8
		batch := 64 + int(rawBatch)*4
		refs := propTrace(seed, 3000)

		sc, sCtrl, sTr := propCache(t)
		serial := make([]engine.Result, len(refs))
		for i, r := range refs {
			serial[i] = sc.Access(r)
			sCtrl.Tick()
		}

		hc, hCtrl, hTr := propCache(t)
		eng := New(hc, hCtrl, shards)
		var batched []engine.Result
		for base := 0; base < len(refs); base += batch {
			end := base + batch
			if end > len(refs) {
				end = len(refs)
			}
			batched = append(batched, eng.AccessBatch(refs[base:end])...)
		}

		if !reflect.DeepEqual(serial, batched) {
			return false
		}
		if !reflect.DeepEqual(*sc.Ledger(), *hc.Ledger()) {
			return false
		}
		if !reflect.DeepEqual(sc.ProbeHistogram(), hc.ProbeHistogram()) {
			return false
		}
		if sc.RemoteCycles() != hc.RemoteCycles() {
			return false
		}
		return reflect.DeepEqual(sTr.Events(), hTr.Events())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestNewClampsShardCount pins the constructor's clamping: shard
// counts outside [1, clusters] are pulled into range rather than
// rejected, so drivers can pass GOMAXPROCS-derived values blindly.
func TestNewClampsShardCount(t *testing.T) {
	c, ctrl, _ := propCache(t)
	if got := New(c, ctrl, 0).Shards(); got != 1 {
		t.Errorf("shards=0: want clamp to 1, got %d", got)
	}
	c2, ctrl2, _ := propCache(t)
	if got := New(c2, ctrl2, 64).Shards(); got != 8 {
		t.Errorf("shards=64: want clamp to clusters (8), got %d", got)
	}
}

// TestAdaptivePerAppFallsBackSerially pins the planner's refusal to
// parallelize per-app triggers: the batch must still be bit-equal to
// the serial fold (it runs serially under the hood), not skipped.
func TestAdaptivePerAppFallsBackSerially(t *testing.T) {
	build := func() (*molecular.Cache, *resize.Controller) {
		c, _, _ := propCache(t)
		ctrl, err := resize.New(c, resize.Config{
			Trigger: resize.AdaptivePerApp,
			Period:  500, MinPeriod: 250, MaxPeriod: 4000,
			MaxAllocation: 4, DefaultGoal: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, ctrl
	}
	refs := propTrace(99, 4000)
	sc, sCtrl := build()
	serial := make([]engine.Result, len(refs))
	for i, r := range refs {
		serial[i] = sc.Access(r)
		sCtrl.Tick()
	}
	hc, hCtrl := build()
	batched := New(hc, hCtrl, 4).AccessBatch(refs)
	if !reflect.DeepEqual(serial, batched) {
		t.Fatal("per-app fallback diverged from serial fold")
	}
	if !reflect.DeepEqual(sCtrl.Decisions(), hCtrl.Decisions()) {
		t.Fatal("per-app fallback decision logs diverged")
	}
}
