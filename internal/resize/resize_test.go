package resize

import (
	"testing"

	"molcache/internal/addr"
	"molcache/internal/molecular"
	"molcache/internal/trace"
)

// newCache builds a 1MB molecular cache (4 tiles x 32 molecules) with a
// small initial allocation so growth is observable.
func newCache(t *testing.T) *molecular.Cache {
	t.Helper()
	return molecular.MustNew(molecular.Config{
		TotalSize:        1 * addr.MB,
		MoleculeSize:     8 * addr.KB,
		TilesPerCluster:  4,
		Clusters:         1,
		Policy:           molecular.RandyReplacement,
		InitialMolecules: 4,
		Seed:             7,
	})
}

func drive(c *molecular.Cache, ctrl *Controller, asid uint16, start, span uint64, n int) {
	a := start
	for i := 0; i < n; i++ {
		c.Access(trace.Ref{Addr: a, ASID: asid, Kind: trace.Read})
		ctrl.Tick()
		a += 64
		if a >= start+span {
			a = start
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cache := newCache(t)
	bad := []Config{
		{Trigger: "bogus"},
		{DefaultGoal: 1.5},
		{DefaultGoal: -0.1},
		{Goals: map[uint16]float64{1: 0}},
		{Goals: map[uint16]float64{1: 1.2}},
		{MinPeriod: 100, MaxPeriod: 10},
	}
	for _, cfg := range bad {
		if _, err := New(cache, cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}

func TestDefaults(t *testing.T) {
	ctrl := MustNew(newCache(t), Config{DefaultGoal: 0.1})
	if ctrl.Period() != 25000 {
		t.Errorf("default period = %d, want 25000", ctrl.Period())
	}
	if ctrl.Goal(42) != 0.1 {
		t.Errorf("Goal(42) = %v", ctrl.Goal(42))
	}
}

func TestGoalOverride(t *testing.T) {
	ctrl := MustNew(newCache(t), Config{
		DefaultGoal: 0.1,
		Goals:       map[uint16]float64{3: 0.25},
	})
	if ctrl.Goal(3) != 0.25 || ctrl.Goal(4) != 0.1 {
		t.Errorf("goals: %v, %v", ctrl.Goal(3), ctrl.Goal(4))
	}
}

func TestSetGoal(t *testing.T) {
	shared := map[uint16]float64{3: 0.25}
	ctrl := MustNew(newCache(t), Config{
		DefaultGoal: 0.1,
		Goals:       shared,
	})
	if err := ctrl.SetGoal(3, 0.4); err != nil {
		t.Fatalf("SetGoal: %v", err)
	}
	if ctrl.Goal(3) != 0.4 {
		t.Errorf("goal after SetGoal: %v, want 0.4", ctrl.Goal(3))
	}
	if shared[3] != 0.25 {
		t.Errorf("caller map mutated: %v", shared)
	}
	if got := ctrl.Config().Goals[3]; got != 0.4 {
		t.Errorf("Config().Goals[3] = %v, want 0.4 (checkpoint must see the update)", got)
	}
	if err := ctrl.SetGoal(3, 0); err != nil {
		t.Fatalf("SetGoal(0): %v", err)
	}
	if ctrl.Goal(3) != 0.1 {
		t.Errorf("goal after clearing override: %v, want DefaultGoal", ctrl.Goal(3))
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if err := ctrl.SetGoal(5, bad); err == nil {
			t.Errorf("SetGoal(%v): want error", bad)
		}
	}
}

// A thrashing workload (working set far beyond the partition) must
// trigger emergency chunk growth.
func TestEmergencyGrowthOnThrash(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 2000, DefaultGoal: 0.1})
	// Sweep 4MB: hopeless for any partition, miss rate ~1. Emergency
	// growth must fire; the payoff audit (which matures over a 50K-
	// address horizon) must then find the growth futile and give the
	// molecules back.
	drive(cache, ctrl, 1, 0, 4*addr.MB, 150000)
	sawChunk, peak, gaveBack := false, 0, false
	for _, e := range ctrl.Events() {
		if e.Action == ActionGrowChunk {
			sawChunk = true
		}
		if e.Size > peak {
			peak = e.Size
		}
		if e.Action == ActionShrink && e.Delta <= -8 {
			gaveBack = true
		}
	}
	if !sawChunk {
		t.Error("no grow-chunk event recorded")
	}
	if peak <= 4 {
		t.Errorf("partition never grew under thrash (peak %d)", peak)
	}
	if !gaveBack {
		t.Error("futile growth was never given back")
	}
	if err := cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A tiny working set that easily beats the goal must shrink the
// partition (conservatively, never below one molecule) once the
// cluster's free pool is under pressure.
func TestShrinkWhenUnderGoal(t *testing.T) {
	cache := newCache(t)
	// Exhaust most of the pool so the pressure gate enables shrinking.
	if _, err := cache.CreateRegion(99, molecular.RegionOptions{
		HomeCluster: 0, HomeTile: 1, InitialMolecules: 108,
	}); err != nil {
		t.Fatal(err)
	}
	ctrl := MustNew(cache, Config{Period: 2000, DefaultGoal: 0.2})
	// 16KB loop: after warmup, miss rate ~0.
	drive(cache, ctrl, 1, 0, 16*addr.KB, 30000)
	r := cache.Region(1)
	if r.MoleculeCount() >= 4 {
		t.Errorf("partition did not shrink: %d molecules", r.MoleculeCount())
	}
	if r.MoleculeCount() < 1 {
		t.Error("partition shrank below one molecule")
	}
	sawShrink := false
	for _, e := range ctrl.Events() {
		if e.Action == ActionShrink {
			sawShrink = true
		}
	}
	if !sawShrink {
		t.Error("no shrink event recorded")
	}
}

// An application without a goal (Graph B's mcf) is never resized.
func TestUnmanagedAppUntouched(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{
		Period: 2000,
		Goals:  map[uint16]float64{1: 0.1}, // only app 1 managed
	})
	drive(cache, ctrl, 2, 0, 4*addr.MB, 10000) // app 2 thrashes, unmanaged
	if got := cache.Region(2).MoleculeCount(); got != 4 {
		t.Errorf("unmanaged app resized to %d molecules", got)
	}
	for _, e := range ctrl.Events() {
		if e.ASID == 2 && e.Action != ActionNone {
			t.Errorf("unmanaged app got action %s", e.Action)
		}
	}
}

func TestAdaptivePeriodShrinksUnderPressure(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{
		Period:      10000,
		Trigger:     AdaptiveGlobal,
		DefaultGoal: 0.05,
		MinPeriod:   500,
	})
	drive(cache, ctrl, 1, 0, 4*addr.MB, 15000) // thrash: miss ~1 > goal
	if ctrl.Period() >= 10000 {
		t.Errorf("period = %d, want shrunk below 10000", ctrl.Period())
	}
}

func TestAdaptivePeriodGrowsWhenHealthy(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{
		Period:      2000,
		Trigger:     AdaptiveGlobal,
		DefaultGoal: 0.5, // easy goal
		MaxPeriod:   100000,
	})
	drive(cache, ctrl, 1, 0, 16*addr.KB, 20000) // tiny loop: miss ~0 < goal
	if ctrl.Period() <= 2000 {
		t.Errorf("period = %d, want grown above 2000", ctrl.Period())
	}
}

func TestConstantPeriodStaysPut(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{
		Period:      2000,
		Trigger:     Constant,
		DefaultGoal: 0.1,
	})
	drive(cache, ctrl, 1, 0, 4*addr.MB, 10000)
	if ctrl.Period() != 2000 {
		t.Errorf("constant trigger changed period to %d", ctrl.Period())
	}
}

func TestPerAppTriggerIndependentPeriods(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{
		Period:      2000,
		Trigger:     AdaptivePerApp,
		DefaultGoal: 0.1,
		MinPeriod:   200,
	})
	// App 1 healthy (tiny loop), app 2 thrashing; interleave.
	a1, a2 := uint64(0), uint64(1)<<36
	for i := 0; i < 30000; i++ {
		cache.Access(trace.Ref{Addr: a1, ASID: 1, Kind: trace.Read})
		ctrl.Tick()
		cache.Access(trace.Ref{Addr: a2, ASID: 2, Kind: trace.Read})
		ctrl.Tick()
		a1 += 64
		if a1 >= 16*addr.KB {
			a1 = 0
		}
		a2 += 64
		if a2 >= (uint64(1)<<36)+4*addr.MB {
			a2 = uint64(1) << 36
		}
	}
	s1, s2 := ctrl.apps[1], ctrl.apps[2]
	if s1 == nil || s2 == nil {
		t.Fatal("per-app state missing")
	}
	if s1.period <= s2.period {
		t.Errorf("healthy app period %d not longer than thrashing app period %d",
			s1.period, s2.period)
	}
}

func TestResizeCostAccounting(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 1000, DefaultGoal: 0.1})
	drive(cache, ctrl, 1, 0, 1*addr.MB, 5000)
	if ctrl.CyclesSpent() == 0 {
		t.Error("no resize cycles accounted")
	}
	if ctrl.CyclesSpent()%1500 != 0 {
		t.Errorf("cycles %d not a multiple of the 1500/app daemon cost", ctrl.CyclesSpent())
	}
}

func TestEventsCarrySizes(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 1000, DefaultGoal: 0.1})
	drive(cache, ctrl, 1, 0, 4*addr.MB, 5000)
	evs := ctrl.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for _, e := range evs {
		if e.Size < 1 {
			t.Errorf("event with size %d", e.Size)
		}
		if e.ASID != 1 {
			t.Errorf("unexpected ASID %d", e.ASID)
		}
		if e.MissRate < 0 || e.MissRate > 1 {
			t.Errorf("bad miss rate %v", e.MissRate)
		}
	}
}

// Epoch counters must be consumed by the resize pass: after a pass, the
// partition's row-miss counters restart from zero.
func TestEpochResetAfterPass(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 1000, DefaultGoal: 0.1})
	drive(cache, ctrl, 1, 0, 4*addr.MB, 1001)
	r := cache.Region(1)
	var total uint64
	for _, n := range r.RowMissCounts() {
		total += n
	}
	// Only the references after the resize point may have accumulated.
	if total > 200 {
		t.Errorf("row miss counters = %d, want reset at the resize point", total)
	}
}

// When the pool is dry and a Randy region is row-imbalanced, the
// controller must fall back to intra-region rebalancing.
func TestRebalanceWhenPoolDry(t *testing.T) {
	cache := molecular.MustNew(molecular.Config{
		TotalSize:        512 * addr.KB,
		TilesPerCluster:  4,
		Clusters:         1,
		Policy:           molecular.RandyReplacement,
		InitialMolecules: 16,
		Seed:             3,
	})
	// Four regions exhaust the 64-molecule cluster.
	for asid := uint16(2); asid <= 4; asid++ {
		if _, err := cache.CreateRegion(asid, molecular.RegionOptions{
			HomeCluster: 0, HomeTile: int(asid - 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctrl := MustNew(cache, Config{Period: 2000, DefaultGoal: 0.05})
	// App 1 hammers one molecule-sized slice of the address space so a
	// single replacement-view row takes all the pressure.
	a := uint64(0)
	for i := 0; i < 120000; i++ {
		cache.Access(trace.Ref{Addr: a % (16 * addr.KB), ASID: 1, Kind: trace.Read})
		ctrl.Tick()
		a += 64
	}
	if cache.FreeMolecules() != 0 {
		t.Fatalf("free pool not exhausted: %d", cache.FreeMolecules())
	}
	saw := false
	for _, e := range ctrl.Events() {
		if e.Action == ActionRebalance {
			saw = true
		}
	}
	if !saw {
		t.Error("no rebalance event despite a dry pool and row pressure")
	}
	if err := cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
