package resize

import (
	"fmt"
	"sort"
)

// This file is the controller's checkpoint layer. Everything Algorithm 1
// consults between passes is serialized: the shared period/trigger
// cursor, the per-application state (shrink-regret floors, futility
// audit marks, freeze counters, per-app periods), the event log, the
// daemon cycle account, and the bounded decision ring. Restore validates
// untrusted input and returns errors, never panics — corrupted
// checkpoints must degrade to a cold start, not kill the run.

// AppSnap is one application's serialized controller state, mirroring
// appState field for field.
type AppSnap struct {
	ASID          uint16  `json:"asid"`
	LastMiss      float64 `json:"last_miss"`
	HaveLast      bool    `json:"have_last"`
	LastAction    Action  `json:"last_action"`
	LastAlloc     int     `json:"last_alloc"`
	MaxAlloc      int     `json:"max_alloc"`
	Floor         int     `json:"floor"`
	PreShrink     int     `json:"pre_shrink"`
	FloorAge      int     `json:"floor_age"`
	ShrinkAge     int     `json:"shrink_age"`
	RebalanceCool int     `json:"rebalance_cool"`
	GrowSinceMark int     `json:"grow_since_mark"`
	MissAtMark    float64 `json:"miss_at_mark"`
	MarkAt        uint64  `json:"mark_at"`
	Frozen        int     `json:"frozen"`
	Period        uint64  `json:"period"`
	NextAt        uint64  `json:"next_at"`
}

// ControllerState is the controller's complete serialized runtime state.
// The Config is not repeated here; the caller reconstructs the
// controller with the same Config and then restores this state onto it.
type ControllerState struct {
	Period uint64    `json:"period"`
	NextAt uint64    `json:"next_at"`
	Cycles uint64    `json:"cycles"`
	Apps   []AppSnap `json:"apps"`
	Events []Event   `json:"events"`
	// Decisions is the ring's contents oldest-first (as Decisions()
	// returns them); DecisionSeq is the lifetime count.
	Decisions   []Decision `json:"decisions"`
	DecisionSeq uint64     `json:"decision_seq"`
}

// Config returns the controller's (defaulted) configuration — the one
// a restore must rebuild the controller with.
func (c *Controller) Config() Config { return c.cfg }

// CaptureState serializes the controller's runtime state (apps in ASID
// order, decisions oldest-first).
func (c *Controller) CaptureState() ControllerState {
	st := ControllerState{
		Period:      c.period,
		NextAt:      c.nextAt,
		Cycles:      c.cycles,
		Events:      append([]Event(nil), c.events...),
		Decisions:   c.Decisions(),
		DecisionSeq: c.decSeq,
	}
	asids := make([]uint16, 0, len(c.apps))
	for asid := range c.apps {
		asids = append(asids, asid)
	}
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })
	for _, asid := range asids {
		s := c.apps[asid]
		st.Apps = append(st.Apps, AppSnap{
			ASID: asid, LastMiss: s.lastMiss, HaveLast: s.haveLast,
			LastAction: s.lastAction, LastAlloc: s.lastAlloc, MaxAlloc: s.maxAlloc,
			Floor: s.floor, PreShrink: s.preShrink, FloorAge: s.floorAge,
			ShrinkAge: s.shrinkAge, RebalanceCool: s.rebalanceCool,
			GrowSinceMark: s.growSinceMark, MissAtMark: s.missAtMark,
			MarkAt: s.markAt, Frozen: s.frozen,
			Period: s.period, NextAt: s.nextAt,
		})
	}
	return st
}

// RestoreState overwrites the controller's runtime state with a captured
// one. The controller must be freshly built (New) with the same Config
// that produced the capture. Validation rejects states a healthy
// controller cannot reach.
func (c *Controller) RestoreState(st ControllerState) error {
	if st.Period < c.cfg.MinPeriod || st.Period > c.cfg.MaxPeriod {
		// Constant triggers never adapt, so only the adaptive triggers
		// are bound by the clamp range.
		if c.cfg.Trigger != Constant {
			return fmt.Errorf("resize: restore: period %d outside [%d,%d]",
				st.Period, c.cfg.MinPeriod, c.cfg.MaxPeriod)
		}
	}
	if uint64(len(st.Decisions)) > st.DecisionSeq {
		return fmt.Errorf("resize: restore: %d retained decisions exceed lifetime count %d",
			len(st.Decisions), st.DecisionSeq)
	}
	if c.decCap > 0 && len(st.Decisions) > c.decCap {
		return fmt.Errorf("resize: restore: %d retained decisions exceed ring capacity %d",
			len(st.Decisions), c.decCap)
	}
	apps := make(map[uint16]*appState, len(st.Apps))
	prev := -1
	for i := range st.Apps {
		a := &st.Apps[i]
		if int(a.ASID) <= prev {
			return fmt.Errorf("resize: restore: app states not in ascending ASID order at %d", a.ASID)
		}
		prev = int(a.ASID)
		switch a.LastAction {
		case "", ActionGrowChunk, ActionGrowLinear, ActionShrink, ActionNone, ActionRebalance:
		default:
			return fmt.Errorf("resize: restore: app %d has unknown last action %q", a.ASID, a.LastAction)
		}
		if a.MaxAlloc < 0 || a.Floor < 0 || a.Frozen < 0 || a.GrowSinceMark < 0 {
			return fmt.Errorf("resize: restore: app %d has negative counters", a.ASID)
		}
		apps[a.ASID] = &appState{
			lastMiss: a.LastMiss, haveLast: a.HaveLast, lastAction: a.LastAction,
			lastAlloc: a.LastAlloc, maxAlloc: a.MaxAlloc,
			floor: a.Floor, preShrink: a.PreShrink, floorAge: a.FloorAge,
			shrinkAge: a.ShrinkAge, rebalanceCool: a.RebalanceCool,
			growSinceMark: a.GrowSinceMark, missAtMark: a.MissAtMark,
			markAt: a.MarkAt, frozen: a.Frozen,
			period: a.Period, nextAt: a.NextAt,
		}
	}
	c.period = st.Period
	c.nextAt = st.NextAt
	c.cycles = st.Cycles
	c.apps = apps
	c.events = append([]Event(nil), st.Events...)
	// The ring is reloaded linearized: head 0, oldest first. Decisions()
	// re-linearizes on read, so the external view is unchanged.
	c.decs = append([]Decision(nil), st.Decisions...)
	c.decHead = 0
	c.decSeq = st.DecisionSeq
	return nil
}
