package resize

import (
	"encoding/json"
	"testing"

	"molcache/internal/addr"
	"molcache/internal/telemetry"
)

// Every Algorithm 1 evaluation must leave an auditable decision: one
// Decision per Event, aligned in order, with a non-empty reason and the
// inputs (miss, goal, free pool, size) the pass saw.
func TestDecisionLogAlignsWithEvents(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 2000, DefaultGoal: 0.1})
	drive(cache, ctrl, 1, 0, 4*addr.MB, 60000)

	events := ctrl.Events()
	decs := ctrl.Decisions()
	if len(decs) == 0 {
		t.Fatal("no decisions recorded")
	}
	if len(decs) != len(events) {
		t.Fatalf("%d decisions vs %d events", len(decs), len(events))
	}
	if ctrl.DecisionCount() != uint64(len(decs)) {
		t.Fatalf("DecisionCount %d, retained %d with no overflow", ctrl.DecisionCount(), len(decs))
	}
	for i, d := range decs {
		e := events[i]
		if d.Seq != uint64(i+1) {
			t.Fatalf("decision %d has seq %d", i, d.Seq)
		}
		if d.At != e.At || d.ASID != e.ASID || d.Action != e.Action ||
			d.Delta != e.Delta || d.SizeAfter != e.Size || d.MissRate != e.MissRate {
			t.Fatalf("decision %d diverges from event: %+v vs %+v", i, d, e)
		}
		if d.Reason == "" {
			t.Fatalf("decision %d has no reason: %+v", i, d)
		}
		if d.SizeBefore+d.Delta != d.SizeAfter {
			t.Fatalf("decision %d sizes inconsistent: %+v", i, d)
		}
		if d.Goal != 0.1 || d.Deviation != d.MissRate-d.Goal {
			t.Fatalf("decision %d goal/deviation wrong: %+v", i, d)
		}
	}
	// The thrash drives emergency growth; its reason must say so.
	sawChunkReason := false
	for _, d := range decs {
		if d.Action == ActionGrowChunk {
			sawChunkReason = d.Reason != "" && d.Delta >= 0
		}
	}
	if !sawChunkReason {
		t.Fatal("no grow-chunk decision with a reason")
	}
	// Decisions must be JSON-serializable for GET /decisions.
	if _, err := json.Marshal(decs); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionRingBounded(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 1000, MinPeriod: 1000, DefaultGoal: 0.1, DecisionLog: 8})
	drive(cache, ctrl, 1, 0, 4*addr.MB, 40000)

	decs := ctrl.Decisions()
	if len(decs) != 8 {
		t.Fatalf("ring holds %d, want 8", len(decs))
	}
	if ctrl.DecisionCount() <= 8 {
		t.Fatalf("DecisionCount %d, want > ring size", ctrl.DecisionCount())
	}
	// Oldest-first and contiguous: the ring keeps the newest tail.
	for i := 1; i < len(decs); i++ {
		if decs[i].Seq != decs[i-1].Seq+1 {
			t.Fatalf("ring not contiguous at %d: %d then %d", i, decs[i-1].Seq, decs[i].Seq)
		}
	}
	if decs[len(decs)-1].Seq != ctrl.DecisionCount() {
		t.Fatalf("newest decision seq %d != total %d", decs[len(decs)-1].Seq, ctrl.DecisionCount())
	}
}

func TestDecisionLogDisabled(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 2000, DefaultGoal: 0.1, DecisionLog: -1})
	drive(cache, ctrl, 1, 0, 4*addr.MB, 10000)
	if len(ctrl.Decisions()) != 0 || ctrl.DecisionCount() != 0 {
		t.Fatal("disabled decision log still recorded")
	}
	if len(ctrl.Events()) == 0 {
		t.Fatal("events must keep flowing with the decision log off")
	}
}

// The unmanaged and empty-window early returns must still be audited.
func TestDecisionReasonsForInaction(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 2000, DefaultGoal: 0})
	drive(cache, ctrl, 1, 0, 64*addr.KB, 5000)
	decs := ctrl.Decisions()
	if len(decs) == 0 {
		t.Fatal("no decisions for unmanaged partition")
	}
	for _, d := range decs {
		if d.Action != ActionNone || d.Reason == "" {
			t.Fatalf("unmanaged decision wrong: %+v", d)
		}
	}
}

// Solo resize_tick spans must wrap every fired pass.
func TestResizeTickSpans(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 2000, MinPeriod: 2000, DefaultGoal: 0.1})
	st := telemetry.NewSpanTracer(1<<30, 0) // never samples accesses
	ctrl.AttachSpans(st)
	drive(cache, ctrl, 1, 0, 4*addr.MB, 10000)
	spans := st.Spans()
	if len(spans) == 0 {
		t.Fatal("no resize_tick spans recorded")
	}
	for _, sp := range spans {
		if sp.Name != "resize_tick" || sp.Depth != 0 {
			t.Fatalf("unexpected span %+v", sp)
		}
	}
	if st.Drops() != 0 {
		t.Fatalf("span drops: %d", st.Drops())
	}
}
