package resize

import "molcache/internal/telemetry"

// AttachTelemetry routes resize decisions through a tracer (one
// KindResize event per decision, mirroring the Events() log) and a
// registry (per-action decision counters and a live period gauge).
// Either may be nil; the default detached controller pays one pointer
// check per decision.
func (c *Controller) AttachTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	c.tracer = tr
	if reg == nil {
		c.decisions = nil
		return
	}
	c.decisions = map[Action]*telemetry.Counter{
		ActionGrowChunk:  reg.Counter(`molcache_resize_actions_total{action="grow-chunk"}`),
		ActionGrowLinear: reg.Counter(`molcache_resize_actions_total{action="grow-linear"}`),
		ActionShrink:     reg.Counter(`molcache_resize_actions_total{action="shrink"}`),
		ActionNone:       reg.Counter(`molcache_resize_actions_total{action="none"}`),
		ActionRebalance:  reg.Counter(`molcache_resize_actions_total{action="rebalance"}`),
	}
	reg.RegisterGaugeFunc("molcache_resize_period_addresses",
		func() float64 { return float64(c.period) })
	reg.RegisterGaugeFunc("molcache_resize_daemon_cycles",
		func() float64 { return float64(c.cycles) })
}

// observe records one decision on the attached telemetry. Called from
// resizeOne's deferred event append so tracing sees exactly the events
// the Events() log does, in the same order.
func (c *Controller) observe(ev Event) {
	if ctr := c.decisions[ev.Action]; ctr != nil {
		ctr.Inc()
	}
	if c.tracer != nil {
		c.tracer.Resize(ev.At, ev.ASID, string(ev.Action), ev.Delta, ev.Size)
	}
}
