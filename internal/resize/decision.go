package resize

// The decision log turns Algorithm 1 from a black box into an auditable
// one: every evaluation of a partition — including the ones that choose
// to do nothing — records the inputs the controller saw (windowed miss
// rate, goal, deviation, cluster free pool, shrink-regret floor, freeze
// state, period) alongside the action taken and a human-readable reason.
// The log is a bounded ring (DefaultDecisionLog entries): old decisions
// fall off, the total count keeps climbing, and recording costs a struct
// copy per resize pass — cheap enough to stay on unconditionally.
//
// Consumers: `molsim -explain-resize` dumps the tail, and the
// introspection server publishes the ring at GET /decisions.

// DefaultDecisionLog is the ring capacity when Config.DecisionLog is 0.
const DefaultDecisionLog = 4096

// Decision is one audited Algorithm 1 evaluation.
type Decision struct {
	// Seq numbers decisions from 1 across the whole run; with the ring
	// bounded, Seq exposes how many fell off the front.
	Seq uint64 `json:"seq"`
	// At is the cache-wide address count when the evaluation ran.
	At uint64 `json:"at"`
	// ASID identifies the partition evaluated.
	ASID uint16 `json:"asid"`

	// Inputs the controller saw.
	MissRate       float64 `json:"miss_rate"`
	Goal           float64 `json:"goal"`
	Deviation      float64 `json:"deviation"` // MissRate - Goal
	WindowAccesses uint64  `json:"window_accesses"`
	SizeBefore     int     `json:"size_before"`
	FreeInCluster  int     `json:"free_in_cluster"`
	// FreeGate is the free-pool threshold (2 x MaxAllocation) below
	// which an under-goal partition is taxed.
	FreeGate int `json:"free_gate"`
	// Floor is the shrink-regret floor in force.
	Floor int `json:"floor"`
	// Frozen reports whether emergency growth was frozen going in.
	Frozen bool `json:"frozen,omitempty"`
	// Period is the resize period in force (per-app under the per-app
	// trigger, the shared one otherwise).
	Period uint64 `json:"period"`

	// Outcome.
	Action    Action `json:"action"`
	Delta     int    `json:"delta"`
	SizeAfter int    `json:"size_after"`
	Reason    string `json:"reason"`
}

// record appends d to the bounded decision ring.
func (c *Controller) record(d Decision) {
	if c.decCap <= 0 {
		return
	}
	c.decSeq++
	d.Seq = c.decSeq
	if len(c.decs) < c.decCap {
		c.decs = append(c.decs, d)
		return
	}
	c.decs[c.decHead] = d
	c.decHead = (c.decHead + 1) % c.decCap
}

// Decisions returns the retained decision log, oldest first.
func (c *Controller) Decisions() []Decision {
	out := make([]Decision, 0, len(c.decs))
	out = append(out, c.decs[c.decHead:]...)
	out = append(out, c.decs[:c.decHead]...)
	return out
}

// DecisionCount returns the total number of decisions recorded,
// including any that have fallen off the ring.
func (c *Controller) DecisionCount() uint64 { return c.decSeq }
