package resize

import (
	"testing"

	"molcache/internal/telemetry"
)

// TestTracedResizeEventOrdering checks that the tracer's resize events
// mirror the Events() decision log exactly — same count, same order,
// same (At, ASID, Action, Delta, Size) — and that the per-action
// counters in the registry tally the same decisions.
func TestTracedResizeEventOrdering(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{
		Period:      2000,
		Trigger:     Constant,
		DefaultGoal: 0.10,
	})
	tr := telemetry.NewTracer(0)
	sink := telemetry.NewMemorySink()
	tr.SetSink(sink)
	reg := telemetry.NewRegistry()
	ctrl.AttachTelemetry(tr, reg)

	// Two phases: a small loop, then a working set far beyond the
	// initial 4 molecules, forcing a mixture of grow decisions.
	drive(cache, ctrl, 1, 0, 64*1024, 30_000)
	drive(cache, ctrl, 1, 0, 600*1024, 60_000)

	var traced []telemetry.Event
	for _, ev := range sink.Events() {
		if ev.Kind == telemetry.KindResize {
			traced = append(traced, ev)
		}
	}
	logged := ctrl.Events()
	if len(logged) == 0 {
		t.Fatal("controller made no decisions; the workload is miscalibrated")
	}
	if len(traced) != len(logged) {
		t.Fatalf("traced %d resize events, logged %d decisions", len(traced), len(logged))
	}
	actions := map[Action]uint64{}
	for i, ev := range logged {
		got := traced[i]
		if got.At != ev.At || got.ASID != ev.ASID || got.Detail != string(ev.Action) ||
			got.Value != int64(ev.Delta) || got.Aux != int64(ev.Size) {
			t.Errorf("event %d: traced %+v != logged %+v", i, got, ev)
		}
		actions[ev.Action]++
	}
	// Sequence numbers must be strictly increasing (emission order).
	for i := 1; i < len(traced); i++ {
		if traced[i].Seq <= traced[i-1].Seq {
			t.Errorf("event %d: seq %d not after %d", i, traced[i].Seq, traced[i-1].Seq)
		}
	}
	snap := reg.Snapshot()
	for act, n := range actions {
		name := `molcache_resize_actions_total{action="` + string(act) + `"}`
		if snap.Counters[name] != n {
			t.Errorf("counter %s = %d, want %d", name, snap.Counters[name], n)
		}
	}
}

// TestDetachedControllerEmitsNothing checks the default (nil) telemetry
// path still resizes and leaves no events behind.
func TestDetachedControllerEmitsNothing(t *testing.T) {
	cache := newCache(t)
	ctrl := MustNew(cache, Config{Period: 2000, Trigger: Constant, DefaultGoal: 0.10})
	drive(cache, ctrl, 1, 0, 600*1024, 30_000)
	if len(ctrl.Events()) == 0 {
		t.Fatal("no decisions made")
	}
	// Attach then detach: further decisions must not panic or emit.
	tr := telemetry.NewTracer(0)
	ctrl.AttachTelemetry(tr, telemetry.NewRegistry())
	ctrl.AttachTelemetry(nil, nil)
	before := tr.Emitted()
	drive(cache, ctrl, 1, 0, 600*1024, 10_000)
	if tr.Emitted() != before {
		t.Errorf("detached controller emitted %d events", tr.Emitted()-before)
	}
}
