// Package resize implements the paper's dynamic partition-sizing scheme
// (§3.4 and Algorithm 1): a controller that periodically reads each
// region's windowed miss rate and grows or shrinks the partition toward
// its miss-rate goal, with an adaptive resize period and miss-counter-
// guided placement.
//
// The paper runs this computation in an OS daemon costing ~1500 cycles
// per application every ~25,000 references; we model exactly that —
// a synchronous callback every period with an accounted cycle cost.
//
// Algorithm 1 interpretation (the pseudo-code leaves units implicit; see
// DESIGN.md §2):
//
//   - miss rate > 50%: grow by one maxAllocation chunk, after clamping
//     maxAllocation down to the last allocation actually obtained;
//   - miss rate < goal: withdraw sqrt(current * miss/goal) molecules — a
//     self-limiting count that stops as the miss rate rises toward the
//     goal ("withdraw molecules more slowly than you add");
//   - goal <= miss <= 50% and improving (miss < lastMiss): grow linearly
//     toward target = current * miss/goal, at most maxAllocation at once;
//   - otherwise: leave the partition alone this period.
//
// After the sweep the resize period doubles when the overall miss rate is
// within goal and collapses to 10% of itself when it is not.
package resize

import (
	"fmt"
	"math"
	"sort"

	"molcache/internal/molecular"
	"molcache/internal/telemetry"
)

// TriggerKind selects when resizing runs.
type TriggerKind string

const (
	// Constant resizes every Period addresses, unconditionally.
	Constant TriggerKind = "constant"
	// AdaptiveGlobal adapts one shared period from the cache-wide miss
	// rate (the paper finds this best for small tiles).
	AdaptiveGlobal TriggerKind = "adaptive-global"
	// AdaptivePerApp adapts an independent period per application from
	// that application's miss rate (better for tiles >= 2 MB per the
	// paper).
	AdaptivePerApp TriggerKind = "adaptive-per-app"
)

// Config parameterizes the controller.
type Config struct {
	// Period is the initial resize period, in addresses serviced by the
	// cache (the paper's experimentally chosen default is 25000).
	Period uint64
	// Trigger selects constant or adaptive scheduling.
	Trigger TriggerKind
	// MaxAllocation bounds molecules added in one chunk (default 8).
	MaxAllocation int
	// DefaultGoal is the miss-rate goal for applications without an
	// entry in Goals. Zero means "no goal": such applications are
	// never resized (Figure 5's Graph B exempts mcf this way).
	DefaultGoal float64
	// Goals overrides the goal per ASID.
	Goals map[uint16]float64
	// MinPeriod and MaxPeriod clamp period adaptation
	// (defaults 1000 and 100000). The cap bounds how long a phase
	// change can go unnoticed after a quiet stretch.
	MinPeriod, MaxPeriod uint64
	// CostCyclesPerApp models the daemon's compute cost (default 1500,
	// the paper's measured figure).
	CostCyclesPerApp uint64
	// DebugCheck audits the cache's structural invariants (including the
	// fast-path block index) after every resize pass. The controller
	// panics on a violation — resize passes mutate the replacement view
	// and the index together, so corruption here must stop the run at
	// the mutation, not at some later divergence. Test/debug aid.
	DebugCheck bool
	// DecisionLog sizes the bounded decision ring (see decision.go):
	// 0 means DefaultDecisionLog, negative disables recording.
	DecisionLog int
}

func (c Config) withDefaults() Config {
	if c.Period == 0 {
		c.Period = 25000
	}
	if c.Trigger == "" {
		c.Trigger = AdaptiveGlobal
	}
	if c.MaxAllocation == 0 {
		c.MaxAllocation = 8
	}
	if c.MinPeriod == 0 {
		c.MinPeriod = 1000
	}
	if c.MaxPeriod == 0 {
		c.MaxPeriod = 100000
	}
	if c.CostCyclesPerApp == 0 {
		c.CostCyclesPerApp = 1500
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Trigger {
	case Constant, AdaptiveGlobal, AdaptivePerApp:
	default:
		return fmt.Errorf("resize: unknown trigger %q", c.Trigger)
	}
	if c.DefaultGoal < 0 || c.DefaultGoal >= 1 {
		return fmt.Errorf("resize: default goal %v outside [0,1)", c.DefaultGoal)
	}
	// Check goals in ASID order so the reported error is the same one
	// every run when several goals are bad.
	asids := make([]uint16, 0, len(c.Goals))
	for asid := range c.Goals {
		asids = append(asids, asid)
	}
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })
	for _, asid := range asids {
		if g := c.Goals[asid]; g <= 0 || g >= 1 {
			return fmt.Errorf("resize: goal %v for ASID %d outside (0,1)", g, asid)
		}
	}
	if c.MinPeriod > c.MaxPeriod {
		return fmt.Errorf("resize: MinPeriod %d > MaxPeriod %d", c.MinPeriod, c.MaxPeriod)
	}
	if c.MaxAllocation < 0 {
		return fmt.Errorf("resize: negative MaxAllocation %d", c.MaxAllocation)
	}
	return nil
}

// Action names what the controller did to one partition.
type Action string

const (
	// ActionGrowChunk is the >50% miss-rate emergency growth.
	ActionGrowChunk Action = "grow-chunk"
	// ActionGrowLinear is the linear-model growth toward the goal.
	ActionGrowLinear Action = "grow-linear"
	// ActionShrink is the conservative sqrt-model withdrawal.
	ActionShrink Action = "shrink"
	// ActionNone means the partition was inspected but left alone.
	ActionNone Action = "none"
	// ActionRebalance moved a molecule between replacement-view rows
	// because the free pool could not satisfy a grow.
	ActionRebalance Action = "rebalance"
)

// Event records one per-partition resize decision, for tests, the
// resizing example and ablation benches.
type Event struct {
	// At is the cache-wide address count when the decision ran.
	At uint64
	// ASID identifies the partition.
	ASID uint16
	// MissRate is the windowed miss rate that drove the decision.
	MissRate float64
	// Action is what was done.
	Action Action
	// Delta is the signed change in molecules actually effected.
	Delta int
	// Size is the partition size after the decision.
	Size int
}

// appState carries per-application controller state.
type appState struct {
	lastMiss   float64
	haveLast   bool
	lastAction Action
	lastAlloc  int
	maxAlloc   int
	// floor is the partition size the controller will not shrink below:
	// set when a shrink was immediately followed by a blown goal (the
	// miss-vs-size cliff was found), decayed slowly to allow re-probing.
	floor     int
	preShrink int
	floorAge  int
	shrinkAge int
	// rebalanceCool spaces out row rebalances (each flushes a molecule).
	rebalanceCool int
	// Emergency-growth payoff audit state.
	growSinceMark int
	missAtMark    float64
	markAt        uint64
	frozen        int
	period        uint64 // per-app trigger only
	nextAt        uint64 // per-app trigger only (in app-local accesses)
}

// Controller drives periodic resizing of a molecular cache.
type Controller struct {
	//molvet:transient construction config, re-supplied at restore
	cfg Config
	//molvet:transient live cache reference re-wired at restore
	cache  *molecular.Cache
	period uint64
	nextAt uint64
	apps   map[uint16]*appState
	events []Event
	cycles uint64

	// Bounded decision ring (decision.go).
	decs    []Decision
	decHead int
	//molvet:transient ring capacity derived from Config at construction
	decCap int
	decSeq uint64

	// tracer, decisions and spans are the telemetry attachments (nil by
	// default; a detached controller pays one pointer check per pass).
	//molvet:transient telemetry attachment re-established after restore
	tracer *telemetry.Tracer
	//molvet:transient derived metric cells re-created when the registry is re-attached
	decisions map[Action]*telemetry.Counter
	//molvet:transient telemetry attachment re-established after restore
	spans *telemetry.SpanTracer
}

// AttachSpans routes resize passes through st as solo "resize_tick"
// spans (one per pass, always recorded). Nil detaches.
func (c *Controller) AttachSpans(st *telemetry.SpanTracer) { c.spans = st }

// New builds a controller for cache.
func New(cache *molecular.Cache, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	decCap := cfg.DecisionLog
	if decCap == 0 {
		decCap = DefaultDecisionLog
	}
	return &Controller{
		cfg:    cfg,
		cache:  cache,
		period: cfg.Period,
		nextAt: cfg.Period,
		apps:   make(map[uint16]*appState),
		decCap: decCap,
	}, nil
}

// MustNew is New panicking on error.
func MustNew(cache *molecular.Cache, cfg Config) *Controller {
	c, err := New(cache, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Goal returns the miss-rate goal for asid (0 = unmanaged).
func (c *Controller) Goal(asid uint16) float64 {
	if g, ok := c.cfg.Goals[asid]; ok {
		return g
	}
	return c.cfg.DefaultGoal
}

// SetGoal overrides the miss-rate goal for asid, taking effect at the
// next resize evaluation. A zero goal removes the override so Goal
// falls back to DefaultGoal. The Goals map is cloned on write so a
// caller-shared Config map is never mutated; the new map is what
// Config() (and therefore a checkpoint) observes afterwards.
func (c *Controller) SetGoal(asid uint16, goal float64) error {
	if goal < 0 || goal >= 1 {
		return fmt.Errorf("resize: goal %v for ASID %d outside [0,1)", goal, asid)
	}
	goals := make(map[uint16]float64, len(c.cfg.Goals)+1)
	for k, v := range c.cfg.Goals {
		goals[k] = v
	}
	if goal == 0 {
		delete(goals, asid)
	} else {
		goals[asid] = goal
	}
	c.cfg.Goals = goals
	return nil
}

// Events returns the decision log.
func (c *Controller) Events() []Event { return c.events }

// CyclesSpent returns the modelled daemon compute cost so far.
func (c *Controller) CyclesSpent() uint64 { return c.cycles }

// Period returns the current (global) resize period.
func (c *Controller) Period() uint64 { return c.period }

// Trigger returns the configured trigger kind. The sharded engine reads
// it to decide whether epoch boundaries can be planned on the global
// access clock (Constant, AdaptiveGlobal) or whether it must fall back
// to serial execution (AdaptivePerApp fires on per-app ledger counts
// that move mid-epoch).
func (c *Controller) Trigger() TriggerKind { return c.cfg.Trigger }

// NextTriggerAt returns the cache-wide address count at which the next
// resize pass fires, and false for triggers that are not scheduled on
// the global access clock (AdaptivePerApp). Epoch planners end an epoch
// before this count so Tick observes the exact address the serial
// engine would have.
func (c *Controller) NextTriggerAt() (uint64, bool) {
	switch c.cfg.Trigger {
	case Constant, AdaptiveGlobal:
		return c.nextAt, true
	default:
		return 0, false
	}
}

// state returns (creating if needed) the per-app state.
func (c *Controller) state(asid uint16) *appState {
	s := c.apps[asid]
	if s == nil {
		s = &appState{
			maxAlloc: c.cfg.MaxAllocation,
			period:   c.cfg.Period,
			nextAt:   c.cfg.Period,
		}
		c.apps[asid] = s
	}
	return s
}

// Tick must be called after every cache access; it fires the resize pass
// when a trigger is due. Returns true when a resize pass ran.
func (c *Controller) Tick() bool {
	switch c.cfg.Trigger {
	case Constant, AdaptiveGlobal:
		if c.cache.Addresses() < c.nextAt {
			return false
		}
		c.spans.BeginSolo("resize_tick", c.cache.Addresses(), 0)
		c.resizeAll()
		c.adaptGlobal()
		c.spans.EndSolo()
		c.nextAt = c.cache.Addresses() + c.period
		c.debugCheck()
		return true
	case AdaptivePerApp:
		fired := false
		for _, r := range c.cache.Regions() {
			if r.ASID() == molecular.SharedASID {
				continue
			}
			s := c.state(r.ASID())
			if r.Ledger().Accesses() < s.nextAt {
				continue
			}
			c.spans.BeginSolo("resize_tick", c.cache.Addresses(), r.ASID())
			miss := c.resizeOne(r, s)
			c.spans.EndSolo()
			// Adapt this app's own period.
			if goal := c.Goal(r.ASID()); goal > 0 {
				if miss < goal {
					s.period = clamp(s.period*2, c.cfg.MinPeriod, c.cfg.MaxPeriod)
				} else {
					s.period = clamp(s.period/10, c.cfg.MinPeriod, c.cfg.MaxPeriod)
				}
			}
			s.nextAt = r.Ledger().Accesses() + s.period
			fired = true
		}
		if fired {
			c.debugCheck()
		}
		return fired
	default:
		// An unknown trigger is rejected by Config.Validate; a controller
		// built around validation simply never fires.
		return false
	}
}

// resizeAll runs Algorithm 1 over every partition, neediest first, so
// that when the free pool cannot satisfy everyone the worst-missing
// partition gets first claim.
func (c *Controller) resizeAll() {
	regions := c.cache.Regions()
	sort.SliceStable(regions, func(i, j int) bool {
		return regions[i].Window().Snapshot().MissRate() >
			regions[j].Window().Snapshot().MissRate()
	})
	for _, r := range regions {
		if r.ASID() == molecular.SharedASID {
			continue
		}
		c.resizeOne(r, c.state(r.ASID()))
	}
}

// adaptGlobal updates the shared period from the cache-wide miss rate
// (AdaptiveGlobal only; Constant keeps its period).
func (c *Controller) adaptGlobal() {
	if c.cfg.Trigger != AdaptiveGlobal {
		c.cache.GlobalWindow().Roll()
		return
	}
	w := c.cache.GlobalWindow().Roll()
	goal := c.globalGoal()
	if w.Accesses() == 0 || goal <= 0 {
		return
	}
	if w.MissRate() < goal {
		c.period = clamp(c.period*2, c.cfg.MinPeriod, c.cfg.MaxPeriod)
	} else {
		c.period = clamp(c.period/10, c.cfg.MinPeriod, c.cfg.MaxPeriod)
	}
}

// globalGoal is the mean of the managed applications' goals.
func (c *Controller) globalGoal() float64 {
	sum, n := 0.0, 0
	for _, r := range c.cache.Regions() {
		if r.ASID() == molecular.SharedASID {
			continue
		}
		if g := c.Goal(r.ASID()); g > 0 {
			sum += g
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// resizeOne applies Algorithm 1 to one partition and returns the windowed
// miss rate it used.
func (c *Controller) resizeOne(r *molecular.Region, s *appState) float64 {
	c.cycles += c.cfg.CostCyclesPerApp
	w := r.Window().Roll()
	goal := c.Goal(r.ASID())
	miss := w.MissRate()
	ev := Event{
		At:       c.cache.Addresses(),
		ASID:     r.ASID(),
		MissRate: miss,
		Action:   ActionNone,
	}
	// Decision-log inputs, captured before the pass mutates anything.
	sizeBefore := r.MoleculeCount()
	free := c.cache.FreeInCluster(r)
	wasFrozen := s.frozen > 0
	period := c.period
	if c.cfg.Trigger == AdaptivePerApp {
		period = s.period
	}
	reason := ""
	defer func() {
		ev.Size = r.MoleculeCount()
		c.events = append(c.events, ev)
		c.observe(ev)
		if reason == "" {
			// The switch matched no case (or a case chose inaction
			// without saying why): the partition is simply healthy.
			if miss < goal {
				reason = fmt.Sprintf("miss %.3f under goal %.3f and cluster free pool ample (free %d > gate %d): no shrink tax",
					miss, goal, free, 2*c.cfg.MaxAllocation)
			} else {
				reason = fmt.Sprintf("miss %.3f meets goal %.3f: leave alone", miss, goal)
			}
		}
		c.record(Decision{
			At:             ev.At,
			ASID:           ev.ASID,
			MissRate:       miss,
			Goal:           goal,
			Deviation:      miss - goal,
			WindowAccesses: w.Accesses(),
			SizeBefore:     sizeBefore,
			FreeInCluster:  free,
			FreeGate:       2 * c.cfg.MaxAllocation,
			Floor:          s.floor,
			Frozen:         wasFrozen,
			Period:         period,
			Action:         ev.Action,
			Delta:          ev.Delta,
			SizeAfter:      ev.Size,
			Reason:         reason,
		})
		// Consume the epoch's placement counters only after the grow/
		// shrink placement has used them.
		r.ResetEpoch()
		s.lastMiss = miss
		s.haveLast = true
		s.lastAction = ev.Action
	}()
	if goal <= 0 {
		reason = "no miss-rate goal set: partition unmanaged"
		return miss
	}
	if w.Accesses() == 0 {
		reason = "no accesses in window: nothing to learn"
		return miss
	}
	// Shrink regret: a shrink that blew the goal found the partition's
	// miss-vs-size cliff; pin the floor at the pre-shrink size so the
	// controller stops oscillating across the cliff. The first window
	// after a shrink is skipped — it carries the flushed molecules'
	// refetch transient, not the steady state. The floor decays slowly
	// so a phase change can be re-probed.
	if s.lastAction == ActionShrink {
		s.shrinkAge = 0
	} else {
		s.shrinkAge++
	}
	if s.shrinkAge == 1 && miss > goal && s.preShrink > s.floor {
		s.floor = s.preShrink
		s.floorAge = 0
	}
	if s.rebalanceCool > 0 {
		s.rebalanceCool--
	}
	if s.floor > 1 {
		s.floorAge++
		if s.floorAge > floorDecayPeriods {
			s.floor--
			s.floorAge = 0
		}
	}
	cur := sizeBefore
	switch {
	case miss > 0.5 && miss > goal:
		// Emergency growth by one chunk; per the pseudo-code, the chunk
		// clamps down to what the cluster actually delivered last time,
		// so a partition in a drained cluster stops over-requesting.
		//
		// Payoff audit: a pure-streaming application (CRC) misses at
		// 100% no matter how many molecules it holds; feeding it only
		// starves its cluster-mates. Every futilityWindow molecules of
		// emergency growth the controller checks whether the miss rate
		// actually moved; if not, further emergency growth freezes for
		// freezePasses.
		if s.frozen > 0 {
			s.frozen--
			reason = fmt.Sprintf("miss %.3f > 0.5 but emergency growth frozen (%d passes left) after a failed futility audit",
				miss, s.frozen)
			return miss
		}
		if s.growSinceMark >= futilityWindow {
			// A window's worth of growth is in place; hold until the
			// audit horizon passes (the miss rate cannot respond
			// faster than the working set's reuse distance), then
			// judge it.
			if c.cache.Addresses()-s.markAt < auditMinAddresses {
				reason = fmt.Sprintf("futility audit pending: %d emergency molecules granted, judging after %d addresses (%d elapsed)",
					s.growSinceMark, uint64(auditMinAddresses), c.cache.Addresses()-s.markAt)
				return miss
			}
			if miss > 0.98*s.missAtMark {
				// The capacity bought nothing: give it back to the
				// cluster and freeze further emergency growth.
				n, _ := c.cache.Shrink(r, s.growSinceMark)
				s.frozen = freezePasses
				ev.Action = ActionShrink
				ev.Delta = -n
				reason = fmt.Sprintf("futility audit failed: miss %.3f vs %.3f at mark; reclaimed %d molecules and froze emergency growth for %d passes",
					miss, s.missAtMark, n, freezePasses)
			} else {
				reason = fmt.Sprintf("futility audit passed: miss %.3f improved from %.3f at mark; emergency growth may continue",
					miss, s.missAtMark)
			}
			s.growSinceMark = 0
			return miss
		}
		if s.lastAlloc > 0 && s.maxAlloc > s.lastAlloc {
			s.maxAlloc = s.lastAlloc
		}
		if s.maxAlloc < 1 {
			s.maxAlloc = 1
		}
		// Grow only errors on a negative count, which maxAlloc (>= 1 by
		// the clamp above) never is; treat a failure as zero obtained.
		got, err := c.cache.Grow(r, s.maxAlloc)
		if err != nil {
			got = 0
		}
		if got > 0 {
			s.lastAlloc = got
		}
		if got == 0 && s.rebalanceCool <= 0 && c.cache.Rebalance(r) {
			ev.Action = ActionRebalance
			s.rebalanceCool = rebalanceCooldown
			reason = fmt.Sprintf("miss %.3f > 0.5 but cluster free pool exhausted (free %d): rebalanced rows with owned molecules",
				miss, free)
			break
		}
		if s.growSinceMark == 0 {
			s.missAtMark = miss
			s.markAt = c.cache.Addresses()
		}
		s.growSinceMark += got
		ev.Action = ActionGrowChunk
		ev.Delta = got
		reason = fmt.Sprintf("miss %.3f > 0.5 and over goal %.3f: emergency grow by chunk (asked %d, got %d)",
			miss, goal, s.maxAlloc, got)
	case miss < goal &&
		c.cache.FreeInCluster(r) <= 2*c.cfg.MaxAllocation:
		// Conservative shrink: withdraw sqrt(cur*miss/goal) molecules.
		// The count is self-limiting — as the partition tightens, the
		// miss rate rises toward the goal and withdrawals stop —
		// implementing "withdraw molecules more slowly than you add".
		// A partition is only taxed while the cluster's free pool is
		// under pressure: withdrawing capacity nobody is asking for
		// just costs refetches. The shrink-regret floor (below)
		// prevents the under-goal nibbling from oscillating across the
		// partition's miss-vs-size cliff.
		count := int(math.Sqrt(float64(cur) * miss / goal))
		if count > cur-1 {
			count = cur - 1
		}
		if s.floor > 0 && cur-count < s.floor {
			count = cur - s.floor
		}
		if count > 0 {
			s.preShrink = cur
			n, _ := c.cache.Shrink(r, count)
			ev.Action = ActionShrink
			ev.Delta = -n
			reason = fmt.Sprintf("miss %.3f under goal %.3f with cluster free pool low (free %d <= gate %d): withdrew sqrt-model %d molecules",
				miss, goal, free, 2*c.cfg.MaxAllocation, n)
		} else if s.floor > 0 && cur <= s.floor {
			reason = fmt.Sprintf("miss %.3f under goal %.3f but shrink-regret floor %d holds the partition at %d",
				miss, goal, s.floor, cur)
		} else {
			reason = fmt.Sprintf("miss %.3f under goal %.3f but partition already minimal (%d molecules)",
				miss, goal, cur)
		}
	case miss > goal:
		// Linear-model growth toward the goal, one bounded chunk.
		// (The pseudo-code gates this on an improving miss rate; that
		// gate starves a partition whose miss rate plateaus above the
		// goal, so growth fires whenever the goal is missed.)
		target := int(math.Ceil(float64(cur) * miss / goal))
		delta := target - cur
		if delta > c.cfg.MaxAllocation {
			delta = c.cfg.MaxAllocation
		}
		if delta > 0 {
			got, err := c.cache.Grow(r, delta)
			if err != nil {
				got = 0
			}
			if got > 0 {
				s.lastAlloc = got
			}
			if got == 0 && s.rebalanceCool <= 0 && c.cache.Rebalance(r) {
				// Pool exhausted: adapt the replacement view's row
				// widths with the molecules already owned.
				ev.Action = ActionRebalance
				s.rebalanceCool = rebalanceCooldown
				reason = fmt.Sprintf("miss %.3f over goal %.3f but cluster free pool exhausted (free %d): rebalanced rows with owned molecules",
					miss, goal, free)
				break
			}
			ev.Action = ActionGrowLinear
			ev.Delta = got
			reason = fmt.Sprintf("miss %.3f over goal %.3f: linear growth toward target %d (asked %d, got %d)",
				miss, goal, target, delta, got)
		} else {
			reason = fmt.Sprintf("miss %.3f over goal %.3f but linear target %d already met", miss, goal, target)
		}
	}
	return miss
}

// debugCheck audits the cache's structural invariants when
// Config.DebugCheck is set, and panics on the first violation — a
// resize pass that corrupted the replacement view or the block index
// must stop the run at the mutation, not at a later divergence.
func (c *Controller) debugCheck() {
	if !c.cfg.DebugCheck {
		return
	}
	if err := c.cache.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("resize: invariant violated after resize pass: %v", err))
	}
}

func clamp(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// floorDecayPeriods is how many resize passes a shrink-regret floor holds
// before decaying by one molecule (allowing slow re-probing of the cliff),
// and regretFactor is how far past the goal the post-shrink window must
// land before the floor pins (plain noise around the goal must not pin).
const floorDecayPeriods = 10

// rebalanceCooldown is the number of resize passes between row
// rebalances of one partition (each rebalance flushes a molecule).
const rebalanceCooldown = 8

// futilityWindow is how many emergency-growth molecules are granted
// between payoff audits; freezePasses is how long emergency growth
// freezes when an audit finds the extra capacity bought nothing.
const (
	futilityWindow = 32
	freezePasses   = 50
	// auditMinAddresses is the horizon one audit spans: miss rates
	// cannot respond faster than the workload's reuse distance, so the
	// grown partition runs at least this many cache-wide addresses
	// before being judged.
	auditMinAddresses = 50000
)
