package obs

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/telemetry"
)

// Flags is the observability flag set every CLI mounts, so
// -events/-metrics/-snapshot-every/-serve (and, where span tracing
// applies, -trace-out/-trace-sample) mean the same thing in molsim,
// experiments and sweep.
type Flags struct {
	// Events is the JSONL telemetry event file (-events).
	Events string
	// Metrics is the final Prometheus text snapshot file, "-" for
	// stdout (-metrics).
	Metrics string
	// SnapshotEvery streams periodic JSON metric snapshots to stderr
	// (-snapshot-every).
	SnapshotEvery time.Duration
	// Serve is the introspection server listen address (-serve).
	Serve string
	// TraceOut is the Chrome trace-event JSON span file (-trace-out).
	TraceOut string
	// TraceSample traces one access in every TraceSample (-trace-sample).
	TraceSample int
}

// Register mounts the core observability flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Events, "events", "", "write telemetry events (JSONL) to this file")
	fs.StringVar(&f.Metrics, "metrics", "", "write a final metrics snapshot (Prometheus text) to this file; \"-\" for stdout")
	fs.DurationVar(&f.SnapshotEvery, "snapshot-every", 0, "also stream periodic JSON metrics snapshots to stderr at this interval")
	fs.StringVar(&f.Serve, "serve", "", "serve live introspection (/metrics /regions /decisions /events /debug/pprof) on this address, e.g. :9464")
}

// RegisterSpans additionally mounts the span-tracing flags, for
// commands that drive a cache with a traceable access pipeline.
func (f *Flags) RegisterSpans(fs *flag.FlagSet) {
	fs.StringVar(&f.TraceOut, "trace-out", "", "write sampled access-pipeline spans (Chrome trace-event JSON, loads in ui.perfetto.dev) to this file")
	fs.IntVar(&f.TraceSample, "trace-sample", telemetry.DefaultSpanSample, "with -trace-out, trace every Nth access (deterministic in the access count; 1 = every access)")
}

// Pipeline is everything Setup built from the flags. Nil fields mean
// that piece was not requested; every consumer in this repo is nil-safe,
// so callers attach unconditionally.
type Pipeline struct {
	// Tracer records structured events (non-nil with -events or -serve).
	Tracer *telemetry.Tracer
	// Registry accumulates metrics (non-nil with -metrics,
	// -snapshot-every or -serve).
	Registry *telemetry.Registry
	// Spans samples the access pipeline (non-nil with -trace-out).
	Spans *telemetry.SpanTracer
	// Publisher and Server exist with -serve; Tap feeds /events.
	Publisher *Publisher
	Server    *Server
	Tap       *EventTap

	flags     Flags
	eventsF   *os.File
	stopSnaps func() error
	finished  bool
}

// Setup builds the requested observability pipeline. Callers should
// defer Close (which also Finishes) and, on the normal exit path, call
// Finish explicitly before printing results so output files are
// complete even when os.Exit follows.
func (f Flags) Setup() (*Pipeline, error) {
	p := &Pipeline{flags: f}
	serving := f.Serve != ""
	if f.Events != "" || serving {
		var inner telemetry.Sink
		if f.Events != "" {
			file, err := os.Create(f.Events)
			if err != nil {
				return nil, err
			}
			p.eventsF = file
			inner = telemetry.NewJSONLSink(file)
		}
		p.Tracer = telemetry.NewTracer(0)
		if serving {
			// The tap tees the (optional) file sink and feeds /events.
			p.Tap = NewEventTap(inner)
			p.Tracer.SetSink(p.Tap)
		} else {
			p.Tracer.SetSink(inner)
		}
	}
	if f.Metrics != "" || f.SnapshotEvery > 0 || serving {
		p.Registry = telemetry.NewRegistry()
	}
	if f.SnapshotEvery > 0 {
		p.stopSnaps = telemetry.StartPeriodicSnapshots(p.Registry, os.Stderr, f.SnapshotEvery)
	}
	if f.TraceOut != "" {
		sample := f.TraceSample
		if sample < 0 {
			sample = 0 // NewSpanTracer substitutes the default
		}
		p.Spans = telemetry.NewSpanTracer(uint64(sample), 0)
	}
	if serving {
		p.Publisher = NewPublisher()
		srv, err := Serve(f.Serve, Options{
			Publisher: p.Publisher,
			Registry:  p.Registry,
			Tap:       p.Tap,
		})
		if err != nil {
			if p.eventsF != nil {
				p.eventsF.Close()
			}
			return nil, err
		}
		p.Server = srv
	}
	return p, nil
}

// Publish collects a fresh state snapshot from the simulation objects
// and installs it for the HTTP handlers. Call it from the goroutine
// that owns the cache; it is a no-op without -serve.
func (p *Pipeline) Publish(c *molecular.Cache, ctrl *resize.Controller) {
	if p == nil || p.Publisher == nil {
		return
	}
	p.Publisher.Publish(Collect(c, ctrl, p.Registry))
}

// Finish drains the pipeline's file outputs: stops periodic snapshots,
// flushes and closes the event sink, writes the span trace and the
// final metrics snapshot. Idempotent; logs (rather than returns)
// write errors, matching how the CLIs treat telemetry output.
func (p *Pipeline) Finish() {
	if p == nil || p.finished {
		return
	}
	p.finished = true
	if p.stopSnaps != nil {
		if err := p.stopSnaps(); err != nil {
			log.Print(err)
		}
	}
	if p.Tracer != nil {
		if err := p.Tracer.Flush(); err != nil {
			log.Print(err)
		}
	}
	if p.eventsF != nil {
		if err := p.eventsF.Close(); err != nil {
			log.Print(err)
		}
	}
	if p.Spans != nil && p.flags.TraceOut != "" {
		if err := writeSpanTrace(p.flags.TraceOut, p.Spans); err != nil {
			log.Print(err)
		}
	}
	if p.Registry != nil && p.flags.Metrics != "" {
		text := p.Registry.Snapshot().PrometheusString()
		if p.flags.Metrics == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(p.flags.Metrics, []byte(text), 0o644); err != nil {
			log.Print(err)
		}
	}
}

// Close Finishes the pipeline and shuts the introspection server down.
func (p *Pipeline) Close() {
	if p == nil {
		return
	}
	p.Finish()
	if p.Server != nil {
		if err := p.Server.Close(); err != nil {
			log.Print(err)
		}
	}
}

func writeSpanTrace(path string, st *telemetry.SpanTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := st.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
