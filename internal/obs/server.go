package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"molcache/internal/resize"
	"molcache/internal/telemetry"
)

// Options wires the introspection endpoints to their data sources. Any
// field may be nil; the matching endpoint degrades gracefully (503 for
// /events without a tap, empty documents elsewhere).
type Options struct {
	// Publisher supplies /regions, /decisions and — when a state has
	// been published — /metrics.
	Publisher *Publisher
	// Registry is the /metrics fallback before the first publish; only
	// its AtomicSnapshot is taken (gauge funcs stay on the sim thread).
	Registry *telemetry.Registry
	// Tap feeds /events.
	Tap *EventTap
}

// NewMux builds the introspection handler tree:
//
//	GET /            index
//	GET /metrics     Prometheus text exposition
//	GET /regions     live region topology (JSON)
//	GET /decisions   resize decision log (JSON)
//	GET /events      Server-Sent Events stream of telemetry events
//	GET /healthz     liveness: snapshot age, event-tap drops (JSON)
//	GET /debug/pprof the standard Go profiling endpoints
func NewMux(opts Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", indexHandler)
	mux.HandleFunc("/healthz", healthzHandler(opts))
	mux.HandleFunc("/metrics", metricsHandler(opts))
	mux.HandleFunc("/regions", regionsHandler(opts))
	mux.HandleFunc("/tenants", tenantsHandler(opts))
	mux.HandleFunc("/decisions", decisionsHandler(opts))
	mux.HandleFunc("/events", eventsHandler(opts))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func indexHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `molcache introspection server

  /metrics      Prometheus text exposition (counters, gauges, histograms)
  /regions      per-ASID region topology, occupancy, miss rate vs goal (JSON)
  /tenants      molcached tenant table: name-to-ASID, SLO status (JSON)
  /decisions    resize controller decision log (JSON)
  /events       live telemetry event stream (Server-Sent Events)
  /healthz      liveness and staleness: snapshot age, event-tap drops (JSON)
  /debug/pprof  Go runtime profiles
`)
}

// healthzHandler reports the observability plane's own health: whether
// a state has been published, how stale it is, and whether the event
// tap is shedding load. It reads only atomics and the published
// pointer, so it is safe from any goroutine.
func healthzHandler(opts Options) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		resp := struct {
			Status           string  `json:"status"`
			LastPublish      string  `json:"last_publish,omitempty"`
			SnapshotAge      float64 `json:"snapshot_age_seconds"`
			SnapshotAtAccess uint64  `json:"snapshot_at_access"`
			EventsWritten    uint64  `json:"events_written"`
			EventsDropped    uint64  `json:"events_dropped"`
			EventSubscribers int     `json:"event_subscribers"`
		}{Status: "ok", SnapshotAge: -1}
		if st := opts.Publisher.Latest(); st != nil {
			resp.SnapshotAtAccess = st.At
		} else {
			resp.Status = "no-snapshot"
		}
		if t := opts.Publisher.LastPublish(); !t.IsZero() {
			resp.LastPublish = t.UTC().Format(time.RFC3339Nano)
			resp.SnapshotAge = time.Since(t).Seconds()
		}
		if opts.Tap != nil {
			resp.EventsWritten = opts.Tap.Written()
			resp.EventsDropped = opts.Tap.Dropped()
			resp.EventSubscribers = opts.Tap.Subscribers()
		}
		writeJSON(w, resp)
	}
}

func metricsHandler(opts Options) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Prefer the last published snapshot: it is internally
		// consistent and includes gauge-func values, which only the sim
		// thread may read. Before the first publish, fall back to the
		// registry's lock-free subset.
		var snap telemetry.Snapshot
		switch st := opts.Publisher.Latest(); {
		case st != nil:
			snap = st.Metrics
		case opts.Registry != nil:
			snap = opts.Registry.AtomicSnapshot()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.Prometheus(w)
	}
}

func regionsHandler(opts Options) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st := opts.Publisher.Latest()
		if st == nil {
			st = &State{}
		}
		if st.Regions == nil {
			// Keep the payload well-formed for consumers: "regions":[]
			// rather than null.
			clone := *st
			clone.Regions = []RegionInfo{}
			st = &clone
		}
		writeJSON(w, st)
	}
}

func tenantsHandler(opts Options) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st := opts.Publisher.Latest()
		if st == nil {
			st = &State{}
		}
		tenants := st.Tenants
		if tenants == nil {
			tenants = []TenantInfo{}
		}
		resp := struct {
			At      uint64       `json:"at"`
			Tenants []TenantInfo `json:"tenants"`
		}{At: st.At, Tenants: tenants}
		writeJSON(w, resp)
	}
}

func decisionsHandler(opts Options) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st := opts.Publisher.Latest()
		if st == nil {
			st = &State{}
		}
		decs := st.Decisions
		if decs == nil {
			decs = []resize.Decision{}
		}
		resp := struct {
			At       uint64            `json:"at"`
			Total    uint64            `json:"total"`
			Retained int               `json:"retained"`
			Dropped  uint64            `json:"dropped"`
			Events   []resize.Decision `json:"decisions"`
		}{
			At:       st.At,
			Total:    st.DecisionsTotal,
			Retained: len(decs),
			Dropped:  st.DecisionsTotal - uint64(len(decs)),
			Events:   decs,
		}
		writeJSON(w, resp)
	}
}

func eventsHandler(opts Options) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if opts.Tap == nil {
			http.Error(w, "no event stream attached: run the command with -events or -serve",
				http.StatusServiceUnavailable)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		ch, cancel := opts.Tap.Subscribe(sseSubscriberBuffer)
		defer cancel()
		fmt.Fprintf(w, ": molcache telemetry stream\n\n")
		fl.Flush()
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, ok := <-ch:
				if !ok {
					return
				}
				data, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "data: %s\n\n", data)
				fl.Flush()
			}
		}
	}
}

// sseSubscriberBuffer bounds per-subscriber memory on /events; when a
// client falls this far behind, events are dropped (and counted) rather
// than blocking the simulation.
const sseSubscriberBuffer = 1024

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Server is a running introspection server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. ":9464" or "127.0.0.1:0") and serves the
// introspection mux in the background until Close.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(opts)}
	s := &Server{ln: ln, srv: srv}
	go srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately, dropping in-flight streams.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
