// Package obs is the live observability plane: an introspection HTTP
// server (Prometheus metrics, region topology, resize decisions, an SSE
// event stream, pprof), a publisher that hands the server immutable
// snapshots of simulation state, and the shared observability flag set
// every CLI mounts.
//
// The concurrency contract keeps the deterministic simulation single-
// threaded: HTTP handlers NEVER touch live simulation objects. The
// goroutine that owns the cache calls Collect + Publish at points of
// its choosing (every N accesses, end of run); handlers only read the
// last published *State through an atomic pointer, plus the registry's
// AtomicSnapshot (counters/gauges/histograms only — gauge funcs read
// sim state and stay on the sim thread). This package is on molvet's
// concurrency allow-list; the simulation packages it observes are not,
// and stay free of goroutines.
package obs

import (
	"sync/atomic"
	"time"

	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/telemetry"
)

// TileCount is one tile's share of a region's molecules.
type TileCount struct {
	Tile      int `json:"tile"`
	Molecules int `json:"molecules"`
}

// RegionInfo is the published view of one per-ASID region: topology,
// occupancy, miss rate vs. goal, and the last resize action taken on it.
type RegionInfo struct {
	ASID       uint16 `json:"asid"`
	Shared     bool   `json:"shared,omitempty"`
	HomeTile   int    `json:"home_tile"`
	Policy     string `json:"policy"`
	LineFactor int    `json:"line_factor"`

	Molecules    int         `json:"molecules"`
	AvgMolecules float64     `json:"avg_molecules"`
	Rows         []int       `json:"rows"`
	Tiles        []TileCount `json:"tiles"`

	Accesses       uint64  `json:"accesses"`
	MissRate       float64 `json:"miss_rate"`
	WindowMissRate float64 `json:"window_miss_rate"`
	Goal           float64 `json:"goal,omitempty"`
	// Deviation is MissRate - Goal (only meaningful with a goal set):
	// positive means the partition is missing its QoS target.
	Deviation float64 `json:"deviation,omitempty"`

	LastResize *resize.Decision `json:"last_resize,omitempty"`
}

// TenantInfo is the published view of one molcached tenant: the
// name-to-ASID binding, its SLO goal, stored-key count and the region
// stats that tell whether the goal is being met. The serving layer
// (internal/server) fills these in after Collect; simulators without a
// tenant table leave the slice nil and /tenants serves an empty list.
type TenantInfo struct {
	Name           string  `json:"name"`
	ASID           uint16  `json:"asid"`
	Goal           float64 `json:"goal"`
	LineFactor     int     `json:"line_factor,omitempty"`
	Keys           int     `json:"keys"`
	Molecules      int     `json:"molecules"`
	Accesses       uint64  `json:"accesses"`
	MissRate       float64 `json:"miss_rate"`
	WindowMissRate float64 `json:"window_miss_rate"`
	// SLOMet reports whether the windowed miss rate is within the goal.
	SLOMet bool `json:"slo_met"`
}

// State is one immutable snapshot of the simulation, built on the sim
// thread by Collect and served read-only by the HTTP handlers. The
// decision log and tenant table are kept out of the /regions payload
// (each has its own endpoint) via the json:"-" tag.
type State struct {
	Cache         string       `json:"cache,omitempty"`
	At            uint64       `json:"at"`
	Accesses      uint64       `json:"accesses"`
	MissRate      float64      `json:"miss_rate"`
	FreeMolecules int          `json:"free_molecules"`
	RemoteCycles  uint64       `json:"remote_cycles"`
	Regions       []RegionInfo `json:"regions"`

	Tenants        []TenantInfo       `json:"-"`
	Decisions      []resize.Decision  `json:"-"`
	DecisionsTotal uint64             `json:"-"`
	Metrics        telemetry.Snapshot `json:"-"`
}

// Publisher hands immutable States from the simulation goroutine to the
// HTTP handlers. Publish/Latest are safe from any goroutine; a nil
// *Publisher is valid and always Latest()s nil.
type Publisher struct {
	cur atomic.Pointer[State]
	// lastPub is the wall-clock time of the last Publish in Unix
	// nanoseconds (0 before the first). /healthz reports it as the
	// snapshot age; the deterministic simulation never reads it.
	lastPub atomic.Int64
}

// NewPublisher returns an empty publisher.
func NewPublisher() *Publisher { return &Publisher{} }

// Publish installs s as the latest state. The caller must not mutate s
// (or anything reachable from it) afterwards.
func (p *Publisher) Publish(s *State) {
	if p == nil {
		return
	}
	p.cur.Store(s)
	p.lastPub.Store(time.Now().UnixNano())
}

// LastPublish returns when Publish last ran (the zero time before the
// first publish, or on a nil publisher).
func (p *Publisher) LastPublish() time.Time {
	if p == nil {
		return time.Time{}
	}
	n := p.lastPub.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// Latest returns the most recently published state (nil before the
// first publish, or on a nil publisher).
func (p *Publisher) Latest() *State {
	if p == nil {
		return nil
	}
	return p.cur.Load()
}

// Collect builds an immutable State from the live simulation objects.
// It MUST run on the goroutine that owns the cache — it walks regions
// and evaluates registry gauge funcs. Any argument may be nil; the
// corresponding sections come back empty.
func Collect(c *molecular.Cache, ctrl *resize.Controller, reg *telemetry.Registry) *State {
	s := &State{}
	var lastByASID map[uint16]*resize.Decision
	if ctrl != nil {
		s.Decisions = ctrl.Decisions()
		s.DecisionsTotal = ctrl.DecisionCount()
		lastByASID = make(map[uint16]*resize.Decision, 8)
		for i := range s.Decisions {
			d := &s.Decisions[i]
			lastByASID[d.ASID] = d
		}
	}
	if c != nil {
		s.Cache = c.Name()
		s.At = c.Addresses()
		led := c.Ledger()
		s.Accesses = led.Total.Accesses()
		s.MissRate = led.Total.MissRate()
		s.FreeMolecules = c.FreeMolecules()
		s.RemoteCycles = c.RemoteCycles()
		for _, r := range c.Regions() {
			ri := RegionInfo{
				ASID:           r.ASID(),
				Shared:         r.ASID() == molecular.SharedASID,
				HomeTile:       r.HomeTile().ID(),
				Policy:         string(r.Policy()),
				LineFactor:     r.LineFactor(),
				Molecules:      r.MoleculeCount(),
				AvgMolecules:   r.AverageMolecules(),
				Rows:           r.Rows(),
				Accesses:       r.Ledger().Accesses(),
				MissRate:       r.Ledger().MissRate(),
				WindowMissRate: r.Window().Snapshot().MissRate(),
			}
			// TileCounts is a map; emit a tile-sorted slice so the JSON
			// is deterministic.
			counts := r.TileCounts()
			tiles := make([]int, 0, len(counts))
			for t := range counts {
				tiles = append(tiles, t)
			}
			sortInts(tiles)
			for _, t := range tiles {
				ri.Tiles = append(ri.Tiles, TileCount{Tile: t, Molecules: counts[t]})
			}
			if ctrl != nil && !ri.Shared {
				ri.Goal = ctrl.Goal(r.ASID())
				if ri.Goal > 0 {
					ri.Deviation = ri.MissRate - ri.Goal
				}
				ri.LastResize = lastByASID[r.ASID()]
			}
			s.Regions = append(s.Regions, ri)
		}
	}
	// The full snapshot (gauge funcs included) is safe here: Collect
	// runs on the sim thread by contract.
	s.Metrics = reg.Snapshot()
	return s
}

// sortInts is a dependency-free insertion sort (tile lists are tiny).
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
