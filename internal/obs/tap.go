package obs

import (
	"sync"
	"sync/atomic"

	"molcache/internal/telemetry"
)

// EventTap is a telemetry.Sink that tees every event to an optional
// inner sink (e.g. the -events JSONL file) and broadcasts it to any
// number of live subscribers (the /events SSE handler). Broadcasting
// never blocks the simulation: a subscriber whose buffered channel is
// full loses the event and the tap counts the drop.
type EventTap struct {
	mu     sync.Mutex
	inner  telemetry.Sink
	subs   map[int]chan telemetry.Event
	nextID int

	written atomic.Uint64
	dropped atomic.Uint64
}

// NewEventTap wraps inner (which may be nil: broadcast only).
func NewEventTap(inner telemetry.Sink) *EventTap {
	return &EventTap{inner: inner, subs: make(map[int]chan telemetry.Event)}
}

// Write implements telemetry.Sink. The inner sink's error is returned
// (the tracer latches the first one); subscriber overflow is not an
// error, just a counted drop.
func (t *EventTap) Write(e telemetry.Event) error {
	t.written.Add(1)
	var err error
	if t.inner != nil {
		err = t.inner.Write(e)
	}
	t.mu.Lock()
	for _, ch := range t.subs {
		select {
		case ch <- e:
		default:
			t.dropped.Add(1)
		}
	}
	t.mu.Unlock()
	return err
}

// Flush implements telemetry.Sink.
func (t *EventTap) Flush() error {
	if t.inner == nil {
		return nil
	}
	return t.inner.Flush()
}

// Subscribe registers a listener with the given channel buffer (minimum
// 1) and returns the event channel plus a cancel function. Cancel is
// idempotent and closes the channel, so range loops terminate.
func (t *EventTap) Subscribe(buffer int) (<-chan telemetry.Event, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan telemetry.Event, buffer)
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.subs[id] = ch
	t.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			t.mu.Lock()
			delete(t.subs, id)
			t.mu.Unlock()
			// Safe to close now: Write only sends while the channel is
			// in the map, and both run under t.mu.
			close(ch)
		})
	}
	return ch, cancel
}

// Subscribers returns the number of live subscriptions.
func (t *EventTap) Subscribers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.subs)
}

// Written returns the total events seen by the tap.
func (t *EventTap) Written() uint64 { return t.written.Load() }

// Dropped returns the events lost to slow subscribers.
func (t *EventTap) Dropped() uint64 { return t.dropped.Load() }
