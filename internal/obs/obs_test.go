package obs_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"molcache/internal/addr"
	"molcache/internal/molecular"
	"molcache/internal/obs"
	"molcache/internal/resize"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// simWorld builds a small molecular cache with a controller and
// registry, drives it, and returns the pieces Collect wants.
func simWorld(t *testing.T) (*molecular.Cache, *resize.Controller, *telemetry.Registry) {
	t.Helper()
	c, err := molecular.New(molecular.Config{
		TotalSize:       512 * addr.KB,
		Clusters:        1,
		TilesPerCluster: 4,
		Policy:          molecular.RandyReplacement,
		Seed:            2006,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.AttachTelemetry(nil, reg)
	ctrl, err := resize.New(c, resize.Config{
		Period: 400, MinPeriod: 200, MaxPeriod: 5000,
		DefaultGoal: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		asid := uint16(1 + i%3)
		c.Access(trace.Ref{ASID: asid, Addr: uint64(asid)<<36 | uint64(i%997)*64, Kind: trace.Read})
		ctrl.Tick()
	}
	return c, ctrl, reg
}

func TestCollectState(t *testing.T) {
	c, ctrl, reg := simWorld(t)
	st := obs.Collect(c, ctrl, reg)

	if st.Accesses != 6000 {
		t.Fatalf("accesses = %d, want 6000", st.Accesses)
	}
	if len(st.Regions) == 0 {
		t.Fatal("no regions collected")
	}
	if st.DecisionsTotal == 0 || len(st.Decisions) == 0 {
		t.Fatalf("no resize decisions collected (total=%d retained=%d)",
			st.DecisionsTotal, len(st.Decisions))
	}
	for _, ri := range st.Regions {
		if ri.Molecules <= 0 {
			t.Errorf("asid %d: molecules = %d", ri.ASID, ri.Molecules)
		}
		if len(ri.Tiles) == 0 {
			t.Errorf("asid %d: no tile counts", ri.ASID)
		}
		total := 0
		for i, tc := range ri.Tiles {
			total += tc.Molecules
			if i > 0 && ri.Tiles[i-1].Tile >= tc.Tile {
				t.Errorf("asid %d: tiles not sorted: %v", ri.ASID, ri.Tiles)
			}
		}
		if total != ri.Molecules {
			t.Errorf("asid %d: tile counts sum %d != molecules %d", ri.ASID, total, ri.Molecules)
		}
		if ri.Goal != 0.2 {
			t.Errorf("asid %d: goal = %v, want 0.2", ri.ASID, ri.Goal)
		}
		if ri.LastResize == nil {
			t.Errorf("asid %d: no last resize decision", ri.ASID)
		} else if ri.LastResize.ASID != ri.ASID {
			t.Errorf("asid %d: last resize is for asid %d", ri.ASID, ri.LastResize.ASID)
		}
	}
	if len(st.Metrics.Counters) == 0 {
		t.Error("metrics snapshot has no counters")
	}

	// Collect tolerates missing pieces.
	empty := obs.Collect(nil, nil, nil)
	if empty.Accesses != 0 || len(empty.Regions) != 0 {
		t.Fatalf("nil collect not empty: %+v", empty)
	}
}

func TestPublisherNilSafety(t *testing.T) {
	var p *obs.Publisher
	p.Publish(&obs.State{})
	if p.Latest() != nil {
		t.Fatal("nil publisher returned a state")
	}
	p = obs.NewPublisher()
	if p.Latest() != nil {
		t.Fatal("fresh publisher not empty")
	}
	st := &obs.State{At: 7}
	p.Publish(st)
	if got := p.Latest(); got != st {
		t.Fatalf("Latest = %p, want %p", got, st)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	c, ctrl, reg := simWorld(t)
	pub := obs.NewPublisher()
	pub.Publish(obs.Collect(c, ctrl, reg))
	tap := obs.NewEventTap(nil)

	srv, err := obs.Serve("127.0.0.1:0", obs.Options{Publisher: pub, Registry: reg, Tap: tap})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := srv.URL()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE molcache_molecular_hits_total counter",
		"molcache_molecular_probe_count_bucket",
		"molcache_access_service_cycles_sum",
		"molcache_molecular_free_molecules",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if snap, err := telemetry.ParsePrometheus(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics does not re-parse: %v", err)
	} else if len(snap.Counters) == 0 {
		t.Error("/metrics parsed to zero counters")
	}

	code, body = get(t, base+"/regions")
	if code != http.StatusOK {
		t.Fatalf("/regions status %d", code)
	}
	var st obs.State
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/regions not JSON: %v\n%s", err, body)
	}
	if st.Accesses != 6000 || len(st.Regions) == 0 {
		t.Fatalf("/regions payload wrong: accesses=%d regions=%d", st.Accesses, len(st.Regions))
	}

	code, body = get(t, base+"/decisions")
	if code != http.StatusOK {
		t.Fatalf("/decisions status %d", code)
	}
	var decs struct {
		Total     uint64            `json:"total"`
		Retained  int               `json:"retained"`
		Decisions []resize.Decision `json:"decisions"`
	}
	if err := json.Unmarshal([]byte(body), &decs); err != nil {
		t.Fatalf("/decisions not JSON: %v", err)
	}
	if decs.Total == 0 || decs.Retained != len(decs.Decisions) || decs.Retained == 0 {
		t.Fatalf("/decisions payload wrong: %+v", decs)
	}
	for _, d := range decs.Decisions {
		if d.Reason == "" {
			t.Fatalf("decision %d has empty reason", d.Seq)
		}
	}

	code, body = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/decisions") {
		t.Fatalf("index wrong: status %d body %q", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
	// pprof is mounted.
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestTenantsEndpoint(t *testing.T) {
	c, ctrl, reg := simWorld(t)
	pub := obs.NewPublisher()
	srv, err := obs.Serve("127.0.0.1:0", obs.Options{Publisher: pub, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := srv.URL()

	type page struct {
		At      uint64           `json:"at"`
		Tenants []obs.TenantInfo `json:"tenants"`
	}
	// Before the first publish — and after a publish with no tenant
	// table — the payload stays well-formed: "tenants":[] , never null.
	for _, stage := range []string{"pre-publish", "no-tenants"} {
		code, body := get(t, base+"/tenants")
		if code != http.StatusOK {
			t.Fatalf("%s: /tenants status %d", stage, code)
		}
		var empty page
		if err := json.Unmarshal([]byte(body), &empty); err != nil {
			t.Fatalf("%s: /tenants not JSON: %v\n%s", stage, err, body)
		}
		if empty.Tenants == nil || len(empty.Tenants) != 0 {
			t.Fatalf("%s: /tenants not an empty list: %s", stage, body)
		}
		pub.Publish(obs.Collect(c, ctrl, reg))
	}

	st := obs.Collect(c, ctrl, reg)
	st.Tenants = []obs.TenantInfo{
		{Name: "web", ASID: 1, Goal: 0.05, LineFactor: 2, Keys: 41,
			Molecules: 9, Accesses: 2000, MissRate: 0.03, WindowMissRate: 0.02, SLOMet: true},
		{Name: "scan", ASID: 2, Goal: 0.4, Keys: 8192, Accesses: 4000,
			MissRate: 0.5, WindowMissRate: 0.55},
	}
	pub.Publish(st)
	code, body := get(t, base+"/tenants")
	if code != http.StatusOK {
		t.Fatalf("/tenants status %d", code)
	}
	var got page
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/tenants not JSON: %v\n%s", err, body)
	}
	if got.At != st.At {
		t.Errorf("/tenants at = %d, want %d", got.At, st.At)
	}
	if !reflect.DeepEqual(got.Tenants, st.Tenants) {
		t.Errorf("/tenants round trip:\ngot  %+v\nwant %+v", got.Tenants, st.Tenants)
	}
	// The tenant table must not leak into the /regions payload (it is
	// the /tenants endpoint's own view).
	if _, body := get(t, base+"/regions"); strings.Contains(body, `"slo_met"`) {
		t.Error("/regions leaked the tenant table")
	}
}

func TestHealthzEndpoint(t *testing.T) {
	c, ctrl, reg := simWorld(t)
	pub := obs.NewPublisher()
	tap := obs.NewEventTap(nil)
	srv, err := obs.Serve("127.0.0.1:0", obs.Options{Publisher: pub, Registry: reg, Tap: tap})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	type health struct {
		Status           string  `json:"status"`
		LastPublish      string  `json:"last_publish"`
		SnapshotAge      float64 `json:"snapshot_age_seconds"`
		SnapshotAtAccess uint64  `json:"snapshot_at_access"`
		EventsWritten    uint64  `json:"events_written"`
		EventsDropped    uint64  `json:"events_dropped"`
	}

	// Before the first publish: reachable, but explicit about having no
	// snapshot (age -1, no timestamp).
	code, body := get(t, srv.URL()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var h health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if h.Status != "no-snapshot" || h.SnapshotAge != -1 || h.LastPublish != "" {
		t.Fatalf("pre-publish health wrong: %+v", h)
	}

	// After a publish: ok, a fresh age, the snapshot's access count and
	// a parseable publish time.
	pub.Publish(obs.Collect(c, ctrl, reg))
	if err := tap.Write(telemetry.Event{Kind: telemetry.KindAccess}); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, srv.URL()+"/healthz")
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("post-publish status %q, want ok", h.Status)
	}
	if h.SnapshotAge < 0 || h.SnapshotAge > 60 {
		t.Fatalf("snapshot age %.3fs implausible", h.SnapshotAge)
	}
	if h.SnapshotAtAccess != 6000 {
		t.Fatalf("snapshot_at_access = %d, want 6000", h.SnapshotAtAccess)
	}
	if _, err := time.Parse(time.RFC3339Nano, h.LastPublish); err != nil {
		t.Fatalf("last_publish %q does not parse: %v", h.LastPublish, err)
	}
	if h.EventsWritten != 1 || h.EventsDropped != 0 {
		t.Fatalf("event tap counts wrong: %+v", h)
	}
}

func TestServerBeforeFirstPublishFallsBack(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("molcache_test_total").Add(3)
	srv, err := obs.Serve("127.0.0.1:0", obs.Options{Publisher: obs.NewPublisher(), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "molcache_test_total 3") {
		t.Fatalf("/metrics fallback wrong: status %d body %q", code, body)
	}
	code, body = get(t, srv.URL()+"/regions")
	if code != http.StatusOK || !strings.Contains(body, `"regions": []`) {
		t.Fatalf("/regions empty state wrong: status %d body %q", code, body)
	}
	// No tap attached: /events refuses rather than hanging.
	code, _ = get(t, srv.URL()+"/events")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/events without tap status %d, want 503", code)
	}
}

func TestEventsSSEStream(t *testing.T) {
	tap := obs.NewEventTap(nil)
	tr := telemetry.NewTracer(0)
	tr.SetSink(tap)

	srv, err := obs.Serve("127.0.0.1:0", obs.Options{Publisher: obs.NewPublisher(), Tap: tap})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Wait for the subscription to land, then emit events from the "sim".
	deadline := time.Now().Add(5 * time.Second)
	for tap.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	tr.Access(1, 3, 0xcafe, true, false, 2, 0)
	tr.Resize(2, 3, "grow", 4, 20)

	sc := bufio.NewScanner(resp.Body)
	var events []telemetry.Event
	for sc.Scan() && len(events) < 2 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (scan err %v)", len(events), sc.Err())
	}
	if events[0].Kind != telemetry.KindAccess || events[0].Addr != 0xcafe {
		t.Fatalf("first event wrong: %+v", events[0])
	}
	if events[1].Kind != telemetry.KindResize || events[1].Detail != "grow" {
		t.Fatalf("second event wrong: %+v", events[1])
	}
	if tap.Written() != 2 {
		t.Fatalf("tap written = %d, want 2", tap.Written())
	}
}

func TestEventTapDropsWhenSubscriberStalls(t *testing.T) {
	tap := obs.NewEventTap(nil)
	ch, cancel := tap.Subscribe(2)
	defer cancel()
	for i := 0; i < 5; i++ {
		tap.Write(telemetry.Event{Seq: uint64(i + 1)})
	}
	if tap.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tap.Dropped())
	}
	if tap.Written() != 5 {
		t.Fatalf("written = %d, want 5", tap.Written())
	}
	// The two buffered events are intact and in order.
	for want := uint64(1); want <= 2; want++ {
		ev := <-ch
		if ev.Seq != want {
			t.Fatalf("event seq = %d, want %d", ev.Seq, want)
		}
	}
	// Cancel is idempotent and closes the channel.
	cancel()
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	if tap.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after cancel", tap.Subscribers())
	}
}

func TestEventTapTeesToInnerSink(t *testing.T) {
	mem := telemetry.NewMemorySink()
	tap := obs.NewEventTap(mem)
	tap.Write(telemetry.Event{Seq: 1, Kind: telemetry.KindResize})
	if err := tap.Flush(); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 1 {
		t.Fatalf("inner sink got %d events, want 1", mem.Len())
	}
}

func TestPipelineSetupAndFinish(t *testing.T) {
	dir := t.TempDir()
	f := obs.Flags{
		Events:      dir + "/events.jsonl",
		Metrics:     dir + "/metrics.prom",
		Serve:       "127.0.0.1:0",
		TraceOut:    dir + "/spans.json",
		TraceSample: 1,
	}
	p, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Tracer == nil || p.Registry == nil || p.Spans == nil ||
		p.Publisher == nil || p.Server == nil || p.Tap == nil {
		t.Fatalf("pipeline incomplete: %+v", p)
	}

	c, ctrl, _ := simWorld(t)
	// Re-home the cache's metrics onto the pipeline registry and attach
	// the pipeline tracer/spans, as the CLIs do.
	c.AttachTelemetry(p.Tracer, p.Registry)
	c.AttachSpans(p.Spans)
	ctrl.AttachTelemetry(p.Tracer, p.Registry)
	ctrl.AttachSpans(p.Spans)
	for i := 0; i < 2000; i++ {
		c.Access(trace.Ref{ASID: 1, Addr: 1<<36 | uint64(i%97)*64, Kind: trace.Read})
		ctrl.Tick()
	}
	p.Publish(c, ctrl)

	code, body := get(t, p.Server.URL()+"/regions")
	if code != http.StatusOK || !strings.Contains(body, `"asid": 1`) {
		t.Fatalf("/regions via pipeline: status %d body %s", code, body)
	}

	p.Finish()
	p.Finish() // idempotent

	events, err := os.ReadFile(f.Events)
	if err != nil || len(events) == 0 {
		t.Fatalf("events file: %v (%d bytes)", err, len(events))
	}
	metrics, err := os.ReadFile(f.Metrics)
	if err != nil || !strings.Contains(string(metrics), "molcache_molecular_hits_total") {
		t.Fatalf("metrics file: %v\n%s", err, metrics)
	}
	spans, err := os.ReadFile(f.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(spans, &chrome); err != nil {
		t.Fatalf("span trace not JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("span trace empty")
	}
}

func TestPipelineEmptyFlagsIsInert(t *testing.T) {
	p, err := obs.Flags{}.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if p.Tracer != nil || p.Registry != nil || p.Spans != nil || p.Server != nil {
		t.Fatalf("empty flags built something: %+v", p)
	}
	p.Publish(nil, nil) // no-op, must not panic
	p.Finish()
	p.Close()
}
