package faults

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	data := []byte(`{
		"seed": 7,
		"molecule_failures": [{"at": 100, "molecule": 3}, {"at": 50, "molecule": 1}],
		"line_corruptions": [{"at": 200, "molecule": 2, "line": 9}],
		"noc_delays": [{"at": 300, "duration": 100, "extra_cycles": 8, "drop_attempts": 2}]
	}`)
	c, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 7 || len(c.MoleculeFailures) != 2 || len(c.LineCorruptions) != 1 || len(c.NoCDelays) != 1 {
		t.Errorf("parsed campaign = %+v", c)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"seed": 1, "molecule_fail": [{"at": 1}]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown field accepted: %v", err)
	}
}

func TestValidateRejectsBadCampaigns(t *testing.T) {
	// Each malformed campaign must produce a *ValidationError naming the
	// section, the entry index within it, and the offending field.
	cases := []struct {
		name    string
		c       Campaign
		section string
		index   int
		field   string
	}{
		{
			"negative molecule",
			Campaign{MoleculeFailures: []MoleculeFailure{{At: 5, Molecule: 0}, {At: 1, Molecule: -1}}},
			"molecule_failures", 1, "molecule",
		},
		{
			"negative corruption molecule",
			Campaign{LineCorruptions: []LineCorruption{{At: 1, Molecule: -3, Line: 0}}},
			"line_corruptions", 0, "molecule",
		},
		{
			"negative line",
			Campaign{LineCorruptions: []LineCorruption{{At: 1, Molecule: 0, Line: -2}}},
			"line_corruptions", 0, "line",
		},
		{
			"no-op delay",
			Campaign{NoCDelays: []NoCDelay{{At: 9, ExtraCycles: 1}, {At: 1}}},
			"noc_delays", 1, "extra_cycles",
		},
		{
			"negative drops",
			Campaign{NoCDelays: []NoCDelay{{At: 1, ExtraCycles: 1, DropAttempts: -1}}},
			"noc_delays", 0, "drop_attempts",
		},
		{
			"empty random window",
			Campaign{RandomMoleculeFailures: &RandomSpec{Count: 3, Start: 10, End: 10}},
			"random_molecule_failures", -1, "end",
		},
		{
			"inverted random window",
			Campaign{RandomLineCorruptions: &RandomSpec{Count: 3, Start: 20, End: 10}},
			"random_line_corruptions", -1, "end",
		},
		{
			"negative random count",
			Campaign{RandomLineCorruptions: &RandomSpec{Count: -1, Start: 0, End: 10}},
			"random_line_corruptions", -1, "count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if err == nil {
				t.Fatal("validated")
			}
			ve, ok := err.(*ValidationError)
			if !ok {
				t.Fatalf("error is %T, want *ValidationError: %v", err, err)
			}
			if ve.Section != tc.section || ve.Index != tc.index || ve.Field != tc.field {
				t.Errorf("error locates %s[%d].%s, want %s[%d].%s",
					ve.Section, ve.Index, ve.Field, tc.section, tc.index, tc.field)
			}
			if ve.Reason == "" {
				t.Error("empty reason")
			}
			for _, part := range []string{tc.section, tc.field} {
				if !strings.Contains(err.Error(), part) {
					t.Errorf("message %q does not name %q", err.Error(), part)
				}
			}
		})
	}
}

func TestParseSurfacesValidationContext(t *testing.T) {
	// A structurally valid JSON campaign with a semantically bad entry
	// must come back as a ValidationError, not a bare decode error.
	_, err := Parse([]byte(`{"noc_delays": [{"at": 10, "extra_cycles": 1}, {"at": 20}]}`))
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("Parse error is %T (%v), want *ValidationError", err, err)
	}
	if ve.Section != "noc_delays" || ve.Index != 1 {
		t.Errorf("error locates %s[%d], want noc_delays[1]", ve.Section, ve.Index)
	}
}

func TestCursorStateRoundTrip(t *testing.T) {
	c := Campaign{
		Seed:                   21,
		RandomMoleculeFailures: &RandomSpec{Count: 4, Start: 10, End: 90},
		RandomLineCorruptions:  &RandomSpec{Count: 9, Start: 5, End: 95},
		NoCDelays:              []NoCDelay{{At: 40, Duration: 10, ExtraCycles: 2}},
	}
	build := func() *Injector {
		inj, err := NewInjector(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.Materialize(16, 32); err != nil {
			t.Fatal(err)
		}
		return inj
	}
	// Drive one injector halfway, capture, rebuild a fresh one from the
	// campaign, restore, and check the remaining deliveries agree.
	a := build()
	a.FailuresDue(50)
	a.CorruptionsDue(50)
	a.NoCDelayAt(45)
	cs := a.CursorState()

	b := build()
	if err := b.RestoreCursors(cs); err != nil {
		t.Fatal(err)
	}
	if b.Stats() != a.Stats() || b.PendingFailures() != a.PendingFailures() {
		t.Errorf("restored stats %+v pending %d, want %+v pending %d",
			b.Stats(), b.PendingFailures(), a.Stats(), a.PendingFailures())
	}
	if got, want := b.FailuresDue(1000), a.FailuresDue(1000); !reflect.DeepEqual(got, want) {
		t.Errorf("post-restore failures %v, want %v", got, want)
	}
	if got, want := b.CorruptionsDue(1000), a.CorruptionsDue(1000); !reflect.DeepEqual(got, want) {
		t.Errorf("post-restore corruptions %v, want %v", got, want)
	}

	// Restore must reject cursors outside the materialized schedules and
	// refuse to run before Materialize.
	if err := b.RestoreCursors(CursorState{FailCursor: 1000}); err == nil {
		t.Error("out-of-range failure cursor accepted")
	}
	if err := b.RestoreCursors(CursorState{CorruptCursor: -1}); err == nil {
		t.Error("negative corruption cursor accepted")
	}
	raw, err := NewInjector(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.RestoreCursors(cs); err == nil {
		t.Error("restore before Materialize accepted")
	}
}

func TestLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	if err := os.WriteFile(path, []byte(`{"seed": 3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestDueEventsPopInOrderAndOnce(t *testing.T) {
	inj, err := NewInjector(Campaign{
		MoleculeFailures: []MoleculeFailure{
			{At: 30, Molecule: 2}, {At: 10, Molecule: 0}, {At: 20, Molecule: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Materialize(8, 16); err != nil {
		t.Fatal(err)
	}
	if got := inj.FailuresDue(5); got != nil {
		t.Errorf("early pop = %v", got)
	}
	got := inj.FailuresDue(25)
	if len(got) != 2 || got[0].Molecule != 0 || got[1].Molecule != 1 {
		t.Errorf("due at 25 = %v", got)
	}
	if again := inj.FailuresDue(25); again != nil {
		t.Errorf("events delivered twice: %v", again)
	}
	if rest := inj.FailuresDue(1000); len(rest) != 1 || rest[0].Molecule != 2 {
		t.Errorf("final pop = %v", rest)
	}
	if inj.PendingFailures() != 0 || inj.ScheduledFailures() != 3 {
		t.Errorf("pending=%d scheduled=%d", inj.PendingFailures(), inj.ScheduledFailures())
	}
	if s := inj.Stats(); s.MoleculeFailures != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRandomExpansionIsDeterministicAndDistinct(t *testing.T) {
	c := Campaign{
		Seed:                   99,
		RandomMoleculeFailures: &RandomSpec{Count: 12, Start: 100, End: 5000},
		RandomLineCorruptions:  &RandomSpec{Count: 20, Start: 0, End: 1000},
	}
	build := func() *Injector {
		inj, err := NewInjector(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.Materialize(16, 128); err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.failures, b.failures) || !reflect.DeepEqual(a.corruptions, b.corruptions) {
		t.Error("same seed produced different schedules")
	}
	seen := map[int]bool{}
	for _, f := range a.failures {
		if seen[f.Molecule] {
			t.Errorf("molecule %d fails twice", f.Molecule)
		}
		seen[f.Molecule] = true
		if f.At < 100 || f.At >= 5000 {
			t.Errorf("failure at %d outside window", f.At)
		}
		if f.Molecule < 0 || f.Molecule >= 16 {
			t.Errorf("failure targets molecule %d of 16", f.Molecule)
		}
	}
	for _, l := range a.corruptions {
		if l.Molecule >= 16 || l.Line >= 128 {
			t.Errorf("corruption target (%d, %d) out of range", l.Molecule, l.Line)
		}
	}
	// More random failures than molecules clamps to the population.
	big, err := NewInjector(Campaign{RandomMoleculeFailures: &RandomSpec{Count: 50, Start: 0, End: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Materialize(4, 8); err != nil {
		t.Fatal(err)
	}
	if big.ScheduledFailures() != 4 {
		t.Errorf("clamped schedule = %d, want 4", big.ScheduledFailures())
	}
}

func TestMaterializeDropsOutOfRangeTargets(t *testing.T) {
	inj, err := NewInjector(Campaign{
		MoleculeFailures: []MoleculeFailure{{At: 1, Molecule: 100}},
		LineCorruptions:  []LineCorruption{{At: 1, Molecule: 0, Line: 500}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Materialize(8, 16); err != nil {
		t.Fatal(err)
	}
	if inj.ScheduledFailures() != 0 || len(inj.corruptions) != 0 {
		t.Error("out-of-range targets kept")
	}
	if s := inj.Stats(); s.SkippedOutOfRange != 2 {
		t.Errorf("skipped = %d, want 2", s.SkippedOutOfRange)
	}
	// Re-materializing is a no-op.
	if err := inj.Materialize(1000, 1000); err != nil {
		t.Fatal(err)
	}
	if !inj.Materialized() {
		t.Error("not materialized")
	}
	if err := inj.Materialize(0, 0); err != nil {
		t.Error("idempotent call validated geometry")
	}
}

func TestNoCDelayWindows(t *testing.T) {
	inj, err := NewInjector(Campaign{NoCDelays: []NoCDelay{
		{At: 100, Duration: 50, ExtraCycles: 4},
		{At: 300, ExtraCycles: 2, DropAttempts: 1}, // zero duration = one access
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Materialize(4, 8); err != nil {
		t.Fatal(err)
	}
	if d := inj.NoCDelayAt(99); d != nil {
		t.Errorf("delay before window: %+v", d)
	}
	if d := inj.NoCDelayAt(100); d == nil || d.ExtraCycles != 4 {
		t.Errorf("delay at window start = %+v", d)
	}
	if d := inj.NoCDelayAt(149); d == nil {
		t.Error("no delay at window end-1")
	}
	if d := inj.NoCDelayAt(150); d != nil {
		t.Errorf("delay past window: %+v", d)
	}
	if d := inj.NoCDelayAt(300); d == nil || d.DropAttempts != 1 {
		t.Errorf("zero-duration window = %+v", d)
	}
	if d := inj.NoCDelayAt(301); d != nil {
		t.Errorf("zero-duration window spans two accesses: %+v", d)
	}
	if s := inj.Stats(); s.NoCDelayedLookups != 3 {
		t.Errorf("delayed lookups = %d, want 3", s.NoCDelayedLookups)
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if inj.FailuresDue(1) != nil || inj.CorruptionsDue(1) != nil || inj.NoCDelayAt(1) != nil {
		t.Error("nil injector delivered faults")
	}
	if inj.Materialize(4, 4) != nil || inj.Materialized() || inj.PendingFailures() != 0 {
		t.Error("nil injector not inert")
	}
	if inj.Stats() != (Stats{}) || inj.ScheduledFailures() != 0 {
		t.Error("nil injector has state")
	}
}

func TestMaterializeRejectsBadGeometry(t *testing.T) {
	inj, err := NewInjector(Campaign{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Materialize(0, 16); err == nil {
		t.Error("zero molecules accepted")
	}
	if err := inj.Materialize(16, 0); err == nil {
		t.Error("zero lines accepted")
	}
}
