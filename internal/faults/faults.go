// Package faults is the simulator's deterministic fault model. A
// molecular cache's premise — an L2 aggregated from many small
// independent units — makes it a natural substrate for fault tolerance:
// a failed molecule can be retired and its region resized around it,
// exactly the way Algorithm 1 withdraws molecules under a miss-rate
// goal. This package supplies the faults to tolerate.
//
// A Campaign is a schedule of three fault classes:
//
//   - hard molecule failures (the molecule is permanently retired);
//   - transient line corruptions (one line's contents are lost, as if
//     an uncorrectable ECC error invalidated it);
//   - NoC response delays (a window during which Ulmo sweeps of remote
//     tiles are slowed or dropped and must retry with backoff).
//
// Every event is driven by the cache's access count, never wall-clock
// time, so a campaign replayed over the same trace reproduces the same
// faults at the same instants. Campaigns are written explicitly or
// expanded from seeded random specs; either way the expansion is a pure
// function of the campaign, so runs are bit-for-bit reproducible.
//
// The package knows nothing about the cache model; internal/molecular
// consumes the Injector and applies the scheduled faults to itself.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"molcache/internal/rng"
)

// MoleculeFailure schedules a permanent (hard) failure of one molecule.
type MoleculeFailure struct {
	// At is the cache-wide access count at which the molecule fails.
	At uint64 `json:"at"`
	// Molecule is the global molecule ID.
	Molecule int `json:"molecule"`
}

// LineCorruption schedules a transient single-line corruption: the line
// in the given direct-mapped slot is invalidated (an uncorrectable-ECC
// model — the data is lost, a dirty copy silently so).
type LineCorruption struct {
	// At is the cache-wide access count at which the corruption strikes.
	At uint64 `json:"at"`
	// Molecule is the global molecule ID.
	Molecule int `json:"molecule"`
	// Line is the direct-mapped slot index within the molecule.
	Line int `json:"line"`
}

// NoCDelay schedules a window of degraded interconnect service: remote
// Ulmo lookups traversing the mesh inside [At, At+Duration) have their
// first DropAttempts responses dropped (each costing a retry) and every
// attempt pays ExtraCycles of added latency.
type NoCDelay struct {
	// At is the first access count inside the window.
	At uint64 `json:"at"`
	// Duration is the window length in accesses (0 means one access).
	Duration uint64 `json:"duration"`
	// ExtraCycles is added latency per traversal attempt.
	ExtraCycles uint64 `json:"extra_cycles"`
	// DropAttempts is how many attempts are dropped before one succeeds.
	// At or beyond the consumer's retry budget the lookup is abandoned.
	DropAttempts int `json:"drop_attempts"`
}

// RandomSpec expands into Count events with access counts drawn
// uniformly from [Start, End) and targets drawn uniformly from the
// bound population (molecules, or molecule/line pairs). The expansion
// is a pure function of the campaign seed, so two runs of the same
// campaign schedule identical faults.
type RandomSpec struct {
	// Count is the number of events to generate.
	Count int `json:"count"`
	// Start and End bound the access counts ([Start, End)).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// Campaign is a full fault schedule, parsable from JSON.
type Campaign struct {
	// Seed drives the random expansions (and only those).
	Seed uint64 `json:"seed"`

	// MoleculeFailures are explicitly scheduled hard failures.
	MoleculeFailures []MoleculeFailure `json:"molecule_failures,omitempty"`
	// RandomMoleculeFailures adds seeded-random hard failures over
	// distinct molecules.
	RandomMoleculeFailures *RandomSpec `json:"random_molecule_failures,omitempty"`

	// LineCorruptions are explicitly scheduled transient corruptions.
	LineCorruptions []LineCorruption `json:"line_corruptions,omitempty"`
	// RandomLineCorruptions adds seeded-random corruptions.
	RandomLineCorruptions *RandomSpec `json:"random_line_corruptions,omitempty"`

	// NoCDelays are interconnect degradation windows.
	NoCDelays []NoCDelay `json:"noc_delays,omitempty"`
}

// Parse decodes a JSON campaign, rejecting unknown fields so a typo in
// a schedule fails loudly instead of silently injecting nothing.
func Parse(data []byte) (Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Campaign{}, fmt.Errorf("faults: bad campaign JSON: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Campaign{}, err
	}
	return c, nil
}

// Load reads and parses a campaign file.
func Load(path string) (Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Campaign{}, fmt.Errorf("faults: %w", err)
	}
	return Parse(data)
}

// ValidationError reports one invalid value in a campaign, with enough
// context to point at the offending JSON: the schedule section, the
// entry index within it (-1 for section-level problems such as a random
// spec's window), the field name, and a human-readable reason.
type ValidationError struct {
	// Section is the campaign JSON key, e.g. "noc_delays".
	Section string
	// Index is the entry's position within the section, or -1 when the
	// problem is with the section as a whole.
	Index int
	// Field is the offending JSON field within the entry.
	Field string
	// Reason explains what is wrong with the value.
	Reason string
}

func (e *ValidationError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("faults: %s[%d].%s: %s", e.Section, e.Index, e.Field, e.Reason)
	}
	return fmt.Sprintf("faults: %s.%s: %s", e.Section, e.Field, e.Reason)
}

// Validate checks the campaign's internal consistency. Target bounds
// (molecule IDs, line indices) are checked later, at Materialize, when
// the cache geometry is known. A failure is always a *ValidationError
// naming the section, entry index and field.
func (c Campaign) Validate() error {
	for i, f := range c.MoleculeFailures {
		if f.Molecule < 0 {
			return &ValidationError{
				Section: "molecule_failures", Index: i, Field: "molecule",
				Reason: fmt.Sprintf("negative molecule %d", f.Molecule),
			}
		}
	}
	for i, l := range c.LineCorruptions {
		if l.Molecule < 0 {
			return &ValidationError{
				Section: "line_corruptions", Index: i, Field: "molecule",
				Reason: fmt.Sprintf("negative molecule %d", l.Molecule),
			}
		}
		if l.Line < 0 {
			return &ValidationError{
				Section: "line_corruptions", Index: i, Field: "line",
				Reason: fmt.Sprintf("negative line %d", l.Line),
			}
		}
	}
	for i, d := range c.NoCDelays {
		if d.ExtraCycles == 0 && d.DropAttempts == 0 {
			return &ValidationError{
				Section: "noc_delays", Index: i, Field: "extra_cycles",
				Reason: "neither extra cycles nor dropped attempts; the window would be a no-op",
			}
		}
		if d.DropAttempts < 0 {
			return &ValidationError{
				Section: "noc_delays", Index: i, Field: "drop_attempts",
				Reason: fmt.Sprintf("negative drop_attempts %d", d.DropAttempts),
			}
		}
	}
	for _, spec := range []struct {
		name string
		s    *RandomSpec
	}{
		{"random_molecule_failures", c.RandomMoleculeFailures},
		{"random_line_corruptions", c.RandomLineCorruptions},
	} {
		name, s := spec.name, spec.s
		if s == nil {
			continue
		}
		if s.Count < 0 {
			return &ValidationError{
				Section: name, Index: -1, Field: "count",
				Reason: fmt.Sprintf("negative count %d", s.Count),
			}
		}
		if s.Count > 0 && s.End <= s.Start {
			return &ValidationError{
				Section: name, Index: -1, Field: "end",
				Reason: fmt.Sprintf("empty window [%d, %d)", s.Start, s.End),
			}
		}
	}
	return nil
}

// Stats counts faults the injector has handed out.
type Stats struct {
	// MoleculeFailures is the number of hard failures delivered.
	MoleculeFailures uint64
	// LineCorruptions is the number of corruptions delivered.
	LineCorruptions uint64
	// NoCDelayedLookups counts remote lookups that hit a delay window.
	NoCDelayedLookups uint64
	// SkippedOutOfRange counts scheduled events dropped at Materialize
	// because their target lies outside the cache's geometry.
	SkippedOutOfRange uint64
}

// Injector delivers a campaign's faults in access-count order. It is a
// single-consumer cursor: the cache asks, once per access, for the
// events due at the current count. A nil *Injector is a valid no-op.
type Injector struct {
	//molvet:transient the campaign is re-supplied at restore; only the cursors persist
	campaign Campaign

	//molvet:transient derived by materialize from the campaign
	materialized bool
	//molvet:transient derived by materialize from the campaign
	failures []MoleculeFailure // sorted by At
	//molvet:transient derived by materialize from the campaign
	corruptions []LineCorruption // sorted by At
	//molvet:transient derived by materialize from the campaign
	delays []NoCDelay // sorted by At

	failCursor    int
	corruptCursor int

	stats Stats
}

// NewInjector builds an injector for the (validated) campaign. Random
// specs are expanded at Materialize, when the cache geometry is known;
// until then only the explicit schedules exist.
func NewInjector(c Campaign) (*Injector, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Injector{campaign: c}, nil
}

// Materialize binds the injector to a cache geometry: random specs are
// expanded over [0, totalMolecules) x [0, linesPerMolecule), explicit
// events with out-of-range targets are dropped (counted in Stats), and
// all schedules are sorted by access count. Materialize is idempotent;
// the first call wins.
func (in *Injector) Materialize(totalMolecules, linesPerMolecule int) error {
	if in == nil {
		return nil
	}
	if in.materialized {
		return nil
	}
	if totalMolecules <= 0 || linesPerMolecule <= 0 {
		return fmt.Errorf("faults: cannot materialize over %d molecules x %d lines",
			totalMolecules, linesPerMolecule)
	}
	c := in.campaign
	src := rng.New(c.Seed ^ 0xfa0175)

	for _, f := range c.MoleculeFailures {
		if f.Molecule >= totalMolecules {
			in.stats.SkippedOutOfRange++
			continue
		}
		in.failures = append(in.failures, f)
	}
	if s := c.RandomMoleculeFailures; s != nil && s.Count > 0 {
		// Distinct molecules, also distinct from the explicit schedule:
		// a molecule fails at most once.
		taken := make(map[int]bool, len(in.failures))
		for _, f := range in.failures {
			taken[f.Molecule] = true
		}
		picked := 0
		for _, id := range src.Perm(totalMolecules) {
			if picked == s.Count {
				break
			}
			if taken[id] {
				continue
			}
			picked++
			at := s.Start + src.Uint64()%(s.End-s.Start)
			in.failures = append(in.failures, MoleculeFailure{At: at, Molecule: id})
		}
	}

	for _, l := range c.LineCorruptions {
		if l.Molecule >= totalMolecules || l.Line >= linesPerMolecule {
			in.stats.SkippedOutOfRange++
			continue
		}
		in.corruptions = append(in.corruptions, l)
	}
	if s := c.RandomLineCorruptions; s != nil {
		for i := 0; i < s.Count; i++ {
			in.corruptions = append(in.corruptions, LineCorruption{
				At:       s.Start + src.Uint64()%(s.End-s.Start),
				Molecule: src.Intn(totalMolecules),
				Line:     src.Intn(linesPerMolecule),
			})
		}
	}

	in.delays = append(in.delays, c.NoCDelays...)

	sort.SliceStable(in.failures, func(i, j int) bool { return in.failures[i].At < in.failures[j].At })
	sort.SliceStable(in.corruptions, func(i, j int) bool { return in.corruptions[i].At < in.corruptions[j].At })
	sort.SliceStable(in.delays, func(i, j int) bool { return in.delays[i].At < in.delays[j].At })
	in.materialized = true
	return nil
}

// Materialized reports whether random specs have been expanded.
func (in *Injector) Materialized() bool { return in != nil && in.materialized }

// FailuresDue pops the hard failures scheduled at or before access
// count at. The same event is never delivered twice.
func (in *Injector) FailuresDue(at uint64) []MoleculeFailure {
	if in == nil || in.failCursor >= len(in.failures) || in.failures[in.failCursor].At > at {
		return nil
	}
	start := in.failCursor
	for in.failCursor < len(in.failures) && in.failures[in.failCursor].At <= at {
		in.failCursor++
	}
	due := in.failures[start:in.failCursor]
	in.stats.MoleculeFailures += uint64(len(due))
	return due
}

// CorruptionsDue pops the line corruptions scheduled at or before at.
func (in *Injector) CorruptionsDue(at uint64) []LineCorruption {
	if in == nil || in.corruptCursor >= len(in.corruptions) || in.corruptions[in.corruptCursor].At > at {
		return nil
	}
	start := in.corruptCursor
	for in.corruptCursor < len(in.corruptions) && in.corruptions[in.corruptCursor].At <= at {
		in.corruptCursor++
	}
	due := in.corruptions[start:in.corruptCursor]
	in.stats.LineCorruptions += uint64(len(due))
	return due
}

// NoCDelayAt returns the delay window covering access count at, or nil
// when the interconnect is healthy. Overlapping windows resolve to the
// earliest-starting one. Windows are not consumed — every remote lookup
// inside one is degraded.
func (in *Injector) NoCDelayAt(at uint64) *NoCDelay {
	if in == nil {
		return nil
	}
	for i := range in.delays {
		d := &in.delays[i]
		if d.At > at {
			break // sorted by At; nothing later can cover at
		}
		end := d.At + d.Duration
		if end == d.At {
			end = d.At + 1
		}
		if at < end {
			in.stats.NoCDelayedLookups++
			return d
		}
	}
	return nil
}

// DelayWindowAt is NoCDelayAt without the delivery-counter side effect:
// a pure lookup of the window covering access count at. Shard lanes use
// it so concurrent epochs never mutate injector state; each lane counts
// the delayed lookups it observed and the epoch merge folds them back in
// with AddDelayedLookups.
func (in *Injector) DelayWindowAt(at uint64) *NoCDelay {
	if in == nil {
		return nil
	}
	for i := range in.delays {
		d := &in.delays[i]
		if d.At > at {
			break // sorted by At; nothing later can cover at
		}
		end := d.At + d.Duration
		if end == d.At {
			end = d.At + 1
		}
		if at < end {
			return d
		}
	}
	return nil
}

// AddDelayedLookups folds lane-counted delayed lookups into Stats (the
// epoch-merge counterpart of DelayWindowAt).
func (in *Injector) AddDelayedLookups(n uint64) {
	if in == nil {
		return
	}
	in.stats.NoCDelayedLookups += n
}

// NextScheduledAt returns the earliest access count with an undelivered
// hard failure or line corruption, and false when the remaining schedule
// is empty. The sharded engine plans epoch boundaries with it: any
// access at or past this count must execute serially so fault delivery
// happens on the exact logical clock the serial engine would use.
func (in *Injector) NextScheduledAt() (uint64, bool) {
	if in == nil {
		return 0, false
	}
	next := uint64(0)
	ok := false
	if in.failCursor < len(in.failures) {
		next = in.failures[in.failCursor].At
		ok = true
	}
	if in.corruptCursor < len(in.corruptions) {
		if at := in.corruptions[in.corruptCursor].At; !ok || at < next {
			next = at
			ok = true
		}
	}
	return next, ok
}

// PendingFailures returns the number of hard failures not yet delivered
// (the remaining schedule; a finished campaign reports 0).
func (in *Injector) PendingFailures() int {
	if in == nil {
		return 0
	}
	return len(in.failures) - in.failCursor
}

// ScheduledFailures returns the materialized hard-failure count.
func (in *Injector) ScheduledFailures() int {
	if in == nil {
		return 0
	}
	return len(in.failures)
}

// Stats returns delivery counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Campaign returns the campaign the injector was built from. Checkpoints
// persist the campaign (the materialized schedules are a pure function
// of it plus the cache geometry) instead of the expanded event lists.
func (in *Injector) Campaign() Campaign {
	if in == nil {
		return Campaign{}
	}
	return in.campaign
}

// CursorState is the injector's mutable delivery position: how far the
// failure and corruption cursors have advanced, and the counters bumped
// along the way. Together with the Campaign and the cache geometry it
// fully determines the injector's future behaviour.
type CursorState struct {
	FailCursor    int
	CorruptCursor int
	Stats         Stats
}

// CursorState captures the delivery position for a checkpoint.
func (in *Injector) CursorState() CursorState {
	if in == nil {
		return CursorState{}
	}
	return CursorState{
		FailCursor:    in.failCursor,
		CorruptCursor: in.corruptCursor,
		Stats:         in.stats,
	}
}

// RestoreCursors rewinds (or advances) the injector to a previously
// captured delivery position. The injector must already be materialized
// so the cursor bounds can be checked against the expanded schedules.
func (in *Injector) RestoreCursors(cs CursorState) error {
	if in == nil {
		return fmt.Errorf("faults: cannot restore cursors on a nil injector")
	}
	if !in.materialized {
		return fmt.Errorf("faults: cannot restore cursors before Materialize")
	}
	if cs.FailCursor < 0 || cs.FailCursor > len(in.failures) {
		return fmt.Errorf("faults: failure cursor %d outside schedule of %d", cs.FailCursor, len(in.failures))
	}
	if cs.CorruptCursor < 0 || cs.CorruptCursor > len(in.corruptions) {
		return fmt.Errorf("faults: corruption cursor %d outside schedule of %d", cs.CorruptCursor, len(in.corruptions))
	}
	in.failCursor = cs.FailCursor
	in.corruptCursor = cs.CorruptCursor
	in.stats = cs.Stats
	return nil
}
