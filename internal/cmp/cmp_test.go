package cmp

import (
	"testing"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/engine"
	"molcache/internal/rng"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

// sharedL2 returns a 1MB 4-way L2 like the paper's Table 1 setup.
func sharedL2() *cache.Cache {
	return cache.MustNew(cache.Config{Size: 1 * addr.MB, Ways: 4, LineSize: 64})
}

// fixedGen replays a fixed list of accesses, then loops.
type fixedGen struct {
	name string
	seq  []workload.Access
	pos  int
}

func (f *fixedGen) Name() string { return f.name }
func (f *fixedGen) Next() workload.Access {
	a := f.seq[f.pos%len(f.seq)]
	f.pos++
	return a
}

func TestL1FiltersHotLoop(t *testing.T) {
	l2 := sharedL2()
	s := MustNew(l2, Config{})
	// 8KB loop fits the 16KB L1 entirely.
	if err := s.AddCore(1, workload.NewLoop("hot", 0, 8*addr.KB, 0, rng.New(1))); err != nil {
		t.Fatal(err)
	}
	s.Run(50000)
	l1 := s.L1Ledger().App(1)
	if l1.MissRate() > 0.01 {
		t.Errorf("L1 miss rate = %v for a fitting loop, want ~0", l1.MissRate())
	}
	// L2 must only have seen the cold misses (8KB/64 = 128 lines).
	l2acc := l2.Ledger().App(1).Accesses()
	if l2acc == 0 || l2acc > 200 {
		t.Errorf("L2 saw %d accesses, want ~128 cold fills", l2acc)
	}
}

func TestStreamingPassesThrough(t *testing.T) {
	l2 := sharedL2()
	s := MustNew(l2, Config{})
	if err := s.AddCore(1, workload.NewStream("crc", 0, 64*addr.MB, 0, rng.New(2))); err != nil {
		t.Fatal(err)
	}
	s.Run(100000)
	// Sequential 4B accesses: 1 L1 miss per 16 words.
	l1 := s.L1Ledger().App(1)
	if l1.MissRate() < 0.05 || l1.MissRate() > 0.08 {
		t.Errorf("streaming L1 miss rate = %v, want ~1/16", l1.MissRate())
	}
	// Every L2 access is a distinct line: miss rate ~1.
	if mr := l2.Ledger().App(1).MissRate(); mr < 0.99 {
		t.Errorf("streaming L2 miss rate = %v, want ~1", mr)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	s := MustNew(sharedL2(), Config{})
	for i := uint16(1); i <= 4; i++ {
		if err := s.AddCore(i, workload.NewLoop("l", uint64(i)<<36, 64*addr.KB, 0, rng.New(uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(40001)
	if s.Issued() != 40001 {
		t.Errorf("issued = %d", s.Issued())
	}
	// Each core issues within one reference of total/4.
	for i := uint16(1); i <= 4; i++ {
		n := s.L1Ledger().App(i).Accesses()
		if n < 10000 || n > 10001 {
			t.Errorf("core %d issued %d refs, want ~10000", i, n)
		}
	}
}

func TestWriteInvalidatesPeerCopies(t *testing.T) {
	s := MustNew(sharedL2(), Config{})
	// Two cores in the SAME address space (same ASID), touching the
	// same line alternately: reader first, then writer.
	readSeq := []workload.Access{{Addr: 0x1000}}
	writeSeq := []workload.Access{{Addr: 0x1000, Write: true}}
	if err := s.AddCore(1, &fixedGen{name: "reader", seq: readSeq}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCore(1, &fixedGen{name: "writer", seq: writeSeq}); err != nil {
		t.Fatal(err)
	}
	s.Step() // reader fills
	s.Step() // writer writes -> invalidation
	if inv := s.Coherence().Invalidations; inv != 1 {
		t.Fatalf("invalidations = %d, want 1", inv)
	}
	// Reader's next access must be an L1 miss (its copy was killed),
	// and the dirty peer copy forces an intervention writeback.
	before := s.L1Ledger().App(1).Misses
	for s.Step() != 0 { // advance until the reader core issues again
	}
	if s.L1Ledger().App(1).Misses <= before {
		t.Error("reader hit after its copy was invalidated")
	}
	if s.Coherence().Interventions == 0 {
		t.Error("no intervention recorded for dirty peer supply")
	}
}

func TestCaptureL1MissTrace(t *testing.T) {
	s := MustNew(sharedL2(), Config{CaptureL1Misses: true})
	if err := s.AddCore(3, workload.NewStream("s", 1<<36, 1*addr.MB, 0, rng.New(3))); err != nil {
		t.Fatal(err)
	}
	s.Run(3200) // 3200 word refs = 200 lines
	cap := s.Captured()
	if len(cap) != 200 {
		t.Fatalf("captured %d refs, want 200 line fills", len(cap))
	}
	for _, r := range cap {
		if r.ASID != 3 || r.CPU != 0 {
			t.Fatalf("bad captured ref %+v", r)
		}
	}
	// The captured stream replayed into an identical fresh L2 must
	// reproduce the same L2 hit/miss counts (the paper's Dinero replay
	// methodology).
	l2b := sharedL2()
	for _, r := range cap {
		l2b.Access(r)
	}
	a := s.L2().(*cache.Cache).Ledger().App(3)
	b := l2b.Ledger().App(3)
	if a != b {
		t.Errorf("replayed L2 stats %+v != live %+v", b, a)
	}
}

func TestOnL2AccessHook(t *testing.T) {
	l2 := sharedL2()
	s := MustNew(l2, Config{})
	if err := s.AddCore(1, workload.NewStream("s", 0, 1*addr.MB, 0, rng.New(4))); err != nil {
		t.Fatal(err)
	}
	calls := uint64(0)
	s.OnL2Access = func(r trace.Ref, res engine.Result) {
		if r.ASID != 1 {
			t.Errorf("hook saw ASID %d", r.ASID)
		}
		calls++
	}
	s.Run(3200)
	want := l2.Ledger().App(1).Accesses()
	if calls != want {
		t.Errorf("hook fired %d times, L2 saw %d accesses", calls, want)
	}
	if calls == 0 {
		t.Error("hook never fired")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		l2 := sharedL2()
		s := MustNew(l2, Config{})
		for i := uint16(1); i <= 2; i++ {
			g := workload.MustNew("parser", uint64(i)<<36, 42)
			if err := s.AddCore(i, g); err != nil {
				t.Fatal(err)
			}
		}
		s.Run(60000)
		led := l2.Ledger()
		return led.Total.Hits, led.Total.Misses
	}
	h1, m1 := run()
	h2, m2 := run()
	if h1 != h2 || m1 != m2 {
		t.Errorf("runs differ: (%d,%d) vs (%d,%d)", h1, m1, h2, m2)
	}
}

func TestCoreLimit(t *testing.T) {
	s := MustNew(sharedL2(), Config{})
	for i := 0; i < 16; i++ {
		if err := s.AddCore(uint16(i), workload.NewLoop("l", uint64(i)<<30, 4096, 0, rng.New(1))); err != nil {
			t.Fatalf("core %d rejected: %v", i, err)
		}
	}
	if err := s.AddCore(99, workload.NewLoop("l", 0, 4096, 0, rng.New(1))); err == nil {
		t.Error("17th core accepted")
	}
}

func TestBadL1Config(t *testing.T) {
	if _, err := New(sharedL2(), Config{L1: cache.Config{Size: 1000, Ways: 2, LineSize: 64}}); err == nil {
		t.Error("bad L1 config accepted")
	}
}

func TestTimingThrottlesMissBoundCore(t *testing.T) {
	s := MustNew(sharedL2(), Config{})
	// Core 0: tiny loop (all L1 hits after warmup). Core 1: huge
	// pointer chase (every reference misses to memory).
	if err := s.AddCore(1, workload.NewLoop("hot", 0, 4*addr.KB, 0, rng.New(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCore(2, workload.NewPointerChase("chase", 1<<36, 32*addr.MB, 64, 0, rng.New(2))); err != nil {
		t.Fatal(err)
	}
	s.Run(200000)
	fast := s.L1Ledger().App(1).Accesses()
	slow := s.L1Ledger().App(2).Accesses()
	// The stalled core must issue far fewer references (roughly the
	// latency ratio, ~200x; demand at least 20x).
	if fast < 20*slow {
		t.Errorf("issue counts: hot=%d chase=%d; timing model not throttling", fast, slow)
	}
	if cpi := s.CoreCPI(2); cpi < 50 {
		t.Errorf("chase CPI = %.1f, want memory-bound (>= 50)", cpi)
	}
	if cpi := s.CoreCPI(1); cpi > 5 {
		t.Errorf("hot-loop CPI = %.1f, want ~1", cpi)
	}
	if s.Cycle() == 0 {
		t.Error("no cycles elapsed")
	}
	if s.CoreCPI(99) != 0 {
		t.Error("CPI for unknown ASID should be 0")
	}
}

func TestMESIDowngradeKeepsPeerCopy(t *testing.T) {
	s := MustNew(sharedL2(), Config{})
	// Writer dirties a line; a second core reads it: under MESI the
	// writer keeps a Shared copy (downgrade), it is not invalidated.
	writeSeq := []workload.Access{{Addr: 0x2000, Write: true}, {Addr: 0x2000}}
	readSeq := []workload.Access{{Addr: 0x2000}}
	if err := s.AddCore(1, &fixedGen{name: "writer", seq: writeSeq}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCore(1, &fixedGen{name: "reader", seq: readSeq}); err != nil {
		t.Fatal(err)
	}
	s.Step() // writer: write miss -> M
	s.Step() // reader: read miss -> writer downgraded, writeback
	co := s.Coherence()
	if co.Downgrades != 1 || co.Interventions != 1 {
		t.Fatalf("coherence = %+v, want one downgrade with writeback", co)
	}
	// Advance until the writer issues again: its (downgraded, not
	// invalidated) copy must still hit in L1.
	before := s.L1Ledger().App(1).Hits
	for s.Step() != 0 {
	}
	if s.L1Ledger().App(1).Hits <= before {
		t.Error("writer's downgraded copy was lost (MESI keeps it Shared)")
	}
	if co.Invalidations != 0 {
		t.Errorf("read triggered invalidations: %+v", co)
	}
}
