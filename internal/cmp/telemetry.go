package cmp

import (
	"strconv"

	"molcache/internal/telemetry"
)

// AttachTelemetry instruments the whole substrate: the per-core L1s
// (the molcache_cache_* family labeled {cache="l1_core<N>"}), the MESI
// directory, an L2 access counter and the end-to-end access-latency
// histogram (cycles each reference cost the issuing core — the
// quantity CPI is built from). Cores added after the call are
// instrumented as they arrive. Either argument may be nil.
func (s *System) AttachTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	s.tracer = tr
	s.reg = reg
	s.dir.AttachTelemetry(tr, reg)
	if reg == nil {
		s.l2Accesses = nil
		s.latency = nil
		return
	}
	s.l2Accesses = reg.Counter("molcache_l2_accesses_total")
	s.latency = reg.Histogram("molcache_access_latency_cycles", nil)
	reg.RegisterGaugeFunc("molcache_l1_miss_rate",
		func() float64 { return s.l1Ledger.Total.MissRate() })
	for _, c := range s.cores {
		c.l1.AttachTelemetry(reg, l1Instance(c.id))
	}
}

// l1Instance names one core's L1 for the {cache=...} metric label.
func l1Instance(id uint8) string {
	return "l1_core" + strconv.Itoa(int(id))
}
