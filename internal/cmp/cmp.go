// Package cmp is the repository's SESC substitute: a trace-level chip
// multiprocessor model. N cores each run a workload generator through a
// private write-back L1 data cache; L1 misses go to a shared L2 (any
// engine.Cache — a traditional cache for the paper's baselines and
// Table 1, a molecular cache for the proposal). A directory-based MESI
// protocol (internal/coherence) keeps the private L1s coherent, and the system can
// capture the L1-miss reference stream — the trace the paper feeds into
// its modified Dinero.
package cmp

import (
	"fmt"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/coherence"
	"molcache/internal/engine"
	"molcache/internal/stats"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

// Latency models the memory-hierarchy timing that paces each core. An
// L2-miss-bound application issues references far more slowly than an
// L1-resident one — the throttling that shapes the paper's Table 1 (art
// survives next to mcf because mcf, stalled on memory, cannot flood the
// shared L2 with evictions).
type Latency struct {
	// L1Hit is the cost of an L1 hit in cycles (default 1).
	L1Hit uint64
	// L2Hit is the L1-miss/L2-hit round trip (default 12).
	L2Hit uint64
	// Memory is the L2-miss round trip to DRAM (default 200).
	Memory uint64
}

// Config parameterizes the CMP substrate.
type Config struct {
	// L1 is the private data-cache geometry for every core
	// (default 16 KB 4-way 64 B LRU, a typical 2006 L1-D).
	L1 cache.Config
	// Latency paces the cores (defaults above). Cores are in-order
	// with one outstanding miss, a fair model for 2006-era CMPs.
	Latency Latency
	// CaptureL1Misses records the L1-miss stream for replay.
	CaptureL1Misses bool
}

func (c Config) withDefaults() Config {
	if c.L1.Size == 0 {
		c.L1 = cache.Config{Size: 16 * addr.KB, Ways: 4, LineSize: 64, Policy: cache.LRU}
	}
	if c.Latency.L1Hit == 0 {
		c.Latency.L1Hit = 1
	}
	if c.Latency.L2Hit == 0 {
		c.Latency.L2Hit = 12
	}
	if c.Latency.Memory == 0 {
		c.Latency.Memory = 200
	}
	return c
}

// CoherenceStats counts MESI protocol events among the private L1s.
type CoherenceStats struct {
	// Invalidations is the number of L1 copies killed by remote writes.
	Invalidations uint64
	// Interventions is the number of misses supplied by a peer L1
	// holding a dirty copy (which writes back first).
	Interventions uint64
	// WritebacksForced is the number of dirty-copy writebacks forced by
	// the protocol.
	WritebacksForced uint64
	// Downgrades is the number of M/E copies demoted to Shared by
	// remote reads.
	Downgrades uint64
	// SilentUpgrades counts traffic-free E -> M transitions.
	SilentUpgrades uint64
}

// core is one processor: a workload, an ASID, a private L1, and the
// cycle at which its next reference can issue.
type core struct {
	id      uint8
	asid    uint16
	gen     workload.Generator
	l1      *cache.Cache
	readyAt uint64
	cycles  uint64 // total stall+issue cycles consumed
	refs    uint64
}

// System is the CMP: cores round-robin into the shared L2.
type System struct {
	cfg   Config
	cores []*core
	l2    engine.Cache

	// dir is the MESI directory. It is a conservative superset of the
	// truth: L1 replacements are silent (the L1 model does not report
	// evicted addresses), so the directory may list sharers that have
	// already dropped a line; invalidating or downgrading an absent
	// line is a no-op and the hit/miss behaviour stays exact.
	dir *coherence.Directory

	l1Ledger stats.Ledger // per-ASID L1 hit/miss
	captured []trace.Ref
	issued   uint64

	// OnL2Access, when set, observes every L2 access (the resize
	// controller's Tick hooks in here).
	OnL2Access func(trace.Ref, engine.Result)

	// tracer, reg, l2Accesses and latency are the telemetry
	// attachments (nil by default; issue pays two pointer checks when
	// telemetry is off).
	tracer     *telemetry.Tracer
	reg        *telemetry.Registry
	l2Accesses *telemetry.Counter
	latency    *telemetry.Histogram
}

// New builds a CMP over the shared L2.
func New(l2 engine.Cache, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.L1.Validate(); err != nil {
		return nil, fmt.Errorf("cmp: bad L1 config: %w", err)
	}
	return &System{
		cfg: cfg,
		l2:  l2,
		dir: coherence.NewDirectory(),
	}, nil
}

// MustNew is New panicking on error.
func MustNew(l2 engine.Cache, cfg Config) *System {
	s, err := New(l2, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// AddCore attaches a core running gen under asid. Core IDs are assigned
// in order; at most coherence.MaxCaches cores.
func (s *System) AddCore(asid uint16, gen workload.Generator) error {
	if len(s.cores) >= coherence.MaxCaches {
		return fmt.Errorf("cmp: at most %d cores supported", coherence.MaxCaches)
	}
	l1, err := cache.New(s.cfg.L1)
	if err != nil {
		return err
	}
	if s.reg != nil {
		l1.AttachTelemetry(s.reg, l1Instance(uint8(len(s.cores))))
	}
	s.cores = append(s.cores, &core{
		id:   uint8(len(s.cores)),
		asid: asid,
		gen:  gen,
		l1:   l1,
	})
	return nil
}

// Cores returns the number of attached cores.
func (s *System) Cores() int { return len(s.cores) }

// L2 returns the shared cache.
func (s *System) L2() engine.Cache { return s.l2 }

// L1Ledger returns per-ASID L1 hit/miss counts.
func (s *System) L1Ledger() *stats.Ledger { return &s.l1Ledger }

// Coherence returns protocol event counts.
func (s *System) Coherence() CoherenceStats {
	ds := s.dir.Stats()
	return CoherenceStats{
		Invalidations:    ds.Invalidations,
		Interventions:    ds.Writebacks,
		WritebacksForced: ds.Writebacks,
		Downgrades:       ds.Downgrades,
		SilentUpgrades:   ds.SilentUpgrades,
	}
}

// Directory exposes the MESI directory for inspection (the invariant
// checker reads its per-line state).
func (s *System) Directory() *coherence.Directory { return s.dir }

// EachL1Line calls fn for every resident line of every core's private
// L1, with the core ID, the line-aligned address and the dirty bit.
// Read-only; the invariant checker cross-checks this against the
// directory's sharer sets.
func (s *System) EachL1Line(fn func(coreID int, a uint64, dirty bool)) {
	for _, c := range s.cores {
		id := int(c.id)
		c.l1.EachLine(func(a uint64, _ uint16, dirty bool) {
			fn(id, a, dirty)
		})
	}
}

// Captured returns the recorded L1-miss trace (nil unless enabled).
func (s *System) Captured() []trace.Ref { return s.captured }

// Issued returns the total references issued by all cores.
func (s *System) Issued() uint64 { return s.issued }

// Step issues one reference from the next ready core (the core with the
// smallest readyAt cycle, lowest ID on ties) and returns its core ID.
// Identical cores interleave round-robin; a miss-bound core naturally
// falls behind by its stall cycles.
func (s *System) Step() uint8 {
	c := s.cores[0]
	for _, x := range s.cores[1:] {
		if x.readyAt < c.readyAt {
			c = x
		}
	}
	s.issue(c)
	return c.id
}

// Run issues total references across the cores under the timing model.
func (s *System) Run(total int) {
	if len(s.cores) == 0 {
		return
	}
	for i := 0; i < total; i++ {
		s.Step()
	}
}

// Cycle returns the cycle count of the furthest-advanced core.
func (s *System) Cycle() uint64 {
	var max uint64
	for _, c := range s.cores {
		if c.readyAt > max {
			max = c.readyAt
		}
	}
	return max
}

// CoreCPI returns cycles-per-reference for the core running asid
// (0 when several cores share the ASID sums are combined).
func (s *System) CoreCPI(asid uint16) float64 {
	var cycles, refs uint64
	for _, c := range s.cores {
		if c.asid == asid {
			cycles += c.cycles
			refs += c.refs
		}
	}
	if refs == 0 {
		return 0
	}
	return float64(cycles) / float64(refs)
}

// issue pushes one reference from core c through L1, coherence and L2.
func (s *System) issue(c *core) {
	acc := c.gen.Next()
	ref := trace.Ref{Addr: acc.Addr, ASID: c.asid, CPU: c.id, Kind: trace.Read}
	if acc.Write {
		ref.Kind = trace.Write
	}
	s.issued++
	line := addr.LineAlign(ref.Addr, s.cfg.L1.LineSize)

	l1res := c.l1.Access(ref)
	s.l1Ledger.Record(ref.ASID, l1res.Hit)
	c.refs++

	// Drive the MESI directory: every write consults it (a write hit on
	// a Shared line still needs an ownership upgrade); read hits are
	// quiet (the holder is already at least Shared).
	// Core IDs are bounded by AddCore, so the directory never rejects
	// them; a rejection would mean internal corruption, and skipping the
	// coherence actions (never applying a bogus mask) is the safe
	// degradation.
	if ref.Kind == trace.Write {
		if act, err := s.dir.Write(line, int(c.id)); err == nil {
			s.apply(act, line)
		}
	} else if !l1res.Hit {
		if act, err := s.dir.Read(line, int(c.id)); err == nil {
			s.apply(act, line)
		}
	}

	if l1res.Hit {
		c.cycles += s.cfg.Latency.L1Hit
		c.readyAt += s.cfg.Latency.L1Hit
		if s.latency != nil {
			s.latency.Observe(float64(s.cfg.Latency.L1Hit))
		}
		return
	}

	if s.cfg.CaptureL1Misses {
		s.captured = append(s.captured, ref)
	}
	l2res := s.l2.Access(ref)
	if s.l2Accesses != nil {
		s.l2Accesses.Inc()
	}
	if s.OnL2Access != nil {
		s.OnL2Access(ref, l2res)
	}
	lat := s.cfg.Latency.L2Hit
	if !l2res.Hit {
		lat = s.cfg.Latency.Memory
	}
	c.cycles += lat
	c.readyAt += lat
	if s.latency != nil {
		s.latency.Observe(float64(lat))
	}
}

// apply performs the cache-side effects of a directory action:
// invalidations and downgrades on the peer L1s.
func (s *System) apply(act coherence.Action, line uint64) {
	if act.InvalidateMask == 0 && act.DowngradeMask == 0 {
		return
	}
	for i, c := range s.cores {
		bit := uint16(1) << uint(i)
		if act.InvalidateMask&bit != 0 {
			c.l1.Invalidate(line)
		}
		if act.DowngradeMask&bit != 0 {
			c.l1.Downgrade(line)
		}
	}
}
