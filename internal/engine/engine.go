// Package engine defines the contract every cache model in the repository
// implements. Both the traditional set-associative caches (the paper's
// baselines, internal/cache) and the molecular cache (the paper's
// contribution, internal/molecular) are trace-driven state machines that
// consume one memory reference at a time and report what the hardware
// would have done; the experiment harness and the CMP substrate only ever
// talk to this interface.
package engine

import (
	"context"

	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// Result describes the externally visible effects of one cache access.
// The probe counts are the inputs to the energy model: dynamic energy per
// access = TagProbes x E(tag bank) + DataReads x E(data bank) for a
// conventional cache, or per-molecule accounting for a molecular cache.
type Result struct {
	// Hit reports whether the reference hit in this cache.
	Hit bool
	// LinesFetched is the number of lines brought in from the next
	// level on a miss (greater than 1 under the paper's variable line
	// size scheme). Zero on a hit.
	LinesFetched int
	// LinesEvicted is the number of valid lines displaced to make room.
	LinesEvicted int
	// Writebacks is the number of dirty lines written back to the next
	// level as a consequence of this access.
	Writebacks int
	// TagProbes is the number of tag comparisons performed. For an
	// n-way set-associative cache this is n per level searched; for a
	// molecular cache it is the number of molecules actually probed
	// (the quantity selective enablement minimizes).
	TagProbes int
	// DataReads is the number of data array banks activated.
	DataReads int
	// RemoteTileHit reports a hit satisfied by a sibling tile via the
	// Ulmo (molecular caches only) — a longer, more energy-hungry path.
	RemoteTileHit bool
}

// Cache is a trace-driven cache model.
type Cache interface {
	// Access applies one reference and returns its effects.
	Access(r trace.Ref) Result
	// Name identifies the configuration in reports,
	// e.g. "8MB 4-way" or "6MB Molecular (Randy)".
	Name() string
}

// Batcher is implemented by cache models that can service a batch of
// references in one call — either a plain fold over Access or, for the
// sharded molecular engine, a concurrent epoch-merged run. The contract
// is strict equivalence: AccessBatch(refs) must return exactly the
// Results the same refs would have produced through sequential Access
// calls, with identical side effects on ledgers and telemetry.
type Batcher interface {
	AccessBatch(refs []trace.Ref) []Result
}

// RunBatch replays a trace through c in batches of batch refs, using
// the model's AccessBatch when it has one and falling back to Run
// otherwise. A batch <= 0 means one batch for the whole trace.
func RunBatch(c Cache, refs []trace.Ref, batch int) (hits, misses uint64) {
	b, ok := c.(Batcher)
	if !ok {
		return Run(c, refs)
	}
	if batch <= 0 {
		batch = len(refs)
	}
	for len(refs) > 0 {
		n := len(refs)
		if n > batch {
			n = batch
		}
		for _, res := range b.AccessBatch(refs[:n]) {
			if res.Hit {
				hits++
			} else {
				misses++
			}
		}
		refs = refs[n:]
	}
	return hits, misses
}

// Spanner is implemented by cache models whose access pipeline supports
// span-level tracing (the molecular cache; the set-associative
// baselines have no pipeline worth tracing).
type Spanner interface {
	AttachSpans(*telemetry.SpanTracer)
}

// AttachSpans binds st to c when the model supports span tracing and
// reports whether it did, so drivers attach uniformly without caring
// which model they were handed.
func AttachSpans(c Cache, st *telemetry.SpanTracer) bool {
	s, ok := c.(Spanner)
	if ok {
		s.AttachSpans(st)
	}
	return ok
}

// Run replays a trace through c and returns aggregate access counts.
// It is the minimal Dinero-style driver; experiments that need per-app
// bookkeeping use richer drivers layered on the same interface.
func Run(c Cache, refs []trace.Ref) (hits, misses uint64) {
	for _, r := range refs {
		if c.Access(r).Hit {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// cancelCheckStride is how many references RunContext replays between
// context checks: coarse enough to keep the hot loop branch-free in
// practice, fine enough that a cancelled sweep job stops within
// microseconds.
const cancelCheckStride = 1 << 14

// RunContext is Run with cooperative cancellation: replay stops at the
// next stride boundary after ctx is cancelled and the partial counts are
// returned alongside ctx's error. It is the replay driver for scheduled
// jobs (internal/runner), where the first failing configuration cancels
// the rest of the batch.
func RunContext(ctx context.Context, c Cache, refs []trace.Ref) (hits, misses uint64, err error) {
	for len(refs) > 0 {
		if err := ctx.Err(); err != nil {
			return hits, misses, err
		}
		n := len(refs)
		if n > cancelCheckStride {
			n = cancelCheckStride
		}
		h, m := Run(c, refs[:n])
		hits += h
		misses += m
		refs = refs[n:]
	}
	return hits, misses, ctx.Err()
}
