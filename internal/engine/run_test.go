package engine_test

// External test package: Run is exercised against the real cache
// models (which import engine), not a toy.

import (
	"context"
	"testing"
	"time"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/engine"
	"molcache/internal/molecular"
	"molcache/internal/trace"
)

// knownTrace is a hand-counted reference stream over four lines of a
// tiny direct-mapped cache: 1KB, 64B lines -> 16 sets, so addresses
// 0, 64, 128 and 192 occupy distinct sets and never conflict.
func knownTrace() []trace.Ref {
	var refs []trace.Ref
	// Round 1: four cold misses.
	for _, a := range []uint64{0, 64, 128, 192} {
		refs = append(refs, trace.Ref{Addr: a, ASID: 1, Kind: trace.Read})
	}
	// Rounds 2-4: all hits (12 accesses).
	for i := 0; i < 3; i++ {
		for _, a := range []uint64{0, 64, 128, 192} {
			refs = append(refs, trace.Ref{Addr: a, ASID: 1, Kind: trace.Read})
		}
	}
	// A conflicting address: set 0 again (0 + 16*64), evicting line 0,
	// then a re-touch of 0 missing again: two more misses.
	refs = append(refs,
		trace.Ref{Addr: 1024, ASID: 1, Kind: trace.Read},
		trace.Ref{Addr: 0, ASID: 1, Kind: trace.Read},
	)
	return refs
}

func TestRunAggregateCountsTraditional(t *testing.T) {
	c := cache.MustNew(cache.Config{Size: 1 * addr.KB, Ways: 1, LineSize: 64})
	refs := knownTrace()
	hits, misses := engine.Run(c, refs)
	if hits != 12 || misses != 6 {
		t.Errorf("Run = %d hits, %d misses; want 12, 6", hits, misses)
	}
	if hits+misses != uint64(len(refs)) {
		t.Errorf("counts %d+%d do not cover the %d-ref trace", hits, misses, len(refs))
	}
	// The cache's own ledger must agree with Run's tally.
	hm := c.Ledger().App(1)
	if hm.Hits != hits || hm.Misses != misses {
		t.Errorf("ledger %d/%d disagrees with Run %d/%d", hm.Hits, hm.Misses, hits, misses)
	}
}

func TestRunAggregateCountsMolecular(t *testing.T) {
	// A molecular cache under the same stream: the whole working set
	// (5 distinct lines) fits one molecule, so only the 5 first touches
	// miss and nothing conflicts.
	c := molecular.MustNew(molecular.Config{
		TotalSize:       256 * addr.KB,
		MoleculeSize:    8 * addr.KB,
		TilesPerCluster: 4,
		Policy:          molecular.RandyReplacement,
	})
	refs := knownTrace()
	hits, misses := engine.Run(c, refs)
	if misses != 5 || hits != uint64(len(refs)-5) {
		t.Errorf("Run = %d hits, %d misses; want %d, 5", hits, misses, len(refs)-5)
	}
}

// syntheticTrace builds a stream long enough to span several cancel-check
// strides (the stride is 1<<14).
func syntheticTrace(n int) []trace.Ref {
	refs := make([]trace.Ref, n)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint64(i%512) * 64, ASID: 1, Kind: trace.Read}
	}
	return refs
}

func TestRunContextMatchesRun(t *testing.T) {
	refs := syntheticTrace(3<<14 + 100)
	a := cache.MustNew(cache.Config{Size: 1 * addr.KB, Ways: 1, LineSize: 64})
	b := cache.MustNew(cache.Config{Size: 1 * addr.KB, Ways: 1, LineSize: 64})
	h1, m1 := engine.Run(a, refs)
	h2, m2, err := engine.RunContext(context.Background(), b, refs)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || m1 != m2 {
		t.Errorf("RunContext = %d/%d, Run = %d/%d", h2, m2, h1, m1)
	}
}

func TestRunContextCancelled(t *testing.T) {
	refs := syntheticTrace(10 << 14)
	c := cache.MustNew(cache.Config{Size: 1 * addr.KB, Ways: 1, LineSize: 64})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hits, misses, err := engine.RunContext(ctx, c, refs)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if hits != 0 || misses != 0 {
		t.Errorf("pre-cancelled replay still counted %d/%d", hits, misses)
	}
}

func TestRunContextCancelMidway(t *testing.T) {
	refs := syntheticTrace(100 << 14)
	c := cache.MustNew(cache.Config{Size: 1 * addr.KB, Ways: 1, LineSize: 64})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := engine.RunContext(ctx, c, refs)
		if err == nil {
			t.Error("midway cancel not observed")
		}
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not stop after cancellation")
	}
}

func TestRunEmptyTrace(t *testing.T) {
	c := cache.MustNew(cache.Config{Size: 1 * addr.KB, Ways: 1, LineSize: 64})
	if hits, misses := engine.Run(c, nil); hits != 0 || misses != 0 {
		t.Errorf("Run(nil) = %d, %d; want 0, 0", hits, misses)
	}
}
