package engine

import (
	"testing"

	"molcache/internal/trace"
)

// toyCache hits on every second access to the same line.
type toyCache struct {
	seen map[uint64]bool
}

func (t *toyCache) Name() string { return "toy" }

func (t *toyCache) Access(r trace.Ref) Result {
	line := r.Addr / 64
	if t.seen[line] {
		return Result{Hit: true, TagProbes: 1, DataReads: 1}
	}
	t.seen[line] = true
	return Result{LinesFetched: 1, TagProbes: 1}
}

func TestRunCountsHitsAndMisses(t *testing.T) {
	c := &toyCache{seen: map[uint64]bool{}}
	refs := []trace.Ref{
		{Addr: 0}, {Addr: 0}, {Addr: 64}, {Addr: 64}, {Addr: 128},
	}
	hits, misses := Run(c, refs)
	if hits != 2 || misses != 3 {
		t.Errorf("Run = (%d, %d), want (2, 3)", hits, misses)
	}
}

func TestRunEmpty(t *testing.T) {
	c := &toyCache{seen: map[uint64]bool{}}
	hits, misses := Run(c, nil)
	if hits != 0 || misses != 0 {
		t.Errorf("Run(empty) = (%d, %d)", hits, misses)
	}
}
