package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 0, 0); err == nil {
		t.Error("0-wide mesh accepted")
	}
	m, err := New(4, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.HopLatency() != 2 || m.HopEnergy() != 0.05 {
		t.Errorf("defaults = %d cycles, %v nJ", m.HopLatency(), m.HopEnergy())
	}
}

func TestForTiles(t *testing.T) {
	cases := []struct{ n, minNodes int }{{1, 1}, {4, 4}, {5, 5}, {16, 16}, {12, 12}}
	for _, c := range cases {
		m, err := ForTiles(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if m.Nodes() < c.minNodes {
			t.Errorf("ForTiles(%d) has %d nodes", c.n, m.Nodes())
		}
	}
	if _, err := ForTiles(0); err == nil {
		t.Error("ForTiles(0) accepted")
	}
}

func TestHopsManhattan(t *testing.T) {
	m := MustNew(4, 4, 0, 0)
	cases := []struct{ from, to, want int }{
		{0, 0, 0},
		{0, 3, 3},  // same row
		{0, 12, 3}, // same column
		{0, 15, 6}, // opposite corner
		{5, 10, 2}, // interior diagonal
		{3, 12, 6}, // anti-diagonal corners
	}
	for _, c := range cases {
		got, err := m.Hops(c.from, c.to)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
	if _, err := m.Hops(0, 16); err == nil {
		t.Error("out-of-mesh node accepted")
	}
}

func TestRouteIsConnectedAndMinimal(t *testing.T) {
	m := MustNew(5, 3, 0, 0)
	path, err := m.Route(2, 13) // (2,0) -> (3,2)
	if err != nil {
		t.Fatal(err)
	}
	hops, _ := m.Hops(2, 13)
	if len(path) != hops+1 {
		t.Fatalf("path length %d, want %d", len(path), hops+1)
	}
	if path[0] != 2 || path[len(path)-1] != 13 {
		t.Errorf("path endpoints wrong: %v", path)
	}
	for i := 1; i < len(path); i++ {
		if h, _ := m.Hops(path[i-1], path[i]); h != 1 {
			t.Errorf("non-adjacent step %d -> %d", path[i-1], path[i])
		}
	}
}

func TestTraverseAccounting(t *testing.T) {
	m := MustNew(4, 4, 3, 0.1)
	lat, err := m.Traverse(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 18 { // 6 hops x 3 cycles
		t.Errorf("latency = %d, want 18", lat)
	}
	if lat, _ := m.Traverse(5, 5); lat != 0 {
		t.Errorf("local latency = %d, want 0", lat)
	}
	s := m.Stats()
	if s.Messages != 2 || s.Hops != 6 || s.LocalMessages != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := m.AverageHops(); got != 3 {
		t.Errorf("AverageHops = %v, want 3", got)
	}
	if got := m.Energy(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Energy = %v nJ, want 0.6", got)
	}
}

// Properties: hops are symmetric, zero only on identity, and satisfy the
// triangle inequality on a mesh (Manhattan metric).
func TestHopsMetricProperties(t *testing.T) {
	m := MustNew(6, 6, 0, 0)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%36, int(b)%36, int(c)%36
		xy, _ := m.Hops(x, y)
		yx, _ := m.Hops(y, x)
		if xy != yx {
			return false
		}
		if (xy == 0) != (x == y) {
			return false
		}
		xz, _ := m.Hops(x, z)
		zy, _ := m.Hops(z, y)
		return xy <= xz+zy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
