// Package noc models the tile interconnection network the paper's
// Figure 2 leaves as a cloud: tiles (and the Ulmos fronting their
// clusters) sit on a 2-D mesh; requests that leave a home tile — Ulmo
// sweeps of sibling tiles, inter-cluster coherence — pay a hop latency
// and a wire energy per traversed link.
//
// The model is deliberately minimal (XY dimension-ordered routing, no
// contention) because the paper's evaluation only needs the energy and
// latency *asymmetry* between local and remote molecules; it slots into
// the molecular cache's lookup and the power model's per-access energy.
package noc

import (
	"fmt"

	"molcache/internal/telemetry"
)

// Mesh is a W x H grid of nodes, one per tile, numbered row-major.
type Mesh struct {
	//molvet:transient construction geometry, re-supplied by New at restore
	w, h int
	// hopLatency is the per-link traversal cost in cycles.
	//molvet:transient construction cost model, re-supplied by New at restore
	hopLatency uint64
	// hopEnergy is the per-link traversal cost in nJ per transferred
	// line.
	//molvet:transient construction cost model, re-supplied by New at restore
	hopEnergy float64

	hops  uint64 // total link traversals accounted
	msgs  uint64 // total messages
	local uint64 // messages with zero hops

	// latHist, when a registry is attached, observes every message's
	// transit latency (telemetry.go).
	//molvet:transient telemetry attachment re-established after restore
	latHist *telemetry.Histogram
}

// New builds a w x h mesh. Defaults (when zero): 2-cycle links, 0.05 nJ
// per line per link at 70nm — in line with published on-chip network
// estimates of the era.
func New(w, h int, hopLatency uint64, hopEnergy float64) (*Mesh, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("noc: mesh must be at least 1x1, got %dx%d", w, h)
	}
	if hopLatency == 0 {
		hopLatency = 2
	}
	if hopEnergy == 0 {
		hopEnergy = 0.05
	}
	return &Mesh{w: w, h: h, hopLatency: hopLatency, hopEnergy: hopEnergy}, nil
}

// MustNew is New panicking on error.
func MustNew(w, h int, hopLatency uint64, hopEnergy float64) *Mesh {
	m, err := New(w, h, hopLatency, hopEnergy)
	if err != nil {
		panic(err)
	}
	return m
}

// ForTiles builds a near-square mesh sized for n tiles.
func ForTiles(n int) (*Mesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("noc: need at least one tile")
	}
	w := 1
	for w*w < n {
		w++
	}
	h := (n + w - 1) / w
	return New(w, h, 0, 0)
}

// Nodes returns the mesh capacity.
func (m *Mesh) Nodes() int { return m.w * m.h }

// coord maps a node id to grid coordinates.
func (m *Mesh) coord(id int) (x, y int, err error) {
	if id < 0 || id >= m.Nodes() {
		return 0, 0, fmt.Errorf("noc: node %d outside %dx%d mesh", id, m.w, m.h)
	}
	return id % m.w, id / m.w, nil
}

// Hops returns the XY-routed link count between two nodes.
func (m *Mesh) Hops(from, to int) (int, error) {
	fx, fy, err := m.coord(from)
	if err != nil {
		return 0, err
	}
	tx, ty, err := m.coord(to)
	if err != nil {
		return 0, err
	}
	return abs(fx-tx) + abs(fy-ty), nil
}

// Route returns the XY dimension-ordered path (inclusive of endpoints).
func (m *Mesh) Route(from, to int) ([]int, error) {
	fx, fy, err := m.coord(from)
	if err != nil {
		return nil, err
	}
	tx, ty, err := m.coord(to)
	if err != nil {
		return nil, err
	}
	path := []int{from}
	x, y := fx, fy
	for x != tx {
		x += sign(tx - x)
		path = append(path, y*m.w+x)
	}
	for y != ty {
		y += sign(ty - y)
		path = append(path, y*m.w+x)
	}
	return path, nil
}

// Traverse accounts one message from -> to and returns its latency in
// cycles (0 for a local message).
func (m *Mesh) Traverse(from, to int) (uint64, error) {
	h, err := m.Hops(from, to)
	if err != nil {
		return 0, err
	}
	m.msgs++
	m.hops += uint64(h)
	if h == 0 {
		m.local++
	}
	lat := uint64(h) * m.hopLatency
	m.latHist.Observe(float64(lat))
	return lat, nil
}

// TraverseInto is Traverse accounting the message into s instead of the
// mesh's own counters. Shard lanes use it so mesh traffic observed on a
// concurrent lane stays lane-local until the epoch merge folds it back
// with Add; the latency histogram is still observed directly because its
// cells are atomic and its integral sums are order-independent.
func (m *Mesh) TraverseInto(s *Stats, from, to int) (uint64, error) {
	h, err := m.Hops(from, to)
	if err != nil {
		return 0, err
	}
	s.Messages++
	s.Hops += uint64(h)
	if h == 0 {
		s.LocalMessages++
	}
	lat := uint64(h) * m.hopLatency
	m.latHist.Observe(float64(lat))
	return lat, nil
}

// Add folds externally accumulated traffic counters into the mesh
// (the epoch-merge counterpart of TraverseInto).
func (m *Mesh) Add(s Stats) {
	m.msgs += s.Messages
	m.hops += s.Hops
	m.local += s.LocalMessages
}

// Stats reports accumulated traffic.
type Stats struct {
	// Messages is the number of accounted messages.
	Messages uint64
	// Hops is the total link traversals.
	Hops uint64
	// LocalMessages is the count of zero-hop messages.
	LocalMessages uint64
}

// Stats returns the accumulated traffic counters.
func (m *Mesh) Stats() Stats {
	return Stats{Messages: m.msgs, Hops: m.hops, LocalMessages: m.local}
}

// RestoreStats overwrites the traffic counters with a previously
// captured Stats (checkpoint restore). It rejects internally
// inconsistent counters so a corrupted snapshot cannot smuggle in a
// mesh that reports more local messages than messages.
func (m *Mesh) RestoreStats(s Stats) error {
	if s.LocalMessages > s.Messages {
		return fmt.Errorf("noc: %d local messages exceed %d total", s.LocalMessages, s.Messages)
	}
	m.msgs = s.Messages
	m.hops = s.Hops
	m.local = s.LocalMessages
	return nil
}

// Width and Height expose the grid dimensions (checkpoint geometry).
func (m *Mesh) Width() int  { return m.w }
func (m *Mesh) Height() int { return m.h }

// AverageHops returns mean hops per message.
func (m *Mesh) AverageHops() float64 {
	if m.msgs == 0 {
		return 0
	}
	return float64(m.hops) / float64(m.msgs)
}

// Energy returns the total wire energy (nJ) of the accounted traffic.
func (m *Mesh) Energy() float64 { return float64(m.hops) * m.hopEnergy }

// HopLatency exposes the per-link cycle cost.
func (m *Mesh) HopLatency() uint64 { return m.hopLatency }

// HopEnergy exposes the per-link energy cost in nJ.
func (m *Mesh) HopEnergy() float64 { return m.hopEnergy }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}
