package noc

import "molcache/internal/telemetry"

// hopLatencyBounds buckets per-message transit latency: 2-cycle links
// on meshes a few nodes wide put most messages under 16 cycles; the
// tail covers pathological faulted detours.
var hopLatencyBounds = []float64{2, 4, 8, 16, 32, 64}

// AttachTelemetry exports the mesh's traffic on reg: a per-message
// hop-latency histogram (observed by every Traverse) and gauge funcs
// for the accumulated counters. A nil registry detaches; the detached
// Traverse pays one nil check (Histogram.Observe on nil is a no-op).
func (m *Mesh) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		m.latHist = nil
		return
	}
	m.latHist = reg.Histogram("noc_hop_latency_cycles", hopLatencyBounds)
	reg.RegisterGaugeFunc("noc_messages",
		func() float64 { return float64(m.msgs) })
	reg.RegisterGaugeFunc("noc_link_hops",
		func() float64 { return float64(m.hops) })
	reg.RegisterGaugeFunc("noc_local_messages",
		func() float64 { return float64(m.local) })
	reg.RegisterGaugeFunc("noc_wire_energy_nj",
		func() float64 { return m.Energy() })
	reg.RegisterGaugeFunc("noc_average_hops",
		func() float64 { return m.AverageHops() })
}
