// Package metrics computes the paper's QoS measures: the average
// deviation from the miss-rate goal (Figure 5, Table 2), the hits-per-
// molecule figure of merit for replacement policies (Figure 6), and the
// power-deviation product (Table 5).
package metrics

import (
	"fmt"
	"sort"

	"molcache/internal/stats"
)

// Goals maps ASIDs to miss-rate goals. Applications absent from the map
// carry no goal and are excluded from deviation averages (Figure 5's
// Graph B measures only the three goal-bearing benchmarks).
type Goals map[uint16]float64

// UniformGoals gives every listed ASID the same goal.
func UniformGoals(goal float64, asids ...uint16) Goals {
	g := make(Goals, len(asids))
	for _, a := range asids {
		g[a] = goal
	}
	return g
}

// Deviation is one application's distance above its goal.
type Deviation struct {
	ASID     uint16
	MissRate float64
	Goal     float64
	// Excess is max(0, MissRate-Goal): how far the application is
	// failing its goal. Deviation below goal counts as zero — the goal
	// was met (see DESIGN.md on this interpretation).
	Excess float64
}

// Deviations evaluates every goal-bearing application against ledger.
// ASIDs with a goal but no recorded accesses are skipped.
func Deviations(ledger *stats.Ledger, goals Goals) []Deviation {
	asids := make([]uint16, 0, len(goals))
	for a := range goals {
		asids = append(asids, a)
	}
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })
	var out []Deviation
	for _, a := range asids {
		hm := ledger.App(a)
		if hm.Accesses() == 0 {
			continue
		}
		d := Deviation{ASID: a, MissRate: hm.MissRate(), Goal: goals[a]}
		if d.MissRate > d.Goal {
			d.Excess = d.MissRate - d.Goal
		}
		out = append(out, d)
	}
	return out
}

// AverageDeviation is the paper's headline QoS metric: the mean excess
// over the goal across the goal-bearing applications.
func AverageDeviation(ledger *stats.Ledger, goals Goals) float64 {
	ds := Deviations(ledger, goals)
	if len(ds) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range ds {
		sum += d.Excess
	}
	return sum / float64(len(ds))
}

// HPM is the hit-rate-per-molecule figure for one application: its hit
// rate divided by the (time-weighted average) number of molecules its
// partition used. A policy achieving the same hit rate with fewer
// molecules scores higher (Figure 6).
type HPM struct {
	ASID      uint16
	Name      string
	HitRate   float64
	Molecules float64
	Value     float64
}

// ComputeHPM builds the figure from a partition's hit/miss ledger and
// average molecule usage.
func ComputeHPM(asid uint16, name string, hm stats.HitMiss, avgMolecules float64) HPM {
	h := HPM{
		ASID:      asid,
		Name:      name,
		HitRate:   hm.HitRate(),
		Molecules: avgMolecules,
	}
	if avgMolecules > 0 {
		h.Value = h.HitRate / avgMolecules
	}
	return h
}

// PowerDeviation is the paper's combined QoS-and-power figure of merit
// (Table 5): dynamic power multiplied by average deviation. Lower is
// better on both axes.
func PowerDeviation(powerWatts, avgDeviation float64) float64 {
	return powerWatts * avgDeviation
}

// String renders a deviation row for logs.
func (d Deviation) String() string {
	return fmt.Sprintf("asid=%d miss=%.4f goal=%.2f excess=%.4f",
		d.ASID, d.MissRate, d.Goal, d.Excess)
}
