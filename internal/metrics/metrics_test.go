package metrics

import (
	"math"
	"testing"

	"molcache/internal/stats"
)

func ledgerWith(t *testing.T, rates map[uint16][2]uint64) *stats.Ledger {
	t.Helper()
	var l stats.Ledger
	for asid, hm := range rates {
		for i := uint64(0); i < hm[0]; i++ {
			l.Record(asid, true)
		}
		for i := uint64(0); i < hm[1]; i++ {
			l.Record(asid, false)
		}
	}
	return &l
}

func TestUniformGoals(t *testing.T) {
	g := UniformGoals(0.1, 1, 2, 3)
	if len(g) != 3 || g[2] != 0.1 {
		t.Errorf("UniformGoals = %v", g)
	}
}

func TestDeviationsExcessOnly(t *testing.T) {
	// app 1: miss 0.25 vs goal 0.10 -> excess 0.15
	// app 2: miss 0.05 vs goal 0.10 -> excess 0 (goal met)
	l := ledgerWith(t, map[uint16][2]uint64{
		1: {75, 25},
		2: {95, 5},
	})
	ds := Deviations(l, UniformGoals(0.10, 1, 2))
	if len(ds) != 2 {
		t.Fatalf("got %d deviations", len(ds))
	}
	if math.Abs(ds[0].Excess-0.15) > 1e-9 {
		t.Errorf("app 1 excess = %v, want 0.15", ds[0].Excess)
	}
	if ds[1].Excess != 0 {
		t.Errorf("app 2 excess = %v, want 0", ds[1].Excess)
	}
}

func TestAverageDeviation(t *testing.T) {
	l := ledgerWith(t, map[uint16][2]uint64{
		1: {75, 25}, // excess 0.15
		2: {95, 5},  // excess 0
	})
	got := AverageDeviation(l, UniformGoals(0.10, 1, 2))
	if math.Abs(got-0.075) > 1e-9 {
		t.Errorf("AverageDeviation = %v, want 0.075", got)
	}
}

func TestGoallessAppExcluded(t *testing.T) {
	// App 3 (mcf in Graph B) misses badly but carries no goal.
	l := ledgerWith(t, map[uint16][2]uint64{
		1: {95, 5},
		3: {10, 90},
	})
	got := AverageDeviation(l, UniformGoals(0.10, 1))
	if got != 0 {
		t.Errorf("AverageDeviation = %v, want 0 (only app 1 has a goal and meets it)", got)
	}
}

func TestSilentAppSkipped(t *testing.T) {
	l := ledgerWith(t, map[uint16][2]uint64{1: {50, 50}})
	// App 9 has a goal but never ran.
	got := AverageDeviation(l, UniformGoals(0.10, 1, 9))
	if math.Abs(got-0.40) > 1e-9 {
		t.Errorf("AverageDeviation = %v, want 0.40 (only the live app counts)", got)
	}
}

func TestEmptyGoals(t *testing.T) {
	l := ledgerWith(t, map[uint16][2]uint64{1: {1, 1}})
	if got := AverageDeviation(l, nil); got != 0 {
		t.Errorf("AverageDeviation with no goals = %v", got)
	}
}

func TestDeviationsZeroAccessGoalBearers(t *testing.T) {
	// Apps 2 and 5 carry goals but never touched the cache: Deviations
	// must omit them entirely rather than reporting NaN miss rates, and
	// the apps that did run must be unaffected by the silent entries.
	l := ledgerWith(t, map[uint16][2]uint64{
		1: {60, 40}, // miss 0.40 vs goal 0.10 -> excess 0.30
		3: {90, 10}, // miss 0.10 vs goal 0.10 -> excess 0
	})
	ds := Deviations(l, UniformGoals(0.10, 1, 2, 3, 5))
	if len(ds) != 2 {
		t.Fatalf("got %d deviations, want 2 (silent apps skipped): %v", len(ds), ds)
	}
	if ds[0].ASID != 1 || ds[1].ASID != 3 {
		t.Errorf("ASIDs = %d,%d, want 1,3 in ascending order", ds[0].ASID, ds[1].ASID)
	}
	if math.Abs(ds[0].Excess-0.30) > 1e-9 || ds[1].Excess != 0 {
		t.Errorf("excesses = %v,%v, want 0.30,0", ds[0].Excess, ds[1].Excess)
	}
	for _, d := range ds {
		if math.IsNaN(d.MissRate) || math.IsNaN(d.Excess) {
			t.Errorf("NaN leaked into deviation %+v", d)
		}
	}
}

func TestDeviationsAllSilent(t *testing.T) {
	// Every goal-bearing app is silent: the slice must be empty (and
	// AverageDeviation must not divide by zero).
	l := ledgerWith(t, map[uint16][2]uint64{7: {5, 5}}) // no goal
	if ds := Deviations(l, UniformGoals(0.10, 1, 2)); len(ds) != 0 {
		t.Errorf("Deviations over silent apps = %v, want empty", ds)
	}
	if got := AverageDeviation(l, UniformGoals(0.10, 1, 2)); got != 0 {
		t.Errorf("AverageDeviation over silent apps = %v, want 0", got)
	}
}

func TestDeviationsEmptyGoals(t *testing.T) {
	l := ledgerWith(t, map[uint16][2]uint64{1: {1, 1}})
	if ds := Deviations(l, Goals{}); len(ds) != 0 {
		t.Errorf("Deviations with empty goals = %v, want empty", ds)
	}
	if ds := Deviations(l, nil); len(ds) != 0 {
		t.Errorf("Deviations with nil goals = %v, want empty", ds)
	}
}

func TestComputeHPM(t *testing.T) {
	hm := stats.HitMiss{Hits: 80, Misses: 20}
	h := ComputeHPM(4, "parser", hm, 16)
	if math.Abs(h.Value-0.05) > 1e-12 {
		t.Errorf("HPM = %v, want 0.8/16 = 0.05", h.Value)
	}
	if h.Name != "parser" || h.ASID != 4 {
		t.Errorf("HPM identity fields wrong: %+v", h)
	}
}

func TestHPMZeroMolecules(t *testing.T) {
	h := ComputeHPM(1, "x", stats.HitMiss{Hits: 1}, 0)
	if h.Value != 0 {
		t.Errorf("HPM with zero molecules = %v, want 0", h.Value)
	}
}

// The comparative property the paper uses: equal hit rates, fewer
// molecules -> higher HPM.
func TestHPMRewardsFrugality(t *testing.T) {
	hm := stats.HitMiss{Hits: 90, Misses: 10}
	frugal := ComputeHPM(1, "a", hm, 10)
	greedy := ComputeHPM(2, "b", hm, 20)
	if frugal.Value <= greedy.Value {
		t.Errorf("frugal HPM %v not above greedy %v", frugal.Value, greedy.Value)
	}
}

func TestPowerDeviation(t *testing.T) {
	if got := PowerDeviation(7.66, 0.3132); math.Abs(got-2.3991) > 1e-4 {
		t.Errorf("PowerDeviation = %v", got)
	}
	if PowerDeviation(5, 0) != 0 {
		t.Error("zero deviation should zero the product")
	}
}

func TestDeviationString(t *testing.T) {
	d := Deviation{ASID: 3, MissRate: 0.5, Goal: 0.1, Excess: 0.4}
	if got := d.String(); got == "" {
		t.Error("empty String()")
	}
}
