// Package power is the repository's stand-in for CACTI/eCACTI: an
// analytical model that converts a cache geometry (size, associativity,
// line size, ports) into dynamic energy per access and cycle time at a
// 70 nm process, the way the paper's Table 4 uses CACTI.
//
// The model follows CACTI's structure — decoder, wordline, bitline,
// sense-amp, wire (H-tree), tag path, comparator and way-mux stages over
// a sub-banked array, with a discrete search over wordline/bitline
// partitioning — with simplified RC constants calibrated against the
// paper's 8 MB Table 4 anchors:
//
//   - 8 MB DM, 4 ports: ~5 ns cycle, ~28 nJ/access (paper: 199 MHz, 4.93 W);
//   - energy/access grows with associativity (paper: 4.93 -> 7.66 W at
//     4-way), which is the paper's argument against high-associativity
//     partitioned caches;
//   - cycle time collapses at 8-way on multi-megabyte arrays (paper:
//     96 MHz vs ~200 MHz), making the 8-way's *power* lower;
//   - an 8 KB direct-mapped molecule costs ~0.4 nJ per probe, ~65x less
//     than the monolithic bank, which is what selective enablement banks on.
//
// Absolute watts are not expected to match CACTI; Table 4's orderings and
// ratios are (see EXPERIMENTS.md).
package power

import (
	"fmt"
	"math"

	"molcache/internal/addr"
)

// Tech holds process-dependent model constants. Energies are in nJ per
// activated unit, delays in ns per unit.
type Tech struct {
	// Name identifies the node, e.g. "70nm".
	Name string

	// Energy coefficients (nJ).
	DecodeEnergyPerBit   float64 // per decoded address bit
	WordlineEnergyPerCol float64
	BitlineEnergyPerCell float64 // per cell in the active subarray
	SenseEnergyPerCol    float64
	ReadoutEnergyPerBit  float64 // per way-line bit, scaled by array side
	WireEnergyPerSide    float64 // H-tree, per sqrt(total bits)
	OutputEnergyPerBit   float64 // per data-out bit, scaled by array side
	CompareEnergyPerBit  float64 // per tag bit per way

	// Delay coefficients (ns).
	DecodeDelayPerBit   float64
	WordlineDelayPerCol float64 // per sqrt(subarray columns)
	BitlineDelayPerRow  float64
	WireDelayPerSide    float64 // per sqrt(total bits)
	SenseDelay          float64
	CompareDelay        float64 // per log2(assoc)+1
	MuxDelayPerWayPair  float64 // per assoc*(assoc-1): way-select fan-in

	// PortEnergyExp scales energy by ports^PortEnergyExp.
	PortEnergyExp float64
	// PortDelayFactor adds (ports-1)*PortDelayFactor fractional delay.
	PortDelayFactor float64
}

// Tech70 models the paper's 0.07 um process, fitted to the Table 4
// anchors described in the package comment.
var Tech70 = Tech{
	Name:                 "70nm",
	DecodeEnergyPerBit:   0.012,
	WordlineEnergyPerCol: 0.00006,
	BitlineEnergyPerCell: 0.000002,
	SenseEnergyPerCol:    0.0002,
	ReadoutEnergyPerBit:  0.001,
	WireEnergyPerSide:    0.00043,
	OutputEnergyPerBit:   0.0002,
	CompareEnergyPerBit:  0.004,
	DecodeDelayPerBit:    0.055,
	WordlineDelayPerCol:  0.009,
	BitlineDelayPerRow:   0.0003,
	WireDelayPerSide:     0.00022,
	SenseDelay:           0.20,
	CompareDelay:         0.18,
	MuxDelayPerWayPair:   0.08,
	PortEnergyExp:        1.25,
	PortDelayFactor:      0.12,
}

// referenceSide normalizes the wire-length scaling of readout and output
// energy; it is the side (sqrt of bits) of the 8 MB calibration array.
const referenceSide = 8192.0

// Geometry describes one cache bank to model.
type Geometry struct {
	// SizeBytes is the bank capacity (power of two).
	SizeBytes uint64
	// Assoc is the associativity (1 = direct mapped).
	Assoc int
	// LineBytes is the block size (power of two).
	LineBytes uint64
	// Ports is the number of read/write ports (>= 1).
	Ports int
}

// Name renders the geometry the way the paper's tables do
// ("8MB DM", "8MB 4-way").
func (g Geometry) Name() string {
	if g.Assoc == 1 {
		return addr.Bytes(g.SizeBytes) + " DM"
	}
	return fmt.Sprintf("%s %d-way", addr.Bytes(g.SizeBytes), g.Assoc)
}

// Validate checks the geometry.
func (g Geometry) Validate() error {
	if err := addr.CheckPow2("size", g.SizeBytes); err != nil {
		return err
	}
	if err := addr.CheckPow2("line size", g.LineBytes); err != nil {
		return err
	}
	if g.Assoc < 1 || !addr.IsPow2(uint64(g.Assoc)) {
		return fmt.Errorf("power: assoc must be a positive power of two, got %d", g.Assoc)
	}
	if g.Ports < 1 {
		return fmt.Errorf("power: ports must be >= 1, got %d", g.Ports)
	}
	if g.SizeBytes/g.LineBytes/uint64(g.Assoc) == 0 {
		return fmt.Errorf("power: geometry has no sets (size %d, line %d, assoc %d)",
			g.SizeBytes, g.LineBytes, g.Assoc)
	}
	return nil
}

// Estimate is the model output for one geometry.
type Estimate struct {
	Geometry Geometry
	// AccessEnergy is the dynamic energy of one access in nJ.
	AccessEnergy float64
	// CycleTime is the access cycle in ns.
	CycleTime float64
	// Ndwl and Ndbl are the chosen wordline/bitline partitioning.
	Ndwl, Ndbl int
	// TagEnergy and DataEnergy decompose AccessEnergy.
	TagEnergy, DataEnergy float64
}

// FrequencyMHz is the clock implied by the cycle time.
func (e Estimate) FrequencyMHz() float64 { return 1000 / e.CycleTime }

// PowerWatts returns dynamic power assuming one access per cycle at
// freqMHz — the paper's operating assumption when comparing caches at the
// traditional cache's frequency.
func (e Estimate) PowerWatts(freqMHz float64) float64 {
	// nJ * MHz = mW; convert to W.
	return e.AccessEnergy * freqMHz / 1000
}

// physicalAddressBits is the modelled physical address width.
const physicalAddressBits = 40

// Model runs the partitioning search and returns the best estimate
// (minimum cycle time, energy as the tie-break, matching CACTI's
// time-first optimization).
func Model(g Geometry, t Tech) (Estimate, error) {
	if err := g.Validate(); err != nil {
		return Estimate{}, err
	}
	best := Estimate{}
	found := false
	for _, ndwl := range []int{1, 2, 4, 8, 16, 32} {
		for _, ndbl := range []int{1, 2, 4, 8, 16, 32, 64} {
			e, ok := evaluate(g, t, ndwl, ndbl)
			if !ok {
				continue
			}
			if !found ||
				e.CycleTime < best.CycleTime-1e-12 ||
				(math.Abs(e.CycleTime-best.CycleTime) < 1e-12 && e.AccessEnergy < best.AccessEnergy) {
				best = e
				found = true
			}
		}
	}
	if !found {
		return Estimate{}, fmt.Errorf("power: no feasible organization for %+v", g)
	}
	return best, nil
}

// MustModel is Model for static geometries; it panics on error.
func MustModel(g Geometry, t Tech) Estimate {
	e, err := Model(g, t)
	if err != nil {
		panic(err)
	}
	return e
}

// evaluate scores one (Ndwl, Ndbl) organization. ok=false marks
// infeasible splits (sub-array degenerates).
func evaluate(g Geometry, t Tech, ndwl, ndbl int) (Estimate, bool) {
	sets := float64(g.SizeBytes / g.LineBytes / uint64(g.Assoc))
	lineBits := float64(8 * g.LineBytes)
	rowBits := lineBits * float64(g.Assoc) // bits per logical data row
	subRows := sets / float64(ndbl)
	subCols := rowBits / float64(ndwl)
	if subRows < 8 || subCols < 64 {
		return Estimate{}, false
	}
	idxBits := math.Log2(sets)
	tagBits := physicalAddressBits - idxBits - math.Log2(float64(g.LineBytes))
	if tagBits < 1 {
		tagBits = 1
	}
	// side is the physical scale of the data array: wire lengths (H-tree
	// routing, line readout, output drive) grow with it.
	side := math.Sqrt(float64(8 * g.SizeBytes))
	sideFactor := side / referenceSide

	// Data array energy: decode, one subarray's wordline/bitlines/sense
	// amps, per-way line readout to the way mux, H-tree wires, and the
	// final output drive.
	dataE := t.DecodeEnergyPerBit*idxBits +
		t.WordlineEnergyPerCol*subCols +
		t.BitlineEnergyPerCell*subCols*subRows +
		t.SenseEnergyPerCol*subCols +
		t.ReadoutEnergyPerBit*lineBits*float64(g.Assoc)*sideFactor +
		t.WireEnergyPerSide*side +
		t.OutputEnergyPerBit*lineBits*sideFactor

	// Tag array: narrow (tagBits+2 status bits per way, unsplit), same
	// bitline discipline, plus the per-way comparators.
	tagCols := (tagBits + 2) * float64(g.Assoc)
	tagE := t.DecodeEnergyPerBit*idxBits +
		t.WordlineEnergyPerCol*tagCols +
		t.BitlineEnergyPerCell*tagCols*subRows +
		t.SenseEnergyPerCol*tagCols +
		t.CompareEnergyPerBit*tagBits*float64(g.Assoc)

	portMul := math.Pow(float64(g.Ports), t.PortEnergyExp)
	energy := (dataE + tagE) * portMul

	// Delay: decode -> wordline -> bitline -> wire -> sense, then tag
	// compare and the way multiplexer whose fan-in grows with
	// associativity. The quadratic mux term reproduces CACTI's 8-way
	// frequency cliff on multi-megabyte arrays.
	a := float64(g.Assoc)
	delay := t.DecodeDelayPerBit*idxBits +
		t.WordlineDelayPerCol*math.Sqrt(subCols) +
		t.BitlineDelayPerRow*subRows +
		t.WireDelayPerSide*side +
		t.SenseDelay +
		t.CompareDelay*(math.Log2(a)+1) +
		t.MuxDelayPerWayPair*a*(a-1)
	delay *= 1 + t.PortDelayFactor*float64(g.Ports-1)

	return Estimate{
		Geometry:     g,
		AccessEnergy: energy,
		CycleTime:    delay,
		Ndwl:         ndwl,
		Ndbl:         ndbl,
		TagEnergy:    tagE * portMul,
		DataEnergy:   dataE * portMul,
	}, true
}
