package power

import (
	"fmt"
	"math"

	"molcache/internal/addr"
)

// sqrtf is a local alias keeping call sites compact.
func sqrtf(x float64) float64 { return math.Sqrt(x) }

// MolecularGeometry describes a molecular cache for power purposes
// (Table 3's configuration columns).
type MolecularGeometry struct {
	// TotalBytes is the aggregate capacity.
	TotalBytes uint64
	// MoleculeBytes is one molecule's capacity (8-32 KB per the paper).
	MoleculeBytes uint64
	// LineBytes is the molecule line size (64 B in the paper).
	LineBytes uint64
	// TileMolecules is the number of molecules per tile.
	TileMolecules int
	// PortsPerCluster is the number of read/write ports per tile
	// cluster (1 in the paper's Table 3).
	PortsPerCluster int
}

// Validate checks the geometry.
func (g MolecularGeometry) Validate() error {
	if g.TotalBytes == 0 {
		return fmt.Errorf("power: total size must be positive")
	}
	if err := addr.CheckPow2("molecule size", g.MoleculeBytes); err != nil {
		return err
	}
	if g.TileMolecules < 1 {
		return fmt.Errorf("power: tile must hold at least one molecule")
	}
	if g.PortsPerCluster < 1 {
		return fmt.Errorf("power: cluster needs at least one port")
	}
	return nil
}

// MolecularEstimate reports the energy structure of a molecular cache.
type MolecularEstimate struct {
	Geometry MolecularGeometry
	// Molecule is the model output for a single molecule bank.
	Molecule Estimate
	// ASIDCheckEnergy is the per-molecule ASID comparator energy (nJ),
	// charged for every molecule on the tile on every access (the
	// comparison is what *gates* the expensive array access).
	ASIDCheckEnergy float64
	// RoutingEnergy is the per-access tile/Ulmo routing overhead (nJ).
	RoutingEnergy float64
}

// asidBits is the width of the Application Space Identifier compared in
// the molecule decode stage (Figure 3).
const asidBits = 16

// ModelMolecular evaluates the molecule building block under t.
func ModelMolecular(g MolecularGeometry, t Tech) (MolecularEstimate, error) {
	if err := g.Validate(); err != nil {
		return MolecularEstimate{}, err
	}
	mol, err := Model(Geometry{
		SizeBytes: g.MoleculeBytes,
		Assoc:     1, // molecules are direct mapped by definition
		LineBytes: g.LineBytes,
		Ports:     g.PortsPerCluster,
	}, t)
	if err != nil {
		return MolecularEstimate{}, err
	}
	// Routing from the tile port across the molecules spans a wire run
	// proportional to the tile's physical side.
	tileBits := float64(8 * g.MoleculeBytes * uint64(g.TileMolecules))
	return MolecularEstimate{
		Geometry:        g,
		Molecule:        mol,
		ASIDCheckEnergy: t.CompareEnergyPerBit * asidBits,
		RoutingEnergy:   t.WireEnergyPerSide * sqrtf(tileBits),
	}, nil
}

// AccessEnergy returns the energy of one molecular-cache access that
// probed the given number of molecules: every molecule on the tile pays
// the ASID comparison, but only the probed molecules activate their
// arrays. This selective enablement is the paper's core power mechanism.
func (m MolecularEstimate) AccessEnergy(probedMolecules int) float64 {
	if probedMolecules < 0 {
		probedMolecules = 0
	}
	return float64(m.Geometry.TileMolecules)*m.ASIDCheckEnergy +
		float64(probedMolecules)*m.Molecule.AccessEnergy +
		m.RoutingEnergy
}

// WorstCaseEnergy is the access energy with every molecule of a tile
// enabled — the paper's reported worst case.
func (m MolecularEstimate) WorstCaseEnergy() float64 {
	return m.AccessEnergy(m.Geometry.TileMolecules)
}

// PowerWatts converts an access energy (nJ) into dynamic watts at the
// comparison frequency (one access per cycle, as in Table 4).
func PowerWatts(accessEnergyNJ, freqMHz float64) float64 {
	return accessEnergyNJ * freqMHz / 1000
}

// CycleTime returns the molecular access cycle: molecule access plus the
// one extra ASID-comparison stage the paper says the decode path gains.
func (m MolecularEstimate) CycleTime() float64 {
	const asidStage = 0.15 // ns, one comparator stage at 70nm
	return m.Molecule.CycleTime + asidStage
}
