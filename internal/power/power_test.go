package power

import (
	"testing"

	"molcache/internal/addr"
)

func mustModel(t *testing.T, g Geometry) Estimate {
	t.Helper()
	e, err := Model(g, Tech70)
	if err != nil {
		t.Fatalf("Model(%+v): %v", g, err)
	}
	return e
}

func TestValidate(t *testing.T) {
	bad := []Geometry{
		{SizeBytes: 1000, Assoc: 1, LineBytes: 64, Ports: 1},
		{SizeBytes: 8192, Assoc: 3, LineBytes: 64, Ports: 1},
		{SizeBytes: 8192, Assoc: 1, LineBytes: 63, Ports: 1},
		{SizeBytes: 8192, Assoc: 1, LineBytes: 64, Ports: 0},
		{SizeBytes: 64, Assoc: 2, LineBytes: 64, Ports: 1},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", g)
		}
	}
}

func TestEnergyGrowsWithAssociativity(t *testing.T) {
	prev := 0.0
	for _, assoc := range []int{1, 2, 4, 8} {
		e := mustModel(t, Geometry{SizeBytes: 8 * addr.MB, Assoc: assoc, LineBytes: 64, Ports: 4})
		if e.AccessEnergy <= prev {
			t.Errorf("assoc %d: energy %.3f nJ not greater than previous %.3f",
				assoc, e.AccessEnergy, prev)
		}
		prev = e.AccessEnergy
	}
}

func TestCycleTimeGrowsWithAssociativity(t *testing.T) {
	dm := mustModel(t, Geometry{SizeBytes: 8 * addr.MB, Assoc: 1, LineBytes: 64, Ports: 4})
	w8 := mustModel(t, Geometry{SizeBytes: 8 * addr.MB, Assoc: 8, LineBytes: 64, Ports: 4})
	if w8.CycleTime <= dm.CycleTime {
		t.Errorf("8-way cycle %.2f ns not slower than DM %.2f ns", w8.CycleTime, dm.CycleTime)
	}
	// The paper's Table 4 shows roughly a 2x frequency cliff at 8-way.
	if ratio := w8.CycleTime / dm.CycleTime; ratio < 1.5 {
		t.Errorf("8-way/DM cycle ratio = %.2f, want >= 1.5", ratio)
	}
}

func TestEnergyGrowsWithSize(t *testing.T) {
	small := mustModel(t, Geometry{SizeBytes: 8 * addr.KB, Assoc: 1, LineBytes: 64, Ports: 1})
	big := mustModel(t, Geometry{SizeBytes: 8 * addr.MB, Assoc: 1, LineBytes: 64, Ports: 1})
	if big.AccessEnergy <= small.AccessEnergy {
		t.Error("8MB access should cost more than 8KB access")
	}
	// The molecule advantage the paper builds on: a small DM bank costs
	// well under a tenth of a monolithic multi-megabyte bank per probe.
	if small.AccessEnergy*10 > big.AccessEnergy {
		t.Errorf("8KB molecule (%.4f nJ) not <= 10%% of 8MB bank (%.4f nJ)",
			small.AccessEnergy, big.AccessEnergy)
	}
}

func TestPortsIncreaseEnergyAndDelay(t *testing.T) {
	g1 := mustModel(t, Geometry{SizeBytes: addr.MB, Assoc: 2, LineBytes: 64, Ports: 1})
	g4 := mustModel(t, Geometry{SizeBytes: addr.MB, Assoc: 2, LineBytes: 64, Ports: 4})
	if g4.AccessEnergy <= g1.AccessEnergy || g4.CycleTime <= g1.CycleTime {
		t.Errorf("4 ports (E=%.3f, t=%.3f) not more expensive than 1 port (E=%.3f, t=%.3f)",
			g4.AccessEnergy, g4.CycleTime, g1.AccessEnergy, g1.CycleTime)
	}
}

func TestTable4AnchorBallpark(t *testing.T) {
	// The paper's 8MB DM 4-port config runs at ~199 MHz and ~4.9 W.
	// Require the model to land within a factor of two of both.
	e := mustModel(t, Geometry{SizeBytes: 8 * addr.MB, Assoc: 1, LineBytes: 64, Ports: 4})
	f := e.FrequencyMHz()
	if f < 100 || f > 400 {
		t.Errorf("8MB DM frequency = %.0f MHz, want within [100, 400]", f)
	}
	p := e.PowerWatts(f)
	if p < 2.4 || p > 10 {
		t.Errorf("8MB DM power = %.2f W, want within [2.4, 10]", p)
	}
}

func TestPowerWattsUnits(t *testing.T) {
	e := Estimate{AccessEnergy: 25} // nJ
	if got := e.PowerWatts(200); got != 5 {
		t.Errorf("25 nJ at 200 MHz = %v W, want 5", got)
	}
	if got := PowerWatts(25, 200); got != 5 {
		t.Errorf("PowerWatts helper = %v, want 5", got)
	}
}

func TestModelDeterministic(t *testing.T) {
	g := Geometry{SizeBytes: 2 * addr.MB, Assoc: 4, LineBytes: 64, Ports: 1}
	a := mustModel(t, g)
	b := mustModel(t, g)
	if a != b {
		t.Errorf("Model not deterministic: %+v vs %+v", a, b)
	}
}

func TestMolecularSelectiveEnablement(t *testing.T) {
	me, err := ModelMolecular(MolecularGeometry{
		TotalBytes:      8 * addr.MB,
		MoleculeBytes:   8 * addr.KB,
		LineBytes:       64,
		TileMolecules:   64,
		PortsPerCluster: 1,
	}, Tech70)
	if err != nil {
		t.Fatal(err)
	}
	few := me.AccessEnergy(4)
	all := me.WorstCaseEnergy()
	if few >= all {
		t.Errorf("probing 4 molecules (%.3f nJ) not cheaper than all 64 (%.3f nJ)", few, all)
	}
	// Selective enablement must make a real difference: probing 4 of 64
	// molecules should cost well under half the worst case.
	if few > all/2 {
		t.Errorf("selective enablement too weak: 4-probe=%.3f, worst=%.3f", few, all)
	}
	if me.AccessEnergy(-1) > me.AccessEnergy(0) {
		t.Error("negative probe count not clamped")
	}
}

// The headline mechanism: a molecular cache probing a typical partition's
// home-tile molecules must beat an equally sized 4-way traditional cache
// at the same frequency.
func TestMolecularBeatsTraditionalAtTypicalProbes(t *testing.T) {
	trad := mustModel(t, Geometry{SizeBytes: 8 * addr.MB, Assoc: 4, LineBytes: 64, Ports: 4})
	me, err := ModelMolecular(MolecularGeometry{
		TotalBytes:      8 * addr.MB,
		MoleculeBytes:   8 * addr.KB,
		LineBytes:       64,
		TileMolecules:   64,
		PortsPerCluster: 1,
	}, Tech70)
	if err != nil {
		t.Fatal(err)
	}
	f := trad.FrequencyMHz()
	// A partition typically holds ~half a tile (the paper's initial
	// allocation), i.e. 32 molecules probed.
	molW := PowerWatts(me.AccessEnergy(32), f)
	tradW := trad.PowerWatts(f)
	if molW >= tradW {
		t.Errorf("molecular %.2f W not below traditional 4-way %.2f W", molW, tradW)
	}
}

func TestMolecularValidate(t *testing.T) {
	bad := []MolecularGeometry{
		{TotalBytes: 0, MoleculeBytes: 8192, LineBytes: 64, TileMolecules: 4, PortsPerCluster: 1},
		{TotalBytes: 1 << 20, MoleculeBytes: 9000, LineBytes: 64, TileMolecules: 4, PortsPerCluster: 1},
		{TotalBytes: 1 << 20, MoleculeBytes: 8192, LineBytes: 64, TileMolecules: 0, PortsPerCluster: 1},
		{TotalBytes: 1 << 20, MoleculeBytes: 8192, LineBytes: 64, TileMolecules: 4, PortsPerCluster: 0},
	}
	for _, g := range bad {
		if _, err := ModelMolecular(g, Tech70); err == nil {
			t.Errorf("ModelMolecular(%+v) = nil error, want error", g)
		}
	}
}

func TestMolecularCycleTime(t *testing.T) {
	me, err := ModelMolecular(MolecularGeometry{
		TotalBytes: 8 * addr.MB, MoleculeBytes: 8 * addr.KB, LineBytes: 64,
		TileMolecules: 64, PortsPerCluster: 1,
	}, Tech70)
	if err != nil {
		t.Fatal(err)
	}
	if me.CycleTime() <= me.Molecule.CycleTime {
		t.Error("ASID stage did not lengthen the molecular cycle")
	}
	// A molecule plus the ASID stage must still be far faster than a
	// monolithic 8MB bank — that is why molecules are the building block.
	big := mustModel(t, Geometry{SizeBytes: 8 * addr.MB, Assoc: 1, LineBytes: 64, Ports: 4})
	if me.CycleTime() >= big.CycleTime {
		t.Errorf("molecule cycle %.2f ns not faster than 8MB bank %.2f ns",
			me.CycleTime(), big.CycleTime)
	}
}
