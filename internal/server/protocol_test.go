package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func decodeOne(t *testing.T, input string) (Request, error) {
	t.Helper()
	return ReadRequest(bufio.NewReader(strings.NewReader(input)))
}

func TestReadRequestValid(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  Request
	}{
		{"ping", "PING\r\n", Request{Verb: VerbPing}},
		{"quit bare LF", "QUIT\n", Request{Verb: VerbQuit}},
		{"tenant", "TENANT web 0.05\r\n", Request{Verb: VerbTenant, Tenant: "web", Goal: 0.05}},
		{"tenant with line factor", "TENANT batch-1 0.4 4\r\n",
			Request{Verb: VerbTenant, Tenant: "batch-1", Goal: 0.4, LineFactor: 4}},
		{"get", "GET web user:17\r\n", Request{Verb: VerbGet, Tenant: "web", Key: "user:17"}},
		{"del", "DEL web user:17\r\n", Request{Verb: VerbDel, Tenant: "web", Key: "user:17"}},
		{"set", "SET web k 5\r\nhello\r\n",
			Request{Verb: VerbSet, Tenant: "web", Key: "k", Value: []byte("hello")}},
		{"set empty value", "SET web k 0\r\n\r\n",
			Request{Verb: VerbSet, Tenant: "web", Key: "k", Value: []byte{}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := decodeOne(t, tc.input)
			if err != nil {
				t.Fatalf("ReadRequest(%q): %v", tc.input, err)
			}
			if got.Verb != tc.want.Verb || got.Tenant != tc.want.Tenant ||
				got.Key != tc.want.Key || got.Goal != tc.want.Goal ||
				got.LineFactor != tc.want.LineFactor || !bytes.Equal(got.Value, tc.want.Value) {
				t.Errorf("ReadRequest(%q) = %+v, want %+v", tc.input, got, tc.want)
			}
		})
	}
}

func TestReadRequestMalformed(t *testing.T) {
	longKey := strings.Repeat("k", MaxKeyLen+1)
	longLine := strings.Repeat("x", MaxLineLen+10)
	cases := []struct {
		name     string
		input    string
		wantCode string
	}{
		{"empty line", "\r\n", ErrBadVerb},
		{"unknown verb", "FROB a b\r\n", ErrBadVerb},
		{"lowercase verb", "get web k\r\n", ErrBadVerb},
		{"ping with args", "PING now\r\n", ErrBadArgs},
		{"get missing key", "GET web\r\n", ErrBadArgs},
		{"get extra args", "GET web k1 k2\r\n", ErrBadArgs},
		{"bad tenant chars", "GET we$b k\r\n", ErrBadTenant},
		{"tenant too long", "GET " + strings.Repeat("t", MaxTenantLen+1) + " k\r\n", ErrBadTenant},
		{"oversized key", "GET web " + longKey + "\r\n", ErrBadKey},
		{"key with control byte", "GET web k\x01ey\r\n", ErrBadKey},
		{"tenant goal zero", "TENANT web 0\r\n", ErrBadGoal},
		{"tenant goal one", "TENANT web 1.0\r\n", ErrBadGoal},
		{"tenant goal garbage", "TENANT web fast\r\n", ErrBadGoal},
		{"tenant bad line factor", "TENANT web 0.1 -2\r\n", ErrBadArgs},
		{"set negative length", "SET web k -1\r\n", ErrBadValue},
		{"set oversized length", "SET web k 1048577\r\n", ErrBadValue},
		{"set garbage length", "SET web k five\r\n", ErrBadValue},
		{"set truncated value", "SET web k 10\r\nabc", ErrTruncated},
		{"set missing terminator", "SET web k 3\r\nabcXY", ErrTruncated},
		{"unterminated line", "GET web k", ErrTruncated},
		{"line too long", longLine + "\r\n", ErrLineTooLong},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeOne(t, tc.input)
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("ReadRequest(%.40q): got %v, want *ProtocolError", tc.input, err)
			}
			if pe.Code != tc.wantCode {
				t.Errorf("ReadRequest(%.40q): code %q, want %q", tc.input, pe.Code, tc.wantCode)
			}
		})
	}
}

func TestReadRequestEOF(t *testing.T) {
	_, err := decodeOne(t, "")
	if err != io.EOF {
		t.Fatalf("empty input: got %v, want io.EOF", err)
	}
}

func TestReadRequestStream(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("PING\r\nSET a-1 k 2\r\nhi\r\nGET a-1 k\r\n"))
	verbs := []Verb{VerbPing, VerbSet, VerbGet}
	for i, want := range verbs {
		req, err := ReadRequest(br)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if req.Verb != want {
			t.Fatalf("request %d: verb %s, want %s", i, req.Verb, want)
		}
	}
	if _, err := ReadRequest(br); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

func TestProtocolErrorFatal(t *testing.T) {
	fatal := []string{ErrLineTooLong, ErrTruncated}
	for _, code := range fatal {
		if !(&ProtocolError{Code: code}).Fatal() {
			t.Errorf("code %s must be fatal", code)
		}
	}
	for _, code := range []string{ErrBadVerb, ErrBadArgs, ErrBadKey, ErrUnknownTenant} {
		if (&ProtocolError{Code: code}).Fatal() {
			t.Errorf("code %s must not be fatal", code)
		}
	}
}

func TestBlockAddrDeterministicAndConfined(t *testing.T) {
	a1 := blockAddr(3, "user:17", 26, 64)
	a2 := blockAddr(3, "user:17", 26, 64)
	if a1 != a2 {
		t.Fatalf("blockAddr not deterministic: %#x vs %#x", a1, a2)
	}
	if a1%64 != 0 {
		t.Errorf("blockAddr not line-aligned: %#x", a1)
	}
	if base := a1 >> 36; base != 3 {
		t.Errorf("blockAddr outside ASID base: %#x (asid bits %d)", a1, base)
	}
	if blockAddr(4, "user:17", 26, 64)>>36 != 4 {
		t.Errorf("different ASIDs must map to disjoint bases")
	}
}
