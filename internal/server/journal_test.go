package server

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"molcache/internal/addr"
	"molcache/internal/engine"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/trace"
)

func testJournalConfig() JournalConfig {
	return JournalConfig{
		Molecular: molecular.Config{
			TotalSize: 1 * addr.MB, Clusters: 2, TilesPerCluster: 4,
			Policy: molecular.RandyReplacement, InitialMolecules: 8, Seed: 2006,
		},
		Resize:    resize.Config{Period: 400, DefaultGoal: 0.2},
		AddrBits:  26,
		EventRing: 4096,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.molc")
	cfg := testJournalConfig()
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Tenant(TenantRecord{ASID: 1, Name: "web", Goal: 0.05, LineFactor: 2}); err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		{Addr: 1 << 36, ASID: 1, Kind: trace.Write},
		{Addr: 1<<36 | 64, ASID: 1, Kind: trace.Read},
	}
	results := []engine.Result{
		{LinesFetched: 2, TagProbes: 1, DataReads: 2},
		{Hit: true, TagProbes: 1, DataReads: 1},
	}
	if err := j.Batch(refs, results); err != nil {
		t.Fatal(err)
	}
	if err := j.Tenant(TenantRecord{ASID: 1, Name: "web", Goal: 0.1, Update: true}); err != nil {
		t.Fatal(err)
	}
	if got := j.Seq(); got != 2 {
		t.Fatalf("Seq() = %d, want 2", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rcfg, frames, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rcfg, cfg) {
		t.Errorf("config round trip: got %+v, want %+v", rcfg, cfg)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want 4", len(frames))
	}
	if frames[1].Tenant == nil || frames[1].Tenant.Name != "web" || frames[1].Tenant.At != 0 {
		t.Errorf("tenant frame: %+v", frames[1].Tenant)
	}
	b := frames[2].Batch
	if b == nil || b.First != 1 || !reflect.DeepEqual(b.Refs, refs) || !reflect.DeepEqual(b.Results, results) {
		t.Errorf("batch frame: %+v", b)
	}
	upd := frames[3].Tenant
	if upd == nil || !upd.Update || upd.At != 2 || upd.Goal != 0.1 {
		t.Errorf("update frame: %+v", upd)
	}
}

func TestJournalAppendContinuity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.molc")
	cfg := testJournalConfig()
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{{Addr: 1 << 36, ASID: 1}}
	res := []engine.Result{{Hit: true}}
	if err := j.Tenant(TenantRecord{ASID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Batch(refs, res); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, cfg2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg2, cfg) {
		t.Errorf("reopened config mismatch")
	}
	if j2.Seq() != 1 {
		t.Fatalf("reopened Seq() = %d, want 1", j2.Seq())
	}
	if err := j2.Batch(refs, res); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	_, frames, err := ReadJournalFile(path)
	if err != nil {
		t.Fatalf("journal after append must stay gap-free: %v", err)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames after append, want 4", len(frames))
	}
	if frames[3].Batch.First != 2 {
		t.Errorf("appended batch First = %d, want 2", frames[3].Batch.First)
	}
}

func TestJournalGapDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.molc")
	j, err := CreateJournal(path, testJournalConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Forge a gap: write a batch frame whose First skips a sequence
	// number by bypassing Batch's accounting.
	if err := j.writeFrame(frameBatch, BatchRecord{
		First:   2,
		Refs:    []trace.Ref{{Addr: 64, ASID: 1}},
		Results: []engine.Result{{}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadJournalFile(path)
	var je *JournalError
	if !errors.As(err, &je) {
		t.Fatalf("gap: got %v, want *JournalError", err)
	}
}

func TestJournalCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.molc")
	j, err := CreateJournal(path, testJournalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Batch([]trace.Ref{{Addr: 64, ASID: 1}}, []engine.Result{{}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the last frame's payload (under the section CRC)
	// and truncate the tail, checking both corruption classes.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-3] ^= 0xFF
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	var je *JournalError
	if _, _, err := ReadJournalFile(path); !errors.As(err, &je) {
		t.Fatalf("bit flip: got %v, want *JournalError", err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadJournalFile(path); !errors.As(err, &je) {
		t.Fatalf("truncation: got %v, want *JournalError", err)
	}
	if _, _, err := OpenJournal(path); !errors.As(err, &je) {
		t.Fatalf("OpenJournal on torn tail: got %v, want *JournalError", err)
	}
}

func TestJournalMissingConfigFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.molc")
	// An empty journal (zero frames) must be rejected.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var je *JournalError
	if _, _, err := ReadJournalFile(path); !errors.As(err, &je) {
		t.Fatalf("empty journal: got %v, want *JournalError", err)
	}
	// A journal whose first frame is not a config frame must be
	// rejected too.
	j, err := CreateJournal(path, testJournalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Tenant(TenantRecord{ASID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the config frame: its length prefix is the first 4 bytes.
	cfgLen := int(uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24)
	if err := os.WriteFile(path, data[4+cfgLen:], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadJournalFile(path); !errors.As(err, &je) {
		t.Fatalf("headless journal: got %v, want *JournalError", err)
	}
}
