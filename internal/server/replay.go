package server

import (
	"fmt"
	"io"
	"os"

	"molcache"
	"molcache/internal/engine"
	"molcache/internal/molecular"
	"molcache/internal/telemetry"
)

// This file is the offline half of the served-traffic differential
// oracle. A journal is self-describing: the genesis frame carries the
// configurations, the tenant frames carry every region creation and
// goal update in admission order, and the batch frames carry every
// admitted ref with the Result the live server computed. Replaying the
// journal through a fresh Simulator therefore reconstructs the exact
// access history the live cache saw — same refs, same order, same
// resize-trigger points on the logical access clock, same fault
// schedule, same region placement (the round-robin home cursor is a
// deterministic function of creation order). Byte-identity of every
// recomputed Result plus the end-state ledgers, histograms, telemetry
// and decision logs proves the network layer added no semantic drift.

// ReplayOptions tunes a replay run.
type ReplayOptions struct {
	// Shards replays through the epoch-parallel engine when > 1
	// (default 1: the serial Simulator loop).
	Shards int
}

// ReplayError reports a divergence between the journal and the offline
// recomputation, naming the 1-based access sequence number.
type ReplayError struct {
	Seq    uint64
	Reason string
}

func (e *ReplayError) Error() string {
	return fmt.Sprintf("server: replay diverged at seq %d: %s", e.Seq, e.Reason)
}

// Replay is the reconstructed offline state, ready for end-state
// comparison against the live server's simulator.
type Replay struct {
	Sim      *molcache.Simulator
	Tracer   *telemetry.Tracer
	Registry *telemetry.Registry
	Config   JournalConfig
	// Accesses is the number of admitted accesses replayed; Tenants the
	// number of distinct tenant registrations seen.
	Accesses uint64
	Tenants  int
}

// ReplayJournal replays a journal stream through a fresh simulator,
// asserting per-access Result identity against the journaled Results.
func ReplayJournal(r io.Reader, opts ReplayOptions) (*Replay, error) {
	cfg, frames, err := ReadJournal(r)
	if err != nil {
		return nil, err
	}
	sim, err := molcache.NewSimulator(cfg.Molecular, cfg.Resize)
	if err != nil {
		return nil, err
	}
	rep := &Replay{
		Sim:      sim,
		Tracer:   telemetry.NewTracer(cfg.EventRing),
		Registry: telemetry.NewRegistry(),
		Config:   cfg,
	}
	sim.AttachTelemetry(rep.Tracer, rep.Registry)
	if err := sim.InjectFaults(cfg.Faults); err != nil {
		return nil, err
	}
	var batcher engine.Batcher = sim
	if opts.Shards > 1 {
		batcher = sim.Sharded(opts.Shards)
	}
	var seq uint64
	for _, f := range frames {
		switch {
		case f.Tenant != nil:
			rec := f.Tenant
			if rec.Update {
				if err := sim.Controller.SetGoal(rec.ASID, rec.Goal); err != nil {
					return nil, &ReplayError{Seq: seq, Reason: err.Error()}
				}
				continue
			}
			if _, err := sim.Cache.CreateRegion(rec.ASID, molecular.RegionOptions{
				HomeCluster: -1, HomeTile: -1, LineFactor: rec.LineFactor,
			}); err != nil {
				return nil, &ReplayError{Seq: seq, Reason: err.Error()}
			}
			if err := sim.Controller.SetGoal(rec.ASID, rec.Goal); err != nil {
				return nil, &ReplayError{Seq: seq, Reason: err.Error()}
			}
			rep.Tenants++
		case f.Batch != nil:
			rec := f.Batch
			results := batcher.AccessBatch(rec.Refs)
			for i := range results {
				if results[i] != rec.Results[i] {
					return nil, &ReplayError{
						Seq: rec.First + uint64(i),
						Reason: fmt.Sprintf("recomputed %+v, journal has %+v (ref %+v)",
							results[i], rec.Results[i], rec.Refs[i]),
					}
				}
			}
			seq += uint64(len(rec.Refs))
		}
	}
	rep.Accesses = seq
	return rep, nil
}

// ReplayJournalFile is ReplayJournal over a file.
func ReplayJournalFile(path string, opts ReplayOptions) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: open journal: %w", err)
	}
	defer f.Close()
	return ReplayJournal(f, opts)
}
