package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzServerDecode hammers the wire-protocol decoder: any byte stream
// must produce either valid requests or typed *ProtocolErrors — never
// a panic, and never a request violating the protocol limits. Mirrors
// FuzzSnapshotDecode; wired into make fuzz and the CI fuzz smoke.
func FuzzServerDecode(f *testing.F) {
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("QUIT\r\n"))
	f.Add([]byte("TENANT web 0.05 2\r\n"))
	f.Add([]byte("GET web user:17\r\n"))
	f.Add([]byte("SET web user:17 5\r\nhello\r\n"))
	f.Add([]byte("DEL web user:17\r\n"))
	f.Add([]byte("SET web k 1048577\r\n"))
	f.Add([]byte("FROB\r\n"))
	f.Add([]byte("TENANT " + strings.Repeat("t", 100) + " 0.5\r\n"))
	f.Add([]byte("GET we\x00b k\r\n"))
	f.Add([]byte("SET web k 10\r\ntrunc"))
	f.Add([]byte(strings.Repeat("x", MaxLineLen+2) + "\r\n"))
	f.Add([]byte("PING\r\nPING\r\nGET a b\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			req, err := ReadRequest(br)
			if err != nil {
				if err == io.EOF {
					return
				}
				var pe *ProtocolError
				if !errors.As(err, &pe) {
					t.Fatalf("non-typed error from ReadRequest: %v", err)
				}
				if pe.Code == "" {
					t.Fatalf("ProtocolError with empty code: %v", pe)
				}
				// After an error the stream position may be mid-garbage;
				// the server closes fatal connections and resyncs at the
				// next line otherwise. Either way the decode loop ends
				// here for fuzzing purposes.
				return
			}
			switch req.Verb {
			case VerbTenant:
				if req.Goal <= 0 || req.Goal >= 1 {
					t.Fatalf("accepted out-of-range goal %v", req.Goal)
				}
				if len(req.Tenant) == 0 || len(req.Tenant) > MaxTenantLen {
					t.Fatalf("accepted bad tenant name %q", req.Tenant)
				}
			case VerbGet, VerbSet, VerbDel:
				if len(req.Key) == 0 || len(req.Key) > MaxKeyLen {
					t.Fatalf("accepted bad key %q", req.Key)
				}
				if len(req.Value) > MaxValueLen {
					t.Fatalf("accepted oversized value (%d bytes)", len(req.Value))
				}
			case VerbPing, VerbQuit:
			default:
				t.Fatalf("accepted unknown verb %q", req.Verb)
			}
		}
	})
}
