package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"molcache/internal/engine"
	"molcache/internal/faults"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/snapshot"
	"molcache/internal/trace"
)

// The access journal is a stream of length-prefixed MOLC1 containers
// (snapshot.FrameWriter), one frame per record. Frame kinds are named
// by their single section:
//
//	config  genesis record: the molecular/resize configurations, fault
//	        campaign, address-mapping width and tracer ring size — a
//	        journal is self-describing, replayable with no side channel;
//	tenant  one TENANT admin action (region creation or goal update),
//	        stamped with the access count it happened at;
//	batch   one admitted access run: the refs in service order plus the
//	        engine Results the live server computed for them.
//
// Journaling Results makes the differential oracle per-access: replay
// recomputes every Result offline and any divergence names the exact
// sequence number, not just a drifted end state.
const (
	frameConfig = "config"
	frameTenant = "tenant"
	frameBatch  = "batch"
)

// JournalConfig is the genesis frame: everything an offline replayer
// needs to rebuild the server's simulator from scratch.
type JournalConfig struct {
	Molecular molecular.Config `json:"molecular"`
	Resize    resize.Config    `json:"resize"`
	Faults    faults.Campaign  `json:"faults"`
	AddrBits  uint             `json:"addr_bits"`
	EventRing int              `json:"event_ring"`
}

// TenantRecord journals one TENANT admin action.
type TenantRecord struct {
	// At is the server's access count when the action ran (the gap
	// check: it must equal the preceding batch's last sequence number).
	At   uint64 `json:"at"`
	ASID uint16 `json:"asid"`
	Name string `json:"name"`
	// Goal is the tenant's miss-rate SLO goal after the action.
	Goal float64 `json:"goal"`
	// LineFactor is the region's line factor (creation only).
	LineFactor int `json:"line_factor,omitempty"`
	// Update marks a goal update on an existing tenant; the region is
	// created only when Update is false.
	Update bool `json:"update,omitempty"`
}

// BatchRecord journals one admitted access run.
type BatchRecord struct {
	// First is the 1-based sequence number of Refs[0]; a gap-free
	// journal has First == previous last + 1.
	First   uint64          `json:"first"`
	Refs    []trace.Ref     `json:"refs"`
	Results []engine.Result `json:"results"`
}

// JournalError is the typed error for journal structure violations:
// corrupt frames, sequence gaps, config mismatches.
type JournalError struct {
	Seq    uint64
	Reason string
}

func (e *JournalError) Error() string {
	return fmt.Sprintf("server: journal at seq %d: %s", e.Seq, e.Reason)
}

func errJournal(seq uint64, format string, args ...any) *JournalError {
	return &JournalError{Seq: seq, Reason: fmt.Sprintf(format, args...)}
}

// Frame is one decoded journal record; exactly one field is non-nil.
type Frame struct {
	Config *JournalConfig
	Tenant *TenantRecord
	Batch  *BatchRecord
}

func decodeFrame(sections []snapshot.Section) (Frame, error) {
	if len(sections) != 1 {
		return Frame{}, errJournal(0, "frame has %d sections, want 1", len(sections))
	}
	s := sections[0]
	var f Frame
	var err error
	switch s.Name {
	case frameConfig:
		f.Config = new(JournalConfig)
		err = json.Unmarshal(s.Payload, f.Config)
	case frameTenant:
		f.Tenant = new(TenantRecord)
		err = json.Unmarshal(s.Payload, f.Tenant)
	case frameBatch:
		f.Batch = new(BatchRecord)
		err = json.Unmarshal(s.Payload, f.Batch)
	default:
		return Frame{}, errJournal(0, "unknown frame kind %q", s.Name)
	}
	if err != nil {
		return Frame{}, errJournal(0, "decode %s frame: %v", s.Name, err)
	}
	return f, nil
}

func encodeFrame(kind string, v any) ([]snapshot.Section, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("server: encode %s frame: %w", kind, err)
	}
	return []snapshot.Section{{Name: kind, Payload: payload}}, nil
}

// Journal is the server's append-side handle: buffered writes, access
// sequence accounting, explicit Sync.
type Journal struct {
	f      *os.File
	bw     *bufio.Writer
	fw     *snapshot.FrameWriter
	seq    uint64
	frames uint64
}

func (j *Journal) writeFrame(kind string, v any) error {
	sections, err := encodeFrame(kind, v)
	if err != nil {
		return err
	}
	if err := j.fw.WriteFrame(sections); err != nil {
		return err
	}
	j.frames++
	return nil
}

// CreateJournal creates (truncating) the journal at path and writes the
// genesis config frame.
func CreateJournal(path string, cfg JournalConfig) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("server: create journal: %w", err)
	}
	j := &Journal{f: f, bw: bufio.NewWriter(f)}
	j.fw = snapshot.NewFrameWriter(j.bw)
	if err := j.writeFrame(frameConfig, cfg); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournal opens an existing journal for appending (the warm-restart
// path): it scans every frame to recover the genesis config and the
// last access sequence number, then positions the write cursor at the
// end. Any corruption or sequence gap is a typed error.
func OpenJournal(path string) (*Journal, JournalConfig, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, JournalConfig{}, fmt.Errorf("server: open journal: %w", err)
	}
	cfg, frames, err := ReadJournal(f)
	if err != nil {
		f.Close()
		return nil, JournalConfig{}, err
	}
	var seq uint64
	for _, fr := range frames {
		if fr.Batch != nil {
			seq += uint64(len(fr.Batch.Refs))
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, JournalConfig{}, fmt.Errorf("server: seek journal end: %w", err)
	}
	j := &Journal{f: f, bw: bufio.NewWriter(f), seq: seq, frames: uint64(len(frames))}
	j.fw = snapshot.NewFrameWriter(j.bw)
	return j, cfg, nil
}

// Tenant appends a tenant frame.
func (j *Journal) Tenant(rec TenantRecord) error {
	if j == nil {
		return nil
	}
	rec.At = j.seq
	return j.writeFrame(frameTenant, rec)
}

// Batch appends one admitted access run with its live Results.
func (j *Journal) Batch(refs []trace.Ref, results []engine.Result) error {
	if j == nil || len(refs) == 0 {
		return nil
	}
	rec := BatchRecord{First: j.seq + 1, Refs: refs, Results: results}
	if err := j.writeFrame(frameBatch, rec); err != nil {
		return err
	}
	j.seq += uint64(len(refs))
	return nil
}

// Seq returns the last journaled access sequence number.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	return j.seq
}

// Frames returns the number of frames written or scanned.
func (j *Journal) Frames() uint64 {
	if j == nil {
		return 0
	}
	return j.frames
}

// Sync flushes buffered frames and fsyncs the file.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	if err := j.bw.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ReadJournal decodes every frame of a journal stream, verifying frame
// order and sequence continuity (the race-serve gap check reuses this).
func ReadJournal(r io.Reader) (JournalConfig, []Frame, error) {
	var cfg JournalConfig
	var frames []Frame
	var seq uint64
	fr := snapshot.NewFrameReader(bufio.NewReader(r))
	for i := 0; ; i++ {
		sections, err := fr.ReadFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return cfg, frames, errJournal(seq, "frame %d: %v", i, err)
		}
		frame, err := decodeFrame(sections)
		if err != nil {
			return cfg, frames, err
		}
		switch {
		case frame.Config != nil:
			if i != 0 {
				return cfg, frames, errJournal(seq, "config frame at position %d, want 0", i)
			}
			cfg = *frame.Config
		case i == 0:
			return cfg, frames, errJournal(0, "journal does not start with a config frame")
		case frame.Tenant != nil:
			if frame.Tenant.At != seq {
				return cfg, frames, errJournal(seq, "tenant frame stamped at %d", frame.Tenant.At)
			}
		case frame.Batch != nil:
			if frame.Batch.First != seq+1 {
				return cfg, frames, errJournal(seq, "batch starts at %d, want %d (gap)", frame.Batch.First, seq+1)
			}
			if len(frame.Batch.Refs) != len(frame.Batch.Results) {
				return cfg, frames, errJournal(seq, "batch has %d refs but %d results",
					len(frame.Batch.Refs), len(frame.Batch.Results))
			}
			seq += uint64(len(frame.Batch.Refs))
		}
		frames = append(frames, frame)
	}
	if len(frames) == 0 {
		return cfg, frames, errJournal(0, "journal is empty")
	}
	return cfg, frames, nil
}

// ReadJournalFile is ReadJournal over a file.
func ReadJournalFile(path string) (JournalConfig, []Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return JournalConfig{}, nil, fmt.Errorf("server: open journal: %w", err)
	}
	defer f.Close()
	return ReadJournal(f)
}
