package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"reflect"
	"sort"
	"sync"

	"io"

	"molcache"
	"molcache/internal/addr"
	"molcache/internal/faults"
	"molcache/internal/molecular"
	"molcache/internal/obs"
	"molcache/internal/resize"
	"molcache/internal/snapshot"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// Config parameterizes a molcached server.
type Config struct {
	// Listen is the TCP address of the key/value protocol ("127.0.0.1:0"
	// picks an ephemeral port).
	Listen string
	// ObsListen mounts the internal/obs introspection server when
	// non-empty (/metrics, /regions, /tenants, /healthz, ...).
	ObsListen string

	// Molecular and Resize configure the simulator the server fronts.
	Molecular molecular.Config
	Resize    resize.Config
	// Faults optionally schedules a fault campaign (keyed to the access
	// count, so journal replay re-delivers it identically).
	Faults faults.Campaign

	// Shards runs the access pipeline epoch-parallel over cluster
	// shards (default 1; clamped to [1, clusters] by the engine).
	Shards int
	// BatchMax bounds how many queued requests fold into one simulator
	// batch (default 256).
	BatchMax int
	// AddrBits is each tenant's address-space width: keys hash into
	// [0, 2^AddrBits) within a per-ASID base (default 26, max 36).
	AddrBits uint
	// EventRing sizes the telemetry tracer ring (default 4096). The
	// replayer must use the same size for event-stream identity.
	EventRing int
	// PublishEvery refreshes the obs snapshot every N accesses
	// (default 8192; the sim loop also publishes at boot and shutdown).
	PublishEvery uint64
	// MaxTenants bounds TENANT registrations (default 1024).
	MaxTenants int

	// JournalPath enables the MOLC1-framed access journal (the
	// differential oracle's input). Empty disables journaling.
	JournalPath string
	// CheckpointPath enables checkpoint-on-shutdown and warm restore
	// on boot. Empty disables both.
	CheckpointPath string
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.BatchMax == 0 {
		c.BatchMax = 256
	}
	if c.AddrBits == 0 {
		c.AddrBits = 26
	}
	if c.EventRing == 0 {
		c.EventRing = 4096
	}
	if c.PublishEvery == 0 {
		c.PublishEvery = 8192
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 1024
	}
	return c
}

// asidShift places each tenant's address space at asid<<36, matching
// the workload-generator convention, so AddrBits may be at most 36.
const asidShift = 36

// blockAddr maps a tenant's key to its line-aligned block address:
// FNV-64a of the key masked to the tenant's address-space width, offset
// into the per-ASID base. Deterministic, so the journal needs only the
// resulting refs.
func blockAddr(asid uint16, key string, addrBits uint, lineSize uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	a := uint64(asid)<<asidShift | (h.Sum64() & addr.Mask(addrBits))
	return addr.LineAlign(a, lineSize)
}

// Tenant is one registered tenant: a name bound to an ASID-backed
// region with an SLO goal.
type Tenant struct {
	Name       string  `json:"name"`
	ASID       uint16  `json:"asid"`
	Goal       float64 `json:"goal"`
	LineFactor int     `json:"line_factor,omitempty"`
}

// request crosses from a connection goroutine to the sim goroutine;
// the response comes back on the buffered reply channel.
type request struct {
	req  Request
	resp chan response
}

type response struct {
	err   *ProtocolError
	asid  uint16
	hit   bool
	found bool
	value []byte
}

// Server is a running molcached instance.
type Server struct {
	cfg Config

	ln     net.Listener
	obsSrv *obs.Server

	// Sim-goroutine-owned state: the simulator, engine, journal, value
	// store and tenant table. Connection goroutines reach it only
	// through reqCh (the molvet-fixture-pinned contract).
	sim      *molcache.Simulator
	eng      *molcache.ShardedEngine
	journal  *Journal
	store    map[string]map[string][]byte
	tenants  map[string]*Tenant
	byASID   map[uint16]*Tenant
	nextASID uint16
	pubAt    uint64

	tr      *telemetry.Tracer
	reg     *telemetry.Registry // sim-plane: attached, replay-comparable
	servReg *telemetry.Registry // server-plane: request/journal counters
	tap     *obs.EventTap
	pub     *obs.Publisher

	reqCh  chan *request
	stopCh chan struct{}
	doneCh chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup
	closed bool

	warm       bool
	restoreErr error

	shutdownOnce sync.Once
	shutdownErr  error
}

// checkpoint section names for the server's own MOLC1 container: the
// tenant table + sequence state, the value store, and the embedded
// simulator checkpoint (itself a MOLC1 container).
const (
	sectionServer = "server"
	sectionStore  = "store"
	sectionSim    = "sim"
)

// serverState is the "server" checkpoint section.
type serverState struct {
	NextASID uint16   `json:"next_asid"`
	Seq      uint64   `json:"seq"`
	Tenants  []Tenant `json:"tenants"`
}

func (s *Server) journalConfig() JournalConfig {
	return JournalConfig{
		Molecular: s.cfg.Molecular,
		Resize:    s.cfg.Resize,
		Faults:    s.cfg.Faults,
		AddrBits:  s.cfg.AddrBits,
		EventRing: s.cfg.EventRing,
	}
}

// New builds and starts a server: warm-restores from CheckpointPath
// when a checkpoint exists (falling back to a cold start on corruption,
// counted on molcache_server_restore_failures), opens or creates the
// journal, mounts the obs plane, and begins accepting connections.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.AddrBits > asidShift {
		return nil, fmt.Errorf("server: AddrBits %d exceeds the %d-bit per-tenant space", cfg.AddrBits, asidShift)
	}
	s := &Server{
		cfg:      cfg,
		store:    make(map[string]map[string][]byte),
		tenants:  make(map[string]*Tenant),
		byASID:   make(map[uint16]*Tenant),
		nextASID: 1,
		tr:       telemetry.NewTracer(cfg.EventRing),
		reg:      telemetry.NewRegistry(),
		servReg:  telemetry.NewRegistry(),
		pub:      obs.NewPublisher(),
		reqCh:    make(chan *request, 1024),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	s.tap = obs.NewEventTap(nil)
	s.tr.SetSink(s.tap)

	if err := s.boot(); err != nil {
		return nil, err
	}

	if cfg.ObsListen != "" {
		srv, err := obs.Serve(cfg.ObsListen, obs.Options{
			Publisher: s.pub,
			Registry:  s.reg,
			Tap:       s.tap,
		})
		if err != nil {
			s.journal.Close()
			return nil, err
		}
		s.obsSrv = srv
	}

	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		s.obsSrv.Close()
		s.journal.Close()
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Listen, err)
	}
	s.ln = ln

	go s.simLoop()
	go s.acceptLoop()
	return s, nil
}

// boot builds the simulator (warm or cold) and the journal.
func (s *Server) boot() error {
	if s.cfg.CheckpointPath != "" {
		if _, err := os.Stat(s.cfg.CheckpointPath); err == nil {
			if err := s.restore(); err == nil {
				return nil
			} else {
				s.restoreErr = err
				s.servReg.Counter("molcache_server_restore_failures").Inc()
			}
		}
	}
	return s.coldStart()
}

func (s *Server) coldStart() error {
	sim, err := molcache.NewSimulator(s.cfg.Molecular, s.cfg.Resize)
	if err != nil {
		return err
	}
	sim.AttachTelemetry(s.tr, s.reg)
	if err := sim.InjectFaults(s.cfg.Faults); err != nil {
		return err
	}
	s.sim = sim
	s.eng = sim.Sharded(s.cfg.Shards)
	if s.cfg.JournalPath != "" {
		j, err := CreateJournal(s.cfg.JournalPath, s.journalConfig())
		if err != nil {
			return err
		}
		s.journal = j
	}
	return nil
}

// restore rebuilds the full server state from the checkpoint container
// and re-opens the journal for appending, verifying the journal's tail
// sequence matches the checkpointed one (a mismatched pair would break
// the replay oracle's gap-free guarantee).
func (s *Server) restore() error {
	data, err := os.ReadFile(s.cfg.CheckpointPath)
	if err != nil {
		return err
	}
	sections, err := snapshot.Decode(data)
	if err != nil {
		return err
	}
	var st serverState
	payload, err := snapshot.Find(sections, sectionServer)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, &st); err != nil {
		return &snapshot.Error{Section: sectionServer, Reason: err.Error()}
	}
	var store map[string]map[string][]byte
	if payload, err = snapshot.Find(sections, sectionStore); err != nil {
		return err
	}
	if err := json.Unmarshal(payload, &store); err != nil {
		return &snapshot.Error{Section: sectionStore, Reason: err.Error()}
	}
	simBytes, err := snapshot.Find(sections, sectionSim)
	if err != nil {
		return err
	}
	sim, err := molcache.RestoreSimulatorBytes(simBytes, s.tr, s.reg)
	if err != nil {
		return err
	}

	var j *Journal
	if s.cfg.JournalPath != "" {
		var jcfg JournalConfig
		j, jcfg, err = OpenJournal(s.cfg.JournalPath)
		if err != nil {
			return err
		}
		if j.Seq() != st.Seq {
			j.Close()
			return errJournal(j.Seq(), "journal tail does not match checkpoint seq %d", st.Seq)
		}
		if !reflect.DeepEqual(jcfg, s.journalConfig()) {
			j.Close()
			return errJournal(0, "journal genesis config differs from the server configuration")
		}
	}

	s.sim = sim
	s.eng = sim.Sharded(s.cfg.Shards)
	s.journal = j
	s.nextASID = st.NextASID
	if store == nil {
		store = make(map[string]map[string][]byte)
	}
	s.store = store
	for i := range st.Tenants {
		t := st.Tenants[i]
		if s.store[t.Name] == nil {
			s.store[t.Name] = make(map[string][]byte)
		}
		tc := t
		s.tenants[t.Name] = &tc
		s.byASID[t.ASID] = &tc
	}
	s.warm = true
	return nil
}

// writeCheckpoint packs tenant table + store + simulator into one
// crash-safe MOLC1 container. Runs only after the sim loop has drained.
func (s *Server) writeCheckpoint() error {
	simBytes, err := s.sim.EncodeCheckpoint()
	if err != nil {
		return err
	}
	tenants := make([]Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, *t)
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].ASID < tenants[j].ASID })
	st := serverState{NextASID: s.nextASID, Seq: s.journal.Seq(), Tenants: tenants}
	stBytes, err := json.Marshal(st)
	if err != nil {
		return err
	}
	storeBytes, err := json.Marshal(s.store)
	if err != nil {
		return err
	}
	data, err := snapshot.Encode([]snapshot.Section{
		{Name: sectionServer, Payload: stBytes},
		{Name: sectionStore, Payload: storeBytes},
		{Name: sectionSim, Payload: simBytes},
	})
	if err != nil {
		return err
	}
	return snapshot.WriteRaw(s.cfg.CheckpointPath, data)
}

// Addr returns the bound key/value protocol address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ObsURL returns the introspection server's base URL ("" when not
// mounted).
func (s *Server) ObsURL() string {
	if s.obsSrv == nil {
		return ""
	}
	return s.obsSrv.URL()
}

// WarmStarted reports whether the server restored from a checkpoint.
func (s *Server) WarmStarted() bool { return s.warm }

// RestoreErr returns the absorbed restore failure behind a cold-start
// fallback (nil on a clean cold or warm boot).
func (s *Server) RestoreErr() error { return s.restoreErr }

// Sim exposes the simulator for oracle comparison. Callers must only
// touch it after Shutdown has returned (the sim goroutine owns it
// while the server runs).
func (s *Server) Sim() *molcache.Simulator { return s.sim }

// Tracer returns the sim-plane event tracer (same post-Shutdown rule).
func (s *Server) Tracer() *telemetry.Tracer { return s.tr }

// Registry returns the sim-plane metrics registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// JournalSeq returns the last journaled access sequence number (only
// stable after Shutdown).
func (s *Server) JournalSeq() uint64 { return s.journal.Seq() }

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.servReg.Counter("molcache_server_connections_total").Inc()
		go s.serveConn(c)
	}
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func writeLine(bw *bufio.Writer, line string) error {
	if _, err := bw.WriteString(line); err != nil {
		return err
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func writeErr(bw *bufio.Writer, pe *ProtocolError) error {
	return writeLine(bw, "ERR "+pe.Code+" "+pe.Detail)
}

func hitToken(hit bool) string {
	if hit {
		return "HIT"
	}
	return "MISS"
}

func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.removeConn(c)
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		req, err := ReadRequest(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			var pe *ProtocolError
			if errors.As(err, &pe) {
				s.servReg.Counter("molcache_server_protocol_errors_total").Inc()
				writeErr(bw, pe)
				if pe.Fatal() {
					return
				}
				continue
			}
			return
		}
		s.servReg.Counter("molcache_server_requests_total{verb=" + string(req.Verb) + "}").Inc()
		switch req.Verb {
		case VerbPing:
			if writeLine(bw, "PONG") != nil {
				return
			}
			continue
		case VerbQuit:
			writeLine(bw, "BYE")
			return
		}
		r := &request{req: req, resp: make(chan response, 1)}
		select {
		case s.reqCh <- r:
		case <-s.stopCh:
			writeErr(bw, errProto(ErrShutdown, "server is shutting down"))
			return
		}
		resp := <-r.resp
		if resp.err != nil {
			if writeErr(bw, resp.err) != nil {
				return
			}
			continue
		}
		var werr error
		switch req.Verb {
		case VerbTenant:
			werr = writeLine(bw, fmt.Sprintf("OK %d", resp.asid))
		case VerbGet:
			if !resp.found {
				werr = writeLine(bw, "NOTFOUND")
				break
			}
			if _, werr = fmt.Fprintf(bw, "VALUE %s %d\r\n", hitToken(resp.hit), len(resp.value)); werr != nil {
				break
			}
			if _, werr = bw.Write(resp.value); werr != nil {
				break
			}
			if _, werr = bw.WriteString("\r\n"); werr != nil {
				break
			}
			werr = bw.Flush()
		case VerbSet:
			werr = writeLine(bw, "STORED "+hitToken(resp.hit))
		case VerbDel:
			if !resp.found {
				werr = writeLine(bw, "NOTFOUND")
				break
			}
			werr = writeLine(bw, "DELETED "+hitToken(resp.hit))
		}
		if werr != nil {
			return
		}
	}
}

// simLoop is the single goroutine that owns the simulator. It drains
// queued requests into bounded batches, applies store mutations and
// admits accesses in arrival order, runs one engine batch per admitted
// run, journals it, then replies.
func (s *Server) simLoop() {
	defer close(s.doneCh)
	s.publish()
	batch := make([]*request, 0, s.cfg.BatchMax)
	for {
		r, ok := <-s.reqCh
		if !ok {
			break
		}
		batch = append(batch[:0], r)
		draining := true
		for draining && len(batch) < s.cfg.BatchMax {
			select {
			case r2, ok2 := <-s.reqCh:
				if !ok2 {
					draining = false
					break
				}
				batch = append(batch, r2)
			default:
				draining = false
			}
		}
		s.process(batch)
		if at := s.sim.Cache.Addresses(); at-s.pubAt >= s.cfg.PublishEvery {
			s.publish()
		}
	}
	s.publish()
}

// process services one batch of requests in order. TENANT admin actions
// are run boundaries: the accesses before one are admitted to the
// engine (and journaled) before the tenant table changes.
func (s *Server) process(batch []*request) {
	var refs []trace.Ref
	var pend []*request
	var resps []response
	lineSize := s.sim.Cache.Config().LineSize

	flush := func() {
		if len(refs) == 0 {
			return
		}
		results := s.eng.AccessBatch(refs)
		if err := s.journal.Batch(refs, results); err != nil {
			// A dead journal invalidates the oracle, not the service:
			// count it and keep serving.
			s.servReg.Counter("molcache_server_journal_errors_total").Inc()
		}
		s.servReg.Counter("molcache_server_accesses_total").Add(uint64(len(refs)))
		s.servReg.Counter("molcache_server_batches_total").Inc()
		for i, pr := range pend {
			resp := resps[i]
			resp.hit = results[i].Hit
			pr.resp <- resp
		}
		refs = refs[:0]
		pend = pend[:0]
		resps = resps[:0]
	}

	for _, r := range batch {
		req := r.req
		if req.Verb == VerbTenant {
			flush()
			r.resp <- s.handleTenant(req)
			// Tenant admin ops are rare and observable: republish so
			// /tenants reflects the change immediately rather than at
			// the next PublishEvery boundary.
			s.publish()
			continue
		}
		t, ok := s.tenants[req.Tenant]
		if !ok {
			r.resp <- response{err: errProto(ErrUnknownTenant, "tenant %q is not registered", req.Tenant)}
			continue
		}
		keys := s.store[req.Tenant]
		var resp response
		switch req.Verb {
		case VerbGet:
			v, present := keys[req.Key]
			if !present {
				s.servReg.Counter("molcache_server_notfound_total").Inc()
				r.resp <- response{}
				continue
			}
			resp = response{found: true, value: v}
		case VerbSet:
			keys[req.Key] = req.Value
			resp = response{found: true}
		case VerbDel:
			if _, present := keys[req.Key]; !present {
				s.servReg.Counter("molcache_server_notfound_total").Inc()
				r.resp <- response{}
				continue
			}
			delete(keys, req.Key)
			resp = response{found: true}
		}
		refs = append(refs, trace.Ref{
			Addr: blockAddr(t.ASID, req.Key, s.cfg.AddrBits, lineSize),
			ASID: t.ASID,
			Kind: req.Verb.RefKind(),
		})
		pend = append(pend, r)
		resps = append(resps, resp)
	}
	flush()
}

// handleTenant registers a tenant (creating its region) or updates an
// existing tenant's goal. Runs on the sim goroutine.
func (s *Server) handleTenant(req Request) response {
	if t, ok := s.tenants[req.Tenant]; ok {
		if req.LineFactor != 0 && req.LineFactor != t.LineFactor {
			return response{err: errProto(ErrTenantConflict,
				"tenant %q has line factor %d, fixed for the region's lifetime", req.Tenant, t.LineFactor)}
		}
		if req.Goal != t.Goal {
			if err := s.sim.Controller.SetGoal(t.ASID, req.Goal); err != nil {
				return response{err: errProto(ErrBadGoal, "%v", err)}
			}
			t.Goal = req.Goal
			if err := s.journal.Tenant(TenantRecord{
				ASID: t.ASID, Name: t.Name, Goal: t.Goal, Update: true,
			}); err != nil {
				s.servReg.Counter("molcache_server_journal_errors_total").Inc()
			}
		}
		return response{asid: t.ASID}
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return response{err: errProto(ErrTenantLimit, "tenant limit %d reached", s.cfg.MaxTenants)}
	}
	asid := s.nextASID
	_, err := s.sim.Cache.CreateRegion(asid, molecular.RegionOptions{
		HomeCluster: -1, HomeTile: -1, LineFactor: req.LineFactor,
	})
	if err != nil {
		return response{err: errProto(ErrRegionAlloc, "%v", err)}
	}
	if err := s.sim.Controller.SetGoal(asid, req.Goal); err != nil {
		return response{err: errProto(ErrBadGoal, "%v", err)}
	}
	s.nextASID++
	t := &Tenant{Name: req.Tenant, ASID: asid, Goal: req.Goal, LineFactor: req.LineFactor}
	s.tenants[t.Name] = t
	s.byASID[asid] = t
	s.store[t.Name] = make(map[string][]byte)
	if err := s.journal.Tenant(TenantRecord{
		ASID: asid, Name: t.Name, Goal: t.Goal, LineFactor: t.LineFactor,
	}); err != nil {
		s.servReg.Counter("molcache_server_journal_errors_total").Inc()
	}
	return response{asid: asid}
}

// publish collects an immutable obs.State (sim-goroutine contract),
// extends it with the tenant view and the server-plane metrics, and
// installs it for the HTTP handlers.
func (s *Server) publish() {
	st := obs.Collect(s.sim.Cache, s.sim.Controller, s.reg)
	st.Tenants = s.collectTenants(st)
	st.Metrics = mergeSnapshots(st.Metrics, s.servReg.AtomicSnapshot())
	s.servReg.Gauge("molcache_server_tenants").Set(float64(len(s.tenants)))
	s.pubAt = st.At
	s.pub.Publish(st)
}

func (s *Server) collectTenants(st *obs.State) []obs.TenantInfo {
	byASID := make(map[uint16]*obs.RegionInfo, len(st.Regions))
	for i := range st.Regions {
		byASID[st.Regions[i].ASID] = &st.Regions[i]
	}
	infos := make([]obs.TenantInfo, 0, len(s.tenants))
	for _, t := range s.tenants {
		ti := obs.TenantInfo{
			Name:       t.Name,
			ASID:       t.ASID,
			Goal:       t.Goal,
			LineFactor: t.LineFactor,
			Keys:       len(s.store[t.Name]),
		}
		if ri := byASID[t.ASID]; ri != nil {
			ti.Molecules = ri.Molecules
			ti.Accesses = ri.Accesses
			ti.MissRate = ri.MissRate
			ti.WindowMissRate = ri.WindowMissRate
			ti.SLOMet = ri.WindowMissRate <= t.Goal
		}
		infos = append(infos, ti)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ASID < infos[j].ASID })
	return infos
}

// mergeSnapshots overlays the server-plane snapshot onto the sim-plane
// one. The namespaces are disjoint (molcache_server_* vs the rest), so
// no key can collide.
func mergeSnapshots(sim, serv telemetry.Snapshot) telemetry.Snapshot {
	for k, v := range serv.Counters {
		sim.Counters[k] = v
	}
	for k, v := range serv.Gauges {
		sim.Gauges[k] = v
	}
	for k, v := range serv.Histograms {
		sim.Histograms[k] = v
	}
	return sim
}

// Shutdown gracefully stops the server: no new connections, existing
// connections closed, queued requests drained through the simulator,
// the journal synced and closed, a final obs snapshot published, and —
// when configured — a checkpoint written. The obs server stays up for
// post-mortem scraping until Close. Safe to call more than once.
func (s *Server) Shutdown() error {
	s.shutdownOnce.Do(func() {
		close(s.stopCh)
		s.ln.Close()
		s.mu.Lock()
		s.closed = true
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.connWG.Wait()
		close(s.reqCh)
		<-s.doneCh
		if err := s.journal.Close(); err != nil {
			s.shutdownErr = err
		}
		if s.cfg.CheckpointPath != "" {
			if err := s.writeCheckpoint(); err != nil && s.shutdownErr == nil {
				s.shutdownErr = err
			}
		}
	})
	return s.shutdownErr
}

// Close shuts the server down and stops the obs plane.
func (s *Server) Close() error {
	err := s.Shutdown()
	if cerr := s.obsSrv.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
