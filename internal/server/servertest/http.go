package servertest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

func httpOK(url string) bool {
	client := &http.Client{Timeout: time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// GetJSON fetches url and decodes the JSON body into v.
func GetJSON(url string, v any) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("servertest: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// GetBody fetches url and returns the raw body.
func GetBody(url string) ([]byte, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("servertest: GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
