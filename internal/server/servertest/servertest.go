// Package servertest boots molcached servers on ephemeral ports for
// integration tests: a fixture owning the journal/checkpoint paths, a
// deterministic workload client, and a Restart helper that exercises
// the SIGTERM-checkpoint → warm-restore path in-process.
package servertest

import (
	"testing"
	"time"

	"molcache/internal/addr"
	"molcache/internal/faults"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/server"
)

// Options tunes the booted server. Zero values pick small deterministic
// defaults (1 MB 2x4 Randy cache, 400-access resize period, journal
// and checkpoint enabled under a test temp dir).
type Options struct {
	Molecular    molecular.Config
	Resize       resize.Config
	Faults       faults.Campaign
	Shards       int
	BatchMax     int
	AddrBits     uint
	EventRing    int
	PublishEvery uint64
	// NoJournal / NoCheckpoint disable the respective paths.
	NoJournal    bool
	NoCheckpoint bool
	// Obs mounts the introspection server.
	Obs bool
}

func (o Options) withDefaults() Options {
	if o.Molecular.TotalSize == 0 {
		o.Molecular = molecular.Config{
			TotalSize:        1 * addr.MB,
			Clusters:         2,
			TilesPerCluster:  4,
			Policy:           molecular.RandyReplacement,
			InitialMolecules: 8,
			Seed:             2006,
		}
	}
	if o.Resize.Period == 0 {
		o.Resize = resize.Config{Period: 400, MinPeriod: 200, MaxPeriod: 4000, DefaultGoal: 0.2}
	}
	if o.PublishEvery == 0 {
		o.PublishEvery = 500
	}
	return o
}

// Fixture is a booted molcached instance plus the paths its durable
// state lives at.
type Fixture struct {
	T              *testing.T
	Server         *server.Server
	JournalPath    string
	CheckpointPath string

	opts Options
}

// Boot starts a server with opts and registers a cleanup that closes
// it. The journal and checkpoint live in t.TempDir().
func Boot(t *testing.T, opts Options) *Fixture {
	t.Helper()
	opts = opts.withDefaults()
	dir := t.TempDir()
	f := &Fixture{T: t, opts: opts}
	if !opts.NoJournal {
		f.JournalPath = dir + "/access.molc"
	}
	if !opts.NoCheckpoint {
		f.CheckpointPath = dir + "/molcached.ckpt"
	}
	f.Server = f.start()
	t.Cleanup(func() { f.Server.Close() })
	return f
}

func (f *Fixture) config() server.Config {
	cfg := server.Config{
		Listen:         "127.0.0.1:0",
		Molecular:      f.opts.Molecular,
		Resize:         f.opts.Resize,
		Faults:         f.opts.Faults,
		Shards:         f.opts.Shards,
		BatchMax:       f.opts.BatchMax,
		AddrBits:       f.opts.AddrBits,
		EventRing:      f.opts.EventRing,
		PublishEvery:   f.opts.PublishEvery,
		JournalPath:    f.JournalPath,
		CheckpointPath: f.CheckpointPath,
	}
	if f.opts.Obs {
		cfg.ObsListen = "127.0.0.1:0"
	}
	return cfg
}

func (f *Fixture) start() *server.Server {
	f.T.Helper()
	srv, err := server.New(f.config())
	if err != nil {
		f.T.Fatalf("servertest: boot: %v", err)
	}
	return srv
}

// Client dials the fixture's server and registers a cleanup.
func (f *Fixture) Client() *server.Client {
	f.T.Helper()
	c, err := server.Dial(f.Server.Addr())
	if err != nil {
		f.T.Fatalf("servertest: dial: %v", err)
	}
	f.T.Cleanup(func() { c.Close() })
	return c
}

// Restart gracefully shuts the running server down (writing its
// checkpoint) and boots a fresh one from the same paths — the SIGTERM +
// warm-restore cycle, in-process. It fails the test if the new server
// did not warm-restore.
func (f *Fixture) Restart() {
	f.T.Helper()
	if f.CheckpointPath == "" {
		f.T.Fatal("servertest: Restart needs a checkpoint path")
	}
	if err := f.Server.Close(); err != nil {
		f.T.Fatalf("servertest: shutdown: %v", err)
	}
	f.Server = f.start()
	if !f.Server.WarmStarted() {
		f.T.Fatalf("servertest: expected warm restore, got cold start (restore err: %v)", f.Server.RestoreErr())
	}
	f.T.Cleanup(func() { f.Server.Close() })
}

// WaitHealthy polls the obs /healthz endpoint until it answers 200 or
// the deadline passes (the obs server binds asynchronously fast, but
// smoke callers want a hard guarantee).
func (f *Fixture) WaitHealthy(timeout time.Duration) {
	f.T.Helper()
	u := f.Server.ObsURL()
	if u == "" {
		f.T.Fatal("servertest: WaitHealthy needs Options.Obs")
	}
	deadline := time.Now().Add(timeout)
	for {
		if httpOK(u + "/healthz") {
			return
		}
		if time.Now().After(deadline) {
			f.T.Fatalf("servertest: %s/healthz not healthy within %v", u, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
