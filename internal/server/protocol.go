// Package server is molcached's serving layer: a TCP key/value cache
// daemon where each tenant is an ASID with its own molecular cache
// region, miss-rate SLO goal and line factor. The wire protocol is a
// memcached-style text protocol; every admitted access is decoded to a
// block address, batched through the sharded engine, and journaled to
// a MOLC1-framed access log that an offline Simulator can replay
// byte-identically (the served-traffic differential oracle — see
// replay.go and DESIGN.md §14).
//
// Concurrency contract (pinned by the molvet concurrency fixture): one
// goroutine per client connection decodes requests and writes replies;
// a single sim goroutine owns the cache, controller, value store and
// journal. Connection goroutines never touch simulation state — every
// request crosses to the sim goroutine through the batch channel and
// comes back on a per-request reply channel.
package server

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"molcache/internal/trace"
)

// Protocol limits. A line (verb + arguments + CRLF) is bounded so a
// malicious client cannot buffer unbounded garbage; keys, values and
// tenant names have their own caps.
const (
	MaxLineLen   = 4096
	MaxKeyLen    = 250
	MaxValueLen  = 1 << 20
	MaxTenantLen = 64
)

// Verb is a protocol command.
type Verb string

// The protocol verbs.
const (
	VerbTenant Verb = "TENANT"
	VerbGet    Verb = "GET"
	VerbSet    Verb = "SET"
	VerbDel    Verb = "DEL"
	VerbPing   Verb = "PING"
	VerbQuit   Verb = "QUIT"
)

// ProtocolError codes. Decode-level codes come out of ReadRequest;
// server-level codes come back on the wire in ERR replies.
const (
	ErrBadVerb     = "bad-verb"
	ErrBadArgs     = "bad-args"
	ErrBadTenant   = "bad-tenant"
	ErrBadKey      = "bad-key"
	ErrBadValue    = "bad-value"
	ErrBadGoal     = "bad-goal"
	ErrLineTooLong = "line-too-long"
	ErrTruncated   = "truncated"

	ErrUnknownTenant  = "unknown-tenant"
	ErrTenantConflict = "tenant-conflict"
	ErrTenantLimit    = "tenant-limit"
	ErrRegionAlloc    = "region-alloc"
	ErrShutdown       = "shutting-down"
)

// ProtocolError is the typed error for every malformed request and
// every ERR reply: Code is a stable machine-readable slug, Detail the
// human-readable specifics.
type ProtocolError struct {
	Code   string
	Detail string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("server: %s: %s", e.Code, e.Detail)
}

// Fatal reports whether the connection cannot be resynchronized after
// this error (the reader's position in the stream is unknown), so the
// server replies ERR and closes.
func (e *ProtocolError) Fatal() bool {
	switch e.Code {
	case ErrLineTooLong, ErrTruncated:
		return true
	}
	return false
}

func errProto(code, format string, args ...any) *ProtocolError {
	return &ProtocolError{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// Request is one decoded protocol command.
//
//	TENANT <name> <goal> [<linefactor>]
//	GET <tenant> <key>
//	SET <tenant> <key> <nbytes>\r\n<value>\r\n
//	DEL <tenant> <key>
//	PING
//	QUIT
type Request struct {
	Verb       Verb
	Tenant     string
	Key        string
	Value      []byte
	Goal       float64
	LineFactor int
}

// readLine reads one \n-terminated line of at most MaxLineLen bytes
// (terminator excluded), tolerating an optional \r before the \n.
// A clean end of input is io.EOF; an unterminated trailing line is a
// typed truncation error.
func readLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		line = append(line, frag...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(line) > MaxLineLen+1 {
				return nil, errProto(ErrLineTooLong, "line exceeds %d bytes", MaxLineLen)
			}
			continue
		}
		if err == io.EOF {
			if len(line) == 0 {
				return nil, io.EOF
			}
			return nil, errProto(ErrTruncated, "unterminated line at end of input")
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	if len(line) > MaxLineLen {
		return nil, errProto(ErrLineTooLong, "line exceeds %d bytes", MaxLineLen)
	}
	return line, nil
}

func validTenantName(s string) bool {
	if len(s) == 0 || len(s) > MaxTenantLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func validKey(s string) bool {
	if len(s) == 0 || len(s) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}

func parseTenantKey(req *Request, args []string) *ProtocolError {
	if len(args) != 2 {
		return errProto(ErrBadArgs, "%s wants <tenant> <key>, got %d arguments", req.Verb, len(args))
	}
	if !validTenantName(args[0]) {
		return errProto(ErrBadTenant, "tenant name %q must be [A-Za-z0-9_-]{1,%d}", args[0], MaxTenantLen)
	}
	if !validKey(args[1]) {
		return errProto(ErrBadKey, "key %q must be 1-%d printable non-space bytes", args[1], MaxKeyLen)
	}
	req.Tenant, req.Key = args[0], args[1]
	return nil
}

// ReadRequest decodes the next request from br. Malformed input yields
// a typed *ProtocolError (never a panic); a clean end of input yields
// io.EOF. This is the surface FuzzServerDecode exercises.
func ReadRequest(br *bufio.Reader) (Request, error) {
	line, err := readLine(br)
	if err != nil {
		return Request{}, err
	}
	fields := strings.Fields(string(line))
	if len(fields) == 0 {
		return Request{}, errProto(ErrBadVerb, "empty command line")
	}
	req := Request{Verb: Verb(fields[0])}
	args := fields[1:]
	switch req.Verb {
	case VerbPing, VerbQuit:
		if len(args) != 0 {
			return Request{}, errProto(ErrBadArgs, "%s takes no arguments", req.Verb)
		}
		return req, nil

	case VerbTenant:
		if len(args) != 2 && len(args) != 3 {
			return Request{}, errProto(ErrBadArgs, "TENANT wants <name> <goal> [<linefactor>], got %d arguments", len(args))
		}
		if !validTenantName(args[0]) {
			return Request{}, errProto(ErrBadTenant, "tenant name %q must be [A-Za-z0-9_-]{1,%d}", args[0], MaxTenantLen)
		}
		req.Tenant = args[0]
		goal, err := strconv.ParseFloat(args[1], 64)
		if err != nil || goal <= 0 || goal >= 1 {
			return Request{}, errProto(ErrBadGoal, "goal %q must be a float in (0,1)", args[1])
		}
		req.Goal = goal
		if len(args) == 3 {
			lf, err := strconv.Atoi(args[2])
			if err != nil || lf < 1 || lf > 1024 {
				return Request{}, errProto(ErrBadArgs, "line factor %q must be an integer in [1,1024]", args[2])
			}
			req.LineFactor = lf
		}
		return req, nil

	case VerbGet, VerbDel:
		if pe := parseTenantKey(&req, args); pe != nil {
			return Request{}, pe
		}
		return req, nil

	case VerbSet:
		if len(args) != 3 {
			return Request{}, errProto(ErrBadArgs, "SET wants <tenant> <key> <nbytes>, got %d arguments", len(args))
		}
		if pe := parseTenantKey(&req, args[:2]); pe != nil {
			return Request{}, pe
		}
		n, err := strconv.Atoi(args[2])
		if err != nil || n < 0 || n > MaxValueLen {
			return Request{}, errProto(ErrBadValue, "value length %q must be an integer in [0,%d]", args[2], MaxValueLen)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(br, buf); err != nil {
			return Request{}, errProto(ErrTruncated, "value body: want %d bytes + CRLF: %v", n, err)
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Request{}, errProto(ErrTruncated, "value body must end in CRLF")
		}
		req.Value = buf[:n:n]
		return req, nil
	}
	return Request{}, errProto(ErrBadVerb, "unknown verb %q", fields[0])
}

// RefKind maps a verb to the access kind it admits to the simulator:
// GET is a read; SET and DEL mutate the line and are writes.
func (v Verb) RefKind() trace.Kind {
	if v == VerbGet {
		return trace.Read
	}
	return trace.Write
}
