// Server behavior tests: protocol semantics end to end over real TCP
// connections, the tenant admin surface, obs integration, and the
// race-serve harness (TestRaceServe, run under -race by `make
// race-serve`) proving N concurrent clients leave a gap-free journal
// whose access count matches the served /metrics totals.
package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"molcache/internal/server"
	"molcache/internal/server/servertest"
	"molcache/internal/telemetry"
)

const servertestTimeout = 5 * time.Second

func TestServeBasics(t *testing.T) {
	f := servertest.Boot(t, servertest.Options{})
	c := f.Client()

	if err := c.Ping(); err != nil {
		t.Fatalf("PING: %v", err)
	}

	// Data verbs before TENANT registration must be refused.
	var pe *server.ProtocolError
	if _, _, _, err := c.Get("web", "k"); !errors.As(err, &pe) || pe.Code != server.ErrUnknownTenant {
		t.Fatalf("GET before TENANT: got %v, want %s", err, server.ErrUnknownTenant)
	}

	asid, err := c.Tenant("web", 0.1, 2)
	if err != nil {
		t.Fatalf("TENANT: %v", err)
	}
	if asid != 1 {
		t.Fatalf("first tenant ASID = %d, want 1", asid)
	}

	// SET → GET round-trips the value; GET of an absent key is NOTFOUND.
	if _, err := c.Set("web", "user:17", []byte("hello")); err != nil {
		t.Fatalf("SET: %v", err)
	}
	v, _, found, err := c.Get("web", "user:17")
	if err != nil || !found || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("GET: value=%q found=%v err=%v", v, found, err)
	}
	if _, _, found, err := c.Get("web", "missing"); err != nil || found {
		t.Fatalf("GET absent: found=%v err=%v", found, err)
	}

	// An immediate re-GET of a just-SET key must hit the cache model.
	if _, hit, _, err := c.Get("web", "user:17"); err != nil || !hit {
		t.Fatalf("GET after SET: hit=%v err=%v (a just-written line must be resident)", hit, err)
	}

	// DEL removes the key; a second DEL is NOTFOUND.
	if found, err := c.Del("web", "user:17"); err != nil || !found {
		t.Fatalf("DEL: found=%v err=%v", found, err)
	}
	if found, err := c.Del("web", "user:17"); err != nil || found {
		t.Fatalf("DEL absent: found=%v err=%v", found, err)
	}

	// Empty and binary values survive the length-prefixed framing.
	if _, err := c.Set("web", "empty", nil); err != nil {
		t.Fatalf("SET empty: %v", err)
	}
	if v, _, found, err := c.Get("web", "empty"); err != nil || !found || len(v) != 0 {
		t.Fatalf("GET empty: value=%q found=%v err=%v", v, found, err)
	}
	raw := []byte("a\r\nb\x00c")
	if _, err := c.Set("web", "raw", raw); err != nil {
		t.Fatalf("SET binary: %v", err)
	}
	if v, _, _, err := c.Get("web", "raw"); err != nil || !bytes.Equal(v, raw) {
		t.Fatalf("GET binary: value=%q err=%v", v, err)
	}
}

func TestTenantAdmin(t *testing.T) {
	f := servertest.Boot(t, servertest.Options{})
	c := f.Client()

	asid, err := c.Tenant("web", 0.1, 2)
	if err != nil {
		t.Fatalf("TENANT: %v", err)
	}

	// Re-registering with the same line factor is idempotent (same ASID);
	// a different line factor conflicts (fixed for the region's life).
	again, err := c.Tenant("web", 0.1, 2)
	if err != nil || again != asid {
		t.Fatalf("re-TENANT: asid=%d err=%v, want %d", again, err, asid)
	}
	var pe *server.ProtocolError
	if _, err := c.Tenant("web", 0.1, 8); !errors.As(err, &pe) || pe.Code != server.ErrTenantConflict {
		t.Fatalf("TENANT line-factor conflict: got %v, want %s", err, server.ErrTenantConflict)
	}

	// A goal update keeps the ASID and lands in the controller.
	if again, err = c.Tenant("web", 0.25, 0); err != nil || again != asid {
		t.Fatalf("TENANT goal update: asid=%d err=%v", again, err)
	}

	// Distinct tenants get distinct ASIDs and isolated keyspaces.
	asid2, err := c.Tenant("batch", 0.4, 0)
	if err != nil {
		t.Fatalf("TENANT batch: %v", err)
	}
	if asid2 == asid {
		t.Fatalf("tenant ASIDs collide: %d", asid2)
	}
	if _, err := c.Set("web", "k", []byte("web-val")); err != nil {
		t.Fatal(err)
	}
	if _, _, found, err := c.Get("batch", "k"); err != nil || found {
		t.Fatalf("cross-tenant GET leaked: found=%v err=%v", found, err)
	}

	if err := f.Server.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := f.Server.Sim().Controller.Goal(asid); got != 0.25 {
		t.Errorf("controller goal after update = %v, want 0.25", got)
	}
}

func TestShutdownRefusesNewWork(t *testing.T) {
	f := servertest.Boot(t, servertest.Options{NoCheckpoint: true})
	c := f.Client()
	if _, err := c.Tenant("web", 0.1, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Server.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The old connection is force-closed and new dials are refused.
	if err := c.Ping(); err == nil {
		t.Error("PING succeeded after shutdown")
	}
	if _, err := server.Dial(f.Server.Addr()); err == nil {
		t.Error("Dial succeeded after shutdown")
	}
	// Shutdown is idempotent.
	if err := f.Server.Shutdown(); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestTenantsEndpoint(t *testing.T) {
	f := servertest.Boot(t, servertest.Options{Obs: true})
	f.WaitHealthy(servertestTimeout)
	c := f.Client()
	if _, err := c.Tenant("web", 0.1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tenant("batch", 0.4, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drive("web", 7, 200, 32); err != nil {
		t.Fatal(err)
	}
	if err := f.Server.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// The final publish ran during shutdown; the obs plane stays up for
	// post-mortem scraping until Close.
	var page struct {
		At      uint64 `json:"at"`
		Tenants []struct {
			Name     string  `json:"name"`
			ASID     uint16  `json:"asid"`
			Goal     float64 `json:"goal"`
			Keys     int     `json:"keys"`
			Accesses uint64  `json:"accesses"`
		} `json:"tenants"`
	}
	if err := servertest.GetJSON(f.Server.ObsURL()+"/tenants", &page); err != nil {
		t.Fatalf("GET /tenants: %v", err)
	}
	if len(page.Tenants) != 2 {
		t.Fatalf("got %d tenants, want 2: %+v", len(page.Tenants), page.Tenants)
	}
	web := page.Tenants[0]
	if web.Name != "web" || web.ASID != 1 || web.Goal != 0.1 {
		t.Errorf("tenant[0] = %+v, want web/1/0.1", web)
	}
	if web.Accesses == 0 || web.Keys == 0 {
		t.Errorf("driven tenant shows no activity: %+v", web)
	}
	if page.Tenants[1].Name != "batch" {
		t.Errorf("tenant[1] = %+v, want batch", page.Tenants[1])
	}
	if page.At == 0 {
		t.Error("published snapshot has zero access clock after traffic")
	}
}

// TestRaceServe is the concurrency lock, run under -race by `make
// race-serve`: N concurrent clients drive distinct tenants, and after a
// graceful shutdown the journal must be gap-free with exactly one
// admitted access per cache-model operation, the /metrics totals must
// agree with both the journal and the client-side counts, and a journal
// replay must land on the live simulator's exact ledger.
func TestRaceServe(t *testing.T) {
	const (
		clients = 8
		ops     = 400
		keys    = 64
	)
	f := servertest.Boot(t, servertest.Options{Obs: true, Shards: 2})
	stats := make([]server.DriveStats, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		c := f.Client()
		tenant := fmt.Sprintf("tenant-%d", i)
		if _, err := c.Tenant(tenant, 0.2, 0); err != nil {
			t.Fatalf("TENANT %s: %v", tenant, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i], errs[i] = c.Drive(tenant, uint64(i+1), ops, keys)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	obsURL := f.Server.ObsURL()
	if err := f.Server.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Client-side accounting: every SET, every found GET and every found
	// DEL is one admitted access; NOTFOUND operations are not admitted.
	var wantAccesses, wantRequests uint64
	for _, st := range stats {
		wantAccesses += uint64(st.Sets + st.Gets + st.Dels - st.NotFound)
		wantRequests += uint64(st.Sets + st.Gets + st.Dels)
	}

	// The journal must be gap-free and cover exactly the admitted count.
	_, frames, err := server.ReadJournalFile(f.JournalPath)
	if err != nil {
		t.Fatalf("journal not clean after concurrent serve: %v", err)
	}
	var journaled uint64
	for _, fr := range frames {
		if fr.Batch != nil {
			journaled += uint64(len(fr.Batch.Refs))
		}
	}
	if journaled != wantAccesses {
		t.Errorf("journal covers %d accesses, clients admitted %d", journaled, wantAccesses)
	}

	// The served /metrics page (post-shutdown final publish) must agree.
	resp, err := http.Get(obsURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	snap, err := telemetry.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	if got := uint64(snap.Counters["molcache_server_accesses_total"]); got != wantAccesses {
		t.Errorf("molcache_server_accesses_total = %d, want %d", got, wantAccesses)
	}
	var served uint64
	for _, verb := range []string{"GET", "SET", "DEL"} {
		served += uint64(snap.Counters["molcache_server_requests_total{verb="+verb+"}"])
	}
	if served != wantRequests {
		t.Errorf("request totals = %d, clients sent %d", served, wantRequests)
	}
	if got := uint64(snap.Counters["molcache_server_requests_total{verb=TENANT}"]); got != clients {
		t.Errorf("TENANT requests = %d, want %d", got, clients)
	}
	if got := snap.Gauges["molcache_server_tenants"]; got != clients {
		t.Errorf("molcache_server_tenants = %v, want %d", got, clients)
	}

	// And the differential oracle must hold over the concurrent journal.
	rep, err := server.ReplayJournalFile(f.JournalPath, server.ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Accesses != journaled || rep.Tenants != clients {
		t.Errorf("replay saw %d accesses / %d tenants, want %d / %d",
			rep.Accesses, rep.Tenants, journaled, clients)
	}
	live := f.Server.Sim()
	if !reflect.DeepEqual(*live.Cache.Ledger(), *rep.Sim.Cache.Ledger()) {
		t.Errorf("ledger diverged: live %+v, replay %+v", *live.Cache.Ledger(), *rep.Sim.Cache.Ledger())
	}
}
