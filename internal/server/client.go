package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"

	"molcache/internal/rng"
)

// Client is a plain molcached protocol client (one connection, one
// outstanding request at a time). cmd/molcached's -demo mode,
// servertest and the race harness all drive the server through it.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a molcached server.
func Dial(address string) (*Client, error) {
	conn, err := net.Dial("tcp", address)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Close sends QUIT best-effort and closes the connection.
func (c *Client) Close() error {
	fmt.Fprintf(c.bw, "QUIT\r\n")
	c.bw.Flush()
	return c.conn.Close()
}

func (c *Client) roundTrip(line string) ([]string, error) {
	if _, err := c.bw.WriteString(line); err != nil {
		return nil, err
	}
	if _, err := c.bw.WriteString("\r\n"); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return c.readReply()
}

func (c *Client) readReply() ([]string, error) {
	reply, err := readLine(c.br)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(string(reply))
	if len(fields) == 0 {
		return nil, fmt.Errorf("server: empty reply")
	}
	if fields[0] == "ERR" {
		pe := &ProtocolError{Code: "unknown"}
		if len(fields) > 1 {
			pe.Code = fields[1]
		}
		if len(fields) > 2 {
			pe.Detail = strings.Join(fields[2:], " ")
		}
		return nil, pe
	}
	return fields, nil
}

func parseHit(tok string) (bool, error) {
	switch tok {
	case "HIT":
		return true, nil
	case "MISS":
		return false, nil
	}
	return false, fmt.Errorf("server: bad hit token %q", tok)
}

// Tenant registers (or updates the goal of) a tenant and returns its
// ASID. lineFactor 0 keeps the cache default.
func (c *Client) Tenant(name string, goal float64, lineFactor int) (uint16, error) {
	line := fmt.Sprintf("TENANT %s %g", name, goal)
	if lineFactor > 0 {
		line += fmt.Sprintf(" %d", lineFactor)
	}
	fields, err := c.roundTrip(line)
	if err != nil {
		return 0, err
	}
	if len(fields) != 2 || fields[0] != "OK" {
		return 0, fmt.Errorf("server: bad TENANT reply %v", fields)
	}
	asid, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("server: bad ASID in TENANT reply %v", fields)
	}
	return uint16(asid), nil
}

// Set stores value under the tenant's key; hit reports the cache model
// outcome for the admitted write.
func (c *Client) Set(tenant, key string, value []byte) (hit bool, err error) {
	if _, err := fmt.Fprintf(c.bw, "SET %s %s %d\r\n", tenant, key, len(value)); err != nil {
		return false, err
	}
	if _, err := c.bw.Write(value); err != nil {
		return false, err
	}
	if _, err := c.bw.WriteString("\r\n"); err != nil {
		return false, err
	}
	if err := c.bw.Flush(); err != nil {
		return false, err
	}
	fields, err := c.readReply()
	if err != nil {
		return false, err
	}
	if len(fields) != 2 || fields[0] != "STORED" {
		return false, fmt.Errorf("server: bad SET reply %v", fields)
	}
	return parseHit(fields[1])
}

// Get fetches the tenant's key. found is false when the key is absent
// (such a request is not admitted to the cache model).
func (c *Client) Get(tenant, key string) (value []byte, hit, found bool, err error) {
	fields, err := c.roundTrip(fmt.Sprintf("GET %s %s", tenant, key))
	if err != nil {
		return nil, false, false, err
	}
	if fields[0] == "NOTFOUND" {
		return nil, false, false, nil
	}
	if len(fields) != 3 || fields[0] != "VALUE" {
		return nil, false, false, fmt.Errorf("server: bad GET reply %v", fields)
	}
	if hit, err = parseHit(fields[1]); err != nil {
		return nil, false, false, err
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n < 0 || n > MaxValueLen {
		return nil, false, false, fmt.Errorf("server: bad value length in GET reply %v", fields)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, false, false, err
	}
	return buf[:n:n], hit, true, nil
}

// Del removes the tenant's key; found is false when it was absent.
func (c *Client) Del(tenant, key string) (found bool, err error) {
	fields, err := c.roundTrip(fmt.Sprintf("DEL %s %s", tenant, key))
	if err != nil {
		return false, err
	}
	switch fields[0] {
	case "NOTFOUND":
		return false, nil
	case "DELETED":
		return true, nil
	}
	return false, fmt.Errorf("server: bad DEL reply %v", fields)
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	fields, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if len(fields) != 1 || fields[0] != "PONG" {
		return fmt.Errorf("server: bad PING reply %v", fields)
	}
	return nil
}

// DriveStats summarizes one Drive run.
type DriveStats struct {
	Sets, Gets, Dels int
	Hits, Misses     int
	NotFound         int
}

// Drive runs a deterministic skewed workload against one tenant: a
// SET/GET/DEL mix over `keys` keys where 3 in 4 operations touch the
// hot eighth of the key space (the same skew the differential traces
// use). Deterministic in seed.
func (c *Client) Drive(tenant string, seed uint64, ops, keys int) (DriveStats, error) {
	var st DriveStats
	if keys < 1 {
		keys = 1
	}
	src := rng.New(seed)
	count := func(hit bool) {
		if hit {
			st.Hits++
		} else {
			st.Misses++
		}
	}
	for i := 0; i < ops; i++ {
		idx := src.Intn(keys)
		if src.Intn(4) > 0 {
			idx = src.Intn(keys/8 + 1)
		}
		key := fmt.Sprintf("key-%d", idx)
		switch op := src.Intn(10); {
		case op < 4: // 40% SET
			val := []byte(fmt.Sprintf("val-%s-%d", tenant, i))
			hit, err := c.Set(tenant, key, val)
			if err != nil {
				return st, err
			}
			st.Sets++
			count(hit)
		case op < 9: // 50% GET
			_, hit, found, err := c.Get(tenant, key)
			if err != nil {
				return st, err
			}
			st.Gets++
			if !found {
				st.NotFound++
			} else {
				count(hit)
			}
		default: // 10% DEL
			found, err := c.Del(tenant, key)
			if err != nil {
				return st, err
			}
			st.Dels++
			if !found {
				st.NotFound++
			}
		}
	}
	return st, nil
}
