package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// LoadSnapshot overwrites the registry's instruments with the values of
// a previously exported Snapshot — the checkpoint-restore inverse of
// Snapshot(). Instruments named in the snapshot are created if absent
// (histograms inherit the snapshot's bucket bounds) and set if present;
// instruments the snapshot does not mention are left untouched.
//
// Names registered as gauge funcs are skipped: their values are
// recomputed from live simulation state at the next Snapshot, and the
// exported Gauges map includes them, so loading them back would collide
// with the func registration. Restore paths should therefore re-attach
// instrumentation (recreating the gauge funcs) before calling
// LoadSnapshot.
//
// Unlike the lookup methods, LoadSnapshot never panics on bad input —
// snapshots may come from corrupted checkpoint files — and instead
// returns an error naming the offending instrument. On error the
// registry may be partially loaded; callers treating that as fatal
// should discard the registry.
func (r *Registry) LoadSnapshot(s Snapshot) error {
	if r == nil {
		return fmt.Errorf("telemetry: cannot load a snapshot into a nil registry")
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	for _, name := range sortedKeys(s.Counters) {
		c, ok := r.counters[name]
		if !ok {
			if err := r.claimLocked(name, "counter"); err != nil {
				return err
			}
			c = &Counter{}
			r.counters[name] = c
		}
		c.v.Store(s.Counters[name])
	}

	for _, name := range sortedKeys(s.Gauges) {
		if _, isFn := r.gaugeFns[name]; isFn {
			continue // recomputed from live state at the next Snapshot
		}
		g, ok := r.gauges[name]
		if !ok {
			if err := r.claimLocked(name, "gauge"); err != nil {
				return err
			}
			g = &Gauge{}
			r.gauges[name] = g
		}
		g.bits.Store(math.Float64bits(s.Gauges[name]))
	}

	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		bounds, perBucket, err := decodeHistogramSnapshot(hs)
		if err != nil {
			return fmt.Errorf("telemetry: histogram %q: %w", name, err)
		}
		h, ok := r.hists[name]
		if !ok {
			if err := r.claimLocked(name, "histogram"); err != nil {
				return err
			}
			h = &Histogram{
				bounds:  bounds,
				buckets: make([]atomic.Uint64, len(bounds)+1),
			}
			r.hists[name] = h
		}
		if !boundsEqual(h.bounds, bounds) {
			return fmt.Errorf("telemetry: histogram %q: snapshot bounds %v do not match registered bounds %v",
				name, bounds, h.bounds)
		}
		for i := range h.buckets {
			h.buckets[i].Store(perBucket[i])
		}
		h.count.Store(hs.Count)
		h.sumBits.Store(math.Float64bits(hs.Sum))
	}
	return nil
}

// claimLocked is checkFreeLocked's non-panicking sibling, plus name
// validation: snapshots restored from disk are untrusted input.
func (r *Registry) claimLocked(name, as string) error {
	if err := validName(name); err != nil {
		return err
	}
	if _, ok := r.counters[name]; ok {
		return fmt.Errorf("telemetry: %q already registered as counter, snapshot wants %s", name, as)
	}
	if _, ok := r.gauges[name]; ok {
		return fmt.Errorf("telemetry: %q already registered as gauge, snapshot wants %s", name, as)
	}
	if _, ok := r.hists[name]; ok {
		return fmt.Errorf("telemetry: %q already registered as histogram, snapshot wants %s", name, as)
	}
	if _, ok := r.gaugeFns[name]; ok {
		return fmt.Errorf("telemetry: %q already registered as gauge func, snapshot wants %s", name, as)
	}
	return nil
}

// decodeHistogramSnapshot inverts Histogram.snapshot: it recovers the
// bucket bounds and the per-bucket (non-cumulative) counts, validating
// the shape a genuine snapshot always has.
func decodeHistogramSnapshot(hs HistogramSnapshot) (bounds []float64, perBucket []uint64, err error) {
	if len(hs.Buckets) == 0 {
		return nil, nil, fmt.Errorf("no buckets")
	}
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(last.UpperBound, +1) {
		return nil, nil, fmt.Errorf("final bucket bound %v is not +Inf", last.UpperBound)
	}
	bounds = make([]float64, len(hs.Buckets)-1)
	perBucket = make([]uint64, len(hs.Buckets))
	var prev uint64
	for i, b := range hs.Buckets {
		if i < len(bounds) {
			bounds[i] = b.UpperBound
			if i > 0 && bounds[i] <= bounds[i-1] {
				return nil, nil, fmt.Errorf("bounds not strictly increasing at %d: %v", i, bounds)
			}
		}
		if b.Count < prev {
			return nil, nil, fmt.Errorf("cumulative counts decrease at bucket %d (%d -> %d)", i, prev, b.Count)
		}
		perBucket[i] = b.Count - prev
		prev = b.Count
	}
	if last.Count != hs.Count {
		return nil, nil, fmt.Errorf("+Inf bucket count %d does not equal observation count %d", last.Count, hs.Count)
	}
	return bounds, perBucket, nil
}

// boundsEqual compares bucket bounds exactly (bounds are configuration,
// not measurements, so bitwise equality is the right test).
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedKeys returns a map's keys in sorted order so restore touches
// instruments deterministically (and errors pick a stable culprit).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
