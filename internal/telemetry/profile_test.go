package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestProfileConfigFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var p ProfileConfig
	p.RegisterFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "cpu.out", "-trace", "t.out"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "cpu.out" || p.Trace != "t.out" || p.MemProfile != "" {
		t.Errorf("parsed config = %+v", p)
	}
	if !p.Enabled() {
		t.Error("Enabled() = false with profiles requested")
	}
	if (ProfileConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := ProfileConfig{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "exec.trace"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("second stop errored: %v", err)
	}
	for _, f := range []string{p.CPUProfile, p.MemProfile, p.Trace} {
		st, err := os.Stat(f)
		if err != nil {
			t.Errorf("profile %s missing: %v", f, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	p := ProfileConfig{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}
	if _, err := p.Start(); err == nil {
		t.Error("Start succeeded with an uncreatable path")
	}
}

// lockedBuffer is an io.Writer safe for the snapshot goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func TestPeriodicSnapshots(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks").Add(7)
	var buf lockedBuffer
	stop := StartPeriodicSnapshots(r, &buf, 10*time.Millisecond)
	time.Sleep(35 * time.Millisecond)
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatalf("second stop: %v", err)
	}

	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var snap Snapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("line %d is not a snapshot: %v", lines, err)
		}
		if snap.Counters["ticks"] != 7 {
			t.Errorf("line %d counter = %d, want 7", lines, snap.Counters["ticks"])
		}
	}
	// At least the final flush-on-stop snapshot must be present.
	if lines == 0 {
		t.Error("no snapshots written")
	}
}
