package telemetry

import (
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// Edge cases of the Prometheus text exporter and its parser: label
// values with escape-worthy bytes, the exact histogram line set, and
// the JSON / text round trips of the histogram kind.

func TestPrometheusLabelValueEscaping(t *testing.T) {
	values := []string{
		`plain`,
		`with"quote`,
		`back\slash`,
		`trailing\`, // closing quote preceded by a backslash once quoted
		"new\nline",
		`mix\"ed` + "\n" + `\\`,
	}
	reg := NewRegistry()
	for i, v := range values {
		reg.Counter(`molcache_edge_total{v=` + strconv.Quote(v) + `,idx=` + strconv.Quote(strconv.Itoa(i)) + `}`).Add(uint64(i + 1))
	}
	snap := reg.Snapshot()
	got, err := ParsePrometheus(strings.NewReader(snap.PrometheusString()))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, snap.PrometheusString())
	}
	if !reflect.DeepEqual(snap.Counters, got.Counters) {
		t.Fatalf("escaped labels did not round-trip:\nwant %v\ngot  %v", snap.Counters, got.Counters)
	}
}

func TestSplitLabelsTrailingBackslash(t *testing.T) {
	// `a\` quotes to "a\\": the closing quote is preceded by a
	// backslash, which a naive look-behind treats as escaped, fusing
	// the two pairs into one.
	body := `v="a\\",w="b"`
	got := splitLabels(body)
	want := []string{`v="a\\"`, `w="b"`}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splitLabels(%q) = %q, want %q", body, got, want)
	}
}

func TestPrometheusHistogramTextLines(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("molcache_probe_count", []float64{1, 2, 4})
	for _, v := range []float64{1, 1, 2, 3, 9} {
		h.Observe(v)
	}
	text := reg.Snapshot().PrometheusString()
	want := []string{
		"# TYPE molcache_probe_count histogram",
		`molcache_probe_count_bucket{le="1"} 2`,
		`molcache_probe_count_bucket{le="2"} 3`,
		`molcache_probe_count_bucket{le="4"} 4`,
		`molcache_probe_count_bucket{le="+Inf"} 5`,
		"molcache_probe_count_sum 16",
		"molcache_probe_count_count 5",
		"",
	}
	if got := strings.Join(want, "\n"); text != got {
		t.Fatalf("histogram text:\n%s\nwant:\n%s", text, got)
	}
}

func TestPrometheusLabeledHistogramRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram(`molcache_access_service_cycles{asid="3"}`, []float64{8, 64}).Observe(5)
	reg.Histogram(`molcache_access_service_cycles{asid="3"}`, nil).Observe(200)
	reg.Histogram("noc_hop_latency_cycles", []float64{2, 4, 8}).Observe(6)
	reg.Counter("molcache_edge_hits_total").Add(7)
	reg.Gauge("molcache_edge_occupancy").Set(0.625)

	snap := reg.Snapshot()
	text := snap.PrometheusString()
	if !strings.Contains(text, `molcache_access_service_cycles_bucket{asid="3",le="8"} 1`) {
		t.Fatalf("labeled bucket line missing:\n%s", text)
	}
	if !strings.Contains(text, `molcache_access_service_cycles_sum{asid="3"} 205`) {
		t.Fatalf("labeled sum line missing:\n%s", text)
	}
	got, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("text round trip diverged:\nwant %+v\ngot  %+v", snap, got)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram(`molcache_access_service_cycles{asid="1"}`, nil).Observe(12)
	reg.Histogram(`molcache_access_service_cycles{asid="1"}`, nil).Observe(212)
	snap := reg.Snapshot()

	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"le": "+Inf"`) {
		t.Fatalf("+Inf bucket not serialized as string:\n%s", data)
	}
	got, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("JSON round trip diverged:\nwant %+v\ngot  %+v", snap, got)
	}
	hs := got.Histograms[`molcache_access_service_cycles{asid="1"}`]
	if hs.Count != 2 || hs.Sum != 224 {
		t.Fatalf("histogram state lost: %+v", hs)
	}
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(last.UpperBound, +1) || last.Count != 2 {
		t.Fatalf("+Inf bucket lost: %+v", last)
	}
}

func TestAtomicSnapshotSkipsGaugeFuncs(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("molcache_edge_hits_total").Add(3)
	reg.Gauge("molcache_edge_occupancy").Set(1.5)
	reg.Histogram("molcache_probe_count", []float64{1, 2}).Observe(2)
	called := false
	reg.RegisterGaugeFunc("molcache_edge_derived", func() float64 {
		called = true
		return 42
	})

	snap := reg.AtomicSnapshot()
	if called {
		t.Fatal("AtomicSnapshot ran a gauge func")
	}
	if _, ok := snap.Gauges["molcache_edge_derived"]; ok {
		t.Fatal("AtomicSnapshot exported a gauge func")
	}
	if snap.Counters["molcache_edge_hits_total"] != 3 ||
		snap.Gauges["molcache_edge_occupancy"] != 1.5 ||
		snap.Histograms["molcache_probe_count"].Count != 1 {
		t.Fatalf("AtomicSnapshot lost instruments: %+v", snap)
	}

	full := reg.Snapshot()
	if !called || full.Gauges["molcache_edge_derived"] != 42 {
		t.Fatal("full Snapshot must still evaluate gauge funcs")
	}

	var nilReg *Registry
	empty := nilReg.AtomicSnapshot()
	if len(empty.Counters)+len(empty.Gauges)+len(empty.Histograms) != 0 {
		t.Fatal("nil AtomicSnapshot not empty")
	}
}
