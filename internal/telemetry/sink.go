package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink receives every event a tracer records. Implementations must be
// safe for use from the single goroutine that owns the tracer; the
// tracer serializes Write and Flush under its own lock.
type Sink interface {
	// Write consumes one event.
	Write(e Event) error
	// Flush forces buffered output down to the underlying writer.
	Flush() error
}

// MemorySink collects events in memory — the test sink.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Write implements Sink.
func (s *MemorySink) Write(e Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
	return nil
}

// Flush implements Sink (a no-op).
func (s *MemorySink) Flush() error { return nil }

// Events returns a copy of everything written so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Len returns the number of events written so far.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// JSONLSink streams events as one JSON object per line — the durable
// sink commands attach when asked to record an event trace.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink wraps w in a buffered JSON-lines encoder.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Write implements Sink.
func (s *JSONLSink) Write(e Event) error { return s.enc.Encode(e) }

// Flush implements Sink.
func (s *JSONLSink) Flush() error { return s.bw.Flush() }
