package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Emit(Event{Kind: KindAccess})
	tr.Access(1, 2, 3, true, false, 4, 0)
	tr.Region(KindRegionGrow, 1, 2, 3, 4)
	tr.Resize(1, 2, "grow-chunk", 3, 4)
	tr.Coherence(KindInvalidate, 64, 1)
	tr.SetSink(NewMemorySink())
	if got := tr.Events(); got != nil {
		t.Errorf("nil tracer Events() = %v, want nil", got)
	}
	if tr.Emitted() != 0 {
		t.Errorf("nil tracer Emitted() = %d", tr.Emitted())
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("nil tracer Flush() = %v", err)
	}
}

func TestTracerSequencesEvents(t *testing.T) {
	tr := NewTracer(16)
	tr.Access(10, 1, 0x40, false, false, 3, 1)
	tr.Resize(20, 1, "grow-linear", 4, 36)
	tr.Region(KindRegionShrink, 30, 2, -2, 30)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if evs[0].Kind != KindAccess || evs[0].Value != 3 || evs[0].Aux != 1 {
		t.Errorf("access event mangled: %+v", evs[0])
	}
	if evs[1].Detail != "grow-linear" || evs[1].Kind != KindResize {
		t.Errorf("resize event mangled: %+v", evs[1])
	}
	if evs[2].Value != -2 || evs[2].ASID != 2 {
		t.Errorf("shrink event mangled: %+v", evs[2])
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{At: uint64(i)})
	}
	if tr.Emitted() != 10 {
		t.Fatalf("Emitted() = %d, want 10", tr.Emitted())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Oldest-first: the last four emissions are At 6..9, Seq 7..10.
	for i, e := range evs {
		if e.At != uint64(6+i) || e.Seq != uint64(7+i) {
			t.Errorf("ring[%d] = {At:%d Seq:%d}, want {At:%d Seq:%d}",
				i, e.At, e.Seq, 6+i, 7+i)
		}
	}
}

func TestTracerDefaultRingSize(t *testing.T) {
	tr := NewTracer(0)
	if cap(tr.ring) != DefaultRingSize {
		t.Errorf("default ring capacity = %d, want %d", cap(tr.ring), DefaultRingSize)
	}
}

func TestMemorySinkReceivesEverything(t *testing.T) {
	tr := NewTracer(2) // ring smaller than the stream: sink must still see all
	sink := NewMemorySink()
	tr.SetSink(sink)
	for i := 0; i < 8; i++ {
		tr.Access(uint64(i), 1, 0, i%2 == 0, false, 1, 0)
	}
	if sink.Len() != 8 {
		t.Fatalf("sink saw %d events, want 8", sink.Len())
	}
	evs := sink.Events()
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("sink event %d out of order: seq %d", i, e.Seq)
		}
	}
}

func TestJSONLSinkRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(0)
	tr.SetSink(NewJSONLSink(&buf))
	tr.Access(5, 3, 0x1000, true, true, 7, 0)
	tr.Resize(6, 3, "shrink", -2, 12)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var got []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d events, want 2", len(got))
	}
	want := tr.Events()
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d: decoded %+v != emitted %+v", i, got[i], want[i])
		}
	}
}

func TestKindJSONNames(t *testing.T) {
	for k := KindAccess; k <= KindDowngrade; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(b), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("kind %v does not round-trip: %v", k, err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Error("unknown kind name unmarshalled without error")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Access(uint64(i), 1, 0, false, false, 1, 0)
			}
		}()
	}
	wg.Wait()
	if tr.Emitted() != 8000 {
		t.Errorf("Emitted() = %d, want 8000", tr.Emitted())
	}
	if n := len(tr.Events()); n != 128 {
		t.Errorf("ring holds %d, want 128", n)
	}
}

// errorSink fails every write, to exercise sink-error reporting.
type errorSink struct{ n int }

func (s *errorSink) Write(Event) error { s.n++; return errSink }
func (s *errorSink) Flush() error      { return nil }

var errSink = errors.New("sink down")

func TestSinkErrorSurfacesOnFlush(t *testing.T) {
	tr := NewTracer(0)
	tr.SetSink(&errorSink{})
	tr.Emit(Event{})
	if err := tr.Flush(); err == nil {
		t.Error("Flush() lost the sink error")
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("second Flush() still errors: %v", err)
	}
}
