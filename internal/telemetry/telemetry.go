// Package telemetry is the observability layer of the repository: a
// zero-dependency structured event tracer, a registry of live metrics
// (atomic counters, gauges and histograms with Prometheus-text and JSON
// exporters), and profiling hooks for the commands.
//
// The paper's whole argument rests on runtime-observed behavior — the
// per-region miss rates that drive Algorithm 1, the per-molecule probe
// counts that feed the power model — so the simulation stack emits what
// it observes through this package: every cache access outcome, every
// region create/grow/shrink/rebalance, every resize decision, every
// coherence invalidation.
//
// Design constraints, in order:
//
//  1. Disabled must be almost free. Every instrumented package holds a
//     nil *Tracer / nil instrument pointers by default and pays one
//     pointer check per access on the hot path. All Tracer, Counter,
//     Gauge and Histogram methods are nil-safe no-ops, so instrumented
//     code never branches on configuration.
//  2. Enabled must be cheap. Events go into a fixed-size ring buffer
//     (no allocation beyond the optional Detail string); metrics are
//     lock-free atomics safe for concurrent use.
//  3. No dependencies. Everything here is standard library only, like
//     the rest of the repository.
//
// Sinks make the ring durable: a JSONL sink streams every event to an
// io.Writer, a memory sink collects them for tests. See export.go for
// the registry's snapshot formats and profile.go for the -cpuprofile /
// -memprofile / -trace command hooks.
package telemetry

import (
	"fmt"
	"sync"
)

// Kind classifies a traced event.
type Kind uint8

// The event kinds emitted by the simulation stack.
const (
	// KindAccess is one cache access outcome (hit/miss, probes,
	// writebacks; Remote marks a sibling-tile hit via the Ulmo).
	KindAccess Kind = iota
	// KindRegionCreate is a region's "Ground Zero" creation; Value is
	// the initial molecule count.
	KindRegionCreate
	// KindRegionGrow is a molecule allocation; Value is the delta
	// obtained, Aux the size after.
	KindRegionGrow
	// KindRegionShrink is a molecule withdrawal; Value is the (negative)
	// delta, Aux the size after.
	KindRegionShrink
	// KindRegionRebalance is a row-to-row molecule move.
	KindRegionRebalance
	// KindRegionRehome is a home-tile change; Value is the new tile id.
	KindRegionRehome
	// KindResize is one resize-controller decision; Detail carries the
	// action name, Value the signed molecule delta, Aux the size after.
	KindResize
	// KindInvalidate is a coherence invalidation of a peer cache's copy.
	KindInvalidate
	// KindDowngrade is a coherence M/E -> S demotion of a peer's copy.
	KindDowngrade
	// KindMoleculeRetire is a hard molecule failure: the molecule was
	// flushed, withdrawn from its region and permanently retired. Value
	// is the molecule ID, Aux the owning region's size after.
	KindMoleculeRetire
	// KindLineCorrupt is a transient line corruption (the line was
	// dropped); Value is the molecule ID, Aux is 1 when the lost copy
	// was dirty (silent data loss).
	KindLineCorrupt
	// KindNoCFault is a degraded remote lookup: Value is the retry
	// count paid, Aux is 1 when the lookup was abandoned entirely.
	KindNoCFault
	// KindJobStart marks a runner job leaving the queue for a worker.
	// Detail is the job label, Value the submission index.
	KindJobStart
	// KindJobDone marks a runner job finishing. Detail is the job label,
	// Value the submission index, Aux the wall-clock microseconds spent,
	// and Hit reports success (false = error or panic).
	KindJobDone
)

// kindLast is the highest defined kind (keeps UnmarshalJSON exhaustive).
const kindLast = KindJobDone

// String names the kind for logs and JSON.
func (k Kind) String() string {
	switch k {
	case KindAccess:
		return "access"
	case KindRegionCreate:
		return "region-create"
	case KindRegionGrow:
		return "region-grow"
	case KindRegionShrink:
		return "region-shrink"
	case KindRegionRebalance:
		return "region-rebalance"
	case KindRegionRehome:
		return "region-rehome"
	case KindResize:
		return "resize"
	case KindInvalidate:
		return "invalidate"
	case KindDowngrade:
		return "downgrade"
	case KindMoleculeRetire:
		return "molecule-retire"
	case KindLineCorrupt:
		return "line-corrupt"
	case KindNoCFault:
		return "noc-fault"
	case KindJobStart:
		return "job-start"
	case KindJobDone:
		return "job-done"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MarshalJSON renders the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the string names produced by MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	for c := KindAccess; c <= kindLast; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", s)
}

// Event is one structured trace record. The fixed fields keep the hot
// path allocation-free; Value, Aux and Detail carry kind-specific
// payloads (documented on the Kind constants).
type Event struct {
	// Seq is the tracer-assigned monotonic sequence number (from 1).
	Seq uint64 `json:"seq"`
	// At is the emitter's logical time — for cache events, the
	// cache-wide count of addresses serviced.
	At uint64 `json:"at"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// ASID identifies the application, when one is involved.
	ASID uint16 `json:"asid"`
	// Addr is the referenced address (access and coherence events).
	Addr uint64 `json:"addr,omitempty"`
	// Hit and Remote qualify access events.
	Hit    bool `json:"hit,omitempty"`
	Remote bool `json:"remote,omitempty"`
	// Value and Aux are kind-specific quantities.
	Value int64 `json:"value,omitempty"`
	Aux   int64 `json:"aux,omitempty"`
	// Detail is a kind-specific label (e.g. the resize action name).
	Detail string `json:"detail,omitempty"`
}

// DefaultRingSize is the tracer's event ring capacity when NewTracer is
// given a non-positive size.
const DefaultRingSize = 4096

// Tracer collects structured events into a fixed-size ring and
// optionally forwards each one to a Sink. A nil *Tracer is the valid,
// disabled tracer: every method is a no-op, so instrumented code holds
// a nil pointer by default and pays one comparison when tracing is off.
type Tracer struct {
	mu      sync.Mutex
	seq     uint64
	ring    []Event
	sink    Sink
	sinkErr error
}

// NewTracer builds a tracer with the given ring capacity
// (DefaultRingSize when ringSize <= 0).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{ring: make([]Event, 0, ringSize)}
}

// Enabled reports whether the tracer records events (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// SetSink attaches a sink that receives every subsequent event
// synchronously. A nil sink detaches.
func (t *Tracer) SetSink(s Sink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = s
}

// Emit records one event, stamping its sequence number.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e.Seq = t.seq
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[int((t.seq-1)%uint64(cap(t.ring)))] = e
	}
	if t.sink != nil {
		if err := t.sink.Write(e); err != nil && t.sinkErr == nil {
			t.sinkErr = err
		}
	}
}

// Access emits a KindAccess event (the hot-path helper: the Event is
// only constructed after the nil check).
func (t *Tracer) Access(at uint64, asid uint16, addr uint64, hit, remote bool, probes, writebacks int) {
	if t == nil {
		return
	}
	t.Emit(Event{
		At: at, Kind: KindAccess, ASID: asid, Addr: addr,
		Hit: hit, Remote: remote,
		Value: int64(probes), Aux: int64(writebacks),
	})
}

// Region emits a region-lifecycle event (create/grow/shrink/rebalance/
// rehome), with delta and the size after.
func (t *Tracer) Region(kind Kind, at uint64, asid uint16, delta, size int) {
	if t == nil {
		return
	}
	t.Emit(Event{At: at, Kind: kind, ASID: asid, Value: int64(delta), Aux: int64(size)})
}

// Resize emits a KindResize controller-decision event.
func (t *Tracer) Resize(at uint64, asid uint16, action string, delta, size int) {
	if t == nil {
		return
	}
	t.Emit(Event{At: at, Kind: KindResize, ASID: asid, Detail: action,
		Value: int64(delta), Aux: int64(size)})
}

// Coherence emits an invalidation or downgrade event; value identifies
// the victim cache.
func (t *Tracer) Coherence(kind Kind, addr uint64, victimCache int) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: kind, Addr: addr, Value: int64(victimCache)})
}

// Emitted returns the total number of events recorded (including those
// that have rotated out of the ring).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Events returns the ring contents, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) || t.seq == 0 {
		return append(out, t.ring...)
	}
	// Full ring: the oldest entry sits just past the most recent write.
	start := int(t.seq % uint64(cap(t.ring)))
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

// Flush flushes the sink (if any) and returns the first sink write
// error encountered since the last Flush.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.sinkErr
	t.sinkErr = nil
	if t.sink != nil {
		if ferr := t.sink.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}
