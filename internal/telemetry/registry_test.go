package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	r.RegisterGaugeFunc("f", nil) // nil fn would panic on a live registry
	c.Add(5)
	c.Inc()
	g.Set(1.5)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments accumulated state")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("molcache_hits_total")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if r.Counter("molcache_hits_total") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("molcache_miss_rate")
	g.Set(0.25)
	g.Add(0.25)
	if g.Value() != 0.5 {
		t.Errorf("gauge = %v, want 0.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1166.5 {
		t.Errorf("sum = %v, want 1166.5", h.Sum())
	}
	snap := r.Snapshot().Histograms["lat"]
	// Cumulative: <=1: 2, <=10: 4, <=100: 6, +Inf: 7.
	wantCum := []uint64{2, 4, 6, 7}
	if len(snap.Buckets) != len(wantCum) {
		t.Fatalf("got %d buckets, want %d", len(snap.Buckets), len(wantCum))
	}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, +1) {
		t.Errorf("last bucket bound = %v, want +Inf", snap.Buckets[3].UpperBound)
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.RegisterGaugeFunc("derived", func() float64 { return v })
	if got := r.Snapshot().Gauges["derived"]; got != 1 {
		t.Errorf("snapshot gauge = %v, want 1", got)
	}
	v = 2
	if got := r.Snapshot().Gauges["derived"]; got != 2 {
		t.Errorf("snapshot gauge = %v, want 2 after update", got)
	}
}

func TestNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, ok := range []string{
		"a", "molcache_hits_total", "ns:sub", "x{asid=\"1\"}", "_lead",
	} {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("valid name %q panicked: %v", ok, p)
				}
			}()
			r.Counter(ok)
		}()
	}
	for _, bad := range []string{
		"", "9lead", "has space", "x{unterminated", "{only=\"labels\"}",
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid name %q did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestTypeCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter's name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_hist", []float64{10})
			ga := r.Gauge("shared_gauge")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
				ga.Add(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("shared_total").Value(); v != 8000 {
		t.Errorf("counter = %d, want 8000", v)
	}
	if n := r.Histogram("shared_hist", nil).Count(); n != 8000 {
		t.Errorf("histogram count = %d, want 8000", n)
	}
	if v := r.Gauge("shared_gauge").Value(); v != 8000 {
		t.Errorf("gauge = %v, want 8000", v)
	}
}

func TestBaseName(t *testing.T) {
	if BaseName(`x{a="1"}`) != "x" || BaseName("plain") != "plain" {
		t.Error("BaseName misparses")
	}
}
