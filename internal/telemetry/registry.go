package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil *Counter is a
// valid no-op, so instrumented code can hold unregistered counters.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric. The nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (a compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bound distribution metric: observations land in
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket at the end. The nil *Histogram is a valid no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefaultLatencyBounds suits the cycle-granular latencies the CMP
// substrate models (L1 hit = 1 cycle up to DRAM = hundreds).
var DefaultLatencyBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a namespace of live metrics. Lookups are idempotent:
// asking for an existing name returns the same instrument, so several
// components may share a counter. A nil *Registry is the valid,
// disabled registry — every lookup returns the nil instrument, whose
// methods are no-ops — which is how instrumented packages run with
// metrics off at the cost of one pointer check at attach time.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	gaugeFns map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		gaugeFns: make(map[string]func() float64),
	}
}

// validName enforces the Prometheus data model loosely: a bare metric
// name of [a-zA-Z_:][a-zA-Z0-9_:]*, optionally followed by one {...}
// label block (which the exporters pass through verbatim).
func validName(name string) error {
	base := name
	if i := indexByte(name, '{'); i >= 0 {
		if name[len(name)-1] != '}' || i == 0 {
			return fmt.Errorf("telemetry: malformed label block in metric name %q", name)
		}
		base = name[:i]
	}
	if base == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	for i := 0; i < len(base); i++ {
		c := base[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return fmt.Errorf("telemetry: metric name %q starts with a digit", name)
			}
		default:
			return fmt.Errorf("telemetry: invalid character %q in metric name %q", c, name)
		}
	}
	return nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// BaseName strips the label block from a metric name ("x{a=\"1\"}" -> "x").
func BaseName(name string) string {
	if i := indexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns (creating if needed) the named counter. Nil registry
// returns the nil no-op counter. Panics on a malformed name or a name
// already registered as a different instrument type.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if err := validName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFreeLocked(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil registry
// returns the nil no-op gauge. Panics on a malformed name or a name
// already registered as a different instrument type.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if err := validName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFreeLocked(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket upper bounds (ignored if the histogram already exists;
// DefaultLatencyBounds when nil). Panics on a malformed name or a name
// already registered as a different instrument type.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if err := validName(name); err != nil {
		panic(err)
	}
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFreeLocked(name, "histogram")
	h := newHistogram(bounds)
	r.hists[name] = h
	return h
}

// RegisterGaugeFunc registers a gauge whose value is computed by fn at
// snapshot time — the zero-hot-path-cost way to export derived values
// like per-ASID miss rates. Re-registering a name replaces its fn.
// Panics on a malformed name, a nil fn, or a name already registered
// as a different instrument type.
func (r *Registry) RegisterGaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	if err := validName(name); err != nil {
		panic(err)
	}
	if fn == nil {
		panic("telemetry: nil gauge func for " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; !ok {
		r.checkFreeLocked(name, "gauge-func")
	}
	r.gaugeFns[name] = fn
}

// checkFreeLocked panics if name is already bound to another type.
func (r *Registry) checkFreeLocked(name, as string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as counter, wanted %s", name, as))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as gauge, wanted %s", name, as))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as histogram, wanted %s", name, as))
	}
	if _, ok := r.gaugeFns[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as gauge func, wanted %s", name, as))
	}
}
