package telemetry

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sync"
	"time"
)

// ProfileConfig names the profile outputs a command should produce.
// Empty paths disable the corresponding profile.
type ProfileConfig struct {
	// CPUProfile receives a pprof CPU profile.
	CPUProfile string
	// MemProfile receives a pprof heap profile written at Stop.
	MemProfile string
	// Trace receives a runtime execution trace.
	Trace string
}

// RegisterFlags registers the conventional -cpuprofile, -memprofile and
// -trace flags on fs, binding them to p.
func (p *ProfileConfig) RegisterFlags(fs *flag.FlagSet) {
	p.RegisterFlagsNamed(fs, "cpuprofile", "memprofile", "trace")
}

// RegisterFlagsNamed registers the profile flags under explicit names,
// for commands whose flag namespace already uses one of the defaults
// (cmd/molsim's -trace replays a cache trace, so it registers the
// execution trace as -exectrace).
func (p *ProfileConfig) RegisterFlagsNamed(fs *flag.FlagSet, cpu, mem, trace string) {
	fs.StringVar(&p.CPUProfile, cpu, "", "write a pprof CPU profile to `file`")
	fs.StringVar(&p.MemProfile, mem, "", "write a pprof heap profile to `file` on exit")
	fs.StringVar(&p.Trace, trace, "", "write a runtime execution trace to `file`")
}

// Enabled reports whether any profile output is requested.
func (p ProfileConfig) Enabled() bool {
	return p.CPUProfile != "" || p.MemProfile != "" || p.Trace != ""
}

// Start begins the requested profiles and returns the stop function
// that finishes them (writing the heap profile, stopping the CPU
// profile and execution trace, closing files). Stop is safe to call
// exactly once; commands typically `defer stop()` right after Start.
// On error every profile already started is stopped before returning.
func (p ProfileConfig) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() error {
		var first error
		if cpuF != nil {
			pprof.StopCPUProfile()
			if cerr := cpuF.Close(); first == nil {
				first = cerr
			}
			cpuF = nil
		}
		if traceF != nil {
			rtrace.Stop()
			if cerr := traceF.Close(); first == nil {
				first = cerr
			}
			traceF = nil
		}
		if p.MemProfile != "" {
			if merr := writeHeapProfile(p.MemProfile); first == nil {
				first = merr
			}
		}
		return first
	}

	if p.CPUProfile != "" {
		cpuF, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			_ = cpuF.Close() // already failing; the start error wins
			cpuF = nil
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
	}
	if p.Trace != "" {
		traceF, err = os.Create(p.Trace)
		if err != nil {
			_ = cleanup()
			return nil, fmt.Errorf("telemetry: execution trace: %w", err)
		}
		if err = rtrace.Start(traceF); err != nil {
			_ = traceF.Close() // already failing; the start error wins
			traceF = nil
			_ = cleanup()
			return nil, fmt.Errorf("telemetry: execution trace: %w", err)
		}
	}

	var once sync.Once
	return func() error {
		var ferr error
		once.Do(func() { ferr = cleanup() })
		return ferr
	}, nil
}

// writeHeapProfile snapshots the heap after a GC, as `go test
// -memprofile` does.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	runtime.GC()
	err = pprof.Lookup("heap").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	return nil
}

// StartPeriodicSnapshots spawns a goroutine that writes one compact
// JSON snapshot of reg to w every interval, and returns the function
// that stops it (flushing one final snapshot). Stop reports the first
// write error the goroutine hit, so a full disk or closed pipe is not
// silently swallowed. The commands use it to expose live metrics
// during long runs.
func StartPeriodicSnapshots(reg *Registry, w io.Writer, interval time.Duration) (stop func() error) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	var firstErr error // owned by the snapshot goroutine until finished closes
	write := func() {
		// One line per snapshot: the compact form of Snapshot.JSON.
		b, err := json.Marshal(reg.Snapshot())
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		if _, err := w.Write(append(b, '\n')); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				write()
			case <-done:
				write()
				return
			}
		}
	}()
	var once sync.Once
	return func() error {
		once.Do(func() {
			close(done)
			<-finished
		})
		// finished has closed by now, so reading firstErr is safe.
		return firstErr
	}
}
