package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// drive simulates n accesses against st, opening the canonical pipeline
// spans for each sampled one, and returns how many were sampled.
func drive(st *SpanTracer, n int) int {
	sampled := 0
	for at := uint64(1); at <= uint64(n); at++ {
		if !st.StartAccess(at, uint16(at%3)) {
			continue
		}
		sampled++
		st.Begin("molcache_access")
		st.Begin("molcache_access_region_lookup")
		st.End()
		st.Begin("molcache_access_tag_probe")
		st.EndValue(int64(at % 7))
		st.End()
		st.FinishAccess()
	}
	return sampled
}

func TestSpanSamplingDeterministic(t *testing.T) {
	a := NewSpanTracer(8, 0)
	b := NewSpanTracer(8, 0)
	drive(a, 100)
	drive(b, 100)

	// 1-in-8 of 100 accesses starting at access 1: accesses 1,9,...,97.
	if got, want := a.SampledAccesses(), uint64(13); got != want {
		t.Fatalf("sampled = %d, want %d", got, want)
	}
	as, bs := a.Spans(), b.Spans()
	if len(as) != len(bs) || len(as) != 13*3 {
		t.Fatalf("span counts: %d vs %d, want %d", len(as), len(bs), 13*3)
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, as[i], bs[i])
		}
	}
	if a.Drops() != 0 {
		t.Fatalf("unexpected drops: %d", a.Drops())
	}
}

func TestSpanNesting(t *testing.T) {
	st := NewSpanTracer(1, 0)
	if !st.StartAccess(1, 4) {
		t.Fatal("access 1 must always be sampled")
	}
	st.Begin("molcache_access")
	st.Begin("molcache_access_tag_probe")
	st.EndValue(5)
	st.End()
	st.FinishAccess()

	spans := st.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	inner, outer := spans[0], spans[1] // completion order: inner first
	if inner.Name != "molcache_access_tag_probe" || outer.Name != "molcache_access" {
		t.Fatalf("unexpected order: %q then %q", inner.Name, outer.Name)
	}
	if inner.Depth != 1 || outer.Depth != 0 {
		t.Fatalf("depths %d/%d, want 1/0", inner.Depth, outer.Depth)
	}
	if inner.Value != 5 {
		t.Fatalf("inner value = %d, want 5", inner.Value)
	}
	// Containment: the outer interval must cover the inner one.
	if outer.Start >= inner.Start || outer.Start+outer.Dur <= inner.Start+inner.Dur {
		t.Fatalf("outer [%d,+%d] does not contain inner [%d,+%d]",
			outer.Start, outer.Dur, inner.Start, inner.Dur)
	}
	if inner.ASID != 4 || outer.At != 1 {
		t.Fatalf("span metadata not propagated: %+v / %+v", inner, outer)
	}
}

func TestSpanUnsampledIsInert(t *testing.T) {
	st := NewSpanTracer(1000, 0)
	if st.StartAccess(2, 1) {
		t.Fatal("access 2 sampled at 1-in-1000")
	}
	st.Begin("molcache_access")
	st.End()
	if st.Len() != 0 {
		t.Fatalf("inert tracer recorded %d spans", st.Len())
	}

	var nilTracer *SpanTracer
	if nilTracer.StartAccess(1, 0) {
		t.Fatal("nil tracer sampled an access")
	}
	nilTracer.Begin("molcache_access")
	nilTracer.EndValue(1)
	nilTracer.FinishAccess()
	nilTracer.BeginSolo("resize_tick", 1, 0)
	nilTracer.EndSolo()
	if nilTracer.Len() != 0 || nilTracer.Drops() != 0 || nilTracer.Enabled() {
		t.Fatal("nil tracer is not inert")
	}
}

func TestSpanBufferBoundedAndDropsCounted(t *testing.T) {
	st := NewSpanTracer(1, 4)
	drive(st, 10) // 10 sampled accesses x 3 spans = 30 attempts
	if st.Len() != 4 {
		t.Fatalf("buffer holds %d spans, want limit 4", st.Len())
	}
	if got, want := st.Drops(), uint64(30-4); got != want {
		t.Fatalf("drops = %d, want %d", got, want)
	}
}

func TestSpanSolo(t *testing.T) {
	st := NewSpanTracer(1000, 0)
	st.BeginSolo("resize_tick", 25000, 0)
	st.EndSolo()
	spans := st.Spans()
	if len(spans) != 1 || spans[0].Name != "resize_tick" || spans[0].At != 25000 {
		t.Fatalf("solo span not recorded: %+v", spans)
	}
	// A later sampled access must still work.
	if !st.StartAccess(1, 1) {
		t.Fatal("access 1 not sampled after solo span")
	}
	st.Begin("molcache_access")
	st.End()
	st.FinishAccess()
	if st.Len() != 2 {
		t.Fatalf("got %d spans, want 2", st.Len())
	}
}

func TestSpanUnbalancedFinishCountsDrop(t *testing.T) {
	st := NewSpanTracer(1, 0)
	st.StartAccess(1, 0)
	st.Begin("molcache_access")
	st.Begin("molcache_access_tag_probe") // left open
	st.FinishAccess()
	if st.Drops() != 2 {
		t.Fatalf("drops = %d, want 2 for two unclosed spans", st.Drops())
	}
	// The tracer must be clean for the next sample.
	st.StartAccess(2, 0)
	st.Begin("molcache_access")
	st.End()
	st.FinishAccess()
	if got := st.Spans(); len(got) != 1 || got[0].Depth != 0 {
		t.Fatalf("tracer not reset after unbalanced access: %+v", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	st := NewSpanTracer(2, 0)
	drive(st, 4) // samples accesses 1 and 3 (asids 1 and 0)
	var b strings.Builder
	if err := st.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
			Args struct {
				At    uint64 `json:"at"`
				Value int64  `json:"value"`
				Name  string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.PID != 1 || ev.TID == 0 {
				t.Fatalf("bad pid/tid on %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// 2 sampled accesses x 3 spans, plus process_name and two thread_name
	// metadata records (asids 0 and 1).
	if complete != 6 || meta != 3 {
		t.Fatalf("complete=%d meta=%d, want 6 and 3", complete, meta)
	}
	// Deterministic output.
	var b2 strings.Builder
	st2 := NewSpanTracer(2, 0)
	drive(st2, 4)
	st2.WriteChromeTrace(&b2)
	if b.String() != b2.String() {
		t.Fatal("trace output is not deterministic")
	}
	// Nil tracer still writes a valid empty trace.
	var empty strings.Builder
	var nilTracer *SpanTracer
	if err := nilTracer.WriteChromeTrace(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "traceEvents") {
		t.Fatalf("empty trace malformed: %s", empty.String())
	}
}

func TestSpanDisabledZeroAllocs(t *testing.T) {
	var nilTracer *SpanTracer
	attached := NewSpanTracer(1<<30, 0)
	if n := testing.AllocsPerRun(1000, func() {
		nilTracer.StartAccess(7, 1)
		nilTracer.Begin("molcache_access")
		nilTracer.End()
		attached.StartAccess(7, 1) // unsampled: (7-1)%2^30 != 0
		attached.Begin("molcache_access")
		attached.End()
		attached.FinishAccess()
	}); n != 0 {
		t.Fatalf("disabled span path allocates %v/op", n)
	}
}
