package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; the final
	// bucket's is +Inf (serialized as the string "+Inf" in JSON).
	UpperBound float64 `json:"le"`
	// Count is the cumulative observation count at this bound.
	Count uint64 `json:"count"`
}

// MarshalJSON renders +Inf as the Prometheus-conventional "+Inf".
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	if math.IsInf(b.UpperBound, +1) {
		le = "+Inf"
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON parses the representation MarshalJSON produces.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if raw.LE == "+Inf" {
		b.UpperBound = math.Inf(+1)
		return nil
	}
	v, err := strconv.ParseFloat(raw.LE, 64)
	if err != nil {
		return fmt.Errorf("telemetry: bad bucket bound %q: %w", raw.LE, err)
	}
	b.UpperBound = v
	return nil
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a frozen view of a registry, the unit both exporters
// serialize. Gauge funcs are evaluated at snapshot time and appear as
// plain gauges.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state. A nil registry yields
// an empty (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	r.mu.RUnlock()

	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	// Gauge funcs run outside the registry lock: they commonly read
	// simulation state that may itself call back into the registry.
	for name, fn := range fns {
		s.Gauges[name] = fn()
	}
	for name, h := range hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// snapshot freezes one histogram's cumulative buckets.
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		ub := math.Inf(+1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		hs.Buckets = append(hs.Buckets, Bucket{UpperBound: ub, Count: cum})
	}
	return hs
}

// AtomicSnapshot freezes only the registry's lock-free instruments —
// counters, set gauges and histograms — and skips gauge funcs, whose
// closures typically read live simulation state and are therefore only
// safe to run on the goroutine that owns the simulation. This is the
// snapshot concurrent readers (the introspection HTTP server) may take
// at any time.
func (r *Registry) AtomicSnapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// JSON serializes the snapshot (stable field order via sorted map keys,
// courtesy of encoding/json).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseJSON inverts Snapshot.JSON.
func ParseJSON(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, err
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	return s, nil
}

// formatFloat renders a float the way Prometheus text format expects,
// round-trippable through strconv.ParseFloat.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels splices extra label pairs (e.g. `le="8"`) into a metric
// name that may already carry a label block.
func mergeLabels(name, extra string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + "{" + name[i+1:len(name)-1] + "," + extra + "}"
	}
	return name + "{" + extra + "}"
}

// suffixName appends a series suffix to the base name, keeping any
// label block at the end ("x{a=\"1\"}" + "_sum" -> "x_sum{a=\"1\"}").
func suffixName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// trimBaseSuffix inverts suffixName.
func trimBaseSuffix(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name[:i], suffix) + name[i:]
	}
	return strings.TrimSuffix(name, suffix)
}

// Prometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP-less, one TYPE comment per metric family,
// families and samples in sorted order.
func (s Snapshot) Prometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	typed := map[string]string{} // base name -> type, to emit TYPE once
	emitType := func(name, kind string) {
		base := BaseName(name)
		if typed[base] == "" {
			typed[base] = kind
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, kind)
		}
	}

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		emitType(n, "counter")
		fmt.Fprintf(bw, "%s %d\n", n, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		emitType(n, "gauge")
		fmt.Fprintf(bw, "%s %s\n", n, formatFloat(s.Gauges[n]))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		emitType(n, "histogram")
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s %d\n",
				mergeLabels(suffixName(n, "_bucket"), `le=`+strconv.Quote(formatFloat(b.UpperBound))), b.Count)
		}
		fmt.Fprintf(bw, "%s %s\n", suffixName(n, "_sum"), formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s %d\n", suffixName(n, "_count"), h.Count)
	}
	return bw.Flush()
}

// PrometheusString is Prometheus into a string (test and log helper).
func (s Snapshot) PrometheusString() string {
	var b strings.Builder
	s.Prometheus(&b)
	return b.String()
}

// ParsePrometheus inverts Snapshot.Prometheus: it reassembles counters,
// gauges and histograms (from their _bucket/_sum/_count samples) into a
// Snapshot. It accepts only the subset of the exposition format that
// Prometheus emits — which is exactly what round-trip tests need.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	types := map[string]string{}
	type histAccum struct {
		buckets []Bucket
		sum     float64
		count   uint64
	}
	hists := map[string]*histAccum{}

	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		// A sample: NAME[{labels}] VALUE — the name may contain spaces
		// only inside the label block, which our exporter never emits.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return s, fmt.Errorf("telemetry: malformed sample line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		base := BaseName(name)

		// Histogram series: FAMILY_bucket / FAMILY_sum / FAMILY_count
		// with the family itself typed "histogram" (the standard
		// exposition-format convention).
		switch {
		case strings.HasSuffix(base, "_bucket") && types[strings.TrimSuffix(base, "_bucket")] == "histogram":
			le, rest, err := extractLabel(name, "le")
			if err != nil {
				return s, err
			}
			fam := trimBaseSuffix(rest, "_bucket")
			ub := math.Inf(+1)
			if le != "+Inf" {
				ub, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return s, fmt.Errorf("telemetry: bad le %q: %w", le, err)
				}
			}
			n, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				return s, fmt.Errorf("telemetry: bad bucket count %q: %w", valStr, err)
			}
			h := hists[fam]
			if h == nil {
				h = &histAccum{}
				hists[fam] = h
			}
			h.buckets = append(h.buckets, Bucket{UpperBound: ub, Count: n})
			continue
		case strings.HasSuffix(base, "_sum") && types[strings.TrimSuffix(base, "_sum")] == "histogram":
			fam := trimBaseSuffix(name, "_sum")
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return s, fmt.Errorf("telemetry: bad sum %q: %w", valStr, err)
			}
			h := hists[fam]
			if h == nil {
				h = &histAccum{}
				hists[fam] = h
			}
			h.sum = v
			continue
		case strings.HasSuffix(base, "_count") && types[strings.TrimSuffix(base, "_count")] == "histogram":
			fam := trimBaseSuffix(name, "_count")
			n, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				return s, fmt.Errorf("telemetry: bad count %q: %w", valStr, err)
			}
			h := hists[fam]
			if h == nil {
				h = &histAccum{}
				hists[fam] = h
			}
			h.count = n
			continue
		}

		switch types[base] {
		case "counter":
			n, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				return s, fmt.Errorf("telemetry: bad counter value %q: %w", valStr, err)
			}
			s.Counters[name] = n
		case "gauge":
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return s, fmt.Errorf("telemetry: bad gauge value %q: %w", valStr, err)
			}
			s.Gauges[name] = v
		default:
			return s, fmt.Errorf("telemetry: sample %q has no TYPE line", name)
		}
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	for fam, h := range hists {
		sort.Slice(h.buckets, func(i, j int) bool {
			return h.buckets[i].UpperBound < h.buckets[j].UpperBound
		})
		s.Histograms[fam] = HistogramSnapshot{Count: h.count, Sum: h.sum, Buckets: h.buckets}
	}
	return s, nil
}

// extractLabel pulls one label's value out of a name's label block and
// returns the name with that label removed.
func extractLabel(name, label string) (value, rest string, err error) {
	i := strings.IndexByte(name, '{')
	if i < 0 || name[len(name)-1] != '}' {
		return "", "", fmt.Errorf("telemetry: sample %q lacks a label block", name)
	}
	body := name[i+1 : len(name)-1]
	var kept []string
	found := false
	for _, pair := range splitLabels(body) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return "", "", fmt.Errorf("telemetry: malformed label %q in %q", pair, name)
		}
		k := pair[:eq]
		v, uerr := strconv.Unquote(pair[eq+1:])
		if uerr != nil {
			return "", "", fmt.Errorf("telemetry: malformed label value in %q: %w", pair, uerr)
		}
		if k == label {
			value, found = v, true
			continue
		}
		kept = append(kept, pair)
	}
	if !found {
		return "", "", fmt.Errorf("telemetry: sample %q lacks label %q", name, label)
	}
	rest = name[:i]
	if len(kept) > 0 {
		rest += "{" + strings.Join(kept, ",") + "}"
	}
	return value, rest, nil
}

// splitLabels splits a label-block body on commas outside quotes. The
// scanner consumes backslash escapes inside quoted values byte-by-byte,
// so a value ending in a literal backslash (`a\"` after quoting: the
// closing quote is preceded by `\\`) still terminates the quote — a
// look-behind for '\\' would misread it as escaped.
func splitLabels(body string) []string {
	var out []string
	inQuote := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch c := body[i]; {
		case inQuote:
			if c == '\\' {
				i++ // skip the escaped byte
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			inQuote = true
		case c == ',':
			out = append(out, body[start:i])
			start = i + 1
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}
