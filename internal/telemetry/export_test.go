package telemetry

import (
	"reflect"
	"strings"
	"testing"
)

// populated builds a registry exercising every instrument type,
// including labeled series.
func populated() *Registry {
	r := NewRegistry()
	r.Counter("molcache_hits_total").Add(120)
	r.Counter("molcache_misses_total").Add(30)
	r.Counter(`molcache_resize_actions_total{action="grow-chunk"}`).Add(4)
	r.Counter(`molcache_resize_actions_total{action="shrink"}`).Add(2)
	r.Gauge("molcache_free_molecules").Set(48)
	r.Gauge(`molcache_region_miss_rate{asid="1"}`).Set(0.125)
	h := r.Histogram("molcache_access_latency_cycles", []float64{1, 12, 200})
	for _, v := range []float64{1, 1, 12, 200, 500} {
		h.Observe(v)
	}
	return r
}

func TestJSONRoundTrip(t *testing.T) {
	snap := populated().Snapshot()
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("JSON round trip diverged:\n got %+v\nwant %+v", back, snap)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	snap := populated().Snapshot()
	text := snap.PrometheusString()
	back, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\ntext:\n%s", err, text)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("Prometheus round trip diverged:\n got %+v\nwant %+v\ntext:\n%s", back, snap, text)
	}
}

func TestPrometheusFormatShape(t *testing.T) {
	text := populated().Snapshot().PrometheusString()
	for _, want := range []string{
		"# TYPE molcache_hits_total counter",
		"molcache_hits_total 120",
		"# TYPE molcache_free_molecules gauge",
		`molcache_region_miss_rate{asid="1"} 0.125`,
		"# TYPE molcache_access_latency_cycles histogram",
		`molcache_access_latency_cycles_bucket{le="+Inf"} 5`,
		"molcache_access_latency_cycles_count 5",
		"molcache_access_latency_cycles_sum 714",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// One TYPE line per family even with several labeled series.
	if strings.Count(text, "# TYPE molcache_resize_actions_total counter") != 1 {
		t.Errorf("labeled family got duplicate TYPE lines:\n%s", text)
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(1)
	snap := r.Snapshot()
	c.Add(100)
	if snap.Counters["c"] != 1 {
		t.Errorf("snapshot tracked live counter: %d", snap.Counters["c"])
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"untyped_metric 5",
		"# TYPE x counter\nx notanumber",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", bad)
		}
	}
}

func TestLabeledHistogramRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat{core="0"}`, []float64{5})
	h.Observe(1)
	h.Observe(50)
	snap := r.Snapshot()
	back, err := ParsePrometheus(strings.NewReader(snap.PrometheusString()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("labeled histogram diverged:\n got %+v\nwant %+v\ntext:\n%s",
			back, snap, snap.PrometheusString())
	}
}
