package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span-level tracing of the access pipeline. A SpanTracer records
// begin/end pairs (access -> region lookup -> tag probe -> NoC transit,
// plus solo roots like the resize tick) for a deterministic 1-in-N
// sample of accesses, selected purely by access count so a traced run
// is byte-identical to an untraced one. Timestamps are logical: a
// monotonic counter that ticks once per begin and once per end, never a
// wall clock — the determinism contract molvet enforces on the
// simulation packages extends to everything they observe.
//
// Cost model, mirroring the rest of the telemetry layer:
//
//   - nil *SpanTracer: every method is a no-op; instrumented code pays
//     one pointer check per call site and allocates nothing.
//   - attached, access not sampled: StartAccess does one modulo and
//     returns false; every inner Begin/End sees active == false and
//     returns after a bool load. Still zero allocations.
//   - attached, access sampled: spans append into a pre-bounded buffer;
//     past the limit they are counted as drops, never reallocated.
//
// The tracer is owned by the goroutine that runs the simulation (like a
// Sink); export happens after the run via WriteChromeTrace, whose
// output loads directly in ui.perfetto.dev / chrome://tracing.

// DefaultSpanSample is the 1-in-N access sampling rate when a
// SpanTracer is built with every <= 0.
const DefaultSpanSample = 64

// DefaultSpanLimit bounds the completed-span buffer when a SpanTracer
// is built with limit <= 0 (~10 MB of spans; beyond it spans drop and
// are counted).
const DefaultSpanLimit = 1 << 18

// maxSpanDepth bounds the open-span stack. The access pipeline nests
// three deep; anything past the cap is counted as a drop, not recorded.
const maxSpanDepth = 16

// SpanEvent is one completed span. Start and Dur are in logical ticks
// (one tick per begin and per end), At is the cache-wide access count
// of the enclosing sampled access (or the emitter's own logical time
// for solo spans), Depth the nesting level within that access.
type SpanEvent struct {
	Name  string `json:"name"`
	Start uint64 `json:"start"`
	Dur   uint64 `json:"dur"`
	At    uint64 `json:"at"`
	ASID  uint16 `json:"asid"`
	Depth int    `json:"depth"`
	Value int64  `json:"value,omitempty"`
}

// openSpan is one in-flight begin awaiting its end.
type openSpan struct {
	name  string
	start uint64
}

// SpanTracer records sampled access-pipeline spans. The nil *SpanTracer
// is the valid, disabled tracer. See the file comment for the ownership
// and cost contract.
type SpanTracer struct {
	every uint64
	limit int

	now    uint64 // logical clock: ticks on every recorded begin/end
	active bool   // inside a sampled access (or a solo root)
	solo   bool   // the active root was opened by BeginSolo
	at     uint64
	asid   uint16
	depth  int
	stack  [maxSpanDepth]openSpan

	spans   []SpanEvent
	sampled uint64 // accesses selected by StartAccess
	drops   uint64 // spans lost to the buffer limit or the depth cap

	// Batch-recording mode (NewSpanBatchRecorder): marks delimit each
	// sampled access so DrainBatches can hand the spans to a master
	// tracer for deterministic renumbering at the epoch merge.
	batch bool
	marks []spanMark
}

// spanMark delimits one sampled access inside a batch recorder.
type spanMark struct {
	at        uint64
	asid      uint16
	baseNow   uint64 // lane logical clock at StartAccess
	firstSpan int    // index of the access's first span
	baseDrops uint64
	ticks     uint64 // lane clock advance, filled at FinishAccess
	drops     uint64 // depth-cap drops, filled at FinishAccess
}

// NewSpanTracer builds a tracer sampling one access in every (default
// DefaultSpanSample) with a completed-span buffer of limit entries
// (default DefaultSpanLimit).
func NewSpanTracer(every uint64, limit int) *SpanTracer {
	if every == 0 {
		every = DefaultSpanSample
	}
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &SpanTracer{every: every, limit: limit}
}

// NewSpanBatchRecorder builds the shard-lane counterpart of a master
// SpanTracer: same 1-in-N sampling (stateless on the access count, so
// lanes agree with the serial tracer on which accesses are sampled),
// but spans are recorded in lane-local logical time with per-access
// marks and never dropped to a limit — the master tracer's limit is
// applied when AppendBatch folds the batches back in, preserving the
// serial tracer's exact drop accounting.
func NewSpanBatchRecorder(every uint64) *SpanTracer {
	if every == 0 {
		every = DefaultSpanSample
	}
	const unlimited = int(^uint(0) >> 1)
	return &SpanTracer{every: every, limit: unlimited, batch: true}
}

// SpanBatch is one sampled access's spans as recorded on a shard lane:
// Start values are in the lane's logical time, anchored by BaseNow, and
// Ticks is how far the lane clock advanced across the access. The epoch
// merge rebases them onto the master clock with AppendBatch.
type SpanBatch struct {
	At      uint64
	ASID    uint16
	BaseNow uint64
	Ticks   uint64
	Drops   uint64
	Spans   []SpanEvent
}

// DrainBatches returns the recorded accesses as batches, in recording
// order, and resets the recorder's buffers for the next epoch. The
// lane clock keeps running — BaseNow anchors each batch, so rebasing
// is unaffected.
func (st *SpanTracer) DrainBatches() []SpanBatch {
	if st == nil || len(st.marks) == 0 {
		return nil
	}
	out := make([]SpanBatch, len(st.marks))
	for i, m := range st.marks {
		end := len(st.spans)
		if i+1 < len(st.marks) {
			end = st.marks[i+1].firstSpan
		}
		out[i] = SpanBatch{
			At:      m.at,
			ASID:    m.asid,
			BaseNow: m.baseNow,
			Ticks:   m.ticks,
			Drops:   m.drops,
			Spans:   append([]SpanEvent(nil), st.spans[m.firstSpan:end]...),
		}
	}
	st.spans = st.spans[:0]
	st.marks = st.marks[:0]
	st.drops = 0
	return out
}

// AppendBatch folds one lane-recorded access into the master tracer:
// the access counts as sampled, its spans are rebased from lane time
// onto the master clock and appended under the master's buffer limit,
// and the master clock advances by the access's tick count whether or
// not spans were kept — exactly the bookkeeping the serial tracer
// would have done running the access inline.
func (st *SpanTracer) AppendBatch(b SpanBatch) {
	if st == nil {
		return
	}
	st.sampled++
	st.drops += b.Drops
	for _, sp := range b.Spans {
		if len(st.spans) >= st.limit {
			st.drops++
			continue
		}
		sp.Start = sp.Start - b.BaseNow + st.now
		st.spans = append(st.spans, sp)
	}
	st.now += b.Ticks
}

// Enabled reports whether the tracer records spans (false for nil).
func (st *SpanTracer) Enabled() bool { return st != nil }

// Every returns the 1-in-N sampling rate (0 for nil).
func (st *SpanTracer) Every() uint64 {
	if st == nil {
		return 0
	}
	return st.every
}

// StartAccess decides, purely from the access count, whether the
// access about to run is sampled; when it is, the tracer activates and
// subsequent Begin/End calls record spans until FinishAccess. Access
// counts start at 1; access 1, 1+N, 1+2N, ... are the sample.
func (st *SpanTracer) StartAccess(at uint64, asid uint16) bool {
	if st == nil || (at-1)%st.every != 0 {
		return false
	}
	st.active = true
	st.solo = false
	st.at = at
	st.asid = asid
	st.depth = 0
	st.sampled++
	if st.batch {
		st.marks = append(st.marks, spanMark{
			at: at, asid: asid,
			baseNow:   st.now,
			firstSpan: len(st.spans),
			baseDrops: st.drops,
		})
	}
	return true
}

// FinishAccess deactivates the tracer after a sampled access. Any span
// left open (an instrumentation bug) is discarded and counted as a
// drop rather than corrupting the next sample's nesting.
func (st *SpanTracer) FinishAccess() {
	if st == nil {
		return
	}
	st.drops += uint64(st.depth)
	if st.batch && st.active && len(st.marks) > 0 {
		m := &st.marks[len(st.marks)-1]
		m.ticks = st.now - m.baseNow
		m.drops = st.drops - m.baseDrops
	}
	st.active = false
	st.depth = 0
}

// Begin opens a span. A no-op unless the tracer is inside a sampled
// access (or a solo root), which is what keeps unsampled accesses at
// zero cost beyond one bool load per instrumentation site.
func (st *SpanTracer) Begin(name string) {
	if st == nil || !st.active {
		return
	}
	if st.depth >= maxSpanDepth {
		st.depth++ // keep Begin/End pairing; End counts the drop
		return
	}
	st.now++
	st.stack[st.depth] = openSpan{name: name, start: st.now}
	st.depth++
}

// End closes the innermost open span.
func (st *SpanTracer) End() { st.end(0) }

// EndValue closes the innermost open span, attaching a kind-specific
// quantity (tag probes for a probe span, cycles for a NoC transit).
func (st *SpanTracer) EndValue(v int64) { st.end(v) }

func (st *SpanTracer) end(v int64) {
	if st == nil || !st.active || st.depth == 0 {
		return
	}
	st.depth--
	if st.depth >= maxSpanDepth {
		st.drops++
		return
	}
	sp := st.stack[st.depth]
	st.now++
	if len(st.spans) >= st.limit {
		st.drops++
		return
	}
	st.spans = append(st.spans, SpanEvent{
		Name:  sp.name,
		Start: sp.start,
		Dur:   st.now - sp.start,
		At:    st.at,
		ASID:  st.asid,
		Depth: st.depth,
		Value: v,
	})
}

// BeginSolo opens a root span outside any sampled access — the resize
// tick's hook. Solo roots are always recorded (they are rare by
// construction: one per resize pass). When the tracer is already
// active the span simply nests inside the current access.
func (st *SpanTracer) BeginSolo(name string, at uint64, asid uint16) {
	if st == nil {
		return
	}
	if !st.active {
		st.active = true
		st.solo = true
		st.at = at
		st.asid = asid
		st.depth = 0
	}
	//molvet:ignore telemetry-names BeginSolo forwards its caller's name to Begin; the name is checked at BeginSolo call sites
	st.Begin(name)
}

// EndSolo closes a BeginSolo span, deactivating the tracer if the solo
// span was the root.
func (st *SpanTracer) EndSolo() {
	if st == nil || !st.active {
		return
	}
	st.End()
	if st.solo && st.depth == 0 {
		st.active = false
		st.solo = false
	}
}

// Spans returns a copy of the recorded spans, in completion order.
func (st *SpanTracer) Spans() []SpanEvent {
	if st == nil {
		return nil
	}
	return append([]SpanEvent(nil), st.spans...)
}

// Len returns the number of recorded spans.
func (st *SpanTracer) Len() int {
	if st == nil {
		return 0
	}
	return len(st.spans)
}

// SampledAccesses returns how many accesses StartAccess selected.
func (st *SpanTracer) SampledAccesses() uint64 {
	if st == nil {
		return 0
	}
	return st.sampled
}

// Drops returns the spans lost to the buffer limit or the depth cap.
func (st *SpanTracer) Drops() uint64 {
	if st == nil {
		return 0
	}
	return st.drops
}

// chromeEvent is one Chrome trace-event ("X" complete event, or "M"
// metadata). Logical ticks map 1:1 onto the format's microseconds.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	TS   uint64      `json:"ts"`
	Dur  uint64      `json:"dur,omitempty"`
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the span payload (a struct, not a map, so the
// emitted JSON field order is fixed).
type chromeArgs struct {
	At    uint64 `json:"at,omitempty"`
	Value int64  `json:"value,omitempty"`
	Name  string `json:"name,omitempty"` // metadata events only
}

// chromeTrace is the top-level Chrome trace-event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes every recorded span as Chrome trace-event
// JSON ("X" complete events; one thread track per ASID), loadable in
// ui.perfetto.dev or chrome://tracing. Output is deterministic: spans
// sort by logical start time, tracks by ASID.
func (st *SpanTracer) WriteChromeTrace(w io.Writer) error {
	trace := chromeTrace{DisplayTimeUnit: "ms"}
	if st != nil {
		spans := append([]SpanEvent(nil), st.spans...)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

		seen := map[uint16]bool{}
		var asids []uint16
		for _, sp := range spans {
			if !seen[sp.ASID] {
				seen[sp.ASID] = true
				asids = append(asids, sp.ASID)
			}
		}
		sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })

		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: 1,
			Args: &chromeArgs{Name: "molcache"},
		})
		for _, asid := range asids {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: int(asid) + 1,
				Args: &chromeArgs{Name: fmt.Sprintf("asid %d", asid)},
			})
		}
		for _, sp := range spans {
			ev := chromeEvent{
				Name: sp.Name, Ph: "X",
				TS: sp.Start, Dur: sp.Dur,
				PID: 1, TID: int(sp.ASID) + 1,
			}
			if sp.At != 0 || sp.Value != 0 {
				ev.Args = &chromeArgs{At: sp.At, Value: sp.Value}
			}
			trace.TraceEvents = append(trace.TraceEvents, ev)
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(trace); err != nil {
		return err
	}
	return bw.Flush()
}
