package cache

import (
	"testing"
	"testing/quick"

	"molcache/internal/trace"
)

// tiny returns a 4-set, 2-way, 64B-line cache (512B) for targeted tests.
func tiny(policy PolicyKind) *Cache {
	return MustNew(Config{Size: 512, Ways: 2, LineSize: 64, Policy: policy})
}

func read(a uint64) trace.Ref  { return trace.Ref{Addr: a, Kind: trace.Read} }
func write(a uint64) trace.Ref { return trace.Ref{Addr: a, Kind: trace.Write} }

func TestValidate(t *testing.T) {
	bad := []Config{
		{Size: 1000, Ways: 2, LineSize: 64}, // size not pow2
		{Size: 1024, Ways: 2, LineSize: 60}, // line not pow2
		{Size: 1024, Ways: 0, LineSize: 64}, // no ways
		{Size: 1024, Ways: 3, LineSize: 64}, // ways not pow2
		{Size: 128, Ways: 4, LineSize: 64},  // fewer lines than ways
		{Size: 64, Ways: 2, LineSize: 64},   // one line, two ways
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
	good := Config{Size: 1 << 20, Ways: 4, LineSize: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v", good, err)
	}
}

func TestName(t *testing.T) {
	if got := (Config{Size: 8 << 20, Ways: 4, LineSize: 64}).Name(); got != "8MB 4-way" {
		t.Errorf("Name = %q", got)
	}
	if got := (Config{Size: 8 << 20, Ways: 1, LineSize: 64}).Name(); got != "8MB DM" {
		t.Errorf("DM Name = %q", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := tiny(LRU)
	if c.Access(read(0x1000)).Hit {
		t.Error("cold access hit")
	}
	if !c.Access(read(0x1000)).Hit {
		t.Error("second access missed")
	}
	if !c.Access(read(0x103f)).Hit {
		t.Error("same-line access missed")
	}
	if c.Access(read(0x1040)).Hit {
		t.Error("next-line access hit")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := tiny(LRU)
	// Set stride is 4 sets * 64B = 256B; these three map to set 0.
	a, b, x := uint64(0), uint64(256), uint64(512)
	c.Access(read(a))
	c.Access(read(b))
	c.Access(read(a)) // a is now MRU
	res := c.Access(read(x))
	if res.Hit || res.LinesEvicted != 1 {
		t.Fatalf("expected eviction on fill, got %+v", res)
	}
	if !c.Access(read(a)).Hit {
		t.Error("MRU line a was evicted")
	}
	if c.Access(read(b)).Hit {
		t.Error("LRU line b survived")
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	c := tiny(FIFO)
	a, b, x := uint64(0), uint64(256), uint64(512)
	c.Access(read(a))
	c.Access(read(b))
	c.Access(read(a)) // touching a must NOT protect it under FIFO
	c.Access(read(x))
	// Probe b first: probing a would miss and refill, evicting b.
	if !c.Access(read(b)).Hit {
		t.Error("FIFO evicted the newer line b")
	}
	if c.Access(read(a)).Hit {
		t.Error("FIFO kept the oldest line a")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := tiny(LRU)
	c.Access(write(0))  // dirty
	c.Access(read(256)) // clean
	res := c.Access(read(512))
	if res.Writebacks != 1 {
		t.Errorf("evicting dirty line: writebacks = %d, want 1", res.Writebacks)
	}
	res = c.Access(read(768))
	if res.Writebacks != 0 {
		t.Errorf("evicting clean line: writebacks = %d, want 0", res.Writebacks)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := tiny(LRU)
	c.Access(read(0))
	c.Access(write(0)) // hit, marks dirty
	c.Access(read(256))
	res := c.Access(read(512)) // evicts line 0 (LRU)
	if res.Writebacks != 1 {
		t.Errorf("write-hit line eviction: writebacks = %d, want 1", res.Writebacks)
	}
}

func TestDirectMapped(t *testing.T) {
	c := MustNew(Config{Size: 256, Ways: 1, LineSize: 64}) // 4 sets
	c.Access(read(0))
	if c.Access(read(256)).Hit { // same set, different tag
		t.Error("DM conflicting line hit")
	}
	if c.Access(read(0)).Hit {
		t.Error("DM original line survived a conflict")
	}
}

func TestTagProbesEqualWays(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		c := MustNew(Config{Size: 4096, Ways: ways, LineSize: 64})
		if got := c.Access(read(0)).TagProbes; got != ways {
			t.Errorf("ways=%d: TagProbes = %d", ways, got)
		}
	}
}

func TestLedgerPerASID(t *testing.T) {
	c := tiny(LRU)
	c.Access(trace.Ref{Addr: 0, ASID: 1})
	c.Access(trace.Ref{Addr: 0, ASID: 1})
	c.Access(trace.Ref{Addr: 64, ASID: 2})
	if got := c.Ledger().App(1); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("app 1 ledger = %+v", got)
	}
	if got := c.Ledger().App(2); got.Misses != 1 {
		t.Errorf("app 2 ledger = %+v", got)
	}
}

func TestInvalidateAndContains(t *testing.T) {
	c := tiny(LRU)
	c.Access(write(0x40))
	if !c.Contains(0x40) || !c.Contains(0x7f) {
		t.Error("Contains missed a resident line")
	}
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Contains(0x40) {
		t.Error("line survived Invalidate")
	}
	present, _ = c.Invalidate(0x40)
	if present {
		t.Error("Invalidate of absent line reported present")
	}
}

func TestFlush(t *testing.T) {
	c := tiny(LRU)
	c.Access(write(0))
	c.Access(read(64))
	if wb := c.Flush(); wb != 1 {
		t.Errorf("Flush writebacks = %d, want 1", wb)
	}
	if c.ValidLines() != 0 {
		t.Error("lines survived Flush")
	}
}

func TestPLRUVictimIsNotMRU(t *testing.T) {
	c := MustNew(Config{Size: 1024, Ways: 4, LineSize: 64, Policy: PLRU})
	// Fill set 0 (set stride = 4 sets * 64 = 256).
	for i := uint64(0); i < 4; i++ {
		c.Access(read(i * 256))
	}
	c.Access(read(3 * 256)) // make way of addr 768 MRU
	c.Access(read(4 * 256)) // force eviction
	if !c.Access(read(3 * 256)).Hit {
		t.Error("PLRU evicted the MRU line")
	}
}

func TestPLRURejectsNonPow2(t *testing.T) {
	if _, err := newPLRU(4, 3); err == nil {
		t.Fatal("PLRU with 3 ways accepted")
	}
	if _, err := NewPolicy(PLRU, 4, 3, 0); err == nil {
		t.Fatal("NewPolicy(PLRU, 3 ways) accepted")
	}
	if _, err := NewPolicy("Bogus", 4, 4, 0); err == nil {
		t.Fatal("unknown policy kind accepted")
	}
	if _, err := New(Config{Size: 1024, Ways: 4, LineSize: 64, Policy: "Bogus"}); err == nil {
		t.Fatal("cache with unknown policy kind accepted")
	}
}

func TestRandomPolicyDeterministicBySeed(t *testing.T) {
	mk := func(seed uint64) []int {
		p, err := NewPolicy(Random, 1, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 50)
		for i := range out {
			out[i] = p.Victim(0)
		}
		return out
	}
	a, b := mk(1), mk(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random policy not deterministic for equal seeds")
		}
	}
}

// Property: resident line count never exceeds capacity, and a hit is
// always preceded by a fill of the same line (checked via a shadow map).
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(addrs []uint16, seedBit bool) bool {
		cfg := Config{Size: 1024, Ways: 2, LineSize: 64, Policy: LRU}
		if seedBit {
			cfg.Policy = FIFO
		}
		c := MustNew(cfg)
		resident := map[uint64]bool{} // shadow: lines ever filled
		for _, a16 := range addrs {
			a := uint64(a16)
			res := c.Access(read(a))
			lineAddr := a &^ 63
			if res.Hit && !resident[lineAddr] {
				return false // hit on a never-filled line
			}
			resident[lineAddr] = true
			if c.ValidLines() > 16 { // 1024/64 lines capacity
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for a working set that fits, LRU reaches zero misses after
// the first sweep regardless of the sweep count.
func TestLRUFittingLoopConverges(t *testing.T) {
	c := MustNew(Config{Size: 4096, Ways: 4, LineSize: 64})
	misses := 0
	for sweep := 0; sweep < 5; sweep++ {
		for a := uint64(0); a < 4096; a += 64 {
			if !c.Access(read(a)).Hit {
				misses++
			}
		}
	}
	if misses != 64 {
		t.Errorf("misses = %d, want exactly the 64 cold misses", misses)
	}
}

// A looping working set slightly larger than a direct-mapped/LRU cache
// must thrash: miss rate near 1 after warmup. This is the mechanism
// behind art's Table 1 collapse, so the baseline must reproduce it.
func TestLRUThrashOnOversizedLoop(t *testing.T) {
	c := MustNew(Config{Size: 4096, Ways: 4, LineSize: 64})
	// 5120B loop over a 4096B cache.
	var misses, total int
	for sweep := 0; sweep < 10; sweep++ {
		for a := uint64(0); a < 5120; a += 64 {
			total++
			if !c.Access(read(a)).Hit {
				misses++
			}
		}
	}
	if rate := float64(misses) / float64(total); rate < 0.95 {
		t.Errorf("oversized loop miss rate = %v, want ~1 (LRU thrash)", rate)
	}
}

func TestDowngradeClearsDirty(t *testing.T) {
	c := tiny(LRU)
	c.Access(write(0x40))
	present, wasDirty := c.Downgrade(0x40)
	if !present || !wasDirty {
		t.Errorf("Downgrade = (%v, %v), want (true, true)", present, wasDirty)
	}
	// The line must remain resident but now be clean: evicting it later
	// produces no writeback.
	if !c.Access(read(0x40)).Hit {
		t.Fatal("line lost by Downgrade")
	}
	c.Access(read(0x40 + 256))
	res := c.Access(read(0x40 + 512)) // evicts the downgraded line
	if res.Writebacks != 0 {
		t.Errorf("downgraded line still wrote back: %+v", res)
	}
	if present, _ := c.Downgrade(0xdead00); present {
		t.Error("Downgrade of absent line reported present")
	}
}

// Property: under any access sequence, per-set LRU never evicts the most
// recently used line of a set.
func TestLRUNeverEvictsMRUProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(Config{Size: 1024, Ways: 4, LineSize: 64})
		var lastLine uint64
		haveLast := false
		for _, a16 := range addrs {
			a := uint64(a16)
			c.Access(read(a))
			line := a &^ 63
			if haveLast && lastLine != line {
				// The previous access's line must still be resident.
				if !c.Contains(lastLine) {
					return false
				}
			}
			lastLine, haveLast = line, true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
