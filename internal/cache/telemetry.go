package cache

import "molcache/internal/telemetry"

// cacheInstruments caches the registry handles for the access path, so
// a hit or miss never does a name lookup. Nil (the default) means
// metrics are off and Access pays a single pointer check.
type cacheInstruments struct {
	hits       *telemetry.Counter
	misses     *telemetry.Counter
	tagProbes  *telemetry.Counter
	writebacks *telemetry.Counter
}

// AttachTelemetry registers the cache's counters under the fixed
// molcache_cache_* names, tagged with a {cache="<instance>"} label
// (default instance "cache"); the label keeps several caches — an L2
// and a core's L1s, say — apart inside one shared registry while the
// metric names stay grep-able literals. A nil registry detaches.
func (c *Cache) AttachTelemetry(reg *telemetry.Registry, instance string) {
	if reg == nil {
		c.ins = nil
		return
	}
	if instance == "" {
		instance = "cache"
	}
	label := `{cache="` + instance + `"}`
	c.ins = &cacheInstruments{
		hits:       reg.Counter("molcache_cache_hits_total" + label),
		misses:     reg.Counter("molcache_cache_misses_total" + label),
		tagProbes:  reg.Counter("molcache_cache_tag_probes_total" + label),
		writebacks: reg.Counter("molcache_cache_writebacks_total" + label),
	}
	reg.RegisterGaugeFunc("molcache_cache_miss_rate"+label,
		func() float64 { return c.ledger.Total.MissRate() })
	reg.RegisterGaugeFunc("molcache_cache_valid_lines"+label,
		func() float64 { return float64(c.ValidLines()) })
}

// record notes one access on the attached instruments.
func (ins *cacheInstruments) record(hit bool, probes, writebacks int) {
	if ins == nil {
		return
	}
	if hit {
		ins.hits.Inc()
	} else {
		ins.misses.Inc()
	}
	ins.tagProbes.Add(uint64(probes))
	ins.writebacks.Add(uint64(writebacks))
}
