package cache

import "molcache/internal/telemetry"

// cacheInstruments caches the registry handles for the access path, so
// a hit or miss never does a name lookup. Nil (the default) means
// metrics are off and Access pays a single pointer check.
type cacheInstruments struct {
	hits       *telemetry.Counter
	misses     *telemetry.Counter
	tagProbes  *telemetry.Counter
	writebacks *telemetry.Counter
}

// AttachTelemetry registers the cache's counters under ns (default
// "molcache_cache"); the namespace keeps several caches — an L2 and a
// core's L1s, say — apart inside one shared registry. A nil registry
// detaches.
func (c *Cache) AttachTelemetry(reg *telemetry.Registry, ns string) {
	if reg == nil {
		c.ins = nil
		return
	}
	if ns == "" {
		ns = "molcache_cache"
	}
	c.ins = &cacheInstruments{
		hits:       reg.Counter(ns + "_hits_total"),
		misses:     reg.Counter(ns + "_misses_total"),
		tagProbes:  reg.Counter(ns + "_tag_probes_total"),
		writebacks: reg.Counter(ns + "_writebacks_total"),
	}
	reg.RegisterGaugeFunc(ns+"_miss_rate",
		func() float64 { return c.ledger.Total.MissRate() })
	reg.RegisterGaugeFunc(ns+"_valid_lines",
		func() float64 { return float64(c.ValidLines()) })
}

// record notes one access on the attached instruments.
func (ins *cacheInstruments) record(hit bool, probes, writebacks int) {
	if ins == nil {
		return
	}
	if hit {
		ins.hits.Inc()
	} else {
		ins.misses.Inc()
	}
	ins.tagProbes.Add(uint64(probes))
	ins.writebacks.Add(uint64(writebacks))
}
