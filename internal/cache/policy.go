// Package cache implements the trace-driven set-associative cache models
// the paper uses as baselines (direct mapped through 8-way, Figure 5 and
// Table 2) and as the shared L2 of the motivating Table 1 experiment. It
// is the repository's stand-in for the authors' modified Dinero.
package cache

import (
	"fmt"

	"molcache/internal/rng"
)

// Policy selects replacement victims within a set. Implementations hold
// per-set state sized at construction.
type Policy interface {
	// Name identifies the policy ("LRU", "FIFO", ...).
	Name() string
	// Touch records a hit on (set, way).
	Touch(set, way int)
	// Insert records a fill into (set, way).
	Insert(set, way int)
	// Victim returns the way to evict from set, assuming every way is
	// valid (the cache fills invalid ways first).
	Victim(set int) int
}

// PolicyKind names a replacement policy for configuration.
type PolicyKind string

// The replacement policies discussed in the paper (§3.3) plus tree-PLRU,
// a common hardware approximation included for ablations.
const (
	LRU    PolicyKind = "LRU"
	FIFO   PolicyKind = "FIFO"
	Random PolicyKind = "Random"
	PLRU   PolicyKind = "PLRU"
)

// NewPolicy constructs per-set policy state for sets x ways.
// The seed only matters for Random.
func NewPolicy(kind PolicyKind, sets, ways int, seed uint64) (Policy, error) {
	switch kind {
	case LRU:
		return newLRU(sets, ways), nil
	case FIFO:
		return newFIFO(sets, ways), nil
	case Random:
		return &randomPolicy{ways: ways, src: rng.New(seed)}, nil
	case PLRU:
		return newPLRU(sets, ways)
	default:
		return nil, fmt.Errorf("cache: unknown policy kind %q", kind)
	}
}

// lruPolicy tracks a per-(set,way) age stamp; the victim is the way with
// the smallest stamp. O(ways) victim search is fine at ways <= 16.
type lruPolicy struct {
	ways  int
	clock uint64
	stamp []uint64 // sets*ways
}

func newLRU(sets, ways int) *lruPolicy {
	return &lruPolicy{ways: ways, stamp: make([]uint64, sets*ways)}
}

func (p *lruPolicy) Name() string { return string(LRU) }

func (p *lruPolicy) Touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

func (p *lruPolicy) Insert(set, way int) { p.Touch(set, way) }

func (p *lruPolicy) Victim(set int) int {
	base := set * p.ways
	victim, min := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < min {
			victim, min = w, s
		}
	}
	return victim
}

// fifoPolicy evicts in insertion order; hits do not refresh.
type fifoPolicy struct {
	ways  int
	clock uint64
	stamp []uint64
}

func newFIFO(sets, ways int) *fifoPolicy {
	return &fifoPolicy{ways: ways, stamp: make([]uint64, sets*ways)}
}

func (p *fifoPolicy) Name() string { return string(FIFO) }

func (p *fifoPolicy) Touch(int, int) {}

func (p *fifoPolicy) Insert(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

func (p *fifoPolicy) Victim(set int) int {
	base := set * p.ways
	victim, min := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < min {
			victim, min = w, s
		}
	}
	return victim
}

// randomPolicy picks a uniform victim.
type randomPolicy struct {
	ways int
	src  *rng.Source
}

func (p *randomPolicy) Name() string    { return string(Random) }
func (p *randomPolicy) Touch(int, int)  {}
func (p *randomPolicy) Insert(int, int) {}
func (p *randomPolicy) Victim(int) int  { return p.src.Intn(p.ways) }

// plruPolicy implements tree pseudo-LRU: ways-1 direction bits per set.
// Requires power-of-two ways.
type plruPolicy struct {
	ways int
	bits [][]bool // per set, ways-1 internal nodes
}

func newPLRU(sets, ways int) (*plruPolicy, error) {
	if ways&(ways-1) != 0 {
		return nil, fmt.Errorf("cache: PLRU requires power-of-two associativity, got %d ways", ways)
	}
	bits := make([][]bool, sets)
	for i := range bits {
		bits[i] = make([]bool, ways-1)
	}
	return &plruPolicy{ways: ways, bits: bits}, nil
}

func (p *plruPolicy) Name() string { return string(PLRU) }

// touch walks from the root to the leaf for way, pointing every node
// away from the accessed way.
func (p *plruPolicy) touch(set, way int) {
	if p.ways == 1 {
		return
	}
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		goRight := way >= mid
		p.bits[set][node] = !goRight // point away from the touched half
		if goRight {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
}

func (p *plruPolicy) Touch(set, way int)  { p.touch(set, way) }
func (p *plruPolicy) Insert(set, way int) { p.touch(set, way) }

func (p *plruPolicy) Victim(set int) int {
	if p.ways == 1 {
		return 0
	}
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.bits[set][node] { // bit true points right
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}
