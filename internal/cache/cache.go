package cache

import (
	"fmt"

	"molcache/internal/addr"
	"molcache/internal/engine"
	"molcache/internal/stats"
	"molcache/internal/trace"
)

// Config describes a traditional set-associative cache.
type Config struct {
	// Size is the total data capacity in bytes (power of two).
	Size uint64
	// Ways is the associativity; 1 means direct mapped.
	Ways int
	// LineSize is the block size in bytes (power of two), 64 in all of
	// the paper's configurations.
	LineSize uint64
	// Policy selects the replacement policy; LRU when empty.
	Policy PolicyKind
	// Seed seeds the Random policy.
	Seed uint64
	// WriteAllocate controls whether write misses allocate (the paper's
	// L2s are write-allocate write-back; both our L1 and L2 use it).
	// It is the only supported mode and exists for documentation.
	WriteAllocate bool
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if err := addr.CheckPow2("size", c.Size); err != nil {
		return err
	}
	if err := addr.CheckPow2("line size", c.LineSize); err != nil {
		return err
	}
	if c.Ways < 1 {
		return fmt.Errorf("cache: ways must be >= 1, got %d", c.Ways)
	}
	switch c.Policy {
	case "", LRU, FIFO, Random, PLRU:
	default:
		return fmt.Errorf("cache: unknown policy kind %q", c.Policy)
	}
	if !addr.IsPow2(uint64(c.Ways)) {
		return fmt.Errorf("cache: ways must be a power of two, got %d", c.Ways)
	}
	lines := c.Size / c.LineSize
	if lines == 0 || lines%uint64(c.Ways) != 0 || lines/uint64(c.Ways) == 0 {
		return fmt.Errorf("cache: size %d / line %d does not divide into %d ways",
			c.Size, c.LineSize, c.Ways)
	}
	return nil
}

// Name renders the configuration the way the paper's tables do.
func (c Config) Name() string {
	if c.Ways == 1 {
		return addr.Bytes(c.Size) + " DM"
	}
	return fmt.Sprintf("%s %d-way", addr.Bytes(c.Size), c.Ways)
}

// line is one cache line's metadata. Data contents are never modelled;
// a trace-driven simulator only needs tags and state bits.
type line struct {
	tag   uint64
	asid  uint16
	valid bool
	dirty bool
}

// Cache is a trace-driven set-associative cache with write-back,
// write-allocate semantics. It implements engine.Cache.
type Cache struct {
	cfg    Config
	sets   int
	ways   int
	shift  uint // log2(lineSize)
	mask   uint64
	lines  []line // sets*ways, way-major within a set
	policy Policy
	ledger stats.Ledger

	// ins holds the telemetry instruments (nil by default: the access
	// path pays one pointer check when metrics are off).
	ins *cacheInstruments
}

var _ engine.Cache = (*Cache)(nil)

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if cfg.Policy == "" {
		cfg.Policy = LRU
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := int(cfg.Size / cfg.LineSize / uint64(cfg.Ways))
	policy, err := NewPolicy(cfg.Policy, sets, cfg.Ways, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Cache{
		cfg:    cfg,
		sets:   sets,
		ways:   cfg.Ways,
		shift:  addr.Log2(cfg.LineSize),
		mask:   uint64(sets - 1),
		lines:  make([]line, sets*cfg.Ways),
		policy: policy,
	}, nil
}

// MustNew is New for static configurations; it panics on invalid ones.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements engine.Cache.
func (c *Cache) Name() string { return c.cfg.Name() }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Ledger exposes the per-ASID hit/miss ledger.
func (c *Cache) Ledger() *stats.Ledger { return &c.ledger }

// Access implements engine.Cache.
func (c *Cache) Access(r trace.Ref) engine.Result {
	block := r.Addr >> c.shift
	set := int(block & c.mask)
	tag := block >> addr.Log2(uint64(c.sets))
	base := set * c.ways

	res := engine.Result{TagProbes: c.ways, DataReads: 1}

	// Parallel tag match across the set.
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			if r.Kind == trace.Write {
				ln.dirty = true
			}
			ln.asid = r.ASID
			c.policy.Touch(set, w)
			res.Hit = true
			c.ledger.Record(r.ASID, true)
			c.ins.record(true, res.TagProbes, 0)
			return res
		}
	}

	// Miss: fill an invalid way if one exists, else evict.
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.lines[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.policy.Victim(set)
		victim := &c.lines[base+way]
		res.LinesEvicted = 1
		if victim.dirty {
			res.Writebacks = 1
		}
	}
	c.lines[base+way] = line{
		tag:   tag,
		asid:  r.ASID,
		valid: true,
		dirty: r.Kind == trace.Write,
	}
	c.policy.Insert(set, way)
	res.LinesFetched = 1
	c.ledger.Record(r.ASID, false)
	c.ins.record(false, res.TagProbes, res.Writebacks)
	return res
}

// Contains reports whether the line holding a is resident. It is a
// read-only probe used by coherence and by tests; it does not perturb
// replacement state.
func (c *Cache) Contains(a uint64) bool {
	_, _, ln := c.find(a)
	return ln != nil
}

// Invalidate drops the line holding a if resident, returning whether it
// was dirty (the caller models the resulting writeback). Used by the
// coherence protocol in internal/cmp.
func (c *Cache) Invalidate(a uint64) (wasPresent, wasDirty bool) {
	_, _, ln := c.find(a)
	if ln == nil {
		return false, false
	}
	d := ln.dirty
	*ln = line{}
	return true, d
}

// Downgrade clears the dirty bit of a resident line (the MESI M/E -> S
// demotion a remote read forces; the caller models the writeback it
// implies). It reports whether the line was present and whether it was
// dirty.
func (c *Cache) Downgrade(a uint64) (present, wasDirty bool) {
	_, _, ln := c.find(a)
	if ln == nil {
		return false, false
	}
	d := ln.dirty
	ln.dirty = false
	return true, d
}

// find locates the resident line for address a.
func (c *Cache) find(a uint64) (set, way int, ln *line) {
	block := a >> c.shift
	set = int(block & c.mask)
	tag := block >> addr.Log2(uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].valid && c.lines[base+w].tag == tag {
			return set, w, &c.lines[base+w]
		}
	}
	return 0, 0, nil
}

// EachLine calls fn for every resident line with its reconstructed
// address, owning ASID and dirty bit — the invariant checker's view of
// the contents. Read-only.
func (c *Cache) EachLine(fn func(a uint64, asid uint16, dirty bool)) {
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		set := uint64(i / c.ways)
		a := ((ln.tag << addr.Log2(uint64(c.sets))) | set) << c.shift
		fn(a, ln.asid, ln.dirty)
	}
}

// ValidLines counts resident lines (a test and debugging aid).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// OccupancyByASID returns the number of resident lines per ASID,
// the quantity Suh-style partitioning schemes meter. Exposed for the
// interference analysis in the Table 1 experiment.
func (c *Cache) OccupancyByASID() map[uint16]int {
	out := make(map[uint16]int)
	for i := range c.lines {
		if c.lines[i].valid {
			out[c.lines[i].asid]++
		}
	}
	return out
}

// Flush invalidates the whole cache, returning the number of dirty lines
// that a real cache would have written back.
func (c *Cache) Flush() (writebacks int) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			writebacks++
		}
		c.lines[i] = line{}
	}
	return writebacks
}
