package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements the compact trace encoding ("MTC1"): a
// delta/varint format exploiting the regularities of memory traces —
// spatial locality makes consecutive same-ASID address deltas small, and
// long runs come from a single core. A typical L1-miss trace compresses
// 3-4x against the fixed 12-byte record format, which matters for the
// multi-gigabyte traces full-length experiments produce.
//
// Record layout: one tag byte
//
//	bit 0   kind (0 read, 1 write)
//	bit 1   ASID changed (followed by uvarint ASID)
//	bit 2   CPU changed (followed by one CPU byte)
//
// followed by a zig-zag varint of the address delta against the
// previous record *of the same ASID*.

// compressMagic identifies the compressed format.
var compressMagic = [4]byte{'M', 'T', 'C', '1'}

const (
	tagWrite     = 1 << 0
	tagASIDDelta = 1 << 1
	tagCPUDelta  = 1 << 2
)

// CompressedWriter encodes Refs in the compact format.
type CompressedWriter struct {
	w           *bufio.Writer
	wroteHeader bool
	count       uint64
	lastASID    uint16
	lastCPU     uint8
	lastAddr    map[uint16]uint64
	buf         []byte
}

// NewCompressedWriter returns a writer emitting the compact format to w.
func NewCompressedWriter(w io.Writer) *CompressedWriter {
	return &CompressedWriter{
		w:        bufio.NewWriter(w),
		lastAddr: make(map[uint16]uint64),
		buf:      make([]byte, 0, 2*binary.MaxVarintLen64+4),
	}
}

// Write appends one record.
func (cw *CompressedWriter) Write(r Ref) error {
	if !cw.wroteHeader {
		if _, err := cw.w.Write(compressMagic[:]); err != nil {
			return err
		}
		cw.wroteHeader = true
	}
	tag := byte(0)
	if r.Kind == Write {
		tag |= tagWrite
	}
	if cw.count == 0 || r.ASID != cw.lastASID {
		tag |= tagASIDDelta
	}
	if cw.count == 0 || r.CPU != cw.lastCPU {
		tag |= tagCPUDelta
	}
	cw.buf = cw.buf[:0]
	cw.buf = append(cw.buf, tag)
	if tag&tagASIDDelta != 0 {
		cw.buf = binary.AppendUvarint(cw.buf, uint64(r.ASID))
	}
	if tag&tagCPUDelta != 0 {
		cw.buf = append(cw.buf, r.CPU)
	}
	delta := int64(r.Addr - cw.lastAddr[r.ASID])
	cw.buf = binary.AppendVarint(cw.buf, delta)
	if _, err := cw.w.Write(cw.buf); err != nil {
		return err
	}
	cw.lastASID = r.ASID
	cw.lastCPU = r.CPU
	cw.lastAddr[r.ASID] = r.Addr
	cw.count++
	return nil
}

// Count returns the number of records written.
func (cw *CompressedWriter) Count() uint64 { return cw.count }

// Flush drains buffered output. Empty traces still carry the magic.
func (cw *CompressedWriter) Flush() error {
	if !cw.wroteHeader {
		if _, err := cw.w.Write(compressMagic[:]); err != nil {
			return err
		}
		cw.wroteHeader = true
	}
	return cw.w.Flush()
}

// CompressedReader decodes the compact format.
type CompressedReader struct {
	r        *bufio.Reader
	started  bool
	lastASID uint16
	lastCPU  uint8
	lastAddr map[uint16]uint64
}

// NewCompressedReader validates the header and wraps r.
func NewCompressedReader(r io.Reader) (*CompressedReader, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrBadMagic
		}
		return nil, err
	}
	if got != compressMagic {
		return nil, ErrBadMagic
	}
	return &CompressedReader{r: br, lastAddr: make(map[uint16]uint64)}, nil
}

// Read returns the next record, or io.EOF at the end of the trace.
func (cr *CompressedReader) Read() (Ref, error) {
	tag, err := cr.r.ReadByte()
	if err != nil {
		return Ref{}, err
	}
	var ref Ref
	if tag&tagWrite != 0 {
		ref.Kind = Write
	}
	if tag&tagASIDDelta != 0 {
		v, err := binary.ReadUvarint(cr.r)
		if err != nil {
			return Ref{}, truncated(err)
		}
		if v > 0xFFFF {
			return Ref{}, fmt.Errorf("trace: ASID %d out of range", v)
		}
		cr.lastASID = uint16(v)
	} else if !cr.started {
		return Ref{}, fmt.Errorf("trace: first record lacks an ASID")
	}
	if tag&tagCPUDelta != 0 {
		b, err := cr.r.ReadByte()
		if err != nil {
			return Ref{}, truncated(err)
		}
		cr.lastCPU = b
	}
	delta, err := binary.ReadVarint(cr.r)
	if err != nil {
		return Ref{}, truncated(err)
	}
	ref.ASID = cr.lastASID
	ref.CPU = cr.lastCPU
	ref.Addr = cr.lastAddr[ref.ASID] + uint64(delta)
	cr.lastAddr[ref.ASID] = ref.Addr
	cr.started = true
	return ref, nil
}

// ReadAll drains the reader.
func (cr *CompressedReader) ReadAll() ([]Ref, error) {
	var out []Ref
	for {
		r, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// truncated maps an unexpected end of stream to a descriptive error.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("trace: truncated compressed record: %w", io.ErrUnexpectedEOF)
	}
	return err
}
