package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"molcache/internal/rng"
)

func TestCompressedRoundTrip(t *testing.T) {
	refs := sampleRefs()
	var buf bytes.Buffer
	w := NewCompressedWriter(&buf)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(refs)) {
		t.Errorf("Count = %d", w.Count())
	}
	r, err := NewCompressedReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Errorf("round trip mismatch:\ngot  %v\nwant %v", got, refs)
	}
}

func TestCompressedEmptyAndBadMagic(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompressedWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewCompressedReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read on empty = %v, want EOF", err)
	}
	if _, err := NewCompressedReader(strings.NewReader("MTR1....")); err != ErrBadMagic {
		t.Errorf("wrong magic accepted: %v", err)
	}
}

func TestCompressedTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompressedWriter(&buf)
	if err := w.Write(Ref{Addr: 1 << 40, ASID: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewCompressedReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("truncated record read = %v, want error", err)
	}
}

// A local trace (sequential lines, one app) must compress well below the
// fixed 12-byte record size.
func TestCompressionRatioOnLocalTrace(t *testing.T) {
	var refs []Ref
	for i := 0; i < 10000; i++ {
		refs = append(refs, Ref{Addr: uint64(i) * 64, ASID: 3, CPU: 1})
	}
	var fixed, compact bytes.Buffer
	fw := NewWriter(&fixed)
	cw := NewCompressedWriter(&compact)
	for _, r := range refs {
		if err := fw.Write(r); err != nil {
			t.Fatal(err)
		}
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if compact.Len()*3 > fixed.Len() {
		t.Errorf("compact %dB vs fixed %dB: want >= 3x compression on a local trace",
			compact.Len(), fixed.Len())
	}
}

// Property: arbitrary interleaved multi-app traces round-trip exactly.
func TestCompressedRoundTripProperty(t *testing.T) {
	src := rng.New(17)
	f := func(n uint8) bool {
		refs := make([]Ref, int(n)+1)
		for i := range refs {
			refs[i] = Ref{
				Addr: src.Uint64(),
				ASID: uint16(src.Intn(5)),
				CPU:  uint8(src.Intn(4)),
				Kind: Kind(src.Intn(2)),
			}
		}
		var buf bytes.Buffer
		w := NewCompressedWriter(&buf)
		for _, r := range refs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		rd, err := NewCompressedReader(&buf)
		if err != nil {
			return false
		}
		got, err := rd.ReadAll()
		return err == nil && reflect.DeepEqual(got, refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
