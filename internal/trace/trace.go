// Package trace defines the memory-reference record that flows between
// every component of the simulator, plus binary and text serializations.
//
// The paper's methodology is trace-driven: a CMP simulator (SESC there,
// internal/cmp here) records the L1-data miss stream, and the cache under
// study (a modified Dinero there, internal/cache and internal/molecular
// here) replays it. A Ref is one record of that stream.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Ref is a single memory reference.
type Ref struct {
	// Addr is the physical byte address.
	Addr uint64
	// ASID is the Application Space Identifier of the issuing process.
	ASID uint16
	// CPU is the core the reference was issued from.
	CPU uint8
	// Kind is Read or Write.
	Kind Kind
}

func (r Ref) String() string {
	return fmt.Sprintf("%s asid=%d cpu=%d addr=%#x", r.Kind, r.ASID, r.CPU, r.Addr)
}

// recordSize is the fixed on-disk size of one binary record:
// 8 (addr) + 2 (asid) + 1 (cpu) + 1 (kind).
const recordSize = 12

// magic identifies the binary trace format ("MTR1").
var magic = [4]byte{'M', 'T', 'R', '1'}

// Writer encodes Refs into the binary trace format.
type Writer struct {
	w           *bufio.Writer
	wroteHeader bool
	count       uint64
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one record.
func (tw *Writer) Write(r Ref) error {
	if !tw.wroteHeader {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return err
		}
		tw.wroteHeader = true
	}
	var buf [recordSize]byte
	binary.LittleEndian.PutUint64(buf[0:8], r.Addr)
	binary.LittleEndian.PutUint16(buf[8:10], r.ASID)
	buf[10] = r.CPU
	buf[11] = byte(r.Kind)
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush drains buffered records to the underlying writer. Callers must
// Flush before closing the destination.
func (tw *Writer) Flush() error {
	if !tw.wroteHeader {
		// An empty trace still carries the magic so readers can
		// distinguish "empty trace" from "not a trace".
		if _, err := tw.w.Write(magic[:]); err != nil {
			return err
		}
		tw.wroteHeader = true
	}
	return tw.w.Flush()
}

// Reader decodes the binary trace format.
type Reader struct {
	r *bufio.Reader
}

// ErrBadMagic is returned by NewReader when the stream does not start
// with the trace magic.
var ErrBadMagic = errors.New("trace: bad magic (not a binary trace)")

// NewReader wraps r, validating the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrBadMagic
		}
		return nil, err
	}
	if got != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, or io.EOF at the end of the trace.
func (tr *Reader) Read() (Ref, error) {
	var buf [recordSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Ref{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Ref{}, err
	}
	return Ref{
		Addr: binary.LittleEndian.Uint64(buf[0:8]),
		ASID: binary.LittleEndian.Uint16(buf[8:10]),
		CPU:  buf[10],
		Kind: Kind(buf[11]),
	}, nil
}

// ReadAll drains the reader into a slice.
func (tr *Reader) ReadAll() ([]Ref, error) {
	var out []Ref
	for {
		r, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// WriteText emits a human-readable one-record-per-line form:
// "R|W <asid> <cpu> <hex addr>". It is the din-like interchange format.
func WriteText(w io.Writer, refs []Ref) error {
	bw := bufio.NewWriter(w)
	for _, r := range refs {
		if _, err := fmt.Fprintf(bw, "%s %d %d %#x\n", r.Kind, r.ASID, r.CPU, r.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTextLine parses one line of the text format.
func ParseTextLine(line string) (Ref, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Ref{}, fmt.Errorf("trace: want 4 fields, got %d in %q", len(fields), line)
	}
	var r Ref
	switch fields[0] {
	case "R", "r":
		r.Kind = Read
	case "W", "w":
		r.Kind = Write
	default:
		return Ref{}, fmt.Errorf("trace: bad kind %q", fields[0])
	}
	asid, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return Ref{}, fmt.Errorf("trace: bad asid %q: %w", fields[1], err)
	}
	cpu, err := strconv.ParseUint(fields[2], 10, 8)
	if err != nil {
		return Ref{}, fmt.Errorf("trace: bad cpu %q: %w", fields[2], err)
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(fields[3], "0x"), 16, 64)
	if err != nil {
		return Ref{}, fmt.Errorf("trace: bad addr %q: %w", fields[3], err)
	}
	r.ASID = uint16(asid)
	r.CPU = uint8(cpu)
	r.Addr = addr
	return r, nil
}

// ReadText parses the text format produced by WriteText. Blank lines and
// lines starting with '#' are skipped.
func ReadText(r io.Reader) ([]Ref, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []Ref
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ref, err := ParseTextLine(line)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, ref)
	}
	return out, sc.Err()
}

// FilterASID returns the subsequence of refs issued by asid.
func FilterASID(refs []Ref, asid uint16) []Ref {
	var out []Ref
	for _, r := range refs {
		if r.ASID == asid {
			out = append(out, r)
		}
	}
	return out
}

// Interleave merges per-source reference streams round-robin, one record
// from each non-exhausted stream per turn, which is the classic
// trace-driven approximation of concurrent execution. Streams may have
// different lengths; exhausted streams drop out.
func Interleave(streams ...[]Ref) []Ref {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Ref, 0, total)
	idx := make([]int, len(streams))
	for remaining := total; remaining > 0; {
		for i, s := range streams {
			if idx[i] < len(s) {
				out = append(out, s[idx[i]])
				idx[i]++
				remaining--
			}
		}
	}
	return out
}
