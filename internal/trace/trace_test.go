package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRefs() []Ref {
	return []Ref{
		{Addr: 0x1000, ASID: 1, CPU: 0, Kind: Read},
		{Addr: 0xdeadbeef, ASID: 2, CPU: 1, Kind: Write},
		{Addr: 0xffffffffffffffc0, ASID: 65535, CPU: 255, Kind: Read},
		{Addr: 0, ASID: 0, CPU: 0, Kind: Write},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	refs := sampleRefs()
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if w.Count() != uint64(len(refs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(refs))
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Errorf("round trip mismatch:\ngot  %v\nwant %v", got, refs)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader on empty trace: %v", err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read on empty trace = %v, want io.EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("not a trace")); err != ErrBadMagic {
		t.Errorf("NewReader = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(strings.NewReader("")); err != ErrBadMagic {
		t.Errorf("NewReader on empty input = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Ref{Addr: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3] // chop the final record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("Read on truncated record = %v, want a truncation error", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	refs := sampleRefs()
	var buf bytes.Buffer
	if err := WriteText(&buf, refs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Errorf("text round trip mismatch:\ngot  %v\nwant %v", got, refs)
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nR 1 0 0x40\n  \nW 2 1 0x80\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Ref{
		{Addr: 0x40, ASID: 1, CPU: 0, Kind: Read},
		{Addr: 0x80, ASID: 2, CPU: 1, Kind: Write},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestParseTextLineErrors(t *testing.T) {
	bad := []string{
		"R 1 0",      // too few fields
		"X 1 0 0x40", // bad kind
		"R notanum 0 0x40",
		"R 1 999 0x40 extra",
		"R 1 0 zz",
	}
	for _, line := range bad {
		if _, err := ParseTextLine(line); err == nil {
			t.Errorf("ParseTextLine(%q) succeeded, want error", line)
		}
	}
}

func TestFilterASID(t *testing.T) {
	refs := sampleRefs()
	got := FilterASID(refs, 2)
	if len(got) != 1 || got[0].Addr != 0xdeadbeef {
		t.Errorf("FilterASID = %v", got)
	}
	if got := FilterASID(refs, 99); got != nil {
		t.Errorf("FilterASID(absent) = %v, want nil", got)
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := []Ref{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	b := []Ref{{Addr: 10}}
	c := []Ref{{Addr: 100}, {Addr: 200}}
	got := Interleave(a, b, c)
	wantAddrs := []uint64{1, 10, 100, 2, 200, 3}
	if len(got) != len(wantAddrs) {
		t.Fatalf("len = %d, want %d", len(got), len(wantAddrs))
	}
	for i, w := range wantAddrs {
		if got[i].Addr != w {
			t.Errorf("pos %d: addr %d, want %d", i, got[i].Addr, w)
		}
	}
}

func TestInterleaveEmpty(t *testing.T) {
	if got := Interleave(); len(got) != 0 {
		t.Errorf("Interleave() = %v", got)
	}
	if got := Interleave(nil, nil); len(got) != 0 {
		t.Errorf("Interleave(nil,nil) = %v", got)
	}
}

// Property: binary round trip preserves any record exactly.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(addr uint64, asid uint16, cpu uint8, kindBit bool) bool {
		ref := Ref{Addr: addr, ASID: asid, CPU: cpu, Kind: Read}
		if kindBit {
			ref.Kind = Write
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(ref); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Read()
		return err == nil && got == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Interleave preserves per-stream order and total length.
func TestInterleavePreservesOrderProperty(t *testing.T) {
	f := func(lens [3]uint8) bool {
		var streams [][]Ref
		for si, n := range lens {
			n := int(n % 20)
			s := make([]Ref, n)
			for i := range s {
				s[i] = Ref{ASID: uint16(si), Addr: uint64(i)}
			}
			streams = append(streams, s)
		}
		merged := Interleave(streams...)
		total := 0
		next := make([]uint64, 3)
		for _, r := range merged {
			if r.Addr != next[r.ASID] {
				return false
			}
			next[r.ASID]++
			total++
		}
		want := 0
		for _, s := range streams {
			want += len(s)
		}
		return total == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
