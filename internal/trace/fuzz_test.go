package trace

import (
	"bytes"
	"io"
	"testing"
)

// encodeSeed builds a small valid binary trace for the fuzz corpora.
func encodeSeed(t testing.TB, compressed bool) []byte {
	refs := []Ref{
		{Addr: 0x1000, ASID: 1, CPU: 0, Kind: Read},
		{Addr: 0x1040, ASID: 1, CPU: 0, Kind: Write},
		{Addr: 0xffff_ffff_0000, ASID: 0xFFFF, CPU: 3, Kind: Read},
	}
	var buf bytes.Buffer
	if compressed {
		w := NewCompressedWriter(&buf)
		for _, r := range refs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	} else {
		w := NewWriter(&buf)
		for _, r := range refs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// refsFromBytes derives a record list from raw fuzz input, so the same
// corpus also exercises the encode side.
func refsFromBytes(data []byte) []Ref {
	var refs []Ref
	for i := 0; i+11 < len(data) && len(refs) < 1024; i += 12 {
		refs = append(refs, Ref{
			Addr: uint64(data[i]) | uint64(data[i+1])<<8 | uint64(data[i+2])<<24 |
				uint64(data[i+3])<<40 | uint64(data[i+4])<<56,
			ASID: uint16(data[i+5]) | uint16(data[i+6])<<8,
			CPU:  data[i+7],
			Kind: Kind(data[i+8] & 1),
		})
	}
	return refs
}

// FuzzReader feeds arbitrary bytes to the fixed-record binary reader:
// it must reject or truncate cleanly, never panic, and any byte stream
// produced by the Writer must decode to exactly what was written.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MTR"))
	f.Add([]byte("MTR1"))
	f.Add([]byte("MTR1 truncated record"))
	f.Add([]byte("not a trace at all"))
	f.Add(encodeSeed(f, false))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode arbitrary bytes: errors are fine, panics are not.
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			if _, err := r.ReadAll(); err != nil && err != io.EOF {
				_ = err // truncation errors are expected
			}
		}

		// Round-trip records derived from the same input.
		refs := refsFromBytes(data)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range refs {
			if err := w.Write(r); err != nil {
				t.Fatalf("Write(%v): %v", r, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reopen own encoding: %v", err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if len(got) != len(refs) {
			t.Fatalf("round trip %d records, got %d", len(refs), len(got))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("record %d: wrote %v, read %v", i, refs[i], got[i])
			}
		}
	})
}

// FuzzCompressedReader does the same for the delta/varint format, whose
// decoder has real parsing state (tag bits, varints, per-ASID address
// bases) and therefore real crash surface.
func FuzzCompressedReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MTC1"))
	f.Add([]byte("MTC1\x00"))
	f.Add([]byte("MTC1\x03\x01\x02\x80"))
	f.Add([]byte("MTC1\x02\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add(encodeSeed(f, true))
	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := NewCompressedReader(bytes.NewReader(data)); err == nil {
			if refs, err := r.ReadAll(); err == nil {
				// A cleanly-decoded stream must re-encode losslessly.
				var buf bytes.Buffer
				w := NewCompressedWriter(&buf)
				for _, ref := range refs {
					if err := w.Write(ref); err != nil {
						t.Fatalf("re-encode %v: %v", ref, err)
					}
				}
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
				r2, err := NewCompressedReader(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("reopen re-encoding: %v", err)
				}
				got, err := r2.ReadAll()
				if err != nil {
					t.Fatalf("decode re-encoding: %v", err)
				}
				if len(got) != len(refs) {
					t.Fatalf("re-encode %d records, got %d", len(refs), len(got))
				}
				for i := range refs {
					if got[i] != refs[i] {
						t.Fatalf("record %d: had %v, got %v", i, refs[i], got[i])
					}
				}
			}
		}

		// And the writer handles arbitrary records: encode records
		// derived from the input and verify the decode matches.
		refs := refsFromBytes(data)
		var buf bytes.Buffer
		w := NewCompressedWriter(&buf)
		for _, ref := range refs {
			if err := w.Write(ref); err != nil {
				t.Fatalf("Write(%v): %v", ref, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewCompressedReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reopen own encoding: %v", err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if len(got) != len(refs) {
			t.Fatalf("round trip %d records, got %d", len(refs), len(got))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("record %d: wrote %v, read %v", i, refs[i], got[i])
			}
		}
	})
}

// FuzzParseTextLine guards the din-style text parser.
func FuzzParseTextLine(f *testing.F) {
	f.Add("R 1 0 0x1000")
	f.Add("W 65535 255 0xffffffffffffffff")
	f.Add("")
	f.Add("X 1 2 3")
	f.Add("R -1 0 0x0")
	f.Fuzz(func(t *testing.T, line string) {
		ref, err := ParseTextLine(line)
		if err != nil {
			return
		}
		// A parsed record survives the write-parse round trip.
		var buf bytes.Buffer
		if err := WriteText(&buf, []Ref{ref}); err != nil {
			t.Fatal(err)
		}
		back, err := ParseTextLine(string(bytes.TrimSpace(buf.Bytes())))
		if err != nil {
			t.Fatalf("re-parse of %q (from %v): %v", buf.String(), ref, err)
		}
		if back != ref {
			t.Fatalf("round trip: %v -> %q -> %v", ref, buf.String(), back)
		}
	})
}
