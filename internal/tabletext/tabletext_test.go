package tabletext

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("missing title: %q", lines[0])
	}
	// Header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	// Column 2 must start at the same offset in both data rows.
	off3 := strings.Index(lines[3], "1")
	off4 := strings.Index(lines[4], "22")
	if off3 != off4 {
		t.Errorf("value column misaligned: %d vs %d\n%s", off3, off4, out)
	}
}

func TestTableRowf(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRowf("x", 0.123456, 42)
	out := tb.String()
	if !strings.Contains(out, "0.1235") {
		t.Errorf("float not formatted: %s", out)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("int missing: %s", out)
	}
}

func TestTableMissingCells(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only-a")
	tb.AddRow("x", "y", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cell not dropped")
	}
}

func TestBarChartLinear(t *testing.T) {
	c := NewBarChart("t", false, 10)
	c.Add("a", 10)
	c.Add("b", 5)
	out := c.String()
	la := strings.Count(strings.Split(out, "\n")[1], "#")
	lb := strings.Count(strings.Split(out, "\n")[2], "#")
	if la != 10 || lb != 5 {
		t.Errorf("bar lengths = %d, %d; want 10, 5\n%s", la, lb, out)
	}
}

func TestBarChartLog(t *testing.T) {
	c := NewBarChart("t", true, 40)
	c.Add("big", 1)
	c.Add("mid", 0.001)
	c.Add("tiny", 0.000001)
	out := strings.Split(c.String(), "\n")
	big := strings.Count(out[1], "#")
	mid := strings.Count(out[2], "#")
	tiny := strings.Count(out[3], "#")
	if !(big > mid && mid > tiny && tiny >= 1) {
		t.Errorf("log bars not ordered: %d, %d, %d", big, mid, tiny)
	}
	// Log scale: mid should be about halfway between tiny and big.
	if mid < tiny+10 {
		t.Errorf("log scaling looks linear: %d, %d, %d", big, mid, tiny)
	}
}

func TestBarChartZeroValue(t *testing.T) {
	c := NewBarChart("", true, 10)
	c.Add("zero", 0)
	c.Add("one", 1)
	out := strings.Split(c.String(), "\n")
	if strings.Count(out[0], "#") != 0 {
		t.Errorf("zero value drew a bar: %q", out[0])
	}
}

func TestBarChartEmpty(t *testing.T) {
	if out := NewBarChart("empty", false, 5).String(); out != "empty\n" {
		t.Errorf("empty chart = %q", out)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Fig", "size", "1MB", "2MB")
	s.Set("DM", 0, 0.5)
	s.Set("DM", 1, 0.4)
	s.Set("Molecular", 1, 0.1)
	out := s.String()
	if !strings.Contains(out, "size") || !strings.Contains(out, "DM") {
		t.Errorf("missing headers: %s", out)
	}
	if !strings.Contains(out, "0.4000") || !strings.Contains(out, "0.1000") {
		t.Errorf("missing values: %s", out)
	}
	// Missing cell renders as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing cell not dashed: %s", out)
	}
}
