// Package tabletext renders the experiment results as aligned ASCII
// tables and simple charts, so cmd/experiments can print the paper's
// tables and figures directly to a terminal.
package tabletext

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with %v (floats with %.4f).
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.4f", v)
		case float32:
			out[i] = fmt.Sprintf("%.4f", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// BarChart renders named values as horizontal bars. With logScale, bar
// length is proportional to log10(value/min) — the rendering Figure 6
// needs for its seven-decade HPM axis.
type BarChart struct {
	title    string
	logScale bool
	names    []string
	values   []float64
	width    int
}

// NewBarChart returns a chart; width is the maximum bar length in
// characters (default 50 when <= 0).
func NewBarChart(title string, logScale bool, width int) *BarChart {
	if width <= 0 {
		width = 50
	}
	return &BarChart{title: title, logScale: logScale, width: width}
}

// Add appends one bar.
func (c *BarChart) Add(name string, value float64) {
	c.names = append(c.names, name)
	c.values = append(c.values, value)
}

// String renders the chart.
func (c *BarChart) String() string {
	var b strings.Builder
	if c.title != "" {
		b.WriteString(c.title)
		b.WriteByte('\n')
	}
	if len(c.values) == 0 {
		return b.String()
	}
	nameW := 0
	for _, n := range c.names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range c.values {
		if v > 0 && v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	for i, v := range c.values {
		frac := 0.0
		switch {
		case v <= 0 || max <= 0:
			frac = 0
		case !c.logScale:
			frac = v / max
		case max == min:
			frac = 1
		default:
			frac = (math.Log10(v) - math.Log10(min)) /
				(math.Log10(max) - math.Log10(min))
		}
		if frac < 0 {
			frac = 0
		}
		n := int(frac*float64(c.width-1)) + 1
		if v <= 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s  %s %.3g\n", nameW, c.names[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// Series renders an x-indexed multi-series table (Figure 5's shape: one
// row per cache size, one column per configuration).
type Series struct {
	title  string
	xLabel string
	xs     []string
	names  []string
	data   map[string][]float64 // series name -> values aligned with xs
}

// NewSeries returns a series set over the given x labels.
func NewSeries(title, xLabel string, xs ...string) *Series {
	return &Series{title: title, xLabel: xLabel, xs: xs, data: map[string][]float64{}}
}

// Set stores the value for (series, x index).
func (s *Series) Set(series string, xIdx int, v float64) {
	if _, ok := s.data[series]; !ok {
		s.names = append(s.names, series)
		s.data[series] = make([]float64, len(s.xs))
		for i := range s.data[series] {
			s.data[series][i] = math.NaN()
		}
	}
	s.data[series][xIdx] = v
}

// String renders the series as a table, one row per x value.
func (s *Series) String() string {
	t := New(s.title, append([]string{s.xLabel}, s.names...)...)
	for i, x := range s.xs {
		cells := []string{x}
		for _, n := range s.names {
			v := s.data[n][i]
			if math.IsNaN(v) {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.4f", v))
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}
