package analysis

// Intraprocedural def/use helpers shared by the dataflow rules:
// field-mention tracking over go/types objects (snapshot-coverage) and
// lvalue/receiver chain classification (lane-confinement,
// hotpath-alloc).

import (
	"go/ast"
	"go/types"
)

// structFields returns the field objects of a named struct type, in
// declaration order, or nil when the type is not a struct.
func structFields(named *types.Named) []*types.Var {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	out := make([]*types.Var, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		out = append(out, st.Field(i))
	}
	return out
}

// fieldMentions scans the bodies of the given nodes for any mention of
// the given fields — a selector expression resolving to the field, or a
// composite-literal key naming it — and returns the mentioned subset.
// Mention (not store/load distinction) is deliberate: a capture closure
// reads fields into a state struct, a restore closure assigns them, and
// either way an untouched field is the bug the rule exists to catch.
func fieldMentions(nodes []*FuncNode, fields map[*types.Var]bool) map[*types.Var]bool {
	mentioned := map[*types.Var]bool{}
	for _, n := range nodes {
		info := n.Pkg.Info
		ast.Inspect(n.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.SelectorExpr:
				if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
					if v, ok := s.Obj().(*types.Var); ok && fields[v] {
						mentioned[v] = true
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := x.Key.(*ast.Ident); ok {
					if v, ok := info.Uses[key].(*types.Var); ok && fields[v] {
						mentioned[v] = true
					}
				}
			}
			return true
		})
	}
	return mentioned
}

// samePackageClosure expands roots to every node of the same package
// reachable through the call graph — the "closure" the snapshot rule
// checks: CaptureState plus the private helpers it delegates to.
func samePackageClosure(g *CallGraph, roots []*FuncNode, pkgPath string) []*FuncNode {
	reach := g.Reachable(roots, func(n *FuncNode) bool { return n.Pkg.Path == pkgPath })
	var out []*FuncNode
	for _, n := range g.Nodes() { // deterministic order
		if reach[n] {
			out = append(out, n)
		}
	}
	return out
}

// chainRoot walks an lvalue or receiver expression (c.regions[i].lines)
// down to its base identifier and reports whether the chain passes
// through a lane-owned type (a named type whose name contains
// "Lane"/"lane" — the accessLane/ShardLane protocol convention) or
// through the shared Cache. Classification is first-hit-wins walking
// from the leaf toward the base: the innermost owner decides, so
// c.lane.hits is lane-owned even though the chain starts at the Cache,
// while e.cache.total is shared even though e is a local.
func chainRoot(p *Package, e ast.Expr) (base *ast.Ident, viaLane, viaCache bool) {
	note := func(t types.Type) {
		if viaLane || viaCache {
			return
		}
		if isLaneType(t) {
			viaLane = true
		} else if isCacheType(t) {
			viaCache = true
		}
	}
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			note(p.typeOf(x))
			return x, viaLane, viaCache
		case *ast.SelectorExpr:
			note(p.typeOf(x.X))
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			// A store through a call result (f().x = v) has no stable
			// base; classify by the call's own type.
			note(p.typeOf(x))
			return nil, viaLane, viaCache
		default:
			return nil, viaLane, viaCache
		}
	}
}

// typeOf returns the static type of e, or nil.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isLaneType reports whether t (or its pointee) is a named type whose
// name marks it lane-owned under the ShardLane protocol.
func isLaneType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return len(name) >= 4 && (containsFold(name, "Lane"))
}

// containsFold reports whether s contains sub, ASCII case-insensitive
// on the first letter only ("Lane" matches both ShardLane and
// laneBuffer's "lane").
func containsFold(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	lower := sub[0] | 0x20
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i]|0x20 == lower && s[i+1:i+len(sub)] == sub[1:] {
			return true
		}
	}
	return false
}

// isCacheType reports whether t (or its pointee) is the shared
// molecular Cache type — the shared-state root the lane rule polices.
func isCacheType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Cache" && obj.Pkg() != nil && matchSuffix(obj.Pkg().Path(), "internal/molecular")
}
