package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// panicDisciplineRule keeps panic out of library control flow. The
// fault-injection work (PR 2) converted config-path panics to errors so
// a bad flag never takes down a sweep; this rule holds the line. panic
// stays legal in three places:
//
//   - package main (a command may crash on impossible states),
//   - init and constructor-shaped functions (New*/Must*) — invalid
//     static configuration is a programming error at the call site,
//   - functions whose doc comment declares the panic contract (the
//     word "panic" in the comment), which keeps documented invariant
//     guards like Registry.Counter honest: if it can panic, say so.
type panicDisciplineRule struct{}

func init() { Register(panicDisciplineRule{}) }

func (panicDisciplineRule) Name() string { return "panic-discipline" }

func (panicDisciplineRule) Doc() string {
	return "library panics only in init/New*/Must* or functions whose doc comment documents the panic"
}

func (r panicDisciplineRule) Check(cfg Config, pkg *Package) []Diagnostic {
	if pkg.IsMain() {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := pkg.Info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			fd := pkg.enclosingFunc(call)
			if fd != nil && panicSanctioned(fd) {
				return true
			}
			out = append(out, diag(pkg, call, r.Name(),
				"panic in library control flow; return an error, or document the panic contract in the function comment"))
			return true
		})
	}
	return out
}

// panicSanctioned reports whether fd may panic: init, a constructor
// (New*/Must*), or a documented panic contract.
func panicSanctioned(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	for _, prefix := range []string{"New", "new", "Must", "must"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	if name == "init" && fd.Recv == nil {
		return true
	}
	return fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
}
