// Package cg is the call-graph fixture: interface dispatch resolved by
// CHA (both Evict implementations become edges), a function literal
// with its own node, a goroutine launch, and a plain call chain. The
// golden test dumps the whole graph; edits here must be mirrored in
// testdata/cg.golden.
package cg

// Policy is dispatched through the interface: CHA resolves a call on it
// to every module implementation.
type Policy interface{ Evict() int }

// LRU is one implementation.
type LRU struct{ clock int }

// Evict implements Policy.
func (l *LRU) Evict() int { l.clock++; return l.clock }

// Random is the other implementation.
type Random struct{ seed int }

// Evict implements Policy.
func (r *Random) Evict() int { r.seed *= 1103515245; return r.seed }

// Run drives a policy (CHA edges to both Evicts), spawns a worker, and
// creates a literal — the literal call itself is indirect and stays
// unresolved, but the creation edge keeps its body reachable.
func Run(p Policy) int {
	go worker()
	f := func() int { return helper() }
	return p.Evict() + f()
}

// worker loops the helper once.
func worker() { helper() }

// helper is shared by the literal and the worker.
func helper() int { return 1 }
