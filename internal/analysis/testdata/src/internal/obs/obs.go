// Package obs is a molvet fixture seeded with the failure shapes the
// observability plane makes tempting: stamping an ASID into a span name
// with fmt.Sprintf (one telemetry-names finding), opening a span under
// a name outside the project namespaces (a second), and registering a
// histogram whose name is assembled dynamically with no literal head (a
// third). Its import path ends in internal/obs, so the suffix-matched
// scoping treats it exactly like the real package — which also means
// the goroutine below must NOT be diagnosed: internal/obs is on the
// concurrency allow-list. The literal-name span and histogram at the
// bottom are the sanctioned patterns and must stay diagnostic-free.
// The golden test pins every expected diagnostic; edits here must be
// mirrored in testdata/obs.golden.
package obs

import (
	"fmt"

	"molcache/internal/telemetry"
)

// TracePerApp stamps the ASID into the span name itself
// (telemetry-names) instead of tagging the span with its ASID argument.
func TracePerApp(st *telemetry.SpanTracer, asid uint16) {
	st.Begin(fmt.Sprintf("obs_publish_asid_%d", asid))
	st.End()
}

// TraceOffNamespace opens a span outside the project namespaces
// (telemetry-names).
func TraceOffNamespace(st *telemetry.SpanTracer) {
	st.BeginSolo("collectState", 1, 0)
	st.EndSolo()
}

// RegisterDynamic builds the histogram name at run time from a bare
// "obs_" head that names no metric (telemetry-names).
func RegisterDynamic(reg *telemetry.Registry, which string) {
	reg.Histogram("obs_"+which+"_latency_seconds", nil).Observe(1)
}

// Broadcast starts a goroutine — allowed here: internal/obs is on the
// concurrency allow-list, so this must produce no diagnostics.
func Broadcast(ch chan struct{}) {
	go func() { ch <- struct{}{} }()
}

// TraceCollect is the sanctioned span pattern — a literal obs_* name —
// and must produce no diagnostics.
func TraceCollect(st *telemetry.SpanTracer) {
	st.BeginSolo("obs_collect_state", 1, 0)
	st.EndSolo()
}

// RegisterLatency is the sanctioned histogram pattern — a literal obs_*
// name plus a label suffix — and must produce no diagnostics.
func RegisterLatency(reg *telemetry.Registry, label string) {
	reg.Histogram("obs_publish_latency_accesses"+label, nil).Observe(1)
}
