// Package server is a molvet fixture seeded with the failure shapes
// the serving layer makes tempting: stamping the verb into a counter
// name with fmt.Sprintf instead of the literal-head label-block idiom
// (one telemetry-names finding), discarding a telemetry sink's Flush
// error on the shutdown path (a sink-errors finding), and panicking in
// library control flow on a malformed request (a panic-discipline
// finding). Its import path ends in internal/server, so the
// suffix-matched scoping treats it exactly like the real package —
// which also means the connection goroutine and request channel below
// must NOT be diagnosed: internal/server is on the concurrency
// allow-list, because the serving layer's contract confines the cache
// to a single sim goroutine and crosses requests over channels. The
// literal label-block counter and the documented panic at the bottom
// are the sanctioned patterns and must stay diagnostic-free. The golden
// test pins every expected diagnostic; edits here must be mirrored in
// testdata/server.golden.
package server

import (
	"fmt"

	"molcache/internal/telemetry"
)

// CountRequest stamps the verb into the counter name itself with
// fmt.Sprintf (telemetry-names) instead of a literal name with a
// {label} block.
func CountRequest(reg *telemetry.Registry, verb string) {
	reg.Counter(fmt.Sprintf("molcache_server_requests_total_%s", verb)).Inc()
}

// DrainSink discards the sink's Flush error on the shutdown path
// (sink-errors): a journal that silently failed to flush invalidates
// the replay oracle with no evidence left behind.
func DrainSink(sink *telemetry.JSONLSink) {
	sink.Flush()
}

// Decode crashes on a malformed request in library control flow — an
// undocumented contract the rule must flag: the serving layer returns
// typed protocol errors, it never takes the daemon down on
// attacker-controlled bytes.
func Decode(line string) string {
	if line == "" {
		panic("server: empty request line")
	}
	return line
}

// Serve starts a connection goroutine fed by a request channel —
// allowed here: internal/server is on the concurrency allow-list, so
// this must produce no diagnostics.
func Serve(handle func(string)) chan string {
	reqCh := make(chan string, 16)
	go func() {
		for r := range reqCh {
			handle(r)
		}
	}()
	return reqCh
}

// CountVerb is the sanctioned counter pattern — a literal name whose
// head carries the {label} block — and must produce no diagnostics.
func CountVerb(reg *telemetry.Registry, verb string) {
	reg.Counter("molcache_server_requests_total{verb=" + verb + "}").Inc()
}

// MustVerb documents its panic contract: it panics when verb is empty,
// which the doc comment declares, so panic-discipline stays quiet.
func MustVerb(verb string) string {
	if verb == "" {
		panic("server: empty verb")
	}
	return verb
}
