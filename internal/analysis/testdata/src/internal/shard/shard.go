// Package shard is a molvet fixture seeded with the failure shapes the
// epoch-parallel engine makes tempting: timing an epoch with time.Since
// (one determinism finding — internal/shard is a simulation package, so
// its output feeds goldens), reading a worker count from the
// environment (a second), and publishing a shard partition by walking a
// map (one map-order finding). Its import path ends in internal/shard,
// so the suffix-matched scoping treats it exactly like the real package
// — which also means the goroutine fan-out and the channel below must
// NOT be diagnosed: internal/shard is on the concurrency allow-list.
// The golden test pins every expected diagnostic; edits here must be
// mirrored in testdata/shard.golden.
package shard

import (
	"os"
	"sync"
	"time"
)

// TimedEpoch stamps wall-clock duration into a simulation result
// (determinism): epoch timing belongs to the benchmark harness, not the
// engine.
func TimedEpoch(run func()) time.Duration {
	start := time.Now()
	run()
	return time.Since(start)
}

// WorkersFromEnv sizes the fan-out from the environment (determinism):
// shard counts are configuration, passed explicitly.
func WorkersFromEnv() string {
	return os.Getenv("MOLC_SHARDS")
}

// PartitionOrder leaks the runtime's random map walk into the published
// shard order (map-order).
func PartitionOrder(owners map[int]int) []int {
	var out []int
	for cl := range owners {
		out = append(out, cl)
	}
	return out
}

// FanOut is the sanctioned pattern — a goroutine per shard joined with
// a WaitGroup and a channel collecting results — and must produce no
// concurrency diagnostics: internal/shard owns the epoch workers.
func FanOut(work []func() int) []int {
	results := make(chan int, len(work))
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(w func() int) {
			defer wg.Done()
			results <- w()
		}(w)
	}
	wg.Wait()
	close(results)
	out := make([]int, 0, len(work))
	for r := range results {
		out = append(out, r)
	}
	return out
}
