// Package molecular is a molvet fixture seeded with the failure shapes
// the fast-path block index makes tempting: leaking iteration order out
// of an index-like map (two map-order findings) and stamping a region
// identity into a molcache_index_* metric name with fmt.Sprintf (one
// telemetry-names finding). Its import path ends in internal/molecular,
// so the suffix-matched rule scoping treats it exactly like the real
// simulation package. The literal-name registration at the bottom is
// the sanctioned pattern and must stay diagnostic-free. The golden test
// pins every expected diagnostic; edits here must be mirrored in
// testdata/molecular.golden.
package molecular

import (
	"fmt"

	"molcache/internal/telemetry"
)

// Blocks leaks the index's iteration order: appending per iteration
// publishes the runtime's random map walk (map-order).
func Blocks(index map[uint64]int) []uint64 {
	var out []uint64
	for b := range index {
		out = append(out, b)
	}
	return out
}

// Holder returns an arbitrary winner of the map walk — an early exit
// inside range-over-map (map-order).
func Holder(index map[uint64]int) int {
	for _, id := range index {
		return id
	}
	return -1
}

// RegisterPerRegion stamps the ASID into the metric name itself
// (telemetry-names) instead of appending a {label} block to a literal.
func RegisterPerRegion(reg *telemetry.Registry, asid uint16) {
	reg.Counter(fmt.Sprintf("molcache_index_%d_lookups_total", asid)).Inc()
}

// RegisterEntries is the sanctioned pattern — a literal molcache_index_*
// name plus a label suffix — and must produce no diagnostics.
func RegisterEntries(reg *telemetry.Registry, label string) {
	reg.Counter("molcache_index_lookups_total" + label).Inc()
}
