// Package cache is a molvet fixture seeded with determinism, map-order,
// lock-copy and panic-discipline violations. Its import path ends in
// internal/cache, so the suffix-matched rule scoping treats it exactly
// like the real simulation package. The golden test pins every expected
// diagnostic; edits here must be mirrored in testdata/cache.golden.
package cache

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"
)

// Stamp reads the wall clock in a simulation package (determinism).
func Stamp() time.Time {
	return time.Now()
}

// Tuning reads the environment and draws from the global math/rand
// source (two determinism findings).
func Tuning() int {
	if os.Getenv("CACHE_FAST") != "" {
		return 1
	}
	return rand.Intn(8)
}

// Sanctioned carries a reasoned ignore directive, so its clock read
// must NOT appear in the diagnostics.
func Sanctioned() time.Time {
	//molvet:ignore determinism fixture: a reasoned directive on the line above suppresses the finding
	return time.Now()
}

// First leaks map iteration order: the returned entry depends on the
// runtime's random map walk (map-order).
func First(m map[string]int) int {
	for _, v := range m {
		return v
	}
	return 0
}

// Misdirected exercises the directive pseudo-rule: the first marker
// names a rule that does not exist and the second has no reason; both
// are diagnosed, and neither suppresses the map-order finding below.
func Misdirected(m map[string]int) int {
	//molvet:ignore no-such-rule fixtures test the unknown-rule path
	//molvet:ignore determinism
	for _, v := range m {
		return v
	}
	return 0
}

// Guarded pairs a mutex with the counter it protects.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Snapshot takes a Guarded by value, copying its mutex (lock-copy).
func Snapshot(g Guarded) int {
	return g.n
}

// Explode aborts on negative input instead of returning an error, and
// its comment never documents that contract — so the discipline rule
// must flag it.
func Explode(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("cache: negative %d", n))
	}
	return n
}
