// Package engine is a molvet fixture seeded with concurrency,
// telemetry-name and sink-error violations. It imports the real
// internal/telemetry package, so the rules see the same receiver types
// they police in production code. The golden test pins every expected
// diagnostic; edits here must be mirrored in testdata/engine.golden.
package engine

import (
	"fmt"

	"molcache/internal/telemetry"
)

// Instrument assembles a metric name with fmt.Sprintf and registers a
// second one outside the project namespaces (two telemetry-name
// findings), then starts a goroutine over a fresh channel outside the
// sanctioned packages (two concurrency findings).
func Instrument(reg *telemetry.Registry, name string) chan int {
	reg.Counter(fmt.Sprintf("molcache_%s_total", name)).Inc()
	reg.Counter("BadName").Inc()
	ch := make(chan int)
	go func() { ch <- 1 }()
	return ch
}

// Shutdown drops the tracer's flush error on the floor (sink-errors).
func Shutdown(tr *telemetry.Tracer) {
	tr.Flush()
}
