// Package molecular is a molvet fixture for the snapshot-coverage
// rule: a persisted Cache whose checkpoint closure misses two fields.
// CaptureState delegates one read to a helper to exercise the
// same-package call-graph closure; deleting that helper's read (or any
// field's line in RestoreCache) reproduces the "forgot to checkpoint
// the new field" finding the rule exists for. The mutex is auto-exempt
// and the transient-marked index is sanctioned. Edits here must be
// mirrored in testdata/snapcov.golden.
package molecular

import "sync"

// CacheState is the persisted form.
type CacheState struct {
	Clock uint64
	Hits  uint64
	Seen  uint64
}

// Cache is the persisted struct the rule diffs against its closures.
type Cache struct {
	mu    sync.Mutex // auto-exempt: runtime-only synchronization
	clock uint64
	hits  uint64
	// misses never made it into CaptureState or RestoreCache: the
	// seeded capture finding.
	misses uint64
	// probes is read by CaptureState but never restored: the seeded
	// restore finding.
	probes uint64
	// index is rebuilt from restored state, and says so.
	//molvet:transient lookup index rebuilt from the restored clock
	index map[uint64]int
}

// CaptureState reads the persistent fields — clock through the helper,
// because the closure is call-graph reachability, not one body.
func (c *Cache) CaptureState() CacheState {
	return CacheState{Clock: c.clockNow(), Hits: c.hits, Seen: c.probes}
}

// clockNow is the capture helper CaptureState delegates to.
func (c *Cache) clockNow() uint64 { return c.clock }

// RestoreCache rebuilds a cache from st.
func RestoreCache(st CacheState) *Cache {
	c := &Cache{clock: st.Clock, index: map[uint64]int{}}
	c.hits = st.Hits
	return c
}
