// Package obs is a molvet fixture for the lock-order rule: Server.mu
// and State.mu are acquired in opposite orders on two paths — one
// direct, one through a helper, exercising the transitive propagation —
// and Reenter self-locks. The consistent lock/unlock pairs along the
// way must not be flagged on their own. Edits here must be mirrored in
// testdata/lockorder.golden.
package obs

import "sync"

// Server owns the handler lock.
type Server struct {
	mu    sync.Mutex
	state *State
}

// State owns the snapshot lock.
type State struct {
	mu  sync.Mutex
	seq uint64
}

// Publish locks Server.mu then takes State.mu through bump — the
// transitive half of the cycle.
func (s *Server) Publish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state.bump()
}

// bump acquires State.mu.
func (st *State) bump() {
	st.mu.Lock()
	st.seq++
	st.mu.Unlock()
}

// Collect takes the locks in the opposite order: State.mu then
// Server.mu — with Publish's order this closes the cycle.
func (st *State) Collect(s *Server) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	s.mu.Lock()
	seq := st.seq
	s.mu.Unlock()
	return seq
}

// Reenter deadlocks on its own: sync.Mutex is not reentrant.
func (s *Server) Reenter() {
	s.mu.Lock()
	s.mu.Lock() // self-loop: finding
	s.mu.Unlock()
	s.mu.Unlock()
}
