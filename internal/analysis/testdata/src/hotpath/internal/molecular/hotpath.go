// Package molecular is a molvet fixture for the hotpath-alloc rule:
// Cache.Access is a fast-path root whose closure commits each
// allocation idiom the rule flags — a retained append, an escaping
// composite literal, a fmt call, and interface boxing — next to the
// sanctioned shapes it must NOT flag: a local append, a panic message,
// and the CreateRegion stop. Edits here must be mirrored in
// testdata/hotpath.golden.
package molecular

import "fmt"

// Entry is a fill record.
type Entry struct {
	Addr uint64
	Way  int
}

// Cache is the fixture fast-path owner.
type Cache struct {
	name string
	log  []string
	last *Entry
}

// Access is the fast-path root (HotPathRoots).
func (c *Cache) Access(addr uint64) int {
	way := c.lookup(addr)
	if way < 0 {
		panic(fmt.Sprintf("molecular: bad way for %d", addr)) // panic args may allocate
	}
	return way
}

// lookup is reachable from Access and carries the seeded findings.
func (c *Cache) lookup(addr uint64) int {
	c.log = append(c.log, c.name)             // retained append: finding
	c.last = &Entry{Addr: addr}               // escaping literal: finding
	c.describe(fmt.Sprintf("probe %d", addr)) // fmt on the fast path: finding
	trace(addr)                               // boxing a uint64 into any: finding
	scratch := make([]int, 0, 4)
	scratch = append(scratch, int(addr)) // local append: not a finding
	return len(scratch) - 1
}

// describe records a preformatted label (string parameter: no boxing).
func (c *Cache) describe(s string) { _ = s }

// trace swallows a value; its any parameter is what boxes.
func trace(v any) { _ = v }

// CreateRegion is a sanctioned slow path (HotPathStops): its fmt call
// must not be flagged even when reached from the root.
func (c *Cache) CreateRegion(id uint16) {
	c.log = append(c.log, fmt.Sprintf("region %d", id))
}
