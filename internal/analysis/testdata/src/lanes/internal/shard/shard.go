// Package shard is the molvet fixture rooting the lane-confinement
// walk: RunEpoch fans out one goroutine per lane — the shard-goroutine
// roots the rule starts from — and commits the classic mistake of
// merging before the barrier. The post-join merge on the serial path
// must NOT be flagged. Edits here must be mirrored in
// testdata/lanes.golden.
package shard

import (
	molecular "molcache/internal/analysis/testdata/src/lanes/internal/molecular"
)

// Engine partitions refs across lanes.
type Engine struct {
	cache *molecular.Cache
	lanes []*molecular.ShardLane
}

// RunEpoch fans out the epoch workers. Merging mid-epoch from inside
// the goroutine is the seeded finding; the post-join merge is the
// sanctioned serial path.
func (e *Engine) RunEpoch(refs []molecular.Ref) {
	done := make(chan struct{}, len(e.lanes))
	for _, ln := range e.lanes {
		go func(ln *molecular.ShardLane) {
			for _, r := range refs {
				ln.Access(r)
			}
			e.cache.MergeLanes(e.lanes) // mid-epoch merge: finding
			done <- struct{}{}
		}(ln)
	}
	for range e.lanes {
		<-done
	}
	e.cache.MergeLanes(e.lanes) // after the join: serial, sanctioned
}
