// Package molecular is a molvet fixture for the lane-confinement rule:
// a miniature Cache/ShardLane pair seeded with the mid-epoch mistakes
// the rule exists to catch — a store to shared Cache state reached
// through the lane, and a package-level counter bump. The lane-owned
// deltas and the serial-guarded branch next to them must NOT be
// flagged. The module golden test walks this from the shard fixture's
// goroutine roots with only lane-confinement enabled; edits here must
// be mirrored in testdata/lanes.golden.
package molecular

// accesses is package-level state; bumping it mid-epoch is a finding.
var accesses uint64

// Ref is one trace reference.
type Ref struct{ Addr uint64 }

// Cache is the shared structure the lanes must not touch mid-epoch.
type Cache struct {
	total  uint64
	window uint64
	merges uint64
}

// ShardLane carries one shard's private deltas.
type ShardLane struct {
	cache *Cache
	shard bool
	hits  uint64
	evts  []uint64
}

// NewShardLane builds a lane over c.
func NewShardLane(c *Cache) *ShardLane { return &ShardLane{cache: c, shard: true} }

// Access services one reference mid-epoch. The lane-owned increments
// and the serial-guarded branch are fine; the descent into record is
// where the shared store hides.
func (ln *ShardLane) Access(ref Ref) {
	ln.hits++                           // lane-owned delta: fine
	ln.evts = append(ln.evts, ref.Addr) // lane-owned buffer: fine
	if !ln.shard {
		ln.cache.window++ // serial lane only: fine
	}
	accesses++ // package-level state mid-epoch: finding
	ln.cache.record(ref)
}

// record is reached mid-epoch through the lane, so its store to the
// shared total is a finding: the delta belongs on the ShardLane.
func (c *Cache) record(ref Ref) {
	c.total++
	_ = ref
}

// MergeLanes folds the deltas at the epoch barrier. Its body is
// boundary-serial (LaneSerialFuncs), so these stores are sanctioned —
// but calling it mid-epoch (see the shard fixture) is a finding.
func (c *Cache) MergeLanes(lanes []*ShardLane) {
	for _, ln := range lanes {
		c.total += ln.hits
		ln.hits = 0
	}
	c.merges++
}
