package analysis

// snapshot-coverage: every field of a persisted struct must flow
// through its checkpoint closure. PR 7's crash-safe restore only
// round-trips state that CaptureState reads and RestoreCache (and
// friends) write back; a field added later and forgotten in either
// place silently desynchronizes the restored run from the reference
// until the chaos soak trips over it. This rule turns that into a lint
// error: for each configured SnapshotSurface, diff the struct's fields
// against the mentions in the capture closure and the restore closure
// (the named functions plus every same-package function they reach in
// the call graph). A deliberately unpersisted field — derived state,
// live attachments, config mirrors — carries a
// `//molvet:transient reason` directive on or above its declaration.
//
// Soundness caveats: coverage is mention-based (a field the closure
// touches at all counts, with no read/write direction proof), and the
// closure cuts at package boundaries, so capture helpers in another
// package must be re-exported through a local wrapper to count.

import (
	"go/types"
)

func init() { Register(snapshotRule{}) }

type snapshotRule struct{}

func (snapshotRule) Name() string { return "snapshot-coverage" }

func (snapshotRule) Doc() string {
	return "every persisted struct field is covered by its capture and restore closures or marked //molvet:transient"
}

// Check is a no-op: the rule needs the cross-package call graph and
// runs once per module via CheckModule.
func (snapshotRule) Check(cfg Config, pkg *Package) []Diagnostic { return nil }

func (snapshotRule) CheckModule(cfg Config, mod *Module) []Diagnostic {
	g := mod.CallGraph()
	_, transients := mod.directives()
	var out []Diagnostic
	for _, surface := range cfg.Snapshots {
		for _, p := range mod.PackagesMatching([]string{surface.Package}) {
			out = append(out, checkSurface(g, transients, surface, p)...)
		}
	}
	return out
}

func checkSurface(g *CallGraph, transients transientSet, surface SnapshotSurface, p *Package) []Diagnostic {
	tn, ok := p.Types.Scope().Lookup(surface.Struct).(*types.TypeName)
	if !ok {
		// The package doesn't declare the struct (a fixture module
		// carrying only part of the real layout); nothing to check.
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	fields := structFields(named)
	if len(fields) == 0 {
		return nil
	}
	fieldSet := map[*types.Var]bool{}
	for _, f := range fields {
		fieldSet[f] = true
	}

	var out []Diagnostic
	closure := func(names []string, role string) []*FuncNode {
		var roots []*FuncNode
		for _, n := range g.Nodes() {
			if n.Pkg == p && n.Lit == nil && nameInList(n.Name, names) {
				roots = append(roots, n)
			}
		}
		if len(roots) == 0 {
			out = append(out, diagAt(p, tn.Pos(), "snapshot-coverage",
				"persisted struct %s has no %s function (want one of %v)",
				surface.Struct, role, names))
		}
		return samePackageClosure(g, roots, p.Path)
	}
	captured := fieldMentions(closure(surface.Capture, "capture"), fieldSet)
	restored := fieldMentions(closure(surface.Restore, "restore"), fieldSet)

	for _, f := range fields {
		if isMutexType(f.Type()) {
			continue // runtime-only synchronization state, never persisted
		}
		pos := p.Fset.Position(f.Pos())
		if transients.covers(pos) {
			continue
		}
		switch {
		case !captured[f]:
			out = append(out, diagAt(p, f.Pos(), "snapshot-coverage",
				"field %s.%s is not read by the %v closure; checkpoint it or mark it //molvet:transient with a reason",
				surface.Struct, f.Name(), surface.Capture))
		case !restored[f]:
			out = append(out, diagAt(p, f.Pos(), "snapshot-coverage",
				"field %s.%s is not written by the %v closure; restore it or mark it //molvet:transient with a reason",
				surface.Struct, f.Name(), surface.Restore))
		}
	}
	return out
}

// nameInList reports whether name equals any entry.
func nameInList(name string, list []string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex — the
// only fields auto-exempt from snapshot coverage.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
