package analysis

import (
	"go/ast"
)

// determinismRule forbids ambient-state reads in simulation packages.
// The golden-file tests and the -jobs byte-identity contract (PR 3)
// require that a simulation's output is a pure function of its inputs
// and seed: wall clocks, environment variables and the global math/rand
// source all smuggle in state that varies run to run.
type determinismRule struct{}

func init() { Register(determinismRule{}) }

func (determinismRule) Name() string { return "determinism" }

func (determinismRule) Doc() string {
	return "simulation packages must not read wall clocks (time.Now/Since), os.Getenv, or the global math/rand source"
}

// globalRandFuncs are the math/rand package-level functions that draw
// from the shared global source. rand.New/NewSource/NewZipf construct
// seeded local generators and stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

func (r determinismRule) Check(cfg Config, pkg *Package) []Diagnostic {
	if !matchAny(pkg.Path, cfg.SimPackages) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pkg.callsPackageFunc(call, "time", "Now"):
				out = append(out, diag(pkg, call, r.Name(),
					"time.Now in a simulation package; inject a Clock or take timestamps outside the simulation"))
			case pkg.callsPackageFunc(call, "time", "Since"):
				out = append(out, diag(pkg, call, r.Name(),
					"time.Since in a simulation package; inject a Clock or take timestamps outside the simulation"))
			case pkg.callsPackageFunc(call, "os", "Getenv"),
				pkg.callsPackageFunc(call, "os", "LookupEnv"),
				pkg.callsPackageFunc(call, "os", "Environ"):
				out = append(out, diag(pkg, call, r.Name(),
					"environment read in a simulation package; pass configuration explicitly"))
			default:
				if obj := pkg.calleeObject(call); obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "math/rand" && globalRandFuncs[obj.Name()] {
					out = append(out, diag(pkg, call, r.Name(),
						"global math/rand source in a simulation package; use a seeded internal/rng stream"))
				}
			}
			return true
		})
	}
	return out
}
