package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
)

// telemetryNamesRule pins metric and span names to grep-able literals.
// Every name handed to Registry.Counter/Gauge/Histogram/
// RegisterGaugeFunc — and every span name handed to SpanTracer.Begin/
// BeginSolo — must either be a constant matching the project namespaces
// (molcache_*, runner_*, resize_*, noc_*, obs_*, with an optional
// {label} block) or a concatenation whose leftmost operand is such a
// literal — the one sanctioned dynamic form, used to attach
// per-instance label blocks. Names assembled with fmt.Sprintf are
// banned outright: they defeat `grep -r metric_name` and invite
// per-iteration formatting on hot paths.
type telemetryNamesRule struct{}

func init() { Register(telemetryNamesRule{}) }

func (telemetryNamesRule) Name() string { return "telemetry-names" }

func (telemetryNamesRule) Doc() string {
	return "metric and span names must be literals (or literal-prefixed label concatenations) in the molcache_/runner_/resize_/noc_/obs_ namespaces, never fmt.Sprintf"
}

// registryMethods are the Registry entry points whose first argument is
// a metric name.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "RegisterGaugeFunc": true,
}

// spanMethods are the SpanTracer entry points whose first argument is a
// span name. (StartAccess/End take no name and need no check.)
var spanMethods = map[string]bool{
	"Begin": true, "BeginSolo": true,
}

// fullNameRE matches a complete metric or span name: namespace prefix,
// snake body, optional label block.
var fullNameRE = regexp.MustCompile(`^(molcache|runner|resize|noc|obs)_[a-z0-9_]+(\{.+\})?$`)

// prefixRE matches the literal head of a label-concatenation
// ("molcache_region_miss_rate" + label).
var prefixRE = regexp.MustCompile(`^(molcache|runner|resize|noc|obs)_[a-z0-9_]+(\{[^}]*)?$`)

func (r telemetryNamesRule) Check(cfg Config, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (!registryMethods[sel.Sel.Name] && !spanMethods[sel.Sel.Name]) {
				return true
			}
			recv := pkg.receiverType(call)
			if recv == nil || !typeDeclaredIn(recv, "internal/telemetry") {
				return true
			}
			if d, bad := r.checkName(pkg, call.Args[0]); bad {
				out = append(out, diag(pkg, call.Args[0], r.Name(), "%s", d))
			}
			return true
		})
	}
	return out
}

// checkName validates one name argument. It returns the message and
// whether the argument violates the rule.
func (r telemetryNamesRule) checkName(pkg *Package, arg ast.Expr) (string, bool) {
	if containsSprintf(pkg, arg) {
		return "metric name built with fmt.Sprintf; use a literal name with a {label} block", true
	}
	// Fully constant (literals, consts, literal concatenations): the
	// whole resolved value must match the namespace pattern.
	if tv, ok := pkg.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		if !fullNameRE.MatchString(name) {
			return "metric name " + quote(name) + " outside the molcache_/runner_/resize_/noc_/obs_ namespaces", true
		}
		return "", false
	}
	// Dynamic: the only sanctioned shape is literal-head concatenation,
	// e.g. "molcache_region_miss_rate" + label.
	if head, ok := leftmostConstant(pkg, arg); ok {
		if !prefixRE.MatchString(head) {
			return "dynamic metric name's literal prefix " + quote(head) + " outside the project namespaces", true
		}
		return "", false
	}
	return "metric name is not a string literal (or literal-prefixed concatenation)", true
}

// leftmostConstant resolves the leftmost operand of a + chain to its
// constant string value.
func leftmostConstant(pkg *Package, e ast.Expr) (string, bool) {
	for {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			break
		}
		e = bin.X
	}
	if tv, ok := pkg.Info.Types[ast.Unparen(e)]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// containsSprintf reports whether the expression tree calls
// fmt.Sprintf (or Sprint/Sprintln).
func containsSprintf(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := pkg.calleeObject(call); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "fmt" &&
			(obj.Name() == "Sprintf" || obj.Name() == "Sprint" || obj.Name() == "Sprintln") {
			found = true
			return false
		}
		return true
	})
	return found
}

// quote wraps a name for a message without importing strconv at every
// call site.
func quote(s string) string { return "\"" + s + "\"" }
