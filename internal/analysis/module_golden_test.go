package analysis

// Golden-file tests for the cross-package dataflow rules: each fixture
// module under testdata/src/<set>/ is loaded the way cmd/molvet loads a
// sweep, the one rule under test runs via RunModule, and the rendered
// diagnostics are diffed against testdata/<set>.golden (refreshable
// with -update, like the per-package goldens).

import (
	"strings"
	"testing"
)

// moduleFixtures maps each dataflow rule to its seeded fixture module.
var moduleFixtures = []struct {
	name string
	rule string
	pkgs []string
}{
	{"lanes", "lane-confinement", []string{"lanes/internal/molecular", "lanes/internal/shard"}},
	{"snapcov", "snapshot-coverage", []string{"snapcov/internal/molecular"}},
	{"hotpath", "hotpath-alloc", []string{"hotpath/internal/molecular"}},
	{"lockorder", "lock-order", []string{"lockorder/internal/obs"}},
}

// loadFixtureModule type-checks a set of fixture packages under one
// loader and wraps them as a Module.
func loadFixtureModule(t *testing.T, root string, rels []string) *Module {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, rel := range rels {
		pkgs = append(pkgs, loadFixture(t, l, rel))
	}
	return NewModule(pkgs)
}

func TestModuleGoldenDiagnostics(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range moduleFixtures {
		t.Run(fx.name, func(t *testing.T) {
			mod := loadFixtureModule(t, root, fx.pkgs)
			ds := RunModule(DefaultConfig(), mod, []string{fx.rule})
			if len(ds) == 0 {
				t.Fatal("fixture produced no diagnostics; the seeding is broken")
			}
			for _, d := range ds {
				if d.Rule != fx.rule {
					t.Errorf("unexpected rule %s in %s fixture: %s", d.Rule, fx.name, d)
				}
			}
			checkGolden(t, fx.name, render(t, root, ds))
		})
	}
}

// TestSnapshotCoverageCatchesDroppedField pins the acceptance contract
// directly: the fixture field CaptureState never reads (misses) and the
// field RestoreCache never writes (probes) are both findings, and the
// transient-marked and mutex fields are not.
func TestSnapshotCoverageCatchesDroppedField(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod := loadFixtureModule(t, root, []string{"snapcov/internal/molecular"})
	ds := RunModule(DefaultConfig(), mod, []string{"snapshot-coverage"})
	var gotMisses, gotProbes bool
	for _, d := range ds {
		if strings.Contains(d.Message, "Cache.misses") {
			gotMisses = true
		}
		if strings.Contains(d.Message, "Cache.probes") {
			gotProbes = true
		}
		for _, sanctioned := range []string{"Cache.index", "Cache.mu", "Cache.clock", "Cache.hits"} {
			if strings.Contains(d.Message, sanctioned+" ") {
				t.Errorf("covered or exempt field flagged: %s", d)
			}
		}
	}
	if !gotMisses {
		t.Error("uncaptured field misses produced no finding")
	}
	if !gotProbes {
		t.Error("unrestored field probes produced no finding")
	}
}

// TestLaneConfinementCatchesSharedWrite pins the other acceptance
// contract: the shared-state writes inside the fixture's shard lane are
// findings, while the lane-delta and serial-guarded writes are not.
func TestLaneConfinementCatchesSharedWrite(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod := loadFixtureModule(t, root, []string{"lanes/internal/molecular", "lanes/internal/shard"})
	ds := RunModule(DefaultConfig(), mod, []string{"lane-confinement"})
	var cacheStore, pkgStore, midMerge bool
	for _, d := range ds {
		switch {
		case strings.Contains(d.Message, "shared Cache state"):
			cacheStore = true
		case strings.Contains(d.Message, "package-level"):
			pkgStore = true
		case strings.Contains(d.Message, "Cache.MergeLanes"):
			midMerge = true
		}
	}
	if !cacheStore {
		t.Error("shared Cache store inside the lane produced no finding")
	}
	if !pkgStore {
		t.Error("package-level store inside the lane produced no finding")
	}
	if !midMerge {
		t.Error("mid-epoch MergeLanes call produced no finding")
	}
	if want, got := 3, len(ds); got != want {
		t.Errorf("lane fixture findings = %d, want %d (lane-owned and serial-guarded writes must stay clean): %v", got, want, ds)
	}
}
