// Package analysis is molvet's engine: a zero-dependency static-analysis
// framework that loads the whole module with go/parser and go/types and
// runs project rules over every package.
//
// The rules encode the contracts the rest of the repository depends on
// but the compiler cannot check:
//
//   - determinism: the golden-file tests (internal/experiments) and the
//     byte-identical parallel sweeps (internal/runner) only hold because
//     simulation code never reads wall clocks, environment variables or
//     the global math/rand source, and never emits output in map
//     iteration order.
//   - concurrency discipline: goroutines and channels are confined to
//     internal/runner, internal/telemetry and internal/obs, so the
//     simulation core stays single-threaded by construction and the
//     race detector's clean bill actually means something.
//   - telemetry discipline: metric and span names are grep-able string
//     literals in the project namespaces, never assembled with
//     fmt.Sprintf.
//   - error discipline: library packages reserve panic for constructor
//     validation and documented contracts, and telemetry sinks never
//     drop Write/Flush/Close errors.
//
// Each rule is a self-registered Rule implementation; diagnostics carry
// file:line:col positions and can be suppressed, one line at a time,
// with a reasoned `//molvet:ignore rule-name reason` directive.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one rule finding at a source position.
type Diagnostic struct {
	// Pos locates the finding (file, line, column).
	Pos token.Position `json:"-"`
	// File, Line and Col mirror Pos for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Rule is the reporting rule's name.
	Rule string `json:"rule"`
	// Message states the violation and, where useful, the fix.
	Message string `json:"message"`
}

// String renders the conventional file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Config scopes the rules to the project's package layout. Packages are
// matched by import-path suffix ("internal/cache" matches both
// molcache/internal/cache and a testdata package ending in
// internal/cache), so the rule set behaves identically over the real
// module and over seeded test fixtures.
type Config struct {
	// SimPackages are the simulation packages the determinism and
	// map-order rules police: their output feeds golden files, so wall
	// clocks, environment reads, global RNG state and map-ordered
	// emission are forbidden.
	SimPackages []string
	// MapOrderExtra are additional packages (beyond SimPackages) the
	// map-order rule covers — the telemetry exporters, whose snapshot
	// text is diffed by tests.
	MapOrderExtra []string
	// ConcurrencyAllowed are the only packages that may start goroutines
	// or create channels.
	ConcurrencyAllowed []string

	// LaneRootPackages are the packages whose go statements root the
	// lane-confinement walk — the only place shard goroutines are born.
	LaneRootPackages []string
	// LanePackages are the packages whose stores the lane-confinement
	// rule classifies once reached from a shard goroutine.
	LanePackages []string
	// LaneSerialFuncs are boundary-serial functions (Type.Method or
	// plain function names): bodies that only ever run between epochs,
	// so their shared-state stores are sanctioned.
	LaneSerialFuncs []string
	// LaneSafeCalls are out-of-walk methods (Type.Method) that are safe
	// from a shard lane even though they belong to shared structures
	// (e.g. NoC traversal into a lane-private stats sink).
	LaneSafeCalls []string

	// Snapshots are the persisted structs whose fields snapshot-coverage
	// diffs against their capture/restore closures.
	Snapshots []SnapshotSurface

	// HotPathRoots are the fast-path entry points (Type.Method) whose
	// call-graph closure hotpath-alloc keeps allocation-free.
	HotPathRoots []string
	// HotPathPackages bound the hotpath-alloc walk: only functions
	// declared in these packages are swept.
	HotPathPackages []string
	// HotPathStops are sanctioned slow-path functions (Type.Method or
	// plain names) the hotpath-alloc walk does not descend into —
	// refills, growth, retirement and error paths that may allocate.
	HotPathStops []string

	// LockPackages are the packages whose mutex acquisitions feed the
	// lock-order graph.
	LockPackages []string
}

// SnapshotSurface names one persisted struct and its checkpoint
// closure. Every field of Package.Struct must be read somewhere in the
// Capture closure AND written somewhere in the Restore closure (each
// closure = the named functions plus all same-package functions they
// reach), or carry a //molvet:transient reason directive.
type SnapshotSurface struct {
	// Package is the import-path suffix declaring the struct.
	Package string
	// Struct is the persisted struct type's name.
	Struct string
	// Capture are function or Type.Method names whose closure must read
	// every persistent field.
	Capture []string
	// Restore are function or Type.Method names whose closure must
	// write every persistent field.
	Restore []string
}

// DefaultConfig is the repository's contract.
func DefaultConfig() Config {
	return Config{
		SimPackages: []string{
			"internal/molecular",
			"internal/cache",
			"internal/engine",
			"internal/resize",
			"internal/experiments",
			"internal/cmp",
			"internal/noc",
			"internal/faults",
			"internal/runner",
			"internal/shard",
		},
		MapOrderExtra: []string{
			"internal/telemetry",
		},
		ConcurrencyAllowed: []string{
			"internal/runner",
			"internal/telemetry",
			// The observability plane runs an HTTP server and event
			// broadcast next to the single-threaded simulation; its
			// handlers only ever read published immutable snapshots.
			"internal/obs",
			// The sharded access engine owns the epoch worker
			// goroutines; internal/molecular itself stays goroutine-free
			// and exposes only the passive ShardLane protocol, so the
			// untracked-execution-stream argument holds everywhere else.
			"internal/shard",
			// The serving layer runs connection goroutines that decode
			// and reply only; the single sim goroutine owns the cache,
			// controller, journal and tenant table, and requests cross
			// between them on channels. cmd/molcached itself only makes
			// the signal channel its main loop blocks on.
			"internal/server",
			"cmd/molcached",
		},

		LaneRootPackages: []string{"internal/shard"},
		LanePackages: []string{
			"internal/molecular",
			"internal/shard",
		},
		LaneSerialFuncs: []string{
			// MergeLanes is the epoch barrier: it folds every lane's
			// private deltas into the shared cache after the workers join.
			"Cache.MergeLanes",
		},
		LaneSafeCalls: []string{
			// TraverseInto accumulates into the caller-supplied Stats —
			// the lane's private copy on the shard path.
			"Mesh.TraverseInto",
			// DelayWindowAt is a pure read of the materialized campaign.
			"Injector.DelayWindowAt",
		},

		Snapshots: []SnapshotSurface{
			{
				Package: "internal/molecular", Struct: "Cache",
				Capture: []string{"Cache.CaptureState"},
				Restore: []string{"RestoreCache"},
			},
			{
				Package: "internal/resize", Struct: "Controller",
				Capture: []string{"Controller.CaptureState"},
				Restore: []string{"Controller.RestoreState"},
			},
			{
				Package: "internal/faults", Struct: "Injector",
				Capture: []string{"Injector.CursorState"},
				Restore: []string{"Injector.RestoreCursors"},
			},
			{
				Package: "internal/noc", Struct: "Mesh",
				Capture: []string{"Mesh.Stats"},
				Restore: []string{"Mesh.RestoreStats"},
			},
			{
				Package: "internal/telemetry", Struct: "Registry",
				Capture: []string{"Registry.Snapshot"},
				Restore: []string{"Registry.LoadSnapshot"},
			},
		},

		HotPathRoots: []string{
			"Cache.Access",
			"Cache.AccessBatch",
			"Engine.Access",
			"Engine.AccessBatch",
		},
		HotPathPackages: []string{
			"internal/molecular",
			"internal/shard",
		},
		HotPathStops: []string{
			// Sanctioned slow paths off the fast path: structural growth,
			// degradation and the trace emission tail may allocate.
			"Cache.CreateRegion",
			"Cache.growMolecules",
			"Cache.RetireMolecule",
			"Cache.CorruptLine",
			"Cache.emitLane",
			// Epoch fan-out spawns goroutines by design; its cost is
			// amortized over the whole epoch.
			"Engine.runEpoch",
		},

		LockPackages: []string{
			"internal/obs",
			"internal/telemetry",
			"internal/shard",
			"internal/server",
		},
	}
}

// matchSuffix reports whether importPath is suffix or ends in /suffix.
func matchSuffix(importPath, suffix string) bool {
	return importPath == suffix || strings.HasSuffix(importPath, "/"+suffix)
}

// matchAny reports whether importPath matches any suffix in the list.
func matchAny(importPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if matchSuffix(importPath, s) {
			return true
		}
	}
	return false
}

// Rule is one checkable project contract. Implementations register
// themselves in an init func via Register.
type Rule interface {
	// Name is the short identifier diagnostics and ignore directives use.
	Name() string
	// Doc is a one-line description for molvet -rules.
	Doc() string
	// Check inspects one loaded package and returns its findings.
	Check(cfg Config, pkg *Package) []Diagnostic
}

var rules = map[string]Rule{}

// Register adds a rule to the global set; duplicate names are a
// programming error caught at init time. It panics on a duplicate.
func Register(r Rule) {
	if _, dup := rules[r.Name()]; dup {
		panic("analysis: duplicate rule " + r.Name())
	}
	rules[r.Name()] = r
}

// Rules returns every registered rule, sorted by name.
func Rules() []Rule {
	out := make([]Rule, 0, len(rules))
	for _, r := range rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// RuleNames returns the sorted registered rule names.
func RuleNames() []string {
	out := make([]string, 0, len(rules))
	for n := range rules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run checks pkg with every rule (or only the named ones when names is
// non-empty), applies the package's ignore directives, and returns the
// surviving diagnostics sorted by position. Malformed or reasonless
// directives are reported under the "directive" pseudo-rule.
func Run(cfg Config, pkg *Package, names []string) []Diagnostic {
	var selected []Rule
	if len(names) == 0 {
		selected = Rules()
	} else {
		for _, n := range names {
			if r, ok := rules[n]; ok {
				selected = append(selected, r)
			}
		}
	}
	ignores, _, bad := pkg.directives()
	var out []Diagnostic
	out = append(out, bad...)
	for _, r := range selected {
		for _, d := range r.Check(cfg, pkg) {
			if ignores.covers(r.Name(), d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}

// Sort orders diagnostics by file, line, column and rule — for callers
// that merge per-package and module-level findings into one report.
func Sort(ds []Diagnostic) { sortDiagnostics(ds) }

// sortDiagnostics orders by file, then line, then column, then rule.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// diag builds a Diagnostic for a node in pkg.
func diag(pkg *Package, node ast.Node, rule, format string, args ...any) Diagnostic {
	return diagAt(pkg, node.Pos(), rule, format, args...)
}

// diagAt builds a Diagnostic at a raw token position in pkg — for
// findings anchored to type objects (struct fields) rather than AST
// nodes.
func diagAt(pkg *Package, at token.Pos, rule, format string, args ...any) Diagnostic {
	pos := pkg.Fset.Position(at)
	return Diagnostic{
		Pos:     pos,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}
