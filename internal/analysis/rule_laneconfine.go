package analysis

// lane-confinement: from every goroutine launched in a LaneRootPackage
// (the shard engine's epoch workers), walk the call graph and prove
// each store that can execute mid-epoch targets lane-owned or
// lane-local state. PR 8's byte-identical sharded replay rests on the
// convention that shard goroutines mutate only their ShardLane's
// private deltas and their own cluster's Region/Molecule/Tile state —
// never shared Cache fields, package-level variables or non-atomic
// telemetry — until Cache.MergeLanes folds the deltas back at the
// epoch barrier. This rule makes that convention a lint error.
//
// Context tracking: a `.shard` field read is the protocol's lane
// discriminator, so the walker is path-sensitive about it —
//
//	if ln.shard { ... return }   // code below runs serial-only
//	if !ln.shard { serial } else { shard }
//	if ln.shard { panic(...) }   // code below runs serial-only
//
// Bodies of functions named in LaneSerialFuncs (MergeLanes) are
// boundary-serial and skipped entirely — but calling one mid-epoch is
// still a finding, because its receiver chain is shared Cache state.
//
// Store/call classification, in order: targets whose selector chain
// passes through a lane type (name contains "Lane"/"lane") are
// lane-owned; locals and parameters that are not the shared Cache are
// cluster-confined (the shard owns every cluster it touches — the
// runtime contract AssignClusters establishes); telemetry
// Counter/Gauge/Histogram cells are atomic; LaneSafeCalls are
// allow-listed; everything rooted at a Cache value or a package-level
// variable is a finding.
//
// Soundness caveats: calls through plain function values are invisible
// to the walk; address-of escapes (handing &c.field to a callee) are
// not tracked; and the cluster-confinement of locals is assumed, not
// proved — the differential oracle remains the second line of defense
// for those.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() { Register(laneRule{}) }

type laneRule struct{}

func (laneRule) Name() string { return "lane-confinement" }

func (laneRule) Doc() string {
	return "stores reachable from shard goroutines stay on ShardLane deltas or lane-local state until MergeLanes"
}

// Check is a no-op: the rule runs once per module via CheckModule.
func (laneRule) Check(cfg Config, pkg *Package) []Diagnostic { return nil }

func (laneRule) CheckModule(cfg Config, mod *Module) []Diagnostic {
	g := mod.CallGraph()
	w := &laneWalker{cfg: cfg, g: g, visited: map[*FuncNode]bool{}}
	for _, n := range g.Nodes() {
		if matchAny(n.Pkg.Path, cfg.LaneRootPackages) {
			for _, root := range n.GoTargets {
				w.enqueue(root)
			}
		}
	}
	for len(w.queue) > 0 {
		n := w.queue[0]
		w.queue = w.queue[1:]
		w.check(n)
	}
	return w.out
}

type laneWalker struct {
	cfg     Config
	g       *CallGraph
	visited map[*FuncNode]bool
	queue   []*FuncNode
	out     []Diagnostic

	// pkg is the package of the node currently being checked.
	pkg *Package
}

func (w *laneWalker) enqueue(n *FuncNode) {
	if n == nil || w.visited[n] {
		return
	}
	w.visited[n] = true
	w.queue = append(w.queue, n)
}

// check walks one function body that is reachable mid-epoch.
func (w *laneWalker) check(n *FuncNode) {
	if !matchAny(n.Pkg.Path, w.cfg.LanePackages) {
		return
	}
	if n.Obj != nil && matchFuncName(n.Obj, w.cfg.LaneSerialFuncs) {
		return
	}
	prev := w.pkg
	w.pkg = n.Pkg
	w.block(n.Body.List, true)
	w.pkg = prev
}

// block walks a statement list with the given shard-context flag,
// re-scoping the remainder of the list after a terminating `.shard`
// guard.
func (w *laneWalker) block(list []ast.Stmt, shard bool) {
	for i, s := range list {
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Init == nil {
			if neg, isGuard := shardCond(ifs.Cond); isGuard {
				thenCtx, elseCtx := shard, false
				if neg {
					thenCtx, elseCtx = false, shard
				}
				w.block(ifs.Body.List, thenCtx)
				if ifs.Else != nil {
					w.node(ifs.Else, elseCtx)
				}
				rest := shard
				if !neg && terminates(ifs.Body) {
					rest = false // shard lanes bailed out above
				}
				w.block(list[i+1:], rest)
				return
			}
		}
		w.node(s, shard)
	}
}

// node scans one statement (or else-branch) in the given context,
// handing nested blocks back to block and literals an inline walk.
func (w *laneWalker) node(n ast.Node, shard bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.BlockStmt:
			w.block(x.List, shard)
			return false
		case *ast.IfStmt:
			if neg, isGuard := shardCond(x.Cond); isGuard && x.Init == nil {
				thenCtx, elseCtx := shard, false
				if neg {
					thenCtx, elseCtx = false, shard
				}
				w.block(x.Body.List, thenCtx)
				if x.Else != nil {
					w.node(x.Else, elseCtx)
				}
				return false
			}
			return true
		case *ast.FuncLit:
			// A literal created mid-epoch may run mid-epoch: walk its
			// body in the current context instead of as a graph node.
			w.block(x.Body.List, shard)
			return false
		case *ast.AssignStmt:
			if shard && x.Tok != token.DEFINE {
				for _, lhs := range x.Lhs {
					w.store(lhs)
				}
			}
			return true
		case *ast.IncDecStmt:
			if shard {
				w.store(x.X)
			}
			return true
		case *ast.RangeStmt:
			if shard && x.Tok == token.ASSIGN {
				if x.Key != nil {
					w.store(x.Key)
				}
				if x.Value != nil {
					w.store(x.Value)
				}
			}
			return true
		case *ast.CallExpr:
			if shard {
				w.call(x)
			} else {
				// Serial context: still descend into lane-package
				// callees? No — serial-only code is outside the
				// contract; only the call graph edges taken in shard
				// context matter.
				_ = x
			}
			return true
		}
		return true
	})
}

// store classifies one mid-epoch lvalue.
func (w *laneWalker) store(lhs ast.Expr) {
	p := w.pkg
	base, viaLane, viaCache := chainRoot(p, lhs)
	if viaCache {
		w.out = append(w.out, diag(p, lhs, "lane-confinement",
			"mid-epoch store to shared Cache state from a shard lane; use a ShardLane delta and fold it in MergeLanes"))
		return
	}
	if viaLane {
		return
	}
	if base == nil {
		w.out = append(w.out, diag(p, lhs, "lane-confinement",
			"mid-epoch store through an unresolvable chain from a shard lane; route it through the ShardLane delta"))
		return
	}
	if base.Name == "_" {
		return
	}
	switch o := lookupIdent(p, base).(type) {
	case *types.PkgName:
		w.out = append(w.out, diag(p, lhs, "lane-confinement",
			"mid-epoch store to package-level state %s from a shard lane; fold it in MergeLanes instead", base.Name))
	case *types.Var:
		if packageLevel(o) {
			w.out = append(w.out, diag(p, lhs, "lane-confinement",
				"mid-epoch store to package-level variable %s from a shard lane; fold it in MergeLanes instead", base.Name))
		}
		// Locals and parameters: lane-local or cluster-confined.
	}
}

// call classifies one mid-epoch call: descend into lane-package
// callees, allow the safe lists, flag pointer-receiver methods on
// shared structures.
func (w *laneWalker) call(x *ast.CallExpr) {
	p := w.pkg
	obj, _ := p.calleeObject(x).(*types.Func)
	if obj == nil {
		return // builtin, conversion, or unresolved indirect call
	}
	if matchFuncName(obj, w.cfg.LaneSafeCalls) {
		return
	}
	if node := w.g.NodeFor(obj); node != nil &&
		matchAny(node.Pkg.Path, w.cfg.LanePackages) &&
		!matchFuncName(obj, w.cfg.LaneSerialFuncs) {
		w.enqueue(node)
		return
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return // plain function outside the walk: no receiver to mutate
	}
	if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
		return // value receiver cannot mutate shared state
	}
	if isAtomicCell(sig.Recv().Type()) {
		return
	}
	sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
	if !ok {
		return // method expression / value: unresolved, see caveats
	}
	base, viaLane, viaCache := chainRoot(p, sel.X)
	// The receiver itself is the mutated object; its own type outranks
	// anything noted along the chain (e.cache is shared Cache state no
	// matter that the base e is a local).
	switch t := p.typeOf(sel.X); {
	case isCacheType(t):
		viaCache, viaLane = true, false
	case isLaneType(t):
		viaLane, viaCache = true, false
	}
	shared := viaCache
	name := funcDisplayName(obj)
	if !shared && !viaLane {
		if base == nil {
			shared = true
		} else if bobj, okVar := lookupIdent(p, base).(*types.Var); okVar {
			shared = packageLevel(bobj)
		} else if _, isPkg := lookupIdent(p, base).(*types.PkgName); isPkg {
			shared = true
		}
	}
	if shared {
		w.out = append(w.out, diag(p, x, "lane-confinement",
			"mid-epoch call to %s may mutate shared state from a shard lane; defer it to MergeLanes or allow-list it in LaneSafeCalls", name))
	}
}

// shardCond matches the lane discriminator guard `X.shard` (neg=false)
// or `!X.shard` (neg=true).
func shardCond(cond ast.Expr) (neg, ok bool) {
	e := ast.Unparen(cond)
	if u, isNot := e.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		neg = true
		e = ast.Unparen(u.X)
	}
	sel, isSel := e.(*ast.SelectorExpr)
	return neg, isSel && sel.Sel.Name == "shard"
}

// terminates reports whether a block's last statement leaves the
// enclosing statement list: return, panic, or a branch statement.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// lookupIdent resolves an identifier's object (use or def).
func lookupIdent(p *Package, id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// packageLevel reports whether v is a package-level variable.
func packageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isAtomicCell reports whether t (or its pointee) is a telemetry
// Counter, Gauge or Histogram — atomic registry cells shard lanes may
// update directly.
func isAtomicCell(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !matchSuffix(obj.Pkg().Path(), "internal/telemetry") {
		return false
	}
	switch obj.Name() {
	case "Counter", "Gauge", "Histogram":
		return true
	}
	return false
}
