package analysis

import (
	"go/ast"
	"go/types"
)

// concurrencyRule confines goroutines and channels to the packages that
// own scheduling (internal/runner), observability (internal/telemetry,
// internal/obs) and the epoch-parallel access engine (internal/shard).
// Everything else in the simulation stack is single-threaded by
// construction — that is what makes `-jobs N` and sharded replay safe:
// jobs share no mutable state, shard workers only touch cluster-
// confined state behind the ShardLane protocol, and a `go` statement
// anywhere else would be an untracked execution stream the determinism
// contract cannot see.
type concurrencyRule struct{}

func init() { Register(concurrencyRule{}) }

func (concurrencyRule) Name() string { return "concurrency" }

func (concurrencyRule) Doc() string {
	return "go statements and channel creation only in the concurrency-owning packages (runner, telemetry, obs, shard)"
}

func (r concurrencyRule) Check(cfg Config, pkg *Package) []Diagnostic {
	if matchAny(pkg.Path, cfg.ConcurrencyAllowed) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.GoStmt:
				out = append(out, diag(pkg, stmt, r.Name(),
					"go statement outside the concurrency-owning packages; route parallel work through internal/runner"))
			case *ast.CallExpr:
				id, ok := ast.Unparen(stmt.Fun).(*ast.Ident)
				if !ok || id.Name != "make" || len(stmt.Args) == 0 {
					return true
				}
				if _, builtin := pkg.Info.Uses[id].(*types.Builtin); !builtin {
					return true
				}
				if tv, ok := pkg.Info.Types[stmt.Args[0]]; ok && tv.IsType() {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						out = append(out, diag(pkg, stmt, r.Name(),
							"channel creation outside the concurrency-owning packages; route parallel work through internal/runner"))
					}
				}
			}
			return true
		})
	}
	return out
}
