package analysis

import (
	"go/ast"
	"go/types"
)

// calleeObject resolves the object a call expression invokes (function,
// method or builtin), or nil for indirect calls through function values
// and for type conversions.
func (p *Package) calleeObject(call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fn]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Fn.
		return p.Info.Uses[fn.Sel]
	}
	return nil
}

// callsPackageFunc reports whether call invokes pkgPath.name (a
// package-level function, e.g. time.Now).
func (p *Package) callsPackageFunc(call *ast.CallExpr, pkgPath, name string) bool {
	obj := p.calleeObject(call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// receiverType returns the static type of a method call's receiver
// expression, or nil when call is not a method call.
func (p *Package) receiverType(call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return s.Recv()
	}
	return nil
}

// typeDeclaredIn reports whether t (or its pointee) is a named type
// declared in a package whose import path matches suffix.
func typeDeclaredIn(t types.Type, suffix string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && matchSuffix(pkg.Path(), suffix)
}

// enclosingFunc finds the innermost function declaration containing
// node in any of the package's files (nil when node is at file scope or
// inside a function literal only).
func (p *Package) enclosingFunc(node ast.Node) *ast.FuncDecl {
	for _, f := range p.Files {
		if node.Pos() < f.Pos() || node.Pos() > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Pos() <= node.Pos() && node.Pos() <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// declaredWithin reports whether ident's declaration lies inside node's
// source range.
func (p *Package) declaredWithin(ident *ast.Ident, node ast.Node) bool {
	obj := p.Info.Uses[ident]
	if obj == nil {
		obj = p.Info.Defs[ident]
	}
	if obj == nil {
		return false
	}
	return node.Pos() <= obj.Pos() && obj.Pos() <= node.End()
}

// rootIdent peels selectors and indexes down to the base identifier of
// an lvalue-ish expression (a.b[i].c -> a), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// lockTypes are the sync/atomic types whose by-value copy is a bug.
var lockTypes = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true,
		"Once": true, "Cond": true, "Map": true, "Pool": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// containsLock reports whether t transitively contains a sync or atomic
// type that must not be copied. The seen set breaks type cycles.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, map[types.Type]bool{})
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			if names, ok := lockTypes[pkg.Path()]; ok && names[obj.Name()] {
				return true
			}
		}
		return containsLockSeen(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}
