package analysis

// Module is the cross-package view the dataflow rules (lane-confinement,
// snapshot-coverage, hotpath-alloc, lock-order) check: every loaded
// package of one sweep, plus the shared CHA call graph built lazily over
// them. The per-file AST rules see one Package at a time; module rules
// see the whole set, so a contract whose two halves live in different
// packages (shard goroutine roots in internal/shard, the lane pipeline
// in internal/molecular) is checkable at all.
//
// The expensive artifacts are cached across rules: packages are loaded
// and type-checked once by the Loader, and the call graph is built once
// on first use and shared by every rule that asks for it.
type Module struct {
	// Packages are the swept packages in deterministic (load) order.
	Packages []*Package

	cg *CallGraph
}

// NewModule wraps a deterministic package list for module-level rules.
func NewModule(pkgs []*Package) *Module {
	return &Module{Packages: pkgs}
}

// CallGraph returns the module's CHA call graph, building it on first
// use and caching it for every subsequent rule.
func (m *Module) CallGraph() *CallGraph {
	if m.cg == nil {
		m.cg = BuildCallGraph(m.Packages)
	}
	return m.cg
}

// PackagesMatching returns the module packages whose import path matches
// any of the given suffixes, in module order.
func (m *Module) PackagesMatching(suffixes []string) []*Package {
	var out []*Package
	for _, p := range m.Packages {
		if matchAny(p.Path, suffixes) {
			out = append(out, p)
		}
	}
	return out
}

// directives unions every package's ignore and transient sets. Malformed
// directives are NOT re-reported here — the per-package Run already
// diagnoses them once.
func (m *Module) directives() (ignoreSet, transientSet) {
	ignores := ignoreSet{}
	transients := transientSet{}
	for _, p := range m.Packages {
		ig, tr, _ := p.directives()
		for k := range ig {
			ignores[k] = true
		}
		for k, v := range tr {
			transients[k] = v
		}
	}
	return ignores, transients
}

// ModuleRule is a rule that needs the cross-package view. Module rules
// still Register like per-package rules (their Check returns nil) and
// run once per sweep via RunModule.
type ModuleRule interface {
	Rule
	// CheckModule inspects the whole module and returns its findings.
	CheckModule(cfg Config, mod *Module) []Diagnostic
}

// RunModule runs every registered module rule (or only the named ones
// when names is non-empty) once over the module, applies the union of
// all packages' ignore directives, and returns the surviving
// diagnostics sorted by position.
func RunModule(cfg Config, mod *Module, names []string) []Diagnostic {
	selected := map[string]bool{}
	for _, n := range names {
		selected[n] = true
	}
	ignores, _ := mod.directives()
	var out []Diagnostic
	for _, r := range Rules() {
		mr, ok := r.(ModuleRule)
		if !ok {
			continue
		}
		if len(names) > 0 && !selected[r.Name()] {
			continue
		}
		for _, d := range mr.CheckModule(cfg, mod) {
			if ignores.covers(r.Name(), d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}
