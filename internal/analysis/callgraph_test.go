package analysis

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestCallGraphGolden pins the whole graph of the cg fixture — CHA
// edges to both Evict implementations, the literal node Run$1 with its
// creation edge, the go-launched worker, and the unresolved indirect
// call f() (no edge) — against testdata/cg.golden.
func TestCallGraphGolden(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg := loadFixture(t, l, "cg")
	g := BuildCallGraph([]*Package{pkg})
	checkGolden(t, "cg", []byte(g.Dump(l.ModulePath+"/internal/analysis/testdata/src/")))
}

func TestCallGraphLookup(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg := loadFixture(t, l, "cg")
	g := BuildCallGraph([]*Package{pkg})
	for _, name := range []string{"Run", "Run$1", "LRU.Evict", "Random.Evict", "worker", "helper"} {
		if g.Lookup("cg", name) == nil {
			t.Errorf("Lookup(cg, %s) = nil, want node", name)
		}
	}
	if g.Lookup("cg", "NoSuchFunc") != nil {
		t.Error("Lookup must return nil for unknown names")
	}
}

// synthGraph builds a synthetic call graph from an adjacency relation
// over n nodes: edges[i] lists callee indices of node i.
func synthGraph(n int, edges [][]int) []*FuncNode {
	nodes := make([]*FuncNode, n)
	for i := range nodes {
		nodes[i] = &FuncNode{Name: fmt.Sprintf("f%d", i)}
	}
	for i, cs := range edges {
		for _, c := range cs {
			nodes[i].addCall(nodes[c])
		}
	}
	return nodes
}

// TestReachableMonotone is the testing/quick property of the issue:
// adding an edge to a call graph never shrinks the reachable set. Each
// trial draws a random graph plus one extra edge and checks that
// reachability from node 0 with the edge is a superset of reachability
// without it.
func TestReachableMonotone(t *testing.T) {
	g := (&CallGraph{})
	property := func(adj [][]byte, from, to uint8) bool {
		n := len(adj) + 2 // at least the root and the new edge's endpoints
		edges := make([][]int, n)
		for i, row := range adj {
			for _, b := range row {
				edges[i] = append(edges[i], int(b)%n)
			}
		}
		before := synthGraph(n, edges)
		after := synthGraph(n, edges)
		after[int(from)%n].addCall(after[int(to)%n])

		reachBefore := g.Reachable([]*FuncNode{before[0]}, nil)
		reachAfter := g.Reachable([]*FuncNode{after[0]}, nil)

		// Compare by index: node i reachable before must stay reachable.
		if len(reachAfter) < len(reachBefore) {
			return false
		}
		for i := range before {
			if reachBefore[before[i]] && !reachAfter[after[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReachableFilter checks that a filter prunes traversal at the
// rejected node without hiding nodes reached another way.
func TestReachableFilter(t *testing.T) {
	// 0 -> 1 -> 2, 0 -> 3
	nodes := synthGraph(4, [][]int{{1, 3}, {2}, nil, nil})
	g := &CallGraph{}
	reach := g.Reachable([]*FuncNode{nodes[0]}, func(n *FuncNode) bool {
		return n != nodes[1]
	})
	if reach[nodes[1]] || reach[nodes[2]] {
		t.Error("filter must stop traversal into and past the rejected node")
	}
	if !reach[nodes[0]] || !reach[nodes[3]] {
		t.Error("filter must not hide the root or its admitted callees")
	}
}
