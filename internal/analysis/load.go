package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit a Rule checks.
type Package struct {
	// Path is the package's import path (module-derived for real
	// packages, caller-supplied for test fixtures).
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset positions every file in the loader.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object tables.
	Info *types.Info
}

// IsMain reports whether the package is a command.
func (p *Package) IsMain() bool { return p.Types.Name() == "main" }

// Loader parses and type-checks module packages using only the standard
// library: module-internal imports resolve against the module tree,
// everything else (the standard library) through the source importer, so
// no export data, GOPATH layout or external tooling is needed.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's declared path.
	ModulePath string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
	// loading guards against import cycles (which the compiler would
	// reject anyway, but a clear error beats a stack overflow).
	loading map[string]bool
}

// NewLoader builds a loader rooted at the directory holding go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		fset:       fset,
		std:        src,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load returns the type-checked package at importPath (memoized). The
// path must be the module path or below it.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir, err := l.dirFor(importPath)
	if err != nil {
		return nil, err
	}
	return l.LoadDir(dir, importPath)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(importPath string) (string, error) {
	if importPath == l.ModulePath {
		return l.ModuleRoot, nil
	}
	rel, ok := strings.CutPrefix(importPath, l.ModulePath+"/")
	if !ok {
		return "", fmt.Errorf("analysis: %s is outside module %s", importPath, l.ModulePath)
	}
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), nil
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Test files (_test.go) are excluded: the rules police
// production code, and tests legitimately use clocks and goroutines.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// loaderImporter routes module-internal imports back through the Loader
// and everything else to the standard library's source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// DiscoverPackages expands a ./...-style pattern rooted at dir into the
// import paths of every package beneath it, skipping testdata, vendor
// and hidden directories — unless the pattern root itself lies inside a
// testdata tree, which is how molvet is pointed at its own seeded
// fixtures.
func (l *Loader) DiscoverPackages(dir string) ([]string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	inTestdata := strings.Contains(abs, string(filepath.Separator)+"testdata"+string(filepath.Separator)) ||
		filepath.Base(abs) == "testdata"
	var out []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != abs {
			if strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
				base == "vendor" || (!inTestdata && base == "testdata") {
				return filepath.SkipDir
			}
		}
		hasGo, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}
