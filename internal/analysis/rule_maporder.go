package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapOrderRule forbids order-sensitive work inside `range` over a map
// in the packages whose output is diffed byte-for-byte (simulation
// packages and the telemetry exporters). Go randomizes map iteration
// order on purpose; anything ordered that happens per-iteration —
// appending to a slice, printing, mutating shared state through a
// method, or returning early — silently varies run to run.
//
// Safe patterns stay legal:
//   - writing into another map (commutative),
//   - commutative compound assignment (+=, ++, ...),
//   - collecting keys/values into a slice that a later statement in the
//     same function sorts (the canonical fix this rule asks for).
type mapOrderRule struct{}

func init() { Register(mapOrderRule{}) }

func (mapOrderRule) Name() string { return "map-order" }

func (mapOrderRule) Doc() string {
	return "no appends, prints, shared-state mutation or early exits inside range-over-map in output-bearing packages"
}

func (r mapOrderRule) Check(cfg Config, pkg *Package) []Diagnostic {
	if !matchAny(pkg.Path, cfg.SimPackages) && !matchAny(pkg.Path, cfg.MapOrderExtra) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok || !isMapType(tv.Type) {
				return true
			}
			out = append(out, r.checkLoop(pkg, rs)...)
			return true
		})
	}
	return out
}

// checkLoop inspects one range-over-map body.
func (r mapOrderRule) checkLoop(pkg *Package, rs *ast.RangeStmt) []Diagnostic {
	var out []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, diag(pkg, n, r.Name(), format, args...))
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			return false // deferred work runs outside iteration order
		case *ast.ReturnStmt:
			report(stmt, "return inside range over map: which key triggers it varies run to run; iterate sorted keys")
		case *ast.BranchStmt:
			if stmt.Tok == token.BREAK {
				report(stmt, "break inside range over map picks an arbitrary element; iterate sorted keys")
			}
		case *ast.AssignStmt:
			if stmt.Tok != token.ASSIGN && stmt.Tok != token.DEFINE {
				return true // compound ops (+= etc.) are commutative
			}
			for _, lhs := range stmt.Lhs {
				if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex {
					continue // m2[k] = v is commutative
				}
				id := rootIdent(lhs)
				if id == nil || id.Name == "_" || pkg.declaredWithin(id, rs) {
					continue
				}
				if r.sortedAfter(pkg, rs, id) {
					continue
				}
				report(stmt, "ordered write to %s inside range over map; sort after collecting, or iterate sorted keys", id.Name)
			}
		case *ast.CallExpr:
			if obj := pkg.calleeObject(stmt); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")) {
				report(stmt, "printing inside range over map emits in random order; iterate sorted keys")
				return true
			}
			if sel, ok := ast.Unparen(stmt.Fun).(*ast.SelectorExpr); ok {
				if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					id := rootIdent(sel.X)
					if id != nil && !pkg.declaredWithin(id, rs) {
						report(stmt, "method call %s.%s on state declared outside the loop, inside range over map; iterate sorted keys",
							id.Name, sel.Sel.Name)
					}
				}
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether ident's accumulated value is sorted by a
// sort/slices call later in the same function — the collect-then-sort
// idiom the rule exists to encourage.
func (r mapOrderRule) sortedAfter(pkg *Package, rs *ast.RangeStmt, id *ast.Ident) bool {
	fd := pkg.enclosingFunc(rs)
	if fd == nil {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		callee := pkg.calleeObject(call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		p := callee.Pkg().Path()
		if (p != "sort" && p != "slices") || !strings.HasPrefix(callee.Name(), "Sort") && !sortishNames[callee.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if aid := rootIdent(arg); aid != nil && pkg.Info.Uses[aid] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// sortishNames are the sort/slices entry points that do not start with
// "Sort" (sort.Strings, sort.Ints, ...).
var sortishNames = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Stable": true,
}
