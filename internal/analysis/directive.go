package analysis

import (
	"go/token"
	"strings"
)

// Directives are molvet's sanctioned escape hatches. Two verbs exist:
//
//	//molvet:ignore rule-name reason for the exception
//	//molvet:transient reason the field is not checkpointed
//
// An ignore suppresses one rule's findings on its own line and the line
// below. A transient marks a struct field as deliberately outside the
// snapshot-coverage contract (derived state, live attachments, config
// mirrors). Both demand a reason: an unexplained exception is itself a
// finding. Any other //molvet: verb is malformed — a typo that silently
// suppressed nothing is exactly the failure mode directives exist to
// avoid.
const directivePrefix = "//molvet:"

// directiveKind distinguishes the two verbs.
type directiveKind int

const (
	directiveIgnore directiveKind = iota
	directiveTransient
)

// parsedDirective is one well-formed directive.
type parsedDirective struct {
	kind directiveKind
	// rule is the suppressed rule (ignore only).
	rule string
	// reason is the mandatory free-form justification.
	reason string
}

// parseDirective interprets one comment's text. ok reports whether the
// comment is a molvet directive at all; a directive that is recognized
// but malformed comes back with ok=true and a non-empty problem string
// (the diagnostic message). The parser is total: no input panics — the
// fuzz target in directive_fuzz_test.go holds it to that.
func parseDirective(text string) (d parsedDirective, ok bool, problem string) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return parsedDirective{}, false, ""
	}
	// Split the verb from its payload; the verb runs to the first space,
	// tab, or end of comment.
	verb := rest
	payload := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, payload = rest[:i], rest[i+1:]
	}
	switch verb {
	case "ignore":
		fields := strings.Fields(payload)
		if len(fields) == 0 {
			return parsedDirective{kind: directiveIgnore}, true,
				"molvet:ignore needs a rule name and a reason"
		}
		rule := fields[0]
		if _, known := rules[rule]; !known {
			return parsedDirective{kind: directiveIgnore, rule: rule}, true,
				"molvet:ignore names unknown rule " + rule
		}
		if len(fields) < 2 {
			return parsedDirective{kind: directiveIgnore, rule: rule}, true,
				"molvet:ignore " + rule + " has no reason; explain the exception"
		}
		return parsedDirective{
			kind:   directiveIgnore,
			rule:   rule,
			reason: strings.Join(fields[1:], " "),
		}, true, ""
	case "transient":
		reason := strings.TrimSpace(payload)
		if reason == "" {
			return parsedDirective{kind: directiveTransient}, true,
				"molvet:transient has no reason; explain why the field is not checkpointed"
		}
		return parsedDirective{kind: directiveTransient, reason: reason}, true, ""
	default:
		if verb == "" {
			return parsedDirective{}, true, "molvet: directive has no verb (want ignore or transient)"
		}
		return parsedDirective{}, true, "molvet:" + verb + " is not a directive (want ignore or transient)"
	}
}

// ignoreKey identifies one suppressed (rule, file, line) cell. A
// directive on line N covers findings on lines N and N+1, so it works
// both as a trailing comment and as a line of its own above the code.
type ignoreKey struct {
	rule string
	file string
	line int
}

type ignoreSet map[ignoreKey]bool

// covers reports whether a directive suppresses rule at pos.
func (s ignoreSet) covers(rule string, pos token.Position) bool {
	return s[ignoreKey{rule, pos.Filename, pos.Line}] ||
		s[ignoreKey{rule, pos.Filename, pos.Line - 1}]
}

// transientKey locates one //molvet:transient marker.
type transientKey struct {
	file string
	line int
}

// transientSet maps marker positions to their reasons.
type transientSet map[transientKey]string

// covers reports whether a transient marker annotates the field at pos
// (own line or the line above, like ignore).
func (s transientSet) covers(pos token.Position) bool {
	if _, ok := s[transientKey{pos.Filename, pos.Line}]; ok {
		return true
	}
	_, ok := s[transientKey{pos.Filename, pos.Line - 1}]
	return ok
}

// directives scans every comment in the package for molvet markers.
// Malformed directives come back as diagnostics under the "directive"
// pseudo-rule so they fail the build instead of silently ignoring
// nothing.
func (p *Package) directives() (ignoreSet, transientSet, []Diagnostic) {
	ignores := ignoreSet{}
	transients := transientSet{}
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d, ok, problem := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if problem != "" {
					bad = append(bad, directiveDiag(pos, problem))
					continue
				}
				switch d.kind {
				case directiveIgnore:
					ignores[ignoreKey{d.rule, pos.Filename, pos.Line}] = true
				case directiveTransient:
					transients[transientKey{pos.Filename, pos.Line}] = d.reason
				}
			}
		}
	}
	return ignores, transients, bad
}

func directiveDiag(pos token.Position, msg string) Diagnostic {
	return Diagnostic{
		Pos:     pos,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Rule:    "directive",
		Message: msg,
	}
}
