package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//molvet:ignore rule-name reason for the exception
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory: an unexplained exception is itself a finding.
const ignorePrefix = "//molvet:ignore"

// ignoreKey identifies one suppressed (rule, file, line) cell. A
// directive on line N covers findings on lines N and N+1, so it works
// both as a trailing comment and as a line of its own above the code.
type ignoreKey struct {
	rule string
	file string
	line int
}

type ignoreSet map[ignoreKey]bool

// covers reports whether a directive suppresses rule at pos.
func (s ignoreSet) covers(rule string, pos token.Position) bool {
	return s[ignoreKey{rule, pos.Filename, pos.Line}] ||
		s[ignoreKey{rule, pos.Filename, pos.Line - 1}]
}

// directives scans every comment in the package for molvet:ignore
// markers. Malformed directives (no rule name, unknown rule, or a
// missing reason) come back as diagnostics under the "directive"
// pseudo-rule so they fail the build instead of silently ignoring
// nothing.
func (p *Package) directives() (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //molvet:ignoreXYZ — not ours
				}
				fields := strings.Fields(rest)
				pos := p.Fset.Position(c.Pos())
				if len(fields) == 0 {
					bad = append(bad, directiveDiag(pos,
						"molvet:ignore needs a rule name and a reason"))
					continue
				}
				rule := fields[0]
				if _, known := rules[rule]; !known {
					bad = append(bad, directiveDiag(pos,
						"molvet:ignore names unknown rule "+rule))
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, directiveDiag(pos,
						"molvet:ignore "+rule+" has no reason; explain the exception"))
					continue
				}
				set[ignoreKey{rule, pos.Filename, pos.Line}] = true
			}
		}
	}
	return set, bad
}

func directiveDiag(pos token.Position, msg string) Diagnostic {
	return Diagnostic{
		Pos:     pos,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Rule:    "directive",
		Message: msg,
	}
}
