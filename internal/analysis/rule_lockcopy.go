package analysis

import (
	"go/ast"
)

// lockCopyRule flags by-value copies of structs that embed sync or
// sync/atomic state. Copying a Mutex forks the lock; copying an atomic
// counter forks the count — both compile fine and corrupt silently.
// Checked everywhere (the concurrency primitives themselves only live
// in internal/runner and internal/telemetry, but the structs that
// contain them travel).
type lockCopyRule struct{}

func init() { Register(lockCopyRule{}) }

func (lockCopyRule) Name() string { return "lock-copy" }

func (lockCopyRule) Doc() string {
	return "no by-value copies (receivers, params, derefs, range values) of structs containing sync.Mutex or atomic fields"
}

func (r lockCopyRule) Check(cfg Config, pkg *Package) []Diagnostic {
	var out []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, diag(pkg, n, r.Name(), format, args...))
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if containsLock(tv.Type) {
				report(field, "%s passes a lock-containing %s by value; use a pointer", what, tv.Type)
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(x.Recv, "receiver")
				checkFieldList(x.Type.Params, "parameter")
				checkFieldList(x.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(x.Type.Params, "parameter")
				checkFieldList(x.Type.Results, "result")
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					star, ok := ast.Unparen(rhs).(*ast.StarExpr)
					if !ok {
						continue
					}
					if tv, ok := pkg.Info.Types[star]; ok && containsLock(tv.Type) {
						report(rhs, "dereference copies lock-containing %s by value", tv.Type)
					}
				}
			case *ast.RangeStmt:
				if x.Value == nil {
					return true
				}
				if tv, ok := pkg.Info.Types[x.Value]; ok && containsLock(tv.Type) {
					report(x.Value, "range value copies lock-containing %s per iteration; range by index", tv.Type)
				}
			}
			return true
		})
	}
	return out
}
