package analysis

// A CHA-style call graph over the loaded module. Nodes are declared
// functions, methods and function literals with bodies in module
// packages; edges are direct calls plus, for calls through an
// interface, every module type implementing that interface (class
// hierarchy analysis — no pointer analysis, so the graph
// overapproximates dispatch but never misses a module callee).
//
// Soundness caveats, shared by every rule built on top:
//
//   - Calls through plain function values (not literals, not method
//     expressions) are unresolved: func-typed fields and parameters
//     produce no edges.
//   - A function literal is treated as called wherever it is created;
//     storing a closure for later does not launder its body out of the
//     enclosing context.
//   - Bodyless declarations (assembly, external linkname) get no node.
//
// The graph is built once per Module and shared by all rules.

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FuncNode is one function in the module call graph.
type FuncNode struct {
	// Obj is the declared function or method object; nil for literals.
	Obj *types.Func
	// Lit is the function literal; nil for declared functions.
	Lit *ast.FuncLit
	// Pkg is the declaring package.
	Pkg *Package
	// Name is the package-relative display name: "Cache.Access" for a
	// method, "RestoreCache" for a function, "runEpoch$1" for the first
	// literal created inside runEpoch.
	Name string
	// Body is the function body.
	Body *ast.BlockStmt
	// Calls are the resolved callees: direct and literal calls in
	// source order, then CHA targets of interface calls (sorted).
	Calls []*FuncNode
	// GoTargets are the callees this body launches with a go statement,
	// in source order. Every GoTarget is also in Calls.
	GoTargets []*FuncNode

	callSet map[*FuncNode]bool
}

// String renders "importpath.Name".
func (n *FuncNode) String() string {
	return n.Pkg.Path + "." + n.Name
}

func (n *FuncNode) addCall(callee *FuncNode) {
	if callee == nil || n.callSet[callee] {
		return
	}
	if n.callSet == nil {
		n.callSet = map[*FuncNode]bool{}
	}
	n.callSet[callee] = true
	n.Calls = append(n.Calls, callee)
}

// CallGraph indexes the module's FuncNodes.
type CallGraph struct {
	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// nodes is every node in deterministic (package, file, source
	// position) order.
	nodes []*FuncNode
	// concrete are the module's named non-interface types, for CHA
	// dispatch resolution, sorted by (package path, name).
	concrete []*types.TypeName
}

// Nodes returns every node in deterministic order.
func (g *CallGraph) Nodes() []*FuncNode { return g.nodes }

// NodeFor returns the node of a declared function or method, or nil.
func (g *CallGraph) NodeFor(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return g.byObj[obj.Origin()]
}

// LitNode returns the node of a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// Lookup finds the node named name ("Cache.Access" or "RestoreCache")
// in a package matching the import-path suffix, or nil.
func (g *CallGraph) Lookup(pkgSuffix, name string) *FuncNode {
	for _, n := range g.nodes {
		if n.Name == name && matchSuffix(n.Pkg.Path, pkgSuffix) {
			return n
		}
	}
	return nil
}

// Reachable returns the closure of roots under Calls edges, including
// the roots themselves. A nil filter admits every edge; otherwise only
// callees for which filter returns true are entered.
func (g *CallGraph) Reachable(roots []*FuncNode, filter func(*FuncNode) bool) map[*FuncNode]bool {
	seen := map[*FuncNode]bool{}
	queue := append([]*FuncNode(nil), roots...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		for _, c := range n.Calls {
			if !seen[c] && (filter == nil || filter(c)) {
				queue = append(queue, c)
			}
		}
	}
	return seen
}

// Dump renders the graph deterministically, one node per line with its
// sorted callees — the golden-file format of the call-graph tests.
// trimPrefix (usually the module path plus "/") is stripped from every
// import path for machine-independent output.
func (g *CallGraph) Dump(trimPrefix string) string {
	short := func(n *FuncNode) string {
		return strings.TrimPrefix(n.Pkg.Path, trimPrefix) + "." + n.Name
	}
	var b strings.Builder
	for _, n := range g.nodes {
		callees := make([]string, 0, len(n.Calls))
		goSet := map[*FuncNode]bool{}
		for _, t := range n.GoTargets {
			goSet[t] = true
		}
		for _, c := range n.Calls {
			s := short(c)
			if goSet[c] {
				s = "go " + s
			}
			callees = append(callees, s)
		}
		sort.Strings(callees)
		fmt.Fprintf(&b, "%s -> [%s]\n", short(n), strings.Join(callees, ", "))
	}
	return b.String()
}

// BuildCallGraph constructs the graph over the given packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byObj: map[*types.Func]*FuncNode{},
		byLit: map[*ast.FuncLit]*FuncNode{},
	}

	// Pass 1: create a node per declared function with a body, then a
	// node per literal inside it (named parent$1, parent$2, ... in
	// source order, nesting included).
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Obj: obj, Pkg: p, Name: funcDisplayName(obj), Body: fd.Body}
				g.byObj[obj.Origin()] = n
				g.nodes = append(g.nodes, n)
				g.addLiterals(p, n)
			}
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || types.IsInterface(tn.Type()) {
				continue
			}
			g.concrete = append(g.concrete, tn)
		}
	}
	sort.Slice(g.concrete, func(i, j int) bool {
		a, b := g.concrete[i], g.concrete[j]
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})

	// Pass 2: edges.
	for _, n := range g.nodes {
		if n.Lit == nil {
			g.buildEdges(n)
		}
	}
	return g
}

// addLiterals creates nodes for every function literal inside parent's
// body, in source order, recursing into nested literals.
func (g *CallGraph) addLiterals(p *Package, parent *FuncNode) {
	count := 0
	var walk func(node ast.Node, encl *FuncNode)
	walk = func(node ast.Node, encl *FuncNode) {
		ast.Inspect(node, func(x ast.Node) bool {
			lit, ok := x.(*ast.FuncLit)
			if !ok || x == node {
				return true
			}
			count++
			ln := &FuncNode{Lit: lit, Pkg: p, Name: fmt.Sprintf("%s$%d", parent.Name, count), Body: lit.Body}
			g.byLit[lit] = ln
			g.nodes = append(g.nodes, ln)
			walk(lit, ln)
			return false // nested literals handled by the recursive walk
		})
	}
	walk(parent.Body, parent)
}

// buildEdges resolves the calls in n's body (skipping nested literal
// bodies, which own their calls) and recurses into its literals.
func (g *CallGraph) buildEdges(n *FuncNode) {
	p := n.Pkg
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// The literal's body belongs to its own node; creating it
			// counts as a (possible) call from here.
			ln := g.byLit[x]
			n.addCall(ln)
			if ln != nil {
				g.buildEdges(ln)
			}
			return false
		case *ast.GoStmt:
			// The spawned callee is resolved by the CallExpr visit; mark
			// it as a go target too.
			if t := g.calleeNodes(p, x.Call); len(t) > 0 {
				n.GoTargets = append(n.GoTargets, t...)
			}
			return true
		case *ast.CallExpr:
			for _, t := range g.calleeNodes(p, x) {
				n.addCall(t)
			}
			return true
		}
		return true
	})
}

// calleeNodes resolves one call expression to its possible module
// callees: the direct target, a directly-invoked literal, or every CHA
// implementation of an interface method.
func (g *CallGraph) calleeNodes(p *Package, call *ast.CallExpr) []*FuncNode {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		if ln := g.byLit[lit]; ln != nil {
			return []*FuncNode{ln}
		}
		return nil
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv()) {
				return g.implementations(s.Recv(), s.Obj().Name())
			}
		}
	}
	obj, _ := p.calleeObject(call).(*types.Func)
	if obj == nil {
		return nil
	}
	if node := g.byObj[obj.Origin()]; node != nil {
		return []*FuncNode{node}
	}
	return nil
}

// implementations returns the module methods satisfying an interface
// method call (CHA), sorted by node order in g.concrete.
func (g *CallGraph) implementations(iface types.Type, method string) []*FuncNode {
	i, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncNode
	for _, tn := range g.concrete {
		t := tn.Type()
		pt := types.NewPointer(t)
		if !types.Implements(t, i) && !types.Implements(pt, i) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, tn.Pkg(), method)
		fn, _ := obj.(*types.Func)
		if fn == nil {
			continue
		}
		if node := g.byObj[fn.Origin()]; node != nil {
			out = append(out, node)
		}
	}
	return out
}

// funcDisplayName renders a function object as "Recv.Name" for methods
// or "Name" for plain functions — the form Config fields like
// LaneSerialFuncs and HotPathRoots use.
func funcDisplayName(obj *types.Func) string {
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
	}
	return obj.Name()
}

// matchFuncName reports whether a function object matches any
// configured "Recv.Name" / "Name" entry.
func matchFuncName(obj *types.Func, names []string) bool {
	if obj == nil {
		return false
	}
	d := funcDisplayName(obj)
	for _, n := range names {
		if n == d {
			return true
		}
	}
	return false
}
