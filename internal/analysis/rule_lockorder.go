package analysis

// lock-order: a global mutex-acquisition graph over the concurrent
// packages (obs, telemetry, shard). Lock identity is the declared
// types.Var — the struct field or package-level variable holding the
// sync.Mutex/RWMutex — so every instance of a type shares one node and
// the order is a static, whole-program property. Within each function
// the walker tracks the held set in source order (defer Unlock holds to
// function end); acquisitions of other locks while one is held become
// edges, including through calls: a fixpoint propagates each callee's
// transitive acquisitions to every call site reached with locks held.
// A cycle in the edge graph — including a self-loop, since sync.Mutex
// is not reentrant — is a finding at the first edge that closes it.
//
// Soundness caveats: held-set tracking is linear (an Unlock inside one
// branch clears the lock for the code after the branch join), RLock and
// Lock share a node (reader/reader cycles report like writer cycles —
// still deadlock-prone the moment a writer queues), and calls through
// interfaces or function values propagate nothing.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

func init() { Register(lockRule{}) }

type lockRule struct{}

func (lockRule) Name() string { return "lock-order" }

func (lockRule) Doc() string {
	return "mutex acquisition order is globally consistent across obs/telemetry/shard (no cycles, no re-entry)"
}

// Check is a no-op: the rule runs once per module via CheckModule.
func (lockRule) Check(cfg Config, pkg *Package) []Diagnostic { return nil }

// lockEdge is one held->acquired pair with its first witness site.
type lockEdge struct {
	from, to *types.Var
	pkg      *Package
	pos      token.Pos
}

type lockInfo struct {
	g     *CallGraph
	cfg   Config
	names map[*types.Var]string
	// acquires is the per-function transitive acquisition set.
	acquires map[*FuncNode]map[*types.Var]bool
	// calls records (caller, callee, held-at-site) triples.
	calls []lockCall
	edges map[[2]*types.Var]*lockEdge
	// direct acquisitions per function with their sites, for edge
	// positions during propagation.
	sites map[*FuncNode][]lockSite
}

type lockSite struct {
	lock *types.Var
	pos  token.Pos
}

type lockCall struct {
	caller *FuncNode
	callee *FuncNode
	held   []*types.Var
	pkg    *Package
	pos    token.Pos
}

func (lockRule) CheckModule(cfg Config, mod *Module) []Diagnostic {
	li := &lockInfo{
		g:        mod.CallGraph(),
		cfg:      cfg,
		names:    map[*types.Var]string{},
		acquires: map[*FuncNode]map[*types.Var]bool{},
		edges:    map[[2]*types.Var]*lockEdge{},
		sites:    map[*FuncNode][]lockSite{},
	}
	var scoped []*FuncNode
	for _, n := range li.g.Nodes() {
		if matchAny(n.Pkg.Path, cfg.LockPackages) {
			scoped = append(scoped, n)
			li.scanFunc(n)
		}
	}
	li.propagate(scoped)
	return li.findings()
}

// scanFunc walks one body in source order, tracking the held set.
func (li *lockInfo) scanFunc(n *FuncNode) {
	li.acquires[n] = map[*types.Var]bool{}
	var held []*types.Var
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false // literal bodies are their own nodes
		}
		if def, ok := x.(*ast.DeferStmt); ok {
			// defer mu.Unlock() keeps mu held to function end: record
			// nothing. defer mu.Lock() (pathological) still counts via
			// the CallExpr visit below.
			if lock, _, isUnlock := li.lockCallTarget(n.Pkg, def.Call); isUnlock && lock != nil {
				return false
			}
			return true
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lock, isLock, isUnlock := li.lockCallTarget(n.Pkg, call); lock != nil {
			if isLock {
				for _, h := range held {
					li.addEdge(h, lock, n.Pkg, call.Pos())
				}
				held = append(held, lock)
				li.acquires[n][lock] = true
				li.sites[n] = append(li.sites[n], lockSite{lock, call.Pos()})
			} else if isUnlock {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == lock {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			return true
		}
		if obj, _ := n.Pkg.calleeObject(call).(*types.Func); obj != nil {
			if callee := li.g.NodeFor(obj); callee != nil && matchAny(callee.Pkg.Path, li.cfg.LockPackages) {
				li.calls = append(li.calls, lockCall{
					caller: n, callee: callee,
					held: append([]*types.Var(nil), held...),
					pkg:  n.Pkg, pos: call.Pos(),
				})
			}
		}
		return true
	})
}

// lockCallTarget matches mu.Lock/RLock/Unlock/RUnlock and resolves the
// mutex's declared variable.
func (li *lockInfo) lockCallTarget(p *Package, call *ast.CallExpr) (lock *types.Var, isLock, isUnlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isLock = true
	case "Unlock", "RUnlock":
		isUnlock = true
	default:
		return nil, false, false
	}
	recv := ast.Unparen(sel.X)
	var v *types.Var
	name := ""
	switch r := recv.(type) {
	case *ast.Ident:
		v, _ = lookupIdent(p, r).(*types.Var)
		name = r.Name
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[r]; ok && s.Kind() == types.FieldVal {
			v, _ = s.Obj().(*types.Var)
			if owner := namedRecvName(p, r.X); owner != "" {
				name = owner + "." + r.Sel.Name
			} else {
				name = r.Sel.Name
			}
		}
	}
	if v == nil || !isMutexVarType(v.Type()) {
		return nil, false, false
	}
	if _, seen := li.names[v]; !seen {
		li.names[v] = name
	}
	return v, isLock, isUnlock
}

// namedRecvName renders the owner type of a mutex field (r in r.mu).
func namedRecvName(p *Package, e ast.Expr) string {
	t := p.typeOf(e)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isMutexVarType reports whether t is sync.Mutex / sync.RWMutex or a
// pointer to one.
func isMutexVarType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isMutexType(t)
}

func (li *lockInfo) addEdge(from, to *types.Var, p *Package, pos token.Pos) {
	key := [2]*types.Var{from, to}
	if e, ok := li.edges[key]; ok {
		if pos < e.pos {
			e.pkg, e.pos = p, pos
		}
		return
	}
	li.edges[key] = &lockEdge{from: from, to: to, pkg: p, pos: pos}
}

// propagate runs the transitive-acquisition fixpoint and materializes
// held->callee-acquisition edges.
func (li *lockInfo) propagate(scoped []*FuncNode) {
	// Fixpoint: acquires[f] ∪= acquires[callee] for every scoped call.
	for changed := true; changed; {
		changed = false
		for _, c := range li.calls {
			dst := li.acquires[c.caller]
			for lock := range li.acquires[c.callee] {
				if !dst[lock] {
					dst[lock] = true
					changed = true
				}
			}
		}
	}
	for _, c := range li.calls {
		if len(c.held) == 0 {
			continue
		}
		acq := make([]*types.Var, 0, len(li.acquires[c.callee]))
		for lock := range li.acquires[c.callee] {
			acq = append(acq, lock)
		}
		sort.Slice(acq, func(i, j int) bool { return li.names[acq[i]] < li.names[acq[j]] })
		for _, h := range c.held {
			for _, a := range acq {
				li.addEdge(h, a, c.pkg, c.pos)
			}
		}
	}
}

// findings detects cycles (self-loops and multi-lock SCCs) in the edge
// graph and reports them deterministically.
func (li *lockInfo) findings() []Diagnostic {
	adj := map[*types.Var][]*types.Var{}
	var keys [][2]*types.Var
	for k := range li.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := li.edges[keys[i]], li.edges[keys[j]]
		if li.names[a.from] != li.names[b.from] {
			return li.names[a.from] < li.names[b.from]
		}
		return li.names[a.to] < li.names[b.to]
	})
	var out []Diagnostic
	for _, k := range keys {
		e := li.edges[k]
		if e.from == e.to {
			out = append(out, diagAt(e.pkg, e.pos, "lock-order",
				"%s acquired while already held; sync mutexes are not reentrant", li.names[e.from]))
			continue
		}
		adj[e.from] = append(adj[e.from], e.to)
	}
	// A two-coloring DFS per edge: an edge from->to is part of a cycle
	// iff from is reachable from to. The graphs here are tiny, so the
	// quadratic check buys deterministic, per-edge findings.
	for _, k := range keys {
		e := li.edges[k]
		if e.from == e.to {
			continue
		}
		if lockReach(adj, e.to, e.from) {
			out = append(out, diagAt(e.pkg, e.pos, "lock-order",
				"lock order cycle: %s is acquired while %s is held, but elsewhere %s is acquired while %s is held",
				li.names[e.to], li.names[e.from], li.names[e.from], li.names[e.to]))
		}
	}
	return out
}

// lockReach reports whether target is reachable from start in adj.
func lockReach(adj map[*types.Var][]*types.Var, start, target *types.Var) bool {
	seen := map[*types.Var]bool{}
	stack := []*types.Var{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == target {
			return true
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, adj[v]...)
	}
	return false
}
